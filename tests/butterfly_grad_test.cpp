/**
 * @file butterfly_grad_test.cpp
 * Finite-difference validation of the butterfly backward passes - the
 * gradients that make FABNet trainable. Ported onto the shared
 * harness (tests/test_util.h): the seed suite's fixed shapes are
 * widened with randomized sweeps driven by nn/gradcheck.h, and the
 * layer-level gradcheck sweeps repeat at thread counts {1, 4, 8}.
 * The ButterflyMatrix/ButterflyLinear kernel-level cases run once at
 * the default pool size - thread-count invariance of those kernels is
 * pinned bitwise (not just within FD tolerance) by
 * backward_parity_test.cpp.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "butterfly/butterfly.h"
#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using ButterflyGrad = testutil::RuntimeFixture;

/** L = sum(out * probe); loss under the single-vector apply path. */
double
lossOf(const ButterflyMatrix &m, const std::vector<float> &x,
       const std::vector<float> &probe)
{
    std::vector<float> y(m.size());
    m.apply(x.data(), y.data());
    double l = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
        l += static_cast<double>(y[i]) * probe[i];
    return l;
}

TEST_F(ButterflyGrad, InputGradientMatchesFiniteDifferenceSweep)
{
    // Randomized size sweep instead of the seed's fixed n=16.
    Rng shapes(31);
    std::vector<std::size_t> sizes = {4, 16};
    for (int i = 0; i < 2; ++i)
        sizes.push_back(std::size_t{1}
                        << static_cast<std::size_t>(shapes.randint(1, 5)));

    unsigned seed = 11;
    for (const std::size_t n : sizes) {
        ButterflyMatrix m(n);
        Rng rng(seed++);
        m.initNormal(rng, 0.6f);

        std::vector<float> x(n), probe(n);
        for (auto &v : x)
            v = rng.normal();
        for (auto &v : probe)
            v = rng.normal();

        std::vector<float> cache((m.numStages() + 1) * n);
        m.forwardWithCache(x.data(), cache.data());
        std::vector<float> grad_in(n);
        std::vector<float> grad_w(m.numWeights(), 0.0f);
        m.backward(cache.data(), probe.data(), grad_in.data(), grad_w);

        const float eps = 1e-3f;
        for (std::size_t i = 0; i < n; ++i) {
            auto xp = x;
            xp[i] += eps;
            const double lp = lossOf(m, xp, probe);
            xp[i] -= 2 * eps;
            const double lm = lossOf(m, xp, probe);
            const double numeric = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(grad_in[i], numeric,
                        2e-2 * std::max(1.0, std::fabs(numeric)))
                << "n=" << n << " coordinate " << i;
        }
    }
}

TEST_F(ButterflyGrad, WeightGradientMatchesFiniteDifference)
{
    const std::size_t n = 8;
    ButterflyMatrix m(n);
    Rng rng(13);
    m.initNormal(rng, 0.6f);

    std::vector<float> x(n), probe(n);
    for (auto &v : x)
        v = rng.normal();
    for (auto &v : probe)
        v = rng.normal();

    std::vector<float> cache((m.numStages() + 1) * n);
    m.forwardWithCache(x.data(), cache.data());
    std::vector<float> grad_in(n);
    std::vector<float> grad_w(m.numWeights(), 0.0f);
    m.backward(cache.data(), probe.data(), grad_in.data(), grad_w);

    const float eps = 1e-3f;
    for (std::size_t wi = 0; wi < m.numWeights(); ++wi) {
        const float orig = m.weights()[wi];
        m.weights()[wi] = orig + eps;
        const double lp = lossOf(m, x, probe);
        m.weights()[wi] = orig - eps;
        const double lm = lossOf(m, x, probe);
        m.weights()[wi] = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(grad_w[wi], numeric,
                    2e-2 * std::max(1.0, std::fabs(numeric)))
            << "weight " << wi;
    }
}

TEST_F(ButterflyGrad, BackwardIsTransposeOfForward)
{
    // For linear maps, backward(g) must equal W^T g exactly.
    const std::size_t n = 16;
    ButterflyMatrix m(n);
    Rng rng(15);
    m.initNormal(rng, 0.8f);

    std::vector<float> x(n, 0.0f);
    std::vector<float> cache((m.numStages() + 1) * n);
    m.forwardWithCache(x.data(), cache.data());

    Rng rng2(16);
    std::vector<float> g(n);
    for (auto &v : g)
        v = rng2.normal();
    std::vector<float> grad_in(n);
    std::vector<float> grad_w(m.numWeights(), 0.0f);
    m.backward(cache.data(), g.data(), grad_in.data(), grad_w);

    // W^T g via the dense expansion.
    Tensor dense = m.toDense();
    for (std::size_t i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < n; ++j)
            acc += dense.at(j, i) * g[j];
        EXPECT_NEAR(grad_in[i], acc, 1e-3f);
    }
}

TEST_F(ButterflyGrad, GradAccumulatesAcrossCalls)
{
    const std::size_t n = 4;
    ButterflyMatrix m(n);
    Rng rng(19);
    m.initNormal(rng, 0.5f);

    std::vector<float> x(n, 1.0f), g(n, 1.0f), gin(n);
    std::vector<float> cache((m.numStages() + 1) * n);
    m.forwardWithCache(x.data(), cache.data());

    std::vector<float> gw1(m.numWeights(), 0.0f);
    m.backward(cache.data(), g.data(), gin.data(), gw1);
    std::vector<float> gw2(m.numWeights(), 0.0f);
    m.backward(cache.data(), g.data(), gin.data(), gw2);
    m.backward(cache.data(), g.data(), gin.data(), gw2);
    for (std::size_t i = 0; i < gw1.size(); ++i)
        EXPECT_NEAR(gw2[i], 2.0f * gw1[i], 1e-5f);
}

TEST_F(ButterflyGrad, RectangularBackwardMatchesFiniteDifference)
{
    const std::size_t in = 6, out = 10; // pads to core 8, 2 cores
    ButterflyLinear lin(in, out);
    Rng rng(23);
    lin.initRandomRotation(rng);
    // Perturb weights so gradients are not degenerate.
    for (std::size_t c = 0; c < lin.numCores(); ++c)
        for (auto &w : lin.core(c).weights())
            w += rng.normal(0.1f);

    std::vector<float> x(in), probe(out);
    for (auto &v : x)
        v = rng.normal();
    for (auto &v : probe)
        v = rng.normal();

    std::vector<float> y(out), cache(lin.cacheSize());
    lin.forwardWithCache(x.data(), y.data(), cache.data());

    std::vector<float> grad_in(in);
    std::vector<std::vector<float>> grad_cores(lin.numCores());
    for (std::size_t c = 0; c < lin.numCores(); ++c)
        grad_cores[c].assign(lin.core(c).numWeights(), 0.0f);
    std::vector<float> grad_bias(out, 0.0f);
    lin.backward(cache.data(), probe.data(), grad_in.data(), grad_cores,
                 grad_bias);

    auto loss = [&]() {
        std::vector<float> yy(out);
        lin.apply(x.data(), yy.data());
        double l = 0.0;
        for (std::size_t i = 0; i < out; ++i)
            l += static_cast<double>(yy[i]) * probe[i];
        return l;
    };

    const float eps = 1e-3f;
    // Input gradient.
    for (std::size_t i = 0; i < in; ++i) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double lp = loss();
        x[i] = orig - eps;
        const double lm = loss();
        x[i] = orig;
        EXPECT_NEAR(grad_in[i], (lp - lm) / (2 * eps), 2e-2)
            << "input " << i;
    }
    // Bias gradient equals the probe on live outputs.
    for (std::size_t i = 0; i < out; ++i)
        EXPECT_NEAR(grad_bias[i], probe[i], 1e-4f);
    // Spot-check core weight gradients.
    for (std::size_t c = 0; c < lin.numCores(); ++c) {
        for (std::size_t wi = 0; wi < lin.core(c).numWeights();
             wi += 7) {
            float &w = lin.core(c).weights()[wi];
            const float orig = w;
            w = orig + eps;
            const double lp = loss();
            w = orig - eps;
            const double lm = loss();
            w = orig;
            EXPECT_NEAR(grad_cores[c][wi], (lp - lm) / (2 * eps), 2e-2)
                << "core " << c << " weight " << wi;
        }
    }
}

// ------------------------------------ randomized layer-level sweeps

TEST_F(ButterflyGrad, ButterflyDenseGradcheckRandomShapeSweep)
{
    // nn/gradcheck.h randomized sweep at every thread count: the
    // analytic parallel backward must track central differences for
    // fresh odd/non-power-of-two shapes, not just hand-picked ones.
    unsigned seed = 41;
    for (const auto &s : nn::gradSweepShapes(37, 3)) {
        testutil::forEachThreadCount([&](std::size_t threads) {
            Rng rng(seed);
            nn::ButterflyDense layer(s.features, s.out_features, rng);
            const Tensor x = nn::makeGradCheckInput(s, seed + 1);
            const auto in_res = nn::checkInputGrad(layer, x, seed + 2);
            EXPECT_TRUE(in_res.passed)
                << "input grad: features=" << s.features << " out="
                << s.out_features << " threads=" << threads
                << " rel_err=" << in_res.max_rel_error;
            const auto par_res = nn::checkParamGrad(layer, x, seed + 3);
            EXPECT_TRUE(par_res.passed)
                << "param grad: features=" << s.features << " out="
                << s.out_features << " threads=" << threads
                << " rel_err=" << par_res.max_rel_error;
        });
        seed += 5;
    }
}

TEST_F(ButterflyGrad, DenseGradcheckRandomShapeSweep)
{
    // Same sweep over the dense layer the butterfly replaces - the
    // two backward rewrites share the owner-parallel scheme.
    unsigned seed = 61;
    for (const auto &s : nn::gradSweepShapes(43, 2)) {
        testutil::forEachThreadCount([&](std::size_t threads) {
            Rng rng(seed);
            nn::Dense layer(s.features, s.out_features, rng);
            const Tensor x = nn::makeGradCheckInput(s, seed + 1);
            const auto in_res = nn::checkInputGrad(layer, x, seed + 2);
            EXPECT_TRUE(in_res.passed)
                << "input grad: features=" << s.features << " out="
                << s.out_features << " threads=" << threads
                << " rel_err=" << in_res.max_rel_error;
            const auto par_res = nn::checkParamGrad(layer, x, seed + 3);
            EXPECT_TRUE(par_res.passed)
                << "param grad: features=" << s.features << " out="
                << s.out_features << " threads=" << threads
                << " rel_err=" << par_res.max_rel_error;
        });
        seed += 5;
    }
}

} // namespace
} // namespace fabnet
