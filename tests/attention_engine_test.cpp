/**
 * @file attention_engine_test.cpp
 * Functional fp16 attention engine (QK + SV units) cross-validated
 * against the fp32 software attention core, plus its cycle accounting
 * against the performance-model formula.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/attention_engine.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace fabnet {
namespace sim {
namespace {

/** fp32 reference: softmax(q k^T / sqrt(dh)) v. */
Tensor
referenceAttention(const Tensor &q, const Tensor &k, const Tensor &v,
                   bool causal)
{
    const std::size_t rows = q.dim(0), dh = q.dim(1);
    Tensor scores = ops::matmulTransposed(q, k);
    scores = ops::scale(scores,
                        1.0f / std::sqrt(static_cast<float>(dh)));
    if (causal)
        for (std::size_t i = 0; i < rows; ++i)
            for (std::size_t j = i + 1; j < rows; ++j)
                scores.at(i, j) = -1e30f;
    Tensor attn = ops::softmaxLastDim(scores);
    return ops::matmul(attn, v);
}

TEST(AttentionEngine, MatchesReferenceWithinFp16)
{
    Rng rng(1);
    for (std::size_t rows : {4u, 16u, 64u}) {
        const std::size_t dh = 16;
        Tensor q = rng.normalTensor({rows, dh});
        Tensor k = rng.normalTensor({rows, dh});
        Tensor v = rng.normalTensor({rows, dh});

        AttentionEngine engine(16, 16);
        Tensor hw = engine.run(q, k, v);
        Tensor ref = referenceAttention(q, k, v, false);
        EXPECT_LT(ops::maxAbsDiff(hw, ref),
                  3e-2f * std::max(1.0f, ops::maxAbs(ref)))
            << "rows=" << rows;
    }
}

TEST(AttentionEngine, CausalMatchesReference)
{
    Rng rng(2);
    const std::size_t rows = 12, dh = 8;
    Tensor q = rng.normalTensor({rows, dh});
    Tensor k = rng.normalTensor({rows, dh});
    Tensor v = rng.normalTensor({rows, dh});

    AttentionEngine engine(8, 8);
    Tensor hw = engine.run(q, k, v, /*causal=*/true);
    Tensor ref = referenceAttention(q, k, v, true);
    EXPECT_LT(ops::maxAbsDiff(hw, ref),
              3e-2f * std::max(1.0f, ops::maxAbs(ref)));
}

TEST(AttentionEngine, CycleCountMatchesFormula)
{
    Rng rng(3);
    const std::size_t rows = 32, dh = 16;
    Tensor q = rng.normalTensor({rows, dh});
    Tensor k = rng.normalTensor({rows, dh});
    Tensor v = rng.normalTensor({rows, dh});

    for (std::size_t p : {4u, 16u, 64u}) {
        AttentionEngine engine(p, p);
        AttentionEngine::RunStats stats;
        engine.run(q, k, v, false, &stats);
        // rows x ceil(rows*dh / p) per unit.
        EXPECT_EQ(stats.qk_cycles,
                  rows * ((rows * dh + p - 1) / p))
            << "p=" << p;
        EXPECT_EQ(stats.sv_cycles, stats.qk_cycles);
        EXPECT_EQ(stats.score_rows, rows);
    }
}

TEST(AttentionEngine, CausalRoughlyHalvesWork)
{
    Rng rng(4);
    const std::size_t rows = 64, dh = 8;
    Tensor q = rng.normalTensor({rows, dh});
    Tensor k = rng.normalTensor({rows, dh});
    Tensor v = rng.normalTensor({rows, dh});
    AttentionEngine engine(8, 8);
    AttentionEngine::RunStats full, causal;
    engine.run(q, k, v, false, &full);
    engine.run(q, k, v, true, &causal);
    const double ratio = static_cast<double>(causal.qk_cycles) /
                         static_cast<double>(full.qk_cycles);
    EXPECT_NEAR(ratio, 0.51, 0.03);
}

TEST(AttentionEngine, RowStreamingIsOrderIndependentPerRow)
{
    // Each context row depends only on its own query row (with full
    // attention) - the property that lets QK stream rows into SV.
    Rng rng(5);
    const std::size_t rows = 8, dh = 4;
    Tensor q = rng.normalTensor({rows, dh});
    Tensor k = rng.normalTensor({rows, dh});
    Tensor v = rng.normalTensor({rows, dh});
    AttentionEngine engine(4, 4);
    Tensor full = engine.run(q, k, v);

    Tensor q2 = q;
    for (std::size_t c = 0; c < dh; ++c)
        q2.at(3, c) += 1.0f; // perturb only query row 3
    Tensor out2 = engine.run(q2, k, v);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t c = 0; c < dh; ++c) {
            if (i == 3)
                continue;
            EXPECT_NEAR(out2.at(i, c), full.at(i, c), 1e-6f)
                << "row " << i;
        }
    }
}

TEST(AttentionEngine, RejectsBadShapes)
{
    EXPECT_THROW(AttentionEngine(0, 4), std::invalid_argument);
    AttentionEngine engine(4, 4);
    Tensor q = Tensor::zeros(4, 8);
    Tensor k = Tensor::zeros(4, 4);
    EXPECT_THROW(engine.run(q, k, k), std::invalid_argument);
}

} // namespace
} // namespace sim
} // namespace fabnet
