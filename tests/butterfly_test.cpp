/**
 * @file butterfly_test.cpp
 * Butterfly matrix semantics: structure, dense equivalence,
 * orthogonal init, rectangular layers, and the FFT unification.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "butterfly/butterfly.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace fabnet {
namespace {

TEST(ButterflyMatrix, IdentityInitIsIdentity)
{
    ButterflyMatrix m(8);
    Rng rng(1);
    Tensor x = rng.normalTensor({3, 8});
    Tensor y = m.applyBatch(x);
    EXPECT_TRUE(ops::allClose(x, y, 1e-6f));
}

TEST(ButterflyMatrix, PairIndicesStructure)
{
    // Stage 0 pairs adjacent elements, stage s pairs at stride 2^s.
    std::size_t i1, i2;
    ButterflyMatrix::pairIndices(0, 0, i1, i2);
    EXPECT_EQ(i1, 0u);
    EXPECT_EQ(i2, 1u);
    ButterflyMatrix::pairIndices(0, 3, i1, i2);
    EXPECT_EQ(i1, 6u);
    EXPECT_EQ(i2, 7u);
    ButterflyMatrix::pairIndices(2, 1, i1, i2);
    EXPECT_EQ(i1, 1u);
    EXPECT_EQ(i2, 5u);
    ButterflyMatrix::pairIndices(3, 5, i1, i2);
    EXPECT_EQ(i1, 5u);
    EXPECT_EQ(i2, 13u);
}

TEST(ButterflyMatrix, EveryStageTouchesEveryIndexOnce)
{
    const std::size_t n = 32;
    ButterflyMatrix m(n);
    for (std::size_t s = 0; s < m.numStages(); ++s) {
        std::vector<int> count(n, 0);
        for (std::size_t p = 0; p < n / 2; ++p) {
            std::size_t i1, i2;
            ButterflyMatrix::pairIndices(s, p, i1, i2);
            ASSERT_LT(i1, n);
            ASSERT_LT(i2, n);
            EXPECT_EQ(i2 - i1, std::size_t{1} << s);
            ++count[i1];
            ++count[i2];
        }
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(count[i], 1) << "stage " << s << " index " << i;
    }
}

class ButterflyDenseEquivTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ButterflyDenseEquivTest, ApplyMatchesDenseExpansion)
{
    const std::size_t n = GetParam();
    ButterflyMatrix m(n);
    Rng rng(n);
    m.initNormal(rng, 0.5f);

    Tensor dense = m.toDense();
    Tensor x = rng.normalTensor({4, n});
    Tensor fast = m.applyBatch(x);
    Tensor ref = ops::matmul(x, ops::transpose(dense));
    EXPECT_LT(ops::maxAbsDiff(fast, ref),
              1e-3f * std::max(1.0f, ops::maxAbs(ref)));
}

TEST_P(ButterflyDenseEquivTest, RotationInitIsOrthogonal)
{
    const std::size_t n = GetParam();
    ButterflyMatrix m(n);
    Rng rng(n + 3);
    m.initRandomRotation(rng);
    Tensor w = m.toDense();
    Tensor wtw = ops::matmul(ops::transpose(w), w);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(wtw.at(i, j), i == j ? 1.0f : 0.0f, 1e-4f);
}

TEST_P(ButterflyDenseEquivTest, RotationInitPreservesNorm)
{
    const std::size_t n = GetParam();
    ButterflyMatrix m(n);
    Rng rng(n + 5);
    m.initRandomRotation(rng);
    std::vector<float> x(n), y(n);
    for (auto &v : x)
        v = rng.normal();
    m.apply(x.data(), y.data());
    double nx = 0.0, ny = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        nx += static_cast<double>(x[i]) * x[i];
        ny += static_cast<double>(y[i]) * y[i];
    }
    EXPECT_NEAR(ny, nx, 1e-3 * nx);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ButterflyDenseEquivTest,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(ButterflyMatrix, ParameterAndFlopCounts)
{
    ButterflyMatrix m(64); // 6 stages
    EXPECT_EQ(m.numStages(), 6u);
    EXPECT_EQ(m.numWeights(), 6u * 32u * 4u); // = 2 * N * log2 N
    EXPECT_EQ(m.numWeights(), 2u * 64u * 6u);
    EXPECT_EQ(m.flops(), 6u * 32u * 8u);
}

TEST(ButterflyMatrix, ComposesAsProductOfFactors)
{
    // The dense expansion must equal the ordered product of the stage
    // factor matrices (largest stride leftmost, as in the paper).
    const std::size_t n = 8;
    ButterflyMatrix m(n);
    Rng rng(17);
    m.initNormal(rng, 0.7f);

    Tensor product = Tensor::zeros(n, n);
    for (std::size_t i = 0; i < n; ++i)
        product.at(i, i) = 1.0f;
    for (std::size_t s = 0; s < m.numStages(); ++s) {
        Tensor factor = Tensor::zeros(n, n);
        for (std::size_t p = 0; p < n / 2; ++p) {
            std::size_t i1, i2;
            ButterflyMatrix::pairIndices(s, p, i1, i2);
            const float *w = &m.weights()[m.weightIndex(s, p)];
            factor.at(i1, i1) = w[0];
            factor.at(i1, i2) = w[1];
            factor.at(i2, i1) = w[2];
            factor.at(i2, i2) = w[3];
        }
        product = ops::matmul(factor, product); // stage s applied after
    }
    EXPECT_LT(ops::maxAbsDiff(product, m.toDense()), 1e-4f);
}

TEST(FftAsButterfly, ReproducesFftExactly)
{
    // The unification claim: FFT == butterfly with (1, w, 1, -w).
    for (std::size_t n : {4u, 8u, 32u, 128u}) {
        Rng rng(n);
        std::vector<Complex> x(n);
        for (auto &c : x)
            c = Complex(rng.normal(), rng.normal());

        FftAsButterfly fab(n);
        auto via_butterfly = fab.apply(x);
        auto reference = x;
        fftInPlace(reference);

        float max_err = 0.0f;
        for (std::size_t i = 0; i < n; ++i)
            max_err = std::max(max_err,
                               std::abs(via_butterfly[i] - reference[i]));
        EXPECT_LT(max_err, 1e-3f * std::sqrt((float)n)) << "n=" << n;
    }
}

TEST(FftAsButterfly, TwiddleUnitsAndSymmetry)
{
    FftAsButterfly fab(16);
    // Stage 0 twiddles are all 1 (adjacent sums/differences).
    for (std::size_t p = 0; p < 8; ++p) {
        EXPECT_NEAR(fab.twiddle(0, p).real(), 1.0f, 1e-6f);
        EXPECT_NEAR(fab.twiddle(0, p).imag(), 0.0f, 1e-6f);
    }
    // All twiddles lie on the unit circle.
    for (std::size_t s = 0; s < 4; ++s)
        for (std::size_t p = 0; p < 8; ++p)
            EXPECT_NEAR(std::abs(fab.twiddle(s, p)), 1.0f, 1e-5f);
}

TEST(ButterflyLinear, SquareShape)
{
    ButterflyLinear lin(64, 64);
    EXPECT_EQ(lin.numCores(), 1u);
    EXPECT_EQ(lin.coreSize(), 64u);
    Rng rng(5);
    lin.initRandomRotation(rng);
    Tensor x = rng.normalTensor({3, 64});
    Tensor y = lin.applyBatch(x);
    EXPECT_EQ(y.dim(1), 64u);
}

TEST(ButterflyLinear, NonPowerOfTwoInputPadded)
{
    ButterflyLinear lin(48, 48); // pads to 64
    EXPECT_EQ(lin.coreSize(), 64u);
    EXPECT_EQ(lin.numCores(), 1u);
}

TEST(ButterflyLinear, ExpansionUsesMultipleCores)
{
    ButterflyLinear lin(64, 256); // R_ffn = 4 expansion
    EXPECT_EQ(lin.numCores(), 4u);
    Rng rng(6);
    lin.initRandomRotation(rng);
    Tensor x = rng.normalTensor({2, 64});
    Tensor y = lin.applyBatch(x);
    EXPECT_EQ(y.dim(1), 256u);
}

TEST(ButterflyLinear, ContractionTruncates)
{
    ButterflyLinear lin(256, 64);
    EXPECT_EQ(lin.numCores(), 1u);
    EXPECT_EQ(lin.coreSize(), 256u);
    Rng rng(8);
    lin.initRandomRotation(rng);
    Tensor x = rng.normalTensor({2, 256});
    Tensor y = lin.applyBatch(x);
    EXPECT_EQ(y.dim(1), 64u);
}

TEST(ButterflyLinear, BiasApplied)
{
    ButterflyLinear lin(8, 8);
    for (std::size_t i = 0; i < 8; ++i)
        lin.bias()[i] = static_cast<float>(i);
    std::vector<float> x(8, 0.0f), y(8);
    lin.apply(x.data(), y.data());
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(y[i], static_cast<float>(i));
}

TEST(ButterflyLinear, ParamCountIsLogLinear)
{
    // O(n log n) params vs O(n^2) dense: 2*1024*10 + bias vs 1024^2.
    ButterflyLinear lin(1024, 1024);
    EXPECT_EQ(lin.numParams(), 2u * 1024u * 10u + 1024u);
    EXPECT_LT(lin.numParams() * 20, std::size_t{1024} * 1024);
}

TEST(ButterflyLinear, ZeroSizeRejected)
{
    EXPECT_THROW(ButterflyLinear(0, 8), std::invalid_argument);
    EXPECT_THROW(ButterflyLinear(8, 0), std::invalid_argument);
}

} // namespace
} // namespace fabnet
