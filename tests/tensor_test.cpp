/**
 * @file tensor_test.cpp
 * Unit tests for the dense tensor container and its numeric kernels.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fabnet {
namespace {

TEST(Tensor, ZeroInitialisedAndShaped)
{
    Tensor t = Tensor::zeros(2, 3, 4);
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.dim(0), 2u);
    EXPECT_EQ(t.dim(1), 3u);
    EXPECT_EQ(t.dim(2), 4u);
    for (float v : t.raw())
        EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ElementAccessRowMajor)
{
    Tensor t = Tensor::zeros(2, 3);
    t.at(1, 2) = 5.0f;
    EXPECT_EQ(t.raw()[1 * 3 + 2], 5.0f);
    Tensor u = Tensor::zeros(2, 2, 2);
    u.at(1, 0, 1) = 7.0f;
    EXPECT_EQ(u.raw()[(1 * 2 + 0) * 2 + 1], 7.0f);
}

TEST(Tensor, FromMatrixAndEquality)
{
    Tensor a = Tensor::fromMatrix(2, 2, {1, 2, 3, 4});
    Tensor b = Tensor::fromMatrix(2, 2, {1, 2, 3, 4});
    EXPECT_TRUE(a == b);
    b.at(0, 1) = 9.0f;
    EXPECT_FALSE(a == b);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor a = Tensor::fromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor b = a.reshaped({3, 2});
    EXPECT_EQ(b.dim(0), 3u);
    EXPECT_EQ(b.at(2, 1), 6.0f);
    EXPECT_THROW(a.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, InvalidRankRejected)
{
    EXPECT_THROW(Tensor({1, 2, 3, 4}), std::invalid_argument);
    EXPECT_THROW(Tensor(std::vector<std::size_t>{}),
                 std::invalid_argument);
}

TEST(Ops, MatmulSmallKnown)
{
    Tensor a = Tensor::fromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor b = Tensor::fromMatrix(3, 2, {7, 8, 9, 10, 11, 12});
    Tensor c = ops::matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulIdentity)
{
    Rng rng(1);
    Tensor a = rng.normalTensor({5, 5});
    Tensor eye = Tensor::zeros(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        eye.at(i, i) = 1.0f;
    EXPECT_TRUE(ops::allClose(ops::matmul(a, eye), a, 1e-6f));
    EXPECT_TRUE(ops::allClose(ops::matmul(eye, a), a, 1e-6f));
}

TEST(Ops, MatmulTransposedMatchesExplicitTranspose)
{
    Rng rng(2);
    Tensor a = rng.normalTensor({4, 6});
    Tensor b = rng.normalTensor({5, 6});
    Tensor direct = ops::matmulTransposed(a, b);
    Tensor ref = ops::matmul(a, ops::transpose(b));
    EXPECT_TRUE(ops::allClose(direct, ref, 1e-5f));
}

TEST(Ops, MatmulShapeMismatchThrows)
{
    Tensor a = Tensor::zeros(2, 3);
    Tensor b = Tensor::zeros(4, 2);
    EXPECT_THROW(ops::matmul(a, b), std::invalid_argument);
}

TEST(Ops, TransposeInvolution)
{
    Rng rng(3);
    Tensor a = rng.normalTensor({3, 7});
    EXPECT_TRUE(ops::allClose(ops::transpose(ops::transpose(a)), a));
}

TEST(Ops, ElementwiseArithmetic)
{
    Tensor a = Tensor::fromVector({1, 2, 3});
    Tensor b = Tensor::fromVector({4, 5, 6});
    EXPECT_TRUE(ops::allClose(ops::add(a, b),
                              Tensor::fromVector({5, 7, 9})));
    EXPECT_TRUE(ops::allClose(ops::sub(b, a),
                              Tensor::fromVector({3, 3, 3})));
    EXPECT_TRUE(ops::allClose(ops::mul(a, b),
                              Tensor::fromVector({4, 10, 18})));
    EXPECT_TRUE(ops::allClose(ops::scale(a, 2.0f),
                              Tensor::fromVector({2, 4, 6})));
}

TEST(Ops, SoftmaxRowsSumToOneAndOrderPreserved)
{
    Rng rng(4);
    Tensor a = rng.normalTensor({6, 10}, 3.0f);
    Tensor s = ops::softmaxLastDim(a);
    for (std::size_t r = 0; r < 6; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 10; ++c) {
            EXPECT_GT(s.at(r, c), 0.0f);
            sum += s.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
    // Softmax is monotone: argmax preserved.
    for (std::size_t r = 0; r < 6; ++r) {
        std::size_t am_in = 0, am_out = 0;
        for (std::size_t c = 1; c < 10; ++c) {
            if (a.at(r, c) > a.at(r, am_in))
                am_in = c;
            if (s.at(r, c) > s.at(r, am_out))
                am_out = c;
        }
        EXPECT_EQ(am_in, am_out);
    }
}

TEST(Ops, SoftmaxNumericallyStableForLargeInputs)
{
    Tensor a = Tensor::fromMatrix(1, 3, {1000.0f, 1000.0f, 1000.0f});
    Tensor s = ops::softmaxLastDim(a);
    for (std::size_t c = 0; c < 3; ++c)
        EXPECT_NEAR(s.at(0, c), 1.0f / 3.0f, 1e-5f);
}

TEST(Ops, LayerNormZeroMeanUnitVar)
{
    Rng rng(5);
    Tensor a = rng.normalTensor({4, 32}, 5.0f, 2.0f);
    std::vector<float> gamma(32, 1.0f), beta(32, 0.0f);
    Tensor n = ops::layerNormLastDim(a, gamma, beta);
    for (std::size_t r = 0; r < 4; ++r) {
        double mean = 0.0, var = 0.0;
        for (std::size_t c = 0; c < 32; ++c)
            mean += n.at(r, c);
        mean /= 32.0;
        for (std::size_t c = 0; c < 32; ++c)
            var += (n.at(r, c) - mean) * (n.at(r, c) - mean);
        var /= 32.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(Ops, LayerNormAffineApplied)
{
    Tensor a = Tensor::fromMatrix(1, 4, {1, 2, 3, 4});
    std::vector<float> gamma(4, 2.0f), beta(4, 1.0f);
    Tensor n = ops::layerNormLastDim(a, gamma, beta);
    double mean = 0.0;
    for (std::size_t c = 0; c < 4; ++c)
        mean += n.at(0, c);
    EXPECT_NEAR(mean / 4.0, 1.0, 1e-5); // beta shifts the mean
}

TEST(Ops, ReluAndGeluBasicShape)
{
    Tensor a = Tensor::fromVector({-2.0f, 0.0f, 2.0f});
    Tensor r = ops::relu(a);
    EXPECT_FLOAT_EQ(r.at(0), 0.0f);
    EXPECT_FLOAT_EQ(r.at(1), 0.0f);
    EXPECT_FLOAT_EQ(r.at(2), 2.0f);

    Tensor g = ops::gelu(a);
    EXPECT_NEAR(g.at(1), 0.0f, 1e-6f);
    EXPECT_NEAR(g.at(2), 1.954f, 1e-2f); // gelu(2) ~ 1.954
    EXPECT_NEAR(g.at(0), -0.0454f, 1e-2f);
}

TEST(Ops, Reductions)
{
    Tensor a = Tensor::fromVector({1, -2, 3});
    EXPECT_DOUBLE_EQ(ops::sum(a), 2.0);
    EXPECT_NEAR(ops::mean(a), 2.0 / 3.0, 1e-9);
    EXPECT_FLOAT_EQ(ops::maxAbs(a), 3.0f);
}

TEST(Ops, AllCloseRespectsShapeAndTolerance)
{
    Tensor a = Tensor::fromVector({1.0f, 2.0f});
    Tensor b = Tensor::fromVector({1.0f, 2.0001f});
    EXPECT_TRUE(ops::allClose(a, b, 1e-3f));
    EXPECT_FALSE(ops::allClose(a, b, 1e-6f));
    Tensor c = Tensor::fromMatrix(1, 2, {1.0f, 2.0f});
    EXPECT_FALSE(ops::allClose(a, c)); // different shape
}

/** Property sweep: (A*B)*C == A*(B*C) across random sizes. */
class MatmulAssocTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(MatmulAssocTest, Associativity)
{
    const auto [m, k, n, p] = GetParam();
    Rng rng(m * 1000 + k * 100 + n * 10 + p);
    Tensor a = rng.normalTensor({(std::size_t)m, (std::size_t)k});
    Tensor b = rng.normalTensor({(std::size_t)k, (std::size_t)n});
    Tensor c = rng.normalTensor({(std::size_t)n, (std::size_t)p});
    Tensor left = ops::matmul(ops::matmul(a, b), c);
    Tensor right = ops::matmul(a, ops::matmul(b, c));
    EXPECT_LT(ops::maxAbsDiff(left, right),
              1e-3f * std::max(1.0f, ops::maxAbs(left)));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulAssocTest,
    ::testing::Values(std::make_tuple(2, 3, 4, 5),
                      std::make_tuple(1, 8, 1, 8),
                      std::make_tuple(7, 7, 7, 7),
                      std::make_tuple(16, 4, 16, 2),
                      std::make_tuple(3, 17, 5, 11)));

} // namespace
} // namespace fabnet
