/**
 * @file serialize_test.cpp
 * Checkpoint round trips: save/load of model parameters, layout
 * validation, and behavioural equivalence after reload.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "model/builder.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace fabnet {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

ModelConfig
tinyCfg()
{
    ModelConfig cfg;
    cfg.kind = ModelKind::FABNet;
    cfg.vocab = 32;
    cfg.classes = 3;
    cfg.max_seq = 16;
    cfg.d_hid = 8;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.heads = 2;
    return cfg;
}

TEST(Serialize, RoundTripPreservesEveryValue)
{
    Rng rng(1);
    auto model = buildModel(tinyCfg(), rng);
    const auto path = tempPath("fab_roundtrip.bin");
    ASSERT_TRUE(nn::saveParams(model->params(), path));

    // A differently initialised model converges to the first after
    // loading.
    Rng rng2(999);
    auto other = buildModel(tinyCfg(), rng2);
    ASSERT_TRUE(nn::loadParams(other->params(), path));

    auto pa = model->params();
    auto pb = other->params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_EQ(*pa[i].value, *pb[i].value) << "param vector " << i;
    std::remove(path.c_str());
}

TEST(Serialize, ReloadedModelProducesIdenticalLogits)
{
    Rng rng(2);
    auto model = buildModel(tinyCfg(), rng);
    std::vector<int> tokens(16, 5);
    Tensor before = model->forward(tokens, 1, 16);

    const auto path = tempPath("fab_logits.bin");
    ASSERT_TRUE(nn::saveParams(model->params(), path));
    Rng rng2(77);
    auto other = buildModel(tinyCfg(), rng2);
    ASSERT_TRUE(nn::loadParams(other->params(), path));
    Tensor after = other->forward(tokens, 1, 16);
    EXPECT_TRUE(ops::allClose(before, after, 0.0f));
    std::remove(path.c_str());
}

TEST(Serialize, LayoutMismatchRejected)
{
    Rng rng(3);
    auto model = buildModel(tinyCfg(), rng);
    const auto path = tempPath("fab_mismatch.bin");
    ASSERT_TRUE(nn::saveParams(model->params(), path));

    ModelConfig bigger = tinyCfg();
    bigger.d_hid = 16;
    Rng rng2(4);
    auto other = buildModel(bigger, rng2);
    EXPECT_FALSE(nn::loadParams(other->params(), path));
    std::remove(path.c_str());
}

TEST(Serialize, CorruptHeaderRejected)
{
    const auto path = tempPath("fab_corrupt.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOPE", f);
    std::fclose(f);

    Rng rng(5);
    auto model = buildModel(tinyCfg(), rng);
    EXPECT_FALSE(nn::loadParams(model->params(), path));
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileFails)
{
    Rng rng(6);
    auto model = buildModel(tinyCfg(), rng);
    EXPECT_FALSE(
        nn::loadParams(model->params(), "/nonexistent/dir/x.bin"));
}

} // namespace
} // namespace fabnet
