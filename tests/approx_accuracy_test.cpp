/**
 * @file approx_accuracy_test.cpp
 * Golden accuracy floors for approximate attention
 * (`ctest -L approx-accuracy`): fixed-seed training on the synthetic
 * LRA Text task must reach PINNED accuracy floors for the exact
 * anchor AND each approximate kind - the approximation may trade a
 * little accuracy for speed, but a regression that destroys task
 * accuracy (bad selection, broken straight-through backward) fails
 * loudly here. Plus the long-context smoke: a seq-1024 scenario from
 * the catalogue serves end-to-end through ServingEngine with the
 * bitwise serial-parity and run-to-run determinism contract intact.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/lra.h"
#include "model/builder.h"
#include "serve/serving.h"
#include "test_util.h"

namespace fabnet {
namespace {

using nn::SparseAttentionConfig;
using nn::SparseKind;
using testutil::bitwiseEqual;

using ApproxAccuracyTest = testutil::RuntimeFixture;

/**
 * Fixed-seed train/eval cell (the table03 recipe at test scale):
 * Text @ seq 64, D=32 2-layer 2-head Transformer, 3 epochs. Every
 * seed below is pinned, so the returned accuracy is deterministic up
 * to libm; the floors leave margin for that.
 */
double
trainTextCell(SparseAttentionConfig sparse)
{
    const std::size_t seq = 64;
    Rng data_rng(99);
    auto gen = data::makeLraGenerator("Text", seq);
    const auto train = gen->dataset(160, data_rng);
    const auto test = gen->dataset(96, data_rng);

    ModelConfig cfg = data::longContextConfig("Text", seq, sparse);
    cfg.d_hid = 32;

    Rng rng(17);
    auto model = buildModel(cfg, rng);
    return trainClassifier(*model, train, test, seq, /*epochs=*/3,
                           /*batch_size=*/16, /*lr=*/2e-3f, rng);
}

TEST_F(ApproxAccuracyTest, GoldenAccuracyFloorsOnFixedSeedText)
{
    runtime::setNumThreads(4);
    // PINNED floors from a measured baseline run (exact 0.958, topk
    // 0.740, butterfly 0.979, butterfly+topk 0.969 on this box), with
    // margin for libm variation across platforms. Chance is 0.5: every
    // kind must LEARN the task, not just not-crash. The hard top-k
    // cut trains noticeably below the exact anchor at this scale -
    // the frontier the bench records - but must hold its own floor.
    const double acc_exact = trainTextCell({});
    EXPECT_TRUE(testutil::accuracyAboveFloor(acc_exact, 0.90,
                                             "exact anchor"));

    const double acc_topk = trainTextCell({SparseKind::TopK, 16});
    EXPECT_TRUE(testutil::accuracyAboveFloor(acc_topk, 0.68,
                                             "topk k=16"));

    const double acc_bfly =
        trainTextCell({SparseKind::Butterfly, 0});
    EXPECT_TRUE(testutil::accuracyAboveFloor(acc_bfly, 0.92,
                                             "butterfly"));

    const double acc_bftk =
        trainTextCell({SparseKind::ButterflyTopK, 4});
    EXPECT_TRUE(testutil::accuracyAboveFloor(acc_bftk, 0.90,
                                             "butterfly+topk"));

    RecordProperty("acc_exact", std::to_string(acc_exact));
    RecordProperty("acc_topk", std::to_string(acc_topk));
    RecordProperty("acc_butterfly", std::to_string(acc_bfly));
    RecordProperty("acc_butterfly_topk", std::to_string(acc_bftk));
}

TEST_F(ApproxAccuracyTest, LongContextScenarioServesDeterministically)
{
    // Seq-1024 smoke from the scenario catalogue: the approximate
    // kinds must carry the serving determinism contract at real
    // long-context lengths, not just the small parity shapes.
    const auto scenarios = data::longRangeScenarios();
    ASSERT_FALSE(scenarios.empty());
    const auto &sc = scenarios.front(); // Image @ 1024
    ASSERT_EQ(sc.seq, 1024u);

    for (const ModelConfig *cfg : {&sc.topk, &sc.butterfly}) {
        Rng rng(23);
        auto model = buildModel(*cfg, rng);
        const auto reqs = testutil::makeRequests(
            {1024, 1000, 717}, cfg->vocab, 29);
        runtime::setNumThreads(4);
        const auto serial = testutil::serveSerial(*model, reqs);
        serve::ServingEngine engine(*model);
        const auto batched = engine.serveAll(reqs);
        EXPECT_TRUE(bitwiseEqual(batched, serial))
            << cfg->attn_sparse.describe();
        // Run-to-run: the approximate selection must not depend on
        // batch composition or engine state.
        EXPECT_TRUE(bitwiseEqual(engine.serveAll(reqs), serial))
            << cfg->attn_sparse.describe() << " (second run)";
    }
}

} // namespace
} // namespace fabnet
