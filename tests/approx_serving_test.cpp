/**
 * @file approx_serving_test.cpp
 * Approximate attention through the serving stack
 * (`ctest -L approx-accuracy` + `-L serve`): sparse-attention models
 * must carry every contract the reliability layer (PR 6/7) pins for
 * exact models, because the engines are oblivious to the mixer:
 *   - ServingEngine batched logits bitwise equal the serial reference
 *     at threads {1, 4, 8}, and run-to-run,
 *   - a poisoned row fails alone with ModelFault while batchmates'
 *     logits stay bitwise identical to the fault-free run - the
 *     per-request isolation retry re-runs top-k selection, so this is
 *     the determinism contract under re-execution,
 *   - GenerationEngine greedy tokens equal the solo full-recompute
 *     reference (approximate decode path vs approximate full path),
 *     and survive a sticky fault's K/V rollback + re-prefill bitwise.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "model/builder.h"
#include "model/generator.h"
#include "serve/fault.h"
#include "serve/generation.h"
#include "serve/serving.h"
#include "test_util.h"

namespace fabnet {
namespace {

using nn::SparseAttentionConfig;
using nn::SparseKind;
using serve::Error;
using serve::ErrorCode;
using serve::FaultPlan;
using serve::GenerationConfig;
using serve::GenerationEngine;
using serve::GenerationStats;
using serve::ServingConfig;
using serve::ServingEngine;
using testutil::bitwiseEqual;
using testutil::forEachThreadCount;
using testutil::makeRequests;
using testutil::serveSerial;

/** Attention-mixer classifier config with the given sparse setting. */
ModelConfig
sparseCfg(SparseAttentionConfig sparse)
{
    ModelConfig cfg;
    cfg.kind = ModelKind::Transformer;
    cfg.vocab = 32;
    cfg.max_seq = 64;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.n_abfly = 2;
    cfg.heads = 2;
    cfg.classes = 4;
    cfg.attn_sparse = sparse;
    return cfg;
}

/** Causal generator config with the given sparse setting. */
ModelConfig
sparseGenCfg(SparseAttentionConfig sparse)
{
    ModelConfig cfg = sparseCfg(sparse);
    cfg.max_seq = 32;
    cfg.classes = 2;
    cfg.causal = true;
    return cfg;
}

/** The approximate kinds under test, k small enough to be active at
 *  these test lengths (mixedLens goes well past k). */
std::vector<SparseAttentionConfig>
approxKinds()
{
    return {{SparseKind::TopK, 6},
            {SparseKind::Butterfly, 0},
            {SparseKind::ButterflyTopK, 3}};
}

/** Greedy reference: tokens a solo full-recompute loop generates. */
std::vector<int>
referenceGreedy(CausalGenerator &gen, std::vector<int> seq,
                std::size_t max_new)
{
    std::vector<int> out;
    while (out.size() < max_new && seq.size() <= gen.maxSeq()) {
        const int tok = nn::argmaxRows(gen.forwardFull({seq}))[0];
        out.push_back(tok);
        if (seq.size() == gen.maxSeq())
            break;
        seq.push_back(tok);
    }
    return out;
}

/** Expect @p fn to throw serve::Error with @p code. */
template <class F>
void
expectError(ErrorCode code, F &&fn, const char *what)
{
    try {
        fn();
        FAIL() << what << ": no error thrown";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << what << ": " << e.what();
    } catch (const std::exception &e) {
        FAIL() << what << ": untyped exception: " << e.what();
    }
}

using ApproxServingTest = testutil::RuntimeFixture;

// ------------------------------------------------- ServingEngine

TEST_F(ApproxServingTest, BatchedServingMatchesSerialAcrossThreads)
{
    for (const auto &sparse : approxKinds()) {
        const ModelConfig cfg = sparseCfg(sparse);
        Rng rng(61);
        auto model = buildModel(cfg, rng);
        const auto reqs =
            makeRequests(testutil::mixedLens(), cfg.vocab, 13);
        const auto want = serveSerial(*model, reqs);

        forEachThreadCount([&](std::size_t threads) {
            ServingEngine engine(*model);
            EXPECT_TRUE(bitwiseEqual(engine.serveAll(reqs), want))
                << sparse.describe() << " threads=" << threads;
            // Run-to-run on a warm engine: selection must not depend
            // on engine state or batch history.
            EXPECT_TRUE(bitwiseEqual(engine.serveAll(reqs), want))
                << sparse.describe() << " threads=" << threads
                << " (second run)";
        });
    }
}

TEST_F(ApproxServingTest, PoisonedRowFailsAloneSurvivorsBitwise)
{
    // The per-request isolation retry re-serves each batchmate of the
    // faulted row as a 1-row batch: top-k selection runs again on a
    // different batch composition and must reproduce the same bits.
    for (const auto &sparse : approxKinds()) {
        const ModelConfig cfg = sparseCfg(sparse);
        Rng rng(67);
        auto model = buildModel(cfg, rng);
        const auto reqs =
            makeRequests(testutil::mixedLens(), cfg.vocab, 23);
        const auto want = serveSerial(*model, reqs);
        const std::size_t poisoned = 3; // rides in a shared bucket

        forEachThreadCount([&](std::size_t threads) {
            FaultPlan plan;
            plan.request_faults[poisoned] = FaultPlan::Stage::Model;
            ServingConfig sc;
            sc.max_batch = 8;
            sc.bucket_granularity = 16;
            sc.max_wait = std::chrono::seconds(5);
            sc.fault_plan = &plan;
            ServingEngine engine(*model, sc);

            std::vector<std::future<std::vector<float>>> futs;
            for (const auto &r : reqs)
                futs.push_back(engine.submit(r));
            engine.flush();

            for (std::size_t i = 0; i < futs.size(); ++i) {
                if (i == poisoned) {
                    expectError(ErrorCode::ModelFault,
                                [&] { futs[i].get(); },
                                "poisoned row");
                    continue;
                }
                const std::vector<float> got = futs[i].get();
                EXPECT_EQ(got, want[i])
                    << sparse.describe() << " request " << i
                    << " threads=" << threads;
            }
            const auto st = engine.stats();
            EXPECT_EQ(st.model_faults, 1u) << sparse.describe();
            EXPECT_EQ(st.failed, 1u) << sparse.describe();
            EXPECT_EQ(st.completed, reqs.size() - 1)
                << sparse.describe();
            EXPECT_EQ(st.isolation_retries, 1u) << sparse.describe();
        });
    }
}

// ------------------------------------------------- GenerationEngine

TEST_F(ApproxServingTest, GenerationMatchesGreedyReference)
{
    for (const auto &sparse : approxKinds()) {
        Rng rng(71);
        auto gen = buildGenerator(sparseGenCfg(sparse), rng);
        const auto prompts =
            makeRequests({5, 1, 12, 7, 3}, gen->vocab(), 31);
        const std::size_t kMaxNew = 6;

        std::vector<std::vector<int>> want;
        for (const auto &p : prompts)
            want.push_back(referenceGreedy(*gen, p, kMaxNew));

        forEachThreadCount([&](std::size_t threads) {
            GenerationConfig cfg;
            cfg.max_live = 3;
            GenerationEngine eng(*gen, cfg);
            std::vector<std::future<std::vector<int>>> futs;
            for (const auto &p : prompts)
                futs.push_back(eng.submit(p, kMaxNew));
            for (std::size_t i = 0; i < futs.size(); ++i)
                EXPECT_EQ(futs[i].get(), want[i])
                    << sparse.describe() << " prompt " << i
                    << " threads=" << threads;
        });
    }
}

TEST_F(ApproxServingTest, FaultPoisonsOnlyItsOwnSequence)
{
    // Sticky Model fault on sequence #1: the isolation retry fails it
    // alone; the survivors' K/V caches are rolled back, re-prefilled
    // through the APPROXIMATE prefill path, and must still produce
    // the reference bits token for token.
    for (const auto &sparse : approxKinds()) {
        Rng rng(73);
        auto gen = buildGenerator(sparseGenCfg(sparse), rng);
        const auto prompts =
            makeRequests({5, 7, 3}, gen->vocab(), 37);
        const std::size_t kMaxNew = 4;
        std::vector<std::vector<int>> want;
        for (const auto &p : prompts)
            want.push_back(referenceGreedy(*gen, p, kMaxNew));

        FaultPlan plan;
        plan.request_faults[1] = FaultPlan::Stage::Model;
        GenerationConfig cfg;
        cfg.max_live = 3;
        cfg.fault_plan = &plan;
        GenerationEngine eng(*gen, cfg);
        std::vector<std::future<std::vector<int>>> futs;
        for (const auto &p : prompts)
            futs.push_back(eng.submit(p, kMaxNew));
        EXPECT_EQ(futs[0].get(), want[0]) << sparse.describe();
        expectError(ErrorCode::ModelFault, [&] { (void)futs[1].get(); },
                    "poisoned sequence");
        EXPECT_EQ(futs[2].get(), want[2]) << sparse.describe();
        const GenerationStats st = eng.stats();
        EXPECT_EQ(st.model_faults, 1u) << sparse.describe();
        EXPECT_GE(st.isolation_retries, 1u) << sparse.describe();
        EXPECT_EQ(st.completed, 2u) << sparse.describe();
    }
}

} // namespace
} // namespace fabnet
