/**
 * @file report_export_test.cpp
 * CSV exporters: structure, row counts, and file round trips.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "codesign/codesign.h"
#include "sim/report_export.h"

namespace fabnet {
namespace sim {
namespace {

std::size_t
countLines(const std::string &s)
{
    std::size_t n = 0;
    for (char c : s)
        if (c == '\n')
            ++n;
    return n;
}

ModelConfig
cfg()
{
    ModelConfig c;
    c.kind = ModelKind::FABNet;
    c.d_hid = 64;
    c.r_ffn = 2;
    c.n_total = 1;
    return c;
}

TEST(ReportExport, LatencyCsvHasHeaderOpsAndTotal)
{
    AcceleratorConfig hw;
    hw.p_be = 16;
    const auto rep = simulateModel(cfg(), 128, hw);
    const auto csv = latencyReportCsv(rep);
    // header + one row per op + TOTAL.
    EXPECT_EQ(countLines(csv), rep.ops.size() + 2);
    EXPECT_NE(csv.find("op,kind,compute_cycles"), std::string::npos);
    EXPECT_NE(csv.find("fft"), std::string::npos);
    EXPECT_NE(csv.find("butterfly_linear"), std::string::npos);
    EXPECT_NE(csv.find("TOTAL"), std::string::npos);
}

TEST(ReportExport, DesignPointsCsvMatchesPointCount)
{
    codesign::SearchSpace space;
    space.d_hid = {64};
    space.r_ffn = {2, 4};
    space.n_total = {1};
    space.n_abfly = {0};
    space.p_be = {16};
    space.p_bu = {4};
    space.p_qk = {0};
    space.p_sv = {0};
    codesign::CapacityAccuracyOracle oracle;
    ModelConfig base = cfg();
    base.max_seq = 1024;
    const auto points = codesign::gridSearch(
        space, 1024, base, oracle, codesign::Constraints{});
    ASSERT_EQ(points.size(), 2u);
    const auto csv = designPointsCsv(points);
    EXPECT_EQ(countLines(csv), 3u); // header + 2 rows
    EXPECT_NE(csv.find("d_hid,r_ffn"), std::string::npos);
}

TEST(ReportExport, FileRoundTrip)
{
    const std::string path =
        std::string(::testing::TempDir()) + "fab_export.csv";
    ASSERT_TRUE(writeFile(path, "a,b\n1,2\n"));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "a,b\n1,2\n");
    std::remove(path.c_str());
}

TEST(ReportExport, WriteToBadPathFails)
{
    EXPECT_FALSE(writeFile("/nonexistent/dir/out.csv", "x"));
}

} // namespace
} // namespace sim
} // namespace fabnet
