/**
 * @file autotune_test.cpp
 * The autotuner's safety contract (runtime/autotune.h):
 *   - plans are always executable (mk indexes kGemmKernels, grain > 0),
 *   - every candidate tile produces bitwise-identical GEMM results, so
 *     a tuned plan can never change numerics (the property that makes
 *     speed-only selection safe),
 *   - the on-disk cache round-trips deterministically: saving, clearing
 *     and reloading yields the same plan without re-searching, and the
 *     replayed plan computes bit-identical outputs,
 *   - a cache written by a different host/build/isa identity is
 *     rejected, never silently replayed,
 *   - shapes too small to matter skip the search (default plan),
 *   - tuningReport() carries the identity fields the bench JSONs and
 *     ServingEngine::stats() record.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/autotune.h"
#include "runtime/dispatch.h"
#include "runtime/isa.h"
#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using runtime::GemmPlan;
using runtime::kNumGemmKernels;
using testutil::bitwiseEqual;

class AutotuneTest : public testutil::RuntimeFixture
{
  protected:
    void TearDown() override
    {
        runtime::resetTuneCacheForTest();
        testutil::RuntimeFixture::TearDown();
    }

    static bool validPlan(const GemmPlan &p)
    {
        return p.mk >= 0 && p.mk < kNumGemmKernels && p.grain > 0;
    }

    /** Temp path for cache round-trips, removed on destruction. */
    struct TempFile
    {
        std::string path;
        explicit TempFile(const char *name)
            : path(std::string(::testing::TempDir()) + name)
        {
        }
        ~TempFile() { std::remove(path.c_str()); }
    };
};

TEST_F(AutotuneTest, PlansAreAlwaysExecutable)
{
    runtime::resetTuneCacheForTest();
    for (const auto &s : testutil::gemmShapeSweep(77, 2)) {
        EXPECT_TRUE(validPlan(runtime::planGemmF32(s.m, s.k, s.n)));
        EXPECT_TRUE(validPlan(runtime::planGemmF16(s.m, s.k, s.n)));
        EXPECT_TRUE(validPlan(runtime::planGemmInt8(s.m, s.k, s.n)));
    }
    // Degenerate shapes must not reach the timed search.
    EXPECT_TRUE(validPlan(runtime::planGemmF32(0, 0, 0)));
    // int8 has no tile menu: the packed layout fixes the kernel.
    EXPECT_EQ(runtime::planGemmInt8(256, 256, 256).mk,
              runtime::kDefaultGemmKernel);
}

TEST_F(AutotuneTest, EveryTileCandidateIsBitwiseIdentical)
{
    // The invariant the whole module rests on: mk partitions the
    // output, never an accumulation chain. If this fails, tuning by
    // speed alone is unsound.
    for (const auto &s : testutil::gemmShapeSweep(78, 2)) {
        Rng rng(79);
        const Tensor a = rng.normalTensor({s.m, s.k});
        const Tensor b = rng.normalTensor({s.k, s.n});
        const Tensor ref = ops::reference::matmul(a, b);
        for (int mk = 0; mk < kNumGemmKernels; ++mk) {
            Tensor c = Tensor::zeros(s.m, s.n);
            runtime::kernels().gemm_f32(a.data(), b.data(), c.data(), 0,
                                        s.m, s.k, s.n, nullptr, mk);
            EXPECT_TRUE(bitwiseEqual(c, ref)) << "mk=" << mk;
        }
    }
}

TEST_F(AutotuneTest, SmallShapesUseTheDefaultPlanWithoutSearching)
{
    runtime::resetTuneCacheForTest();
    const GemmPlan p = runtime::planGemmF32(4, 8, 8);
    EXPECT_EQ(p.mk, runtime::kDefaultGemmKernel);
    // Small shapes never enter the cache, so the report stays empty.
    EXPECT_NE(runtime::tuningReport().find("\"entries\": []"),
              std::string::npos);
}

TEST_F(AutotuneTest, CacheRoundTripReplaysTheSamePlanDeterministically)
{
    runtime::resetTuneCacheForTest();
    const std::size_t m = 128, k = 160, n = 128;
    const GemmPlan tuned = runtime::planGemmF32(m, k, n);
    ASSERT_TRUE(validPlan(tuned));
    // Second query must hit the in-process cache, not re-time.
    const GemmPlan again = runtime::planGemmF32(m, k, n);
    EXPECT_EQ(again.mk, tuned.mk);
    EXPECT_EQ(again.grain, tuned.grain);

    TempFile f("fabnet_tune_roundtrip.txt");
    ASSERT_TRUE(runtime::saveTuneCache(f.path));
    runtime::resetTuneCacheForTest();
    ASSERT_TRUE(runtime::loadTuneCache(f.path));
    const GemmPlan replayed = runtime::planGemmF32(m, k, n);
    EXPECT_EQ(replayed.mk, tuned.mk);
    EXPECT_EQ(replayed.grain, tuned.grain);

    // And the replayed plan computes the reference answer bitwise -
    // a stale-but-valid plan can cost speed, never correctness.
    Rng rng(80);
    const Tensor a = rng.normalTensor({m, k});
    const Tensor b = rng.normalTensor({k, n});
    EXPECT_TRUE(
        bitwiseEqual(ops::matmul(a, b), ops::reference::matmul(a, b)));
}

TEST_F(AutotuneTest, NearbyRowCountsShareOneBucketedPlan)
{
    // m is the batch/ragged axis: a ragged flush group's valid-row
    // total is different almost every batch, so exact-m keys would
    // re-search (and stall serving for tens of ms) per composition.
    // The key buckets m to the next power of two - nearby row counts
    // must resolve to one plan and ONE cache entry.
    runtime::resetTuneCacheForTest();
    const GemmPlan a = runtime::planGemmF32(150, 160, 128);
    const GemmPlan b = runtime::planGemmF32(200, 160, 128);
    const GemmPlan c = runtime::planGemmF32(256, 160, 128);
    EXPECT_EQ(a.mk, b.mk);
    EXPECT_EQ(a.grain, b.grain);
    EXPECT_EQ(a.mk, c.mk);
    EXPECT_EQ(a.grain, c.grain);
    if (runtime::autotuneEnabled()) {
        const std::string report = runtime::tuningReport();
        std::size_t entries = 0;
        for (std::size_t pos = report.find("\"family\"");
             pos != std::string::npos;
             pos = report.find("\"family\"", pos + 1))
            ++entries;
        EXPECT_EQ(entries, 1u) << report;
        EXPECT_NE(report.find("\"m\": 256"), std::string::npos)
            << report;
    }
}

TEST_F(AutotuneTest, ForeignCacheIdentityIsRejected)
{
    runtime::resetTuneCacheForTest();
    (void)runtime::planGemmF32(128, 160, 128);
    TempFile f("fabnet_tune_foreign.txt");
    ASSERT_TRUE(runtime::saveTuneCache(f.path));

    // Rewrite the identity line as if another machine had written it.
    std::vector<std::string> lines;
    {
        std::ifstream in(f.path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 2u);
    lines[1] = "# cpu=OtherCPU build=deadbeef0000 isa=scalar";
    {
        std::ofstream out(f.path, std::ios::trunc);
        for (const auto &l : lines)
            out << l << "\n";
    }
    EXPECT_FALSE(runtime::loadTuneCache(f.path));
    EXPECT_FALSE(runtime::loadTuneCache(f.path + ".does-not-exist"));
}

TEST_F(AutotuneTest, TuningReportCarriesTheIdentityFields)
{
    runtime::resetTuneCacheForTest();
    (void)runtime::planGemmF32(128, 160, 128);
    const std::string report = runtime::tuningReport();
    EXPECT_NE(report.find("\"isa\": \"" + std::string(runtime::isa()) +
                          "\""),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"cpu_signature\""), std::string::npos);
    EXPECT_NE(report.find("\"build\""), std::string::npos);
    EXPECT_NE(report.find("\"entries\""), std::string::npos);
    if (runtime::autotuneEnabled()) {
        EXPECT_NE(report.find("\"family\": \"f32\""), std::string::npos)
            << report;
        EXPECT_NE(report.find("\"m\": 128"), std::string::npos)
            << report;
    }
}

} // namespace
} // namespace fabnet
