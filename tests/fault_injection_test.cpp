/**
 * @file fault_injection_test.cpp
 * Deterministic chaos suite for the serving reliability layer
 * (`ctest -L fault`). Every failure path the engine promises to
 * handle is driven on demand through serve::FaultPlan (serve/fault.h)
 * and checked end to end:
 *   - all five serve::ErrorCode values are produced where the
 *     taxonomy says they are (admission throw vs failed future),
 *   - per-request fault isolation: a poisoned row fails alone with
 *     ModelFault while its batchmates' logits stay bitwise identical
 *     to a fault-free run, at threads {1, 4, 8},
 *   - deadlines: expired-in-queue requests fail BEFORE any model
 *     time, mid-batch expiry discards the computed result,
 *   - bounded admission: QueueFull rejection and DropExpiredFirst
 *     shedding, with the backpressure counters,
 *   - the watchdog cancels a stalled invocation and the engine keeps
 *     serving afterwards,
 *   - shutdown(deadline): queued requests and the cancelled in-flight
 *     group fail with ShuttingDown, and a flush() blocked across
 *     shutdown returns with its watermark fully resolved,
 *   - the runtime cancellation primitive itself (CancelScope).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "model/builder.h"
#include "runtime/parallel.h"
#include "serve/error.h"
#include "serve/fault.h"
#include "serve/serving.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using serve::deadlineAfter;
using serve::Error;
using serve::ErrorCode;
using serve::FaultPlan;
using serve::kNoDeadline;
using serve::ServingConfig;
using serve::ServingEngine;
using serve::ShedPolicy;
using testutil::bitwiseEqual;
using testutil::makeRequests;
using testutil::serveSerial;

ModelConfig
tinyCfg()
{
    ModelConfig cfg;
    cfg.kind = ModelKind::Transformer;
    cfg.vocab = 32;
    cfg.max_seq = 64;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.heads = 2;
    cfg.classes = 4;
    return cfg;
}

/** Config whose dispatcher never flushes on its own (full buckets
 *  need 64 requests, timeouts need 5 s): queued requests stay queued
 *  until a flush/drain, so admission-bound tests are deterministic. */
ServingConfig
parkedCfg()
{
    ServingConfig sc;
    sc.max_batch = 64;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::seconds(5);
    return sc;
}

/** Expect @p fn to throw serve::Error with @p code. */
template <class F>
void
expectError(ErrorCode code, F &&fn, const char *what)
{
    try {
        fn();
        FAIL() << what << ": no error thrown";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), code) << what << ": " << e.what();
    } catch (const std::exception &e) {
        FAIL() << what << ": untyped exception: " << e.what();
    }
}

using FaultInjectionTest = testutil::RuntimeFixture;

// ------------------------------------------------- InvalidRequest

TEST_F(FaultInjectionTest, AdmissionErrorsAreTypedAndQueueNothing)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(19);
    auto model = buildModel(cfg, rng);
    ServingEngine engine(*model, ServingConfig{});

    expectError(ErrorCode::InvalidRequest,
                [&] { engine.submit({}); }, "empty request");
    expectError(
        ErrorCode::InvalidRequest,
        [&] { engine.submit(std::vector<int>(cfg.max_seq + 1, 1)); },
        "over-long request");
    expectError(
        ErrorCode::DeadlineExceeded,
        [&] {
            engine.submit({1, 2, 3},
                          deadlineAfter(std::chrono::seconds(-1)));
        },
        "already-expired deadline");

    const auto st = engine.stats();
    EXPECT_EQ(st.requests, 0u); // nothing was queued
    EXPECT_EQ(st.expired_in_queue, 1u);
}

TEST_F(FaultInjectionTest, ServeAllIsAllOrNothingOnBadLengths)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(23);
    auto model = buildModel(cfg, rng);
    ServingEngine engine(*model, parkedCfg());

    // Request #2 is empty: the whole set must be rejected up front,
    // with nothing admitted and nothing left behind in the queue.
    std::vector<std::vector<int>> reqs = {{1, 2, 3}, {4, 5}, {}};
    expectError(ErrorCode::InvalidRequest,
                [&] { engine.serveAll(reqs); }, "serveAll bad set");
    EXPECT_EQ(engine.stats().requests, 0u);

    // The engine is unharmed: a valid set still serves bitwise.
    const auto good = makeRequests({9, 17, 30}, cfg.vocab, 7);
    EXPECT_TRUE(bitwiseEqual(engine.serveAll(good),
                             serveSerial(*model, good)));
}

TEST_F(FaultInjectionTest, InjectedAdmissionFaultUnwindsServeAllPrefix)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(29);
    auto model = buildModel(cfg, rng);
    FaultPlan plan;
    // Lengths are valid, but admission attempt #1 fails: the admitted
    // prefix (request #0) must be unwound, keeping all-or-nothing.
    plan.request_faults[1] = FaultPlan::Stage::Admission;
    ServingConfig sc = parkedCfg();
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    const auto reqs = makeRequests({9, 17, 30}, cfg.vocab, 11);
    expectError(ErrorCode::InvalidRequest,
                [&] { engine.serveAll(reqs); }, "injected admission");
    {
        const auto st = engine.stats();
        EXPECT_EQ(st.requests, st.failed); // admitted prefix unwound
        EXPECT_EQ(st.completed, 0u);
        EXPECT_EQ(st.batches, 0u); // nothing reached the model
    }

    // Later attempts (admission indices 3..) are past the fault.
    EXPECT_TRUE(bitwiseEqual(engine.serveAll(reqs),
                             serveSerial(*model, reqs)));
}

// ----------------------------------------------------- QueueFull

TEST_F(FaultInjectionTest, BoundedAdmissionRejectsWhenFull)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(31);
    auto model = buildModel(cfg, rng);
    ServingConfig sc = parkedCfg();
    sc.max_queue_requests = 2;
    ServingEngine engine(*model, sc);

    auto f1 = engine.submit({1, 2, 3});
    auto f2 = engine.submit({4, 5, 6});
    expectError(ErrorCode::QueueFull,
                [&] { engine.submit({7, 8, 9}); }, "depth cap");
    {
        const auto st = engine.stats();
        EXPECT_EQ(st.rejected, 1u);
        EXPECT_EQ(st.requests, 2u); // rejected attempts are not admitted
    }
    // The queued requests are unharmed and still get served.
    engine.flush();
    EXPECT_EQ(f1.get().size(), cfg.classes);
    EXPECT_EQ(f2.get().size(), cfg.classes);
}

TEST_F(FaultInjectionTest, TokenCapBoundsQueuedBytes)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(37);
    auto model = buildModel(cfg, rng);
    ServingConfig sc = parkedCfg();
    sc.max_queue_tokens = cfg.max_seq; // one max-length request's worth
    ServingEngine engine(*model, sc);

    auto f1 = engine.submit(std::vector<int>(40, 1));
    expectError(ErrorCode::QueueFull,
                [&] { engine.submit(std::vector<int>(40, 2)); },
                "token cap");
    EXPECT_EQ(engine.stats().rejected, 1u);
    engine.flush();
    EXPECT_EQ(f1.get().size(), cfg.classes);

    // A cap below max_seq would make some valid requests permanently
    // inadmissible; the constructor refuses it.
    ServingConfig bad = parkedCfg();
    bad.max_queue_tokens = cfg.max_seq - 1;
    Rng rng2(38);
    auto model2 = buildModel(cfg, rng2);
    EXPECT_THROW(ServingEngine(*model2, bad), std::invalid_argument);
}

TEST_F(FaultInjectionTest, DropExpiredFirstShedsToMakeRoom)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(41);
    auto model = buildModel(cfg, rng);
    // A slow first batch keeps the dispatcher busy: with it idle, the
    // urgent-flush path would rescue the near-deadline request before
    // it ever expired (see UrgentFlushServesNearDeadlineRequest).
    FaultPlan plan;
    plan.batch_delays[0] = std::chrono::milliseconds(150);
    ServingConfig sc;
    sc.max_batch = 64;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::microseconds(500);
    sc.max_queue_requests = 2;
    sc.shed_policy = ShedPolicy::DropExpiredFirst;
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    // A occupies the dispatcher; f1's deadline then expires while it
    // is parked behind A, f2 has none. The third submit finds the
    // queue full, sheds f1 (it could never be served in time anyway)
    // and is admitted in its place.
    auto fa = engine.submit(std::vector<int>(20, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto f1 = engine.submit({1, 2, 3},
                            deadlineAfter(std::chrono::milliseconds(1)));
    auto f2 = engine.submit({4, 5, 6});
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto f3 = engine.submit({7, 8, 9});

    expectError(ErrorCode::DeadlineExceeded, [&] { f1.get(); },
                "shed request");
    {
        const auto st = engine.stats();
        EXPECT_EQ(st.shed, 1u);
        EXPECT_EQ(st.rejected, 0u);
        EXPECT_EQ(st.requests, 4u);
    }
    engine.flush();
    EXPECT_EQ(fa.get().size(), cfg.classes);
    EXPECT_EQ(f2.get().size(), cfg.classes);
    EXPECT_EQ(f3.get().size(), cfg.classes);
}

// ----------------------------------------------- DeadlineExceeded

TEST_F(FaultInjectionTest, ExpiredInQueueFailsBeforeAnyModelTime)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(43);
    auto model = buildModel(cfg, rng);
    // A busy dispatcher is the only way a deadline can still die in
    // queue (an idle one urgent-flushes it in time): A is claimed
    // promptly and held inside a delayed invocation while B's 1 ms
    // deadline expires behind it.
    FaultPlan plan;
    plan.batch_delays[0] = std::chrono::milliseconds(100);
    ServingConfig sc;
    sc.max_batch = 64;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::microseconds(500);
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    auto fa = engine.submit(std::vector<int>(20, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto fb = engine.submit({1, 2, 3},
                            deadlineAfter(std::chrono::milliseconds(1)));

    expectError(ErrorCode::DeadlineExceeded, [&] { fb.get(); },
                "expired in queue");
    EXPECT_EQ(fa.get().size(), cfg.classes);
    const auto st = engine.stats();
    EXPECT_EQ(st.expired_in_queue, 1u);
    EXPECT_EQ(st.batches, 1u); // A's batch only: B never reached the model
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failed, 1u);
}

TEST_F(FaultInjectionTest, MidBatchExpiryDiscardsComputedResult)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(47);
    auto model = buildModel(cfg, rng);
    const auto reqs = makeRequests({10, 12}, cfg.vocab, 13);
    const auto want = serveSerial(*model, reqs);

    FaultPlan plan;
    // The first model batch is delayed past f1's deadline but the
    // batch is claimed well before it (the deadline is generous), so
    // the expiry deterministically lands MID-batch, not in-queue.
    plan.batch_delays[0] = std::chrono::milliseconds(500);
    ServingConfig sc = parkedCfg();
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    auto f1 = engine.submit(reqs[0],
                            deadlineAfter(std::chrono::milliseconds(200)));
    auto f2 = engine.submit(reqs[1]); // same bucket, no deadline
    engine.flush();

    expectError(ErrorCode::DeadlineExceeded, [&] { f1.get(); },
                "mid-batch expiry");
    EXPECT_EQ(f2.get(), want[1]); // batchmate still served, bitwise
    const auto st = engine.stats();
    EXPECT_EQ(st.expired_mid_batch, 1u);
    EXPECT_EQ(st.expired_in_queue, 0u);
    EXPECT_EQ(st.batches, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failed, 1u);
}

// ---------------------------------------- ModelFault + isolation

TEST_F(FaultInjectionTest, PoisonedRowFailsAloneSurvivorsBitwise)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(53);
    auto model = buildModel(cfg, rng);
    const std::vector<std::size_t> lens = testutil::mixedLens();
    const auto reqs = makeRequests(lens, cfg.vocab, 17);
    const auto want = serveSerial(*model, reqs);
    const std::size_t poisoned = 3; // rides in a multi-request bucket

    testutil::forEachThreadCount([&](std::size_t threads) {
        FaultPlan plan;
        plan.request_faults[poisoned] = FaultPlan::Stage::Model;
        ServingConfig sc;
        sc.max_batch = 8;
        sc.bucket_granularity = 16;
        sc.max_wait = std::chrono::seconds(5);
        sc.fault_plan = &plan;
        ServingEngine engine(*model, sc);

        std::vector<std::future<std::vector<float>>> futs;
        for (const auto &r : reqs)
            futs.push_back(engine.submit(r));
        engine.flush();

        for (std::size_t i = 0; i < futs.size(); ++i) {
            if (i == poisoned) {
                expectError(ErrorCode::ModelFault,
                            [&] { futs[i].get(); }, "poisoned row");
                continue;
            }
            // Survivors - batchmates of the poisoned row included -
            // must be bitwise identical to the fault-free run.
            const std::vector<float> got = futs[i].get();
            EXPECT_EQ(got, want[i])
                << "request " << i << " threads=" << threads;
        }
        const auto st = engine.stats();
        EXPECT_EQ(st.model_faults, 1u);
        EXPECT_EQ(st.failed, 1u);
        EXPECT_EQ(st.completed, reqs.size() - 1);
        EXPECT_EQ(st.isolation_retries, 1u)
            << "exactly the poisoned group retried";
    });
}

TEST_F(FaultInjectionTest, SingleRowFaultIsFinalNoRetryLoop)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(59);
    auto model = buildModel(cfg, rng);
    FaultPlan plan;
    plan.request_faults[0] = FaultPlan::Stage::Model;
    ServingConfig sc = parkedCfg();
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    auto bad = engine.submit({1, 2, 3});
    auto good = engine.submit(std::vector<int>(30, 2)); // other bucket
    engine.flush();

    expectError(ErrorCode::ModelFault, [&] { bad.get(); },
                "single-row fault");
    EXPECT_EQ(good.get().size(), cfg.classes);
    const auto st = engine.stats();
    // A 1-row batch is already isolated: its fault is final, with no
    // isolation pass (and therefore no possibility of a retry loop).
    EXPECT_EQ(st.isolation_retries, 0u);
    EXPECT_EQ(st.model_faults, 1u);
    EXPECT_EQ(st.completed, 1u);
}

TEST_F(FaultInjectionTest, WatchdogCancelsStalledInvocation)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(61);
    auto model = buildModel(cfg, rng);
    FaultPlan plan;
    plan.batch_stalls.insert(0); // first model batch never returns
    ServingConfig sc = parkedCfg();
    sc.watchdog_timeout = std::chrono::milliseconds(50);
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    auto f1 = engine.submit({1, 2, 3});
    auto f2 = engine.submit({4, 5, 6}); // same bucket, same group
    engine.flush();

    // A stalled invocation has no salvageable rows: the watchdog
    // cancels it and the whole group fails as ModelFault.
    expectError(ErrorCode::ModelFault, [&] { f1.get(); }, "stalled f1");
    expectError(ErrorCode::ModelFault, [&] { f2.get(); }, "stalled f2");
    {
        const auto st = engine.stats();
        EXPECT_GE(st.watchdog_fired, 1u);
        EXPECT_EQ(st.model_faults, 2u);
        EXPECT_EQ(st.isolation_retries, 0u);
    }

    // The engine survives its watchdog: batch #1 serves normally.
    auto f3 = engine.submit({7, 8, 9});
    engine.flush();
    EXPECT_EQ(f3.get().size(), cfg.classes);
}

// -------------------------------------------------- ShuttingDown

TEST_F(FaultInjectionTest, GracefulShutdownDrainsThenRefuses)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(67);
    auto model = buildModel(cfg, rng);
    ServingEngine engine(*model, parkedCfg());

    const auto reqs = makeRequests({9, 17, 30}, cfg.vocab, 19);
    const auto want = serveSerial(*model, reqs);
    std::vector<std::future<std::vector<float>>> futs;
    for (const auto &r : reqs)
        futs.push_back(engine.submit(r));

    engine.shutdown(); // full drain: everything already admitted serves
    for (std::size_t i = 0; i < futs.size(); ++i)
        EXPECT_EQ(futs[i].get(), want[i]);
    expectError(ErrorCode::ShuttingDown,
                [&] { engine.submit({1, 2, 3}); }, "post-shutdown submit");
    expectError(ErrorCode::ShuttingDown,
                [&] { engine.serveAll({{1, 2, 3}}); },
                "post-shutdown serveAll");
    engine.shutdown(); // idempotent
    EXPECT_EQ(engine.stats().completed, reqs.size());
}

TEST_F(FaultInjectionTest, ShutdownDeadlineFailsQueuedAndCancelsInFlight)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(71);
    auto model = buildModel(cfg, rng);
    FaultPlan plan;
    plan.batch_stalls.insert(0); // in-flight group is stuck, no watchdog
    ServingConfig sc;
    sc.max_batch = 64;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::microseconds(500); // claim f1 promptly
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    // f1 gets claimed (timeout flush) and stalls inside the model;
    // f2 (a different bucket) stays queued behind it.
    auto f1 = engine.submit(std::vector<int>(10, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto f2 = engine.submit(std::vector<int>(30, 2));

    engine.shutdown(deadlineAfter(std::chrono::milliseconds(100)));

    // The drain could not finish: the queued request is failed and the
    // stuck invocation is cancelled, both with ShuttingDown.
    expectError(ErrorCode::ShuttingDown, [&] { f1.get(); },
                "cancelled in-flight");
    expectError(ErrorCode::ShuttingDown, [&] { f2.get(); },
                "abandoned queued");
    const auto st = engine.stats();
    EXPECT_EQ(st.failed, 2u);
    EXPECT_EQ(st.completed, 0u);
    EXPECT_EQ(st.watchdog_fired, 0u); // no watchdog involved
}

TEST_F(FaultInjectionTest, FlushBlockedAcrossShutdownReturnsResolved)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(73);
    auto model = buildModel(cfg, rng);
    FaultPlan plan;
    plan.batch_stalls.insert(0);
    ServingConfig sc;
    sc.max_batch = 64;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::microseconds(500);
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    auto f1 = engine.submit(std::vector<int>(10, 1)); // will stall
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto f2 = engine.submit(std::vector<int>(30, 2)); // stays queued

    // flush() blocks: its watermark covers f1 (stalled) and f2
    // (queued). The satellite contract: a shutdown racing the flush
    // resolves the whole watermark, and flush returns normally.
    std::thread flusher([&] { engine.flush(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.shutdown(deadlineAfter(std::chrono::milliseconds(100)));
    flusher.join(); // must not hang

    // Everything the flush waited on is resolved (exceptionally).
    EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f2.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    expectError(ErrorCode::ShuttingDown, [&] { f1.get(); }, "f1");
    expectError(ErrorCode::ShuttingDown, [&] { f2.get(); }, "f2");
}

// ---------------------------------------- dispatcher wakeup / urgent flush

TEST_F(FaultInjectionTest, UrgentFlushServesNearDeadlineRequest)
{
    // The timeout-flush wakeup bug: the dispatcher armed its sleep
    // against the OLDEST enqueue time only, so a later-arriving
    // request whose deadline fell well inside max_wait slept out the
    // full window and expired in queue. The fixed dispatcher re-arms
    // against the earliest queued deadline and urgent-flushes that
    // request's bucket instead.
    const ModelConfig cfg = tinyCfg();
    Rng rng(79);
    auto model = buildModel(cfg, rng);
    FaultPlan plan;
    // The urgent batch itself is slow (count-keyed on dispatch 0):
    // the deadline must still be met with the injected delay inside.
    plan.batch_delays[0] = std::chrono::milliseconds(50);
    ServingConfig sc;
    sc.max_batch = 4;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::seconds(10); // normal flush far too late
    sc.fault_plan = &plan;
    ServingEngine engine(*model, sc);

    // A parks in the 16-bucket with no deadline: the dispatcher goes
    // to sleep with nothing due for 10 s.
    auto fa = engine.submit(std::vector<int>(10, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // B arrives in a DIFFERENT bucket with a 2 s deadline. The buggy
    // dispatcher kept sleeping on A's timeout; the fixed one wakes,
    // sees the deadline is inside the max_wait window, and flushes
    // B's bucket immediately.
    const std::vector<int> b_toks(30, 2);
    auto fb = engine.submit(
        b_toks, deadlineAfter(std::chrono::seconds(2)));

    const std::vector<float> got = fb.get(); // must resolve in time
    // Urgent batches keep the engine's bitwise contract.
    EXPECT_EQ(got, serveSerial(*model, {b_toks})[0]);

    auto st = engine.stats();
    EXPECT_EQ(st.expired_in_queue, 0u);
    EXPECT_GE(st.urgent_flushes, 1u);
    // Urgent pops are a subset of timeout flushes (same FlushReason).
    EXPECT_GE(st.flushed_timeout, st.urgent_flushes);

    // A was not dragged along (different bucket): it drains on flush.
    engine.flush();
    EXPECT_EQ(fa.get().size(), cfg.classes);
    st = engine.stats();
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.failed, 0u);
}

TEST_F(FaultInjectionTest, UrgentFlushTakesBucketMatesAlong)
{
    // An urgent flush pops the whole bucket FIFO-from-head, so a
    // no-deadline bucket-mate ahead of the urgent request rides along
    // instead of being bypassed.
    const ModelConfig cfg = tinyCfg();
    Rng rng(80);
    auto model = buildModel(cfg, rng);
    ServingConfig sc;
    sc.max_batch = 4;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::seconds(10);
    ServingEngine engine(*model, sc);

    auto fa = engine.submit(std::vector<int>(9, 1)); // same 16-bucket
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto fb = engine.submit(std::vector<int>(12, 2),
                            deadlineAfter(std::chrono::seconds(2)));

    EXPECT_EQ(fb.get().size(), cfg.classes);
    EXPECT_EQ(fa.get().size(), cfg.classes); // served in the same group
    const auto st = engine.stats();
    EXPECT_EQ(st.batches, 1u); // one urgent group carried both
    EXPECT_GE(st.urgent_flushes, 1u);
    EXPECT_EQ(st.expired_in_queue, 0u);
}

// ------------------------------------- runtime cancellation unit

TEST_F(FaultInjectionTest, ParallelForHonoursCancelScope)
{
    testutil::forEachThreadCount([&](std::size_t threads) {
        runtime::CancelToken token;
        std::atomic<std::size_t> ran{0};
        const auto body = [&](std::size_t b, std::size_t e) {
            ran.fetch_add(e - b, std::memory_order_relaxed);
        };

        // Without a scope the token is invisible: the region runs.
        token.cancel();
        runtime::parallelFor(0, 64, 8, body);
        EXPECT_EQ(ran.load(), 64u) << "threads=" << threads;

        // Inside a scope a cancelled token aborts the region with
        // runtime::Cancelled before (more) chunks are claimed.
        runtime::CancelScope scope(token);
        EXPECT_THROW(runtime::parallelFor(0, 64, 8, body),
                     runtime::Cancelled);

        // Reset re-arms the token for the next invocation.
        token.reset();
        ran.store(0);
        runtime::parallelFor(0, 64, 8, body);
        EXPECT_EQ(ran.load(), 64u);
    });
}

} // namespace
} // namespace fabnet
