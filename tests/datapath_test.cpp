/**
 * @file datapath_test.cpp
 * Functional hardware model: the adaptable BU datapath, the
 * bank-conflict-free S2P layout (the paper's Fig. 9/10 property,
 * verified as a parameterised sweep), the index coalescer, and the
 * Appendix-C style cross-validation of the functional engine against
 * the software reference.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "butterfly/butterfly.h"
#include "butterfly/fft.h"
#include "sim/datapath.h"
#include "tensor/rng.h"

namespace fabnet {
namespace sim {
namespace {

TEST(ButterflyUnit, BflyModeComputesTwiddleMultiply)
{
    AdaptableButterflyUnit bu;
    const auto r = bu.executeBfly(Half(2.0f), Half(3.0f), Half(0.5f),
                                  Half(1.0f), Half(-1.0f), Half(0.25f));
    // out1 = 0.5*2 + 1*3 = 4 ; out2 = -1*2 + 0.25*3 = -1.25.
    EXPECT_FLOAT_EQ(r.out1.toFloat(), 4.0f);
    EXPECT_FLOAT_EQ(r.out2.toFloat(), -1.25f);
}

TEST(ButterflyUnit, FftModeComputesComplexButterfly)
{
    AdaptableButterflyUnit bu;
    // in1 = 1+2i, in2 = 3-1i, w = -i : v = w*in2 = -1-3i ;
    // out1 = in1 + v = 0-1i ; out2 = in1 - v = 2+5i.
    const auto r =
        bu.executeFft(Half(1.0f), Half(2.0f), Half(3.0f), Half(-1.0f),
                      Half(0.0f), Half(-1.0f));
    EXPECT_FLOAT_EQ(r.out1_r.toFloat(), 0.0f);
    EXPECT_FLOAT_EQ(r.out1_i.toFloat(), -1.0f);
    EXPECT_FLOAT_EQ(r.out2_r.toFloat(), 2.0f);
    EXPECT_FLOAT_EQ(r.out2_i.toFloat(), 5.0f);
}

TEST(ButterflyUnit, FftModeMatchesComplexArithmetic)
{
    AdaptableButterflyUnit bu;
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const Complex in1(rng.normal(), rng.normal());
        const Complex in2(rng.normal(), rng.normal());
        const Complex w(rng.normal(), rng.normal());
        const auto r = bu.executeFft(
            Half(in1.real()), Half(in1.imag()), Half(in2.real()),
            Half(in2.imag()), Half(w.real()), Half(w.imag()));
        const Complex v = w * in2;
        EXPECT_NEAR(r.out1_r.toFloat(), (in1 + v).real(), 2e-2f);
        EXPECT_NEAR(r.out1_i.toFloat(), (in1 + v).imag(), 2e-2f);
        EXPECT_NEAR(r.out2_r.toFloat(), (in1 - v).real(), 2e-2f);
        EXPECT_NEAR(r.out2_i.toFloat(), (in1 - v).imag(), 2e-2f);
    }
}

TEST(MemoryLayout, StartingPositionsFollowRecursion)
{
    // P_0 = 0 and P_{2^(n-1)+k} = P_k - 1 (a shift down by one row)
    // -> P_col = popcount(col).
    ButterflyMemoryLayout layout(64, 4);
    EXPECT_EQ(layout.startingPosition(0), 0u);
    EXPECT_EQ(layout.startingPosition(1), 1u);
    EXPECT_EQ(layout.startingPosition(2), 1u);
    EXPECT_EQ(layout.startingPosition(3), 2u);
    EXPECT_EQ(layout.startingPosition(7), 3u);
    EXPECT_EQ(layout.startingPosition(8), 1u);
}

TEST(MemoryLayout, Figure10StorageReproduced)
{
    // The 16-input example of Fig. 10a with 4 banks: column 1 holds
    // x4..x7 shifted down one row, column 3 holds x12..x15 shifted
    // down two rows.
    ButterflyMemoryLayout layout(16, 4);
    EXPECT_EQ(layout.bankOf(0), 0u);
    EXPECT_EQ(layout.bankOf(4), 1u);  // shifted by P_1 = 1
    EXPECT_EQ(layout.bankOf(7), 0u);  // wraps
    EXPECT_EQ(layout.bankOf(8), 1u);  // P_2 = 1
    EXPECT_EQ(layout.bankOf(12), 2u); // P_3 = 2
    EXPECT_EQ(layout.bankOf(15), 1u);
    // Addresses are simply the column index.
    EXPECT_EQ(layout.addressOf(5), 1u);
    EXPECT_EQ(layout.addressOf(12), 3u);
}

TEST(MemoryLayout, EveryPairSpansTwoBanks)
{
    ButterflyMemoryLayout layout(64, 8);
    for (std::size_t s = 0; s < 6; ++s) {
        for (std::size_t p = 0; p < 32; ++p) {
            std::size_t i1, i2;
            ButterflyMatrix::pairIndices(s, p, i1, i2);
            EXPECT_NE(layout.bankOf(i1), layout.bankOf(i2))
                << "stage " << s << " pair " << p;
        }
    }
}

/**
 * The paper's central memory claim: with the S2P layout, every
 * butterfly stage is readable at full bandwidth with zero bank
 * conflicts. Swept across sizes and bank counts.
 */
class ConflictFreeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(ConflictFreeTest, AllStagesScheduleAtFullBandwidth)
{
    const auto [n, banks] = GetParam();
    ButterflyMemoryLayout layout(n, banks);
    for (std::size_t s = 0; (std::size_t{1} << s) < n; ++s) {
        std::vector<std::vector<std::size_t>> schedule;
        ASSERT_NO_THROW(schedule = layout.scheduleStage(s))
            << "n=" << n << " banks=" << banks << " stage=" << s;
        EXPECT_EQ(schedule.size(), n / banks);
        // Each cycle touches each bank at most once and covers all
        // indices exactly once across the stage.
        std::set<std::size_t> seen;
        for (const auto &cycle : schedule) {
            EXPECT_EQ(cycle.size(), banks);
            std::set<std::size_t> banks_used;
            for (std::size_t idx : cycle) {
                EXPECT_TRUE(banks_used.insert(layout.bankOf(idx)).second)
                    << "bank conflict at stage " << s;
                EXPECT_TRUE(seen.insert(idx).second);
            }
        }
        EXPECT_EQ(seen.size(), n);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConflictFreeTest,
    ::testing::Values(std::make_pair(8, 2), std::make_pair(16, 4),
                      std::make_pair(32, 4), std::make_pair(64, 8),
                      std::make_pair(128, 8), std::make_pair(256, 16),
                      std::make_pair(1024, 8),
                      std::make_pair(1024, 32)));

TEST(MemoryLayout, NaiveLayoutsDoConflict)
{
    // Control experiment (Fig. 8): the column-major layout
    // bank(x) = x mod B conflicts for stride >= B.
    const std::size_t n = 16, banks = 4;
    auto naive_bank = [&](std::size_t x) { return x % banks; };
    bool conflict = false;
    for (std::size_t s = 0; (std::size_t{1} << s) < n && !conflict;
         ++s) {
        for (std::size_t p = 0; p < n / 2; ++p) {
            std::size_t i1, i2;
            ButterflyMatrix::pairIndices(s, p, i1, i2);
            if (naive_bank(i1) == naive_bank(i2))
                conflict = true;
        }
    }
    EXPECT_TRUE(conflict);
}

TEST(IndexCoalescer, PairsArbitraryLaneOrder)
{
    std::vector<IndexCoalescer::Lane> lanes = {
        {Half(1.0f), 11}, {Half(2.0f), 1}, {Half(3.0f), 9},
        {Half(4.0f), 3}};
    auto paired = IndexCoalescer::coalesce(lanes, 8);
    ASSERT_EQ(paired.size(), 4u);
    EXPECT_EQ(paired[0].index, 1u);
    EXPECT_EQ(paired[1].index, 9u);
    EXPECT_EQ(paired[2].index, 3u);
    EXPECT_EQ(paired[3].index, 11u);
}

TEST(IndexCoalescer, ThrowsOnUnpairable)
{
    std::vector<IndexCoalescer::Lane> lanes = {{Half(1.0f), 0},
                                               {Half(2.0f), 3}};
    EXPECT_THROW(IndexCoalescer::coalesce(lanes, 8),
                 std::runtime_error);
}

TEST(FunctionalEngine, ButterflyLinearMatchesSoftwareReference)
{
    // Appendix C: functional hardware vs the "PyTorch" reference.
    for (std::size_t n : {8u, 32u, 128u}) {
        ButterflyMatrix m(n);
        Rng rng(n);
        m.initRandomRotation(rng);
        std::vector<float> x(n);
        for (auto &v : x)
            v = rng.normal();

        std::vector<float> ref(n);
        m.apply(x.data(), ref.data());

        FunctionalButterflyEngine engine(4);
        FunctionalButterflyEngine::RunStats stats;
        auto hw = engine.runButterflyLinear(m, x, &stats);

        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(hw[i], ref[i],
                        2e-2f * std::max(1.0f, std::fabs(ref[i])))
                << "n=" << n << " i=" << i;
        EXPECT_EQ(stats.butterfly_ops,
                  (n / 2) * log2Exact(n));
    }
}

TEST(FunctionalEngine, FftMatchesSoftwareReference)
{
    for (std::size_t n : {8u, 64u, 256u}) {
        Rng rng(n + 1);
        std::vector<Complex> x(n);
        for (auto &c : x)
            c = Complex(rng.normal(), rng.normal());

        auto ref = x;
        fftInPlace(ref);

        FunctionalButterflyEngine engine(4);
        auto hw = engine.runFft(x);
        float max_err = 0.0f;
        float max_mag = 0.0f;
        for (std::size_t i = 0; i < n; ++i) {
            max_err = std::max(max_err, std::abs(hw[i] - ref[i]));
            max_mag = std::max(max_mag, std::abs(ref[i]));
        }
        // fp16 accumulates error over log2(n) stages.
        EXPECT_LT(max_err, 0.02f * max_mag) << "n=" << n;
    }
}

TEST(FunctionalEngine, CycleCountMatchesAnalyticFormula)
{
    // The performance model's per-row formula must equal the cycles
    // the functional engine actually consumes.
    for (std::size_t pbu : {1u, 2u, 4u, 8u}) {
        FunctionalButterflyEngine engine(pbu);
        for (std::size_t n : {16u, 64u, 256u}) {
            ButterflyMatrix m(n);
            std::vector<float> x(n, 1.0f);
            FunctionalButterflyEngine::RunStats stats;
            engine.runButterflyLinear(m, x, &stats);
            EXPECT_EQ(stats.cycles, engine.analyticCycles(n))
                << "pbu=" << pbu << " n=" << n;
        }
    }
}

TEST(FunctionalEngine, UnifiedEngineSharedAcrossModes)
{
    // The same engine instance executes both an FFT and a butterfly
    // linear op - the "adaptable" property.
    FunctionalButterflyEngine engine(4);
    ButterflyMatrix m(16);
    Rng rng(5);
    m.initRandomRotation(rng);
    std::vector<float> x(16, 0.5f);
    EXPECT_NO_THROW(engine.runButterflyLinear(m, x));
    std::vector<Complex> xc(16, Complex(0.5f, 0.0f));
    EXPECT_NO_THROW(engine.runFft(xc));
}

} // namespace
} // namespace sim
} // namespace fabnet
