/**
 * @file isa_dispatch_test.cpp
 * The runtime-dispatch contract (runtime/isa.h + runtime/dispatch.h):
 *   - kernelTableFor() hands out a table exactly for the levels the
 *     host supports, correctly labelled, and support is monotone
 *     (a level implies everything below it),
 *   - EVERY host-reachable variant table is bitwise identical to the
 *     scalar table (== ops::reference, pinned by the existing parity
 *     suites) for every kernel family it exports: fp32 GEMM across
 *     the whole micro-kernel menu, the int8 GEMM panel, the row
 *     reductions/conversions, and the fp32/fp16/int8 butterfly stage
 *     sweeps - at thread counts {1, 4, 8} where threading applies.
 * Together with the forced-FABNET_ISA re-runs of the kernel parity
 * suites (ctest -L isa-parity) this is the gate that makes one binary
 * safe on every deployment target.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/dispatch.h"
#include "runtime/isa.h"
#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using runtime::Isa;
using runtime::KernelTable;
using runtime::kernelTableFor;
using runtime::kNumGemmKernels;
using runtime::kNumIsaLevels;
using testutil::bitwiseEqual;
using testutil::forEachThreadCount;
using testutil::gemmShapeSweep;

/** Every level the host can run, weakest first (always has Scalar). */
std::vector<const KernelTable *>
supportedTables()
{
    std::vector<const KernelTable *> tables;
    for (int l = 0; l < kNumIsaLevels; ++l)
        if (const KernelTable *t = kernelTableFor(static_cast<Isa>(l)))
            tables.push_back(t);
    return tables;
}

class IsaDispatchTest : public testutil::RuntimeFixture
{
};

TEST_F(IsaDispatchTest, SupportIsMonotoneAndTablesAreLabelled)
{
    ASSERT_TRUE(runtime::isaSupported(Isa::Scalar));
    bool above_unsupported = false;
    for (int l = 0; l < kNumIsaLevels; ++l) {
        const Isa isa = static_cast<Isa>(l);
        const bool sup = runtime::isaSupported(isa);
        // A level implies everything below it: once one level is
        // unsupported, every stronger one must be too.
        if (!sup)
            above_unsupported = true;
        EXPECT_FALSE(sup && above_unsupported)
            << "support not monotone at level " << runtime::isaName(isa);

        const KernelTable *t = kernelTableFor(isa);
        EXPECT_EQ(t != nullptr, sup) << runtime::isaName(isa);
        if (t) {
            EXPECT_EQ(t->level, isa);
            EXPECT_STREQ(t->name, runtime::isaName(isa));
        }
    }

    EXPECT_TRUE(runtime::isaSupported(runtime::bestSupportedIsa()));
    EXPECT_TRUE(runtime::isaSupported(runtime::activeIsa()));
    EXPECT_STREQ(runtime::isa(), runtime::isaName(runtime::activeIsa()));
    EXPECT_EQ(runtime::kernels().level, runtime::activeIsa());
    EXPECT_FALSE(runtime::cpuSignature().empty());
}

TEST_F(IsaDispatchTest, GemmF32EveryVariantEveryTileMatchesReference)
{
    for (const auto &s : gemmShapeSweep(2026)) {
        Rng rng(101);
        const Tensor a = rng.normalTensor({s.m, s.k});
        const Tensor b = rng.normalTensor({s.k, s.n});
        const Tensor ref = ops::reference::matmul(a, b);
        for (const KernelTable *t : supportedTables()) {
            for (int mk = 0; mk < kNumGemmKernels; ++mk) {
                forEachThreadCount([&](std::size_t threads) {
                    Tensor c = Tensor::zeros(s.m, s.n);
                    // Odd grain so panels straddle the register tile.
                    runtime::parallelFor(
                        0, s.m, 3, [&](std::size_t r0, std::size_t r1) {
                            t->gemm_f32(a.data(), b.data(), c.data(), r0,
                                        r1, s.k, s.n, nullptr, mk);
                        });
                    EXPECT_TRUE(bitwiseEqual(c, ref))
                        << t->name << " mk=" << mk << " threads="
                        << threads << " shape " << s.m << "x" << s.k
                        << "x" << s.n;
                });
            }
        }
    }
}

TEST_F(IsaDispatchTest, GemmInt8EveryVariantMatchesScalarTable)
{
    const KernelTable *scalar = kernelTableFor(Isa::Scalar);
    ASSERT_NE(scalar, nullptr);
    for (const auto &s : gemmShapeSweep(2027)) {
        Rng rng(102);
        const Tensor af = rng.normalTensor({s.m, s.k});
        const Tensor bf = rng.normalTensor({s.k, s.n});

        // Quantise operands once with the shared helpers; the tables
        // only differ in the int32 panel arithmetic under test.
        std::vector<std::int8_t> aq(s.m * s.k), bq(s.k * s.n);
        std::vector<float> a_scale(s.m), b_scale(s.n);
        for (std::size_t i = 0; i < s.m; ++i) {
            const float *row = af.data() + i * s.k;
            const float sc =
                runtime::int8Scale(scalar->max_abs_row(row, s.k));
            a_scale[i] = sc;
            scalar->quantize_i8_row(row, aq.data() + i * s.k, s.k,
                                    sc > 0.0f ? 1.0f / sc : 0.0f);
        }
        for (std::size_t j = 0; j < s.n; ++j) {
            float m = 0.0f;
            for (std::size_t i = 0; i < s.k; ++i) {
                const float v = bf.data()[i * s.n + j];
                m = std::max(m, v < 0.0f ? -v : v);
            }
            b_scale[j] = runtime::int8Scale(m);
            const float inv = b_scale[j] > 0.0f ? 1.0f / b_scale[j] : 0.0f;
            for (std::size_t i = 0; i < s.k; ++i)
                bq[i * s.n + j] = runtime::quantizeInt8(
                    bf.data()[i * s.n + j], inv);
        }
        std::vector<std::int16_t> bp(((s.k + 1) / 2) * s.n * 2);
        runtime::packInt8PairsB(bq.data(), bp.data(), s.k, s.n);

        Tensor ref = Tensor::zeros(s.m, s.n);
        scalar->gemm_i8(aq.data(), bp.data(), ref.data(), 0, s.m, s.k,
                        s.n, a_scale.data(), b_scale.data(), nullptr);

        for (const KernelTable *t : supportedTables()) {
            forEachThreadCount([&](std::size_t threads) {
                Tensor c = Tensor::zeros(s.m, s.n);
                runtime::parallelFor(
                    0, s.m, 3, [&](std::size_t r0, std::size_t r1) {
                        t->gemm_i8(aq.data(), bp.data(), c.data(), r0,
                                   r1, s.k, s.n, a_scale.data(),
                                   b_scale.data(), nullptr);
                    });
                EXPECT_TRUE(bitwiseEqual(c, ref))
                    << t->name << " threads=" << threads << " shape "
                    << s.m << "x" << s.k << "x" << s.n;
            });
        }
    }
}

TEST_F(IsaDispatchTest, RowKernelsEveryVariantMatchesScalarTable)
{
    const KernelTable *scalar = kernelTableFor(Isa::Scalar);
    ASSERT_NE(scalar, nullptr);
    // Lengths below/at/above the 8/16-lane vector widths plus tails.
    for (const std::size_t n : {1u, 7u, 8u, 15u, 16u, 17u, 63u, 200u}) {
        Rng rng(300 + static_cast<unsigned>(n));
        const Tensor xt = rng.normalTensor({n});
        const float *x = xt.data();

        const float m_ref = scalar->max_abs_row(x, n);
        const float inv = m_ref > 0.0f
                              ? 1.0f / runtime::int8Scale(m_ref)
                              : 0.0f;
        std::vector<float> percol_inv(n);
        for (std::size_t i = 0; i < n; ++i)
            percol_inv[i] = inv * (1.0f + 0.01f * static_cast<float>(i));

        std::vector<std::int8_t> q_ref(n), q(n);
        scalar->quantize_i8_row(x, q_ref.data(), n, inv);
        std::vector<std::int8_t> qp_ref(n), qp(n);
        scalar->quantize_i8_row_percol(x, qp_ref.data(), n,
                                       percol_inv.data());
        std::vector<float> h_ref(xt.data(), xt.data() + n);
        scalar->round_row_to_half(h_ref.data(), n);
        std::vector<std::uint16_t> bits_ref(n), bits(n);
        scalar->float_to_half_bits_row(x, bits_ref.data(), n);
        std::vector<float> wide_ref(n), wide(n);
        scalar->half_bits_to_float_row(bits_ref.data(), wide_ref.data(),
                                       n);

        for (const KernelTable *t : supportedTables()) {
            SCOPED_TRACE(std::string(t->name) + " n=" +
                         std::to_string(n));
            EXPECT_EQ(t->max_abs_row(x, n), m_ref);
            t->quantize_i8_row(x, q.data(), n, inv);
            EXPECT_EQ(q, q_ref);
            t->quantize_i8_row_percol(x, qp.data(), n,
                                      percol_inv.data());
            EXPECT_EQ(qp, qp_ref);
            std::vector<float> h(xt.data(), xt.data() + n);
            t->round_row_to_half(h.data(), n);
            EXPECT_EQ(std::memcmp(h.data(), h_ref.data(),
                                  n * sizeof(float)),
                      0);
            t->float_to_half_bits_row(x, bits.data(), n);
            EXPECT_EQ(bits, bits_ref);
            t->half_bits_to_float_row(bits_ref.data(), wide.data(), n);
            EXPECT_EQ(std::memcmp(wide.data(), wide_ref.data(),
                                  n * sizeof(float)),
                      0);
        }
    }
}

TEST_F(IsaDispatchTest, ButterflyStagesEveryVariantMatchesScalarTable)
{
    const KernelTable *scalar = kernelTableFor(Isa::Scalar);
    ASSERT_NE(scalar, nullptr);
    // Full stage-major blocks (nb == 16, the vector fast path) and
    // ragged tails, across every stride of a 64-point butterfly.
    const std::size_t n = 64;
    for (const std::size_t nb : {1u, 5u, 16u}) {
        Rng rng(500 + static_cast<unsigned>(nb));
        const Tensor wt = rng.normalTensor({(n / 2) * 4});
        const Tensor buf0 = rng.normalTensor({n * nb});
        std::vector<std::int8_t> wq((n / 2) * 4);
        for (std::size_t i = 0; i < wq.size(); ++i)
            wq[i] = static_cast<std::int8_t>(
                runtime::quantizeInt8(wt.data()[i], 40.0f));

        for (std::size_t h = 1; h <= n / 2; h *= 2) {
            // fp32 and fp16 stages rewrite the block in place.
            std::vector<float> ref32(buf0.data(), buf0.data() + n * nb);
            scalar->bfly_stage(ref32.data(), wt.data(), n, h, nb);
            std::vector<float> ref16(buf0.data(), buf0.data() + n * nb);
            scalar->qbfly_f16_stage(ref16.data(), wt.data(), n, h, nb);

            // int8 stage + requant: start from a quantised block.
            std::vector<std::int8_t> q0(n * nb);
            for (std::size_t i = 0; i < n * nb; ++i)
                q0[i] = static_cast<std::int8_t>(
                    runtime::quantizeInt8(buf0.data()[i], 40.0f));
            std::vector<float> scale0(nb, 1.0f / 40.0f);
            std::vector<std::int32_t> y_ref(n * nb, 0);
            std::vector<std::int8_t> q_ref = q0;
            std::vector<float> s_ref = scale0;
            scalar->qbfly_i8_stage(q_ref.data(), y_ref.data(), wq.data(),
                                   n, h, nb);
            scalar->qbfly_i8_requant(y_ref.data(), q_ref.data(),
                                     s_ref.data(), 0.025f, n, nb);

            for (const KernelTable *t : supportedTables()) {
                SCOPED_TRACE(std::string(t->name) + " h=" +
                             std::to_string(h) + " nb=" +
                             std::to_string(nb));
                std::vector<float> b32(buf0.data(),
                                       buf0.data() + n * nb);
                t->bfly_stage(b32.data(), wt.data(), n, h, nb);
                EXPECT_EQ(std::memcmp(b32.data(), ref32.data(),
                                      n * nb * sizeof(float)),
                          0);
                std::vector<float> b16(buf0.data(),
                                       buf0.data() + n * nb);
                t->qbfly_f16_stage(b16.data(), wt.data(), n, h, nb);
                EXPECT_EQ(std::memcmp(b16.data(), ref16.data(),
                                      n * nb * sizeof(float)),
                          0);

                std::vector<std::int32_t> y(n * nb, 0);
                std::vector<std::int8_t> q = q0;
                std::vector<float> s = scale0;
                t->qbfly_i8_stage(q.data(), y.data(), wq.data(), n, h,
                                  nb);
                EXPECT_EQ(y, y_ref);
                t->qbfly_i8_requant(y.data(), q.data(), s.data(),
                                    0.025f, n, nb);
                EXPECT_EQ(q, q_ref);
                EXPECT_EQ(std::memcmp(s.data(), s_ref.data(),
                                      nb * sizeof(float)),
                          0);
            }
        }
    }
}

TEST_F(IsaDispatchTest, BlockTransposesEveryVariantMatchScalarTable)
{
    const KernelTable *scalar = kernelTableFor(Isa::Scalar);
    ASSERT_NE(scalar, nullptr);
    const std::size_t n = 48, stride = 53; // rows longer than the block
    for (const std::size_t nb : {1u, 5u, 16u}) {
        Rng rng(700 + static_cast<unsigned>(nb));
        const Tensor src = rng.normalTensor({nb * stride});

        std::vector<float> in_ref(n * nb, -1.0f);
        scalar->bfly_transpose_in(src.data(), in_ref.data(), n, nb,
                                  stride);
        // Spot-check the layout contract against the definition.
        EXPECT_EQ(in_ref[0], src.data()[0]);
        EXPECT_EQ(in_ref[(n - 1) * nb + (nb - 1)],
                  src.data()[(nb - 1) * stride + (n - 1)]);

        std::vector<float> out_ref(nb * stride, 0.0f);
        scalar->bfly_transpose_out(in_ref.data(), out_ref.data(), n, nb,
                                   stride);
        for (std::size_t r = 0; r < nb; ++r)
            EXPECT_EQ(std::memcmp(out_ref.data() + r * stride,
                                  src.data() + r * stride,
                                  n * sizeof(float)),
                      0);

        std::vector<float> f16_ref(n * nb, -1.0f);
        scalar->qbfly_f16_transpose_in(src.data(), f16_ref.data(), n,
                                       nb, stride);
        std::vector<std::int8_t> q_ref(n * nb, -1);
        std::vector<float> s_ref(nb, -1.0f);
        scalar->qbfly_i8_quant_in(src.data(), q_ref.data(),
                                  s_ref.data(), n, nb, stride);
        std::vector<float> dq_ref(nb * stride, 0.0f);
        scalar->qbfly_i8_dequant_out(q_ref.data(), s_ref.data(),
                                     dq_ref.data(), n, nb, stride);

        for (const KernelTable *t : supportedTables()) {
            SCOPED_TRACE(std::string(t->name) + " nb=" +
                         std::to_string(nb));
            std::vector<float> buf(n * nb, -1.0f);
            t->bfly_transpose_in(src.data(), buf.data(), n, nb, stride);
            EXPECT_EQ(std::memcmp(buf.data(), in_ref.data(),
                                  n * nb * sizeof(float)),
                      0);
            std::vector<float> outb(nb * stride, 0.0f);
            t->bfly_transpose_out(in_ref.data(), outb.data(), n, nb,
                                  stride);
            EXPECT_EQ(std::memcmp(outb.data(), out_ref.data(),
                                  nb * stride * sizeof(float)),
                      0);
            std::vector<float> f16(n * nb, -1.0f);
            t->qbfly_f16_transpose_in(src.data(), f16.data(), n, nb,
                                      stride);
            EXPECT_EQ(std::memcmp(f16.data(), f16_ref.data(),
                                  n * nb * sizeof(float)),
                      0);
            std::vector<std::int8_t> q(n * nb, -1);
            std::vector<float> s(nb, -1.0f);
            t->qbfly_i8_quant_in(src.data(), q.data(), s.data(), n, nb,
                                 stride);
            EXPECT_EQ(q, q_ref);
            EXPECT_EQ(std::memcmp(s.data(), s_ref.data(),
                                  nb * sizeof(float)),
                      0);
            std::vector<float> dq(nb * stride, 0.0f);
            t->qbfly_i8_dequant_out(q_ref.data(), s_ref.data(),
                                    dq.data(), n, nb, stride);
            EXPECT_EQ(std::memcmp(dq.data(), dq_ref.data(),
                                  nb * stride * sizeof(float)),
                      0);
        }
    }
}

// An all-zero row must get scale 0 and exact zero codes on every
// variant (the int8StagesRow contract the quant_in kernel pins).
TEST_F(IsaDispatchTest, QuantInZeroRowContractHoldsOnEveryVariant)
{
    const std::size_t n = 24, nb = 3, stride = 24;
    std::vector<float> src(nb * stride, 0.0f);
    for (std::size_t i = 0; i < n; ++i)
        src[2 * stride + i] = 0.5f; // only row 2 is non-zero
    for (const KernelTable *t : supportedTables()) {
        SCOPED_TRACE(t->name);
        std::vector<std::int8_t> q(n * nb, -1);
        std::vector<float> s(nb, -1.0f);
        t->qbfly_i8_quant_in(src.data(), q.data(), s.data(), n, nb,
                             stride);
        EXPECT_EQ(s[0], 0.0f);
        EXPECT_EQ(s[1], 0.0f);
        EXPECT_GT(s[2], 0.0f);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(q[i * nb + 0], 0);
            EXPECT_EQ(q[i * nb + 1], 0);
            EXPECT_EQ(q[i * nb + 2], 127);
        }
    }
}

} // namespace
} // namespace fabnet
