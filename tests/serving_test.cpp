/**
 * @file serving_test.cpp
 * The serving front end's correctness contract:
 *   - bucketing/grouping policy (serve/batcher.h) is deterministic,
 *   - batched serving of mixed-length request sets produces logits
 *     bitwise identical to serial single-request inference, at thread
 *     counts {1, 4, 8}, including odd lengths that straddle bucket
 *     boundaries, for both Dense and Butterfly attention models,
 *   - results are invariant to the batch composition (max_batch /
 *     granularity choices),
 *   - the workspace cap/shrink policy releases over-cap scratch.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "model/builder.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"
#include "serve/batcher.h"
#include "serve/serving.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using serve::BatchGroup;
using serve::FlushReason;
using serve::RequestBatcher;
using serve::ServingConfig;
using serve::ServingEngine;
using testutil::bitwiseEqual;
using testutil::kThreadCounts;
using testutil::makeRequests;
using testutil::serveSerial;

ModelConfig
tinyCfg(ModelKind kind)
{
    ModelConfig cfg;
    cfg.kind = kind;
    cfg.vocab = 32;
    cfg.max_seq = 64;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    // FABNet with every block ABfly: attention with butterfly
    // projections, the masked-serving-compatible configuration.
    cfg.n_abfly = kind == ModelKind::FABNet ? 2 : 0;
    cfg.heads = 2;
    cfg.classes = 4;
    return cfg;
}

// Odd lengths straddling the granularity-16 bucket boundaries (shared
// harness: below, at, and above multiples, plus the extremes).
const std::vector<std::size_t> kMixedLens = testutil::mixedLens();

using ServingTest = testutil::RuntimeFixture;

// ------------------------------------------------------------ policy

TEST_F(ServingTest, BucketLenRoundsUpAndClamps)
{
    RequestBatcher b(8, 16, 64);
    EXPECT_EQ(b.bucketLen(1), 16u);
    EXPECT_EQ(b.bucketLen(15), 16u);
    EXPECT_EQ(b.bucketLen(16), 16u);
    EXPECT_EQ(b.bucketLen(17), 32u);
    EXPECT_EQ(b.bucketLen(33), 48u);
    EXPECT_EQ(b.bucketLen(63), 64u);
    EXPECT_EQ(b.bucketLen(64), 64u);
    EXPECT_THROW(b.bucketLen(0), std::invalid_argument);
    EXPECT_THROW(b.bucketLen(65), std::invalid_argument);

    // Granularity that does not divide max_seq clamps the top bucket.
    RequestBatcher c(8, 24, 60);
    EXPECT_EQ(c.bucketLen(25), 48u);
    EXPECT_EQ(c.bucketLen(49), 60u);
}

TEST_F(ServingTest, FullBucketsFlushFifoAndInOrder)
{
    RequestBatcher b(4, 16, 64);
    const auto t0 = RequestBatcher::Clock::now();
    // 5 requests in the 16-bucket, 4 in the 32-bucket.
    for (std::uint64_t id = 0; id < 5; ++id)
        b.push(id, 10, t0);
    for (std::uint64_t id = 10; id < 14; ++id)
        b.push(id, 20, t0);
    ASSERT_EQ(b.size(), 9u);

    auto g1 = b.popReady(t0, std::chrono::seconds(1));
    ASSERT_TRUE(g1.has_value());
    EXPECT_EQ(g1->padded_len, 16u); // smallest full bucket first
    EXPECT_EQ(g1->reason, FlushReason::Full);
    EXPECT_EQ(g1->ids, (std::vector<std::uint64_t>{0, 1, 2, 3}));

    auto g2 = b.popReady(t0, std::chrono::seconds(1));
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->padded_len, 32u);
    EXPECT_EQ(g2->ids, (std::vector<std::uint64_t>{10, 11, 12, 13}));

    // The leftover request is not ready until max_wait passes...
    EXPECT_FALSE(
        b.popReady(t0, std::chrono::seconds(1)).has_value());
    // ...then flushes as a timeout group.
    auto g3 = b.popReady(t0 + std::chrono::seconds(2),
                         std::chrono::seconds(1));
    ASSERT_TRUE(g3.has_value());
    EXPECT_EQ(g3->reason, FlushReason::Timeout);
    EXPECT_EQ(g3->ids, (std::vector<std::uint64_t>{4}));
    EXPECT_TRUE(b.empty());
}

TEST_F(ServingTest, TimeoutPicksOldestHeadAcrossBuckets)
{
    RequestBatcher b(8, 16, 64);
    const auto t0 = RequestBatcher::Clock::now();
    b.push(1, 20, t0 + std::chrono::milliseconds(5));
    b.push(2, 10, t0); // older head, larger id, different bucket
    auto g = b.popReady(t0 + std::chrono::seconds(1),
                        std::chrono::milliseconds(1));
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->ids, (std::vector<std::uint64_t>{2}));
    auto drained = b.drain();
    ASSERT_TRUE(drained.has_value());
    EXPECT_EQ(drained->reason, FlushReason::Drain);
    EXPECT_EQ(drained->ids, (std::vector<std::uint64_t>{1}));
}

// ------------------------------------------- bitwise serving parity

TEST_F(ServingTest, MixedLengthsBitwiseMatchSerialAcrossThreadCounts)
{
    for (ModelKind kind : {ModelKind::Transformer, ModelKind::FABNet}) {
        const ModelConfig cfg = tinyCfg(kind);
        Rng rng(123);
        auto model = buildModel(cfg, rng);
        const auto reqs = makeRequests(kMixedLens, cfg.vocab, 7);
        const auto want = serveSerial(*model, reqs);

        for (std::size_t threads : kThreadCounts) {
            runtime::setNumThreads(threads);
            ServingConfig sc;
            sc.max_batch = 8;
            sc.bucket_granularity = 16;
            // Long max_wait: only full/drain flushes, so the batch
            // count below is deterministic.
            sc.max_wait = std::chrono::seconds(5);
            ServingEngine engine(*model, sc);
            const auto got = engine.serveAll(reqs);
            EXPECT_TRUE(bitwiseEqual(got, want))
                << "kind=" << static_cast<int>(kind)
                << " threads=" << threads;
            const auto st = engine.stats();
            EXPECT_EQ(st.requests, reqs.size());
            EXPECT_EQ(st.completed, reqs.size());
            EXPECT_LT(st.batches, reqs.size()); // actually batched
        }
    }
}

TEST_F(ServingTest, ResultsInvariantToBatchComposition)
{
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(5);
    auto model = buildModel(cfg, rng);
    const auto reqs = makeRequests(kMixedLens, cfg.vocab, 11);
    const auto want = serveSerial(*model, reqs);

    const std::size_t combos[][2] = {// {max_batch, granularity}
                                     {1, 16}, {4, 8}, {8, 16},
                                     {16, 32}, {3, 1}};
    for (const auto &c : combos) {
        ServingConfig sc;
        sc.max_batch = c[0];
        sc.bucket_granularity = c[1];
        ServingEngine engine(*model, sc);
        EXPECT_TRUE(bitwiseEqual(engine.serveAll(reqs), want))
            << "max_batch=" << c[0] << " granularity=" << c[1];
    }
}

TEST_F(ServingTest, ServeAllRunsInlineWithIdenticalLogitsAndStats)
{
    // Inline bulk dispatch: serveAll() must run its drain groups on
    // the calling thread (no dispatcher round-trip), with logits
    // bitwise identical to serial inference and the same grouping
    // stats the dispatcher path produces.
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(53);
    auto model = buildModel(cfg, rng);
    const auto reqs = makeRequests(kMixedLens, cfg.vocab, 29);
    const auto want = serveSerial(*model, reqs);
    std::size_t total_tokens = 0;
    for (const auto &r : reqs)
        total_tokens += r.size();

    ServingConfig sc;
    sc.max_batch = 4;
    sc.bucket_granularity = 16;
    // Long max_wait: the dispatcher is never woken by serveAll and
    // never times out, so EVERY batch must have run inline.
    sc.max_wait = std::chrono::seconds(5);

    serve::ServingStats inline_stats;
    for (std::size_t threads : kThreadCounts) {
        runtime::setNumThreads(threads);
        ServingEngine engine(*model, sc);
        const auto got = engine.serveAll(reqs);
        EXPECT_TRUE(bitwiseEqual(got, want)) << "threads=" << threads;
        const auto st = engine.stats();
        EXPECT_EQ(st.requests, reqs.size());
        EXPECT_EQ(st.completed, reqs.size());
        EXPECT_EQ(st.failed, 0u);
        EXPECT_EQ(st.inline_batches, st.batches)
            << "a batch round-tripped through the dispatcher";
        EXPECT_EQ(st.flushed_timeout, 0u);
        EXPECT_EQ(st.batches, st.flushed_full + st.flushed_drain);
        EXPECT_EQ(st.real_tokens, total_tokens);
        inline_stats = st; // deterministic across thread counts
    }

    // The dispatcher path (submit + flush) serves the same stream
    // with the same grouping: identical logits and aggregate stats,
    // only the execution thread differs.
    {
        ServingEngine engine(*model, sc);
        std::vector<std::future<std::vector<float>>> futs;
        for (const auto &r : reqs)
            futs.push_back(engine.submit(r));
        engine.flush();
        std::vector<std::vector<float>> got;
        got.reserve(futs.size());
        for (auto &f : futs)
            got.push_back(f.get());
        EXPECT_TRUE(bitwiseEqual(got, want));
        const auto st = engine.stats();
        EXPECT_EQ(st.inline_batches, 0u);
        EXPECT_EQ(st.batches, inline_stats.batches);
        EXPECT_EQ(st.completed, inline_stats.completed);
        EXPECT_EQ(st.real_tokens, inline_stats.real_tokens);
        EXPECT_EQ(st.padded_tokens, inline_stats.padded_tokens);
    }
}

TEST_F(ServingTest, CausalModelServesBitwiseToo)
{
    // Right-padding composes with the causal mask (visible =
    // min(i+1, len)), so decoder-style models serve exactly as well.
    ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    cfg.causal = true;
    Rng rng(31);
    auto model = buildModel(cfg, rng);
    const auto reqs = makeRequests(kMixedLens, cfg.vocab, 13);
    const auto want = serveSerial(*model, reqs);
    ServingEngine engine(*model, ServingConfig{});
    EXPECT_TRUE(bitwiseEqual(engine.serveAll(reqs), want));
}

// --------------------------------------------- ragged batch parity

TEST_F(ServingTest, RaggedForwardBatchBitwiseMatchesPaddedPath)
{
    // The tentpole contract: forwardBatch with ragged execution
    // (skip padded rows end-to-end) is bitwise identical to the dense
    // masked path - and therefore to serial unpadded forward - for
    // degenerate shapes (batch of 1, all-equal lengths, single-token
    // sequences, max-straddle buckets) at threads {1, 4, 8}.
    const std::size_t seq = 32;
    const std::vector<std::vector<std::size_t>> shapes = {
        {20},                    // batch of 1, padded
        {32, 32, 32},            // all-equal lengths, no padding
        {1, 1, 1, 1},            // single-token sequences
        {1, 32, 17, 2, 31, 16},  // max-straddle mix
    };
    for (ModelKind kind : {ModelKind::Transformer, ModelKind::FABNet}) {
        const ModelConfig cfg = tinyCfg(kind);
        Rng rng(211);
        auto model = buildModel(cfg, rng);
        ASSERT_TRUE(model->raggedBatch()); // on by default
        for (const auto &lens : shapes) {
            const auto reqs = makeRequests(lens, cfg.vocab, 97);
            std::vector<int> tokens(lens.size() * seq, 0);
            for (std::size_t i = 0; i < reqs.size(); ++i)
                std::copy(reqs[i].begin(), reqs[i].end(),
                          tokens.begin() + i * seq);

            model->setRaggedBatch(false);
            const Tensor want =
                model->forwardBatch(tokens, lens.size(), seq, lens);
            model->setRaggedBatch(true);
            for (std::size_t threads : kThreadCounts) {
                runtime::setNumThreads(threads);
                const Tensor got =
                    model->forwardBatch(tokens, lens.size(), seq, lens);
                EXPECT_TRUE(bitwiseEqual(got, want))
                    << "kind=" << static_cast<int>(kind)
                    << " batch=" << lens.size()
                    << " threads=" << threads;
            }
        }
    }
}

TEST_F(ServingTest, RaggedServingBitwiseMatchesSerialQuantizedToo)
{
    // End-to-end through the engine with int8/fp16 linears: ragged
    // execution must preserve the quantized serving guarantee (served
    // logits == serial quantized inference, bit for bit).
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Fp16}) {
        const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
        Rng rng(223);
        auto model = buildModel(cfg, rng);
        ASSERT_GT(model->quantizeLinears(kind), 0u);
        const auto reqs = makeRequests(kMixedLens, cfg.vocab, 101);
        const auto want = serveSerial(*model, reqs);

        for (std::size_t threads : kThreadCounts) {
            runtime::setNumThreads(threads);
            ServingConfig sc;
            sc.max_batch = 8;
            sc.bucket_granularity = 16;
            sc.max_wait = std::chrono::seconds(5);
            ServingEngine engine(*model, sc);
            const auto got = engine.serveAll(reqs);
            EXPECT_TRUE(bitwiseEqual(got, want))
                << "kind=" << static_cast<int>(kind)
                << " threads=" << threads;
            const auto st = engine.stats();
            EXPECT_EQ(st.rows_skipped,
                      st.padded_tokens - st.real_tokens);
            EXPECT_GT(st.rows_skipped, 0u);
        }
    }
}

TEST_F(ServingTest, StatsReportBatchCompositionOverheadAndSkippedRows)
{
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(227);
    auto model = buildModel(cfg, rng);
    ServingConfig sc;
    sc.max_batch = 8;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::seconds(5);
    {
        ServingEngine engine(*model, sc);
        // One full group in the 16-bucket: padded to 16, longest
        // member 12 - bucket overhead > batch-composition overhead.
        engine.serveAll(makeRequests({10, 12, 9, 12, 11, 8, 12, 10},
                                     cfg.vocab, 103));
        const auto st = engine.stats();
        EXPECT_EQ(st.real_tokens, 84u);
        EXPECT_EQ(st.padded_tokens, 8u * 16u);
        EXPECT_EQ(st.tight_tokens, 8u * 12u);
        EXPECT_DOUBLE_EQ(st.padOverhead(), 1.0 - 84.0 / 128.0);
        EXPECT_DOUBLE_EQ(st.padOverheadBatch(), 1.0 - 84.0 / 96.0);
        EXPECT_EQ(st.rows_skipped, 128u - 84u);
    }
    // With ragged execution off the engine must report zero skipped
    // rows (the padded work really ran).
    model->setRaggedBatch(false);
    {
        ServingEngine engine(*model, sc);
        engine.serveAll(makeRequests({10, 12}, cfg.vocab, 107));
        EXPECT_EQ(engine.stats().rows_skipped, 0u);
    }
    model->setRaggedBatch(true);
}

// --------------------------------------------------- async behaviour

TEST_F(ServingTest, TimeoutFlushServesWithoutExplicitFlush)
{
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(17);
    auto model = buildModel(cfg, rng);
    ServingConfig sc;
    sc.max_batch = 64; // never fills: only max_wait can flush
    sc.max_wait = std::chrono::microseconds(500);
    ServingEngine engine(*model, sc);
    auto reqs = makeRequests({9, 12, 30}, cfg.vocab, 3);
    std::vector<std::future<std::vector<float>>> futs;
    for (auto &r : reqs)
        futs.push_back(engine.submit(std::move(r)));
    for (auto &f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready);
        EXPECT_EQ(f.get().size(), cfg.classes);
    }
    const auto st = engine.stats();
    EXPECT_EQ(st.completed, 3u);
    EXPECT_GE(st.flushed_timeout, 1u);
}

TEST_F(ServingTest, InvalidRequestsRejectedOrFailTheirFuture)
{
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(19);
    auto model = buildModel(cfg, rng);
    ServingEngine engine(*model, ServingConfig{});

    // Admission failures are typed (serve::Error derives
    // std::runtime_error, so legacy catch sites still work).
    try {
        engine.submit({});
        FAIL() << "empty request admitted";
    } catch (const serve::Error &e) {
        EXPECT_EQ(e.code(), serve::ErrorCode::InvalidRequest);
    }
    try {
        engine.submit(std::vector<int>(cfg.max_seq + 1, 1));
        FAIL() << "over-long request admitted";
    } catch (const serve::Error &e) {
        EXPECT_EQ(e.code(), serve::ErrorCode::InvalidRequest);
    }

    // An out-of-vocab token is only detectable inside the model; it
    // must fail the future (as a typed ModelFault keeping the model's
    // message), not kill the dispatcher.
    auto bad = engine.submit({1, 2, static_cast<int>(cfg.vocab) + 5});
    engine.flush();
    try {
        bad.get();
        FAIL() << "out-of-vocab request served";
    } catch (const serve::Error &e) {
        EXPECT_EQ(e.code(), serve::ErrorCode::ModelFault);
    }

    auto good = engine.submit({1, 2, 3});
    engine.flush();
    EXPECT_EQ(good.get().size(), cfg.classes);

    const auto st = engine.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.requests, 2u);
    EXPECT_EQ(st.model_faults, 1u);
}

TEST_F(ServingTest, RejectsFourierModelsUnlessOptedIn)
{
    // FourierMix has no masked form: its served logits would depend on
    // the padded length a request is bucketed at, so the engine
    // refuses such models unless determinism is explicitly forfeited.
    ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    cfg.kind = ModelKind::FNet;
    Rng rng(41);
    auto model = buildModel(cfg, rng);
    EXPECT_THROW(ServingEngine(*model, ServingConfig{}),
                 std::invalid_argument);

    {
        ServingConfig sc;
        sc.allow_unmasked_mixers = true;
        ServingEngine engine(*model, sc);
        const auto out =
            engine.serveAll(makeRequests({8, 16}, cfg.vocab, 3));
        ASSERT_EQ(out.size(), 2u);
        EXPECT_EQ(out[0].size(), cfg.classes);
    }

    // Padding-free buckets (granularity 1) are deterministic even for
    // Fourier mixers, so no opt-in is needed there.
    ServingConfig exact;
    exact.bucket_granularity = 1;
    ServingEngine engine(*model, exact);
    const auto out = engine.serveAll(makeRequests({8, 8, 16}, cfg.vocab, 5));
    ASSERT_EQ(out.size(), 3u);
}

TEST_F(ServingTest, StatsTrackPaddingOverhead)
{
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(23);
    auto model = buildModel(cfg, rng);
    ServingConfig sc;
    sc.bucket_granularity = 16;
    ServingEngine engine(*model, sc);
    engine.serveAll(makeRequests({10, 16, 20}, cfg.vocab, 29));
    const auto st = engine.stats();
    EXPECT_EQ(st.real_tokens, 46u);   // 10 + 16 + 20
    EXPECT_EQ(st.padded_tokens, 64u); // 16 + 16 + 32
    EXPECT_GT(st.padOverhead(), 0.0);
    EXPECT_LT(st.padOverhead(), 1.0);
    EXPECT_GE(st.avgBatch(), 1.0);
}

// ------------------------------------------------ workspace policy

struct ShrinkTestWs; // private tag: no kernel shares this buffer

TEST_F(ServingTest, WorkspaceCapShrinksRetainedScratch)
{
    using namespace fabnet::runtime;
    setWorkspaceCapBytes(0);
    const std::size_t big = 1u << 20; // 4 MiB of floats
    threadWorkspace<ShrinkTestWs>(big);
    EXPECT_GE(threadWorkspaceCapacityBytes<ShrinkTestWs>(),
              big * sizeof(float));

    // Grow-only without a cap.
    threadWorkspace<ShrinkTestWs>(64);
    EXPECT_GE(threadWorkspaceCapacityBytes<ShrinkTestWs>(),
              big * sizeof(float));

    // With a cap, the next under-cap request releases the retention.
    setWorkspaceCapBytes(64 << 10);
    threadWorkspace<ShrinkTestWs>(64);
    EXPECT_LE(threadWorkspaceCapacityBytes<ShrinkTestWs>(), 64u << 10);

    // Over-cap requests are still honoured (correctness over policy)..
    float *p = threadWorkspace<ShrinkTestWs>(big);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(threadWorkspaceCapacityBytes<ShrinkTestWs>(),
              big * sizeof(float));
    // ..and released again on the next under-cap request.
    threadWorkspace<ShrinkTestWs>(128);
    EXPECT_LE(threadWorkspaceCapacityBytes<ShrinkTestWs>(), 64u << 10);
}

TEST_F(ServingTest, EngineInstallsAndRestoresWorkspaceCap)
{
    using namespace fabnet::runtime;
    setWorkspaceCapBytes(0);
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(37);
    auto model = buildModel(cfg, rng);
    {
        ServingConfig sc;
        sc.workspace_cap_bytes = 1u << 20;
        ServingEngine engine(*model, sc);
        EXPECT_EQ(workspaceCapBytes(), 1u << 20);
    }
    EXPECT_EQ(workspaceCapBytes(), 0u);

    // Overlapping engine lifetimes: the tightest active cap wins, and
    // destroying one engine must not clobber the other's policy.
    {
        ServingConfig a;
        a.workspace_cap_bytes = 4u << 20;
        auto e1 = std::make_unique<ServingEngine>(*model, a);
        EXPECT_EQ(workspaceCapBytes(), 4u << 20);
        ServingConfig b;
        b.workspace_cap_bytes = 2u << 20;
        Rng rng2(38);
        auto model2 = buildModel(cfg, rng2);
        ServingEngine e2(*model2, b);
        EXPECT_EQ(workspaceCapBytes(), 2u << 20);
        e1.reset();
        EXPECT_EQ(workspaceCapBytes(), 2u << 20);
    }
    EXPECT_EQ(workspaceCapBytes(), 0u);
}

// --------------------------------------- deadline arithmetic hardening

TEST_F(ServingTest, DeadlineAfterSaturatesInsteadOfOverflowing)
{
    using namespace std::chrono;
    // A duration too large for the steady clock's representation must
    // saturate to the no-deadline sentinel, never wrap negative into
    // an instantly-expired deadline (the pre-fix behaviour).
    EXPECT_EQ(serve::deadlineAfter(microseconds::max()),
              serve::kNoDeadline);
    EXPECT_EQ(serve::deadlineAfter(milliseconds::max()),
              serve::kNoDeadline);
    EXPECT_EQ(serve::deadlineAfter(hours::max()), serve::kNoDeadline);
    EXPECT_EQ(
        serve::deadlineAfter(RequestBatcher::Clock::duration::max()),
        serve::kNoDeadline);

    // Large-but-representable durations land in the far future with no
    // wraparound: ~120 years fits a nanosecond-rep steady clock.
    const auto far = serve::deadlineAfter(hours(1 << 20));
    EXPECT_NE(far, serve::kNoDeadline);
    EXPECT_GT(far, RequestBatcher::Clock::now() + hours(1));

    // Ordinary deadlines are unchanged by the hardening.
    const auto soon = serve::deadlineAfter(seconds(5));
    EXPECT_NE(soon, serve::kNoDeadline);
    EXPECT_GT(soon, RequestBatcher::Clock::now());
    EXPECT_LT(soon, RequestBatcher::Clock::now() + seconds(6));

    // Huge negative durations saturate to the clock's minimum - an
    // already-expired deadline, not a wrapped future one.
    EXPECT_EQ(serve::deadlineAfter(hours::min()),
              serve::Deadline::min());
    EXPECT_LE(serve::deadlineAfter(milliseconds::min()),
              RequestBatcher::Clock::now());
}

TEST_F(ServingTest, HugeDeadlineAdmitsAndServesNormally)
{
    // End-to-end regression: before the saturation fix a huge deadline
    // wrapped negative and every such request died DeadlineExceeded at
    // submit. It must behave exactly like "no deadline".
    const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    Rng rng(39);
    auto model = buildModel(cfg, rng);
    ServingConfig sc;
    sc.max_batch = 1; // flush-on-full: served immediately
    ServingEngine engine(*model, sc);
    const auto reqs = makeRequests({12}, cfg.vocab, 40);
    auto fut = engine.submit(
        reqs[0],
        serve::deadlineAfter(std::chrono::microseconds::max()));
    EXPECT_EQ(fut.get().size(), cfg.classes);
    const auto st = engine.stats();
    EXPECT_EQ(st.expired_in_queue, 0u);
    EXPECT_EQ(st.completed, 1u);
}

} // namespace
} // namespace fabnet
