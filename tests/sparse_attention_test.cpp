/**
 * @file sparse_attention_test.cpp
 * The approximate-attention discipline (`ctest -L approx-accuracy`):
 * the selection kernels (nn/sparse_attention.h) are deterministic with
 * lowest-index tie-breaking; TopK attention with k >= t degenerates
 * BITWISE to the dense path (and ButterflyTopK to Butterfly); every
 * approximate kind is bitwise run-to-run deterministic at thread
 * counts {1,4,8}, bitwise invariant between the ragged and dense
 * masked paths, and bitwise identical between incremental decode and
 * full recompute; approximate outputs stay within PINNED tolerance
 * bounds of exact attention; and the straight-through backward keeps
 * the fast-vs-reference gradient bitwise parity.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "nn/attention.h"
#include "nn/decode.h"
#include "nn/dense.h"
#include "nn/sparse_attention.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using nn::butterflyCandidateBound;
using nn::butterflyCandidates;
using nn::selectTopK;
using nn::sparseKindName;
using nn::SparseAttentionConfig;
using nn::SparseKind;
using testutil::bitwiseEqual;
using testutil::forEachThreadCount;
using testutil::raggedInput;
using testutil::randomTensor;

/** Dense-projection attention at a fixed seed; same seed + different
 *  sparse config = same weights, different key set. */
std::unique_ptr<nn::MultiHeadAttention>
makeAttention(unsigned seed, SparseAttentionConfig sparse,
              bool causal = false, std::size_t d = 32,
              std::size_t heads = 2)
{
    Rng rng(seed);
    auto mha = std::make_unique<nn::MultiHeadAttention>(
        d, heads, std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng), causal);
    mha->setSparse(sparse);
    return mha;
}

/** The approximate kinds under test (with representative k). */
std::vector<SparseAttentionConfig>
approxKinds()
{
    return {{SparseKind::TopK, 5},
            {SparseKind::Butterfly, 0},
            {SparseKind::ButterflyTopK, 3}};
}

using SparseAttentionTest = testutil::RuntimeFixture;

// ------------------------------------------------- selection kernel

/** Sorted-pairs reference: stable sort by score desc keeps the lower
 *  index first among ties - the contract selectTopK promises. */
std::vector<std::uint32_t>
referenceTopK(const std::vector<float> &scores, std::size_t k)
{
    std::vector<std::uint32_t> idx(scores.size());
    std::iota(idx.begin(), idx.end(), 0u);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return scores[a] > scores[b];
                     });
    idx.resize(std::min(k, scores.size()));
    std::sort(idx.begin(), idx.end());
    return idx;
}

TEST_F(SparseAttentionTest, SelectTopKMatchesSortReferenceWithTies)
{
    Rng rng(101);
    for (std::size_t n : {1u, 2u, 3u, 7u, 16u, 33u, 128u}) {
        for (std::size_t k : {1u, 2u, 5u, 16u, 200u}) {
            // Coarse score grid forces plenty of duplicate scores, so
            // the tie-break order is what decides the selected set.
            std::vector<float> scores(n);
            for (float &s : scores)
                s = static_cast<float>(rng.randint(0, 3));
            std::vector<std::uint32_t> got(n);
            const std::size_t m =
                selectTopK(scores.data(), n, k, got.data());
            got.resize(m);
            EXPECT_EQ(got, referenceTopK(scores, k))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST_F(SparseAttentionTest, SelectTopKTieBreaksTowardLowerIndex)
{
    // All-equal scores: the selected set must be exactly {0..k-1}.
    const std::vector<float> flat(17, 0.25f);
    std::vector<std::uint32_t> out(flat.size());
    const std::size_t m = selectTopK(flat.data(), flat.size(), 6,
                                     out.data());
    ASSERT_EQ(m, 6u);
    for (std::uint32_t i = 0; i < 6; ++i)
        EXPECT_EQ(out[i], i);
}

TEST_F(SparseAttentionTest, SelectTopKIdentityWhenKCoversAll)
{
    Rng rng(103);
    std::vector<float> scores(23);
    for (float &s : scores)
        s = rng.uniform(-1.0f, 1.0f);
    for (std::size_t k : {23u, 24u, 1000u}) {
        std::vector<std::uint32_t> out(scores.size());
        const std::size_t m =
            selectTopK(scores.data(), scores.size(), k, out.data());
        ASSERT_EQ(m, scores.size());
        for (std::uint32_t i = 0; i < m; ++i)
            EXPECT_EQ(out[i], i);
    }
}

TEST_F(SparseAttentionTest, ButterflyCandidateProperties)
{
    for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 17u, 64u, 100u}) {
        for (std::size_t i = 0; i < n + 3; ++i) {
            std::vector<std::uint32_t> out(butterflyCandidateBound(n));
            const std::size_t m =
                butterflyCandidates(i, n, out.data());
            ASSERT_GE(m, 1u) << "n=" << n << " i=" << i;
            ASSERT_LE(m, butterflyCandidateBound(n));
            const std::size_t iq = std::min(i, n - 1); // padded clamp
            bool has_self = false;
            for (std::size_t s = 0; s < m; ++s) {
                EXPECT_LT(out[s], n);
                if (s > 0)
                    EXPECT_LT(out[s - 1], out[s]) << "not ascending";
                // Every candidate is the (clamped) query or one bit
                // flip away from it.
                const std::size_t x = out[s] ^ iq;
                EXPECT_TRUE(x == 0 || (x & (x - 1)) == 0)
                    << "n=" << n << " i=" << i << " cand=" << out[s];
                has_self |= out[s] == iq;
            }
            EXPECT_TRUE(has_self) << "n=" << n << " i=" << i;
        }
    }
}

TEST_F(SparseAttentionTest, SetSparseRejectsTopKWithoutK)
{
    auto mha = makeAttention(7, {});
    EXPECT_THROW(mha->setSparse({SparseKind::TopK, 0}),
                 std::invalid_argument);
    EXPECT_THROW(mha->setSparse({SparseKind::ButterflyTopK, 0}),
                 std::invalid_argument);
}

// ------------------------------------------------- bitwise degeneracy

TEST_F(SparseAttentionTest, TopKCoveringAllKeysIsBitwiseDense)
{
    const std::size_t t = 37;
    const Tensor x = randomTensor({3, t, 32}, 11);
    for (bool causal : {false, true}) {
        auto exact = makeAttention(21, {}, causal);
        for (std::size_t k : {t, t + 5}) {
            auto topk = makeAttention(
                21, {SparseKind::TopK, k}, causal);
            runtime::setNumThreads(1);
            const Tensor want = exact->forward(x);
            forEachThreadCount([&](std::size_t threads) {
                EXPECT_TRUE(bitwiseEqual(topk->forward(x), want))
                    << "causal=" << causal << " k=" << k
                    << " threads=" << threads;
            });
            // Masked batch too: selection sees only the real prefix.
            const std::vector<std::size_t> lens = {t, 9, 23};
            runtime::setNumThreads(1);
            const Tensor want_m = exact->forwardMasked(x, lens);
            forEachThreadCount([&](std::size_t threads) {
                EXPECT_TRUE(bitwiseEqual(
                    topk->forwardMasked(x, lens), want_m))
                    << "masked causal=" << causal << " k=" << k
                    << " threads=" << threads;
            });
        }
    }
}

TEST_F(SparseAttentionTest, ButterflyTopKWithLargeKIsBitwiseButterfly)
{
    const std::size_t t = 33;
    const Tensor x = randomTensor({2, t, 32}, 13);
    auto plain = makeAttention(22, {SparseKind::Butterfly, 0});
    // k >= the candidate-set bound: the top-k filter selects every
    // candidate, so the two kinds must produce identical bits.
    auto filtered = makeAttention(
        22, {SparseKind::ButterflyTopK, butterflyCandidateBound(t)});
    runtime::setNumThreads(1);
    const Tensor want = plain->forward(x);
    forEachThreadCount([&](std::size_t threads) {
        EXPECT_TRUE(bitwiseEqual(filtered->forward(x), want))
            << "threads=" << threads;
    });
}

// --------------------------------------- run-to-run + thread sweeps

TEST_F(SparseAttentionTest, ApproxForwardIsDeterministicAcrossRunsAndThreads)
{
    const Tensor x = randomTensor({3, 29, 32}, 17);
    for (const auto &sp : approxKinds()) {
        for (bool causal : {false, true}) {
            auto mha = makeAttention(31, sp, causal);
            runtime::setNumThreads(1);
            const Tensor want = mha->forward(x);
            // Same instance re-run, a fresh same-seed instance, and
            // the full thread sweep: all the same bits.
            auto fresh = makeAttention(31, sp, causal);
            forEachThreadCount([&](std::size_t threads) {
                const std::string tag =
                    std::string(sparseKindName(sp.kind)) +
                    " causal=" + (causal ? "1" : "0") +
                    " threads=" + std::to_string(threads);
                EXPECT_TRUE(bitwiseEqual(mha->forward(x), want)) << tag;
                EXPECT_TRUE(bitwiseEqual(fresh->forward(x), want))
                    << tag << " (fresh instance)";
            });
        }
    }
}

TEST_F(SparseAttentionTest, ApproxRaggedMatchesMaskedDense)
{
    const std::size_t seq = 24, d = 32;
    for (const auto &sp : approxKinds()) {
        for (bool causal : {false, true}) {
            auto mha = makeAttention(41, sp, causal);
            std::size_t case_idx = 0;
            for (const auto &lens :
                 testutil::raggedLensSweep(seq, 43)) {
                const nn::RowSet rows(lens.size(), seq, lens);
                const Tensor x = raggedInput(rows, d, 47 + case_idx);
                testutil::expectRaggedForwardParity(
                    *mha, x, rows,
                    std::string(sparseKindName(sp.kind)) +
                        " causal=" + (causal ? "1" : "0") + " case " +
                        std::to_string(case_idx));
                ++case_idx;
            }
        }
    }
}

// ------------------------------------------------- decode parity

TEST_F(SparseAttentionTest, ApproxDecodeStepMatchesFullRecompute)
{
    const std::size_t b = 3, t = 12, d = 32, prefill_len = 3;
    const Tensor x = randomTensor({b, t, d}, 53);
    for (const auto &sp : approxKinds()) {
        auto mha = makeAttention(59, sp, /*causal=*/true);
        runtime::setNumThreads(1);
        const Tensor ref =
            mha->forwardMasked(x, std::vector<std::size_t>(b, t));
        forEachThreadCount([&](std::size_t threads) {
            const std::string tag =
                std::string(sparseKindName(sp.kind)) +
                " threads=" + std::to_string(threads);
            std::vector<nn::KVCache> caches(b);
            nn::StepState step;
            for (auto &c : caches)
                step.caches.push_back(&c);
            step.positions.assign(b, 0);
            // Prefill the first rows, then decode the rest one row at
            // a time; every incremental row must reproduce the full
            // recompute's bits.
            const nn::RowSet rows(
                b, prefill_len,
                std::vector<std::size_t>(b, prefill_len));
            Tensor xp = Tensor::zeros(b, prefill_len, d);
            for (std::size_t bb = 0; bb < b; ++bb)
                std::memcpy(xp.data() + bb * prefill_len * d,
                            x.data() + bb * t * d,
                            prefill_len * d * sizeof(float));
            const Tensor yp = mha->forwardPrefill(xp, rows, step);
            for (std::size_t bb = 0; bb < b; ++bb)
                EXPECT_EQ(std::memcmp(
                              yp.data() + bb * prefill_len * d,
                              ref.data() + bb * t * d,
                              prefill_len * d * sizeof(float)),
                          0)
                    << tag << " prefill rows, seq " << bb;
            for (std::size_t i = prefill_len; i < t; ++i) {
                Tensor xs = Tensor::zeros(b, 1, d);
                for (std::size_t bb = 0; bb < b; ++bb)
                    std::memcpy(xs.data() + bb * d,
                                x.data() + (bb * t + i) * d,
                                d * sizeof(float));
                const Tensor ys = mha->forwardStep(xs, step);
                for (std::size_t bb = 0; bb < b; ++bb)
                    EXPECT_EQ(std::memcmp(
                                  ys.data() + bb * d,
                                  ref.data() + (bb * t + i) * d,
                                  d * sizeof(float)),
                              0)
                        << tag << " step " << i << ", seq " << bb;
            }
        });
    }
}

// ------------------------------------------------- pinned tolerance

TEST_F(SparseAttentionTest, ApproxOutputsWithinPinnedToleranceOfExact)
{
    // PINNED bounds, chosen from a measured baseline with ~3x margin
    // (the golden-value discipline): a fidelity regression - e.g. a
    // selection bug that drops high-mass keys - blows through them; a
    // legitimate rounding-level change does not. TopK keeps half the
    // keys (the high-mass ones), so it sits far closer to exact than
    // the O(log t) butterfly set.
    const std::size_t t = 64;
    const Tensor x = randomTensor({2, t, 32}, 61);
    auto exact = makeAttention(67, {});
    runtime::setNumThreads(1);
    const Tensor want = exact->forward(x);

    // Baseline run (this seed, N(0,1) Dense projections, outputs of
    // scale ~6): topk maxAbs 0.285, butterfly/butterfly+topk ~6.2.
    // A selection bug shows up at the output scale, so the topk bound
    // discriminates sharply; the butterfly kinds are COARSE by design
    // - their quality pin is the golden-accuracy floor, this bound
    // only catches gross breakage (NaN, wrong-row gathers).
    auto topk = makeAttention(67, {SparseKind::TopK, t / 2});
    testutil::expectNearParity(topk->forward(x), want,
                               {0.60f, 0.05f}, "topk k=t/2");

    auto bfly = makeAttention(67, {SparseKind::Butterfly, 0});
    testutil::expectNearParity(bfly->forward(x), want,
                               {9.0f, 0.05f}, "butterfly");

    auto bftk = makeAttention(67, {SparseKind::ButterflyTopK, 4});
    testutil::expectNearParity(bftk->forward(x), want,
                               {9.0f, 0.05f}, "butterfly+topk");
}

// ------------------------------------------------- training parity

TEST_F(SparseAttentionTest, ApproxBackwardKeepsBitwiseGradParity)
{
    // The straight-through backward reads the sparse forward's attn_
    // cache (zeros = masked), so the fast-vs-reference gradient parity
    // harness applies to the approximate kinds unchanged.
    const Tensor x = randomTensor({2, 19, 32}, 71);
    for (const auto &sp : approxKinds()) {
        auto mha = makeAttention(73, sp);
        testutil::expectBackwardParity(
            *mha, x, 79, std::string("sparse ") +
                             sparseKindName(sp.kind));
    }
}

} // namespace
} // namespace fabnet
