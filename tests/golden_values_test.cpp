/**
 * @file golden_values_test.cpp
 * Regression pins for the headline reproduction numbers. If a change
 * to any model shifts one of the paper-facing results outside its
 * accepted band, this file fails before the benches would silently
 * print different tables.
 *
 * Bands are the paper-reported values with the tolerances argued in
 * EXPERIMENTS.md.
 */
#include <gtest/gtest.h>

#include "codesign/codesign.h"
#include "comparators/devices.h"
#include "data/lra.h"
#include "model/flops.h"
#include "sim/accelerator.h"
#include "sim/baseline.h"
#include "sim/power.h"
#include "sim/resource.h"

namespace fabnet {
namespace {

TEST(Golden, Fig17FlopsReductionPerTask)
{
    // Measured values recorded from the shipped configuration; a wide
    // paper band plus a tight regression band around current values.
    struct Expect
    {
        const char *task;
        double flops_red;
        double size_red;
    };
    const Expect expected[] = {
        {"ListOps", 33.9, 4.3},  {"Text", 63.0, 4.3},
        {"Retrieval", 59.4, 7.6}, {"Image", 19.1, 4.3},
        {"Pathfinder", 20.4, 7.6},
    };
    const auto tasks = data::lraCatalog();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto &t = tasks[i];
        const double fr =
            modelFlops(t.transformer, t.paper_seq).total() /
            modelFlops(t.fabnet, t.paper_seq).total();
        const double pr =
            static_cast<double>(modelParams(t.transformer)) /
            static_cast<double>(modelParams(t.fabnet));
        EXPECT_NEAR(fr, expected[i].flops_red,
                    0.05 * expected[i].flops_red)
            << t.name;
        EXPECT_NEAR(pr, expected[i].size_red,
                    0.05 * expected[i].size_red)
            << t.name;
    }
}

TEST(Golden, TableVOurLatencyNearPaper)
{
    // Paper: 2.4 ms on the normalised Table V workload with BE-40.
    ModelConfig workload;
    workload.kind = ModelKind::FABNet;
    workload.d_hid = 768;
    workload.r_ffn = 4;
    workload.n_total = 1;
    workload.heads = 12;
    const auto rep =
        sim::simulateModel(workload, 1024, sim::vcu128Sota());
    EXPECT_NEAR(rep.milliseconds(), 2.4, 0.6);
}

TEST(Golden, TableVSpeedupBandOverAsics)
{
    // Paper: 14.2-23.2x over the six ASIC rows.
    ModelConfig workload;
    workload.kind = ModelKind::FABNet;
    workload.d_hid = 768;
    workload.r_ffn = 4;
    workload.n_total = 1;
    workload.heads = 12;
    const double ours =
        sim::simulateModel(workload, 1024, sim::vcu128Sota())
            .milliseconds();
    // Fastest ASIC (DOTA 34.1 ms) and slowest (A3 56.0 ms).
    EXPECT_GT(34.1 / ours, 13.0);
    EXPECT_LT(56.0 / ours, 30.0);
}

TEST(Golden, Fig19BandsHold)
{
    sim::BaselineConfig base;
    sim::AcceleratorConfig ours;
    ours.p_be = 128;
    ours.p_bu = 4;
    ours.bw_gbps = 450.0;

    double min_algo = 1e9, max_algo = 0.0;
    double min_hw = 1e9, max_hw = 0.0;
    for (const auto &pair :
         {std::pair<ModelConfig, ModelConfig>{bertBase(), fabnetBase()},
          std::pair<ModelConfig, ModelConfig>{bertLarge(),
                                              fabnetLarge()}}) {
        for (std::size_t seq : {128u, 1024u}) {
            const double bert =
                sim::simulateBaseline(pair.first, seq, base).seconds;
            const double fab_base =
                sim::simulateBaseline(pair.second, seq, base).seconds;
            const double fab_ours =
                sim::simulateModel(pair.second, seq, ours).seconds;
            min_algo = std::min(min_algo, bert / fab_base);
            max_algo = std::max(max_algo, bert / fab_base);
            min_hw = std::min(min_hw, fab_base / fab_ours);
            max_hw = std::max(max_hw, fab_base / fab_ours);
        }
    }
    // Measured bands (paper: algo 1.56-2.3x, hw 19.5-53.3x).
    EXPECT_GT(min_algo, 1.25);
    EXPECT_LT(max_algo, 1.6);
    EXPECT_GT(min_hw, 15.0);
    EXPECT_LT(max_hw, 40.0);
}

TEST(Golden, Fig20ServerSpeedupShape)
{
    // FPGA beats the V100 at seq 128 and roughly ties by 1024
    // (paper: 8.0x -> 1.6x).
    const auto hw = sim::vcu128Server();
    const auto dev = comparators::nvidiaV100();
    const auto cfg = fabnetBase();
    const double s128 =
        comparators::runOnDevice(dev, cfg, 128).seconds /
        sim::simulateModel(cfg, 128, hw).seconds;
    const double s1024 =
        comparators::runOnDevice(dev, cfg, 1024).seconds /
        sim::simulateModel(cfg, 1024, hw).seconds;
    EXPECT_GT(s128, 5.0);
    EXPECT_LT(s128, 10.0);
    EXPECT_GT(s1024, 0.8);
    EXPECT_LT(s1024, 2.5);
    EXPECT_GT(s128, s1024);
}

TEST(Golden, Fig18SelectedAlgorithmIsPapers)
{
    codesign::SearchSpace space;
    ModelConfig base;
    base.kind = ModelKind::FABNet;
    base.vocab = 256;
    base.classes = 2;
    base.max_seq = 4096;
    codesign::CapacityAccuracyOracle oracle;
    const auto points = codesign::gridSearch(space, 4096, base, oracle,
                                             codesign::Constraints{});
    const std::size_t best =
        codesign::selectDesign(points, 0.637, 0.01);
    ASSERT_NE(best, static_cast<std::size_t>(-1));
    const auto &sel = points[best];
    EXPECT_EQ(sel.algo.d_hid, 64u);
    EXPECT_EQ(sel.algo.r_ffn, 4u);
    EXPECT_EQ(sel.algo.n_total, 2u);
    EXPECT_EQ(sel.algo.n_abfly, 0u);
    EXPECT_EQ(sel.hw.p_bu, 4u);
    EXPECT_EQ(sel.hw.p_qk, 0u);
    EXPECT_EQ(sel.hw.p_sv, 0u);
}

TEST(Golden, Fig21SaturationPoints)
{
    const auto model = fabnetLarge();
    auto latency_at = [&](std::size_t be, double bw) {
        sim::AcceleratorConfig hw;
        hw.p_be = be;
        hw.p_bu = 4;
        hw.bw_gbps = bw;
        return sim::simulateModel(model, 1024, hw).milliseconds();
    };
    // 16 BEs: within 5% of peak by 50 GB/s (paper's claim).
    EXPECT_LT(latency_at(16, 50.0), 1.05 * latency_at(16, 200.0));
    // 128 BEs: not saturated at 50, saturated by 100.
    EXPECT_GT(latency_at(128, 50.0), 1.05 * latency_at(128, 200.0));
    EXPECT_LT(latency_at(128, 100.0), 1.05 * latency_at(128, 200.0));
}

TEST(Golden, TableVIandVIIAnchorsExact)
{
    sim::AcceleratorConfig be40;
    be40.p_be = 40;
    be40.p_bu = 4;
    be40.bw_gbps = 450.0;
    EXPECT_EQ(sim::estimateResources(be40).dsps, 640u);
    EXPECT_NEAR(sim::estimatePower(be40).total(), 14.08, 0.05);
    sim::AcceleratorConfig be120 = be40;
    be120.p_be = 120;
    EXPECT_EQ(sim::estimateResources(be120).dsps, 1920u);
    EXPECT_NEAR(sim::estimatePower(be120).total(), 25.86, 0.05);
}

} // namespace
} // namespace fabnet
