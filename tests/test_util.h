/**
 * @file test_util.h
 * Shared randomized kernel-parity test harness.
 *
 * The runtime's core guarantee (runtime/parallel.h) is that every
 * parallel/blocked/quantized kernel is bitwise identical to its scalar
 * reference at any thread count. The suites that pin this down
 * (parallel_kernels_test, serving_test, quant_kernels_test) all need
 * the same machinery: exact-equality assertions, thread-count sweeps
 * with pool cleanup, seeded shape sweeps that include odd and
 * non-power-of-two sizes, and serial-serving baselines. It lives here
 * once so a new kernel's parity suite is a page, not a file of
 * re-derived helpers.
 */
#ifndef FABNET_TESTS_TEST_UTIL_H
#define FABNET_TESTS_TEST_UTIL_H

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "model/classifier.h"
#include "nn/rowset.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fabnet {
namespace testutil {

/** The canonical thread sweep: inline, under-, and over-subscribed. */
inline constexpr std::size_t kThreadCounts[] = {1, 4, 8};

/**
 * Fixture that restores the global runtime knobs (pool size from
 * FABNET_NUM_THREADS, grow-only workspace policy) after each test, so
 * thread sweeps and cap experiments cannot leak into later suites.
 */
class RuntimeFixture : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        runtime::setNumThreads(0);
        runtime::setWorkspaceCapBytes(0);
    }
};

/** Run @p body once per kThreadCounts entry with the pool resized. */
template <class F>
inline void
forEachThreadCount(F &&body)
{
    for (std::size_t threads : kThreadCounts) {
        runtime::setNumThreads(threads);
        body(threads);
    }
}

/** Exact float equality, reported with the max-abs-diff on failure. */
inline ::testing::AssertionResult
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    if (a.shape() != b.shape())
        return ::testing::AssertionFailure()
               << "shape mismatch " << a.shapeString() << " vs "
               << b.shapeString();
    if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "payload differs (maxAbsDiff=" << ops::maxAbsDiff(a, b)
               << ")";
    }
    return ::testing::AssertionSuccess();
}

/** Exact equality over per-request logit vectors (serving parity). */
inline ::testing::AssertionResult
bitwiseEqual(const std::vector<std::vector<float>> &a,
             const std::vector<std::vector<float>> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "request count differs";
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].size() != b[i].size())
            return ::testing::AssertionFailure()
                   << "logit count differs at request " << i;
        if (std::memcmp(a[i].data(), b[i].data(),
                        a[i].size() * sizeof(float)) != 0)
            return ::testing::AssertionFailure()
                   << "logits differ at request " << i;
    }
    return ::testing::AssertionSuccess();
}

/** Tolerance check, reported with the actual max-abs-diff. */
inline ::testing::AssertionResult
maxAbsDiffWithin(const Tensor &a, const Tensor &b, float tol)
{
    if (a.shape() != b.shape())
        return ::testing::AssertionFailure()
               << "shape mismatch " << a.shapeString() << " vs "
               << b.shapeString();
    const float d = ops::maxAbsDiff(a, b);
    if (d > tol)
        return ::testing::AssertionFailure()
               << "maxAbsDiff " << d << " > tol " << tol;
    return ::testing::AssertionSuccess();
}

// ------------------------------------------------- tolerance parity
//
// Approximate paths (nn/sparse_attention.h) cannot claim bitwise
// equality with exact attention; their discipline is (a) PINNED
// abs/rel tolerance bounds against the exact path and (b) golden
// accuracy floors on fixed-seed tasks - pinned like golden values, so
// a fidelity regression fails loudly instead of drifting. Failures
// report max-abs, max-rel AND max-ULP distance so a near-miss can be
// triaged (rounding-level vs genuinely divergent) from the log alone.

/**
 * Bit-space distance between two floats: the number of representable
 * values between them (0 = identical bits, 1 = adjacent floats).
 * NaN anywhere reports the maximum distance.
 */
inline std::int64_t
ulpDiff(float a, float b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<std::int64_t>::max();
    const auto key = [](float x) {
        std::uint32_t u;
        std::memcpy(&u, &x, sizeof(u));
        // Map the IEEE bit pattern to a monotone integer line:
        // negatives mirror below zero so -0.0 and +0.0 coincide.
        return (u & 0x80000000u)
                   ? -static_cast<std::int64_t>(u & 0x7fffffffu)
                   : static_cast<std::int64_t>(u);
    };
    return std::llabs(key(a) - key(b));
}

/** Pinned tolerance bounds: |got - want| <= abs + rel * |want|. */
struct NearBounds
{
    float abs_tol;
    float rel_tol;
};

/**
 * Tolerance parity over two same-shape tensors against PINNED bounds,
 * elementwise |got - want| <= abs + rel * |want|. On failure reports
 * the worst element's index, values, abs/rel excess and ULP distance.
 */
inline ::testing::AssertionResult
nearParity(const Tensor &got, const Tensor &want, NearBounds nb)
{
    if (got.shape() != want.shape())
        return ::testing::AssertionFailure()
               << "shape mismatch " << got.shapeString() << " vs "
               << want.shapeString();
    double worst_excess = 0.0;
    std::size_t worst = 0;
    double max_abs = 0.0, max_rel = 0.0;
    std::int64_t max_ulp = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        const float g = got.data()[i];
        const float w = want.data()[i];
        const double ad = std::fabs(static_cast<double>(g) - w);
        const double bound =
            nb.abs_tol + nb.rel_tol * std::fabs(static_cast<double>(w));
        max_abs = std::max(max_abs, ad);
        if (w != 0.0f)
            max_rel = std::max(max_rel, ad / std::fabs(w));
        max_ulp = std::max(max_ulp, ulpDiff(g, w));
        if (ad - bound > worst_excess) {
            worst_excess = ad - bound;
            worst = i;
        }
        if (std::isnan(g))
            return ::testing::AssertionFailure()
                   << "NaN at element " << i;
    }
    if (worst_excess > 0.0)
        return ::testing::AssertionFailure()
               << "element " << worst << ": got "
               << got.data()[worst] << " want " << want.data()[worst]
               << " exceeds |d| <= " << nb.abs_tol << " + "
               << nb.rel_tol << "*|want| by " << worst_excess
               << " (maxAbs=" << max_abs << " maxRel=" << max_rel
               << " maxUlp=" << max_ulp << ")";
    return ::testing::AssertionSuccess();
}

/** EXPECT wrapper for nearParity, tagged like the bitwise helpers. */
inline void
expectNearParity(const Tensor &got, const Tensor &want, NearBounds nb,
                 const std::string &tag)
{
    EXPECT_TRUE(nearParity(got, want, nb)) << tag;
}

/**
 * The golden-accuracy pin: a fixed-seed accuracy must stay at or
 * above its PINNED floor. Floors are chosen from a measured run with
 * margin (like golden values, not re-derived per run), so an
 * approximation-quality regression fails this assertion instead of
 * silently eroding the frontier.
 */
inline ::testing::AssertionResult
accuracyAboveFloor(double acc, double floor_value,
                   const std::string &what)
{
    if (acc >= floor_value)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << what << ": accuracy " << acc
           << " fell below the pinned golden floor " << floor_value;
}

/** One GEMM problem size. */
struct GemmShape
{
    std::size_t m, k, n;
};

/**
 * Seeded GEMM shape sweep: fixed corners covering the degenerate
 * (1x1x1), odd/non-power-of-two, fewer-rows-than-threads and
 * register-tile-aligned cases, plus @p extra random draws with every
 * dimension uniform in [1, 160] (so partial 4x32 tiles, odd k pairing
 * and sub-grain row counts all get exercised with fresh shapes).
 */
inline std::vector<GemmShape>
gemmShapeSweep(unsigned seed, std::size_t extra = 4)
{
    std::vector<GemmShape> shapes = {
        {1, 1, 1},    {3, 5, 7},    {7, 3, 129}, {129, 65, 33},
        {2, 257, 19}, {64, 64, 64}, {5, 31, 32}, {4, 32, 96},
    };
    Rng rng(seed);
    for (std::size_t i = 0; i < extra; ++i)
        shapes.push_back({static_cast<std::size_t>(rng.randint(1, 160)),
                          static_cast<std::size_t>(rng.randint(1, 160)),
                          static_cast<std::size_t>(rng.randint(1, 160))});
    return shapes;
}

/**
 * Row-count sweep for batched row-kernels (butterfly): below, at and
 * above the 16-row stage-major block, plus @p extra random draws.
 */
inline std::vector<std::size_t>
rowSweep(unsigned seed, std::size_t extra = 2)
{
    std::vector<std::size_t> rows = {1, 3, 16, 37};
    Rng rng(seed);
    for (std::size_t i = 0; i < extra; ++i)
        rows.push_back(static_cast<std::size_t>(rng.randint(1, 64)));
    return rows;
}

// ------------------------------------------------- backward parity

/** Deterministic N(0,1) tensor (dL/dy probes, parity inputs). */
inline Tensor
randomTensor(std::vector<std::size_t> shape, unsigned seed)
{
    Rng rng(seed);
    return rng.normalTensor(std::move(shape));
}

/** Copy of every parameter gradient, in collectParams order. */
inline std::vector<std::vector<float>>
snapshotGrads(const std::vector<nn::ParamRef> &params)
{
    std::vector<std::vector<float>> snap;
    snap.reserve(params.size());
    for (const auto &p : params)
        snap.push_back(*p.grad);
    return snap;
}

/** Exact equality of the live grads against a snapshot. */
inline ::testing::AssertionResult
gradsBitwiseEqual(const std::vector<nn::ParamRef> &params,
                  const std::vector<std::vector<float>> &snap)
{
    if (params.size() != snap.size())
        return ::testing::AssertionFailure() << "param count differs";
    for (std::size_t i = 0; i < params.size(); ++i) {
        const std::vector<float> &g = *params[i].grad;
        if (g.size() != snap[i].size())
            return ::testing::AssertionFailure()
                   << "grad " << i << " size differs";
        if (std::memcmp(g.data(), snap[i].data(),
                        g.size() * sizeof(float)) != 0) {
            float mx = 0.0f;
            for (std::size_t j = 0; j < g.size(); ++j)
                mx = std::max(mx, std::fabs(g[j] - snap[i][j]));
            return ::testing::AssertionFailure()
                   << "grad " << i << " payload differs (maxAbsDiff="
                   << mx << ")";
        }
    }
    return ::testing::AssertionSuccess();
}

/**
 * The backward-parity check, shared by every grad-parity suite:
 * forward once (at one thread; the forward paths have their own
 * parity suites), run the seed backwardReference to get the baseline
 * dL/dx and parameter grads, then run the parallel backward() at each
 * kThreadCounts entry - dL/dx and every parameter gradient must be
 * BITWISE identical to the baseline. @p tag names the failing case.
 */
inline void
expectBackwardParity(nn::Layer &layer, const Tensor &x, unsigned seed,
                     const std::string &tag)
{
    runtime::setNumThreads(1);
    const Tensor y = layer.forward(x);
    const Tensor probe = randomTensor(y.shape(), seed);

    std::vector<nn::ParamRef> params;
    layer.collectParams(params);

    nn::zeroGrads(params);
    const Tensor gx_ref = layer.backwardReference(probe);
    const auto grads_ref = snapshotGrads(params);

    forEachThreadCount([&](std::size_t threads) {
        nn::zeroGrads(params);
        const Tensor gx = layer.backward(probe);
        EXPECT_TRUE(bitwiseEqual(gx, gx_ref))
            << tag << " dL/dx, threads=" << threads;
        EXPECT_TRUE(gradsBitwiseEqual(params, grads_ref))
            << tag << " param grads, threads=" << threads;
    });
}

// ------------------------------------------------- ragged parity

/**
 * Length-vector sweep for ragged-batch parity tests: the degenerate
 * corners the RowSet spans must survive (batch of 1, all lengths
 * equal to seq - padding-free, all single-token rows, lengths
 * straddling the full [1, seq] range including a max-length row),
 * plus @p extra random ragged draws. Every entry is a lens vector
 * valid for a [*, seq] batch.
 */
inline std::vector<std::vector<std::size_t>>
raggedLensSweep(std::size_t seq, unsigned seed, std::size_t extra = 2)
{
    std::vector<std::vector<std::size_t>> sweeps = {
        {std::max<std::size_t>(seq / 2, 1)}, // batch of 1, padded
        {seq},                               // batch of 1, no padding
        {seq, seq, seq},                     // all equal, no padding
        {1, 1, 1, 1},                        // all single-token
        {1, seq, seq / 2 + 1, 2, seq - 1},   // max-straddle mix
    };
    Rng rng(seed);
    for (std::size_t i = 0; i < extra; ++i) {
        const std::size_t batch =
            static_cast<std::size_t>(rng.randint(1, 9));
        std::vector<std::size_t> lens(batch);
        for (auto &L : lens)
            L = static_cast<std::size_t>(
                rng.randint(1, static_cast<int>(seq)));
        sweeps.push_back(std::move(lens));
    }
    return sweeps;
}

/** N(0,1) [batch, seq, d] input with the PADDED rows zeroed - the
 *  invariant every tensor in a ragged chain satisfies. */
inline Tensor
raggedInput(const nn::RowSet &rows, std::size_t d, unsigned seed)
{
    Rng rng(seed);
    Tensor x = rng.normalTensor({rows.batch(), rows.seq(), d});
    float *px = x.data();
    for (std::size_t b = 0; b < rows.batch(); ++b)
        for (std::size_t t = rows.len(b); t < rows.seq(); ++t)
            std::fill(px + (b * rows.seq() + t) * d,
                      px + (b * rows.seq() + t + 1) * d, 0.0f);
    return x;
}

/** Exact equality over the VALID rows of two [batch, seq, d] tensors. */
inline ::testing::AssertionResult
validRowsBitwiseEqual(const Tensor &got, const Tensor &want,
                      const nn::RowSet &rows)
{
    if (got.shape() != want.shape())
        return ::testing::AssertionFailure()
               << "shape mismatch " << got.shapeString() << " vs "
               << want.shapeString();
    const std::size_t d = got.shape().back();
    for (std::size_t b = 0; b < rows.batch(); ++b) {
        const std::size_t off = b * rows.seq() * d;
        if (std::memcmp(got.data() + off, want.data() + off,
                        rows.len(b) * d * sizeof(float)) != 0)
            return ::testing::AssertionFailure()
                   << "valid rows differ in sequence " << b;
    }
    return ::testing::AssertionSuccess();
}

/** Assert every padded row of a ragged output is exactly zero. */
inline ::testing::AssertionResult
paddedRowsZero(const Tensor &got, const nn::RowSet &rows)
{
    const std::size_t d = got.shape().back();
    for (std::size_t b = 0; b < rows.batch(); ++b)
        for (std::size_t t = rows.len(b); t < rows.seq(); ++t)
            for (std::size_t j = 0; j < d; ++j)
                if (got.data()[(b * rows.seq() + t) * d + j] != 0.0f)
                    return ::testing::AssertionFailure()
                           << "padded row (" << b << ", " << t
                           << ") not zero";
    return ::testing::AssertionSuccess();
}

/**
 * The ragged-parity check: run the layer's dense masked path once at
 * one thread as the baseline, then forwardRows at each kThreadCounts
 * entry - valid rows must be BITWISE identical to the baseline, and
 * padded rows must be exactly zero (the ragged chain invariant that
 * lets downstream layers skip them). @p x must satisfy the
 * padded-rows-zero invariant itself (use raggedInput()).
 */
inline void
expectRaggedForwardParity(nn::Layer &layer, const Tensor &x,
                          const nn::RowSet &rows, const std::string &tag)
{
    runtime::setNumThreads(1);
    const Tensor want = layer.forwardMasked(x, rows.lens());
    forEachThreadCount([&](std::size_t threads) {
        const Tensor got = layer.forwardRows(x, rows);
        EXPECT_TRUE(validRowsBitwiseEqual(got, want, rows))
            << tag << " valid rows, threads=" << threads;
        EXPECT_TRUE(paddedRowsZero(got, rows))
            << tag << " padded rows, threads=" << threads;
    });
}

/** Random token sequences of the given lengths (serving tests). */
inline std::vector<std::vector<int>>
makeRequests(const std::vector<std::size_t> &lens, std::size_t vocab,
             unsigned seed)
{
    Rng rng(seed);
    std::vector<std::vector<int>> reqs;
    reqs.reserve(lens.size());
    for (std::size_t len : lens) {
        std::vector<int> toks(len);
        for (int &t : toks)
            t = rng.randint(1, static_cast<int>(vocab) - 1);
        reqs.push_back(std::move(toks));
    }
    return reqs;
}

/** Serial serving baseline: one unpadded forward per request. */
inline std::vector<std::vector<float>>
serveSerial(SequenceClassifier &model,
            const std::vector<std::vector<int>> &reqs)
{
    std::vector<std::vector<float>> out;
    out.reserve(reqs.size());
    for (const auto &r : reqs) {
        const Tensor logits = model.forward(r, 1, r.size());
        out.emplace_back(logits.data(), logits.data() + logits.size());
    }
    return out;
}

/**
 * Odd request lengths straddling granularity-16 bucket boundaries:
 * below, at, and above multiples, plus the extremes (max_seq 64).
 */
inline std::vector<std::size_t>
mixedLens()
{
    return {1, 3, 15, 16, 17, 23, 31, 32, 33, 47, 5, 64, 63, 2, 16, 49};
}

} // namespace testutil
} // namespace fabnet

#endif // FABNET_TESTS_TEST_UTIL_H
