/**
 * @file baseline_test.cpp
 * Baseline MAC-array accelerator model (Sec. VI-D) and the
 * algorithm/hardware speedup decomposition of Fig. 19.
 */
#include <gtest/gtest.h>

#include "sim/accelerator.h"
#include "sim/baseline.h"

namespace fabnet {
namespace sim {
namespace {

TEST(Baseline, TransformerMacsMatchHandCount)
{
    ModelConfig cfg = bertBase();
    cfg.n_total = 1;
    cfg.n_abfly = 1;
    const std::size_t t = 128;
    const double d = 768.0, h = 3072.0;
    const double expected = 4.0 * t * d * d  // Q,K,V,O projections
                            + 2.0 * t * t * d // QK^T + SV
                            + 2.0 * t * d * h; // FFN
    EXPECT_NEAR(denseEquivalentMacs(cfg, t), expected, 1.0);
}

TEST(Baseline, FabnetDenseEquivalentCheaperThanBert)
{
    // Fig. 19 algorithm-level gain: FABNet run densely still beats
    // BERT because the DFT replaces the projections + attention.
    for (std::size_t seq : {128u, 256u, 512u, 1024u}) {
        const double bert = denseEquivalentMacs(bertBase(), seq);
        const double fab = denseEquivalentMacs(fabnetBase(), seq);
        const double ratio = bert / fab;
        EXPECT_GT(ratio, 1.1) << "seq " << seq;
        EXPECT_LT(ratio, 3.0) << "seq " << seq;
    }
}

TEST(Baseline, AlgorithmGainGrowsWithSequence)
{
    const double r128 = denseEquivalentMacs(bertBase(), 128) /
                        denseEquivalentMacs(fabnetBase(), 128);
    const double r1024 = denseEquivalentMacs(bertBase(), 1024) /
                         denseEquivalentMacs(fabnetBase(), 1024);
    EXPECT_GT(r1024, r128);
}

TEST(Baseline, LatencyScalesInverselyWithMultipliers)
{
    BaselineConfig hw;
    hw.n_mult = 1024;
    const auto r1 = simulateBaseline(bertBase(), 256, hw);
    hw.n_mult = 2048;
    const auto r2 = simulateBaseline(bertBase(), 256, hw);
    EXPECT_NEAR(r1.total_cycles / r2.total_cycles, 2.0, 0.05);
}

TEST(Baseline, LatencyIsComputeBoundAtHbmBandwidth)
{
    BaselineConfig hw;
    const auto rep = simulateBaseline(bertBase(), 128, hw);
    EXPECT_EQ(rep.stages, 12u);
    EXPECT_NEAR(rep.total_cycles, rep.compute_cycles, 1.0);
    EXPECT_NEAR(rep.stage_cycles * 12.0, rep.total_cycles, 1.0);
    // BERT-Base at seq 128 is ~11.2 GMACs; at 2048 mults and 67%
    // utilisation that is ~41 ms at 200 MHz.
    EXPECT_NEAR(rep.milliseconds(), 41.0, 6.0);
}

TEST(Baseline, MemoryBoundAtLowBandwidth)
{
    BaselineConfig hw;
    hw.bw_gbps = 1.0;
    const auto rep = simulateBaseline(bertBase(), 128, hw);
    EXPECT_GT(rep.mem_cycles, rep.compute_cycles);
    EXPECT_NEAR(rep.total_cycles, rep.mem_cycles, 1.0);
}

TEST(Fig19, HardwareSpeedupInPaperRange)
{
    // FABNet on the butterfly accelerator vs FABNet on the baseline:
    // paper reports 19.5-53.3x across base/large x seq 128..1024.
    BaselineConfig base_hw; // 2048 multipliers
    AcceleratorConfig our_hw;
    our_hw.p_be = 128; // 2048 multipliers, same budget
    our_hw.p_bu = 4;
    our_hw.bw_gbps = 450.0;

    for (const auto &model : {fabnetBase(), fabnetLarge()}) {
        for (std::size_t seq : {128u, 256u, 512u, 1024u}) {
            const double t_base =
                simulateBaseline(model, seq, base_hw).seconds;
            const double t_ours =
                simulateModel(model, seq, our_hw).seconds;
            const double speedup = t_base / t_ours;
            EXPECT_GT(speedup, 8.0)
                << model.describe() << " seq " << seq;
            EXPECT_LT(speedup, 120.0)
                << model.describe() << " seq " << seq;
        }
    }
}

TEST(Fig19, CombinedSpeedupExceedsHardwareAlone)
{
    BaselineConfig base_hw;
    AcceleratorConfig our_hw;
    our_hw.p_be = 128;
    our_hw.bw_gbps = 450.0;

    const std::size_t seq = 256;
    const double bert_on_base =
        simulateBaseline(bertBase(), seq, base_hw).seconds;
    const double fab_on_base =
        simulateBaseline(fabnetBase(), seq, base_hw).seconds;
    const double fab_on_ours =
        simulateModel(fabnetBase(), seq, our_hw).seconds;

    const double algo = bert_on_base / fab_on_base;
    const double hw = fab_on_base / fab_on_ours;
    const double combined = bert_on_base / fab_on_ours;
    EXPECT_GT(algo, 1.0);
    EXPECT_NEAR(combined, algo * hw, combined * 0.01);
    EXPECT_GT(combined, hw);
}

} // namespace
} // namespace sim
} // namespace fabnet
