/**
 * @file sim_test.cpp
 * Cycle-accurate performance model: trace construction, scaling laws,
 * the Fig. 13 overlap strategies and Fig. 14 pipelining ablations,
 * and bandwidth sensitivity (Fig. 21 behaviour).
 */
#include <gtest/gtest.h>

#include "model/config.h"
#include "sim/accelerator.h"

namespace fabnet {
namespace sim {
namespace {

ModelConfig
smallFabnet(std::size_t n_abfly = 0)
{
    ModelConfig c;
    c.kind = ModelKind::FABNet;
    c.d_hid = 64;
    c.r_ffn = 4;
    c.n_total = 2;
    c.n_abfly = n_abfly;
    c.heads = 2;
    return c;
}

AcceleratorConfig
smallHw()
{
    AcceleratorConfig hw;
    hw.p_be = 16;
    hw.p_bu = 4;
    hw.bw_gbps = 100.0;
    return hw;
}

TEST(Trace, FbflyBlockOpsInOrder)
{
    const auto trace = buildFabnetTrace(smallFabnet(), 128);
    // Per FBfly block: fft_hidden, fft_seq, ln1, ffn1, ffn2, ln2.
    ASSERT_EQ(trace.size(), 2u * 6u);
    EXPECT_EQ(trace[0].kind, OpKind::Fft);
    EXPECT_EQ(trace[1].kind, OpKind::Fft);
    EXPECT_EQ(trace[2].kind, OpKind::PostProcess);
    EXPECT_EQ(trace[3].kind, OpKind::ButterflyLinear);
    EXPECT_EQ(trace[4].kind, OpKind::ButterflyLinear);
    EXPECT_EQ(trace[5].kind, OpKind::PostProcess);
}

TEST(Trace, FftPassGeometry)
{
    const auto trace = buildFabnetTrace(smallFabnet(), 128);
    // FFT along hidden: one row per token, complex output.
    EXPECT_EQ(trace[0].rows, 128u);
    EXPECT_EQ(trace[0].n, 64u);
    EXPECT_FALSE(trace[0].complex_in);
    EXPECT_TRUE(trace[0].complex_out);
    // FFT along sequence: one row per channel, real output kept.
    EXPECT_EQ(trace[1].rows, 64u);
    EXPECT_EQ(trace[1].n, 128u);
    EXPECT_TRUE(trace[1].complex_in);
    EXPECT_FALSE(trace[1].complex_out);
}

TEST(Trace, FfnExpansionUsesCores)
{
    const auto trace = buildFabnetTrace(smallFabnet(), 128);
    const auto &ffn1 = trace[3];
    EXPECT_EQ(ffn1.in_feats, 64u);
    EXPECT_EQ(ffn1.out_feats, 256u);
    EXPECT_EQ(ffn1.cores, 4u);
    const auto &ffn2 = trace[4];
    EXPECT_EQ(ffn2.n, 256u);
    EXPECT_EQ(ffn2.cores, 1u);
}

TEST(Trace, AbflyBlockSchedulesKvBeforeQ)
{
    const auto trace = buildFabnetTrace(smallFabnet(1), 64);
    // Block 0 is FBfly (6 ops); block 1 is ABfly.
    const std::size_t base = 6;
    EXPECT_NE(trace[base + 0].label.find("proj_k"), std::string::npos);
    EXPECT_NE(trace[base + 1].label.find("proj_v"), std::string::npos);
    EXPECT_NE(trace[base + 2].label.find("proj_q"), std::string::npos);
    EXPECT_EQ(trace[base + 3].kind, OpKind::AttentionQK);
    EXPECT_EQ(trace[base + 4].kind, OpKind::AttentionSV);
}

TEST(Trace, NonFabnetRejected)
{
    EXPECT_THROW(buildFabnetTrace(bertBase(), 128),
                 std::invalid_argument);
}

TEST(Simulate, MoreEnginesNeverSlower)
{
    const auto cfg = smallFabnet();
    double prev = 1e18;
    for (std::size_t pbe : {4u, 8u, 16u, 32u, 64u}) {
        AcceleratorConfig hw = smallHw();
        hw.p_be = pbe;
        hw.bw_gbps = 1000.0; // stay compute-bound
        const auto rep = simulateModel(cfg, 256, hw);
        EXPECT_LE(rep.total_cycles, prev + 1.0) << "p_be=" << pbe;
        prev = rep.total_cycles;
    }
}

TEST(Simulate, MoreBandwidthNeverSlower)
{
    const auto cfg = smallFabnet();
    double prev = 1e18;
    for (double bw : {6.0, 12.0, 25.0, 50.0, 100.0, 200.0}) {
        AcceleratorConfig hw = smallHw();
        hw.bw_gbps = bw;
        const auto rep = simulateModel(cfg, 1024, hw);
        EXPECT_LE(rep.total_cycles, prev + 1.0) << "bw=" << bw;
        prev = rep.total_cycles;
    }
}

TEST(Simulate, BandwidthSaturates)
{
    // Fig. 21: latency flattens once bandwidth exceeds the design's
    // demand.
    const auto cfg = smallFabnet();
    AcceleratorConfig hw = smallHw();
    hw.p_be = 16;
    hw.bw_gbps = 400.0;
    const double t400 = simulateModel(cfg, 1024, hw).total_cycles;
    hw.bw_gbps = 800.0;
    const double t800 = simulateModel(cfg, 1024, hw).total_cycles;
    EXPECT_NEAR(t400, t800, 0.02 * t400);
}

TEST(Simulate, LowBandwidthIsMemoryBound)
{
    const auto cfg = smallFabnet();
    AcceleratorConfig hw = smallHw();
    hw.p_be = 64;
    hw.bw_gbps = 2.0;
    const auto rep = simulateModel(cfg, 1024, hw);
    bool any_memory_bound = false;
    for (const auto &op : rep.ops)
        if (op.memory_bound)
            any_memory_bound = true;
    EXPECT_TRUE(any_memory_bound);
}

TEST(Simulate, DoubleBufferingHelps)
{
    const auto cfg = smallFabnet();
    AcceleratorConfig on = smallHw();
    AcceleratorConfig off = smallHw();
    off.double_buffer = false;
    const double t_on = simulateModel(cfg, 512, on).total_cycles;
    const double t_off = simulateModel(cfg, 512, off).total_cycles;
    EXPECT_LT(t_on, t_off);
}

TEST(Simulate, FinePipelineSavesOnAbfly)
{
    ModelConfig cfg = smallFabnet(1);
    AcceleratorConfig hw = smallHw();
    hw.p_head = 2;
    hw.p_qk = 16;
    hw.p_sv = 16;
    const auto with_pipe = simulateModel(cfg, 256, hw);
    EXPECT_GT(with_pipe.pipeline_saving_cycles, 0.0);

    hw.fine_pipeline = false;
    const auto without = simulateModel(cfg, 256, hw);
    EXPECT_EQ(without.pipeline_saving_cycles, 0.0);
    EXPECT_LT(with_pipe.total_cycles, without.total_cycles);
}

TEST(Simulate, AttentionWithoutApThrows)
{
    ModelConfig cfg = smallFabnet(1);
    AcceleratorConfig hw = smallHw(); // p_qk = p_sv = 0
    EXPECT_THROW(simulateModel(cfg, 128, hw), std::invalid_argument);
}

TEST(Simulate, PureFbflyRunsWithoutAp)
{
    ModelConfig cfg = smallFabnet(0);
    AcceleratorConfig hw = smallHw();
    EXPECT_NO_THROW(simulateModel(cfg, 128, hw));
}

TEST(Simulate, CyclesMatchHandComputedSmallCase)
{
    // One FBfly block, d=64, seq=64, P_be=64 (one tile per op),
    // P_bu=4, effectively infinite bandwidth.
    ModelConfig cfg = smallFabnet();
    cfg.n_total = 1;
    AcceleratorConfig hw;
    hw.p_be = 64;
    hw.p_bu = 4;
    hw.bw_gbps = 1e9;
    const auto rep = simulateModel(cfg, 64, hw);
    // Per-row cycles for n=64: log2(64)*ceil(32/4) = 6*8 = 48.
    // fft_hidden: 64 rows -> 1 tile -> 48; fft_seq same -> 48.
    // ffn1: 64 rows x 4 cores -> 4 tiles -> 192.
    // ffn2 (n=256): per-row 8*32 = 256; 64 rows -> 1 tile -> 256.
    // PostP: 2 x (64*64/16) = 2 x 256.
    const double expected = 48 + 48 + 192 + 256 + 2 * 256;
    EXPECT_NEAR(rep.total_cycles, expected, expected * 0.01);
}

TEST(Simulate, ReportAggregatesConsistent)
{
    ModelConfig cfg = smallFabnet(1);
    AcceleratorConfig hw = smallHw();
    hw.p_head = 2;
    hw.p_qk = 8;
    hw.p_sv = 8;
    const auto rep = simulateModel(cfg, 128, hw);
    double sum = 0.0;
    for (const auto &op : rep.ops)
        sum += op.total_cycles;
    EXPECT_NEAR(rep.total_cycles + rep.pipeline_saving_cycles, sum,
                1.0);
    EXPECT_GT(rep.bytes_moved, 0.0);
    EXPECT_NEAR(rep.seconds, rep.total_cycles / (0.2e9), 1e-9);
}

TEST(Simulate, LongerSequencesCostMore)
{
    const auto cfg = smallFabnet();
    AcceleratorConfig hw = smallHw();
    double prev = 0.0;
    for (std::size_t seq : {128u, 256u, 512u, 1024u}) {
        const auto rep = simulateModel(cfg, seq, hw);
        EXPECT_GT(rep.total_cycles, prev);
        prev = rep.total_cycles;
    }
}

TEST(Config, MultiplierFormulaMatchesPaper)
{
    AcceleratorConfig hw;
    hw.p_be = 64;
    hw.p_bu = 4;
    hw.p_head = 12;
    hw.p_qk = 32;
    hw.p_sv = 48;
    // DSP = P_be*P_bu*4 + P_head*(P_qk+P_sv).
    EXPECT_EQ(hw.multipliers(), 64u * 4u * 4u + 12u * (32u + 48u));
}

TEST(Config, PresetsMatchPaperDesigns)
{
    EXPECT_EQ(vcu128Server().multipliers(), 1920u); // BE-120
    EXPECT_EQ(vcu128Sota().multipliers(), 640u);    // BE-40
    EXPECT_EQ(zynqEdge().multipliers(), 512u);      // edge
}

} // namespace
} // namespace sim
} // namespace fabnet
