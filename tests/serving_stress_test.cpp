/**
 * @file serving_stress_test.cpp
 * Concurrency stress for the serving engine's lifecycle guarantees,
 * written to run under TSan (`ctest -L serve` in the sanitizer CI
 * job): client threads hammer submit()/serveAll()/flush() while
 * another thread initiates shutdown, and the suite asserts the one
 * property everything else rests on - EVERY future the engine ever
 * handed out resolves exactly once, either with logits of the right
 * shape or with a typed serve::Error. No future is dropped, none is
 * satisfied twice (a second set would throw future_error), and no
 * waiter is left blocked.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "model/builder.h"
#include "serve/error.h"
#include "serve/serving.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using serve::deadlineAfter;
using serve::Error;
using serve::ErrorCode;
using serve::ServingConfig;
using serve::ServingEngine;

ModelConfig
tinyCfg()
{
    ModelConfig cfg;
    cfg.kind = ModelKind::Transformer;
    cfg.vocab = 32;
    cfg.max_seq = 64;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.heads = 2;
    cfg.classes = 4;
    return cfg;
}

/** Resolve one future and classify the outcome. Every path through
 *  the engine must land in exactly one of these buckets. */
struct Outcomes
{
    std::atomic<std::size_t> served{0};
    std::atomic<std::size_t> typed_errors{0};
    std::atomic<std::size_t> untyped{0};

    void consume(std::future<std::vector<float>> &f, std::size_t classes)
    {
        try {
            const std::vector<float> out = f.get();
            if (out.size() == classes)
                served.fetch_add(1);
            else
                untyped.fetch_add(1);
        } catch (const Error &) {
            typed_errors.fetch_add(1);
        } catch (...) {
            untyped.fetch_add(1);
        }
    }
};

using ServingStressTest = testutil::RuntimeFixture;

TEST_F(ServingStressTest, ConcurrentSubmitFlushShutdownResolvesEverything)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(101);
    auto model = buildModel(cfg, rng);

    ServingConfig sc;
    sc.max_batch = 4;
    sc.bucket_granularity = 16;
    sc.max_wait = std::chrono::microseconds(200);
    sc.max_queue_requests = 64; // bounded admission under contention
    sc.shed_policy = serve::ShedPolicy::DropExpiredFirst;

    constexpr std::size_t kSubmitters = 4;
    constexpr std::size_t kPerThread = 40;

    ServingEngine engine(*model, sc);
    Outcomes outcomes;
    std::atomic<std::size_t> admitted{0}, refused{0};
    std::vector<std::thread> threads;

    for (std::size_t t = 0; t < kSubmitters; ++t) {
        threads.emplace_back([&, t] {
            Rng trng(200 + static_cast<unsigned>(t));
            for (std::size_t i = 0; i < kPerThread; ++i) {
                const std::size_t len = static_cast<std::size_t>(
                    trng.randint(1, static_cast<int>(cfg.max_seq)));
                std::vector<int> toks(len);
                for (int &x : toks)
                    x = trng.randint(1, static_cast<int>(cfg.vocab) - 1);
                try {
                    // A mix of deadline-free and tight-deadline
                    // traffic, so expiry paths race real serving.
                    auto fut =
                        (i % 5 == 0)
                            ? engine.submit(
                                  std::move(toks),
                                  deadlineAfter(
                                      std::chrono::milliseconds(2)))
                            : engine.submit(std::move(toks));
                    admitted.fetch_add(1);
                    outcomes.consume(fut, cfg.classes);
                } catch (const Error &) {
                    // QueueFull / ShuttingDown / DeadlineExceeded at
                    // admission: typed, nothing queued.
                    refused.fetch_add(1);
                }
                if (i % 8 == 0)
                    engine.flush();
            }
        });
    }
    // One thread drives the synchronous bulk path concurrently.
    threads.emplace_back([&] {
        Rng brng(999);
        for (std::size_t round = 0; round < 6; ++round) {
            std::vector<std::vector<int>> reqs(3);
            for (auto &r : reqs) {
                r.resize(static_cast<std::size_t>(brng.randint(1, 40)));
                for (int &x : r)
                    x = brng.randint(1, static_cast<int>(cfg.vocab) - 1);
            }
            try {
                const auto out = engine.serveAll(reqs);
                for (const auto &row : out)
                    if (row.size() == cfg.classes)
                        outcomes.served.fetch_add(1);
                    else
                        outcomes.untyped.fetch_add(1);
            } catch (const Error &) {
                // ShuttingDown: either refused up front (nothing
                // admitted) or a member future failed after the set
                // was admitted; both are typed and fully resolved.
                refused.fetch_add(1);
            }
        }
    });
    // And one thread shuts the engine down mid-traffic with a
    // deadline, racing the submitters' admissions and flushes.
    threads.emplace_back([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        engine.shutdown(deadlineAfter(std::chrono::milliseconds(150)));
    });

    for (auto &th : threads)
        th.join();

    // Exactly-once resolution: every future handed out was consumed
    // (get() returned or threw precisely once - a double-set would
    // have thrown future_error inside the engine and surfaced as an
    // untyped outcome, a dropped promise as broken_promise), nothing
    // fell outside the typed taxonomy, and no waiter hung (the test
    // reached this line).
    EXPECT_EQ(outcomes.untyped.load(), 0u);
    EXPECT_GT(outcomes.served.load(), 0u);
    const auto st = engine.stats();
    EXPECT_EQ(st.completed + st.failed, st.requests)
        << "every admitted request must resolve";
    // Every submit()-path future was consumed exactly once.
    EXPECT_GE(outcomes.served.load() + outcomes.typed_errors.load(),
              admitted.load());
}

TEST_F(ServingStressTest, DestructorResolvesOutstandingFutures)
{
    const ModelConfig cfg = tinyCfg();
    Rng rng(103);
    auto model = buildModel(cfg, rng);

    std::vector<std::future<std::vector<float>>> futs;
    {
        ServingConfig sc;
        sc.max_batch = 64; // nothing flushes until the drain
        sc.max_wait = std::chrono::seconds(5);
        ServingEngine engine(*model, sc);
        for (int i = 0; i < 6; ++i)
            futs.push_back(engine.submit({1, 2, 3, i + 1}));
        // Engine destroyed with all six still queued: the destructor's
        // graceful drain must serve them, not strand them.
    }
    for (auto &f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(f.get().size(), cfg.classes);
    }
}

} // namespace
} // namespace fabnet
