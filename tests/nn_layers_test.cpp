/**
 * @file nn_layers_test.cpp
 * Gradient checks and semantics for every nn layer: Dense,
 * ButterflyDense, LayerNorm, activations, FourierMix, FeedForward and
 * the full EncoderBlock.
 */
#include <gtest/gtest.h>

#include "nn/basic_layers.h"
#include "nn/block.h"
#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace fabnet {
namespace nn {
namespace {

Tensor
randomInput(std::size_t b, std::size_t t, std::size_t d, unsigned seed)
{
    Rng rng(seed);
    return rng.normalTensor({b, t, d});
}

TEST(Dense, ForwardMatchesMatmul)
{
    Rng rng(1);
    Dense layer(4, 3, rng);
    Tensor x = randomInput(2, 5, 4, 2);
    Tensor y = layer.forward(x);
    ASSERT_EQ(y.shape(),
              (std::vector<std::size_t>{2, 5, 3}));
    // Manual check of one output element.
    float acc = layer.bias()[1];
    for (std::size_t i = 0; i < 4; ++i)
        acc += layer.weight()[1 * 4 + i] * x.at(1, 2, i);
    EXPECT_NEAR(y.at(1, 2, 1), acc, 1e-5f);
}

TEST(Dense, GradCheck)
{
    Rng rng(3);
    Dense layer(6, 5, rng);
    Tensor x = randomInput(2, 3, 6, 4);
    EXPECT_TRUE(checkInputGrad(layer, x).passed);
    EXPECT_TRUE(checkParamGrad(layer, x).passed);
}

TEST(ButterflyDense, ForwardMatchesOp)
{
    Rng rng(5);
    ButterflyDense layer(8, 8, rng);
    Tensor x = randomInput(1, 4, 8, 6);
    Tensor y = layer.forward(x);
    Tensor flat = x.reshaped({4, 8});
    Tensor ref = layer.op().applyBatch(flat);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_NEAR(y.at(0, r, c), ref.at(r, c), 1e-5f);
}

TEST(ButterflyDense, GradCheckSquare)
{
    Rng rng(7);
    ButterflyDense layer(8, 8, rng);
    Tensor x = randomInput(2, 3, 8, 8);
    EXPECT_TRUE(checkInputGrad(layer, x).passed);
    EXPECT_TRUE(checkParamGrad(layer, x).passed);
}

TEST(ButterflyDense, GradCheckExpandAndContract)
{
    Rng rng(9);
    ButterflyDense expand(8, 16, rng);
    Tensor x = randomInput(1, 4, 8, 10);
    EXPECT_TRUE(checkInputGrad(expand, x).passed);
    EXPECT_TRUE(checkParamGrad(expand, x).passed);

    ButterflyDense contract(16, 8, rng);
    Tensor x2 = randomInput(1, 4, 16, 11);
    EXPECT_TRUE(checkInputGrad(contract, x2).passed);
    EXPECT_TRUE(checkParamGrad(contract, x2).passed);
}

TEST(ButterflyDense, FarFewerParamsThanDense)
{
    Rng rng(12);
    ButterflyDense bfly(256, 256, rng);
    Dense dense(256, 256, rng);
    EXPECT_LT(bfly.numParams() * 10, dense.numParams());
}

TEST(LayerNorm, NormalisesRows)
{
    LayerNorm ln(16);
    Tensor x = randomInput(2, 3, 16, 13);
    Tensor y = ln.forward(x);
    for (std::size_t b = 0; b < 2; ++b) {
        for (std::size_t t = 0; t < 3; ++t) {
            double mean = 0.0;
            for (std::size_t d = 0; d < 16; ++d)
                mean += y.at(b, t, d);
            EXPECT_NEAR(mean / 16.0, 0.0, 1e-4);
        }
    }
}

TEST(LayerNorm, GradCheck)
{
    LayerNorm ln(8);
    Tensor x = randomInput(2, 2, 8, 14);
    EXPECT_TRUE(checkInputGrad(ln, x).passed);
    EXPECT_TRUE(checkParamGrad(ln, x).passed);
}

TEST(Activations, ReluGradCheck)
{
    Relu relu;
    Rng rng(15);
    // Keep values away from the kink at 0 for finite differences.
    Tensor x = rng.normalTensor({2, 3, 6});
    for (float &v : x.raw())
        if (std::fabs(v) < 0.05f)
            v += 0.2f;
    EXPECT_TRUE(checkInputGrad(relu, x).passed);
}

TEST(Activations, GeluGradCheck)
{
    Gelu gelu;
    Tensor x = randomInput(2, 3, 6, 16);
    EXPECT_TRUE(checkInputGrad(gelu, x).passed);
}

TEST(FourierMixLayer, GradCheck)
{
    FourierMix mix;
    Tensor x = randomInput(1, 8, 4, 17);
    EXPECT_TRUE(checkInputGrad(mix, x).passed);
}

TEST(FourierMixLayer, NoParameters)
{
    FourierMix mix;
    std::vector<ParamRef> ps;
    mix.collectParams(ps);
    EXPECT_TRUE(ps.empty());
}

TEST(FeedForward, DenseGradCheck)
{
    Rng rng(18);
    FeedForward ffn(std::make_unique<Dense>(6, 12, rng),
                    std::make_unique<Gelu>(),
                    std::make_unique<Dense>(12, 6, rng));
    Tensor x = randomInput(1, 3, 6, 19);
    EXPECT_TRUE(checkInputGrad(ffn, x).passed);
    EXPECT_TRUE(checkParamGrad(ffn, x).passed);
}

TEST(FeedForward, ButterflyGradCheck)
{
    Rng rng(20);
    FeedForward ffn(std::make_unique<ButterflyDense>(8, 16, rng),
                    std::make_unique<Gelu>(),
                    std::make_unique<ButterflyDense>(16, 8, rng));
    Tensor x = randomInput(1, 3, 8, 21);
    EXPECT_TRUE(checkInputGrad(ffn, x).passed);
    EXPECT_TRUE(checkParamGrad(ffn, x).passed);
}

TEST(EncoderBlock, FourierBlockGradCheck)
{
    Rng rng(22);
    auto ffn = std::make_unique<FeedForward>(
        std::make_unique<ButterflyDense>(8, 16, rng),
        std::make_unique<Gelu>(),
        std::make_unique<ButterflyDense>(16, 8, rng));
    EncoderBlock blk(8, std::make_unique<FourierMix>(), std::move(ffn));
    Tensor x = randomInput(1, 4, 8, 23);
    EXPECT_TRUE(checkInputGrad(blk, x, 7, 1e-3f, 3e-2f).passed);
    EXPECT_TRUE(checkParamGrad(blk, x, 7, 1e-3f, 3e-2f).passed);
}

TEST(EncoderBlock, OutputShapeMatchesInput)
{
    Rng rng(25);
    auto ffn = std::make_unique<FeedForward>(
        std::make_unique<Dense>(8, 16, rng), std::make_unique<Gelu>(),
        std::make_unique<Dense>(16, 8, rng));
    EncoderBlock blk(8, std::make_unique<FourierMix>(), std::move(ffn));
    Tensor x = randomInput(2, 4, 8, 26);
    Tensor y = blk.forward(x);
    EXPECT_EQ(y.shape(), x.shape());
}

TEST(EncoderBlock, ParamsAggregateSublayers)
{
    Rng rng(27);
    auto ffn = std::make_unique<FeedForward>(
        std::make_unique<Dense>(8, 16, rng), std::make_unique<Gelu>(),
        std::make_unique<Dense>(16, 8, rng));
    EncoderBlock blk(8, std::make_unique<FourierMix>(), std::move(ffn));
    std::vector<ParamRef> ps;
    blk.collectParams(ps);
    // FFN: 2 layers x (W, b) = 4; two LayerNorms x (gamma, beta) = 4.
    EXPECT_EQ(ps.size(), 8u);
}

} // namespace
} // namespace nn
} // namespace fabnet
