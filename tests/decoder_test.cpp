/**
 * @file decoder_test.cpp
 * Decoder-style (causal) attention: the paper notes its hardware "is
 * flexible and applicable to decoders too". Tests the causality
 * property, gradients, model building and the simulator's causal
 * work reduction.
 */
#include <gtest/gtest.h>

#include <memory>

#include "model/builder.h"
#include "nn/attention.h"
#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "sim/accelerator.h"
#include "tensor/rng.h"

namespace fabnet {
namespace {

std::unique_ptr<nn::MultiHeadAttention>
makeCausalMha(std::size_t d, std::size_t heads, Rng &rng)
{
    return std::make_unique<nn::MultiHeadAttention>(
        d, heads, std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng), /*causal=*/true);
}

TEST(CausalAttention, FuturePositionsCannotInfluencePast)
{
    Rng rng(1);
    auto mha = makeCausalMha(8, 2, rng);
    Tensor x = rng.normalTensor({1, 6, 8});
    Tensor y1 = mha->forward(x);

    // Perturb only the last two tokens.
    Tensor x2 = x;
    for (std::size_t t = 4; t < 6; ++t)
        for (std::size_t j = 0; j < 8; ++j)
            x2.at(0, t, j) += 1.5f;
    Tensor y2 = mha->forward(x2);

    for (std::size_t t = 0; t < 4; ++t)
        for (std::size_t j = 0; j < 8; ++j)
            EXPECT_NEAR(y1.at(0, t, j), y2.at(0, t, j), 1e-5f)
                << "future leaked into position " << t;
    // And the changed positions do change.
    float diff = 0.0f;
    for (std::size_t j = 0; j < 8; ++j)
        diff += std::fabs(y1.at(0, 5, j) - y2.at(0, 5, j));
    EXPECT_GT(diff, 1e-3f);
}

TEST(CausalAttention, FirstTokenAttendsOnlyToItself)
{
    // With causal masking, position 0's context is exactly V_0.
    const std::size_t t = 4, d = 4;
    class Identity : public nn::Layer
    {
      public:
        Tensor forward(const Tensor &x) override { return x; }
        Tensor backward(const Tensor &g) override { return g; }
    };
    nn::MultiHeadAttention mha(d, 1, std::make_unique<Identity>(),
                               std::make_unique<Identity>(),
                               std::make_unique<Identity>(),
                               std::make_unique<Identity>(),
                               /*causal=*/true);
    Rng rng(2);
    Tensor x = rng.normalTensor({1, t, d});
    Tensor y = mha.forward(x);
    for (std::size_t j = 0; j < d; ++j)
        EXPECT_NEAR(y.at(0, 0, j), x.at(0, 0, j), 1e-5f);
}

TEST(CausalAttention, GradCheck)
{
    Rng rng(3);
    auto mha = makeCausalMha(6, 2, rng);
    Tensor x = rng.normalTensor({1, 4, 6});
    EXPECT_TRUE(nn::checkInputGrad(*mha, x, 7, 1e-3f, 3e-2f).passed);
    EXPECT_TRUE(nn::checkParamGrad(*mha, x, 7, 1e-3f, 3e-2f).passed);
}

TEST(CausalAttention, NonCausalByDefault)
{
    Rng rng(4);
    nn::MultiHeadAttention mha(
        4, 1, std::make_unique<nn::Dense>(4, 4, rng),
        std::make_unique<nn::Dense>(4, 4, rng),
        std::make_unique<nn::Dense>(4, 4, rng),
        std::make_unique<nn::Dense>(4, 4, rng));
    EXPECT_FALSE(mha.causal());
}

TEST(DecoderModel, BuildsAndTrains)
{
    // GPT-style FABNet: causal ABfly blocks with butterfly
    // projections, trained as a classifier over the final pool.
    Rng rng(5);
    ModelConfig cfg;
    cfg.kind = ModelKind::FABNet;
    cfg.vocab = 16;
    cfg.classes = 2;
    cfg.max_seq = 16;
    cfg.d_hid = 8;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.n_abfly = 2; // all-attention decoder
    cfg.heads = 2;
    cfg.causal = true;
    auto model = buildModel(cfg, rng);

    std::vector<Example> data;
    for (int i = 0; i < 32; ++i) {
        Example ex;
        ex.tokens.assign(16, (i % 2) ? 2 : 1);
        ex.label = i % 2;
        data.push_back(ex);
    }
    nn::Adam opt(model->params(), 5e-3f);
    Batch b = makeBatch(data, 0, 16, 16);
    float first = model->trainBatch(b, opt);
    float last = first;
    for (int e = 0; e < 10; ++e)
        last = model->trainBatch(b, opt);
    EXPECT_LT(last, first);
}

TEST(DecoderSim, CausalMaskHalvesAttentionWork)
{
    ModelConfig cfg;
    cfg.kind = ModelKind::FABNet;
    cfg.d_hid = 64;
    cfg.r_ffn = 2;
    cfg.n_total = 1;
    cfg.n_abfly = 1;
    cfg.heads = 2;

    sim::AcceleratorConfig hw;
    hw.p_be = 16;
    hw.p_bu = 4;
    hw.p_head = 2;
    hw.p_qk = 16;
    hw.p_sv = 16;
    hw.fine_pipeline = false; // isolate the raw attention cycles

    const std::size_t seq = 256;
    cfg.causal = false;
    const auto enc = sim::simulateModel(cfg, seq, hw);
    cfg.causal = true;
    const auto dec = sim::simulateModel(cfg, seq, hw);

    double enc_qk = 0.0, dec_qk = 0.0;
    for (std::size_t i = 0; i < enc.ops.size(); ++i) {
        if (enc.ops[i].kind == sim::OpKind::AttentionQK) {
            enc_qk = enc.ops[i].compute_cycles;
            dec_qk = dec.ops[i].compute_cycles;
        }
    }
    ASSERT_GT(enc_qk, 0.0);
    // (T+1)/2T ~ 0.502 of the full-score work at T=256.
    EXPECT_NEAR(dec_qk / enc_qk, 0.51, 0.05);
    EXPECT_LT(dec.total_cycles, enc.total_cycles);
}

} // namespace
} // namespace fabnet
