/**
 * @file flops_test.cpp
 * Analytical FLOPs/parameter model: the counters behind Fig. 1 and
 * Fig. 17, including the paper's headline compression ratios.
 */
#include <gtest/gtest.h>

#include "data/lra.h"
#include "model/flops.h"

namespace fabnet {
namespace {

TEST(Flops, DenseLinearCount)
{
    EXPECT_DOUBLE_EQ(denseLinearFlops(10, 4, 8), 2.0 * 10 * 4 * 8);
    EXPECT_EQ(denseLinearParams(4, 8), 4u * 8u + 8u);
}

TEST(Flops, ButterflyLinearCheaperThanDense)
{
    // At 1024x1024, butterfly is ~30x cheaper in FLOPs.
    const double dense = denseLinearFlops(1, 1024, 1024);
    const double bfly = butterflyLinearFlops(1, 1024, 1024);
    EXPECT_GT(dense / bfly, 20.0);
    EXPECT_GT(static_cast<double>(denseLinearParams(1024, 1024)) /
                  butterflyLinearParams(1024, 1024),
              30.0);
}

TEST(Flops, ButterflyExpansionScalesWithCores)
{
    const double one = butterflyLinearFlops(1, 64, 64);
    const double four = butterflyLinearFlops(1, 64, 256);
    // 4 cores + larger bias term.
    EXPECT_NEAR(four, 4.0 * (one - 64.0) + 256.0, 1.0);
}

TEST(Flops, AttentionQuadraticInSequence)
{
    const double a1 = attentionCoreFlops(128, 64, 4);
    const double a2 = attentionCoreFlops(256, 64, 4);
    EXPECT_NEAR(a2 / a1, 4.0, 0.1);
}

TEST(Flops, FourierMixLogLinear)
{
    const double f1 = fourierMixFlops(1024, 64);
    const double f2 = fourierMixFlops(2048, 64);
    // Doubling seq slightly more than doubles (log factor).
    EXPECT_GT(f2 / f1, 2.0);
    EXPECT_LT(f2 / f1, 2.4);
}

TEST(Flops, Figure1TrendLinearDominatesShortSequences)
{
    // BERT-Base shape: at seq 128 linear layers are > 80% of FLOPs;
    // attention takes over as the sequence grows (Fig. 1).
    ModelConfig bert = bertBase();
    const auto short_seq = modelFlops(bert, 128);
    EXPECT_GT(short_seq.linearShare(), 0.8);

    const auto long_seq = modelFlops(bert, 8192);
    EXPECT_GT(long_seq.attentionShare(), 0.5);

    // Monotone shift between the regimes.
    double prev_attention = 0.0;
    for (std::size_t seq : {128u, 512u, 2048u, 8192u}) {
        const auto fb = modelFlops(bert, seq);
        EXPECT_GT(fb.attentionShare(), prev_attention);
        prev_attention = fb.attentionShare();
    }
}

TEST(Flops, FabnetBreakdownHasNoAttentionWhenPureFBfly)
{
    const auto fb = modelFlops(fabnetBase(), 1024);
    EXPECT_EQ(fb.attention, 0.0);
    EXPECT_GT(fb.fft, 0.0);
    EXPECT_GT(fb.butterfly, 0.0);
    EXPECT_EQ(fb.linear, 0.0);
}

TEST(Flops, FabnetHybridCountsAttention)
{
    ModelConfig cfg = fabnetBase();
    cfg.n_abfly = 2;
    const auto fb = modelFlops(cfg, 1024);
    EXPECT_GT(fb.attention, 0.0);
}

TEST(Flops, Figure17ReductionsInPaperRange)
{
    // Paper: FABNet reduces FLOPs by ~10-66x and model size ~2-22x
    // over the vanilla Transformer across the five LRA tasks (model
    // size includes the embedding tables, which FABNet keeps dense).
    for (const auto &task : data::lraCatalog()) {
        const double t_flops =
            modelFlops(task.transformer, task.paper_seq).total();
        const double f_flops =
            modelFlops(task.fabnet, task.paper_seq).total();
        const double flops_red = t_flops / f_flops;
        EXPECT_GT(flops_red, 10.0) << task.name;
        EXPECT_LT(flops_red, 80.0) << task.name;

        const double t_params =
            static_cast<double>(modelParams(task.transformer));
        const double f_params =
            static_cast<double>(modelParams(task.fabnet));
        const double param_red = t_params / f_params;
        EXPECT_GT(param_red, 2.0) << task.name;
        EXPECT_LT(param_red, 22.0) << task.name;
    }
}

TEST(Flops, FnetBetweenTransformerAndFabnet)
{
    for (const auto &task : data::lraCatalog()) {
        if (task.name == "Retrieval")
            continue; // paper inflates FNet's hidden size here
        const double t =
            modelFlops(task.transformer, task.paper_seq).total();
        const double n = modelFlops(task.fnet, task.paper_seq).total();
        const double f =
            modelFlops(task.fabnet, task.paper_seq).total();
        EXPECT_LT(n, t) << task.name;
        EXPECT_LT(f, n) << task.name;
    }
}

TEST(Params, TransformerDominatedByProjectionsAndFfn)
{
    ModelConfig bert = bertBase();
    const std::size_t p = modelParams(bert);
    // 12 blocks x (4 * (768^2+768) + 2 * (768*3072 + bias) + LN).
    EXPECT_GT(p, 80'000'000u);
    EXPECT_LT(p, 90'000'000u);
}

TEST(Params, FabnetBaseUnderTwoMillion)
{
    // Butterfly factorisation shrinks FABNet-Base's blocks by ~50x.
    const std::size_t p = modelParams(fabnetBase());
    EXPECT_LT(p, 3'000'000u);
    EXPECT_GT(p, 200'000u);
}

TEST(Flops, TotalIsSumOfCategories)
{
    const auto fb = modelFlops(fabnetBase(), 512);
    EXPECT_NEAR(fb.total(),
                fb.attention + fb.linear + fb.butterfly + fb.fft +
                    fb.other,
                1.0);
}

} // namespace
} // namespace fabnet
