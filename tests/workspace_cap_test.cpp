/**
 * @file workspace_cap_test.cpp
 * Regression suite for the workspace-cap install/restore path
 * (runtime/workspace.h + serve/serving.h WorkspaceCapLease).
 *
 * The original engines installed the cap in the constructor body and
 * removed it in the destructor. If the constructor then threw (e.g.
 * std::thread failing to spawn), the destructor never ran and the
 * process-wide cap leaked past the engine's lifetime. The fix is an
 * RAII lease MEMBER declared before the thread members: member
 * destructors run even for a partially constructed object, so the cap
 * is restored on every exit path. This file pins that contract
 * directly, without needing to make thread creation fail.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "runtime/workspace.h"
#include "serve/serving.h"
#include "test_util.h"

namespace fabnet {
namespace {

using runtime::setWorkspaceCapBytes;
using runtime::workspaceCapBytes;
using runtime::WorkspaceCapGuard;
using serve::detail::WorkspaceCapLease;

class WorkspaceCapTest : public testutil::RuntimeFixture
{
  protected:
    void SetUp() override
    {
        testutil::RuntimeFixture::SetUp();
        setWorkspaceCapBytes(0);
    }
    void TearDown() override
    {
        setWorkspaceCapBytes(0);
        testutil::RuntimeFixture::TearDown();
    }
};

TEST_F(WorkspaceCapTest, LeaseInstallsAndRestores)
{
    EXPECT_EQ(workspaceCapBytes(), 0u);
    {
        WorkspaceCapLease lease(1u << 20);
        EXPECT_EQ(workspaceCapBytes(), 1u << 20);
    }
    EXPECT_EQ(workspaceCapBytes(), 0u);
}

TEST_F(WorkspaceCapTest, ZeroCapLeaseIsANoOp)
{
    setWorkspaceCapBytes(7u << 10);
    {
        WorkspaceCapLease lease(0);
        EXPECT_EQ(workspaceCapBytes(), 7u << 10);
    }
    EXPECT_EQ(workspaceCapBytes(), 7u << 10);
}

TEST_F(WorkspaceCapTest, LeaseRestoresOnException)
{
    // The bug this suite exists for: a throw after the cap is
    // installed (a constructor body failing after the lease member was
    // built) must still restore the pre-existing policy, because the
    // lease member's destructor runs during stack unwinding.
    struct ThrowsAfterLease
    {
        WorkspaceCapLease lease;
        explicit ThrowsAfterLease(std::size_t cap) : lease(cap)
        {
            throw std::runtime_error("ctor failed after cap install");
        }
    };
    EXPECT_EQ(workspaceCapBytes(), 0u);
    EXPECT_THROW(ThrowsAfterLease obj(2u << 20), std::runtime_error);
    EXPECT_EQ(workspaceCapBytes(), 0u);

    // Same unwinding path from a plain scope.
    try {
        WorkspaceCapLease lease(3u << 20);
        EXPECT_EQ(workspaceCapBytes(), 3u << 20);
        throw std::runtime_error("body threw");
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(workspaceCapBytes(), 0u);
}

TEST_F(WorkspaceCapTest, LeaseMoveTransfersOwnership)
{
    WorkspaceCapLease a(1u << 20);
    EXPECT_EQ(workspaceCapBytes(), 1u << 20);

    // Move construction: exactly one owner, no double-remove.
    WorkspaceCapLease b(std::move(a));
    EXPECT_EQ(workspaceCapBytes(), 1u << 20);
    { WorkspaceCapLease dead(std::move(a)); } // moved-from: no-op
    EXPECT_EQ(workspaceCapBytes(), 1u << 20);

    // Move assignment releases the target's old cap first (this is
    // the engine-constructor pattern: default-constructed member, then
    // `lease_ = WorkspaceCapLease(cap)`).
    WorkspaceCapLease c;
    c = std::move(b);
    EXPECT_EQ(workspaceCapBytes(), 1u << 20);
    c = WorkspaceCapLease(2u << 20);
    EXPECT_EQ(workspaceCapBytes(), 2u << 20);
    c = WorkspaceCapLease();
    EXPECT_EQ(workspaceCapBytes(), 0u);
}

TEST_F(WorkspaceCapTest, OverlappingLeasesTightestWinsAndUnnest)
{
    WorkspaceCapLease wide(4u << 20);
    EXPECT_EQ(workspaceCapBytes(), 4u << 20);
    {
        WorkspaceCapLease tight(1u << 20);
        EXPECT_EQ(workspaceCapBytes(), 1u << 20);
        {
            // A looser overlapping lease must not widen the policy.
            WorkspaceCapLease mid(2u << 20);
            EXPECT_EQ(workspaceCapBytes(), 1u << 20);
        }
        EXPECT_EQ(workspaceCapBytes(), 1u << 20);
    }
    EXPECT_EQ(workspaceCapBytes(), 4u << 20);
}

TEST_F(WorkspaceCapTest, BaselineRestoredAfterLastLease)
{
    // A pre-existing user policy is the baseline, not 0: the last
    // lease out must put back what it found, and equal caps must not
    // confuse the multiset bookkeeping.
    setWorkspaceCapBytes(9u << 10);
    {
        WorkspaceCapLease a(1u << 20);
        WorkspaceCapLease b(1u << 20);
        EXPECT_EQ(workspaceCapBytes(), 1u << 20);
    }
    EXPECT_EQ(workspaceCapBytes(), 9u << 10);
}

TEST_F(WorkspaceCapTest, GuardRestoresPreviousCapOnThrow)
{
    setWorkspaceCapBytes(5u << 10);
    try {
        WorkspaceCapGuard guard(1u << 20);
        EXPECT_EQ(workspaceCapBytes(), 1u << 20);
        throw std::runtime_error("scope failed");
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(workspaceCapBytes(), 5u << 10);
}

} // namespace
} // namespace fabnet
