/**
 * @file model_test.cpp
 * Model builders and the end-to-end sequence classifier: shapes,
 * parameter-count relations across families, batching, and a smoke
 * training run.
 */
#include <gtest/gtest.h>

#include "model/builder.h"
#include "model/classifier.h"
#include "model/config.h"
#include "tensor/rng.h"

namespace fabnet {
namespace {

ModelConfig
tinyConfig(ModelKind kind)
{
    ModelConfig c;
    c.kind = kind;
    c.vocab = 16;
    c.max_seq = 16;
    c.d_hid = 8;
    c.r_ffn = 2;
    c.n_total = 2;
    c.n_abfly = kind == ModelKind::Transformer ? 2 : 0;
    c.heads = 2;
    c.classes = 3;
    return c;
}

TEST(ModelConfig, Presets)
{
    EXPECT_EQ(fabnetBase().d_hid, 768u);
    EXPECT_EQ(fabnetBase().n_total, 12u);
    EXPECT_EQ(fabnetBase().n_abfly, 0u);
    EXPECT_EQ(fabnetLarge().d_hid, 1024u);
    EXPECT_EQ(fabnetLarge().n_total, 24u);
    EXPECT_EQ(bertBase().kind, ModelKind::Transformer);
    EXPECT_EQ(bertLarge().n_total, 24u);
    EXPECT_EQ(fabnetBase().ffnHidden(), 3072u);
}

TEST(ModelConfig, DescribeMentionsFamily)
{
    EXPECT_NE(fabnetBase().describe().find("FABNet"), std::string::npos);
    EXPECT_NE(bertBase().describe().find("Transformer"),
              std::string::npos);
}

TEST(Builder, AllFamiliesProduceWorkingForward)
{
    for (ModelKind kind : {ModelKind::Transformer, ModelKind::FNet,
                           ModelKind::FABNet}) {
        Rng rng(7);
        auto cfg = tinyConfig(kind);
        auto model = buildModel(cfg, rng);
        std::vector<int> tokens(2 * 8, 1);
        Tensor logits = model->forward(tokens, 2, 8);
        EXPECT_EQ(logits.shape(), (std::vector<std::size_t>{2, 3}))
            << cfg.describe();
    }
}

TEST(Builder, FabnetHybridUsesAbflyBlocks)
{
    Rng rng(9);
    auto cfg = tinyConfig(ModelKind::FABNet);
    cfg.n_abfly = 1;
    auto model = buildModel(cfg, rng);
    std::vector<int> tokens(8, 1);
    Tensor logits = model->forward(tokens, 1, 8);
    EXPECT_EQ(logits.dim(1), 3u);
    // ABfly adds butterfly attention projections -> more params than
    // the all-FBfly variant.
    auto cfg0 = tinyConfig(ModelKind::FABNet);
    Rng rng2(9);
    auto model0 = buildModel(cfg0, rng2);
    EXPECT_GT(model->numParams(), model0->numParams());
}

TEST(Builder, InvalidAbflyCountRejected)
{
    Rng rng(10);
    auto cfg = tinyConfig(ModelKind::FABNet);
    cfg.n_abfly = 5; // > n_total
    EXPECT_THROW(buildModel(cfg, rng), std::invalid_argument);
}

TEST(Builder, FabnetHasFarFewerParamsThanTransformer)
{
    Rng rng(11);
    ModelConfig tc = tinyConfig(ModelKind::Transformer);
    tc.d_hid = 64;
    tc.r_ffn = 4;
    ModelConfig fc = tc;
    fc.kind = ModelKind::FABNet;
    fc.n_abfly = 0;
    auto transformer = buildModel(tc, rng);
    auto fab = buildModel(fc, rng);
    EXPECT_LT(fab->numParams(), transformer->numParams() / 2);
}

TEST(Builder, PartiallyCompressedInterpolates)
{
    Rng rng(12);
    auto cfg = tinyConfig(ModelKind::Transformer);
    auto p0 = buildPartiallyCompressed(cfg, 0, rng)->numParams();
    auto p1 = buildPartiallyCompressed(cfg, 1, rng)->numParams();
    auto p2 = buildPartiallyCompressed(cfg, 2, rng)->numParams();
    EXPECT_GT(p0, p1);
    EXPECT_GT(p1, p2);
    EXPECT_THROW(buildPartiallyCompressed(cfg, 3, rng),
                 std::invalid_argument);
}

TEST(Batch, PaddingAndTruncation)
{
    std::vector<Example> data(3);
    data[0].tokens = {1, 2};
    data[0].label = 0;
    data[1].tokens = {3, 4, 5, 6, 7, 8};
    data[1].label = 1;
    data[2].tokens = {9};
    data[2].label = 2;

    Batch b = makeBatch(data, 0, 3, 4);
    EXPECT_EQ(b.tokens.size(), 12u);
    EXPECT_EQ(b.tokens[0], 1);
    EXPECT_EQ(b.tokens[2], 0); // padded
    EXPECT_EQ(b.tokens[4 + 3], 6); // truncated at 4
    EXPECT_EQ(b.labels[2], 2);
}

TEST(Classifier, EvaluateCountsExactMatches)
{
    Rng rng(13);
    auto cfg = tinyConfig(ModelKind::FNet);
    auto model = buildModel(cfg, rng);
    std::vector<Example> data(6);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i].tokens.assign(8, static_cast<int>(i % cfg.vocab));
        data[i].label = static_cast<int>(i % 3);
    }
    const double acc = model->evaluate(data, 8, 4);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(Classifier, TrainingReducesLossOnSeparableToy)
{
    // Token 1 -> class 0, token 2 -> class 1: trivially separable.
    Rng rng(14);
    ModelConfig cfg = tinyConfig(ModelKind::FABNet);
    cfg.classes = 2;
    auto model = buildModel(cfg, rng);

    std::vector<Example> data;
    for (int i = 0; i < 32; ++i) {
        Example ex;
        ex.tokens.assign(8, (i % 2) ? 2 : 1);
        ex.label = i % 2;
        data.push_back(ex);
    }

    nn::Adam opt(model->params(), 5e-3f);
    Batch b0 = makeBatch(data, 0, 16, 8);
    const float first = model->trainBatch(b0, opt);
    float last = first;
    for (int epoch = 0; epoch < 12; ++epoch)
        last = model->trainBatch(b0, opt);
    EXPECT_LT(last, first);
    EXPECT_GE(model->evaluate(data, 8, 16), 0.9);
}

TEST(Classifier, ParamsListCoversEmbeddingBlocksHead)
{
    Rng rng(15);
    auto cfg = tinyConfig(ModelKind::FNet);
    auto model = buildModel(cfg, rng);
    auto ps = model->params();
    // Embedding (2) + 2 FNet blocks (FFN 4 + LN 4 each) + head (2).
    EXPECT_EQ(ps.size(), 2u + 2u * 8u + 2u);
}

} // namespace
} // namespace fabnet
