/**
 * @file deployment_pipeline_test.cpp
 * Capstone integration: the full deployment flow a user of this
 * library would run -
 *
 *   train FABNet -> checkpoint -> reload into a fresh model ->
 *   quantise to fp16 -> execute the butterfly layers on the
 *   functional hardware engine -> verify predictions survive.
 *
 * This is the software-to-silicon path the paper's artifact walks
 * with PyTorch -> Verilog testbenches (Appendix E).
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "data/lra.h"
#include "model/builder.h"
#include "nn/quantize.h"
#include "nn/serialize.h"
#include "sim/accelerator.h"
#include "sim/datapath.h"
#include "sim/power.h"
#include "sim/resource.h"
#include "tensor/ops.h"

namespace fabnet {
namespace {

TEST(DeploymentPipeline, TrainCheckpointQuantizeSimulate)
{
    // --- 1. Train on the synthetic Text task. ---------------------
    Rng rng(31);
    auto gen = data::makeLraGenerator("Text", 32);
    auto train = gen->dataset(128, rng);
    auto test = gen->dataset(64, rng);

    ModelConfig cfg;
    cfg.kind = ModelKind::FABNet;
    cfg.vocab = 256;
    cfg.classes = 2;
    cfg.max_seq = 32;
    cfg.d_hid = 32;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.heads = 2;

    auto model = buildModel(cfg, rng);
    const double trained_acc = trainClassifier(
        *model, train, test, 32, 4, 16, 2e-3f, rng);
    ASSERT_GT(trained_acc, 0.65) << "training failed to learn";

    // --- 2. Checkpoint and reload into a fresh model. -------------
    const std::string path =
        std::string(::testing::TempDir()) + "fab_deploy.bin";
    ASSERT_TRUE(nn::saveParams(model->params(), path));
    Rng rng2(999);
    auto deployed = buildModel(cfg, rng2);
    ASSERT_TRUE(nn::loadParams(deployed->params(), path));
    std::remove(path.c_str());
    EXPECT_NEAR(deployed->evaluate(test, 32), trained_acc, 1e-9);

    // --- 3. Quantise to the accelerator's fp16. -------------------
    nn::quantizeParamsToHalf(deployed->params());
    const double fp16_acc = deployed->evaluate(test, 32);
    EXPECT_NEAR(fp16_acc, trained_acc, 0.06)
        << "fp16 deployment lost accuracy";

    // --- 4. The hardware design point hosting it is feasible. -----
    sim::AcceleratorConfig hw;
    hw.p_be = 32;
    hw.p_bu = 4;
    hw.bw_gbps = 100.0;
    const auto rep = sim::simulateModel(cfg, 32, hw);
    EXPECT_GT(rep.total_cycles, 0.0);
    EXPECT_TRUE(
        sim::estimateResources(hw).fitsOn(sim::vcu128Device()));
    EXPECT_GT(sim::estimatePower(hw).total(), 0.0);
}

TEST(DeploymentPipeline, TrainedLayerBitMatchesFunctionalEngine)
{
    // Train one butterfly layer inside a model, then execute that
    // exact trained core on the functional fp16 engine and compare
    // against the quantised software forward - this is the Verilog-
    // testbench equivalence the artifact checks layer by layer.
    Rng rng(33);
    ButterflyMatrix core(32);
    core.initRandomRotation(rng);
    // Light training towards a random target.
    Tensor target = rng.normalTensor({32, 32}, 0.3f);
    std::vector<float> cache((core.numStages() + 1) * 32);
    std::vector<float> gw(core.numWeights());
    std::vector<float> gin(32);
    for (int step = 0; step < 100; ++step) {
        std::vector<float> x(32);
        for (auto &v : x)
            v = rng.normal();
        core.forwardWithCache(x.data(), cache.data());
        const float *y = cache.data() + core.numStages() * 32;
        std::vector<float> g(32);
        for (std::size_t i = 0; i < 32; ++i) {
            float tx = 0.0f;
            for (std::size_t j = 0; j < 32; ++j)
                tx += target.at(i, j) * x[j];
            g[i] = y[i] - tx;
        }
        std::fill(gw.begin(), gw.end(), 0.0f);
        core.backward(cache.data(), g.data(), gin.data(), gw);
        for (std::size_t i = 0; i < gw.size(); ++i)
            core.weights()[i] -= 0.02f * gw[i];
    }

    // Quantise the trained weights as deployment would.
    for (float &w : core.weights())
        w = roundToHalf(w);

    sim::FunctionalButterflyEngine engine(4);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<float> x(32);
        for (auto &v : x)
            v = roundToHalf(rng.normal());
        std::vector<float> sw(32);
        core.apply(x.data(), sw.data());
        const auto hw = engine.runButterflyLinear(core, x);
        for (std::size_t i = 0; i < 32; ++i)
            EXPECT_NEAR(hw[i], sw[i],
                        2e-2f * std::max(1.0f, std::fabs(sw[i])))
                << "trial " << trial << " element " << i;
    }
}

} // namespace
} // namespace fabnet
