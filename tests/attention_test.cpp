/**
 * @file attention_test.cpp
 * Multi-head attention: reference-implementation equivalence,
 * softmax-row properties, gradient checks with dense and butterfly
 * projections.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/attention.h"
#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace fabnet {
namespace nn {
namespace {

/** Identity projection layer for isolating the attention core. */
class IdentityLayer : public Layer
{
  public:
    Tensor forward(const Tensor &x) override { return x; }
    Tensor backward(const Tensor &g) override { return g; }
};

std::unique_ptr<MultiHeadAttention>
makeDenseMha(std::size_t d, std::size_t heads, Rng &rng)
{
    return std::make_unique<MultiHeadAttention>(
        d, heads, std::make_unique<Dense>(d, d, rng),
        std::make_unique<Dense>(d, d, rng),
        std::make_unique<Dense>(d, d, rng),
        std::make_unique<Dense>(d, d, rng));
}

TEST(Attention, SingleHeadIdentityProjectionsMatchReference)
{
    const std::size_t t = 5, d = 4;
    MultiHeadAttention mha(d, 1, std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>());
    Rng rng(1);
    Tensor x = rng.normalTensor({1, t, d});
    Tensor y = mha.forward(x);

    // Reference: softmax(x x^T / sqrt(d)) x.
    Tensor flat = x.reshaped({t, d});
    Tensor scores = ops::matmulTransposed(flat, flat);
    scores = ops::scale(scores, 1.0f / std::sqrt((float)d));
    Tensor attn = ops::softmaxLastDim(scores);
    Tensor ref = ops::matmul(attn, flat);
    for (std::size_t i = 0; i < t; ++i)
        for (std::size_t j = 0; j < d; ++j)
            EXPECT_NEAR(y.at(0, i, j), ref.at(i, j), 1e-4f);
}

TEST(Attention, OutputShapePreserved)
{
    Rng rng(2);
    auto mha = makeDenseMha(8, 2, rng);
    Tensor x = rng.normalTensor({3, 6, 8});
    Tensor y = mha->forward(x);
    EXPECT_EQ(y.shape(), x.shape());
}

TEST(Attention, HeadsMustDivideModelDim)
{
    Rng rng(3);
    EXPECT_THROW(makeDenseMha(10, 3, rng), std::invalid_argument);
}

TEST(Attention, UniformValuesGiveUniformContext)
{
    // When V is constant across tokens, any attention distribution
    // must return that constant.
    const std::size_t t = 4, d = 4;
    MultiHeadAttention mha(d, 1, std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>());
    Tensor x = Tensor::zeros(1, t, d);
    for (std::size_t i = 0; i < t; ++i)
        for (std::size_t j = 0; j < d; ++j)
            x.at(0, i, j) = static_cast<float>(j); // same every token
    Tensor y = mha.forward(x);
    for (std::size_t i = 0; i < t; ++i)
        for (std::size_t j = 0; j < d; ++j)
            EXPECT_NEAR(y.at(0, i, j), static_cast<float>(j), 1e-4f);
}

TEST(Attention, GradCheckDenseProjections)
{
    Rng rng(5);
    auto mha = makeDenseMha(6, 2, rng);
    Tensor x = rng.normalTensor({1, 4, 6});
    EXPECT_TRUE(checkInputGrad(*mha, x, 7, 1e-3f, 3e-2f).passed);
    EXPECT_TRUE(checkParamGrad(*mha, x, 7, 1e-3f, 3e-2f).passed);
}

TEST(Attention, GradCheckButterflyProjections)
{
    Rng rng(8);
    const std::size_t d = 8;
    MultiHeadAttention mha(d, 2,
                           std::make_unique<ButterflyDense>(d, d, rng),
                           std::make_unique<ButterflyDense>(d, d, rng),
                           std::make_unique<ButterflyDense>(d, d, rng),
                           std::make_unique<ButterflyDense>(d, d, rng));
    Tensor x = rng.normalTensor({1, 4, d});
    EXPECT_TRUE(checkInputGrad(mha, x, 7, 1e-3f, 3e-2f).passed);
    EXPECT_TRUE(checkParamGrad(mha, x, 7, 1e-3f, 3e-2f).passed);
}

TEST(Attention, GradCheckMultiBatch)
{
    Rng rng(9);
    auto mha = makeDenseMha(4, 1, rng);
    Tensor x = rng.normalTensor({3, 3, 4});
    EXPECT_TRUE(checkInputGrad(*mha, x, 11, 1e-3f, 3e-2f).passed);
}

TEST(Attention, ParamCountMatchesProjections)
{
    Rng rng(10);
    auto mha = makeDenseMha(8, 2, rng);
    // 4 dense projections: 4 * (8*8 + 8).
    EXPECT_EQ(mha->numParams(), 4u * (64u + 8u));
}

TEST(Attention, HeadsAreIndependent)
{
    // Modifying the tokens' features inside head 1's slice must not
    // change head 0's output when projections are identity.
    const std::size_t t = 4, d = 8; // two heads of width 4
    MultiHeadAttention mha(d, 2, std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>(),
                           std::make_unique<IdentityLayer>());
    Rng rng(11);
    Tensor x = rng.normalTensor({1, t, d});
    Tensor y1 = mha.forward(x);
    Tensor x2 = x;
    for (std::size_t i = 0; i < t; ++i)
        for (std::size_t j = 4; j < 8; ++j)
            x2.at(0, i, j) += 0.7f;
    Tensor y2 = mha.forward(x2);
    for (std::size_t i = 0; i < t; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_NEAR(y1.at(0, i, j), y2.at(0, i, j), 1e-4f)
                << "head-0 output changed at (" << i << "," << j << ")";
}

} // namespace
} // namespace nn
} // namespace fabnet
