/**
 * @file backward_parity_test.cpp
 * The training backward's parity contract (the grad-parity ctest
 * gate): every parallel backward path - GEMM grads, Dense, butterfly,
 * LayerNorm, attention, encoder blocks, embedding, pooled head and
 * the full train step - is BITWISE identical to its seed serial
 * `backwardReference` at thread counts {1, 4, 8}, over seeded shape
 * sweeps that include odd and non-power-of-two sizes. Built on the
 * shared harness in test_util.h; see runtime/reduce.h for why the
 * fast paths can meet an exact-equality bar at all (owner-parallel
 * gradient accumulation, never cross-thread reduction).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "model/builder.h"
#include "nn/attention.h"
#include "nn/basic_layers.h"
#include "nn/block.h"
#include "nn/dense.h"
#include "nn/embedding.h"
#include "nn/gradcheck.h"
#include "nn/optimizer.h"
#include "runtime/parallel.h"
#include "runtime/reduce.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using testutil::bitwiseEqual;
using testutil::expectBackwardParity;
using testutil::forEachThreadCount;
using testutil::gradsBitwiseEqual;
using testutil::randomTensor;
using testutil::snapshotGrads;

using BackwardParity = testutil::RuntimeFixture;

// --------------------------------------------------------- GEMM grads

TEST_F(BackwardParity, MatmulGradAMatchesReferenceBitwise)
{
    unsigned seed = 1000;
    for (const auto &s : testutil::gemmShapeSweep(11)) {
        const Tensor gc = randomTensor({s.m, s.n}, seed++);
        const Tensor b = randomTensor({s.k, s.n}, seed++);
        runtime::setNumThreads(1);
        const Tensor ref = ops::reference::matmulGradA(gc, b);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(bitwiseEqual(ops::matmulGradA(gc, b), ref))
                << "m=" << s.m << " k=" << s.k << " n=" << s.n
                << " threads=" << threads;
        });
    }
}

TEST_F(BackwardParity, MatmulGradBMatchesReferenceBitwise)
{
    unsigned seed = 2000;
    for (const auto &s : testutil::gemmShapeSweep(13)) {
        const Tensor a = randomTensor({s.m, s.k}, seed++);
        const Tensor gc = randomTensor({s.m, s.n}, seed++);
        runtime::setNumThreads(1);
        const Tensor ref = ops::reference::matmulGradB(a, gc);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(bitwiseEqual(ops::matmulGradB(a, gc), ref))
                << "m=" << s.m << " k=" << s.k << " n=" << s.n
                << " threads=" << threads;
        });
    }
}

TEST_F(BackwardParity, MatmulGradsAreTheTrueGemmAdjoints)
{
    // Independent of the parity machinery: dA = gC B^T and dB = A^T gC
    // must agree with the transpose-based formulation within fp noise.
    const Tensor a = randomTensor({7, 5}, 3);
    const Tensor b = randomTensor({5, 9}, 4);
    const Tensor gc = randomTensor({7, 9}, 5);
    const Tensor da = ops::matmulGradA(gc, b);
    const Tensor db = ops::matmulGradB(a, gc);
    EXPECT_TRUE(testutil::maxAbsDiffWithin(
        da, ops::matmul(gc, ops::transpose(b)), 1e-5f));
    EXPECT_TRUE(testutil::maxAbsDiffWithin(
        db, ops::matmul(ops::transpose(a), gc), 1e-5f));
}

// ------------------------------------------------------------- layers

TEST_F(BackwardParity, DenseBackwardParitySweep)
{
    unsigned seed = 3000;
    for (const auto &s : nn::gradSweepShapes(17, 4)) {
        Rng rng(seed);
        nn::Dense layer(s.features, s.out_features, rng);
        const Tensor x =
            randomTensor({s.batch, s.seq, s.features}, seed + 1);
        expectBackwardParity(layer, x, seed + 2, "Dense");
        seed += 3;
    }
}

TEST_F(BackwardParity, ButterflyDenseBackwardParitySweep)
{
    unsigned seed = 4000;
    for (const auto &s : nn::gradSweepShapes(19, 4)) {
        Rng rng(seed);
        nn::ButterflyDense layer(s.features, s.out_features, rng);
        const Tensor x =
            randomTensor({s.batch, s.seq, s.features}, seed + 1);
        expectBackwardParity(layer, x, seed + 2, "ButterflyDense");
        seed += 3;
    }
}

TEST_F(BackwardParity, LayerNormBackwardParitySweep)
{
    unsigned seed = 5000;
    for (const auto &s : nn::gradSweepShapes(23, 4)) {
        nn::LayerNorm layer(s.features);
        const Tensor x =
            randomTensor({s.batch, s.seq, s.features}, seed + 1);
        expectBackwardParity(layer, x, seed + 2, "LayerNorm");
        seed += 3;
    }
}

std::unique_ptr<nn::Layer>
denseProj(std::size_t d, Rng &rng)
{
    return std::make_unique<nn::Dense>(d, d, rng);
}

std::unique_ptr<nn::Layer>
butterflyProj(std::size_t d, Rng &rng)
{
    return std::make_unique<nn::ButterflyDense>(d, d, rng);
}

TEST_F(BackwardParity, AttentionBackwardParity)
{
    // Odd sequence lengths, dense and butterfly projections, causal
    // and bidirectional - the four corners of the attention backward.
    struct Case
    {
        std::size_t b, t, d, heads;
        bool butterfly, causal;
    };
    const Case cases[] = {
        {2, 7, 24, 3, false, false},
        {1, 5, 24, 3, false, true},
        {2, 9, 16, 2, true, false},
        {3, 3, 16, 2, true, true},
    };
    unsigned seed = 6000;
    for (const auto &c : cases) {
        Rng rng(seed);
        auto proj = [&](std::size_t d) {
            return c.butterfly ? butterflyProj(d, rng)
                               : denseProj(d, rng);
        };
        nn::MultiHeadAttention attn(c.d, c.heads, proj(c.d), proj(c.d),
                                    proj(c.d), proj(c.d), c.causal);
        const Tensor x = randomTensor({c.b, c.t, c.d}, seed + 1);
        expectBackwardParity(attn, x, seed + 2, "MultiHeadAttention");
        seed += 3;
    }
}

TEST_F(BackwardParity, EncoderBlockBackwardParity)
{
    // Whole-block chain: LN -> FFN -> LN -> attention with residuals,
    // in the transformer (dense) and FABNet ABfly (butterfly) builds.
    for (const bool butterfly : {false, true}) {
        const std::size_t d = 16, heads = 2, ffn_d = 32;
        const unsigned seed = butterfly ? 7100 : 7000;
        Rng rng(seed);
        auto proj = [&](std::size_t in, std::size_t out)
            -> std::unique_ptr<nn::Layer> {
            if (butterfly)
                return std::make_unique<nn::ButterflyDense>(in, out, rng);
            return std::make_unique<nn::Dense>(in, out, rng);
        };
        auto mixer = std::make_unique<nn::MultiHeadAttention>(
            d, heads, proj(d, d), proj(d, d), proj(d, d), proj(d, d));
        auto ffn = std::make_unique<nn::FeedForward>(
            proj(d, ffn_d), std::make_unique<nn::Gelu>(),
            proj(ffn_d, d));
        nn::EncoderBlock block(d, std::move(mixer), std::move(ffn));
        const Tensor x = randomTensor({2, 7, d}, seed + 1);
        expectBackwardParity(block, x, seed + 2,
                             butterfly ? "EncoderBlock[butterfly]"
                                       : "EncoderBlock[dense]");
    }
}

// ---------------------------------------- embedding and pooled head

TEST_F(BackwardParity, EmbeddingBackwardParity)
{
    const std::size_t vocab = 13, max_seq = 9, d = 12;
    const std::size_t b = 3, t = 7;
    Rng rng(8000);
    nn::Embedding emb(vocab, max_seq, d, rng);
    // Repeated token ids force scatter-add collisions.
    std::vector<int> tokens(b * t);
    for (int &id : tokens)
        id = rng.randint(0, static_cast<int>(vocab) - 1);
    tokens[1] = tokens[5] = tokens[9] = tokens[0];

    runtime::setNumThreads(1);
    emb.forward(tokens, b, t);
    const Tensor probe = randomTensor({b, t, d}, 8001);

    std::vector<nn::ParamRef> params;
    emb.collectParams(params);
    nn::zeroGrads(params);
    emb.backwardReference(probe);
    const auto grads_ref = snapshotGrads(params);

    forEachThreadCount([&](std::size_t threads) {
        nn::zeroGrads(params);
        emb.backward(probe);
        EXPECT_TRUE(gradsBitwiseEqual(params, grads_ref))
            << "Embedding grads, threads=" << threads;
    });
}

TEST_F(BackwardParity, MeanPoolClassifierBackwardParity)
{
    const std::size_t d = 12, classes = 3, b = 5, t = 7;
    Rng rng(8100);
    nn::MeanPoolClassifier head(d, classes, rng);
    const Tensor x = randomTensor({b, t, d}, 8101);

    runtime::setNumThreads(1);
    head.forward(x);
    const Tensor probe = randomTensor({b, classes}, 8102);

    std::vector<nn::ParamRef> params;
    head.collectParams(params);
    nn::zeroGrads(params);
    const Tensor gx_ref = head.backwardReference(probe);
    const auto grads_ref = snapshotGrads(params);

    forEachThreadCount([&](std::size_t threads) {
        nn::zeroGrads(params);
        const Tensor gx = head.backward(probe);
        EXPECT_TRUE(bitwiseEqual(gx, gx_ref))
            << "MeanPool dL/dx, threads=" << threads;
        EXPECT_TRUE(gradsBitwiseEqual(params, grads_ref))
            << "MeanPool grads, threads=" << threads;
    });
}

// --------------------------------------------------- full train step

ModelConfig
trainCfg(ModelKind kind)
{
    ModelConfig cfg;
    cfg.kind = kind;
    cfg.vocab = 24;
    cfg.max_seq = 16;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.n_abfly = kind == ModelKind::FABNet ? 2 : 0;
    cfg.heads = 2;
    cfg.classes = 3;
    return cfg;
}

Batch
randomBatch(const ModelConfig &cfg, std::size_t bsz, std::size_t seq,
            Rng &rng)
{
    Batch b;
    b.batch = bsz;
    b.seq = seq;
    b.tokens.resize(bsz * seq);
    b.labels.resize(bsz);
    for (int &t : b.tokens)
        t = rng.randint(1, static_cast<int>(cfg.vocab) - 1);
    for (int &l : b.labels)
        l = rng.randint(0, static_cast<int>(cfg.classes) - 1);
    return b;
}

/** All parameter payloads of @p model, concatenated order-stably. */
std::vector<std::vector<float>>
paramValues(SequenceClassifier &model)
{
    std::vector<std::vector<float>> out;
    for (const auto &p : model.params())
        out.push_back(*p.value);
    return out;
}

TEST_F(BackwardParity, TrainStepMatchesReferenceAcrossThreadCounts)
{
    // Transformer (dense everything), all-ABfly FABNet (butterfly
    // attention + FFN) and hybrid FABNet (one FBfly block: Fourier
    // mixer + butterfly FFN - requires power-of-two seq/d).
    ModelConfig hybrid = trainCfg(ModelKind::FABNet);
    hybrid.n_abfly = 1;
    struct Case
    {
        ModelConfig cfg;
        std::size_t seq;
    };
    const Case cases[] = {
        {trainCfg(ModelKind::Transformer), 9},
        {trainCfg(ModelKind::FABNet), 9},
        {hybrid, 8},
    };
    for (const Case &tc : cases) {
        const ModelConfig &cfg = tc.cfg;
        constexpr std::size_t kSteps = 3;

        // Baseline: the seed serial backward, one thread.
        runtime::setNumThreads(1);
        Rng rng_ref(55);
        auto ref_model = buildModel(cfg, rng_ref);
        nn::Adam ref_opt(ref_model->params(), 1e-3f);
        Rng data_ref(77);
        std::vector<float> ref_losses;
        for (std::size_t s = 0; s < kSteps; ++s)
            ref_losses.push_back(ref_model->trainBatchReference(
                randomBatch(cfg, 4, tc.seq, data_ref), ref_opt));
        const auto ref_params = paramValues(*ref_model);

        forEachThreadCount([&](std::size_t threads) {
            Rng rng(55);
            auto model = buildModel(cfg, rng);
            nn::Adam opt(model->params(), 1e-3f);
            Rng data(77);
            for (std::size_t s = 0; s < kSteps; ++s) {
                const float loss =
                    model->trainBatch(randomBatch(cfg, 4, tc.seq, data),
                                      opt);
                EXPECT_EQ(std::memcmp(&loss, &ref_losses[s],
                                      sizeof(float)),
                          0)
                    << "loss diverged at step " << s
                    << ", threads=" << threads;
            }
            const auto params = paramValues(*model);
            ASSERT_EQ(params.size(), ref_params.size());
            for (std::size_t i = 0; i < params.size(); ++i)
                EXPECT_EQ(std::memcmp(params[i].data(),
                                      ref_params[i].data(),
                                      params[i].size() * sizeof(float)),
                          0)
                    << "param " << i << " diverged, threads=" << threads;
        });
    }
}

// ------------------------------------------------- reduce primitives

TEST_F(BackwardParity, TreeReduceIsShapeStableAndExact)
{
    // Integer payloads make the tree combine exact, so any slot-order
    // or shape dependence would show as a wrong sum.
    for (const std::size_t n : {1u, 2u, 3u, 7u, 8u, 13u}) {
        std::vector<double> p(n);
        double expect = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            p[i] = static_cast<double>(i + 1);
            expect += p[i];
        }
        EXPECT_EQ(runtime::treeReduce(p.data(), n), expect) << "n=" << n;
    }
    EXPECT_EQ(runtime::treeReduce<double>(nullptr, 0), 0.0);
}

TEST_F(BackwardParity, DeterministicSumSquaresThreadInvariant)
{
    // Long enough for several chunks; value must be identical at any
    // thread count (it feeds the training-visible clip norm).
    const Tensor x = randomTensor({3 * runtime::kReduceChunk + 137}, 91);
    runtime::setNumThreads(1);
    const double ref =
        runtime::deterministicSumSquares(x.data(), x.size());
    forEachThreadCount([&](std::size_t threads) {
        const double got =
            runtime::deterministicSumSquares(x.data(), x.size());
        EXPECT_EQ(std::memcmp(&got, &ref, sizeof(double)), 0)
            << "threads=" << threads;
    });
}

TEST_F(BackwardParity, ClipGradNormStillClipsCorrectly)
{
    // Semantics: norm 5 scaled onto the unit ball (tolerance-level,
    // the exact association is the deterministic chunked tree's).
    std::vector<float> w = {0.0f, 0.0f};
    std::vector<float> g = {3.0f, 4.0f};
    std::vector<nn::ParamRef> ps = {{&w, &g}};
    const float norm = nn::clipGradNorm(ps, 1.0f);
    EXPECT_NEAR(norm, 5.0f, 1e-5f);
    EXPECT_NEAR(g[0], 0.6f, 1e-5f);
    EXPECT_NEAR(g[1], 0.8f, 1e-5f);
}

} // namespace
} // namespace fabnet
