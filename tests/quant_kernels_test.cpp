/**
 * @file quant_kernels_test.cpp
 * Parity and cross-validation suite for the int8/fp16 runtime kernels,
 * built on the shared harness (test_util.h). Three validation axes,
 * mirroring the fp32 discipline of parallel_kernels_test.cpp:
 *
 *  1. Exactness vs the scalar references: the int8 panel accumulates
 *     in integer arithmetic, so the blocked/vectorised/parallel path
 *     must equal ops::reference::matmulInt8 *exactly*; the fp16 paths
 *     share the reference's rounding points and accumulation chain,
 *     so they too are compared bitwise. All of it across seeded odd/
 *     non-power-of-two shape sweeps and threads {1, 4, 8}.
 *  2. Accuracy vs fp32: quantisation noise is bounded (documented
 *     tolerances below), checked on the same sweeps.
 *  3. Cross-validation against the fp16 sim datapath
 *     (sim/datapath.h): the runtime fp16 butterfly rounds once per
 *     stage output where the BU model rounds every product, so the
 *     two agree within a small absolute band for unit-scale inputs.
 *
 * Plus the layer/model story: QuantizedDense against the reference
 * GEMM, and an int8 QuantizedSequenceClassifier served end-to-end
 * through ServingEngine with logits bitwise identical to serial
 * quantized inference.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "butterfly/qbutterfly.h"
#include "data/lra.h"
#include "model/builder.h"
#include "model/quantized.h"
#include "nn/dense.h"
#include "nn/quantize.h"
#include "runtime/parallel.h"
#include "serve/serving.h"
#include "sim/datapath.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using testutil::bitwiseEqual;
using testutil::forEachThreadCount;
using testutil::maxAbsDiffWithin;

using QuantKernelsTest = testutil::RuntimeFixture;

/** Relative-plus-absolute tolerance helper. */
float
relTol(const Tensor &ref, float rel, float abs_floor)
{
    return rel * ops::maxAbs(ref) + abs_floor;
}

// ------------------------------------------------------------- GEMM

TEST_F(QuantKernelsTest, Int8GemmPanelMatchesReferenceExactly)
{
    Rng rng(23);
    for (const auto &s : testutil::gemmShapeSweep(211)) {
        Tensor a = rng.normalTensor({s.m, s.k});
        Tensor b = rng.normalTensor({s.k, s.n});
        const Tensor want = ops::reference::matmulInt8(a, b);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(bitwiseEqual(ops::matmulInt8(a, b), want))
                << "int8 gemm " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
        });
    }
}

TEST_F(QuantKernelsTest, F16GemmPanelMatchesReferenceBitwise)
{
    Rng rng(29);
    for (const auto &s : testutil::gemmShapeSweep(223)) {
        Tensor a = rng.normalTensor({s.m, s.k});
        Tensor b = rng.normalTensor({s.k, s.n});
        const Tensor want = ops::reference::matmulF16(a, b);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(bitwiseEqual(ops::matmulF16(a, b), want))
                << "f16 gemm " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
        });
    }
}

TEST_F(QuantKernelsTest, QuantGemmTracksFp32)
{
    Rng rng(31);
    for (const auto &s : testutil::gemmShapeSweep(227, 2)) {
        Tensor a = rng.normalTensor({s.m, s.k});
        Tensor b = rng.normalTensor({s.k, s.n});
        const Tensor want = ops::matmul(a, b);
        // int8: ~1/254 relative noise per operand, accumulated over k
        // with cancellation - 5% of the result magnitude is a safe
        // band on normal data at these k.
        EXPECT_TRUE(maxAbsDiffWithin(ops::matmulInt8(a, b), want,
                                     relTol(want, 0.05f, 5e-3f)))
            << "int8 vs fp32 " << s.m << "x" << s.k << "x" << s.n;
        // fp16: 2^-11 relative per operand.
        EXPECT_TRUE(maxAbsDiffWithin(ops::matmulF16(a, b), want,
                                     relTol(want, 0.02f, 5e-3f)))
            << "f16 vs fp32 " << s.m << "x" << s.k << "x" << s.n;
    }
}

// -------------------------------------------------------- butterfly

TEST_F(QuantKernelsTest, QuantButterflyBatchMatchesReferenceExactly)
{
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Fp16}) {
        for (std::size_t n : {4u, 32u, 128u}) {
            ButterflyMatrix m(n);
            Rng rng(n);
            m.initRandomRotation(rng);
            QuantizedButterflyMatrix qm(m, kind);
            for (std::size_t rows : testutil::rowSweep(n + 1)) {
                Tensor x = rng.normalTensor({rows, n});
                const Tensor want = qm.applyBatchReference(x);
                forEachThreadCount([&](std::size_t threads) {
                    EXPECT_TRUE(bitwiseEqual(qm.applyBatch(x), want))
                        << quantKindName(kind) << " n=" << n
                        << " rows=" << rows << " threads=" << threads;
                });
            }
        }
    }
}

TEST_F(QuantKernelsTest, QuantButterflySingleVectorMatchesReference)
{
    // The workspace-based apply must agree with the heap-based scalar
    // reference exactly, for both precisions.
    const std::size_t n = 64;
    ButterflyMatrix m(n);
    Rng rng(17);
    m.initRandomRotation(rng);
    Tensor x = rng.normalTensor({5, n});
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Fp16}) {
        QuantizedButterflyMatrix qm(m, kind);
        std::vector<float> got(n), want(n);
        for (std::size_t r = 0; r < 5; ++r) {
            qm.apply(x.data() + r * n, got.data());
            qm.applyReference(x.data() + r * n, want.data());
            EXPECT_EQ(got, want)
                << quantKindName(kind) << " row " << r;
        }
    }
}

TEST_F(QuantKernelsTest, QuantButterflyTracksFp32)
{
    for (std::size_t n : {32u, 128u}) {
        ButterflyMatrix m(n);
        Rng rng(n + 3);
        m.initRandomRotation(rng);
        Tensor x = rng.normalTensor({9, n});
        const Tensor want = m.applyBatch(x);
        QuantizedButterflyMatrix qi(m, QuantKind::Int8);
        QuantizedButterflyMatrix qh(m, QuantKind::Fp16);
        // Per-stage dynamic requantisation holds the int8 error to
        // ~1/127 of the running row magnitude per stage.
        EXPECT_TRUE(maxAbsDiffWithin(qi.applyBatch(x), want,
                                     relTol(want, 0.06f, 1e-2f)))
            << "int8 n=" << n;
        EXPECT_TRUE(maxAbsDiffWithin(qh.applyBatch(x), want,
                                     relTol(want, 0.02f, 1e-2f)))
            << "fp16 n=" << n;
    }
}

TEST_F(QuantKernelsTest, F16ButterflyCrossValidatesSimDatapath)
{
    // The runtime fp16 butterfly and the functional BU datapath
    // (sim/datapath.h) are two implementations of the same 16-bit
    // arithmetic; they differ only in where fp16 rounding happens
    // (per stage output vs per product). For unit-scale rotation
    // weights the gap is a few fp16 ulps per stage.
    const std::size_t n = 64, rows = 9;
    ButterflyMatrix m(n);
    Rng rng(41);
    m.initRandomRotation(rng);
    Tensor x = rng.normalTensor({rows, n});

    QuantizedButterflyMatrix qh(m, QuantKind::Fp16);
    sim::FunctionalButterflyEngine engine(4);
    const Tensor hw = engine.runButterflyLinearBatch(m, x);
    forEachThreadCount([&](std::size_t threads) {
        EXPECT_TRUE(maxAbsDiffWithin(qh.applyBatch(x), hw, 0.05f))
            << "threads=" << threads;
    });
    // And both stay within half precision of the fp32 kernel.
    EXPECT_TRUE(maxAbsDiffWithin(qh.applyBatch(x), m.applyBatch(x),
                                 0.15f));
}

TEST_F(QuantKernelsTest, QuantButterflyLinearParity)
{
    Rng rng(47);
    // (in, out) covering pad, truncate and multi-core expand paths.
    const std::size_t shapes[][2] = {{24, 24}, {32, 96}, {48, 17}};
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Fp16}) {
        for (const auto &s : shapes) {
            ButterflyLinear lin(s[0], s[1]);
            lin.initRandomRotation(rng);
            for (float &b : lin.bias())
                b = rng.normal();
            QuantizedButterflyLinear qlin(lin, kind);
            for (std::size_t rows : {1u, 7u, 33u}) {
                Tensor x = rng.normalTensor({rows, s[0]});
                const Tensor want = qlin.applyBatchReference(x);
                forEachThreadCount([&](std::size_t threads) {
                    EXPECT_TRUE(bitwiseEqual(qlin.applyBatch(x), want))
                        << quantKindName(kind) << " in=" << s[0]
                        << " out=" << s[1] << " rows=" << rows
                        << " threads=" << threads;
                });
                // Quantisation noise vs the fp32 layer stays bounded.
                const Tensor fp32 = lin.applyBatch(x);
                EXPECT_TRUE(maxAbsDiffWithin(
                    qlin.applyBatch(x), fp32,
                    relTol(fp32, kind == QuantKind::Int8 ? 0.06f
                                                         : 0.02f,
                           1e-2f)))
                    << quantKindName(kind) << " vs fp32 in=" << s[0]
                    << " out=" << s[1];
            }
        }
    }
}

// ------------------------------------------------------------ layers

TEST_F(QuantKernelsTest, QuantizedDenseInt8MatchesReferenceGemm)
{
    Rng rng(53);
    nn::Dense dense(48, 35, rng);
    for (float &b : dense.bias())
        b = rng.normal();
    nn::QuantizedDense qd(dense, QuantKind::Int8);

    Rng data_rng(54);
    Tensor x = data_rng.normalTensor({3, 7, 48});
    // Independent scalar derivation of the layer contract through the
    // same pinned runtime helpers: W quantised per output feature, x
    // per row, exact int32 dot, dequantInt8 with the fp32 bias folded
    // into the pinned madd.
    const std::size_t in = 48, out = 35, rows = 21;
    const Tensor x2 = x.reshaped({rows, in});
    Tensor want = Tensor::zeros(rows, out);
    std::vector<std::int8_t> qx(in), qw(in);
    for (std::size_t r = 0; r < rows; ++r) {
        const float *xr = x2.data() + r * in;
        const float sa =
            runtime::int8Scale(runtime::maxAbsRow(xr, in));
        runtime::quantizeInt8Row(xr, qx.data(), in, sa);
        for (std::size_t o = 0; o < out; ++o) {
            const float *wr = dense.weight().data() + o * in;
            const float sw =
                runtime::int8Scale(runtime::maxAbsRow(wr, in));
            runtime::quantizeInt8Row(wr, qw.data(), in, sw);
            std::int32_t acc = 0;
            for (std::size_t i = 0; i < in; ++i)
                acc += static_cast<std::int32_t>(qx[i]) *
                       static_cast<std::int32_t>(qw[i]);
            want.at(r, o) = runtime::dequantInt8(acc, sa, sw,
                                                 dense.bias()[o]);
        }
    }

    forEachThreadCount([&](std::size_t threads) {
        const Tensor got = qd.forward(x).reshaped({rows, out});
        EXPECT_TRUE(bitwiseEqual(got, want)) << "threads=" << threads;
    });
}

TEST_F(QuantKernelsTest, QuantizedDenseF16MatchesScalarChain)
{
    Rng rng(59);
    const std::size_t in = 24, out = 37;
    nn::Dense dense(in, out, rng);
    for (float &b : dense.bias())
        b = rng.normal();
    nn::QuantizedDense qd(dense, QuantKind::Fp16);

    Rng data_rng(60);
    Tensor x = data_rng.normalTensor({11, in});
    // Scalar ground truth with the documented rounding points: fp16
    // operands, fp32 k-increasing accumulation from the fp16 bias,
    // fp16-rounded output.
    Tensor want = Tensor::zeros(11, out);
    for (std::size_t r = 0; r < 11; ++r) {
        for (std::size_t o = 0; o < out; ++o) {
            float acc = roundToHalf(dense.bias()[o]);
            for (std::size_t i = 0; i < in; ++i)
                acc = runtime::madd(roundToHalf(x.at(r, i)),
                                    roundToHalf(dense.weight()[o * in + i]),
                                    acc);
            want.at(r, o) = roundToHalf(acc);
        }
    }
    forEachThreadCount([&](std::size_t threads) {
        EXPECT_TRUE(bitwiseEqual(qd.forward(x), want))
            << "threads=" << threads;
    });
}

TEST_F(QuantKernelsTest, QuantizedLayersAreInferenceOnly)
{
    Rng rng(61);
    nn::Dense dense(8, 8, rng);
    nn::QuantizedDense qd(dense, QuantKind::Int8);
    Tensor x = rng.normalTensor({2, 8});
    qd.forward(x);
    EXPECT_THROW(qd.backward(x), std::logic_error);

    nn::ButterflyDense bfd(8, 8, rng);
    nn::QuantizedButterflyDense qbd(bfd, QuantKind::Fp16);
    qbd.forward(x);
    EXPECT_THROW(qbd.backward(x), std::logic_error);
}

// ------------------------------------------------------------- model

ModelConfig
tinyCfg(ModelKind kind)
{
    ModelConfig cfg;
    cfg.kind = kind;
    cfg.vocab = 32;
    cfg.max_seq = 64;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.n_abfly = kind == ModelKind::FABNet ? 2 : 0;
    cfg.heads = 2;
    cfg.classes = 4;
    return cfg;
}

TEST_F(QuantKernelsTest, QuantizedModelLogitsTrackFp32)
{
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Fp16}) {
        const ModelConfig cfg = tinyCfg(ModelKind::Transformer);
        Rng rng_fp32(77), rng_q(77);
        auto fp32 = buildModel(cfg, rng_fp32);
        QuantizedSequenceClassifier q(buildModel(cfg, rng_q), kind);
        // 2 blocks x (4 attention projections + 2 FFN linears).
        EXPECT_EQ(q.quantizedLayerCount(), 12u);
        EXPECT_TRUE(q.supportsMaskedBatch());

        std::vector<int> tokens(24, 7);
        const Tensor before = fp32->forward(tokens, 1, 24);
        const Tensor after = q.forward(tokens, 1, 24);
        EXPECT_TRUE(maxAbsDiffWithin(
            after, before,
            relTol(before, kind == QuantKind::Int8 ? 0.10f : 0.03f,
                   2e-2f)))
            << quantKindName(kind);
    }
}

TEST_F(QuantKernelsTest, QuantizedModelServesEndToEndBitwise)
{
    // The ROADMAP's "quantized serving" milestone: an int8 model
    // behind the unchanged serving front end, with every served
    // logits row bitwise identical to serial quantized inference at
    // any thread count - the same guarantee fp32 serving gives.
    for (ModelKind mk : {ModelKind::Transformer, ModelKind::FABNet}) {
        const ModelConfig cfg = tinyCfg(mk);
        Rng rng(123);
        QuantizedSequenceClassifier q(buildModel(cfg, rng),
                                      QuantKind::Int8);
        const auto reqs =
            testutil::makeRequests(testutil::mixedLens(), cfg.vocab, 7);
        const auto want = testutil::serveSerial(q.model(), reqs);

        forEachThreadCount([&](std::size_t threads) {
            serve::ServingConfig sc;
            sc.max_batch = 8;
            sc.bucket_granularity = 16;
            sc.max_wait = std::chrono::seconds(5);
            serve::ServingEngine engine(q.model(), sc);
            const auto got = engine.serveAll(reqs);
            EXPECT_TRUE(bitwiseEqual(got, want))
                << "kind=" << static_cast<int>(mk)
                << " threads=" << threads;
            const auto st = engine.stats();
            EXPECT_EQ(st.completed, reqs.size());
            EXPECT_LT(st.batches, reqs.size()); // actually batched
        });
    }
}

TEST_F(QuantKernelsTest, QuantizedModelKeepsTrainedAccuracy)
{
    // Int8 counterpart of Quantize.TrainedAccuracyPreservedInFp16
    // (throughput_quantize_test.cpp): dynamic-activation int8 keeps a
    // trained model's accuracy on the synthetic LRA Text task.
    Rng rng(11);
    auto gen = data::makeLraGenerator("Text", 32);
    auto train = gen->dataset(96, rng);
    auto test = gen->dataset(64, rng);

    ModelConfig cfg = tinyCfg(ModelKind::Transformer);
    cfg.vocab = 256;
    cfg.classes = 2;
    cfg.max_seq = 32;
    auto model = buildModel(cfg, rng);
    const double acc_fp32 =
        trainClassifier(*model, train, test, 32, 3, 16, 2e-3f, rng);

    QuantizedSequenceClassifier q(std::move(model), QuantKind::Int8);
    const double acc_int8 = q.evaluate(test, 32);
    EXPECT_NEAR(acc_int8, acc_fp32, 0.08);
}

} // namespace
} // namespace fabnet
