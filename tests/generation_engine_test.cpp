/**
 * @file generation_engine_test.cpp
 * The continuous-batching generation engine's contract
 * (serve/generation.h): futures and streaming callbacks deliver the
 * same greedy tokens a solo full-recompute run produces, regardless of
 * admission interleaving; deadlines are enforced at per-token
 * granularity (at submit, in queue, and between decode steps); bounded
 * admission rejects/sheds; a fault poisons only its own sequence (K/V
 * rollback isolation); the watchdog cancels a stuck step; shutdown
 * drains gracefully and strands nothing at a deadline.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "model/generator.h"
#include "serve/generation.h"
#include "test_util.h"

namespace fabnet {
namespace {

using serve::Deadline;
using serve::deadlineAfter;
using serve::Error;
using serve::ErrorCode;
using serve::FaultPlan;
using serve::GenerationConfig;
using serve::GenerationEngine;
using serve::GenerationStats;
using serve::kNoDeadline;
using serve::ShedPolicy;
using testutil::forEachThreadCount;

ModelConfig
genCfg()
{
    ModelConfig cfg;
    cfg.kind = ModelKind::FABNet;
    cfg.vocab = 32;
    cfg.max_seq = 32;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.n_abfly = 2;
    cfg.heads = 2;
    cfg.classes = 2;
    cfg.causal = true;
    return cfg;
}

/** Greedy reference: tokens a solo full-recompute loop generates. */
std::vector<int>
referenceGreedy(CausalGenerator &gen, std::vector<int> seq,
                std::size_t max_new, int eos = -1)
{
    std::vector<int> out;
    while (out.size() < max_new && seq.size() <= gen.maxSeq()) {
        const int tok = nn::argmaxRows(gen.forwardFull({seq}))[0];
        out.push_back(tok);
        if (eos >= 0 && tok == eos)
            break;
        if (seq.size() == gen.maxSeq())
            break;
        seq.push_back(tok);
    }
    return out;
}

using GenerationEngineTest = testutil::RuntimeFixture;

TEST_F(GenerationEngineTest, FuturesMatchFullRecomputeReference)
{
    Rng rng(41);
    auto gen = buildGenerator(genCfg(), rng);
    const auto prompts =
        testutil::makeRequests({5, 1, 12, 7, 3}, gen->vocab(), 51);
    const std::size_t kMaxNew = 6;

    std::vector<std::vector<int>> want;
    for (const auto &p : prompts)
        want.push_back(referenceGreedy(*gen, p, kMaxNew));

    forEachThreadCount([&](std::size_t threads) {
        GenerationConfig cfg;
        cfg.max_live = 3; // force queuing + step-boundary admission
        GenerationEngine eng(*gen, cfg);
        std::vector<std::future<std::vector<int>>> futs;
        for (const auto &p : prompts)
            futs.push_back(eng.submit(p, kMaxNew));
        for (std::size_t i = 0; i < futs.size(); ++i)
            EXPECT_EQ(futs[i].get(), want[i])
                << "request " << i << " threads=" << threads;
        const GenerationStats st = eng.stats();
        EXPECT_EQ(st.requests, prompts.size());
        EXPECT_EQ(st.completed, prompts.size());
        EXPECT_EQ(st.failed, 0u);
        EXPECT_EQ(st.decode_tokens, prompts.size() * kMaxNew);
        EXPECT_LE(st.peak_live, cfg.max_live);
        EXPECT_GT(st.steps, 0u);
    });
}

TEST_F(GenerationEngineTest, CallbackStreamsTokensBeforeFuture)
{
    Rng rng(42);
    auto gen = buildGenerator(genCfg(), rng);
    const auto prompts = testutil::makeRequests({4}, gen->vocab(), 52);
    const std::vector<int> want = referenceGreedy(*gen, prompts[0], 5);

    GenerationEngine eng(*gen);
    std::vector<int> streamed;
    auto fut = eng.submit(prompts[0], 5, kNoDeadline,
                          [&](int tok) { streamed.push_back(tok); });
    const std::vector<int> got = fut.get();
    EXPECT_EQ(got, want);
    // The callback ran on the scheduler thread strictly before the
    // future resolved, so no synchronisation is needed to read it now.
    EXPECT_EQ(streamed, want);
}

TEST_F(GenerationEngineTest, EosStopsEarlyAndIsIncluded)
{
    Rng rng(43);
    auto gen = buildGenerator(genCfg(), rng);
    const auto prompts = testutil::makeRequests({6}, gen->vocab(), 53);
    // Pick the first greedily generated token as the EOS id: the run
    // must stop right there with exactly that one token.
    const std::vector<int> ref = referenceGreedy(*gen, prompts[0], 1);
    GenerationConfig cfg;
    cfg.eos_token = ref[0];
    GenerationEngine eng(*gen, cfg);
    EXPECT_EQ(eng.submit(prompts[0], 100).get(), ref);
}

TEST_F(GenerationEngineTest, SubmitValidatesUpFront)
{
    Rng rng(44);
    auto gen = buildGenerator(genCfg(), rng);
    GenerationEngine eng(*gen);
    EXPECT_THROW((void)eng.submit({}, 4), Error);
    EXPECT_THROW(
        (void)eng.submit(std::vector<int>(gen->maxSeq() + 1, 1), 4),
        Error);
    EXPECT_THROW((void)eng.submit({1, 2}, 0), Error);
    // Expired-at-submit deadline throws synchronously and is counted.
    try {
        (void)eng.submit({1, 2}, 4,
                         deadlineAfter(std::chrono::microseconds(-1)));
        FAIL() << "expected DeadlineExceeded";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
    }
    const GenerationStats st = eng.stats();
    EXPECT_EQ(st.requests, 0u);
    EXPECT_EQ(st.expired_in_queue, 1u);
}

TEST_F(GenerationEngineTest, PromptAtPositionalCapacityRejectedAtSubmit)
{
    // A prompt that already fills every position (== max_seq) leaves no
    // slot for a generated token. It must fail typed [InvalidRequest]
    // synchronously at submit - not get admitted and then surface as a
    // [ModelFault] when prefill runs off the positional table.
    Rng rng(47);
    auto gen = buildGenerator(genCfg(), rng);
    GenerationEngine eng(*gen);
    for (const std::size_t len : {gen->maxSeq(), gen->maxSeq() + 1}) {
        try {
            (void)eng.submit(std::vector<int>(len, 1), 4);
            FAIL() << "expected InvalidRequest for prompt length " << len;
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::InvalidRequest)
                << "prompt length " << len;
        }
    }
    // The longest admissible prompt (max_seq - 1) still works end to
    // end and can generate at least one token.
    const std::vector<int> prompt(gen->maxSeq() - 1, 1);
    const std::vector<int> ref = referenceGreedy(*gen, prompt, 4);
    EXPECT_EQ(eng.submit(prompt, 4).get(), ref);
    const GenerationStats st = eng.stats();
    EXPECT_EQ(st.requests, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.model_faults, 0u);
}

TEST_F(GenerationEngineTest, BoundedAdmissionRejectsAndSheds)
{
    Rng rng(45);
    auto gen = buildGenerator(genCfg(), rng);
    // Stall batch 0 (the first prefill) so the queue backs up
    // deterministically behind it; the watchdog unsticks it later.
    FaultPlan plan;
    plan.batch_stalls.insert(0);
    GenerationConfig cfg;
    cfg.max_live = 1;
    cfg.max_queue_requests = 2;
    cfg.watchdog_timeout = std::chrono::milliseconds(300);
    cfg.fault_plan = &plan;
    GenerationEngine eng(*gen, cfg);

    auto f0 = eng.submit({1, 2, 3}, 2); // admitted, stalls in prefill
    // Wait until the scheduler actually claimed it (queue empty).
    for (int i = 0; i < 2000 && eng.stats().prefill_batches == 0; ++i)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    auto f1 = eng.submit({4, 5}, 2);
    auto f2 = eng.submit({6}, 2);
    EXPECT_THROW((void)eng.submit({7}, 2), Error); // queue full
    EXPECT_EQ(eng.stats().rejected, 1u);

    // The stalled prefill is watchdog-cancelled and fails; the queued
    // requests then decode normally.
    EXPECT_THROW((void)f0.get(), Error);
    EXPECT_EQ(f1.get().size(), 2u);
    EXPECT_EQ(f2.get().size(), 2u);
    const GenerationStats st = eng.stats();
    EXPECT_EQ(st.watchdog_fired, 1u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.failed, 1u);
}

TEST_F(GenerationEngineTest, DropExpiredFirstShedsQueuedExpired)
{
    Rng rng(46);
    auto gen = buildGenerator(genCfg(), rng);
    FaultPlan plan;
    plan.batch_stalls.insert(0);
    GenerationConfig cfg;
    cfg.max_live = 1;
    cfg.max_queue_requests = 1;
    cfg.shed_policy = ShedPolicy::DropExpiredFirst;
    cfg.watchdog_timeout = std::chrono::milliseconds(300);
    cfg.fault_plan = &plan;
    GenerationEngine eng(*gen, cfg);

    auto f0 = eng.submit({1, 2}, 2); // stalls in prefill
    for (int i = 0; i < 2000 && eng.stats().prefill_batches == 0; ++i)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    // Queued with an already-tight deadline...
    auto f1 = eng.submit({3, 4}, 2,
                         deadlineAfter(std::chrono::milliseconds(1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // ...so the next submit sheds it instead of rejecting.
    auto f2 = eng.submit({5, 6}, 2);
    EXPECT_THROW((void)f1.get(), Error);
    EXPECT_EQ(f2.get().size(), 2u);
    const GenerationStats st = eng.stats();
    EXPECT_EQ(st.shed, 1u);
    EXPECT_EQ(st.rejected, 0u);
}

TEST_F(GenerationEngineTest, DeadlineEvictsMidDecode)
{
    Rng rng(47);
    auto gen = buildGenerator(genCfg(), rng);
    // Delay decode step 2 (invocation index 1 is step 1: invocation 0
    // is the prefill) past the request's deadline: the sequence must
    // be evicted at the NEXT step boundary, not run to completion.
    FaultPlan plan;
    plan.batch_delays[1] = std::chrono::milliseconds(400);
    GenerationConfig cfg;
    cfg.fault_plan = &plan;
    GenerationEngine eng(*gen, cfg);
    auto fut = eng.submit({1, 2, 3}, 20,
                          deadlineAfter(std::chrono::milliseconds(150)));
    try {
        (void)fut.get();
        FAIL() << "expected DeadlineExceeded";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::DeadlineExceeded);
    }
    const GenerationStats st = eng.stats();
    EXPECT_EQ(st.expired_mid_decode, 1u);
    EXPECT_LT(st.decode_tokens, 20u);
}

TEST_F(GenerationEngineTest, FaultPoisonsOnlyItsOwnSequence)
{
    Rng rng(48);
    auto gen = buildGenerator(genCfg(), rng);
    const auto prompts =
        testutil::makeRequests({5, 7, 3}, gen->vocab(), 58);
    const std::size_t kMaxNew = 4;
    std::vector<std::vector<int>> want;
    for (const auto &p : prompts)
        want.push_back(referenceGreedy(*gen, p, kMaxNew));

    // Request #1 carries a sticky Model fault: the joint prefill
    // throws, the per-sequence isolation retry fails #1 alone, and
    // the survivors' K/V state (rolled back and re-prefilled) must
    // still produce the reference bits.
    FaultPlan plan;
    plan.request_faults[1] = FaultPlan::Stage::Model;
    GenerationConfig cfg;
    cfg.max_live = 3;
    cfg.fault_plan = &plan;
    GenerationEngine eng(*gen, cfg);
    std::vector<std::future<std::vector<int>>> futs;
    for (const auto &p : prompts)
        futs.push_back(eng.submit(p, kMaxNew));
    EXPECT_EQ(futs[0].get(), want[0]);
    try {
        (void)futs[1].get();
        FAIL() << "expected ModelFault";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::ModelFault);
    }
    EXPECT_EQ(futs[2].get(), want[2]);
    const GenerationStats st = eng.stats();
    EXPECT_EQ(st.model_faults, 1u);
    EXPECT_GE(st.isolation_retries, 1u);
    EXPECT_EQ(st.completed, 2u);
}

TEST_F(GenerationEngineTest, ThrowingCallbackFailsOnlyItsRequest)
{
    Rng rng(49);
    auto gen = buildGenerator(genCfg(), rng);
    const auto prompts = testutil::makeRequests({4, 6}, gen->vocab(), 59);
    const std::vector<int> want1 = referenceGreedy(*gen, prompts[1], 3);
    GenerationEngine eng(*gen);
    auto f0 = eng.submit(prompts[0], 3, kNoDeadline,
                         [](int) { throw std::runtime_error("boom"); });
    auto f1 = eng.submit(prompts[1], 3);
    try {
        (void)f0.get();
        FAIL() << "expected InvalidRequest";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidRequest);
    }
    EXPECT_EQ(f1.get(), want1);
}

TEST_F(GenerationEngineTest, FlushWaitsForPriorSubmissionsOnly)
{
    Rng rng(50);
    auto gen = buildGenerator(genCfg(), rng);
    GenerationEngine eng(*gen);
    auto f0 = eng.submit({1, 2, 3}, 3);
    auto f1 = eng.submit({4, 5}, 3);
    eng.flush();
    // Both resolved: get() must not block.
    EXPECT_EQ(f0.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
}

TEST_F(GenerationEngineTest, ShutdownDeadlineStrandsNothing)
{
    Rng rng(51);
    auto gen = buildGenerator(genCfg(), rng);
    FaultPlan plan;
    plan.batch_stalls.insert(0); // first prefill sticks forever
    GenerationConfig cfg;
    cfg.max_live = 1;
    cfg.fault_plan = &plan; // no watchdog: shutdown must cancel it
    GenerationEngine eng(*gen, cfg);
    auto f0 = eng.submit({1, 2}, 4);
    for (int i = 0; i < 2000 && eng.stats().prefill_batches == 0; ++i)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    auto f1 = eng.submit({3, 4}, 4); // still queued at the deadline
    eng.shutdown(deadlineAfter(std::chrono::milliseconds(50)));
    // Every future resolved: the stalled one cancelled, the queued one
    // failed with ShuttingDown.
    for (auto *f : {&f0, &f1}) {
        ASSERT_EQ(f->wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        try {
            (void)f->get();
            FAIL() << "expected ShuttingDown";
        } catch (const Error &e) {
            EXPECT_EQ(e.code(), ErrorCode::ShuttingDown);
        }
    }
    // Submitting after shutdown is refused.
    EXPECT_THROW((void)eng.submit({1}, 1), Error);
}

TEST_F(GenerationEngineTest, DestructorDrainsGracefully)
{
    Rng rng(52);
    auto gen = buildGenerator(genCfg(), rng);
    const auto prompts = testutil::makeRequests({5, 3}, gen->vocab(), 60);
    std::vector<std::future<std::vector<int>>> futs;
    {
        GenerationEngine eng(*gen);
        for (const auto &p : prompts)
            futs.push_back(eng.submit(p, 3));
        // Engine destroyed with work possibly in flight.
    }
    for (auto &f : futs)
        EXPECT_EQ(f.get().size(), 3u);
}

TEST_F(GenerationEngineTest, ConcurrentSubmittersStayConsistent)
{
    Rng rng(53);
    auto gen = buildGenerator(genCfg(), rng);
    runtime::setNumThreads(4);
    GenerationConfig cfg;
    cfg.max_live = 4;
    GenerationEngine eng(*gen, cfg);
    constexpr int kThreads = 4, kPer = 6;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPer; ++i) {
                std::vector<int> prompt(1 + (t * kPer + i) % 9,
                                        1 + (t + i) % 30);
                auto f = eng.submit(prompt, 2);
                if (f.get().size() == 2u)
                    ++ok;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(ok.load(), kThreads * kPer);
    const GenerationStats st = eng.stats();
    EXPECT_EQ(st.completed, static_cast<std::size_t>(kThreads * kPer));
    EXPECT_EQ(st.decode_tokens,
              static_cast<std::size_t>(kThreads * kPer * 2));
}

} // namespace
} // namespace fabnet
