/**
 * @file batcher_property_test.cpp
 * RequestBatcher edge cases and randomized properties not covered by
 * serving_test.cpp's policy tests: degenerate max_batch, draining
 * empty queues, requests longer than the largest bucket, the
 * timeout-vs-full flush race, and a seeded random push/pop sweep that
 * checks the structural invariants (every id pops exactly once, FIFO
 * within a bucket, group sizes bounded, size() accounting).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <vector>

#include "serve/batcher.h"
#include "tensor/rng.h"

namespace fabnet {
namespace {

using serve::BatchGroup;
using serve::FlushReason;
using serve::RequestBatcher;
using Clock = RequestBatcher::Clock;

TEST(BatcherProperty, MaxBatchOneFlushesEveryPushAsItsOwnGroup)
{
    RequestBatcher b(1, 16, 64);
    const auto t0 = Clock::now();
    for (std::uint64_t id = 0; id < 5; ++id)
        b.push(id, 10 + id, t0);
    // Every pop is a full flush of exactly one request, FIFO.
    for (std::uint64_t id = 0; id < 5; ++id) {
        auto g = b.popReady(t0, std::chrono::seconds(1));
        ASSERT_TRUE(g.has_value()) << "pop " << id;
        EXPECT_EQ(g->reason, FlushReason::Full);
        EXPECT_EQ(g->ids, (std::vector<std::uint64_t>{id}));
    }
    EXPECT_TRUE(b.empty());
}

TEST(BatcherProperty, RemoveIfEvictsAcrossBucketsPreservingSurvivors)
{
    RequestBatcher b(8, 16, 64);
    const auto t0 = Clock::now();
    // Two buckets: len 10 -> bucket 16 (ids 0..5), len 20 -> bucket 32
    // (ids 6..9), pushed in FIFO order within each.
    for (std::uint64_t id = 0; id < 6; ++id)
        b.push(id, 10, t0 + std::chrono::microseconds(id));
    for (std::uint64_t id = 6; id < 10; ++id)
        b.push(id, 20, t0 + std::chrono::microseconds(id));

    // A predicate matching nothing is a no-op.
    EXPECT_TRUE(b.removeIf([](std::uint64_t) { return false; }).empty());
    EXPECT_EQ(b.size(), 10u);

    // Evict the even ids: removed ids come back in ascending
    // padded-length, FIFO order; survivors keep their order.
    const auto removed =
        b.removeIf([](std::uint64_t id) { return id % 2 == 0; });
    EXPECT_EQ(removed, (std::vector<std::uint64_t>{0, 2, 4, 6, 8}));
    EXPECT_EQ(b.size(), 5u);

    // Smallest padded length drains first; FIFO within the bucket.
    auto g1 = b.drain();
    ASSERT_TRUE(g1.has_value());
    EXPECT_EQ(g1->padded_len, 16u);
    EXPECT_EQ(g1->ids, (std::vector<std::uint64_t>{1, 3, 5}));
    auto g2 = b.drain();
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->padded_len, 32u);
    EXPECT_EQ(g2->ids, (std::vector<std::uint64_t>{7, 9}));
    EXPECT_TRUE(b.empty());

    // Evicting an entire bucket leaves the structure consistent
    // (oldestEnqueue reflects only survivors).
    b.push(20, 10, t0 + std::chrono::microseconds(1));
    b.push(21, 20, t0 + std::chrono::microseconds(2));
    (void)b.removeIf([](std::uint64_t id) { return id == 20; });
    ASSERT_TRUE(b.oldestEnqueue().has_value());
    EXPECT_EQ(*b.oldestEnqueue(), t0 + std::chrono::microseconds(2));
    EXPECT_EQ(b.size(), 1u);
}

TEST(BatcherProperty, DrainOnEmptyQueueIsANoOp)
{
    RequestBatcher b(4, 16, 64);
    EXPECT_FALSE(b.drain().has_value());
    EXPECT_FALSE(b.drainBelow(1000).has_value());
    EXPECT_FALSE(b.popReady(Clock::now(), std::chrono::microseconds(0))
                     .has_value());
    EXPECT_FALSE(b.oldestEnqueue().has_value());
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.size(), 0u);

    // Drain-to-empty then drain again: still a no-op.
    b.push(1, 8, Clock::now());
    ASSERT_TRUE(b.drain().has_value());
    EXPECT_FALSE(b.drain().has_value());
}

TEST(BatcherProperty, RequestLongerThanLargestBucket)
{
    // The largest bucket is max_seq itself. Anything longer is
    // rejected up front - it could never be served - while lengths
    // between the last granularity multiple and max_seq clamp into
    // the max_seq bucket.
    RequestBatcher b(4, 48, 64); // buckets: 48, 64 (clamped)
    EXPECT_EQ(b.bucketLen(48), 48u);
    EXPECT_EQ(b.bucketLen(49), 64u); // would round to 96 -> clamped
    EXPECT_EQ(b.bucketLen(64), 64u);
    EXPECT_THROW(b.bucketLen(65), std::invalid_argument);
    EXPECT_THROW(b.push(1, 65, Clock::now()), std::invalid_argument);
    EXPECT_THROW(b.bucketLen(0), std::invalid_argument);

    // Granularity larger than max_seq: exactly one bucket exists and
    // every valid length lands in it.
    RequestBatcher c(4, 100, 64);
    EXPECT_EQ(c.bucketLen(1), 64u);
    EXPECT_EQ(c.bucketLen(64), 64u);
    const auto t0 = Clock::now();
    c.push(7, 3, t0);
    c.push(8, 64, t0);
    auto g = c.popReady(t0 + std::chrono::seconds(2),
                        std::chrono::seconds(1));
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->padded_len, 64u);
    EXPECT_EQ(g->ids, (std::vector<std::uint64_t>{7, 8}));
}

TEST(BatcherProperty, FullFlushWinsTheRaceAgainstTimeout)
{
    // Bucket 16 holds one long-overdue request; bucket 32 just went
    // full. popReady must hand out the full bucket first (capacity
    // wins the race), then the timed-out one.
    RequestBatcher b(2, 16, 64);
    const auto t0 = Clock::now();
    b.push(1, 10, t0); // bucket 16, will time out
    b.push(2, 20, t0 + std::chrono::milliseconds(50));
    b.push(3, 20, t0 + std::chrono::milliseconds(50)); // fills 32
    const auto now = t0 + std::chrono::seconds(10);

    auto g1 = b.popReady(now, std::chrono::milliseconds(1));
    ASSERT_TRUE(g1.has_value());
    EXPECT_EQ(g1->reason, FlushReason::Full);
    EXPECT_EQ(g1->padded_len, 32u);

    auto g2 = b.popReady(now, std::chrono::milliseconds(1));
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->reason, FlushReason::Timeout);
    EXPECT_EQ(g2->ids, (std::vector<std::uint64_t>{1}));
}

TEST(BatcherProperty, FullAndTimedOutBucketReportsFull)
{
    // A bucket can be both full and past max_wait; the flush reason
    // must say Full (the stats distinguish capacity from latency
    // flushes, and capacity is what actually triggered service).
    RequestBatcher b(2, 16, 64);
    const auto t0 = Clock::now();
    b.push(1, 10, t0);
    b.push(2, 12, t0);
    auto g = b.popReady(t0 + std::chrono::seconds(10),
                        std::chrono::milliseconds(1));
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->reason, FlushReason::Full);
    EXPECT_EQ(g->ids, (std::vector<std::uint64_t>{1, 2}));
}

TEST(BatcherProperty, RandomizedPushPopInvariants)
{
    // Seeded random interleaving of pushes, ready-pops and drains.
    // Invariants: every pushed id pops exactly once; within a bucket
    // ids pop in FIFO order; no group exceeds max_batch; every group
    // is homogeneous in padded length; size() matches the ledger.
    Rng rng(4242);
    for (int round = 0; round < 20; ++round) {
        const std::size_t max_batch =
            static_cast<std::size_t>(rng.randint(1, 6));
        const std::size_t granularity =
            static_cast<std::size_t>(rng.randint(1, 24));
        const std::size_t max_seq =
            static_cast<std::size_t>(rng.randint(8, 96));
        RequestBatcher b(max_batch, granularity, max_seq);

        const auto t0 = Clock::now();
        std::map<std::size_t, std::vector<std::uint64_t>> fifo;
        std::set<std::uint64_t> pushed, popped;
        std::uint64_t next_id = 0;
        std::size_t in_queue = 0;

        auto check_group = [&](const BatchGroup &g) {
            ASSERT_GE(g.ids.size(), 1u);
            ASSERT_LE(g.ids.size(), max_batch);
            auto &q = fifo[g.padded_len];
            ASSERT_GE(q.size(), g.ids.size());
            for (std::size_t i = 0; i < g.ids.size(); ++i) {
                EXPECT_EQ(g.ids[i], q[i]) << "FIFO violated";
                EXPECT_TRUE(popped.insert(g.ids[i]).second)
                    << "id popped twice";
            }
            q.erase(q.begin(),
                    q.begin() + static_cast<long>(g.ids.size()));
            in_queue -= g.ids.size();
        };

        for (int step = 0; step < 200; ++step) {
            const int action = rng.randint(0, 99);
            if (action < 60) {
                const std::size_t len = static_cast<std::size_t>(
                    rng.randint(1, static_cast<int>(max_seq)));
                const auto now =
                    t0 + std::chrono::microseconds(rng.randint(0, 500));
                b.push(next_id, len, now);
                fifo[b.bucketLen(len)].push_back(next_id);
                pushed.insert(next_id);
                ++next_id;
                ++in_queue;
            } else if (action < 80) {
                // Far-future "now": anything queued is flushable.
                auto g = b.popReady(t0 + std::chrono::seconds(60),
                                    std::chrono::milliseconds(1));
                if (g)
                    check_group(*g);
            } else if (action < 90) {
                // Shed-policy hook: evict a random residue class and
                // check the removed set and its documented order
                // (ascending padded length, FIFO within) against the
                // model; removed ids count as resolved, like popped.
                const std::uint64_t mod = static_cast<std::uint64_t>(
                    rng.randint(2, 5));
                const std::uint64_t rem = static_cast<std::uint64_t>(
                    rng.randint(0, static_cast<int>(mod) - 1));
                auto match = [&](std::uint64_t id) {
                    return id % mod == rem;
                };
                std::vector<std::uint64_t> expect;
                for (auto &kv : fifo) {
                    auto &q = kv.second;
                    std::copy_if(q.begin(), q.end(),
                                 std::back_inserter(expect), match);
                    q.erase(std::remove_if(q.begin(), q.end(), match),
                            q.end());
                }
                const auto removed = b.removeIf(match);
                EXPECT_EQ(removed, expect);
                for (const auto id : removed) {
                    EXPECT_TRUE(popped.insert(id).second)
                        << "id removed twice";
                    --in_queue;
                }
            } else {
                auto g = b.drain();
                if (g)
                    check_group(*g);
            }
            ASSERT_EQ(b.size(), in_queue);
            ASSERT_EQ(b.empty(), in_queue == 0);
        }
        while (auto g = b.drain())
            check_group(*g);
        EXPECT_EQ(popped, pushed);
        EXPECT_TRUE(b.empty());
    }
}

} // namespace
} // namespace fabnet
