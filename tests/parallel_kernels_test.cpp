/**
 * @file parallel_kernels_test.cpp
 * Bitwise parity of the parallel/blocked hot-path kernels against the
 * retained reference scalar paths, across odd shapes (non-power-of-two
 * m/n/k, fewer rows than threads) and thread counts {1, 4, 8}.
 *
 * "Bitwise" is literal: the runtime's determinism guarantee (see
 * runtime/parallel.h) says results are identical at any thread count,
 * so every comparison here is exact float equality, not tolerance.
 * The sweep/equality machinery is the shared harness in test_util.h;
 * quant_kernels_test.cpp runs the same discipline over the int8/fp16
 * kernels.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "butterfly/butterfly.h"
#include "nn/attention.h"
#include "nn/dense.h"
#include "runtime/parallel.h"
#include "sim/datapath.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using testutil::bitwiseEqual;
using testutil::forEachThreadCount;
using testutil::kThreadCounts;

using ParallelKernelsTest = testutil::RuntimeFixture;

TEST_F(ParallelKernelsTest, MatmulParityOddShapes)
{
    Rng rng(7);
    for (const auto &s : testutil::gemmShapeSweep(101)) {
        Tensor a = rng.normalTensor({s.m, s.k});
        Tensor b = rng.normalTensor({s.k, s.n});
        const Tensor want = ops::reference::matmul(a, b);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(bitwiseEqual(ops::matmul(a, b), want))
                << "matmul " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
        });
    }
}

TEST_F(ParallelKernelsTest, MatmulTransposedParityOddShapes)
{
    Rng rng(11);
    for (const auto &s : testutil::gemmShapeSweep(103)) {
        Tensor a = rng.normalTensor({s.m, s.k});
        Tensor b = rng.normalTensor({s.n, s.k}); // [n, k]
        const Tensor want = ops::reference::matmulTransposed(a, b);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(
                bitwiseEqual(ops::matmulTransposed(a, b), want))
                << "matmulT " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
        });
    }
}

TEST_F(ParallelKernelsTest, ButterflyMatrixBatchParity)
{
    for (std::size_t n : {4u, 32u, 128u}) {
        ButterflyMatrix m(n);
        Rng rng(n);
        m.initRandomRotation(rng);
        // Rows below, at, and above the stage-major block size, and
        // fewer rows than threads.
        for (std::size_t rows : testutil::rowSweep(n)) {
            Tensor x = rng.normalTensor({rows, n});
            const Tensor want = m.applyBatchReference(x);
            forEachThreadCount([&](std::size_t threads) {
                EXPECT_TRUE(bitwiseEqual(m.applyBatch(x), want))
                    << "n=" << n << " rows=" << rows
                    << " threads=" << threads;
            });
        }
    }
}

TEST_F(ParallelKernelsTest, ButterflySingleVectorMatchesBatch)
{
    // The workspace-based single-vector apply must agree with both
    // batch paths.
    const std::size_t n = 64;
    ButterflyMatrix m(n);
    Rng rng(3);
    m.initRandomRotation(rng);
    Tensor x = rng.normalTensor({5, n});
    const Tensor batch = m.applyBatch(x);
    std::vector<float> y(n);
    for (std::size_t r = 0; r < 5; ++r) {
        m.apply(x.data() + r * n, y.data());
        EXPECT_EQ(0, std::memcmp(y.data(), batch.data() + r * n,
                                 n * sizeof(float)))
            << "row " << r;
    }
}

TEST_F(ParallelKernelsTest, ButterflyLinearBatchParity)
{
    Rng rng(21);
    // (in, out) covering pad, truncate and multi-core expand paths.
    const std::size_t shapes[][2] = {{24, 24}, {32, 96}, {48, 17}};
    for (const auto &s : shapes) {
        ButterflyLinear lin(s[0], s[1]);
        lin.initRandomRotation(rng);
        for (float &b : lin.bias())
            b = rng.normal();
        for (std::size_t rows : {1u, 7u, 33u}) {
            Tensor x = rng.normalTensor({rows, s[0]});
            const Tensor want = lin.applyBatchReference(x);
            forEachThreadCount([&](std::size_t threads) {
                EXPECT_TRUE(bitwiseEqual(lin.applyBatch(x), want))
                    << "in=" << s[0] << " out=" << s[1]
                    << " rows=" << rows << " threads=" << threads;
            });
        }
    }
}

TEST_F(ParallelKernelsTest, AttentionForwardParity)
{
    // Odd t, heads > 1, batch > 1; causal and bidirectional.
    for (bool causal : {false, true}) {
        forEachThreadCount([&](std::size_t threads) {
            // Two modules built from identically-seeded rng streams so
            // their projection weights match bit for bit.
            auto mk = [causal](Rng &rng) {
                const std::size_t d = 12;
                return std::make_unique<nn::MultiHeadAttention>(
                    d, 3, std::make_unique<nn::Dense>(d, d, rng),
                    std::make_unique<nn::Dense>(d, d, rng),
                    std::make_unique<nn::Dense>(d, d, rng),
                    std::make_unique<nn::Dense>(d, d, rng), causal);
            };
            Rng data_rng(5);
            Tensor x = data_rng.normalTensor({2, 7, 12});
            Rng rng_fast(17), rng_ref(17);
            auto fast = mk(rng_fast);
            auto ref = mk(rng_ref);
            const Tensor got = fast->forward(x);
            const Tensor want = ref->forwardReference(x);
            EXPECT_TRUE(bitwiseEqual(got, want))
                << "causal=" << causal << " threads=" << threads;
        });
    }
}

TEST_F(ParallelKernelsTest, AttentionThreadCountInvariance)
{
    Rng data_rng(9);
    Tensor x = data_rng.normalTensor({2, 13, 16});
    Tensor first;
    forEachThreadCount([&](std::size_t threads) {
        Rng rng(31);
        nn::MultiHeadAttention mha(
            16, 4, std::make_unique<nn::Dense>(16, 16, rng),
            std::make_unique<nn::Dense>(16, 16, rng),
            std::make_unique<nn::Dense>(16, 16, rng),
            std::make_unique<nn::Dense>(16, 16, rng));
        Tensor y = mha.forward(x);
        if (first.size() == 0)
            first = y;
        else
            EXPECT_TRUE(bitwiseEqual(y, first))
                << "threads=" << threads;
    });
}

TEST_F(ParallelKernelsTest, DenseForwardThreadCountInvariance)
{
    Rng data_rng(2);
    Tensor x = data_rng.normalTensor({3, 11, 24});
    Tensor first;
    forEachThreadCount([&](std::size_t threads) {
        Rng rng(13);
        nn::Dense dense(24, 37, rng);
        Tensor y = dense.forward(x);
        if (first.size() == 0)
            first = y;
        else
            EXPECT_TRUE(bitwiseEqual(y, first))
                << "threads=" << threads;
    });
}

TEST_F(ParallelKernelsTest, SimBatchCrossValidation)
{
    // The functional fp16 engine batch entry must track the fp32
    // software applyBatch within half precision, row for row.
    const std::size_t n = 64, rows = 9;
    ButterflyMatrix m(n);
    Rng rng(41);
    m.initRandomRotation(rng);
    Tensor x = rng.normalTensor({rows, n});

    const Tensor sw = m.applyBatch(x);
    sim::FunctionalButterflyEngine engine(4);
    sim::FunctionalButterflyEngine::RunStats stats;
    forEachThreadCount([&](std::size_t threads) {
        const Tensor hw = engine.runButterflyLinearBatch(m, x, &stats);
        EXPECT_EQ(stats.butterfly_ops, rows * m.numStages() * (n / 2));
        EXPECT_TRUE(testutil::maxAbsDiffWithin(sw, hw, 0.15f))
            << "threads=" << threads;
    });
}

TEST_F(ParallelKernelsTest, ParallelForCoversRangeOnce)
{
    forEachThreadCount([&](std::size_t threads) {
        EXPECT_EQ(runtime::numThreads(), threads);
        std::vector<int> hits(1003, 0);
        runtime::parallelFor(0, hits.size(), 17,
                             [&](std::size_t b, std::size_t e) {
                                 for (std::size_t i = b; i < e; ++i)
                                     ++hits[i];
                             });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i;
    });
}

TEST_F(ParallelKernelsTest, ConcurrentCallersStayCorrect)
{
    // Two application threads using the pool at once: the second
    // region runs inline while the first owns the pool; both must
    // still be bitwise correct.
    runtime::setNumThreads(4);
    Rng rng(55);
    Tensor a = rng.normalTensor({96, 64});
    Tensor b = rng.normalTensor({64, 80});
    const Tensor want = ops::reference::matmul(a, b);
    for (int round = 0; round < 10; ++round) {
        Tensor r1, r2;
        std::thread t1([&] { r1 = ops::matmul(a, b); });
        std::thread t2([&] { r2 = ops::matmul(a, b); });
        t1.join();
        t2.join();
        ASSERT_TRUE(bitwiseEqual(r1, want)) << "round " << round;
        ASSERT_TRUE(bitwiseEqual(r2, want)) << "round " << round;
    }
}

TEST_F(ParallelKernelsTest, ParallelForPropagatesExceptions)
{
    runtime::setNumThreads(4);
    EXPECT_THROW(
        runtime::parallelFor(0, 100, 1,
                             [](std::size_t b, std::size_t) {
                                 if (b == 57)
                                     throw std::runtime_error("boom");
                             }),
        std::runtime_error);
}

} // namespace
} // namespace fabnet
