/**
 * @file parallel_kernels_test.cpp
 * Bitwise parity of the parallel/blocked hot-path kernels against the
 * retained reference scalar paths, across odd shapes (non-power-of-two
 * m/n/k, fewer rows than threads) and thread counts {1, 4, 8}.
 *
 * "Bitwise" is literal: the runtime's determinism guarantee (see
 * runtime/parallel.h) says results are identical at any thread count,
 * so every comparison here is exact float equality, not tolerance.
 * The sweep/equality machinery is the shared harness in test_util.h;
 * quant_kernels_test.cpp runs the same discipline over the int8/fp16
 * kernels.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "butterfly/butterfly.h"
#include "nn/attention.h"
#include "nn/basic_layers.h"
#include "nn/block.h"
#include "nn/dense.h"
#include "nn/rowset.h"
#include "runtime/parallel.h"
#include "sim/datapath.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using testutil::bitwiseEqual;
using testutil::forEachThreadCount;
using testutil::kThreadCounts;

using ParallelKernelsTest = testutil::RuntimeFixture;

TEST_F(ParallelKernelsTest, MatmulParityOddShapes)
{
    Rng rng(7);
    for (const auto &s : testutil::gemmShapeSweep(101)) {
        Tensor a = rng.normalTensor({s.m, s.k});
        Tensor b = rng.normalTensor({s.k, s.n});
        const Tensor want = ops::reference::matmul(a, b);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(bitwiseEqual(ops::matmul(a, b), want))
                << "matmul " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
        });
    }
}

TEST_F(ParallelKernelsTest, MatmulTransposedParityOddShapes)
{
    Rng rng(11);
    for (const auto &s : testutil::gemmShapeSweep(103)) {
        Tensor a = rng.normalTensor({s.m, s.k});
        Tensor b = rng.normalTensor({s.n, s.k}); // [n, k]
        const Tensor want = ops::reference::matmulTransposed(a, b);
        forEachThreadCount([&](std::size_t threads) {
            EXPECT_TRUE(
                bitwiseEqual(ops::matmulTransposed(a, b), want))
                << "matmulT " << s.m << "x" << s.k << "x" << s.n
                << " at " << threads << " threads";
        });
    }
}

TEST_F(ParallelKernelsTest, ButterflyMatrixBatchParity)
{
    for (std::size_t n : {4u, 32u, 128u}) {
        ButterflyMatrix m(n);
        Rng rng(n);
        m.initRandomRotation(rng);
        // Rows below, at, and above the stage-major block size, and
        // fewer rows than threads.
        for (std::size_t rows : testutil::rowSweep(n)) {
            Tensor x = rng.normalTensor({rows, n});
            const Tensor want = m.applyBatchReference(x);
            forEachThreadCount([&](std::size_t threads) {
                EXPECT_TRUE(bitwiseEqual(m.applyBatch(x), want))
                    << "n=" << n << " rows=" << rows
                    << " threads=" << threads;
            });
        }
    }
}

TEST_F(ParallelKernelsTest, ButterflySingleVectorMatchesBatch)
{
    // The workspace-based single-vector apply must agree with both
    // batch paths.
    const std::size_t n = 64;
    ButterflyMatrix m(n);
    Rng rng(3);
    m.initRandomRotation(rng);
    Tensor x = rng.normalTensor({5, n});
    const Tensor batch = m.applyBatch(x);
    std::vector<float> y(n);
    for (std::size_t r = 0; r < 5; ++r) {
        m.apply(x.data() + r * n, y.data());
        EXPECT_EQ(0, std::memcmp(y.data(), batch.data() + r * n,
                                 n * sizeof(float)))
            << "row " << r;
    }
}

TEST_F(ParallelKernelsTest, ButterflyLinearBatchParity)
{
    Rng rng(21);
    // (in, out) covering pad, truncate and multi-core expand paths.
    const std::size_t shapes[][2] = {{24, 24}, {32, 96}, {48, 17}};
    for (const auto &s : shapes) {
        ButterflyLinear lin(s[0], s[1]);
        lin.initRandomRotation(rng);
        for (float &b : lin.bias())
            b = rng.normal();
        for (std::size_t rows : {1u, 7u, 33u}) {
            Tensor x = rng.normalTensor({rows, s[0]});
            const Tensor want = lin.applyBatchReference(x);
            forEachThreadCount([&](std::size_t threads) {
                EXPECT_TRUE(bitwiseEqual(lin.applyBatch(x), want))
                    << "in=" << s[0] << " out=" << s[1]
                    << " rows=" << rows << " threads=" << threads;
            });
        }
    }
}

TEST_F(ParallelKernelsTest, AttentionForwardParity)
{
    // Odd t, heads > 1, batch > 1; causal and bidirectional.
    for (bool causal : {false, true}) {
        forEachThreadCount([&](std::size_t threads) {
            // Two modules built from identically-seeded rng streams so
            // their projection weights match bit for bit.
            auto mk = [causal](Rng &rng) {
                const std::size_t d = 12;
                return std::make_unique<nn::MultiHeadAttention>(
                    d, 3, std::make_unique<nn::Dense>(d, d, rng),
                    std::make_unique<nn::Dense>(d, d, rng),
                    std::make_unique<nn::Dense>(d, d, rng),
                    std::make_unique<nn::Dense>(d, d, rng), causal);
            };
            Rng data_rng(5);
            Tensor x = data_rng.normalTensor({2, 7, 12});
            Rng rng_fast(17), rng_ref(17);
            auto fast = mk(rng_fast);
            auto ref = mk(rng_ref);
            const Tensor got = fast->forward(x);
            const Tensor want = ref->forwardReference(x);
            EXPECT_TRUE(bitwiseEqual(got, want))
                << "causal=" << causal << " threads=" << threads;
        });
    }
}

TEST_F(ParallelKernelsTest, AttentionThreadCountInvariance)
{
    Rng data_rng(9);
    Tensor x = data_rng.normalTensor({2, 13, 16});
    Tensor first;
    forEachThreadCount([&](std::size_t threads) {
        Rng rng(31);
        nn::MultiHeadAttention mha(
            16, 4, std::make_unique<nn::Dense>(16, 16, rng),
            std::make_unique<nn::Dense>(16, 16, rng),
            std::make_unique<nn::Dense>(16, 16, rng),
            std::make_unique<nn::Dense>(16, 16, rng));
        Tensor y = mha.forward(x);
        if (first.size() == 0)
            first = y;
        else
            EXPECT_TRUE(bitwiseEqual(y, first))
                << "threads=" << threads;
    });
}

TEST_F(ParallelKernelsTest, DenseForwardThreadCountInvariance)
{
    Rng data_rng(2);
    Tensor x = data_rng.normalTensor({3, 11, 24});
    Tensor first;
    forEachThreadCount([&](std::size_t threads) {
        Rng rng(13);
        nn::Dense dense(24, 37, rng);
        Tensor y = dense.forward(x);
        if (first.size() == 0)
            first = y;
        else
            EXPECT_TRUE(bitwiseEqual(y, first))
                << "threads=" << threads;
    });
}

TEST_F(ParallelKernelsTest, SimBatchCrossValidation)
{
    // The functional fp16 engine batch entry must track the fp32
    // software applyBatch within half precision, row for row.
    const std::size_t n = 64, rows = 9;
    ButterflyMatrix m(n);
    Rng rng(41);
    m.initRandomRotation(rng);
    Tensor x = rng.normalTensor({rows, n});

    const Tensor sw = m.applyBatch(x);
    sim::FunctionalButterflyEngine engine(4);
    sim::FunctionalButterflyEngine::RunStats stats;
    forEachThreadCount([&](std::size_t threads) {
        const Tensor hw = engine.runButterflyLinearBatch(m, x, &stats);
        EXPECT_EQ(stats.butterfly_ops, rows * m.numStages() * (n / 2));
        EXPECT_TRUE(testutil::maxAbsDiffWithin(sw, hw, 0.15f))
            << "threads=" << threads;
    });
}

// --------------------------------------------------- ragged parity
//
// The ragged (skip-padded-rows) forward of every row-wise layer must
// be bitwise identical to the dense masked path over the VALID rows -
// and leave padded rows exactly zero - at threads {1, 4, 8}, across
// degenerate length vectors (batch of 1, all-equal/no-padding,
// all-single-token, max-straddle mixes). `ctest -L ragged-parity`.

TEST_F(ParallelKernelsTest, RaggedDenseParity)
{
    const std::size_t seq = 12, in = 24, out = 37;
    Rng rng(61);
    nn::Dense dense(in, out, rng);
    for (const auto &lens : testutil::raggedLensSweep(seq, 211)) {
        const nn::RowSet rows(lens.size(), seq, lens);
        const Tensor x = testutil::raggedInput(rows, in, 71);
        testutil::expectRaggedForwardParity(dense, x, rows, "Dense");
    }
}

TEST_F(ParallelKernelsTest, RaggedQuantizedDenseParity)
{
    const std::size_t seq = 10, in = 24, out = 19;
    Rng rng(67);
    nn::Dense dense(in, out, rng);
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Fp16}) {
        nn::QuantizedDense q(dense, kind);
        for (const auto &lens : testutil::raggedLensSweep(seq, 223)) {
            const nn::RowSet rows(lens.size(), seq, lens);
            const Tensor x = testutil::raggedInput(rows, in, 73);
            testutil::expectRaggedForwardParity(
                q, x, rows,
                kind == QuantKind::Int8 ? "QuantizedDense int8"
                                        : "QuantizedDense fp16");
        }
    }
}

TEST_F(ParallelKernelsTest, RaggedButterflyDenseParity)
{
    // (in, out) covering pad, truncate and multi-core expand paths.
    const std::size_t shapes[][2] = {{24, 24}, {16, 48}, {48, 17}};
    const std::size_t seq = 19; // straddles the 16-row stage block
    Rng rng(73);
    for (const auto &s : shapes) {
        nn::ButterflyDense dense(s[0], s[1], rng);
        for (const auto &lens : testutil::raggedLensSweep(seq, 227)) {
            const nn::RowSet rows(lens.size(), seq, lens);
            const Tensor x = testutil::raggedInput(rows, s[0], 79);
            testutil::expectRaggedForwardParity(dense, x, rows,
                                                "ButterflyDense");
        }
    }
}

TEST_F(ParallelKernelsTest, RaggedQuantizedButterflyDenseParity)
{
    const std::size_t seq = 9, in = 32, out = 32;
    Rng rng(79);
    nn::ButterflyDense dense(in, out, rng);
    for (QuantKind kind : {QuantKind::Int8, QuantKind::Fp16}) {
        nn::QuantizedButterflyDense q(dense, kind);
        for (const auto &lens : testutil::raggedLensSweep(seq, 229)) {
            const nn::RowSet rows(lens.size(), seq, lens);
            const Tensor x = testutil::raggedInput(rows, in, 83);
            testutil::expectRaggedForwardParity(
                q, x, rows,
                kind == QuantKind::Int8 ? "QButterflyDense int8"
                                        : "QButterflyDense fp16");
        }
    }
}

TEST_F(ParallelKernelsTest, RaggedLayerNormAndActivationParity)
{
    const std::size_t seq = 11, d = 16;
    nn::LayerNorm ln(d);
    nn::Relu relu;
    nn::Gelu gelu;
    for (const auto &lens : testutil::raggedLensSweep(seq, 233)) {
        const nn::RowSet rows(lens.size(), seq, lens);
        const Tensor x = testutil::raggedInput(rows, d, 89);
        testutil::expectRaggedForwardParity(ln, x, rows, "LayerNorm");
        testutil::expectRaggedForwardParity(relu, x, rows, "Relu");
        testutil::expectRaggedForwardParity(gelu, x, rows, "Gelu");
    }
}

TEST_F(ParallelKernelsTest, RaggedAttentionParity)
{
    // forwardRows vs forwardMasked: the ragged core computes only the
    // real prefix (queries AND keys) and skips the attn_ cache, yet
    // valid rows must match the masked path bit for bit - causal too.
    const std::size_t d = 12, seq = 9;
    for (bool causal : {false, true}) {
        Rng rng(97);
        nn::MultiHeadAttention mha(
            d, 3, std::make_unique<nn::Dense>(d, d, rng),
            std::make_unique<nn::Dense>(d, d, rng),
            std::make_unique<nn::Dense>(d, d, rng),
            std::make_unique<nn::Dense>(d, d, rng), causal);
        for (const auto &lens : testutil::raggedLensSweep(seq, 239)) {
            const nn::RowSet rows(lens.size(), seq, lens);
            const Tensor x = testutil::raggedInput(rows, d, 101);
            testutil::expectRaggedForwardParity(
                mha, x, rows, causal ? "MHA causal" : "MHA");
        }
    }
}

TEST_F(ParallelKernelsTest, RaggedEncoderBlockParity)
{
    // Whole block: masked mixer + ragged residuals/norms/FFN.
    const std::size_t d = 16, seq = 13;
    Rng rng(103);
    auto mha = std::make_unique<nn::MultiHeadAttention>(
        d, 4, std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng));
    auto ffn = std::make_unique<nn::FeedForward>(
        std::make_unique<nn::Dense>(d, 2 * d, rng),
        std::make_unique<nn::Gelu>(),
        std::make_unique<nn::Dense>(2 * d, d, rng));
    nn::EncoderBlock block(d, std::move(mha), std::move(ffn));
    for (const auto &lens : testutil::raggedLensSweep(seq, 241)) {
        const nn::RowSet rows(lens.size(), seq, lens);
        const Tensor x = testutil::raggedInput(rows, d, 107);
        testutil::expectRaggedForwardParity(block, x, rows,
                                            "EncoderBlock");
    }
}

TEST_F(ParallelKernelsTest, RowSetSpansCoverExactlyTheValidRows)
{
    // The descriptor itself: spans must cover each valid row exactly
    // once, in ascending order, for degenerate and random shapes.
    const std::size_t seq = 7;
    for (const auto &lens : testutil::raggedLensSweep(seq, 251, 4)) {
        const nn::RowSet rows(lens.size(), seq, lens);
        std::vector<int> hits(rows.paddedRows(), 0);
        std::size_t last_end = 0;
        rows.forEachSpan(0, rows.totalRows(),
                         [&](std::size_t r0, std::size_t r1) {
                             EXPECT_GE(r0, last_end);
                             EXPECT_LT(r0, r1);
                             last_end = r1;
                             for (std::size_t r = r0; r < r1; ++r)
                                 ++hits[r];
                         });
        std::size_t total = 0;
        for (std::size_t b = 0; b < rows.batch(); ++b) {
            for (std::size_t t = 0; t < seq; ++t) {
                const bool valid = t < rows.len(b);
                EXPECT_EQ(hits[b * seq + t], valid ? 1 : 0)
                    << "row (" << b << ", " << t << ")";
                total += valid;
            }
        }
        EXPECT_EQ(rows.totalRows(), total);
        EXPECT_EQ(rows.rowsSkipped(), rows.paddedRows() - total);
        // Chunked sweeps must see the same coverage regardless of the
        // chunk boundaries (the parallelFor determinism contract).
        std::fill(hits.begin(), hits.end(), 0);
        for (std::size_t p = 0; p < rows.totalRows(); p += 3)
            rows.forEachSpan(p, std::min(p + 3, rows.totalRows()),
                             [&](std::size_t r0, std::size_t r1) {
                                 for (std::size_t r = r0; r < r1; ++r)
                                     ++hits[r];
                             });
        for (std::size_t b = 0; b < rows.batch(); ++b)
            for (std::size_t t = 0; t < rows.len(b); ++t)
                EXPECT_EQ(hits[b * seq + t], 1);
    }
    EXPECT_THROW(nn::RowSet(2, 4, {1}), std::invalid_argument);
    EXPECT_THROW(nn::RowSet(1, 4, {0}), std::invalid_argument);
    EXPECT_THROW(nn::RowSet(1, 4, {5}), std::invalid_argument);
}

TEST_F(ParallelKernelsTest, ParallelForCoversRangeOnce)
{
    forEachThreadCount([&](std::size_t threads) {
        EXPECT_EQ(runtime::numThreads(), threads);
        std::vector<int> hits(1003, 0);
        runtime::parallelFor(0, hits.size(), 17,
                             [&](std::size_t b, std::size_t e) {
                                 for (std::size_t i = b; i < e; ++i)
                                     ++hits[i];
                             });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i;
    });
}

TEST_F(ParallelKernelsTest, ConcurrentCallersStayCorrect)
{
    // Two application threads using the pool at once: the second
    // region runs inline while the first owns the pool; both must
    // still be bitwise correct.
    runtime::setNumThreads(4);
    Rng rng(55);
    Tensor a = rng.normalTensor({96, 64});
    Tensor b = rng.normalTensor({64, 80});
    const Tensor want = ops::reference::matmul(a, b);
    for (int round = 0; round < 10; ++round) {
        Tensor r1, r2;
        std::thread t1([&] { r1 = ops::matmul(a, b); });
        std::thread t2([&] { r2 = ops::matmul(a, b); });
        t1.join();
        t2.join();
        ASSERT_TRUE(bitwiseEqual(r1, want)) << "round " << round;
        ASSERT_TRUE(bitwiseEqual(r2, want)) << "round " << round;
    }
}

TEST_F(ParallelKernelsTest, ParallelForPropagatesExceptions)
{
    runtime::setNumThreads(4);
    EXPECT_THROW(
        runtime::parallelFor(0, 100, 1,
                             [](std::size_t b, std::size_t) {
                                 if (b == 57)
                                     throw std::runtime_error("boom");
                             }),
        std::runtime_error);
}

} // namespace
} // namespace fabnet
