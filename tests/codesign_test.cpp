/**
 * @file codesign_test.cpp
 * Co-design flow: oracles, feasibility filtering, Pareto extraction
 * and the paper's design-selection rule.
 */
#include <gtest/gtest.h>

#include "codesign/codesign.h"

namespace fabnet {
namespace codesign {
namespace {

ModelConfig
baseCfg()
{
    ModelConfig c;
    c.kind = ModelKind::FABNet;
    c.vocab = 256;
    c.classes = 2;
    c.max_seq = 2048;
    return c;
}

TEST(CapacityOracle, MonotoneInCapacity)
{
    CapacityAccuracyOracle oracle;
    ModelConfig small = baseCfg();
    small.d_hid = 64;
    small.r_ffn = 1;
    small.n_total = 1;
    ModelConfig big = baseCfg();
    big.d_hid = 512;
    big.r_ffn = 4;
    big.n_total = 2;
    EXPECT_GT(oracle.accuracy(big), oracle.accuracy(small));
}

TEST(CapacityOracle, SaturatesBelowOne)
{
    CapacityAccuracyOracle oracle;
    ModelConfig huge = baseCfg();
    huge.d_hid = 1024;
    huge.r_ffn = 4;
    huge.n_total = 2;
    EXPECT_LT(oracle.accuracy(huge), 0.67);
    EXPECT_GT(oracle.accuracy(huge), 0.60);
}

TEST(CapacityOracle, DeterministicPerConfig)
{
    CapacityAccuracyOracle oracle;
    ModelConfig c = baseCfg();
    c.d_hid = 128;
    EXPECT_DOUBLE_EQ(oracle.accuracy(c), oracle.accuracy(c));
}

TEST(Pareto, ExtractsNonDominatedSet)
{
    std::vector<DesignPoint> pts(5);
    // (latency, accuracy): (1, .5) (2, .6) (3, .55) (4, .7) (5, .65)
    const double lat[] = {1, 2, 3, 4, 5};
    const double acc[] = {0.5, 0.6, 0.55, 0.7, 0.65};
    for (int i = 0; i < 5; ++i) {
        pts[i].latency_ms = lat[i];
        pts[i].accuracy = acc[i];
    }
    const auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0], 0u); // fastest
    EXPECT_EQ(front[1], 1u);
    EXPECT_EQ(front[2], 3u); // most accurate
}

TEST(Pareto, SinglePointIsItsOwnFront)
{
    std::vector<DesignPoint> pts(1);
    pts[0].latency_ms = 1.0;
    pts[0].accuracy = 0.6;
    EXPECT_EQ(paretoFront(pts).size(), 1u);
}

TEST(SelectDesign, PicksFastestWithinAccuracyLoss)
{
    std::vector<DesignPoint> pts(3);
    pts[0].latency_ms = 1.0;
    pts[0].accuracy = 0.55; // too inaccurate
    pts[1].latency_ms = 2.0;
    pts[1].accuracy = 0.63;
    pts[2].latency_ms = 5.0;
    pts[2].accuracy = 0.64;
    const std::size_t best = selectDesign(pts, 0.637, 0.01);
    EXPECT_EQ(best, 1u);
}

TEST(SelectDesign, ReturnsSentinelWhenNoneQualify)
{
    std::vector<DesignPoint> pts(1);
    pts[0].accuracy = 0.2;
    pts[0].latency_ms = 1.0;
    EXPECT_EQ(selectDesign(pts, 0.637, 0.01),
              static_cast<std::size_t>(-1));
}

TEST(GridSearch, SmallSpaceProducesFeasiblePoints)
{
    SearchSpace space;
    space.d_hid = {64, 128};
    space.r_ffn = {4};
    space.n_total = {2};
    space.n_abfly = {0};
    space.p_be = {16, 64};
    space.p_bu = {4};
    space.p_qk = {0};
    space.p_sv = {0};

    CapacityAccuracyOracle oracle;
    Constraints cons;
    const auto points =
        gridSearch(space, 1024, baseCfg(), oracle, cons);
    ASSERT_EQ(points.size(), 2u * 2u); // d_hid x p_be
    for (const auto &p : points) {
        EXPECT_GT(p.latency_ms, 0.0);
        EXPECT_TRUE(p.resources.fitsOn(cons.device));
        EXPECT_GT(p.accuracy, 0.4);
    }
}

TEST(GridSearch, SkipsInfeasibleCombinations)
{
    SearchSpace space;
    space.d_hid = {64};
    space.r_ffn = {4};
    space.n_total = {1};
    space.n_abfly = {1};    // needs attention hardware
    space.p_be = {16};
    space.p_bu = {4};
    space.p_qk = {0};       // ...but none provided
    space.p_sv = {0};
    CapacityAccuracyOracle oracle;
    const auto points =
        gridSearch(space, 256, baseCfg(), oracle, Constraints{});
    EXPECT_TRUE(points.empty());
}

TEST(GridSearch, AttentionPointsCarryApCost)
{
    SearchSpace space;
    space.d_hid = {64};
    space.r_ffn = {4};
    space.n_total = {1};
    space.n_abfly = {0, 1};
    space.p_be = {16};
    space.p_bu = {4};
    space.p_qk = {0, 16};
    space.p_sv = {0, 16};
    CapacityAccuracyOracle oracle;
    const auto points =
        gridSearch(space, 256, baseCfg(), oracle, Constraints{});
    // FBfly-only point (qk=sv=0) + ABfly point (qk=sv=16).
    ASSERT_EQ(points.size(), 2u);
    const auto &fb = points[0].algo.n_abfly == 0 ? points[0] : points[1];
    const auto &ab = points[0].algo.n_abfly == 1 ? points[0] : points[1];
    EXPECT_GT(ab.latency_ms, fb.latency_ms);
    EXPECT_GT(ab.resources.dsps, fb.resources.dsps);
}

TEST(GridSearch, MoreParallelismOnParetoFront)
{
    SearchSpace space;
    space.d_hid = {64};
    space.r_ffn = {4};
    space.n_total = {2};
    space.n_abfly = {0};
    space.p_be = {4, 16, 64};
    space.p_bu = {4};
    space.p_qk = {0};
    space.p_sv = {0};
    CapacityAccuracyOracle oracle;
    const auto points =
        gridSearch(space, 1024, baseCfg(), oracle, Constraints{});
    ASSERT_EQ(points.size(), 3u);
    // Same accuracy, so the Pareto front is only the fastest point.
    const auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(points[front[0]].hw.p_be, 64u);
}

TEST(GridSearch, RespectsResourceConstraint)
{
    SearchSpace space;
    space.d_hid = {64};
    space.r_ffn = {4};
    space.n_total = {1};
    space.n_abfly = {0};
    space.p_be = {8, 128};
    space.p_bu = {4};
    space.p_qk = {0};
    space.p_sv = {0};
    CapacityAccuracyOracle oracle;
    Constraints cons;
    cons.device = sim::zynq7045Device(); // small FPGA
    const auto points =
        gridSearch(space, 256, baseCfg(), oracle, cons);
    ASSERT_EQ(points.size(), 1u); // 128 BEs overflow LUTs and DSPs
    EXPECT_EQ(points[0].hw.p_be, 8u);
}

} // namespace
} // namespace codesign
} // namespace fabnet
