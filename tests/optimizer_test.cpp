/**
 * @file optimizer_test.cpp
 * SGD/Adam convergence and gradient clipping.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"

namespace fabnet {
namespace nn {
namespace {

/** Quadratic bowl: L = 0.5 * sum((w - target)^2). */
struct Quadratic
{
    std::vector<float> w;
    std::vector<float> g;
    std::vector<float> target;

    explicit Quadratic(std::vector<float> t)
        : w(t.size(), 0.0f), g(t.size(), 0.0f), target(std::move(t))
    {
    }

    ParamRef param() { return {&w, &g}; }

    float computeGrad()
    {
        float loss = 0.0f;
        for (std::size_t i = 0; i < w.size(); ++i) {
            g[i] += w[i] - target[i];
            loss += 0.5f * (w[i] - target[i]) * (w[i] - target[i]);
        }
        return loss;
    }
};

TEST(Sgd, ConvergesOnQuadratic)
{
    Quadratic q({1.0f, -2.0f, 3.0f});
    Sgd opt({q.param()}, 0.1f);
    for (int i = 0; i < 200; ++i) {
        q.computeGrad();
        opt.step();
    }
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(q.w[i], q.target[i], 1e-3f);
}

TEST(Sgd, MomentumAcceleratesProgress)
{
    Quadratic plain({5.0f});
    Quadratic mom({5.0f});
    Sgd o1({plain.param()}, 0.01f);
    Sgd o2({mom.param()}, 0.01f, 0.9f);
    for (int i = 0; i < 50; ++i) {
        plain.computeGrad();
        o1.step();
        mom.computeGrad();
        o2.step();
    }
    EXPECT_LT(std::fabs(mom.w[0] - 5.0f),
              std::fabs(plain.w[0] - 5.0f));
}

TEST(Sgd, ZerosGradAfterStep)
{
    Quadratic q({1.0f});
    Sgd opt({q.param()}, 0.1f);
    q.computeGrad();
    opt.step();
    EXPECT_FLOAT_EQ(q.g[0], 0.0f);
}

TEST(Adam, ConvergesOnQuadratic)
{
    Quadratic q({0.5f, -1.5f, 4.0f, 0.0f});
    Adam opt({q.param()}, 0.05f);
    for (int i = 0; i < 500; ++i) {
        q.computeGrad();
        opt.step();
    }
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(q.w[i], q.target[i], 1e-2f);
}

TEST(Adam, HandlesIllConditionedScales)
{
    // Targets at wildly different scales: Adam's per-coordinate
    // normalisation should reach both.
    Quadratic q({1000.0f, 0.001f});
    Adam opt({q.param()}, 1.0f);
    for (int i = 0; i < 3000; ++i) {
        q.computeGrad();
        opt.step();
    }
    EXPECT_NEAR(q.w[0], 1000.0f, 5.0f);
    EXPECT_NEAR(q.w[1], 0.001f, 0.01f);
}

TEST(Adam, StepCounterAdvances)
{
    Quadratic q({1.0f});
    Adam opt({q.param()});
    EXPECT_EQ(opt.stepCount(), 0);
    q.computeGrad();
    opt.step();
    EXPECT_EQ(opt.stepCount(), 1);
}

TEST(ClipGradNorm, ScalesDownLargeGradients)
{
    std::vector<float> w = {0.0f, 0.0f};
    std::vector<float> g = {3.0f, 4.0f}; // norm 5
    std::vector<ParamRef> ps = {{&w, &g}};
    const float norm = clipGradNorm(ps, 1.0f);
    EXPECT_NEAR(norm, 5.0f, 1e-5f);
    EXPECT_NEAR(g[0], 0.6f, 1e-5f);
    EXPECT_NEAR(g[1], 0.8f, 1e-5f);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone)
{
    std::vector<float> w = {0.0f};
    std::vector<float> g = {0.5f};
    std::vector<ParamRef> ps = {{&w, &g}};
    clipGradNorm(ps, 1.0f);
    EXPECT_FLOAT_EQ(g[0], 0.5f);
}

} // namespace
} // namespace nn
} // namespace fabnet
