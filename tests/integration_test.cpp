/**
 * @file integration_test.cpp
 * Cross-module integration: train FABNet on a synthetic LRA task,
 * map the trained butterfly weights onto the functional hardware
 * engine (Appendix-C cross-validation on *trained* weights), and run
 * the full model through the performance stack.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "codesign/codesign.h"
#include "data/lra.h"
#include "model/builder.h"
#include "model/flops.h"
#include "sim/accelerator.h"
#include "sim/baseline.h"
#include "sim/datapath.h"
#include "sim/power.h"
#include "sim/resource.h"

namespace fabnet {
namespace {

TEST(Integration, FabnetLearnsSyntheticTextTask)
{
    Rng rng(42);
    auto gen = data::makeLraGenerator("Text", 64);
    auto train = gen->dataset(192, rng);
    auto test = gen->dataset(96, rng);

    ModelConfig cfg;
    cfg.kind = ModelKind::FABNet;
    cfg.vocab = 256;
    cfg.classes = 2;
    cfg.max_seq = 64;
    cfg.d_hid = 32;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.heads = 2;

    auto model = buildModel(cfg, rng);
    const double acc = trainClassifier(*model, train, test, 64,
                                       /*epochs=*/5, /*batch=*/16,
                                       /*lr=*/2e-3f, rng);
    // Binary task, planted evidence: must beat chance clearly.
    EXPECT_GT(acc, 0.70) << "trained accuracy " << acc;
}

TEST(Integration, TrainedButterflyWeightsRunOnFunctionalHardware)
{
    // Train a small butterfly matrix to match a random target map,
    // then execute the *trained* weights on the fp16 functional
    // engine and compare with the software forward pass.
    const std::size_t n = 16;
    Rng rng(7);
    ButterflyMatrix m(n);
    m.initRandomRotation(rng);

    // A few gradient steps toward a random linear target.
    Tensor target = rng.normalTensor({n, n}, 0.3f);
    std::vector<float> cache((m.numStages() + 1) * n);
    std::vector<float> grad_w(m.numWeights(), 0.0f);
    std::vector<float> gin(n);
    for (int step = 0; step < 200; ++step) {
        std::vector<float> x(n);
        for (auto &v : x)
            v = rng.normal();
        m.forwardWithCache(x.data(), cache.data());
        const float *y = cache.data() + m.numStages() * n;
        // dL/dy for L = 0.5 || y - T x ||^2.
        std::vector<float> g(n, 0.0f);
        for (std::size_t i = 0; i < n; ++i) {
            float tx = 0.0f;
            for (std::size_t j = 0; j < n; ++j)
                tx += target.at(i, j) * x[j];
            g[i] = y[i] - tx;
        }
        std::fill(grad_w.begin(), grad_w.end(), 0.0f);
        m.backward(cache.data(), g.data(), gin.data(), grad_w);
        for (std::size_t i = 0; i < grad_w.size(); ++i)
            m.weights()[i] -= 0.02f * grad_w[i];
    }

    std::vector<float> x(n);
    for (auto &v : x)
        v = rng.normal();
    std::vector<float> sw(n);
    m.apply(x.data(), sw.data());

    sim::FunctionalButterflyEngine engine(4);
    const auto hw = engine.runButterflyLinear(m, x);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(hw[i], sw[i],
                    3e-2f * std::max(1.0f, std::fabs(sw[i])));
}

TEST(Integration, EndToEndPerformanceStack)
{
    // Model -> trace -> cycle model -> resources -> power, checking
    // cross-module consistency.
    const auto cfg = fabnetBase();
    const auto hw = sim::vcu128Server();

    const auto rep = sim::simulateModel(cfg, 1024, hw);
    EXPECT_GT(rep.total_cycles, 0.0);

    const auto res = sim::estimateResources(hw);
    EXPECT_TRUE(res.fitsOn(sim::vcu128Device()));

    const auto power = sim::estimatePower(hw);
    const double energy = sim::energyPerInference(power, rep.seconds);
    EXPECT_GT(energy, 0.0);

    // Effective throughput must not exceed the theoretical peak
    // (multipliers x 2 ops x frequency).
    const double flops = modelFlops(cfg, 1024).total();
    const double gops = flops / rep.seconds / 1e9;
    const double peak_gops = static_cast<double>(hw.multipliers()) *
                             2.0 * hw.freq_ghz;
    EXPECT_LT(gops, peak_gops);
    EXPECT_GT(gops, 0.01 * peak_gops); // and is not absurdly low
}

TEST(Integration, ButterflyAcceleratorBeatsBaselineEndToEnd)
{
    const auto cfg = fabnetBase();
    sim::BaselineConfig base;
    auto ours = sim::vcu128Server();
    ours.p_be = 128; // same 2048-multiplier budget as the baseline
    for (std::size_t seq : {128u, 1024u}) {
        const double t_base =
            sim::simulateBaseline(cfg, seq, base).seconds;
        const double t_ours = sim::simulateModel(cfg, seq, ours).seconds;
        EXPECT_GT(t_base / t_ours, 5.0) << "seq " << seq;
    }
}

TEST(Integration, CodesignFindsPaperLikeOptimum)
{
    // A reduced version of the Fig. 18 search: the selected design
    // should be a small-D, FBfly-only model with high BP parallelism,
    // like the paper's {D=64-128, R=4, N=2, N_abfly=0} choice.
    codesign::SearchSpace space;
    space.d_hid = {64, 256, 1024};
    space.r_ffn = {1, 4};
    space.n_total = {1, 2};
    space.n_abfly = {0, 1};
    space.p_be = {16, 64, 128};
    space.p_bu = {4};
    space.p_qk = {0, 16};
    space.p_sv = {0, 16};

    ModelConfig base;
    base.kind = ModelKind::FABNet;
    base.vocab = 256;
    base.classes = 2;
    base.max_seq = 2048;

    codesign::CapacityAccuracyOracle oracle;
    codesign::Constraints cons;
    const auto points =
        codesign::gridSearch(space, 2048, base, oracle, cons);
    ASSERT_GT(points.size(), 10u);

    // Vanilla-Transformer reference accuracy on LRA-Text is 0.637;
    // allow <1% loss as in the paper.
    const std::size_t best =
        codesign::selectDesign(points, 0.637, 0.01);
    ASSERT_NE(best, static_cast<std::size_t>(-1));
    const auto &sel = points[best];
    EXPECT_EQ(sel.algo.n_abfly, 0u);
    EXPECT_LE(sel.algo.d_hid, 256u);
    EXPECT_EQ(sel.hw.p_be, 128u);

    // Pareto front sanity: the selected point is on it.
    const auto front = codesign::paretoFront(points);
    bool on_front = false;
    for (std::size_t idx : front) {
        if (&points[idx] == &sel)
            on_front = true;
    }
    // The selected point need not be strictly on the front (a faster,
    // less accurate point may dominate in latency), but its latency
    // must be within the front's range.
    EXPECT_TRUE(on_front || sel.latency_ms >=
                                points[front.front()].latency_ms);
}

TEST(Integration, PartiallyCompressedModelsTrainAcrossSweep)
{
    // Fig. 16 machinery: every compression level must be trainable.
    Rng rng(11);
    ModelConfig cfg;
    cfg.kind = ModelKind::Transformer;
    cfg.vocab = 256;
    cfg.classes = 2;
    cfg.max_seq = 32;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.n_abfly = 2;
    cfg.heads = 2;

    auto gen = data::makeLraGenerator("Text", 32);
    auto train = gen->dataset(64, rng);
    auto test = gen->dataset(32, rng);
    for (std::size_t k = 0; k <= 2; ++k) {
        Rng local(100 + k);
        auto model = buildPartiallyCompressed(cfg, k, local);
        const double acc = trainClassifier(*model, train, test, 32, 2,
                                           16, 2e-3f, local);
        EXPECT_GE(acc, 0.3) << "compressed layers " << k;
    }
}

} // namespace
} // namespace fabnet
