/**
 * @file quantize_golden_test.cpp
 * Golden-value pins for the quantisation semantics in nn/quantize.h
 * (which delegate to runtime/kernels.h - these constants therefore pin
 * every int8/fp16 datapath in the repo, kernels included).
 *
 * The fp16 constants share their ulp arithmetic with the tolerance
 * expectations of throughput_quantize_test.cpp: weights of magnitude
 * O(1) sit in [1, 2) where the binary16 ulp is 2^-10, so the largest
 * rounding error is 2^-11 ~ 4.9e-4 - the "half ulp ~ 5e-4" that test
 * bounds with 1e-2 headroom.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "nn/quantize.h"
#include "runtime/kernels.h"
#include "tensor/half.h"

namespace fabnet {
namespace {

// ------------------------------------------------------------- int8

TEST(Int8Golden, ScaleFromMaxAbs)
{
    // scale = max|x| / 127, with the all-zero vector mapping to 1.0
    // so dequantisation stays well-defined.
    EXPECT_FLOAT_EQ(runtime::int8Scale(127.0f), 1.0f);
    EXPECT_FLOAT_EQ(runtime::int8Scale(1.0f), 1.0f / 127.0f);
    EXPECT_FLOAT_EQ(runtime::int8Scale(0.0f), 1.0f);
}

TEST(Int8Golden, RoundToNearestEvenAtTheGrid)
{
    // scale 0.5 -> inv_scale 2: 0.26 -> 0.52 -> 1; the two exact
    // midpoints 0.25 -> 0.5 and 0.75 -> 1.5 round to the EVEN
    // neighbour (0 and 2), pinning round-to-nearest-even.
    const float inv = 2.0f;
    EXPECT_EQ(runtime::quantizeInt8(0.26f, inv), 1);
    EXPECT_EQ(runtime::quantizeInt8(0.25f, inv), 0);
    EXPECT_EQ(runtime::quantizeInt8(0.75f, inv), 2);
    EXPECT_EQ(runtime::quantizeInt8(-0.75f, inv), -2);
    EXPECT_EQ(runtime::quantizeInt8(0.0f, inv), 0);
}

TEST(Int8Golden, SaturationIsSymmetricAtPlusMinus127)
{
    // Out-of-range values clamp to +/-127; -128 is never produced, so
    // negation of any quantised value is exact.
    const float inv = 2.0f;
    EXPECT_EQ(runtime::quantizeInt8(100.0f, inv), 127);
    EXPECT_EQ(runtime::quantizeInt8(-100.0f, inv), -127);
    EXPECT_EQ(runtime::quantizeInt8(63.5f, inv), 127);  // exactly 127
    EXPECT_EQ(runtime::quantizeInt8(-63.5f, inv), -127);
    EXPECT_EQ(runtime::quantizeInt8(1e9f, 1.0f), 127);
    EXPECT_EQ(runtime::quantizeInt8(-1e9f, 1.0f), -127);
}

TEST(Int8Golden, VectorRoundTripHandComputed)
{
    // maxabs 1.0 -> scale 1/127; q = rne(x * 127).
    const std::vector<float> values = {1.0f, -0.5f, 0.25f, 0.1f, 0.0f};
    const nn::Int8Vector v = nn::quantizeInt8(values);
    EXPECT_FLOAT_EQ(v.scale, 1.0f / 127.0f);
    // -0.5*127 = -63.5 is a midpoint -> -64 (even); 0.25*127 = 31.75
    // -> 32; 0.1*127 = 12.7 -> 13.
    const std::vector<std::int8_t> expect_q = {127, -64, 32, 13, 0};
    EXPECT_EQ(v.q, expect_q);

    const std::vector<float> back = nn::dequantizeInt8(v);
    EXPECT_FLOAT_EQ(back[0], 1.0f);
    EXPECT_FLOAT_EQ(back[1], -64.0f / 127.0f);
    EXPECT_FLOAT_EQ(back[2], 32.0f / 127.0f);
    EXPECT_FLOAT_EQ(back[3], 13.0f / 127.0f);
    EXPECT_FLOAT_EQ(back[4], 0.0f);

    // Round-trip error is bounded by scale/2 for in-range values.
    EXPECT_LE(nn::maxInt8QuantizationError(values),
              0.5f * v.scale + 1e-7f);
}

TEST(Int8Golden, AllZeroVectorIsExact)
{
    const std::vector<float> zeros(16, 0.0f);
    EXPECT_FLOAT_EQ(nn::maxInt8QuantizationError(zeros), 0.0f);
    const nn::Int8Vector v = nn::quantizeInt8(zeros);
    EXPECT_FLOAT_EQ(v.scale, 1.0f);
    for (std::int8_t q : v.q)
        EXPECT_EQ(q, 0);
}

TEST(Int8Golden, DequantAccumulatorExpression)
{
    // dequantInt8 = madd(acc, a_scale * b_scale, bias): pinned so the
    // GEMM epilogue, the scalar reference and any test-side
    // re-derivation agree bit for bit.
    EXPECT_FLOAT_EQ(runtime::dequantInt8(254, 0.5f, 0.25f), 31.75f);
    EXPECT_FLOAT_EQ(runtime::dequantInt8(254, 0.5f, 0.25f, 1.0f),
                    runtime::madd(254.0f, 0.125f, 1.0f));
    EXPECT_FLOAT_EQ(runtime::dequantInt8(0, 0.5f, 0.25f), 0.0f);
}

// ------------------------------------------------------------- fp16

TEST(HalfGolden, BitPatterns)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3C00);
    EXPECT_EQ(floatToHalfBits(-2.0f), 0xC000);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7BFF); // largest finite
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x3C01), 1.0009765625f);
}

TEST(HalfGolden, RoundToNearestEvenAtOne)
{
    // ulp at 1.0 is 2^-10 = 0.0009765625; the midpoint between 1.0
    // and the next half is 1.00048828125.
    EXPECT_FLOAT_EQ(roundToHalf(1.0004f), 1.0f);
    EXPECT_FLOAT_EQ(roundToHalf(1.0005f), 1.0009765625f);
    EXPECT_FLOAT_EQ(roundToHalf(0.1f), 0.0999755859375f);
    // Half-ulp bound for O(1) weights - the constant behind the
    // "pre < 1e-2" expectation in throughput_quantize_test.cpp.
    const float half_ulp_at_one = 0.00048828125f;
    for (float x : {1.1f, 1.3f, 1.7f, 1.999f})
        EXPECT_LE(std::fabs(x - roundToHalf(x)),
                  half_ulp_at_one + 1e-7f)
            << x;
}

TEST(HalfGolden, OverflowAndSubnormals)
{
    EXPECT_TRUE(std::isinf(roundToHalf(65520.0f))); // midpoint -> inf
    EXPECT_FLOAT_EQ(roundToHalf(65505.0f), 65504.0f);
    EXPECT_TRUE(std::isinf(roundToHalf(1e6f)));
    // Smallest subnormal half is 2^-24.
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x0001), 5.9604644775390625e-8f);
    EXPECT_FLOAT_EQ(roundToHalf(6e-8f), 5.9604644775390625e-8f);
    EXPECT_FLOAT_EQ(roundToHalf(2e-8f), 0.0f); // below half the step
    EXPECT_TRUE(std::isnan(
        roundToHalf(std::numeric_limits<float>::quiet_NaN())));
}

TEST(HalfGolden, RowHelpersMatchScalar)
{
    const std::vector<float> xs = {0.1f, -1.0005f, 65520.0f, 2e-8f};
    std::vector<std::uint16_t> bits(xs.size());
    std::vector<float> widened(xs.size()), rounded = xs;
    runtime::floatToHalfBitsRow(xs.data(), bits.data(), xs.size());
    runtime::halfBitsToFloatRow(bits.data(), widened.data(), xs.size());
    runtime::roundRowToHalf(rounded.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(bits[i], floatToHalfBits(xs[i])) << i;
        if (!std::isnan(widened[i])) {
            EXPECT_FLOAT_EQ(widened[i], roundToHalf(xs[i])) << i;
            EXPECT_FLOAT_EQ(rounded[i], roundToHalf(xs[i])) << i;
        }
    }
}

} // namespace
} // namespace fabnet
