/**
 * @file training_convergence_test.cpp
 * Training smoke test for the parallel backward: 200 Adam steps of a
 * tiny FABNet classifier on a seeded synthetic task must (a) actually
 * learn - the loss drops substantially from its starting level - and
 * (b) produce a loss curve that is BITWISE identical at 1 and 8
 * threads, the end-to-end consequence of the grad-parity contract
 * (parallel backward, deterministic clip norm, elementwise-parallel
 * Adam; see runtime/reduce.h).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "model/builder.h"
#include "nn/optimizer.h"
#include "runtime/parallel.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using TrainingConvergence = testutil::RuntimeFixture;

ModelConfig
tinyCfg()
{
    ModelConfig cfg;
    cfg.kind = ModelKind::FABNet;
    cfg.vocab = 24;
    cfg.max_seq = 8;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 1;
    cfg.n_abfly = 1; // ABfly: butterfly attention + butterfly FFN
    cfg.heads = 2;
    cfg.classes = 3;
    return cfg;
}

/**
 * Seeded synthetic classification: the label is carried by the first
 * token (class = token % classes), which a mean-pool classifier over
 * an attention block learns quickly.
 */
Batch
syntheticBatch(const ModelConfig &cfg, std::size_t bsz, std::size_t seq,
               Rng &rng)
{
    Batch b;
    b.batch = bsz;
    b.seq = seq;
    b.tokens.resize(bsz * seq);
    b.labels.resize(bsz);
    for (std::size_t i = 0; i < bsz; ++i) {
        for (std::size_t t = 0; t < seq; ++t)
            b.tokens[i * seq + t] =
                rng.randint(1, static_cast<int>(cfg.vocab) - 1);
        b.labels[i] =
            b.tokens[i * seq] % static_cast<int>(cfg.classes);
    }
    return b;
}

/** 200 training steps at @p threads; returns the per-step losses. */
std::vector<float>
runTraining(std::size_t threads)
{
    runtime::setNumThreads(threads);
    const ModelConfig cfg = tinyCfg();
    Rng model_rng(5);
    auto model = buildModel(cfg, model_rng);
    nn::Adam opt(model->params(), 2e-3f);

    Rng data_rng(7);
    std::vector<float> losses;
    losses.reserve(200);
    for (std::size_t step = 0; step < 200; ++step)
        losses.push_back(
            model->trainBatch(syntheticBatch(cfg, 8, 8, data_rng), opt));
    return losses;
}

double
meanOf(const std::vector<float> &v, std::size_t begin, std::size_t end)
{
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i)
        acc += v[i];
    return acc / static_cast<double>(end - begin);
}

TEST_F(TrainingConvergence, LossFallsAndCurveIsThreadCountInvariant)
{
    const std::vector<float> serial = runTraining(1);
    ASSERT_EQ(serial.size(), 200u);

    // (a) The model learns: the last-20-step mean loss is well below
    // the first-20-step mean (the task is deterministic and easy).
    const double head = meanOf(serial, 0, 20);
    const double tail = meanOf(serial, 180, 200);
    EXPECT_LT(tail, 0.6 * head)
        << "loss did not decrease (head=" << head << " tail=" << tail
        << ")";

    // (b) Bitwise-identical trajectory on 8 threads: every loss of
    // every step, not just the final one.
    const std::vector<float> parallel = runTraining(8);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(float)),
              0)
        << "loss curves diverge between 1 and 8 threads";
}

} // namespace
} // namespace fabnet
