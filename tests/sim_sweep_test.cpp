/**
 * @file sim_sweep_test.cpp
 * Parameterised property sweeps of the performance model across the
 * hardware design space - the invariants the co-design search relies
 * on must hold at every grid point, not only the hand-picked cases.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "butterfly/fft.h"
#include "model/config.h"
#include "sim/accelerator.h"
#include "sim/resource.h"
#include "sim/throughput.h"

namespace fabnet {
namespace sim {
namespace {

ModelConfig
sweepModel(std::size_t n_abfly)
{
    ModelConfig c;
    c.kind = ModelKind::FABNet;
    c.d_hid = 128;
    c.r_ffn = 4;
    c.n_total = 2;
    c.n_abfly = n_abfly;
    c.heads = 4;
    return c;
}

/** (p_be, p_bu, bw_gbps, seq, n_abfly) */
using SweepParam =
    std::tuple<std::size_t, std::size_t, double, std::size_t,
               std::size_t>;

class CycleModelSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    AcceleratorConfig
    hwOf(const SweepParam &p) const
    {
        AcceleratorConfig hw;
        hw.p_be = std::get<0>(p);
        hw.p_bu = std::get<1>(p);
        hw.bw_gbps = std::get<2>(p);
        if (std::get<4>(p) > 0) {
            hw.p_head = 4;
            hw.p_qk = 16;
            hw.p_sv = 16;
        }
        return hw;
    }
};

TEST_P(CycleModelSweep, LatencyPositiveAndFinite)
{
    const auto p = GetParam();
    const auto rep = simulateModel(sweepModel(std::get<4>(p)),
                                   std::get<3>(p), hwOf(p));
    EXPECT_GT(rep.total_cycles, 0.0);
    EXPECT_TRUE(std::isfinite(rep.total_cycles));
    EXPECT_GT(rep.bytes_moved, 0.0);
}

TEST_P(CycleModelSweep, OpTotalsAddUpWithPipelineSaving)
{
    const auto p = GetParam();
    const auto rep = simulateModel(sweepModel(std::get<4>(p)),
                                   std::get<3>(p), hwOf(p));
    double sum = 0.0;
    for (const auto &op : rep.ops)
        sum += op.total_cycles;
    EXPECT_NEAR(rep.total_cycles + rep.pipeline_saving_cycles, sum,
                1e-6 * sum + 1.0);
}

TEST_P(CycleModelSweep, DoublingEnginesNeverHurtsMuch)
{
    // Compute-bound designs must speed up with more engines. When the
    // design is memory-bound, extra engines enlarge the per-tile
    // pipeline fill/drain (bigger tiles, same bandwidth), so a small
    // regression is physical - Fig. 21 shows the same flattening and
    // slight inversions at 6-12 GB/s.
    const auto p = GetParam();
    const auto cfg = sweepModel(std::get<4>(p));
    auto hw = hwOf(p);
    const double base =
        simulateModel(cfg, std::get<3>(p), hw).total_cycles;
    hw.p_be *= 2;
    const double doubled =
        simulateModel(cfg, std::get<3>(p), hw).total_cycles;
    if (std::get<2>(p) >= 100.0)
        EXPECT_LE(doubled, base + 1.0);
    else
        EXPECT_LE(doubled, base * 1.25 + 1.0);
}

TEST_P(CycleModelSweep, DisablingDoubleBufferNeverHelps)
{
    const auto p = GetParam();
    const auto cfg = sweepModel(std::get<4>(p));
    auto hw = hwOf(p);
    const double on =
        simulateModel(cfg, std::get<3>(p), hw).total_cycles;
    hw.double_buffer = false;
    const double off =
        simulateModel(cfg, std::get<3>(p), hw).total_cycles;
    EXPECT_GE(off, on - 1.0);
}

TEST_P(CycleModelSweep, ThroughputAtLeastLatencyRate)
{
    const auto p = GetParam();
    const auto cfg = sweepModel(std::get<4>(p));
    const auto hw = hwOf(p);
    const auto lat = simulateModel(cfg, std::get<3>(p), hw);
    const auto thr =
        estimateThroughput(cfg, std::get<3>(p), hw, 16);
    const double latency_rate = 1.0 / lat.seconds;
    EXPECT_GE(thr.samples_per_second, latency_rate * 0.99);
}

TEST_P(CycleModelSweep, ResourceModelMonotoneInEngines)
{
    const auto p = GetParam();
    auto hw = hwOf(p);
    const auto small = estimateResources(hw);
    hw.p_be *= 2;
    const auto big = estimateResources(hw);
    EXPECT_GT(big.dsps, small.dsps);
    EXPECT_GT(big.brams, small.brams);
    EXPECT_GT(big.luts, small.luts);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CycleModelSweep,
    ::testing::Combine(::testing::Values<std::size_t>(8, 32, 96),
                       ::testing::Values<std::size_t>(4, 8),
                       ::testing::Values(12.0, 100.0, 450.0),
                       ::testing::Values<std::size_t>(128, 1024),
                       ::testing::Values<std::size_t>(0, 1)));

/** Analytic per-row formula swept across engine widths and sizes. */
class PerRowFormulaSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 std::size_t>>
{
};

TEST_P(PerRowFormulaSweep, MatchesTraceCycles)
{
    const auto [n, pbu] = GetParam();
    // One FFT over a single row with one engine and unlimited
    // bandwidth isolates the per-row term.
    LayerOp op;
    op.kind = OpKind::Fft;
    op.label = "probe";
    op.rows = 1;
    op.n = n;
    op.in_feats = n;
    op.out_feats = n;
    AcceleratorConfig hw;
    hw.p_be = 1;
    hw.p_bu = pbu;
    hw.bw_gbps = 1e9;
    const auto rep = simulate({op}, hw);
    const double expected =
        static_cast<double>(log2Exact(n)) *
        std::ceil(static_cast<double>(n / 2) /
                  static_cast<double>(pbu));
    EXPECT_NEAR(rep.ops[0].compute_cycles, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PerRowFormulaSweep,
    ::testing::Combine(::testing::Values<std::size_t>(16, 64, 256,
                                                      1024, 4096),
                       ::testing::Values<std::size_t>(1, 4, 16)));

} // namespace
} // namespace sim
} // namespace fabnet
