/**
 * @file fft_test.cpp
 * FFT correctness: against the naive DFT, inverse round trips,
 * linearity, Parseval, and the FNet 2-D mixer and its adjoint.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "butterfly/fft.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace fabnet {
namespace {

std::vector<Complex>
randomComplex(std::size_t n, Rng &rng)
{
    std::vector<Complex> v(n);
    for (auto &c : v)
        c = Complex(rng.normal(), rng.normal());
    return v;
}

float
maxDiff(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

TEST(FftHelpers, PowerOfTwoPredicates)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(768));
    EXPECT_EQ(nextPowerOfTwo(768), 1024u);
    EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(log2Exact(256), 8u);
    EXPECT_THROW(log2Exact(100), std::invalid_argument);
}

TEST(FftHelpers, BitReverse)
{
    EXPECT_EQ(bitReverse(0, 4), 0u);
    EXPECT_EQ(bitReverse(1, 4), 8u);
    EXPECT_EQ(bitReverse(0b0011, 4), 0b1100u);
    EXPECT_EQ(bitReverse(0b101, 3), 0b101u);
    // Involution property.
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(bitReverse(bitReverse(i, 5), 5), i);
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<Complex> x(8, Complex(0, 0));
    x[0] = Complex(1, 0);
    fftInPlace(x);
    for (const auto &c : x) {
        EXPECT_NEAR(c.real(), 1.0f, 1e-5f);
        EXPECT_NEAR(c.imag(), 0.0f, 1e-5f);
    }
}

TEST(Fft, ConstantGivesImpulse)
{
    std::vector<Complex> x(16, Complex(1, 0));
    fftInPlace(x);
    EXPECT_NEAR(x[0].real(), 16.0f, 1e-4f);
    for (std::size_t i = 1; i < 16; ++i)
        EXPECT_NEAR(std::abs(x[i]), 0.0f, 1e-4f);
}

class FftVsDftTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FftVsDftTest, MatchesNaiveDft)
{
    const std::size_t n = GetParam();
    Rng rng(n);
    auto x = randomComplex(n, rng);
    auto ref = dftReference(x);
    auto fast = x;
    fftInPlace(fast);
    EXPECT_LT(maxDiff(fast, ref), 1e-2f * std::sqrt((float)n));
}

TEST_P(FftVsDftTest, InverseRoundTrip)
{
    const std::size_t n = GetParam();
    Rng rng(n + 7);
    auto x = randomComplex(n, rng);
    auto y = x;
    fftInPlace(y, false);
    fftInPlace(y, true);
    for (auto &c : y)
        c /= static_cast<float>(n);
    EXPECT_LT(maxDiff(x, y), 1e-3f * std::sqrt((float)n));
}

TEST_P(FftVsDftTest, Linearity)
{
    const std::size_t n = GetParam();
    Rng rng(n + 13);
    auto x = randomComplex(n, rng);
    auto y = randomComplex(n, rng);
    std::vector<Complex> sum(n);
    for (std::size_t i = 0; i < n; ++i)
        sum[i] = x[i] + 2.0f * y[i];
    fftInPlace(x);
    fftInPlace(y);
    fftInPlace(sum);
    std::vector<Complex> expect(n);
    for (std::size_t i = 0; i < n; ++i)
        expect[i] = x[i] + 2.0f * y[i];
    EXPECT_LT(maxDiff(sum, expect), 1e-2f * std::sqrt((float)n));
}

TEST_P(FftVsDftTest, ParsevalEnergyPreserved)
{
    const std::size_t n = GetParam();
    Rng rng(n + 23);
    auto x = randomComplex(n, rng);
    double time_energy = 0.0;
    for (const auto &c : x)
        time_energy += std::norm(c);
    auto f = x;
    fftInPlace(f);
    double freq_energy = 0.0;
    for (const auto &c : f)
        freq_energy += std::norm(c);
    EXPECT_NEAR(freq_energy / n, time_energy,
                1e-3 * std::max(1.0, time_energy));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsDftTest,
                         ::testing::Values(2, 4, 8, 16, 64, 128, 512));

TEST(Fft, RealInputPaddedToPowerOfTwo)
{
    std::vector<float> x = {1, 2, 3}; // pads to 4
    auto f = fftReal(x);
    ASSERT_EQ(f.size(), 4u);
    EXPECT_NEAR(f[0].real(), 6.0f, 1e-5f); // sum
}

TEST(Fft, DftMatrixMatchesTransform)
{
    const std::size_t n = 8;
    Rng rng(99);
    auto x = randomComplex(n, rng);
    auto m = dftMatrix(n);
    std::vector<Complex> via_matrix(n, Complex(0, 0));
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t j = 0; j < n; ++j)
            via_matrix[k] += m[k * n + j] * x[j];
    auto fast = x;
    fftInPlace(fast);
    EXPECT_LT(maxDiff(via_matrix, fast), 1e-3f);
}

TEST(FourierMix, MatchesDirect2dDftRealPart)
{
    Rng rng(7);
    const std::size_t b = 2, t = 8, d = 4;
    Tensor x = rng.normalTensor({b, t, d});
    Tensor y = fourierMix2D(x);

    // Direct 2-D DFT on batch element 0.
    auto fd = dftMatrix(d);
    auto ft = dftMatrix(t);
    for (std::size_t tt = 0; tt < t; ++tt) {
        for (std::size_t dd = 0; dd < d; ++dd) {
            Complex acc(0, 0);
            for (std::size_t u = 0; u < t; ++u)
                for (std::size_t v = 0; v < d; ++v)
                    acc += ft[tt * t + u] * fd[dd * d + v] *
                           Complex(x.at(0, u, v), 0.0f);
            EXPECT_NEAR(y.at(0, tt, dd), acc.real(), 2e-3f)
                << "at (" << tt << "," << dd << ")";
        }
    }
}

TEST(FourierMix, RequiresPowerOfTwoDims)
{
    Tensor bad = Tensor::zeros(1, 6, 4);
    EXPECT_THROW(fourierMix2D(bad), std::invalid_argument);
    Tensor bad2 = Tensor::zeros(1, 8, 5);
    EXPECT_THROW(fourierMix2D(bad2), std::invalid_argument);
}

TEST(FourierMix, AdjointIdentity)
{
    // <F(x), y> == <x, F*(y)> for the real-part 2-D transform.
    Rng rng(21);
    Tensor x = rng.normalTensor({1, 8, 8});
    Tensor y = rng.normalTensor({1, 8, 8});
    const Tensor fx = fourierMix2D(x);
    const Tensor fty = fourierMix2DAdjoint(y);
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < fx.size(); ++i) {
        lhs += static_cast<double>(fx.raw()[i]) * y.raw()[i];
        rhs += static_cast<double>(x.raw()[i]) * fty.raw()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

TEST(FourierMix, MixesTokens)
{
    // A single-token impulse must spread over every token (the reason
    // the FBfly block can replace attention).
    Tensor x = Tensor::zeros(1, 8, 4);
    x.at(0, 3, 1) = 1.0f;
    Tensor y = fourierMix2D(x);
    std::size_t touched = 0;
    for (std::size_t t = 0; t < 8; ++t)
        for (std::size_t d = 0; d < 4; ++d)
            if (std::fabs(y.at(0, t, d)) > 1e-6f)
                ++touched;
    // Most positions see the impulse (a handful land on exact zeros
    // of the cosine product).
    EXPECT_GE(touched, 24u);
}

} // namespace
} // namespace fabnet
