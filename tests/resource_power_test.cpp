/**
 * @file resource_power_test.cpp
 * Analytical resource model (Table VII anchors) and power model
 * (Table VI anchors).
 */
#include <gtest/gtest.h>

#include "sim/power.h"
#include "sim/resource.h"

namespace fabnet {
namespace sim {
namespace {

AcceleratorConfig
beDesign(std::size_t p_be)
{
    AcceleratorConfig hw;
    hw.p_be = p_be;
    hw.p_bu = 4;
    hw.bw_gbps = 450.0;
    return hw;
}

TEST(Resource, DspFormulaMatchesPaper)
{
    // BE-40 uses 640 DSPs, BE-120 uses 1920 in BP (Table V / VII).
    EXPECT_EQ(estimateResources(beDesign(40)).dsps, 640u);
    EXPECT_EQ(estimateResources(beDesign(120)).dsps, 1920u);

    AcceleratorConfig with_ap = beDesign(120);
    with_ap.p_head = 12;
    with_ap.p_qk = 40;
    with_ap.p_sv = 40;
    EXPECT_EQ(estimateResources(with_ap).dsps, 1920u + 960u);
}

TEST(Resource, BramAnchorsWithinTolerance)
{
    // Table VII: BE-40 -> 338 BRAMs, BE-120 -> 978 BRAMs.
    const auto r40 = estimateResources(beDesign(40));
    const auto r120 = estimateResources(beDesign(120));
    EXPECT_NEAR(static_cast<double>(r40.brams), 338.0, 10.0);
    EXPECT_NEAR(static_cast<double>(r120.brams), 978.0, 20.0);
}

TEST(Resource, LutFfAnchorsWithinTolerance)
{
    const auto r40 = estimateResources(beDesign(40));
    const auto r120 = estimateResources(beDesign(120));
    EXPECT_NEAR(static_cast<double>(r40.luts), 358'609.0,
                358'609.0 * 0.02);
    EXPECT_NEAR(static_cast<double>(r120.luts), 1'034'610.0,
                1'034'610.0 * 0.02);
    EXPECT_NEAR(static_cast<double>(r40.registers), 536'810.0,
                536'810.0 * 0.04);
    EXPECT_NEAR(static_cast<double>(r120.registers), 1'648'695.0,
                1'648'695.0 * 0.02);
}

TEST(Resource, AnchorDesignsFitVcu128)
{
    const auto dev = vcu128Device();
    EXPECT_TRUE(estimateResources(beDesign(40)).fitsOn(dev));
    EXPECT_TRUE(estimateResources(beDesign(120)).fitsOn(dev));
    // An absurd design does not fit.
    EXPECT_FALSE(estimateResources(beDesign(400)).fitsOn(dev));
}

TEST(Resource, EdgeDesignFitsZynq)
{
    AcceleratorConfig hw = zynqEdge();
    const auto r = estimateResources(hw);
    // The Zynq 7045 only has 900 DSPs; 512 multipliers fit.
    EXPECT_LE(r.dsps, 900u);
    EXPECT_EQ(r.hbm_stacks, 0u);
}

TEST(Resource, MonotoneInEngines)
{
    std::size_t prev_bram = 0, prev_lut = 0;
    for (std::size_t pbe : {8u, 16u, 32u, 64u, 128u}) {
        const auto r = estimateResources(beDesign(pbe));
        EXPECT_GT(r.brams, prev_bram);
        EXPECT_GT(r.luts, prev_lut);
        prev_bram = r.brams;
        prev_lut = r.luts;
    }
}

TEST(Resource, UtilisationFractionSane)
{
    const auto dev = vcu128Device();
    const auto r120 = estimateResources(beDesign(120));
    // Table VII: BE-120 LUT utilisation 79.3% dominates.
    EXPECT_NEAR(r120.utilisation(dev), 0.793, 0.02);
}

TEST(Power, TableViAnchorsReproduced)
{
    const auto p40 = estimatePower(beDesign(40));
    EXPECT_NEAR(p40.clocking, 2.668, 0.05);
    EXPECT_NEAR(p40.logic_signal, 2.381, 0.05);
    EXPECT_NEAR(p40.dsp, 0.338, 0.02);
    EXPECT_NEAR(p40.memory, 5.325, 0.05);
    EXPECT_NEAR(p40.static_power, 3.368, 0.05);

    const auto p120 = estimatePower(beDesign(120));
    EXPECT_NEAR(p120.clocking, 6.882, 0.05);
    EXPECT_NEAR(p120.logic_signal, 7.732, 0.05);
    EXPECT_NEAR(p120.dsp, 1.437, 0.03);
    EXPECT_NEAR(p120.memory, 6.142, 0.05);
    EXPECT_NEAR(p120.static_power, 3.665, 0.05);
}

TEST(Power, DynamicDominatesAsInPaper)
{
    // "In both designs, the dynamic power accounts for more than 70%
    // of the total power consumption."
    for (std::size_t pbe : {40u, 120u}) {
        const auto p = estimatePower(beDesign(pbe));
        EXPECT_GT(p.dynamic() / p.total(), 0.70) << "BE-" << pbe;
    }
}

TEST(Power, MemoryShareShrinksWithScale)
{
    // Table VI: memory is 37.5% of dynamic power at BE-40 but only
    // 23.6% at BE-120 - compute power grows faster than memory power.
    const auto p40 = estimatePower(beDesign(40));
    const auto p120 = estimatePower(beDesign(120));
    EXPECT_GT(p40.memory / p40.total(), p120.memory / p120.total());
}

TEST(Power, EdgeTargetWithinMobileEnvelope)
{
    const auto p = estimatePower(zynqEdge(), PowerTarget::Zynq7045);
    EXPECT_LT(p.total(), 8.0);
    EXPECT_GT(p.total(), 2.0);
}

TEST(Power, EnergyPerInference)
{
    PowerBreakdown p;
    p.clocking = 2.0;
    p.static_power = 1.0;
    EXPECT_NEAR(energyPerInference(p, 0.5), 1.5, 1e-9);
}

TEST(Power, MonotoneInEngines)
{
    double prev = 0.0;
    for (std::size_t pbe : {8u, 40u, 80u, 120u}) {
        const double total = estimatePower(beDesign(pbe)).total();
        EXPECT_GT(total, prev);
        prev = total;
    }
}

} // namespace
} // namespace sim
} // namespace fabnet
