/**
 * @file embedding_test.cpp
 * Embedding, pooled classifier head and softmax cross-entropy loss.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/embedding.h"
#include "tensor/rng.h"

namespace fabnet {
namespace nn {
namespace {

TEST(Embedding, LookupAddsTokenAndPosition)
{
    Rng rng(1);
    Embedding emb(10, 4, 3, rng);
    std::vector<int> tokens = {2, 5};
    Tensor y = emb.forward(tokens, 1, 2);
    ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 2, 3}));

    std::vector<ParamRef> ps;
    emb.collectParams(ps);
    const auto &tok = *ps[0].value;
    const auto &pos = *ps[1].value;
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_NEAR(y.at(0, 0, j), tok[2 * 3 + j] + pos[0 * 3 + j],
                    1e-6f);
        EXPECT_NEAR(y.at(0, 1, j), tok[5 * 3 + j] + pos[1 * 3 + j],
                    1e-6f);
    }
}

TEST(Embedding, BackwardAccumulatesPerToken)
{
    Rng rng(2);
    Embedding emb(6, 4, 2, rng);
    std::vector<int> tokens = {3, 3}; // same token twice
    emb.forward(tokens, 1, 2);

    Tensor g = Tensor::zeros(1, 2, 2);
    g.fill(1.0f);
    emb.backward(g);

    std::vector<ParamRef> ps;
    emb.collectParams(ps);
    const auto &gtok = *ps[0].grad;
    const auto &gpos = *ps[1].grad;
    // Token 3 is used by both positions: gradient 2 per channel.
    EXPECT_FLOAT_EQ(gtok[3 * 2 + 0], 2.0f);
    EXPECT_FLOAT_EQ(gtok[3 * 2 + 1], 2.0f);
    // Each position used once.
    EXPECT_FLOAT_EQ(gpos[0], 1.0f);
    EXPECT_FLOAT_EQ(gpos[2], 1.0f);
}

TEST(Embedding, RejectsBadInput)
{
    Rng rng(3);
    Embedding emb(6, 4, 2, rng);
    std::vector<int> too_long(10, 0);
    EXPECT_THROW(emb.forward(too_long, 1, 10), std::invalid_argument);
    std::vector<int> bad_id = {7, 0};
    EXPECT_THROW(emb.forward(bad_id, 1, 2), std::out_of_range);
}

TEST(MeanPoolClassifier, PoolsThenProjects)
{
    Rng rng(4);
    MeanPoolClassifier head(4, 3, rng);
    Tensor x = Tensor::zeros(1, 2, 4);
    for (std::size_t j = 0; j < 4; ++j) {
        x.at(0, 0, j) = 1.0f;
        x.at(0, 1, j) = 3.0f;
    }
    Tensor logits = head.forward(x);
    ASSERT_EQ(logits.shape(), (std::vector<std::size_t>{1, 3}));
    // pooled = 2.0 everywhere; verify against direct projection.
    std::vector<ParamRef> ps;
    head.collectParams(ps);
    const auto &w = *ps[0].value;
    const auto &b = *ps[1].value;
    for (std::size_t c = 0; c < 3; ++c) {
        float acc = b[c];
        for (std::size_t j = 0; j < 4; ++j)
            acc += w[c * 4 + j] * 2.0f;
        EXPECT_NEAR(logits.at(0, c), acc, 1e-5f);
    }
}

TEST(MeanPoolClassifier, BackwardSpreadsGradOverTokens)
{
    Rng rng(5);
    MeanPoolClassifier head(4, 2, rng);
    Rng rng2(6);
    Tensor x = rng2.normalTensor({2, 3, 4});
    head.forward(x);
    Tensor g = Tensor::zeros(2, 2);
    g.fill(1.0f);
    Tensor gx = head.backward(g);
    ASSERT_EQ(gx.shape(), x.shape());
    // Every token of a batch element receives the same gradient.
    for (std::size_t b = 0; b < 2; ++b)
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_NEAR(gx.at(b, 0, j), gx.at(b, 1, j), 1e-6f);
            EXPECT_NEAR(gx.at(b, 0, j), gx.at(b, 2, j), 1e-6f);
        }
}

TEST(CrossEntropy, KnownValues)
{
    // Uniform logits over 4 classes -> loss = ln 4.
    Tensor logits = Tensor::zeros(1, 4);
    Tensor grad;
    const float loss = softmaxCrossEntropy(logits, {2}, grad);
    EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
    // Gradient: p - onehot, scaled by 1/batch.
    EXPECT_NEAR(grad.at(0, 2), 0.25f - 1.0f, 1e-5f);
    EXPECT_NEAR(grad.at(0, 0), 0.25f, 1e-5f);
}

TEST(CrossEntropy, ConfidentCorrectPredictionHasLowLoss)
{
    Tensor logits = Tensor::fromMatrix(1, 3, {10.0f, -5.0f, -5.0f});
    Tensor grad;
    const float loss = softmaxCrossEntropy(logits, {0}, grad);
    EXPECT_LT(loss, 1e-3f);
}

TEST(CrossEntropy, GradientSumsToZeroPerRow)
{
    Rng rng(7);
    Tensor logits = rng.normalTensor({4, 5}, 2.0f);
    Tensor grad;
    softmaxCrossEntropy(logits, {0, 1, 2, 3}, grad);
    for (std::size_t b = 0; b < 4; ++b) {
        double s = 0.0;
        for (std::size_t c = 0; c < 5; ++c)
            s += grad.at(b, c);
        EXPECT_NEAR(s, 0.0, 1e-5);
    }
}

TEST(CrossEntropy, FiniteDifferenceGradient)
{
    Rng rng(8);
    Tensor logits = rng.normalTensor({2, 3});
    const std::vector<int> labels = {1, 2};
    Tensor grad;
    softmaxCrossEntropy(logits, labels, grad);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        Tensor lp = logits, lm = logits;
        lp.raw()[i] += eps;
        lm.raw()[i] -= eps;
        Tensor tmp;
        const float fp = softmaxCrossEntropy(lp, labels, tmp);
        const float fm = softmaxCrossEntropy(lm, labels, tmp);
        EXPECT_NEAR(grad.raw()[i], (fp - fm) / (2 * eps), 1e-3f);
    }
}

TEST(Argmax, PicksLargestLogit)
{
    Tensor logits =
        Tensor::fromMatrix(2, 3, {0.1f, 0.9f, 0.2f, 5.0f, -1.0f, 3.0f});
    const auto pred = argmaxRows(logits);
    EXPECT_EQ(pred[0], 1);
    EXPECT_EQ(pred[1], 0);
}

} // namespace
} // namespace nn
} // namespace fabnet
