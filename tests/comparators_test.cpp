/**
 * @file comparators_test.cpp
 * Device roofline models and the SOTA accelerator catalogue with the
 * paper's normalisation methodology.
 */
#include <gtest/gtest.h>

#include "comparators/devices.h"
#include "comparators/sota.h"
#include "model/config.h"

namespace fabnet {
namespace comparators {
namespace {

TEST(Devices, SpecOrdering)
{
    EXPECT_GT(nvidiaV100().peak_gflops, nvidiaTitanXp().peak_gflops);
    EXPECT_GT(nvidiaTitanXp().peak_gflops, jetsonNano().peak_gflops);
    EXPECT_GT(jetsonNano().peak_gflops, raspberryPi4().peak_gflops);
}

TEST(Devices, ServerGpuFasterThanEdge)
{
    const auto cfg = fabnetBase();
    const auto v100 = runOnDevice(nvidiaV100(), cfg, 512);
    const auto nano = runOnDevice(jetsonNano(), cfg, 512);
    const auto rpi = runOnDevice(raspberryPi4(), cfg, 512);
    ASSERT_FALSE(v100.oom);
    ASSERT_FALSE(nano.oom);
    ASSERT_FALSE(rpi.oom);
    EXPECT_LT(v100.seconds, nano.seconds);
    EXPECT_LT(nano.seconds, rpi.seconds);
}

TEST(Devices, SmallModelsAreOverheadBound)
{
    // The reason the FPGA wins at short sequences (Fig. 20): GPU time
    // is dominated by per-kernel overhead, not compute.
    const auto lat = runOnDevice(nvidiaV100(), fabnetBase(), 128);
    EXPECT_GT(lat.overhead_s, lat.compute_s);
}

TEST(Devices, LongSequencesShiftToCompute)
{
    const auto short_lat = runOnDevice(nvidiaV100(), fabnetBase(), 128);
    const auto long_lat =
        runOnDevice(nvidiaV100(), fabnetBase(), 4096);
    EXPECT_GT(long_lat.compute_s / long_lat.seconds,
              short_lat.compute_s / short_lat.seconds);
}

TEST(Devices, RaspberryPiOomOnLargeLongSequence)
{
    // Fig. 20 footnote: FABNet-Large with seq > 768 OOMs on the Pi.
    const auto large = fabnetLarge();
    EXPECT_FALSE(runOnDevice(raspberryPi4(), large, 512).oom);
    EXPECT_TRUE(runOnDevice(raspberryPi4(), large, 1024).oom);
    // Server GPUs are fine.
    EXPECT_FALSE(runOnDevice(nvidiaV100(), large, 1024).oom);
}

TEST(Devices, LatencyMonotoneInSequence)
{
    double prev = 0.0;
    for (std::size_t seq : {128u, 256u, 512u, 1024u}) {
        const auto lat = runOnDevice(nvidiaV100(), bertBase(), seq);
        EXPECT_GT(lat.seconds, prev * 0.999);
        prev = lat.seconds;
    }
}

TEST(Devices, GopsMetrics)
{
    const auto dev = nvidiaV100();
    const auto lat = runOnDevice(dev, fabnetBase(), 1024);
    EXPECT_GT(deviceGops(lat), 0.0);
    EXPECT_NEAR(deviceGopsPerWatt(dev, lat),
                deviceGops(lat) / dev.power_w, 1e-9);
}

TEST(Sota, CatalogueMatchesTableV)
{
    const auto cat = sotaCatalog();
    ASSERT_EQ(cat.size(), 7u);
    // Spot-check the published (normalised) rows.
    EXPECT_EQ(cat[0].name, "A3");
    EXPECT_NEAR(cat[0].latency_ms, 56.0, 1e-9);
    EXPECT_NEAR(cat[0].power_w, 1.217, 1e-9);
    EXPECT_EQ(cat[5].name, "DOTA");
    EXPECT_NEAR(cat[5].latency_ms, 34.1, 1e-9);
    EXPECT_EQ(cat[6].name, "FTRANS");
    EXPECT_NEAR(cat[6].power_w, 25.130, 1e-9);
}

TEST(Sota, ThroughputAndEnergyDerivedConsistently)
{
    for (const auto &acc : sotaCatalog()) {
        EXPECT_NEAR(acc.throughputPredPerS(), 1e3 / acc.latency_ms,
                    1e-6);
        EXPECT_NEAR(acc.energyEffPredPerJ(),
                    acc.throughputPredPerS() / acc.power_w, 1e-6);
    }
    // Table V: SpAtten 20.49 Pred/s and 19.33 Pred/J.
    const auto spatten = sotaCatalog()[1];
    EXPECT_NEAR(spatten.throughputPredPerS(), 20.49, 0.05);
    EXPECT_NEAR(spatten.energyEffPredPerJ(), 19.33, 0.05);
}

TEST(Sota, LinearScalingMethodology)
{
    // The paper's worked example: a design published at 12,000
    // multipliers slows by 93.75x when normalised to 128.
    const double scaled =
        scaleLatencyToBudget(1.0, 12'000, 1.0, 128, 1.0);
    EXPECT_NEAR(scaled, 93.75, 1e-6);
    // Sanger's power: 2243 mW at 1024 mults -> 280.375 mW at 128.
    const double p = scalePowerToBudget(2.243, 1024, 128);
    EXPECT_NEAR(p, 0.280375, 1e-6);
    // Frequency scaling folds in linearly.
    EXPECT_NEAR(scaleLatencyToBudget(10.0, 128, 1.0, 128, 0.2), 50.0,
                1e-9);
}

TEST(Sota, PaperWorkloadRanking)
{
    // On the Table V workload the paper's design (2.4 ms) beats every
    // SOTA row by 14.2-25.6x; verify the catalogue preserves that gap.
    const double ours_ms = 2.4;
    for (const auto &acc : sotaCatalog()) {
        const double speedup = acc.latency_ms / ours_ms;
        EXPECT_GT(speedup, 14.0) << acc.name;
        EXPECT_LT(speedup, 26.0) << acc.name;
    }
}

} // namespace
} // namespace comparators
} // namespace fabnet
