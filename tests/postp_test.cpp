/**
 * @file postp_test.cpp
 * Functional fp16 PostP / softmax units, cross-validated against the
 * fp32 software reference (Appendix-C style).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/postp.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace fabnet {
namespace sim {
namespace {

std::vector<float>
randomRow(std::size_t n, unsigned seed, float scale = 1.0f)
{
    Rng rng(seed);
    std::vector<float> row(n);
    for (auto &v : row)
        v = rng.normal(scale);
    return row;
}

TEST(LayerNormUnit, MatchesFp32ReferenceWithinHalfPrecision)
{
    const std::size_t n = 64;
    const auto row = randomRow(n, 1, 2.0f);
    std::vector<float> gamma(n, 1.0f), beta(n, 0.0f);
    Rng rng(2);
    for (auto &g : gamma)
        g = 1.0f + rng.normal(0.1f);
    for (auto &b : beta)
        b = rng.normal(0.1f);

    LayerNormUnit unit;
    const auto hw = unit.process(row, gamma, beta);

    Tensor x = Tensor::fromMatrix(1, n, row);
    Tensor ref = ops::layerNormLastDim(x, gamma, beta);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(hw[i], ref.at(0, i),
                    2e-2f * std::max(1.0f, std::fabs(ref.at(0, i))))
            << "element " << i;
}

TEST(LayerNormUnit, OutputIsNormalised)
{
    const std::size_t n = 128;
    const auto row = randomRow(n, 3, 5.0f);
    std::vector<float> gamma(n, 1.0f), beta(n, 0.0f);
    LayerNormUnit unit;
    const auto out = unit.process(row, gamma, beta);
    double mean = 0.0;
    for (float v : out)
        mean += v;
    mean /= n;
    double var = 0.0;
    for (float v : out)
        var += (v - mean) * (v - mean);
    var /= n;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(LayerNormUnit, AffineSizeMismatchThrows)
{
    LayerNormUnit unit;
    std::vector<float> row(8, 1.0f), gamma(4, 1.0f), beta(8, 0.0f);
    EXPECT_THROW(unit.process(row, gamma, beta),
                 std::invalid_argument);
}

TEST(ShortcutAddUnit, AddsInHalfPrecision)
{
    ShortcutAddUnit unit;
    const auto out = unit.process({1.0f, 0.1f}, {2.0f, 0.2f});
    EXPECT_FLOAT_EQ(out[0], 3.0f);
    EXPECT_NEAR(out[1],
                (Half(0.1f) + Half(0.2f)).toFloat(), 1e-6f);
}

TEST(ShortcutAddUnit, SizeMismatchThrows)
{
    ShortcutAddUnit unit;
    EXPECT_THROW(unit.process({1.0f}, {1.0f, 2.0f}),
                 std::invalid_argument);
}

TEST(SoftmaxUnit, MatchesFp32Reference)
{
    const std::size_t n = 64;
    const auto row = randomRow(n, 5, 3.0f);
    SoftmaxUnit unit;
    const auto hw = unit.process(row);

    Tensor x = Tensor::fromMatrix(1, n, row);
    Tensor ref = ops::softmaxLastDim(x);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(hw[i], ref.at(0, i), 5e-3f) << "element " << i;
}

TEST(SoftmaxUnit, SumsToOne)
{
    SoftmaxUnit unit;
    for (std::size_t n : {4u, 64u, 512u}) {
        const auto out = unit.process(randomRow(n, n, 4.0f));
        double sum = 0.0;
        for (float v : out)
            sum += v;
        EXPECT_NEAR(sum, 1.0, 5e-3) << "n=" << n;
    }
}

TEST(SoftmaxUnit, StableForLargeScores)
{
    // Raw fp16 exp(20) overflows; the streaming max-subtraction must
    // keep the unit finite (why the hardware subtracts the max).
    SoftmaxUnit unit;
    const auto out = unit.process({20.0f, 20.0f, 20.0f, 20.0f});
    for (float v : out) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_NEAR(v, 0.25f, 1e-3f);
    }
}

TEST(SoftmaxUnit, LongRowDenominatorDoesNotSaturate)
{
    // 4096 near-equal scores: an fp16 accumulator would clip at 65504
    // ... a 4096-term sum of ~1.0 stays fine, but make the terms large
    // enough that fp16 accumulation would saturate while the unit's
    // fp32 accumulator must not.
    std::vector<float> row(4096, 5.0f);
    row[0] = 5.2f;
    SoftmaxUnit unit;
    const auto out = unit.process(row);
    double sum = 0.0;
    for (float v : out)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-2);
    EXPECT_GT(out[0], out[1]); // ordering preserved
}

TEST(SoftmaxUnit, EmptyRow)
{
    SoftmaxUnit unit;
    EXPECT_TRUE(unit.process({}).empty());
}

} // namespace
} // namespace sim
} // namespace fabnet
