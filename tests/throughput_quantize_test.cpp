/**
 * @file throughput_quantize_test.cpp
 * Batch throughput / roofline modelling and fp16 weight quantisation
 * of trained models.
 */
#include <gtest/gtest.h>

#include "data/lra.h"
#include "model/builder.h"
#include "nn/quantize.h"
#include "sim/throughput.h"
#include "tensor/ops.h"

namespace fabnet {
namespace {

ModelConfig
smallFabnet()
{
    ModelConfig c;
    c.kind = ModelKind::FABNet;
    c.d_hid = 64;
    c.r_ffn = 4;
    c.n_total = 2;
    c.heads = 2;
    return c;
}

sim::AcceleratorConfig
smallHw()
{
    sim::AcceleratorConfig hw;
    hw.p_be = 32;
    hw.p_bu = 4;
    hw.bw_gbps = 100.0;
    return hw;
}

TEST(Throughput, BatchOneEqualsLatency)
{
    const auto cfg = smallFabnet();
    const auto hw = smallHw();
    const auto lat = sim::simulateModel(cfg, 256, hw);
    const auto thr = sim::estimateThroughput(cfg, 256, hw, 1);
    EXPECT_NEAR(thr.total_cycles, lat.total_cycles, 1.0);
}

TEST(Throughput, SteadyStateBeatsLatency)
{
    const auto cfg = smallFabnet();
    const auto hw = smallHw();
    const auto thr = sim::estimateThroughput(cfg, 256, hw, 8);
    EXPECT_LT(thr.steady_state_cycles, thr.first_sample_cycles);
    EXPECT_NEAR(thr.total_cycles,
                thr.first_sample_cycles +
                    7.0 * thr.steady_state_cycles,
                1.0);
}

TEST(Throughput, ScalesLinearlyInBatch)
{
    const auto cfg = smallFabnet();
    const auto hw = smallHw();
    const auto t8 = sim::estimateThroughput(cfg, 256, hw, 8);
    const auto t64 = sim::estimateThroughput(cfg, 256, hw, 64);
    // Throughput improves with batch and approaches the steady state.
    EXPECT_GT(t64.samples_per_second, t8.samples_per_second);
    const double asymptote =
        hw.freq_ghz * 1e9 / t64.steady_state_cycles;
    EXPECT_NEAR(t64.samples_per_second, asymptote,
                0.2 * asymptote);
}

TEST(Throughput, NoDoubleBufferNoOverlap)
{
    const auto cfg = smallFabnet();
    auto hw = smallHw();
    hw.double_buffer = false;
    const auto thr = sim::estimateThroughput(cfg, 256, hw, 4);
    EXPECT_NEAR(thr.steady_state_cycles, thr.first_sample_cycles, 1.0);
}

TEST(Roofline, UtilisationsBounded)
{
    const auto cfg = smallFabnet();
    const auto hw = smallHw();
    const auto rep = sim::simulateModel(cfg, 1024, hw);
    const auto s = sim::summariseRoofline(cfg, 1024, hw, rep);
    EXPECT_GT(s.achieved_gops, 0.0);
    EXPECT_LT(s.compute_utilisation, 1.0);
    EXPECT_GT(s.compute_utilisation, 0.0);
    EXPECT_LE(s.bandwidth_utilisation, 1.0 + 1e-9);
    EXPECT_GT(s.arithmetic_intensity, 0.0);
}

TEST(Roofline, LowBandwidthFlagsMemoryBound)
{
    const auto cfg = smallFabnet();
    auto hw = smallHw();
    hw.bw_gbps = 0.5;
    const auto rep = sim::simulateModel(cfg, 1024, hw);
    const auto s = sim::summariseRoofline(cfg, 1024, hw, rep);
    EXPECT_TRUE(s.memory_bound);
}

TEST(Quantize, ErrorBoundedByHalfUlp)
{
    Rng rng(3);
    ModelConfig cfg = smallFabnet();
    cfg.vocab = 64;
    cfg.classes = 2;
    cfg.max_seq = 32;
    auto model = buildModel(cfg, rng);
    auto params = model->params();
    const float pre = nn::maxQuantizationError(params);
    EXPECT_GT(pre, 0.0f);
    EXPECT_LT(pre, 1e-2f); // weights are O(1): half ulp ~ 5e-4

    nn::quantizeParamsToHalf(params);
    EXPECT_FLOAT_EQ(nn::maxQuantizationError(params), 0.0f);
}

TEST(Quantize, TrainedAccuracyPreservedInFp16)
{
    // The paper deploys at fp16: a trained model must keep its
    // accuracy after weight quantisation.
    Rng rng(11);
    auto gen = data::makeLraGenerator("Text", 32);
    auto train = gen->dataset(96, rng);
    auto test = gen->dataset(64, rng);

    ModelConfig cfg = smallFabnet();
    cfg.d_hid = 32;
    cfg.vocab = 256;
    cfg.classes = 2;
    cfg.max_seq = 32;
    auto model = buildModel(cfg, rng);
    const double acc_fp32 = trainClassifier(*model, train, test, 32,
                                            3, 16, 2e-3f, rng);

    nn::quantizeParamsToHalf(model->params());
    const double acc_fp16 = model->evaluate(test, 32);
    EXPECT_NEAR(acc_fp16, acc_fp32, 0.05);
}

TEST(Quantize, LogitsShiftIsSmall)
{
    Rng rng(13);
    ModelConfig cfg = smallFabnet();
    cfg.vocab = 64;
    cfg.classes = 4;
    cfg.max_seq = 16;
    auto model = buildModel(cfg, rng);
    std::vector<int> tokens(16, 7);
    Tensor before = model->forward(tokens, 1, 16);
    nn::quantizeParamsToHalf(model->params());
    Tensor after = model->forward(tokens, 1, 16);
    EXPECT_LT(ops::maxAbsDiff(before, after),
              0.02f * std::max(1.0f, ops::maxAbs(before)));
}

} // namespace
} // namespace fabnet
