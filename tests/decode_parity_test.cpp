/**
 * @file decode_parity_test.cpp
 * The decode bitwise contract (nn/decode.h, `ctest -L decode-parity`):
 * incremental K/V-cached generation - prefill() then a decodeStep()
 * per token - produces logits BITWISE identical to a full causal
 * recompute (forwardFull) at every step, at thread counts {1, 4, 8},
 * for fp32 and int8/fp16-quantized linears, Dense and Butterfly
 * projections, and under any admission/eviction interleaving of the
 * live set. Plus the causal+ragged audit regression: causal
 * MultiHeadAttention's ragged path vs its dense masked path with odd
 * straddling lengths.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "model/generator.h"
#include "nn/attention.h"
#include "nn/dense.h"
#include "tensor/quant.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fabnet {
namespace {

using testutil::bitwiseEqual;
using testutil::forEachThreadCount;
using testutil::raggedInput;

ModelConfig
genCfg(ModelKind kind)
{
    ModelConfig cfg;
    cfg.kind = kind;
    cfg.vocab = 32;
    cfg.max_seq = 32;
    cfg.d_hid = 16;
    cfg.r_ffn = 2;
    cfg.n_total = 2;
    cfg.n_abfly = kind == ModelKind::FABNet ? 2 : 0;
    cfg.heads = 2;
    cfg.classes = 2;
    cfg.causal = true;
    return cfg;
}

/** Mixed-length prompts (odd, straddling, equal) in the vocab. */
std::vector<std::vector<int>>
mixedPrompts(std::size_t vocab, unsigned seed)
{
    return testutil::makeRequests({5, 1, 12, 7, 7, 3}, vocab, seed);
}

/** Greedy full-recompute reference: next token of each sequence. */
std::vector<int>
referenceTokens(CausalGenerator &gen,
                const std::vector<std::vector<int>> &seqs)
{
    return nn::argmaxRows(gen.forwardFull(seqs));
}

/**
 * The core parity loop: prefill once, then decode @p steps greedy
 * tokens, comparing every step's incremental logits BITWISE against
 * forwardFull of the same (prompt + generated) sequences, computed at
 * one thread. Runs the incremental side at every kThreadCounts entry.
 */
void
expectDecodeParity(CausalGenerator &gen,
                   const std::vector<std::vector<int>> &prompts,
                   std::size_t steps, const std::string &tag)
{
    // Baseline token streams + logits from full recompute at 1 thread.
    runtime::setNumThreads(1);
    std::vector<std::vector<int>> ref_seqs = prompts;
    std::vector<Tensor> ref_logits; // per step, [n, vocab]
    for (std::size_t s = 0; s <= steps; ++s) {
        Tensor lg = gen.forwardFull(ref_seqs);
        const std::vector<int> toks = nn::argmaxRows(lg);
        ref_logits.push_back(std::move(lg));
        for (std::size_t b = 0; b < ref_seqs.size(); ++b)
            ref_seqs[b].push_back(toks[b]);
    }

    forEachThreadCount([&](std::size_t threads) {
        std::vector<SequenceState> states(prompts.size());
        std::vector<SequenceState *> ptrs;
        for (auto &st : states) {
            st = gen.newState();
            ptrs.push_back(&st);
        }
        Tensor lg = gen.prefill(prompts, ptrs);
        EXPECT_TRUE(bitwiseEqual(lg, ref_logits[0]))
            << tag << " prefill, threads=" << threads;
        std::vector<int> toks = nn::argmaxRows(lg);
        for (std::size_t s = 1; s <= steps; ++s) {
            lg = gen.decodeStep(toks, ptrs);
            EXPECT_TRUE(bitwiseEqual(lg, ref_logits[s]))
                << tag << " step " << s << ", threads=" << threads;
            toks = nn::argmaxRows(lg);
        }
    });
}

using DecodeParityTest = testutil::RuntimeFixture;

// ------------------------------------------------- fp32 decode parity

TEST_F(DecodeParityTest, TransformerDenseProjections)
{
    Rng rng(11);
    auto gen = buildGenerator(genCfg(ModelKind::Transformer), rng);
    expectDecodeParity(*gen, mixedPrompts(gen->vocab(), 21), 6,
                       "transformer");
}

TEST_F(DecodeParityTest, FabnetButterflyProjections)
{
    Rng rng(12);
    auto gen = buildGenerator(genCfg(ModelKind::FABNet), rng);
    expectDecodeParity(*gen, mixedPrompts(gen->vocab(), 22), 6,
                       "fabnet");
}

TEST_F(DecodeParityTest, SingleSequenceToMaxSeq)
{
    // One sequence decoded to the end of the positional table: every
    // step must stay bitwise-parous, including the last legal one.
    Rng rng(13);
    ModelConfig cfg = genCfg(ModelKind::Transformer);
    cfg.max_seq = 12;
    auto gen = buildGenerator(cfg, rng);
    const std::vector<std::vector<int>> prompts =
        testutil::makeRequests({3}, gen->vocab(), 23);
    expectDecodeParity(*gen, prompts, cfg.max_seq - 3 - 1, "to-max-seq");
}

// -------------------------------------------- quantized decode parity

TEST_F(DecodeParityTest, Int8QuantizedParity)
{
    Rng rng(14);
    auto gen = buildGenerator(genCfg(ModelKind::FABNet), rng);
    ASSERT_GT(gen->quantizeLinears(QuantKind::Int8), 0u);
    expectDecodeParity(*gen, mixedPrompts(gen->vocab(), 24), 5, "int8");
}

TEST_F(DecodeParityTest, Fp16QuantizedParity)
{
    Rng rng(15);
    auto gen = buildGenerator(genCfg(ModelKind::Transformer), rng);
    ASSERT_GT(gen->quantizeLinears(QuantKind::Fp16), 0u);
    expectDecodeParity(*gen, mixedPrompts(gen->vocab(), 25), 5, "fp16");
}

// ------------------------------------------- interleaving invariance

TEST_F(DecodeParityTest, AdmissionInterleavingCannotChangeTokens)
{
    // Continuous-batching freedom: decode A solo, admit B mid-flight,
    // retire A, admit C - every step's logits row must be bitwise
    // identical to each sequence's SOLO incremental run. This is the
    // property that lets the scheduler (serve/generation.h) reshuffle
    // the live set between steps.
    Rng rng(16);
    auto gen = buildGenerator(genCfg(ModelKind::FABNet), rng);
    const auto prompts = testutil::makeRequests({5, 9, 2}, gen->vocab(), 26);
    const std::size_t kSteps = 8;

    // Solo baselines: per sequence, per step, the logits row.
    runtime::setNumThreads(1);
    std::vector<std::vector<Tensor>> solo(prompts.size());
    for (std::size_t b = 0; b < prompts.size(); ++b) {
        SequenceState st = gen->newState();
        const std::vector<SequenceState *> p1{&st};
        Tensor lg = gen->prefill({prompts[b]}, p1);
        solo[b].push_back(lg);
        int tok = nn::argmaxRows(lg)[0];
        for (std::size_t s = 1; s < kSteps; ++s) {
            lg = gen->decodeStep({tok}, p1);
            solo[b].push_back(lg);
            tok = nn::argmaxRows(lg)[0];
        }
    }
    const std::size_t vocab = gen->vocab();
    const auto rowsMatch = [&](const Tensor &batch, std::size_t row,
                               std::size_t b, std::size_t step) {
        return std::memcmp(batch.data() + row * vocab,
                           solo[b][step].data(),
                           vocab * sizeof(float)) == 0;
    };

    forEachThreadCount([&](std::size_t threads) {
        std::vector<SequenceState> states(prompts.size());
        for (auto &st : states)
            st = gen->newState();
        std::vector<int> last(prompts.size());
        std::vector<std::size_t> step(prompts.size(), 0);

        // Phase 1: A alone (prefill + 2 steps).
        {
            const std::vector<SequenceState *> pa{&states[0]};
            Tensor lg = gen->prefill({prompts[0]}, pa);
            EXPECT_TRUE(rowsMatch(lg, 0, 0, 0)) << "A prefill solo-joint";
            last[0] = nn::argmaxRows(lg)[0];
            for (int s = 0; s < 2; ++s) {
                lg = gen->decodeStep({last[0]}, pa);
                ++step[0];
                EXPECT_TRUE(rowsMatch(lg, 0, 0, step[0]))
                    << "A step " << step[0] << " threads=" << threads;
                last[0] = nn::argmaxRows(lg)[0];
            }
        }
        // Phase 2: admit B, decode {A, B} jointly for 2 steps.
        {
            const std::vector<SequenceState *> pb{&states[1]};
            Tensor lg = gen->prefill({prompts[1]}, pb);
            EXPECT_TRUE(rowsMatch(lg, 0, 1, 0)) << "B prefill mid-flight";
            last[1] = nn::argmaxRows(lg)[0];
            const std::vector<SequenceState *> ab{&states[0], &states[1]};
            for (int s = 0; s < 2; ++s) {
                lg = gen->decodeStep({last[0], last[1]}, ab);
                ++step[0];
                ++step[1];
                EXPECT_TRUE(rowsMatch(lg, 0, 0, step[0]))
                    << "A joint step " << step[0];
                EXPECT_TRUE(rowsMatch(lg, 1, 1, step[1]))
                    << "B joint step " << step[1];
                const auto t = nn::argmaxRows(lg);
                last[0] = t[0];
                last[1] = t[1];
            }
        }
        // Phase 3: retire A, admit C; decode {C, B} (order swapped!).
        {
            const std::vector<SequenceState *> pc{&states[2]};
            Tensor lg = gen->prefill({prompts[2]}, pc);
            EXPECT_TRUE(rowsMatch(lg, 0, 2, 0)) << "C prefill mid-flight";
            last[2] = nn::argmaxRows(lg)[0];
            const std::vector<SequenceState *> cb{&states[2], &states[1]};
            for (int s = 0; s < 2; ++s) {
                lg = gen->decodeStep({last[2], last[1]}, cb);
                ++step[2];
                ++step[1];
                EXPECT_TRUE(rowsMatch(lg, 0, 2, step[2]))
                    << "C joint step " << step[2];
                EXPECT_TRUE(rowsMatch(lg, 1, 1, step[1]))
                    << "B joint step " << step[1];
                const auto t = nn::argmaxRows(lg);
                last[2] = t[0];
                last[1] = t[1];
            }
        }
    });
}

TEST_F(DecodeParityTest, RollbackThenRestepReproducesBits)
{
    // Fault-isolation cornerstone: truncating the K/V caches to the
    // pre-step length and re-running the step reproduces the exact
    // bits (a faulted step may have appended rows before throwing).
    Rng rng(17);
    auto gen = buildGenerator(genCfg(ModelKind::Transformer), rng);
    const auto prompts = testutil::makeRequests({4, 6}, gen->vocab(), 27);
    std::vector<SequenceState> states(2);
    std::vector<SequenceState *> ptrs;
    for (auto &st : states) {
        st = gen->newState();
        ptrs.push_back(&st);
    }
    runtime::setNumThreads(4);
    const std::vector<int> toks = nn::argmaxRows(gen->prefill(prompts, ptrs));
    const std::vector<std::size_t> pre{states[0].len, states[1].len};

    const Tensor first = gen->decodeStep(toks, ptrs);
    gen->rollback(states[0], pre[0]);
    gen->rollback(states[1], pre[1]);
    EXPECT_EQ(states[0].len, pre[0]);
    const Tensor again = gen->decodeStep(toks, ptrs);
    EXPECT_TRUE(bitwiseEqual(first, again));

    // A 1-row re-step of one sequence also matches its batched row.
    gen->rollback(states[1], pre[1]);
    const std::vector<SequenceState *> p1{&states[1]};
    const Tensor solo = gen->decodeStep({toks[1]}, p1);
    EXPECT_EQ(std::memcmp(solo.data(),
                          again.data() + 1 * gen->vocab(),
                          gen->vocab() * sizeof(float)),
              0);
}

// ----------------------------------------- API misuse stays a throw

TEST_F(DecodeParityTest, GeneratorValidatesStates)
{
    Rng rng(18);
    auto gen = buildGenerator(genCfg(ModelKind::Transformer), rng);
    const auto prompts = testutil::makeRequests({4}, gen->vocab(), 28);
    SequenceState st = gen->newState();
    std::vector<SequenceState *> ptrs{&st};
    (void)gen->prefill(prompts, ptrs);
    // Re-prefilling a used state must throw, not corrupt the cache.
    EXPECT_THROW((void)gen->prefill(prompts, ptrs), std::logic_error);
    // Stepping an un-prefilled state must throw.
    SequenceState fresh = gen->newState();
    std::vector<SequenceState *> fp{&fresh};
    EXPECT_THROW((void)gen->decodeStep({1}, fp), std::logic_error);
    // Non-causal configs cannot build a generator at all.
    ModelConfig bad = genCfg(ModelKind::Transformer);
    bad.causal = false;
    EXPECT_THROW((void)buildGenerator(bad, rng), std::invalid_argument);
}

// ------------------------------- causal + ragged audit regression

TEST_F(DecodeParityTest, CausalRaggedOddStraddlingLengths)
{
    // ISSUE 8 satellite: the causal+ragged interaction audit found no
    // divergence ('visible' clamps identically in the masked and
    // ragged paths); this regression pins that down with odd lengths
    // straddling the sequence, at threads {1, 4, 8}.
    const std::size_t d = 16, heads = 2, seq = 13;
    Rng rng(19);
    nn::MultiHeadAttention mha(
        d, heads, std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng),
        std::make_unique<nn::Dense>(d, d, rng), /*causal=*/true);
    unsigned seed = 101;
    for (const auto &lens : testutil::raggedLensSweep(seq, 31)) {
        const nn::RowSet rows(lens.size(), seq, lens);
        const Tensor x = raggedInput(rows, d, seed++);
        std::string tag = "causal ragged lens={";
        for (std::size_t L : lens)
            tag += std::to_string(L) + ",";
        tag += "}";
        testutil::expectRaggedForwardParity(mha, x, rows, tag);
    }
}

} // namespace
} // namespace fabnet
