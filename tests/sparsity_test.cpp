/**
 * @file sparsity_test.cpp
 * The Sec. III-A sparsity-pattern analysis: pattern construction,
 * data-access regularity, bank conflicts and information flow - the
 * quantitative backing of the paper's Fig. 4 comparison.
 */
#include <gtest/gtest.h>

#include "butterfly/fft.h"
#include "sparsity/patterns.h"

namespace fabnet {
namespace sparsity {
namespace {

TEST(Patterns, DiagonalAlwaysPresent)
{
    Rng rng(1);
    for (auto kind : {PatternKind::LowRank, PatternKind::SlidingWindow,
                      PatternKind::Butterfly, PatternKind::Random,
                      PatternKind::BlockWise}) {
        const auto p = SparsityPattern::make(kind, 64, rng);
        for (std::size_t i = 0; i < 64; ++i)
            EXPECT_TRUE(p.at(i, i)) << patternName(kind);
    }
}

TEST(Patterns, ButterflyConnectivityIsXorStructured)
{
    const auto p = SparsityPattern::butterfly(32);
    for (std::size_t i = 0; i < 32; ++i) {
        for (std::size_t j = 0; j < 32; ++j) {
            const std::size_t x = i ^ j;
            const bool expected = (i == j) || (x && !(x & (x - 1)));
            EXPECT_EQ(p.at(i, j), expected)
                << "(" << i << "," << j << ")";
        }
    }
}

TEST(Patterns, ButterflyDensityIsLogLinear)
{
    const auto p = SparsityPattern::butterfly(256);
    // (log2(n) + 1) nonzeros per row.
    EXPECT_EQ(p.rowNnz(0), 9u);
    EXPECT_NEAR(p.density(), 9.0 / 256.0, 1e-9);
}

TEST(Patterns, SlidingWindowIsBanded)
{
    const auto p = SparsityPattern::slidingWindow(32, 2);
    EXPECT_TRUE(p.at(5, 3));
    EXPECT_TRUE(p.at(5, 7));
    EXPECT_FALSE(p.at(5, 8));
    EXPECT_FALSE(p.at(5, 30));
    EXPECT_EQ(p.rowNnz(16), 5u);
}

TEST(Patterns, BlockWiseIsBlockDiagonal)
{
    const auto p = SparsityPattern::blockWise(16, 4);
    EXPECT_TRUE(p.at(5, 4));
    EXPECT_TRUE(p.at(5, 7));
    EXPECT_FALSE(p.at(5, 8));
    EXPECT_FALSE(p.at(5, 3));
}

TEST(Patterns, LowRankHasDenseLandmarks)
{
    const auto p = SparsityPattern::lowRank(32, 2);
    // Landmark rows/columns at 0 and 16 are dense.
    for (std::size_t j = 0; j < 32; ++j) {
        EXPECT_TRUE(p.at(0, j));
        EXPECT_TRUE(p.at(16, j));
        EXPECT_TRUE(p.at(j, 0));
        EXPECT_TRUE(p.at(j, 16));
    }
    EXPECT_FALSE(p.at(3, 5));
}

TEST(Patterns, RandomDensityApproximatesTarget)
{
    Rng rng(7);
    const auto p = SparsityPattern::random(128, 0.1, rng);
    EXPECT_NEAR(p.density(), 0.1, 0.02);
}

TEST(Access, ClassificationMatchesFigure4)
{
    EXPECT_EQ(accessPattern(PatternKind::LowRank),
              AccessKind::SequentialRowColumn);
    EXPECT_EQ(accessPattern(PatternKind::SlidingWindow),
              AccessKind::RegularStride);
    EXPECT_EQ(accessPattern(PatternKind::Butterfly),
              AccessKind::RegularStride);
    EXPECT_EQ(accessPattern(PatternKind::Random),
              AccessKind::RandomRead);
    EXPECT_EQ(accessPattern(PatternKind::BlockWise),
              AccessKind::RegularStride);
}

TEST(Access, StructuredPatternsAreStrideRegular)
{
    Rng rng(9);
    const double bfly = strideRegularity(
        SparsityPattern::make(PatternKind::Butterfly, 128, rng));
    const double window = strideRegularity(
        SparsityPattern::make(PatternKind::SlidingWindow, 128, rng));
    const double block = strideRegularity(
        SparsityPattern::make(PatternKind::BlockWise, 128, rng));
    const double random = strideRegularity(
        SparsityPattern::make(PatternKind::Random, 128, rng));
    EXPECT_GT(window, 0.9);
    EXPECT_GT(block, 0.9);
    // Butterfly rows have power-of-two gaps; the modal gap still
    // covers a large share (structured), far above random.
    EXPECT_GT(bfly, random);
    EXPECT_LT(random, 0.5);
}

TEST(Access, RandomPatternSuffersBankConflicts)
{
    Rng rng(11);
    const double random = bankConflictFactor(
        SparsityPattern::make(PatternKind::Random, 256, rng), 8);
    const double window = bankConflictFactor(
        SparsityPattern::make(PatternKind::SlidingWindow, 256, rng), 8);
    const double block = bankConflictFactor(
        SparsityPattern::make(PatternKind::BlockWise, 256, rng), 8);
    EXPECT_NEAR(window, 1.0, 0.1);
    EXPECT_NEAR(block, 1.0, 0.1);
    EXPECT_GT(random, 1.3);
}

TEST(InfoFlow, ButterflyIsGlobalAndLogHop)
{
    Rng rng(13);
    for (std::size_t n : {16u, 64u, 256u}) {
        const auto p = SparsityPattern::butterfly(n);
        const auto flow = analyseInfoFlow(p);
        EXPECT_TRUE(flow.global) << n;
        // The hypercube diameter is exactly log2(n) but BFS counts
        // reaching all coordinates; must be <= log2(n).
        EXPECT_LE(flow.hops_to_full, log2Exact(n)) << n;
        EXPECT_GE(flow.hops_to_full, 2u) << n;
    }
}

TEST(InfoFlow, SlidingWindowIsLocalOnly)
{
    Rng rng(15);
    const auto p =
        SparsityPattern::make(PatternKind::SlidingWindow, 256, rng);
    const auto flow = analyseInfoFlow(p);
    EXPECT_TRUE(flow.local);
    EXPECT_FALSE(flow.global); // needs ~n/window hops
    EXPECT_GT(flow.hops_to_full, log2Exact(256));
}

TEST(InfoFlow, BlockWiseNeverMixesAcrossBlocks)
{
    const auto p = SparsityPattern::blockWise(64, 8);
    const auto flow = analyseInfoFlow(p, 16);
    EXPECT_FALSE(flow.global);
    EXPECT_GT(flow.hops_to_full, 16u); // capped: unreachable
}

TEST(InfoFlow, LowRankIsGlobalButNotLocal)
{
    const auto p = SparsityPattern::lowRank(64, 3);
    const auto flow = analyseInfoFlow(p);
    EXPECT_TRUE(flow.global); // two hops through a landmark
    EXPECT_LE(flow.hops_to_full, 2u);
    EXPECT_FALSE(flow.local);
}

TEST(InfoFlow, ButterflyIsTheOnlyEfficientGlobalLocalPattern)
{
    // The punchline of Sec. III-A: butterfly is hardware-efficient
    // AND captures both local and global information.
    Rng rng(17);
    int qualifying = 0;
    PatternKind winner = PatternKind::Random;
    for (auto kind : {PatternKind::LowRank, PatternKind::SlidingWindow,
                      PatternKind::Butterfly, PatternKind::Random,
                      PatternKind::BlockWise}) {
        const auto rep = analysePattern(kind, 128, 8, rng);
        if (rep.hw_efficient && rep.info.global) {
            ++qualifying;
            winner = kind;
        }
    }
    EXPECT_EQ(qualifying, 1);
    EXPECT_EQ(winner, PatternKind::Butterfly);
}

TEST(Variants, CatalogueMatchesTableII)
{
    const auto cat = variantCatalog();
    ASSERT_GE(cat.size(), 10u);
    // Only FNet, Kaleidoscope and FABNet use a single unified
    // butterfly pattern; only FABNet applies it to both attention and
    // FFN.
    int unified_butterfly = 0;
    int both_locations = 0;
    for (const auto &v : cat) {
        const bool butterfly_only =
            v.patterns.size() == 1 &&
            v.patterns[0] == PatternKind::Butterfly;
        if (butterfly_only && v.unified_pattern)
            ++unified_butterfly;
        if (v.on_attention && v.on_ffn) {
            ++both_locations;
            EXPECT_EQ(v.model, "FABNet (this work)");
        }
    }
    EXPECT_EQ(unified_butterfly, 3);
    EXPECT_EQ(both_locations, 1);
}

TEST(Variants, MultiPatternVariantsExist)
{
    // Table II's observation: several variants need 2-3 combined
    // patterns to recover accuracy.
    const auto cat = variantCatalog();
    int multi = 0;
    for (const auto &v : cat)
        if (v.patterns.size() >= 2)
            ++multi;
    EXPECT_GE(multi, 4);
}

TEST(Patterns, ReportIsInternallyConsistent)
{
    Rng rng(19);
    const auto rep =
        analysePattern(PatternKind::Butterfly, 64, 8, rng);
    EXPECT_EQ(rep.kind, PatternKind::Butterfly);
    EXPECT_GT(rep.density, 0.0);
    EXPECT_LT(rep.density, 0.25);
    EXPECT_TRUE(rep.hw_efficient);
    EXPECT_TRUE(rep.info.global);
}

} // namespace
} // namespace sparsity
} // namespace fabnet
