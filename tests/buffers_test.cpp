/**
 * @file buffers_test.cpp
 * The Fig. 12 shared-buffer address mappings: independent ping-pong
 * banks in butterfly-linear mode, concatenated complex banks in FFT
 * mode, disjoint placement, capacity accounting and the Fig. 13
 * overlap-legality rule.
 */
#include <gtest/gtest.h>

#include "sim/buffers.h"

namespace fabnet {
namespace sim {
namespace {

TEST(ButterflyBuffer, RealBanksAreIndependent)
{
    ButterflyBuffer buf(16);
    buf.setMode(BufferMode::ButterflyLinear);
    buf.writeReal(0, 3, Half(1.5f));
    buf.writeReal(1, 3, Half(-2.25f));
    EXPECT_FLOAT_EQ(buf.readReal(0, 3).toFloat(), 1.5f);
    EXPECT_FLOAT_EQ(buf.readReal(1, 3).toFloat(), -2.25f);
    // Bank 0 writes land in SRAM A, bank 1 in SRAM B.
    EXPECT_EQ(buf.rawA(3), Half(1.5f).bits());
    EXPECT_EQ(buf.rawB(3), Half(-2.25f).bits());
}

TEST(ButterflyBuffer, ComplexBanksConcatenateLowerAndUpperHalves)
{
    ButterflyBuffer buf(16);
    buf.setMode(BufferMode::Fft);
    buf.writeComplex(0, 2, Half(1.0f), Half(2.0f));
    buf.writeComplex(1, 2, Half(3.0f), Half(4.0f));

    Half re, im;
    buf.readComplex(0, 2, re, im);
    EXPECT_FLOAT_EQ(re.toFloat(), 1.0f);
    EXPECT_FLOAT_EQ(im.toFloat(), 2.0f);
    buf.readComplex(1, 2, re, im);
    EXPECT_FLOAT_EQ(re.toFloat(), 3.0f);
    EXPECT_FLOAT_EQ(im.toFloat(), 4.0f);

    // Bank 0 uses the lower halves of both SRAMs, bank 1 the upper
    // halves (depth 16 -> upper base 8).
    EXPECT_EQ(buf.rawA(2), Half(1.0f).bits());
    EXPECT_EQ(buf.rawB(2), Half(2.0f).bits());
    EXPECT_EQ(buf.rawA(8 + 2), Half(3.0f).bits());
    EXPECT_EQ(buf.rawB(8 + 2), Half(4.0f).bits());
}

TEST(ButterflyBuffer, ComplexBanksAreDisjoint)
{
    ButterflyBuffer buf(8);
    buf.setMode(BufferMode::Fft);
    // Fill bank 0 completely, then bank 1; bank 0 must be untouched.
    for (std::size_t a = 0; a < buf.bankCapacity(); ++a)
        buf.writeComplex(0, a, Half(static_cast<float>(a)),
                         Half(0.5f));
    for (std::size_t a = 0; a < buf.bankCapacity(); ++a)
        buf.writeComplex(1, a, Half(-1.0f), Half(-1.0f));
    for (std::size_t a = 0; a < buf.bankCapacity(); ++a) {
        Half re, im;
        buf.readComplex(0, a, re, im);
        EXPECT_FLOAT_EQ(re.toFloat(), static_cast<float>(a));
        EXPECT_FLOAT_EQ(im.toFloat(), 0.5f);
    }
}

TEST(ButterflyBuffer, CapacityPerMode)
{
    ButterflyBuffer buf(1024); // the paper's buffer depth
    buf.setMode(BufferMode::ButterflyLinear);
    EXPECT_EQ(buf.bankCapacity(), 1024u); // 1024 real words per bank
    buf.setMode(BufferMode::Fft);
    EXPECT_EQ(buf.bankCapacity(), 512u); // 512 complex words per bank
}

TEST(ButterflyBuffer, OverlapRuleMatchesFig13)
{
    ButterflyBuffer buf(64);
    buf.setMode(BufferMode::ButterflyLinear);
    EXPECT_TRUE(buf.loadOverlapsCompute()); // Fig. 13a
    buf.setMode(BufferMode::Fft);
    EXPECT_FALSE(buf.loadOverlapsCompute()); // Fig. 13b
}

TEST(ButterflyBuffer, PingPongSwap)
{
    ButterflyBuffer buf(8);
    EXPECT_EQ(buf.computeBank(), 0u);
    buf.swapBanks();
    EXPECT_EQ(buf.computeBank(), 1u);
    buf.swapBanks();
    EXPECT_EQ(buf.computeBank(), 0u);
    // Mode switches reset the ping-pong state.
    buf.swapBanks();
    buf.setMode(BufferMode::Fft);
    EXPECT_EQ(buf.computeBank(), 0u);
}

TEST(ButterflyBuffer, ModeMismatchedAccessRejected)
{
    ButterflyBuffer buf(8);
    buf.setMode(BufferMode::ButterflyLinear);
    Half re, im;
    EXPECT_THROW(buf.readComplex(0, 0, re, im), std::logic_error);
    buf.setMode(BufferMode::Fft);
    EXPECT_THROW(buf.writeReal(0, 0, Half(1.0f)), std::logic_error);
}

TEST(ButterflyBuffer, RangeChecked)
{
    ButterflyBuffer buf(8);
    EXPECT_THROW(buf.writeReal(2, 0, Half(0.0f)), std::out_of_range);
    EXPECT_THROW(buf.writeReal(0, 8, Half(0.0f)), std::out_of_range);
    buf.setMode(BufferMode::Fft);
    EXPECT_THROW(buf.writeComplex(0, 4, Half(0.0f), Half(0.0f)),
                 std::out_of_range);
    EXPECT_THROW(ButterflyBuffer(3), std::invalid_argument);
}

TEST(ButterflyBuffer, ModeSwitchPreservesTotalStorage)
{
    // Switching modes re-interprets the same physical SRAM bits.
    ButterflyBuffer buf(8);
    buf.setMode(BufferMode::ButterflyLinear);
    buf.writeReal(0, 1, Half(7.0f)); // SRAM A word 1
    buf.writeReal(1, 1, Half(9.0f)); // SRAM B word 1
    buf.setMode(BufferMode::Fft);
    Half re, im;
    buf.readComplex(0, 1, re, im); // lower halves: A[1], B[1]
    EXPECT_FLOAT_EQ(re.toFloat(), 7.0f);
    EXPECT_FLOAT_EQ(im.toFloat(), 9.0f);
}

} // namespace
} // namespace sim
} // namespace fabnet
