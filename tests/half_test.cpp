/**
 * @file half_test.cpp
 * IEEE binary16 emulation tests: the hardware datapath computes in
 * fp16, so conversion correctness underpins the functional model.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/half.h"

namespace fabnet {
namespace {

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3C00);
    EXPECT_EQ(floatToHalfBits(-1.0f), 0xBC00);
    EXPECT_EQ(floatToHalfBits(2.0f), 0x4000);
    EXPECT_EQ(floatToHalfBits(0.5f), 0x3800);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7BFF); // max finite half
}

TEST(Half, BitPatternsRoundTrip)
{
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x3C00), 1.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x4000), 2.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0xC000), -2.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x3555), 0.333251953125f);
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_EQ(floatToHalfBits(1e6f), 0x7C00);
    EXPECT_EQ(floatToHalfBits(-1e6f), 0xFC00);
    EXPECT_TRUE(std::isinf(halfBitsToFloat(0x7C00)));
}

TEST(Half, NanPreserved)
{
    const std::uint16_t nan_bits =
        floatToHalfBits(std::numeric_limits<float>::quiet_NaN());
    EXPECT_EQ(nan_bits & 0x7C00, 0x7C00);
    EXPECT_NE(nan_bits & 0x03FF, 0);
    EXPECT_TRUE(std::isnan(halfBitsToFloat(nan_bits)));
}

TEST(Half, SubnormalsRepresented)
{
    // Smallest positive subnormal half = 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(floatToHalfBits(tiny), 0x0001);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x0001), tiny);
    // Largest subnormal.
    const float big_sub = std::ldexp(1023.0f, -24);
    EXPECT_EQ(floatToHalfBits(big_sub), 0x03FF);
    // Underflow to zero below half the smallest subnormal.
    EXPECT_EQ(floatToHalfBits(std::ldexp(1.0f, -26)), 0x0000);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half
    // (1 + 2^-10); ties round to even (mantissa 0 -> stays 1.0).
    const float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(floatToHalfBits(halfway), 0x3C00);
    // Slightly above halfway rounds up.
    const float above = 1.0f + std::ldexp(1.0f, -11) +
                        std::ldexp(1.0f, -16);
    EXPECT_EQ(floatToHalfBits(above), 0x3C01);
    // (1 + 3*2^-11) is halfway between 0x3C01 and 0x3C02 -> even 0x3C02.
    const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(floatToHalfBits(halfway2), 0x3C02);
}

TEST(Half, MantissaOverflowBumpsExponent)
{
    // Just below 2.0: 1.9995... rounds up to 2.0.
    const float v = std::nextafter(2.0f, 0.0f);
    EXPECT_EQ(floatToHalfBits(v), 0x4000);
}

TEST(Half, ArithmeticRoundsEachOperation)
{
    Half a(0.1f), b(0.2f);
    const float expected =
        roundToHalf(roundToHalf(0.1f) + roundToHalf(0.2f));
    EXPECT_FLOAT_EQ((a + b).toFloat(), expected);
    EXPECT_NEAR((a * b).toFloat(), 0.02f, 1e-4f);
    EXPECT_FLOAT_EQ((-a).toFloat(), -roundToHalf(0.1f));
}

TEST(Half, RelativeErrorBounded)
{
    // fp16 has 11 significand bits: relative error <= 2^-11.
    for (float v : {0.001f, 0.1f, 1.0f, 3.14159f, 123.456f, 60000.0f}) {
        const float r = roundToHalf(v);
        EXPECT_LE(std::fabs(r - v) / v, std::ldexp(1.0f, -11) + 1e-7f)
            << "value " << v;
    }
}

/** Exhaustive bit-level round trip over every finite half pattern. */
TEST(Half, ExhaustiveHalfToFloatToHalf)
{
    for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
        const std::uint16_t h = static_cast<std::uint16_t>(bits);
        const float f = halfBitsToFloat(h);
        if (std::isnan(f))
            continue; // NaN payloads may differ
        EXPECT_EQ(floatToHalfBits(f), h) << "bits " << bits;
    }
}

class HalfSweepTest : public ::testing::TestWithParam<float>
{
};

TEST_P(HalfSweepTest, RoundTripWithinHalfUlp)
{
    const float v = GetParam();
    const float r = roundToHalf(v);
    // The rounded value must be within one half-ULP of the original;
    // below the normal range the ULP is fixed at 2^-24 (subnormals).
    const int exp = std::ilogb(std::fabs(v) > 0 ? v : 1.0f);
    const float ulp =
        std::max(std::ldexp(1.0f, exp - 10), std::ldexp(1.0f, -24));
    EXPECT_LE(std::fabs(r - v), 0.5f * ulp + 1e-12f);
}

INSTANTIATE_TEST_SUITE_P(Values, HalfSweepTest,
                         ::testing::Values(1.0f / 3.0f, 2.7182818f,
                                           -0.0072f, 511.7f, 1024.3f,
                                           -65000.0f, 6.1e-5f));

} // namespace
} // namespace fabnet
