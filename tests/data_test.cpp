/**
 * @file data_test.cpp
 * Synthetic LRA task generators: label correctness (ListOps has an
 * exact evaluator), vocab ranges, balance, and catalogue consistency.
 */
#include <gtest/gtest.h>

#include "data/listops.h"
#include "data/lra.h"
#include "data/text_tasks.h"
#include "data/vision_tasks.h"

namespace fabnet {
namespace data {
namespace {

TEST(ListOps, EvaluatorKnownExpressions)
{
    // [MAX 2 9 ] = 9
    std::vector<int> e1 = {kOpenMax, kDigit0 + 2, kDigit0 + 9, kClose};
    EXPECT_EQ(ListOpsTask::evaluate(e1), 9);
    // [MIN 4 [MAX 1 7 ] 3 ] = 3
    std::vector<int> e2 = {kOpenMin,     kDigit0 + 4, kOpenMax,
                           kDigit0 + 1,  kDigit0 + 7, kClose,
                           kDigit0 + 3,  kClose};
    EXPECT_EQ(ListOpsTask::evaluate(e2), 3);
    // [SM 5 6 7 ] = 18 mod 10 = 8
    std::vector<int> e3 = {kOpenSm, kDigit0 + 5, kDigit0 + 6,
                           kDigit0 + 7, kClose};
    EXPECT_EQ(ListOpsTask::evaluate(e3), 8);
    // [MED 1 9 5 ] = 5
    std::vector<int> e4 = {kOpenMed, kDigit0 + 1, kDigit0 + 9,
                           kDigit0 + 5, kClose};
    EXPECT_EQ(ListOpsTask::evaluate(e4), 5);
    // Even-length median takes the lower one: [MED 2 4 6 8 ] = 4.
    std::vector<int> e5 = {kOpenMed,    kDigit0 + 2, kDigit0 + 4,
                           kDigit0 + 6, kDigit0 + 8, kClose};
    EXPECT_EQ(ListOpsTask::evaluate(e5), 4);
}

TEST(ListOps, EvaluatorRejectsMalformed)
{
    std::vector<int> unclosed = {kOpenMax, kDigit0 + 1};
    EXPECT_EQ(ListOpsTask::evaluate(unclosed), -1);
    std::vector<int> empty_op = {kOpenMin, kClose};
    EXPECT_EQ(ListOpsTask::evaluate(empty_op), -1);
}

TEST(ListOps, GeneratedLabelsMatchEvaluator)
{
    ListOpsTask task(64);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        Example ex = task.sample(rng);
        EXPECT_EQ(ListOpsTask::evaluate(ex.tokens), ex.label)
            << "sample " << i;
        EXPECT_GE(ex.label, 0);
        EXPECT_LE(ex.label, 9);
        EXPECT_EQ(ex.tokens.size(), 64u);
    }
}

TEST(ListOps, TokensWithinVocab)
{
    ListOpsTask task(128);
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        Example ex = task.sample(rng);
        for (int tok : ex.tokens) {
            EXPECT_GE(tok, 0);
            EXPECT_LT(tok, kListOpsVocab);
        }
    }
}

TEST(ListOps, SpecConsistent)
{
    ListOpsTask task(256);
    const auto spec = task.spec();
    EXPECT_EQ(spec.name, "ListOps");
    EXPECT_EQ(spec.seq, 256u);
    EXPECT_EQ(spec.classes, 10u);
    EXPECT_EQ(spec.vocab, static_cast<std::size_t>(kListOpsVocab));
}

TEST(Text, PlantedPatternsPresent)
{
    TextTask task(128);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        Example ex = task.sample(rng);
        // Count trigram hits of each class lexicon.
        int hits[2] = {0, 0};
        for (int cls = 0; cls < 2; ++cls) {
            for (int w = 0; w < 4; ++w) {
                const int *pat = TextTask::classPattern(cls, w);
                for (std::size_t p = 0; p + 3 <= ex.tokens.size();
                     ++p) {
                    if (ex.tokens[p] == pat[0] &&
                        ex.tokens[p + 1] == pat[1] &&
                        ex.tokens[p + 2] == pat[2])
                        ++hits[cls];
                }
            }
        }
        EXPECT_GT(hits[ex.label], hits[1 - ex.label])
            << "label evidence must be the majority, sample " << i;
    }
}

TEST(Text, RoughlyBalancedLabels)
{
    TextTask task(64);
    Rng rng(9);
    auto data = task.dataset(400, rng);
    const double balance = TaskGenerator::labelBalance(data, 2);
    EXPECT_LT(balance, 0.6);
}

TEST(Retrieval, SeparatorPresentAndDocsFilled)
{
    RetrievalTask task(65);
    Rng rng(11);
    Example ex = task.sample(rng);
    EXPECT_EQ(ex.tokens.size(), 65u);
    EXPECT_EQ(ex.tokens[32], RetrievalTask::kSeparator);
}

TEST(Retrieval, BalancedLabels)
{
    RetrievalTask task(64);
    Rng rng(13);
    auto data = task.dataset(300, rng);
    EXPECT_LT(TaskGenerator::labelBalance(data, 2), 0.6);
}

TEST(Image, TokensAreIntensities)
{
    ImageTask task(16, 4);
    Rng rng(15);
    Example ex = task.sample(rng);
    EXPECT_EQ(ex.tokens.size(), 256u);
    for (int t : ex.tokens) {
        EXPECT_GE(t, 0);
        EXPECT_LE(t, 255);
    }
    EXPECT_LT(ex.label, 4);
}

TEST(Image, ClassesVisuallyDistinct)
{
    // Mean intensity of stripe classes differs from the background-
    // dominated disc class in expectation; just check generation of
    // all classes works and labels span the range.
    ImageTask task(16, 4);
    Rng rng(17);
    std::vector<bool> seen(4, false);
    for (int i = 0; i < 100; ++i)
        seen[task.sample(rng).label] = true;
    for (int c = 0; c < 4; ++c)
        EXPECT_TRUE(seen[c]) << "class " << c << " never generated";
}

TEST(Pathfinder, PositiveHasBrighterConnectivity)
{
    PathfinderTask task(16);
    Rng rng(19);
    // Positives draw a full path: on average more bright pixels.
    double bright_pos = 0.0, bright_neg = 0.0;
    int n_pos = 0, n_neg = 0;
    for (int i = 0; i < 200; ++i) {
        Example ex = task.sample(rng);
        int bright = 0;
        for (int t : ex.tokens)
            if (t > 128)
                ++bright;
        if (ex.label == 1) {
            bright_pos += bright;
            ++n_pos;
        } else {
            bright_neg += bright;
            ++n_neg;
        }
    }
    ASSERT_GT(n_pos, 10);
    ASSERT_GT(n_neg, 10);
    EXPECT_GT(bright_pos / n_pos, bright_neg / n_neg);
}

TEST(Lra, CatalogueHasFiveTasksInPaperOrder)
{
    const auto tasks = lraCatalog();
    ASSERT_EQ(tasks.size(), 5u);
    EXPECT_EQ(tasks[0].name, "ListOps");
    EXPECT_EQ(tasks[1].name, "Text");
    EXPECT_EQ(tasks[2].name, "Retrieval");
    EXPECT_EQ(tasks[3].name, "Image");
    EXPECT_EQ(tasks[4].name, "Pathfinder");
}

TEST(Lra, PaperAccuraciesMatchTableIII)
{
    const auto tasks = lraCatalog();
    // Spot-check against Table III.
    EXPECT_NEAR(tasks[0].paper_acc_transformer, 0.373, 1e-9);
    EXPECT_NEAR(tasks[2].paper_acc_fabnet, 0.801, 1e-9);
    EXPECT_NEAR(tasks[3].paper_acc_fnet, 0.288, 1e-9);
    // Average accuracy parity between Transformer and FABNet.
    double t_avg = 0.0, f_avg = 0.0;
    for (const auto &t : tasks) {
        t_avg += t.paper_acc_transformer;
        f_avg += t.paper_acc_fabnet;
    }
    EXPECT_NEAR(t_avg / 5.0, f_avg / 5.0, 0.002);
}

TEST(Lra, GeneratorFactoryCoversAllTasks)
{
    Rng rng(21);
    for (const auto &t : lraCatalog()) {
        auto gen = makeLraGenerator(t.name, 64);
        Example ex = gen->sample(rng);
        EXPECT_EQ(ex.tokens.size(), 64u) << t.name;
    }
    EXPECT_THROW(makeLraGenerator("Nope", 64), std::invalid_argument);
    EXPECT_THROW(makeLraGenerator("Image", 60), std::invalid_argument);
}

TEST(Lra, ConfigsAreFabnetAndTransformerKinds)
{
    for (const auto &t : lraCatalog()) {
        EXPECT_EQ(t.transformer.kind, ModelKind::Transformer) << t.name;
        EXPECT_EQ(t.fnet.kind, ModelKind::FNet) << t.name;
        EXPECT_EQ(t.fabnet.kind, ModelKind::FABNet) << t.name;
        EXPECT_EQ(t.fabnet.n_abfly, 0u) << t.name;
    }
}

TEST(Dataset, DeterministicGivenSeed)
{
    ListOpsTask task(32);
    Rng a(42), b(42);
    auto da = task.dataset(20, a);
    auto db = task.dataset(20, b);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(da[i].tokens, db[i].tokens);
        EXPECT_EQ(da[i].label, db[i].label);
    }
}

} // namespace
} // namespace data
} // namespace fabnet
