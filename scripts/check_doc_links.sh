#!/usr/bin/env bash
# Doc CI (see .github/workflows/ci.yml):
#  1. every relative markdown link / inline code path reference in the
#     repo's *.md files must point at a file that exists, so guides
#     cannot silently rot as code moves;
#  2. every "<!-- include: PATH -->" fenced block must match the
#     referenced file byte for byte, so the compilable example a guide
#     embeds (examples/serving_quickstart.cpp, built as a CMake target
#     in tier-1) IS the code the reader sees.
#
# Usage: scripts/check_doc_links.sh   (from anywhere; no dependencies
# beyond bash + coreutils)
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. relative markdown links: [text](path) and [text](path#anchor)
while IFS=: read -r file link; do
    target=${link%%#*}
    [ -z "$target" ] && continue # pure in-page anchor
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$(dirname "$file")/$target" ] && [ ! -e "$target" ]; then
        echo "BROKEN LINK: $file -> $link"
        fail=1
    fi
# Scope: the repo's own hand-written docs (PAPERS.md/SNIPPETS.md are
# retrieved artifacts with links into sources this repo does not ship).
# Fenced code blocks are excluded: embedded C++ is full of `[](args)`
# lambdas that only look like markdown links.
done < <(for f in README.md ROADMAP.md docs/*.md; do
             [ -f "$f" ] || continue
             # `|| true`: a file with no links must not abort the scan
             # (grep exits 1 on no match, and this subshell runs under
             # set -e -o pipefail).
             awk '/^```/ { fence = !fence; next } !fence' "$f" |
                 { grep -oE '\]\(([^)]+)\)' || true; } |
                 sed -E "s|^|$f:|"
         done |
         sed -E 's/\]\(([^)]*)\)/\1/')

# ---- 2. embedded file blocks stay in sync with the file on disk.
# Marker grammar inside a markdown file:
#   <!-- include: examples/serving_quickstart.cpp -->
#   ```cpp
#   ...verbatim file contents...
#   ```
check_includes() {
    local doc="$1"
    grep -n '<!-- include: ' "$doc" || true
}
collect_includes() {
    local doc="$1"
    check_includes "$doc" | while IFS=: read -r line marker; do
        local src
        src=$(echo "$marker" | sed -E 's/.*<!-- include: ([^ ]+) -->.*/\1/')
        if [ ! -f "$src" ]; then
            echo "BROKEN INCLUDE: $doc references missing $src"
            return 1
        fi
        # The fence opens on the next line; the block runs to the
        # first closing fence after it.
        local body_start=$((line + 2))
        local end
        end=$(tail -n +"$body_start" "$doc" |
              grep -n '^```$' | head -1 | cut -d: -f1)
        if [ -z "$end" ]; then
            echo "BROKEN INCLUDE: $doc: unterminated block at line $line"
            return 1
        fi
        if ! diff -q <(sed -n "${body_start},$((body_start + end - 2))p" \
                           "$doc") "$src" >/dev/null; then
            echo "STALE INCLUDE: $doc line $line diverged from $src"
            echo "  (update the fenced block to match the file, or"
            echo "   the file to match the guide)"
            diff <(sed -n "${body_start},$((body_start + end - 2))p" \
                       "$doc") "$src" | head -10 || true
            return 1
        fi
    done
}

for doc in README.md docs/*.md; do
    collect_includes "$doc" || fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "doc check FAILED"
    exit 1
fi
echo "doc check OK: links resolve and embedded examples are in sync"
