file(REMOVE_RECURSE
  "CMakeFiles/postp_test.dir/tests/postp_test.cpp.o"
  "CMakeFiles/postp_test.dir/tests/postp_test.cpp.o.d"
  "postp_test"
  "postp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
