# Empty dependencies file for postp_test.
# This may be replaced when dependencies are built.
