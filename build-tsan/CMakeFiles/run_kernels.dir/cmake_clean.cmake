file(REMOVE_RECURSE
  "CMakeFiles/run_kernels"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/run_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
