# Empty custom commands generated dependencies file for run_kernels.
# This may be replaced when dependencies are built.
