file(REMOVE_RECURSE
  "CMakeFiles/example_lra_listops_train.dir/examples/lra_listops_train.cpp.o"
  "CMakeFiles/example_lra_listops_train.dir/examples/lra_listops_train.cpp.o.d"
  "example_lra_listops_train"
  "example_lra_listops_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lra_listops_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
