# Empty compiler generated dependencies file for example_lra_listops_train.
# This may be replaced when dependencies are built.
