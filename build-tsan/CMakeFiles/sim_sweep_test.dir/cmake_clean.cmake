file(REMOVE_RECURSE
  "CMakeFiles/sim_sweep_test.dir/tests/sim_sweep_test.cpp.o"
  "CMakeFiles/sim_sweep_test.dir/tests/sim_sweep_test.cpp.o.d"
  "sim_sweep_test"
  "sim_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
