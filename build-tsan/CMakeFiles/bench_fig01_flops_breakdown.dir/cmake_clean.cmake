file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_flops_breakdown.dir/bench/fig01_flops_breakdown.cpp.o"
  "CMakeFiles/bench_fig01_flops_breakdown.dir/bench/fig01_flops_breakdown.cpp.o.d"
  "bench_fig01_flops_breakdown"
  "bench_fig01_flops_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_flops_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
