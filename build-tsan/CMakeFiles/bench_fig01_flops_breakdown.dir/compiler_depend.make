# Empty compiler generated dependencies file for bench_fig01_flops_breakdown.
# This may be replaced when dependencies are built.
