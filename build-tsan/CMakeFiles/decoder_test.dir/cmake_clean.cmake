file(REMOVE_RECURSE
  "CMakeFiles/decoder_test.dir/tests/decoder_test.cpp.o"
  "CMakeFiles/decoder_test.dir/tests/decoder_test.cpp.o.d"
  "decoder_test"
  "decoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
