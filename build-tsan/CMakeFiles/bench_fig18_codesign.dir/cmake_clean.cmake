file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_codesign.dir/bench/fig18_codesign.cpp.o"
  "CMakeFiles/bench_fig18_codesign.dir/bench/fig18_codesign.cpp.o.d"
  "bench_fig18_codesign"
  "bench_fig18_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
