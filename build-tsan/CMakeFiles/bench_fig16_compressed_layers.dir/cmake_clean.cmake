file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_compressed_layers.dir/bench/fig16_compressed_layers.cpp.o"
  "CMakeFiles/bench_fig16_compressed_layers.dir/bench/fig16_compressed_layers.cpp.o.d"
  "bench_fig16_compressed_layers"
  "bench_fig16_compressed_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_compressed_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
