# Empty compiler generated dependencies file for bench_fig16_compressed_layers.
# This may be replaced when dependencies are built.
