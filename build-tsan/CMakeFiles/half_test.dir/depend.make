# Empty dependencies file for half_test.
# This may be replaced when dependencies are built.
