file(REMOVE_RECURSE
  "CMakeFiles/half_test.dir/tests/half_test.cpp.o"
  "CMakeFiles/half_test.dir/tests/half_test.cpp.o.d"
  "half_test"
  "half_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/half_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
