# Empty dependencies file for bench_table07_resources.
# This may be replaced when dependencies are built.
