file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_resources.dir/bench/table07_resources.cpp.o"
  "CMakeFiles/bench_table07_resources.dir/bench/table07_resources.cpp.o.d"
  "bench_table07_resources"
  "bench_table07_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
