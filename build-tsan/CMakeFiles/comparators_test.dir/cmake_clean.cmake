file(REMOVE_RECURSE
  "CMakeFiles/comparators_test.dir/tests/comparators_test.cpp.o"
  "CMakeFiles/comparators_test.dir/tests/comparators_test.cpp.o.d"
  "comparators_test"
  "comparators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
