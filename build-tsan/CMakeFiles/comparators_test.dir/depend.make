# Empty dependencies file for comparators_test.
# This may be replaced when dependencies are built.
