# Empty dependencies file for example_accelerator_explorer.
# This may be replaced when dependencies are built.
