file(REMOVE_RECURSE
  "CMakeFiles/example_accelerator_explorer.dir/examples/accelerator_explorer.cpp.o"
  "CMakeFiles/example_accelerator_explorer.dir/examples/accelerator_explorer.cpp.o.d"
  "example_accelerator_explorer"
  "example_accelerator_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_accelerator_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
