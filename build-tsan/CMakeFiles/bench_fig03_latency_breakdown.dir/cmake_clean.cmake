file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_latency_breakdown.dir/bench/fig03_latency_breakdown.cpp.o"
  "CMakeFiles/bench_fig03_latency_breakdown.dir/bench/fig03_latency_breakdown.cpp.o.d"
  "bench_fig03_latency_breakdown"
  "bench_fig03_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
