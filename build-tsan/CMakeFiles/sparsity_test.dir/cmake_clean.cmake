file(REMOVE_RECURSE
  "CMakeFiles/sparsity_test.dir/tests/sparsity_test.cpp.o"
  "CMakeFiles/sparsity_test.dir/tests/sparsity_test.cpp.o.d"
  "sparsity_test"
  "sparsity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
