file(REMOVE_RECURSE
  "CMakeFiles/butterfly_test.dir/tests/butterfly_test.cpp.o"
  "CMakeFiles/butterfly_test.dir/tests/butterfly_test.cpp.o.d"
  "butterfly_test"
  "butterfly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
