# Empty dependencies file for butterfly_test.
# This may be replaced when dependencies are built.
