# Empty dependencies file for fabnet.
# This may be replaced when dependencies are built.
