file(REMOVE_RECURSE
  "libfabnet.a"
)
