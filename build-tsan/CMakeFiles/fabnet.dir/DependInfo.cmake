
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/butterfly/butterfly.cc" "CMakeFiles/fabnet.dir/src/butterfly/butterfly.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/butterfly/butterfly.cc.o.d"
  "/root/repo/src/butterfly/fft.cc" "CMakeFiles/fabnet.dir/src/butterfly/fft.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/butterfly/fft.cc.o.d"
  "/root/repo/src/codesign/codesign.cc" "CMakeFiles/fabnet.dir/src/codesign/codesign.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/codesign/codesign.cc.o.d"
  "/root/repo/src/comparators/devices.cc" "CMakeFiles/fabnet.dir/src/comparators/devices.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/comparators/devices.cc.o.d"
  "/root/repo/src/comparators/sota.cc" "CMakeFiles/fabnet.dir/src/comparators/sota.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/comparators/sota.cc.o.d"
  "/root/repo/src/data/listops.cc" "CMakeFiles/fabnet.dir/src/data/listops.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/data/listops.cc.o.d"
  "/root/repo/src/data/lra.cc" "CMakeFiles/fabnet.dir/src/data/lra.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/data/lra.cc.o.d"
  "/root/repo/src/data/task.cc" "CMakeFiles/fabnet.dir/src/data/task.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/data/task.cc.o.d"
  "/root/repo/src/data/text_tasks.cc" "CMakeFiles/fabnet.dir/src/data/text_tasks.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/data/text_tasks.cc.o.d"
  "/root/repo/src/data/vision_tasks.cc" "CMakeFiles/fabnet.dir/src/data/vision_tasks.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/data/vision_tasks.cc.o.d"
  "/root/repo/src/model/builder.cc" "CMakeFiles/fabnet.dir/src/model/builder.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/model/builder.cc.o.d"
  "/root/repo/src/model/classifier.cc" "CMakeFiles/fabnet.dir/src/model/classifier.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/model/classifier.cc.o.d"
  "/root/repo/src/model/config.cc" "CMakeFiles/fabnet.dir/src/model/config.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/model/config.cc.o.d"
  "/root/repo/src/model/flops.cc" "CMakeFiles/fabnet.dir/src/model/flops.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/model/flops.cc.o.d"
  "/root/repo/src/nn/attention.cc" "CMakeFiles/fabnet.dir/src/nn/attention.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/attention.cc.o.d"
  "/root/repo/src/nn/basic_layers.cc" "CMakeFiles/fabnet.dir/src/nn/basic_layers.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/basic_layers.cc.o.d"
  "/root/repo/src/nn/block.cc" "CMakeFiles/fabnet.dir/src/nn/block.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/block.cc.o.d"
  "/root/repo/src/nn/dense.cc" "CMakeFiles/fabnet.dir/src/nn/dense.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/dense.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "CMakeFiles/fabnet.dir/src/nn/embedding.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/embedding.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "CMakeFiles/fabnet.dir/src/nn/gradcheck.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/gradcheck.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "CMakeFiles/fabnet.dir/src/nn/optimizer.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "CMakeFiles/fabnet.dir/src/nn/serialize.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/nn/serialize.cc.o.d"
  "/root/repo/src/runtime/parallel.cc" "CMakeFiles/fabnet.dir/src/runtime/parallel.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/runtime/parallel.cc.o.d"
  "/root/repo/src/sim/accelerator.cc" "CMakeFiles/fabnet.dir/src/sim/accelerator.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/accelerator.cc.o.d"
  "/root/repo/src/sim/attention_engine.cc" "CMakeFiles/fabnet.dir/src/sim/attention_engine.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/attention_engine.cc.o.d"
  "/root/repo/src/sim/baseline.cc" "CMakeFiles/fabnet.dir/src/sim/baseline.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/baseline.cc.o.d"
  "/root/repo/src/sim/buffers.cc" "CMakeFiles/fabnet.dir/src/sim/buffers.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/buffers.cc.o.d"
  "/root/repo/src/sim/datapath.cc" "CMakeFiles/fabnet.dir/src/sim/datapath.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/datapath.cc.o.d"
  "/root/repo/src/sim/postp.cc" "CMakeFiles/fabnet.dir/src/sim/postp.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/postp.cc.o.d"
  "/root/repo/src/sim/power.cc" "CMakeFiles/fabnet.dir/src/sim/power.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/power.cc.o.d"
  "/root/repo/src/sim/report_export.cc" "CMakeFiles/fabnet.dir/src/sim/report_export.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/report_export.cc.o.d"
  "/root/repo/src/sim/resource.cc" "CMakeFiles/fabnet.dir/src/sim/resource.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/resource.cc.o.d"
  "/root/repo/src/sim/throughput.cc" "CMakeFiles/fabnet.dir/src/sim/throughput.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sim/throughput.cc.o.d"
  "/root/repo/src/sparsity/patterns.cc" "CMakeFiles/fabnet.dir/src/sparsity/patterns.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/sparsity/patterns.cc.o.d"
  "/root/repo/src/tensor/half.cc" "CMakeFiles/fabnet.dir/src/tensor/half.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/tensor/half.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "CMakeFiles/fabnet.dir/src/tensor/ops.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/fabnet.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/fabnet.dir/src/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
