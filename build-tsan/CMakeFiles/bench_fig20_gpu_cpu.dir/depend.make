# Empty dependencies file for bench_fig20_gpu_cpu.
# This may be replaced when dependencies are built.
