file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_gpu_cpu.dir/bench/fig20_gpu_cpu.cpp.o"
  "CMakeFiles/bench_fig20_gpu_cpu.dir/bench/fig20_gpu_cpu.cpp.o.d"
  "bench_fig20_gpu_cpu"
  "bench_fig20_gpu_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_gpu_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
