file(REMOVE_RECURSE
  "CMakeFiles/example_deploy_pipeline.dir/examples/deploy_pipeline.cpp.o"
  "CMakeFiles/example_deploy_pipeline.dir/examples/deploy_pipeline.cpp.o.d"
  "example_deploy_pipeline"
  "example_deploy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_deploy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
