file(REMOVE_RECURSE
  "CMakeFiles/butterfly_grad_test.dir/tests/butterfly_grad_test.cpp.o"
  "CMakeFiles/butterfly_grad_test.dir/tests/butterfly_grad_test.cpp.o.d"
  "butterfly_grad_test"
  "butterfly_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
