# Empty compiler generated dependencies file for butterfly_grad_test.
# This may be replaced when dependencies are built.
