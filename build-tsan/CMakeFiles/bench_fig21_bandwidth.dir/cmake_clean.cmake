file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_bandwidth.dir/bench/fig21_bandwidth.cpp.o"
  "CMakeFiles/bench_fig21_bandwidth.dir/bench/fig21_bandwidth.cpp.o.d"
  "bench_fig21_bandwidth"
  "bench_fig21_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
