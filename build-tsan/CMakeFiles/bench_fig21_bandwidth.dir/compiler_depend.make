# Empty compiler generated dependencies file for bench_fig21_bandwidth.
# This may be replaced when dependencies are built.
