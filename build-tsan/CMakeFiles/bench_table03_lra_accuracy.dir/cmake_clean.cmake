file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_lra_accuracy.dir/bench/table03_lra_accuracy.cpp.o"
  "CMakeFiles/bench_table03_lra_accuracy.dir/bench/table03_lra_accuracy.cpp.o.d"
  "bench_table03_lra_accuracy"
  "bench_table03_lra_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_lra_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
