# Empty dependencies file for bench_table03_lra_accuracy.
# This may be replaced when dependencies are built.
