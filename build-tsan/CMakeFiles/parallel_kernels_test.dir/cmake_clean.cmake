file(REMOVE_RECURSE
  "CMakeFiles/parallel_kernels_test.dir/tests/parallel_kernels_test.cpp.o"
  "CMakeFiles/parallel_kernels_test.dir/tests/parallel_kernels_test.cpp.o.d"
  "parallel_kernels_test"
  "parallel_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
