# Empty dependencies file for golden_values_test.
# This may be replaced when dependencies are built.
