file(REMOVE_RECURSE
  "CMakeFiles/golden_values_test.dir/tests/golden_values_test.cpp.o"
  "CMakeFiles/golden_values_test.dir/tests/golden_values_test.cpp.o.d"
  "golden_values_test"
  "golden_values_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_values_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
