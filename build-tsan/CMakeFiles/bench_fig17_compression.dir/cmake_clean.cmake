file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_compression.dir/bench/fig17_compression.cpp.o"
  "CMakeFiles/bench_fig17_compression.dir/bench/fig17_compression.cpp.o.d"
  "bench_fig17_compression"
  "bench_fig17_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
