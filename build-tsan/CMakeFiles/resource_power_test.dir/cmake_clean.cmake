file(REMOVE_RECURSE
  "CMakeFiles/resource_power_test.dir/tests/resource_power_test.cpp.o"
  "CMakeFiles/resource_power_test.dir/tests/resource_power_test.cpp.o.d"
  "resource_power_test"
  "resource_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
