file(REMOVE_RECURSE
  "CMakeFiles/attention_engine_test.dir/tests/attention_engine_test.cpp.o"
  "CMakeFiles/attention_engine_test.dir/tests/attention_engine_test.cpp.o.d"
  "attention_engine_test"
  "attention_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
