# Empty dependencies file for attention_engine_test.
# This may be replaced when dependencies are built.
