# Empty dependencies file for bench_fig19_speedup_breakdown.
# This may be replaced when dependencies are built.
