file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_speedup_breakdown.dir/bench/fig19_speedup_breakdown.cpp.o"
  "CMakeFiles/bench_fig19_speedup_breakdown.dir/bench/fig19_speedup_breakdown.cpp.o.d"
  "bench_fig19_speedup_breakdown"
  "bench_fig19_speedup_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_speedup_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
