# Empty compiler generated dependencies file for example_codesign_search.
# This may be replaced when dependencies are built.
