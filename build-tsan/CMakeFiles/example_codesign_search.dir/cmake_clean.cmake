file(REMOVE_RECURSE
  "CMakeFiles/example_codesign_search.dir/examples/codesign_search.cpp.o"
  "CMakeFiles/example_codesign_search.dir/examples/codesign_search.cpp.o.d"
  "example_codesign_search"
  "example_codesign_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_codesign_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
