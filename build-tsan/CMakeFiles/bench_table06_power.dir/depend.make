# Empty dependencies file for bench_table06_power.
# This may be replaced when dependencies are built.
