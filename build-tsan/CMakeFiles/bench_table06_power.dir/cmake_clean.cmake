file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_power.dir/bench/table06_power.cpp.o"
  "CMakeFiles/bench_table06_power.dir/bench/table06_power.cpp.o.d"
  "bench_table06_power"
  "bench_table06_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
