file(REMOVE_RECURSE
  "CMakeFiles/throughput_quantize_test.dir/tests/throughput_quantize_test.cpp.o"
  "CMakeFiles/throughput_quantize_test.dir/tests/throughput_quantize_test.cpp.o.d"
  "throughput_quantize_test"
  "throughput_quantize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_quantize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
