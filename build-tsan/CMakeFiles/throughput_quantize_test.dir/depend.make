# Empty dependencies file for throughput_quantize_test.
# This may be replaced when dependencies are built.
