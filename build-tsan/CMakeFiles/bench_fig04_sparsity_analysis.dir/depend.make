# Empty dependencies file for bench_fig04_sparsity_analysis.
# This may be replaced when dependencies are built.
