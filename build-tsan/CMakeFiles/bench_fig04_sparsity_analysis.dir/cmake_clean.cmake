file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_sparsity_analysis.dir/bench/fig04_sparsity_analysis.cpp.o"
  "CMakeFiles/bench_fig04_sparsity_analysis.dir/bench/fig04_sparsity_analysis.cpp.o.d"
  "bench_fig04_sparsity_analysis"
  "bench_fig04_sparsity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_sparsity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
