file(REMOVE_RECURSE
  "CMakeFiles/report_export_test.dir/tests/report_export_test.cpp.o"
  "CMakeFiles/report_export_test.dir/tests/report_export_test.cpp.o.d"
  "report_export_test"
  "report_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
