# Empty dependencies file for report_export_test.
# This may be replaced when dependencies are built.
