file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_sota.dir/bench/table05_sota.cpp.o"
  "CMakeFiles/bench_table05_sota.dir/bench/table05_sota.cpp.o.d"
  "bench_table05_sota"
  "bench_table05_sota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
