# Empty compiler generated dependencies file for bench_table05_sota.
# This may be replaced when dependencies are built.
