file(REMOVE_RECURSE
  "CMakeFiles/deployment_pipeline_test.dir/tests/deployment_pipeline_test.cpp.o"
  "CMakeFiles/deployment_pipeline_test.dir/tests/deployment_pipeline_test.cpp.o.d"
  "deployment_pipeline_test"
  "deployment_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
