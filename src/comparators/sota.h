/**
 * @file sota.h
 * The seven state-of-the-art attention accelerators of Table V, with
 * the paper's normalisation methodology implemented as code:
 *
 *  - ASIC designs are compared "based on the assumption that all the
 *    ASIC designs are clocked at 1 GHz with 128 multipliers"; designs
 *    published with more multipliers have their throughput linearly
 *    scaled down by (multipliers / 128), and their power scaled the
 *    same way (Sec. VI-F, with the Sanger and DOTA worked examples).
 *  - Accelerators that only accelerate attention have their available
 *    multipliers reused for the FFN so the comparison is end-to-end.
 *
 * Each entry records the published raw data point we scale from plus
 * the resulting normalised latency/power, so the bench can show the
 * derivation (the paper's own Table V values are kept alongside for
 * validation).
 */
#ifndef FABNET_COMPARATORS_SOTA_H
#define FABNET_COMPARATORS_SOTA_H

#include <string>
#include <vector>

namespace fabnet {
namespace comparators {

/** One published accelerator, normalised per the paper's method. */
struct SotaAccelerator
{
    std::string name;
    std::string venue;
    std::string technology; ///< e.g. "ASIC (40nm)"
    double freq_ghz = 1.0;
    std::size_t multipliers = 128; ///< after normalisation

    /** Normalised end-to-end latency on the Table V workload
     *  (one-layer vanilla Transformer, LRA-Image, seq 1024). */
    double latency_ms = 0.0;
    double power_w = 0.0;

    std::string derivation; ///< how the numbers were obtained

    double throughputPredPerS() const { return 1e3 / latency_ms; }
    double energyEffPredPerJ() const
    {
        return throughputPredPerS() / power_w;
    }
};

/** All seven baseline rows of Table V. */
std::vector<SotaAccelerator> sotaCatalog();

/**
 * The paper's linear normalisation: scale a design's latency from its
 * published multiplier count down to the target budget (fewer
 * multipliers -> proportionally longer latency).
 */
double scaleLatencyToBudget(double latency_ms, std::size_t published_mults,
                            double published_ghz,
                            std::size_t target_mults, double target_ghz);

/** Same linear scaling for power. */
double scalePowerToBudget(double power_w, std::size_t published_mults,
                          std::size_t target_mults);

} // namespace comparators
} // namespace fabnet

#endif // FABNET_COMPARATORS_SOTA_H
