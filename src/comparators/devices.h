/**
 * @file devices.h
 * Roofline-style latency/energy models of the CPU and GPU platforms
 * the paper compares against (Table IV): Nvidia V100, TITAN Xp,
 * Jetson Nano and Raspberry Pi 4.
 *
 * Substitution (DESIGN.md §4): we do not have this hardware, so each
 * device is modelled as
 *     t_op = max(flops / (peak * eff_kind), bytes / bw, overhead)
 * summed over the framework-level ops of a forward pass, with
 * per-kernel-kind efficiency factors (GEMM, FFT, butterfly, pointwise)
 * and a per-op framework overhead that dominates small models - the
 * effect that makes the FPGA win at short sequence lengths in Fig. 20.
 * Device peak numbers come from public spec sheets; efficiency and
 * overhead constants are calibrated once, documented here, and used
 * unchanged across every experiment.
 */
#ifndef FABNET_COMPARATORS_DEVICES_H
#define FABNET_COMPARATORS_DEVICES_H

#include <string>

#include "model/config.h"

namespace fabnet {
namespace comparators {

/** A CPU/GPU platform model. */
struct DeviceModel
{
    std::string name;
    double peak_gflops = 0.0;   ///< fp32 peak
    double mem_bw_gbps = 0.0;
    double power_w = 0.0;       ///< board power under load
    double op_overhead_s = 0.0; ///< per-kernel framework overhead
    double mem_limit_gb = 0.0;  ///< usable memory (OOM modelling)
    std::string technology;

    // Achievable fraction of peak per kernel kind.
    double eff_gemm = 0.45;
    double eff_fft = 0.20;
    double eff_butterfly = 0.15;
    double eff_pointwise = 0.05;
};

DeviceModel nvidiaV100();
DeviceModel nvidiaTitanXp();
DeviceModel jetsonNano();
DeviceModel raspberryPi4();

/** Latency estimate of one forward pass on a device. */
struct DeviceLatency
{
    double seconds = 0.0;
    bool oom = false;         ///< exceeded the device memory
    double flops = 0.0;       ///< model FLOPs executed
    double overhead_s = 0.0;  ///< time attributed to launch overhead
    double compute_s = 0.0;
    double memory_s = 0.0;

    double milliseconds() const { return seconds * 1e3; }
};

/** Estimate one batch-1 forward pass of @p cfg at @p seq. */
DeviceLatency runOnDevice(const DeviceModel &device,
                          const ModelConfig &cfg, std::size_t seq);

/** Effective throughput in GOPS (model FLOPs / latency). */
double deviceGops(const DeviceLatency &lat);

/** Energy efficiency in GOPS/W. */
double deviceGopsPerWatt(const DeviceModel &device,
                         const DeviceLatency &lat);

} // namespace comparators
} // namespace fabnet

#endif // FABNET_COMPARATORS_DEVICES_H
