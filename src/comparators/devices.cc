#include "comparators/devices.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "model/flops.h"

namespace fabnet {
namespace comparators {

DeviceModel
nvidiaV100()
{
    DeviceModel d;
    d.name = "Nvidia V100";
    d.peak_gflops = 15'700.0; // fp32
    d.mem_bw_gbps = 900.0;    // HBM2
    d.power_w = 300.0;
    // Measured-style PyTorch dispatch + kernel overhead for this
    // workload family (butterfly CUDA kernels [32] + rfft2, batch 1).
    d.op_overhead_s = 250e-6;
    d.mem_limit_gb = 32.0;
    d.technology = "12 nm";
    return d;
}

DeviceModel
nvidiaTitanXp()
{
    DeviceModel d;
    d.name = "Nvidia TITAN Xp";
    d.peak_gflops = 12'150.0;
    d.mem_bw_gbps = 547.0;
    d.power_w = 250.0;
    d.op_overhead_s = 250e-6;
    d.mem_limit_gb = 12.0;
    d.technology = "16 nm";
    return d;
}

DeviceModel
jetsonNano()
{
    DeviceModel d;
    d.name = "Jetson Nano";
    d.peak_gflops = 235.0; // fp32 (472 GFLOPS fp16)
    d.mem_bw_gbps = 25.6;
    d.power_w = 10.0;
    d.op_overhead_s = 450e-6; // slow host CPU drives the launches
    d.mem_limit_gb = 4.0;
    d.technology = "20 nm";
    return d;
}

DeviceModel
raspberryPi4()
{
    DeviceModel d;
    d.name = "Raspberry Pi 4";
    d.peak_gflops = 12.0; // 4x Cortex-A72 NEON, realistic GEMM peak
    d.mem_bw_gbps = 4.0;
    d.power_w = 3.6; // active-minus-idle board power under NEON load
    d.op_overhead_s = 20e-6; // no device launch, Python dispatch only
    d.mem_limit_gb = 2.5;    // usable after OS/runtime
    d.technology = "28 nm";
    d.eff_gemm = 0.5;
    d.eff_fft = 0.3;
    d.eff_butterfly = 0.2;
    d.eff_pointwise = 0.2;
    return d;
}

namespace {

/** One framework-level kernel. */
struct KernelOp
{
    double flops = 0.0;
    double bytes = 0.0;
    double eff = 1.0;
};

/** Approximate op list of one forward pass (batch 1). */
std::vector<KernelOp>
kernelTrace(const DeviceModel &dev, const ModelConfig &cfg,
            std::size_t seq)
{
    std::vector<KernelOp> ops;
    const double t = static_cast<double>(seq);
    const double d = static_cast<double>(cfg.d_hid);
    const double h = static_cast<double>(cfg.ffnHidden());
    const double act = t * d * 4.0; // fp32 activation bytes

    const std::size_t n_fbfly = cfg.kind == ModelKind::FABNet
                                    ? cfg.n_total - cfg.n_abfly
                                    : (cfg.kind == ModelKind::FNet
                                           ? cfg.n_total
                                           : 0);

    for (std::size_t blk = 0; blk < cfg.n_total; ++blk) {
        const bool fourier = blk < n_fbfly;
        const bool butterfly = cfg.kind == ModelKind::FABNet;

        if (fourier) {
            // One fused rfft2 kernel.
            ops.push_back({fourierMixFlops(seq, cfg.d_hid),
                           3.0 * act, dev.eff_fft});
        } else {
            const double eff =
                butterfly ? dev.eff_butterfly : dev.eff_gemm;
            const double proj_flops =
                butterfly ? butterflyLinearFlops(seq, cfg.d_hid,
                                                 cfg.d_hid)
                          : denseLinearFlops(seq, cfg.d_hid, cfg.d_hid);
            const double proj_w =
                butterfly
                    ? static_cast<double>(butterflyLinearParams(
                          cfg.d_hid, cfg.d_hid)) * 4.0
                    : d * d * 4.0;
            for (int i = 0; i < 4; ++i) // Q, K, V, O projections
                ops.push_back({proj_flops, 2.0 * act + proj_w, eff});
            // QK^T, softmax, SV.
            ops.push_back({2.0 * t * t * d, 2.0 * act + t * t * 4.0,
                           dev.eff_gemm});
            ops.push_back({5.0 * static_cast<double>(cfg.heads) * t * t,
                           2.0 * t * t * 4.0, dev.eff_pointwise});
            ops.push_back({2.0 * t * t * d, 2.0 * act + t * t * 4.0,
                           dev.eff_gemm});
        }

        // FFN (two kernels) + two LayerNorm/residual kernels.
        const double ffn_eff =
            butterfly ? dev.eff_butterfly : dev.eff_gemm;
        const double f1 =
            butterfly
                ? butterflyLinearFlops(seq, cfg.d_hid, cfg.ffnHidden())
                : denseLinearFlops(seq, cfg.d_hid, cfg.ffnHidden());
        const double f2 =
            butterfly
                ? butterflyLinearFlops(seq, cfg.ffnHidden(), cfg.d_hid)
                : denseLinearFlops(seq, cfg.ffnHidden(), cfg.d_hid);
        const double w1 =
            butterfly ? static_cast<double>(butterflyLinearParams(
                            cfg.d_hid, cfg.ffnHidden())) * 4.0
                      : d * h * 4.0;
        ops.push_back({f1, act + t * h * 4.0 + w1, ffn_eff});
        ops.push_back({f2, act + t * h * 4.0 + w1, ffn_eff});
        ops.push_back({12.0 * t * d, 2.0 * act, dev.eff_pointwise});
        ops.push_back({12.0 * t * d, 2.0 * act, dev.eff_pointwise});
    }
    return ops;
}

/** Rough peak-memory estimate (fp32 runtime, activations + weights). */
double
peakMemoryGb(const ModelConfig &cfg, std::size_t seq)
{
    const double t = static_cast<double>(seq);
    const double widest =
        static_cast<double>(std::max(cfg.ffnHidden(), cfg.d_hid));
    // Working-set factor of ~8 buffers per block (framework
    // intermediates, FFT workspace, allocator slack), calibrated to
    // reproduce the paper's OOM boundary on the Raspberry Pi
    // (FABNet-Large fails above sequence length 768).
    const double act_bytes = static_cast<double>(cfg.n_total) * 8.0 *
                             t * widest * 4.0;
    const double weight_bytes =
        static_cast<double>(modelParams(cfg)) * 4.0;
    return (act_bytes + weight_bytes) / 1e9;
}

} // namespace

DeviceLatency
runOnDevice(const DeviceModel &device, const ModelConfig &cfg,
            std::size_t seq)
{
    DeviceLatency lat;
    if (peakMemoryGb(cfg, seq) > device.mem_limit_gb) {
        lat.oom = true;
        return lat;
    }
    const auto ops = kernelTrace(device, cfg, seq);
    for (const auto &op : ops) {
        const double compute =
            op.flops / (device.peak_gflops * 1e9 * op.eff);
        const double memory = op.bytes / (device.mem_bw_gbps * 1e9);
        const double t =
            std::max({compute, memory, device.op_overhead_s});
        lat.seconds += t;
        lat.flops += op.flops;
        if (t == compute)
            lat.compute_s += t;
        else if (t == memory)
            lat.memory_s += t;
        else
            lat.overhead_s += t;
    }
    return lat;
}

double
deviceGops(const DeviceLatency &lat)
{
    return lat.seconds > 0.0 ? lat.flops / lat.seconds / 1e9 : 0.0;
}

double
deviceGopsPerWatt(const DeviceModel &device, const DeviceLatency &lat)
{
    return device.power_w > 0.0 ? deviceGops(lat) / device.power_w : 0.0;
}

} // namespace comparators
} // namespace fabnet
