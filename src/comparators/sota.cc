#include "comparators/sota.h"

namespace fabnet {
namespace comparators {

double
scaleLatencyToBudget(double latency_ms, std::size_t published_mults,
                     double published_ghz, std::size_t target_mults,
                     double target_ghz)
{
    const double mult_ratio = static_cast<double>(published_mults) /
                              static_cast<double>(target_mults);
    const double freq_ratio = published_ghz / target_ghz;
    return latency_ms * mult_ratio * freq_ratio;
}

double
scalePowerToBudget(double power_w, std::size_t published_mults,
                   std::size_t target_mults)
{
    return power_w * static_cast<double>(target_mults) /
           static_cast<double>(published_mults);
}

std::vector<SotaAccelerator>
sotaCatalog()
{
    std::vector<SotaAccelerator> v;
    // Latency/power follow the paper's normalisation of each design's
    // published numbers to 128 multipliers @ 1 GHz on the one-layer
    // Transformer / LRA-Image workload; the per-row derivations quote
    // the raw data used.
    v.push_back({"A3", "HPCA'20", "ASIC (40nm)", 1.0, 128, 56.0, 1.217,
                 "published attention-only speedup; multipliers reused "
                 "for FFN; already reported at 128 mult @ 1 GHz"});
    v.push_back({"SpAtten", "HPCA'21", "ASIC (40nm)", 1.0, 128, 48.8,
                 1.060,
                 "end-to-end numbers reported by the authors at the "
                 "128-mult normalisation of [6]"});
    v.push_back({"Sanger", "MICRO'21", "ASIC (55nm)", 1.0, 128, 45.2,
                 0.801,
                 "systolic array published at 1024 mult / 2243 mW; "
                 "power scaled by 1024/128 = 8 -> 280.4 mW + "
                 "pre-processing & memory modules -> 0.801 W"});
    v.push_back({"Energon", "TCAD'21", "ASIC (45nm)", 1.0, 128, 44.2,
                 2.633,
                 "low-precision predictor + attention engine, "
                 "normalised to the same budget"});
    v.push_back({"ELSA", "ISCA'21", "ASIC (40nm)", 1.0, 128, 34.7,
                 0.976,
                 "sign-random-projection approximation; attention-only "
                 "design extended to FFN by multiplier reuse"});
    v.push_back({"DOTA", "ASPLOS'22", "ASIC (22nm)", 1.0, 128, 34.1,
                 0.858,
                 "published 11.4x over V100 with 12,000 mult / 12 TOPS;"
                 " throughput scaled by 12000/128 = 93.75 -> 0.123x "
                 "of V100 (compute-bound assumption)"});
    v.push_back({"FTRANS", "ISLPED'20", "FPGA (16nm)", 0.170, 6531,
                 61.6, 25.130,
                 "FPGA design, used as published (6531 multipliers at "
                 "170 MHz); no normalisation applied"});
    return v;
}

} // namespace comparators
} // namespace fabnet
