/**
 * @file half.h
 * IEEE 754 binary16 emulation.
 *
 * The paper's accelerator computes in 16-bit half-precision floating
 * point ("We use 16-bit half-precision floating-point in our hardware
 * designs", Sec. VI-A). The functional datapath model in src/sim runs
 * on this type so that its numerics match what the RTL would produce,
 * and the cross-validation tests bound the fp16-vs-fp32 error.
 *
 * Conversion uses round-to-nearest-even, handles subnormals, infinities
 * and NaN. Arithmetic is performed by converting to float, computing,
 * and rounding back - exactly what a half-precision FPU does for
 * individual operations.
 */
#ifndef FABNET_TENSOR_HALF_H
#define FABNET_TENSOR_HALF_H

#include <cstdint>
#include <cstring>

namespace fabnet {

/** Convert a float to IEEE binary16 bits (round-to-nearest-even). */
std::uint16_t floatToHalfBits(float f);

/** Convert IEEE binary16 bits to float (exact). */
float halfBitsToFloat(std::uint16_t h);

/** Value-semantic half-precision float. */
class Half
{
  public:
    Half() = default;
    Half(float f) : bits_(floatToHalfBits(f)) {}

    /** Construct from raw storage bits. */
    static Half fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    std::uint16_t bits() const { return bits_; }
    float toFloat() const { return halfBitsToFloat(bits_); }
    operator float() const { return toFloat(); }

    Half operator+(Half o) const { return Half(toFloat() + o.toFloat()); }
    Half operator-(Half o) const { return Half(toFloat() - o.toFloat()); }
    Half operator*(Half o) const { return Half(toFloat() * o.toFloat()); }
    Half operator/(Half o) const { return Half(toFloat() / o.toFloat()); }
    Half operator-() const { return Half(-toFloat()); }

    bool operator==(Half o) const { return bits_ == o.bits_; }

  private:
    std::uint16_t bits_ = 0;
};

/** Round a float through half precision (quantisation operator). */
inline float
roundToHalf(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

} // namespace fabnet

#endif // FABNET_TENSOR_HALF_H
