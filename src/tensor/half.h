/**
 * @file half.h
 * IEEE 754 binary16 emulation.
 *
 * The paper's accelerator computes in 16-bit half-precision floating
 * point ("We use 16-bit half-precision floating-point in our hardware
 * designs", Sec. VI-A). The functional datapath model in src/sim runs
 * on this type so that its numerics match what the RTL would produce,
 * and the cross-validation tests bound the fp16-vs-fp32 error. The
 * fp16 runtime kernels (runtime/kernels.h, butterfly/qbutterfly.h)
 * round through these conversions in their inner loops, which is why
 * both directions are inline.
 *
 * Conversion uses round-to-nearest-even, handles subnormals, infinities
 * and NaN. Arithmetic is performed by converting to float, computing,
 * and rounding back - exactly what a half-precision FPU does for
 * individual operations.
 */
#ifndef FABNET_TENSOR_HALF_H
#define FABNET_TENSOR_HALF_H

#include <cstdint>
#include <cstring>

namespace fabnet {

/** Convert a float to IEEE binary16 bits (round-to-nearest-even). */
inline std::uint16_t
floatToHalfBits(float f)
{
    std::uint32_t x;
    std::memcpy(&x, &f, sizeof(x));

    const std::uint32_t sign = (x >> 16) & 0x8000u;
    std::uint32_t exp = (x >> 23) & 0xFFu;
    std::uint32_t mant = x & 0x7FFFFFu;

    if (exp == 0xFFu) {
        // Inf / NaN. Preserve a quiet-NaN payload bit.
        const std::uint16_t nan_mant = mant ? 0x0200u : 0u;
        return static_cast<std::uint16_t>(sign | 0x7C00u | nan_mant);
    }

    // Re-bias the exponent from 127 to 15.
    int e = static_cast<int>(exp) - 127 + 15;

    if (e >= 0x1F) {
        // Overflow -> infinity.
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }

    if (e <= 0) {
        // Subnormal half (or zero). The implicit leading 1 becomes
        // explicit, then the mantissa shifts right by 1-e extra places.
        if (e < -10)
            return static_cast<std::uint16_t>(sign); // underflow to 0
        mant |= 0x800000u;
        const int shift = 14 - e; // 24-bit mantissa down to 10 bits
        std::uint32_t half_mant = mant >> shift;
        // Round to nearest even.
        const std::uint32_t rem = mant & ((1u << shift) - 1u);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1u)))
            ++half_mant;
        return static_cast<std::uint16_t>(sign | half_mant);
    }

    // Normal half. Keep top 10 mantissa bits, round to nearest even.
    std::uint32_t half_mant = mant >> 13;
    const std::uint32_t rem = mant & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
        ++half_mant;
        if (half_mant == 0x400u) { // mantissa overflow -> bump exponent
            half_mant = 0;
            ++e;
            if (e >= 0x1F)
                return static_cast<std::uint16_t>(sign | 0x7C00u);
        }
    }
    return static_cast<std::uint16_t>(
        sign | (static_cast<std::uint32_t>(e) << 10) | half_mant);
}

/** Convert IEEE binary16 bits to float (exact). */
inline float
halfBitsToFloat(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u)
                               << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    std::uint32_t mant = h & 0x3FFu;

    std::uint32_t out;
    if (exp == 0) {
        if (mant == 0) {
            out = sign; // +/- zero
        } else {
            // Subnormal: normalise.
            int e = -1;
            std::uint32_t m = mant;
            do {
                ++e;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            mant = m & 0x3FFu;
            const std::uint32_t fexp =
                static_cast<std::uint32_t>(127 - 15 - e);
            out = sign | (fexp << 23) | (mant << 13);
        }
    } else if (exp == 0x1Fu) {
        out = sign | 0x7F800000u | (mant << 13); // Inf / NaN
    } else {
        const std::uint32_t fexp = exp - 15 + 127;
        out = sign | (fexp << 23) | (mant << 13);
    }

    float f;
    std::memcpy(&f, &out, sizeof(f));
    return f;
}

/** Value-semantic half-precision float. */
class Half
{
  public:
    Half() = default;
    Half(float f) : bits_(floatToHalfBits(f)) {}

    /** Construct from raw storage bits. */
    static Half fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    std::uint16_t bits() const { return bits_; }
    float toFloat() const { return halfBitsToFloat(bits_); }
    operator float() const { return toFloat(); }

    Half operator+(Half o) const { return Half(toFloat() + o.toFloat()); }
    Half operator-(Half o) const { return Half(toFloat() - o.toFloat()); }
    Half operator*(Half o) const { return Half(toFloat() * o.toFloat()); }
    Half operator/(Half o) const { return Half(toFloat() / o.toFloat()); }
    Half operator-() const { return Half(-toFloat()); }

    bool operator==(Half o) const { return bits_ == o.bits_; }

  private:
    std::uint16_t bits_ = 0;
};

/** Round a float through half precision (quantisation operator). */
inline float
roundToHalf(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

} // namespace fabnet

#endif // FABNET_TENSOR_HALF_H
