/**
 * @file tensor.h
 * Dense row-major float tensor used throughout the FABNet library.
 *
 * The tensor is deliberately minimal: a shape vector plus a contiguous
 * float buffer. Ranks 1-3 cover everything the models need
 * ([batch, seq, hidden] activations, [rows, cols] weights, [n] vectors).
 * All numeric kernels live in ops.h; this header only owns storage,
 * shape book-keeping and element access.
 */
#ifndef FABNET_TENSOR_TENSOR_H
#define FABNET_TENSOR_TENSOR_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fabnet {

/** Dense row-major float tensor of rank 1 to 3. */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no storage). */
    Tensor() = default;

    /** Allocate a zero-initialised tensor with the given shape. */
    explicit Tensor(std::vector<std::size_t> shape);

    /** Convenience constructors for common ranks. */
    static Tensor zeros(std::size_t n);
    static Tensor zeros(std::size_t rows, std::size_t cols);
    static Tensor zeros(std::size_t b, std::size_t t, std::size_t d);

    /** Build a rank-1 tensor from explicit values. */
    static Tensor fromVector(const std::vector<float> &values);

    /** Build a rank-2 tensor from explicit row-major values. */
    static Tensor fromMatrix(std::size_t rows, std::size_t cols,
                             const std::vector<float> &values);

    /** Total number of elements. */
    std::size_t size() const { return data_.size(); }

    /** Tensor rank (number of dimensions). */
    std::size_t rank() const { return shape_.size(); }

    /** Shape accessor. */
    const std::vector<std::size_t> &shape() const { return shape_; }

    /** Size of dimension @p i (0-based). */
    std::size_t dim(std::size_t i) const;

    /** Raw storage access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::vector<float> &raw() { return data_; }
    const std::vector<float> &raw() const { return data_; }

    /** Rank-1 element access. */
    float &at(std::size_t i);
    float at(std::size_t i) const;

    /** Rank-2 element access. */
    float &at(std::size_t i, std::size_t j);
    float at(std::size_t i, std::size_t j) const;

    /** Rank-3 element access. */
    float &at(std::size_t i, std::size_t j, std::size_t k);
    float at(std::size_t i, std::size_t j, std::size_t k) const;

    /**
     * Reinterpret the tensor with a new shape.
     * @pre the element count must be unchanged.
     */
    Tensor reshaped(std::vector<std::size_t> new_shape) const;

    /** In-place fill with a constant. */
    void fill(float value);

    /** True when shapes and all elements match exactly. */
    bool operator==(const Tensor &other) const;

    /** Human readable "[2, 3, 4]" shape string for error messages. */
    std::string shapeString() const;

  private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;

    std::size_t flatIndex2(std::size_t i, std::size_t j) const;
    std::size_t flatIndex3(std::size_t i, std::size_t j,
                           std::size_t k) const;
};

} // namespace fabnet

#endif // FABNET_TENSOR_TENSOR_H
