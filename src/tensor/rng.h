/**
 * @file rng.h
 * Deterministic random number generation for reproducible experiments.
 *
 * Every stochastic component in the library (weight init, data
 * generators, DSE sampling) takes an explicit Rng so that the benches
 * regenerate the same tables on every run.
 */
#ifndef FABNET_TENSOR_RNG_H
#define FABNET_TENSOR_RNG_H

#include <cstdint>
#include <random>

#include "tensor/tensor.h"

namespace fabnet {

/** Seeded mersenne-twister wrapper with the distributions we need. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 42) : gen_(seed) {}

    /** Standard normal scaled by @p stddev. */
    float normal(float stddev = 1.0f, float mean = 0.0f)
    {
        std::normal_distribution<float> d(mean, stddev);
        return d(gen_);
    }

    /** Uniform float in [lo, hi). */
    float uniform(float lo = 0.0f, float hi = 1.0f)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        return d(gen_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int randint(int lo, int hi)
    {
        std::uniform_int_distribution<int> d(lo, hi);
        return d(gen_);
    }

    /** Bernoulli draw. */
    bool bernoulli(double p = 0.5)
    {
        std::bernoulli_distribution d(p);
        return d(gen_);
    }

    /** Tensor filled with N(mean, stddev^2) samples. */
    Tensor normalTensor(std::vector<std::size_t> shape, float stddev = 1.0f,
                        float mean = 0.0f)
    {
        Tensor t(std::move(shape));
        for (float &v : t.raw())
            v = normal(stddev, mean);
        return t;
    }

    /** Tensor filled with U[lo, hi) samples. */
    Tensor uniformTensor(std::vector<std::size_t> shape, float lo, float hi)
    {
        Tensor t(std::move(shape));
        for (float &v : t.raw())
            v = uniform(lo, hi);
        return t;
    }

    /** Underlying engine, for std::shuffle and friends. */
    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace fabnet

#endif // FABNET_TENSOR_RNG_H
