/**
 * @file ops.h
 * Numeric kernels on Tensor: GEMM, softmax, layer normalisation,
 * activations and element-wise arithmetic.
 *
 * These are the reference ("ground truth") implementations that the
 * hardware-functional models in src/sim are cross-validated against,
 * mirroring the paper's Appendix C RTL-vs-PyTorch validation.
 */
#ifndef FABNET_TENSOR_OPS_H
#define FABNET_TENSOR_OPS_H

#include <cstddef>

#include "tensor/tensor.h"

namespace fabnet {
namespace ops {

/**
 * C = A * B for rank-2 tensors; A is [m,k], B is [k,n].
 * Register-blocked and row-parallel (see runtime/parallel.h); bitwise
 * identical to reference::matmul at any thread count.
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * C = A * B^T for rank-2 tensors; A is [m,k], B is [n,k].
 * Multi-accumulator and row-parallel; bitwise identical to
 * reference::matmulTransposed at any thread count.
 */
Tensor matmulTransposed(const Tensor &a, const Tensor &b);

/**
 * GEMM backward, input side: dL/dA = dL/dC * B^T for C = A * B with
 * A [m,k], B [k,n], grad_c [m,n]. Row-parallel with the per-element
 * reduction kept in ascending-n order; bitwise identical to
 * reference::matmulGradA at any thread count. (Lowered onto the
 * matmulTransposed panel - the shapes line up exactly.)
 */
Tensor matmulGradA(const Tensor &grad_c, const Tensor &b);

/**
 * GEMM backward, weight side: dL/dB = A^T * dL/dC for C = A * B with
 * A [m,k], grad_c [m,n]. Parallel over the k output rows (each task
 * OWNS a disjoint row range of dL/dB - see runtime/reduce.h for why
 * gradient accumulation is owner-parallelised rather than reduced
 * across threads); every element's reduction runs in ascending-m
 * order, so results are bitwise identical to reference::matmulGradB
 * at any thread count.
 */
Tensor matmulGradB(const Tensor &a, const Tensor &grad_c);

/**
 * Dynamically quantised int8 GEMM: A is quantised per row, B per
 * column (symmetric, saturating - see runtime/kernels.h), the product
 * accumulates in exact int32 on the register-tiled int8 panel, and
 * each output dequantises as acc * (a_scale[i] * b_scale[j]). Returns
 * fp32. Row-parallel; results are *identical* (integer-exact) to
 * reference::matmulInt8 at any thread count.
 */
Tensor matmulInt8(const Tensor &a, const Tensor &b);

/**
 * fp16 GEMM: operands rounded through binary16, fp32 accumulation on
 * the register-tiled panel, outputs rounded through binary16 (still
 * returned as a float tensor). Bitwise identical to
 * reference::matmulF16 at any thread count.
 */
Tensor matmulF16(const Tensor &a, const Tensor &b);

namespace reference {

/**
 * Single-threaded scalar i-k-j GEMM - the seed kernel, kept as the
 * ground truth the blocked/parallel path is parity-tested and
 * benchmarked against.
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/** Single-threaded scalar dot-product GEMM against B^T (seed kernel). */
Tensor matmulTransposed(const Tensor &a, const Tensor &b);

/** Scalar ground truth of matmulGradA (same reduction order). */
Tensor matmulGradA(const Tensor &grad_c, const Tensor &b);

/** Scalar ground truth of matmulGradB (ascending-m accumulation). */
Tensor matmulGradB(const Tensor &a, const Tensor &grad_c);

/**
 * Scalar ground truth of matmulInt8: same quantisation helpers, naive
 * int32 triple loop, same dequantisation expression. The parity tests
 * require exact equality with the panel kernel.
 */
Tensor matmulInt8(const Tensor &a, const Tensor &b);

/** Scalar ground truth of matmulF16 (same rounding points). */
Tensor matmulF16(const Tensor &a, const Tensor &b);

} // namespace reference

/** Transpose of a rank-2 tensor. */
Tensor transpose(const Tensor &a);

/** Element-wise sum; shapes must match. */
Tensor add(const Tensor &a, const Tensor &b);

/** Element-wise difference; shapes must match. */
Tensor sub(const Tensor &a, const Tensor &b);

/** Element-wise (Hadamard) product; shapes must match. */
Tensor mul(const Tensor &a, const Tensor &b);

/** Scale every element by @p s. */
Tensor scale(const Tensor &a, float s);

/** a += b in place; shapes must match. */
void addInPlace(Tensor &a, const Tensor &b);

/**
 * Row-wise softmax over the last dimension.
 * Works for rank 2 ([rows, cols]) and rank 3 ([b, t, d]).
 */
Tensor softmaxLastDim(const Tensor &a);

/**
 * Row-wise layer normalisation over the last dimension with affine
 * parameters gamma/beta of length equal to the last dimension.
 * @param eps numerical-stability epsilon (paper models use 1e-5).
 */
Tensor layerNormLastDim(const Tensor &a, const std::vector<float> &gamma,
                        const std::vector<float> &beta, float eps = 1e-5f);

/** Rectified linear unit. */
Tensor relu(const Tensor &a);

/** Gaussian error linear unit (tanh approximation, as in BERT). */
Tensor gelu(const Tensor &a);

/** Sum of all elements. */
double sum(const Tensor &a);

/** Mean of all elements. */
double mean(const Tensor &a);

/** Largest absolute element. */
float maxAbs(const Tensor &a);

/** Largest absolute element-wise difference between two tensors. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/** True when |a - b| <= tol element-wise (shapes must match). */
bool allClose(const Tensor &a, const Tensor &b, float tol = 1e-5f);

} // namespace ops
} // namespace fabnet

#endif // FABNET_TENSOR_OPS_H
