#include "tensor/tensor.h"

#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace fabnet {

namespace {

std::size_t
product(const std::vector<std::size_t> &shape)
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

} // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0f)
{
    if (shape_.empty() || shape_.size() > 3)
        throw std::invalid_argument("Tensor rank must be 1..3");
}

Tensor
Tensor::zeros(std::size_t n)
{
    return Tensor({n});
}

Tensor
Tensor::zeros(std::size_t rows, std::size_t cols)
{
    return Tensor({rows, cols});
}

Tensor
Tensor::zeros(std::size_t b, std::size_t t, std::size_t d)
{
    return Tensor({b, t, d});
}

Tensor
Tensor::fromVector(const std::vector<float> &values)
{
    Tensor t({values.size()});
    t.data_ = values;
    return t;
}

Tensor
Tensor::fromMatrix(std::size_t rows, std::size_t cols,
                   const std::vector<float> &values)
{
    if (values.size() != rows * cols)
        throw std::invalid_argument("fromMatrix: size mismatch");
    Tensor t({rows, cols});
    t.data_ = values;
    return t;
}

std::size_t
Tensor::dim(std::size_t i) const
{
    if (i >= shape_.size())
        throw std::out_of_range("Tensor::dim index out of range");
    return shape_[i];
}

float &
Tensor::at(std::size_t i)
{
    assert(rank() == 1 && i < data_.size());
    return data_[i];
}

float
Tensor::at(std::size_t i) const
{
    assert(rank() == 1 && i < data_.size());
    return data_[i];
}

std::size_t
Tensor::flatIndex2(std::size_t i, std::size_t j) const
{
    assert(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return i * shape_[1] + j;
}

std::size_t
Tensor::flatIndex3(std::size_t i, std::size_t j, std::size_t k) const
{
    assert(rank() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
    return (i * shape_[1] + j) * shape_[2] + k;
}

float &
Tensor::at(std::size_t i, std::size_t j)
{
    return data_[flatIndex2(i, j)];
}

float
Tensor::at(std::size_t i, std::size_t j) const
{
    return data_[flatIndex2(i, j)];
}

float &
Tensor::at(std::size_t i, std::size_t j, std::size_t k)
{
    return data_[flatIndex3(i, j, k)];
}

float
Tensor::at(std::size_t i, std::size_t j, std::size_t k) const
{
    return data_[flatIndex3(i, j, k)];
}

Tensor
Tensor::reshaped(std::vector<std::size_t> new_shape) const
{
    Tensor out(std::move(new_shape));
    if (out.size() != size())
        throw std::invalid_argument("reshaped: element count mismatch");
    out.data_ = data_;
    return out;
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

bool
Tensor::operator==(const Tensor &other) const
{
    return shape_ == other.shape_ && data_ == other.data_;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            os << ", ";
        os << shape_[i];
    }
    os << "]";
    return os.str();
}

} // namespace fabnet
