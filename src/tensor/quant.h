/**
 * @file quant.h
 * Reduced-precision datapath selector shared by every quantized
 * surface (runtime kernels, quantized butterfly, quantized nn layers,
 * the model-level quantizer). Lives at the tensor layer because both
 * the butterfly and nn layers need it without depending on each other.
 *
 * - Int8: symmetric saturating int8 operands ([-127, 127], see
 *   runtime/kernels.h), exact int32 accumulation, fp32 dequantised
 *   outputs. Activations are quantised dynamically per row; weights
 *   statically per output feature (GEMM) or per stage (butterfly).
 * - Fp16: IEEE binary16 operand storage (tensor/half.h), fp32
 *   accumulation, outputs rounded through binary16 - the numeric
 *   contract of the paper's 16-bit FPGA datapath (Sec. VI-A).
 */
#ifndef FABNET_TENSOR_QUANT_H
#define FABNET_TENSOR_QUANT_H

namespace fabnet {

/** Which reduced-precision datapath a quantized layer computes in. */
enum class QuantKind {
    Int8, ///< int8 operands, int32 accumulation, fp32 dequant
    Fp16  ///< binary16 operands/results, fp32 accumulation
};

/** Human-readable name ("int8" / "fp16") for logs and benches. */
inline const char *
quantKindName(QuantKind kind)
{
    return kind == QuantKind::Int8 ? "int8" : "fp16";
}

} // namespace fabnet

#endif // FABNET_TENSOR_QUANT_H
