#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "runtime/autotune.h"
#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "runtime/reduce.h"
#include "runtime/workspace.h"

namespace fabnet {
namespace ops {

namespace {

void
requireRank2(const Tensor &t, const char *what)
{
    if (t.rank() != 2)
        throw std::invalid_argument(std::string(what) +
                                    ": rank-2 tensor required, got " +
                                    t.shapeString());
}

void
requireSameShape(const Tensor &a, const Tensor &b, const char *what)
{
    if (a.shape() != b.shape())
        throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                    a.shapeString() + " vs " +
                                    b.shapeString());
}

/** Rows per parallel chunk for the GEMM paths (multiple of the 4-row
 *  register panel in runtime/kernels.h). */
constexpr std::size_t kGemmGrain = 8;

/** Workspace tag for matmulTransposed's per-call B^T copy. */
struct MatmulTWs;

/** Workspace tags for the quantised GEMM entry points. */
struct MatmulI8Ws;  ///< int8 operands (A then B, one int8 buffer)
struct MatmulI8PWs; ///< packed int16 B pairs
struct MatmulI8SWs; ///< per-row/per-column scales (floats)
struct MatmulF16Ws; ///< fp16-rounded operand copies

void
checkMatmulShapes(const Tensor &a, const Tensor &b, const char *what)
{
    requireRank2(a, what);
    requireRank2(b, what);
    if (b.dim(0) != a.dim(1))
        throw std::invalid_argument(std::string(what) +
                                    ": inner dimension mismatch");
}

/**
 * Quantise GEMM operands the one canonical way: A per row, B per
 * column, scales from the row/column max-abs through
 * runtime::int8Scale. Both the panel path and the scalar reference
 * quantise through this helper, so their int8 operands are identical
 * by construction.
 */
void
quantizeGemmOperandsInt8(const Tensor &a, const Tensor &b,
                         std::int8_t *aq, std::int8_t *bq, float *sa,
                         float *sb)
{
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < m; ++i) {
        sa[i] = runtime::int8Scale(runtime::maxAbsRow(pa + i * k, k));
        runtime::quantizeInt8Row(pa + i * k, aq + i * k, k, sa[i]);
    }
    for (std::size_t j = 0; j < n; ++j)
        sb[j] = 0.0f;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float *brow = pb + kk * n;
        for (std::size_t j = 0; j < n; ++j)
            sb[j] = std::max(sb[j], std::fabs(brow[j]));
    }
    for (std::size_t j = 0; j < n; ++j)
        sb[j] = runtime::int8Scale(sb[j]);
    // Row-major sweep with per-column inverse scales keeps the writes
    // contiguous (a column-major loop is ~4x slower at 512^2).
    std::vector<float> inv(n);
    for (std::size_t j = 0; j < n; ++j)
        inv[j] = 1.0f / sb[j];
    for (std::size_t kk = 0; kk < k; ++kk)
        runtime::quantizeInt8RowPerCol(pb + kk * n, bq + kk * n, n,
                                       inv.data());
}

} // namespace

namespace reference {

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmul");
    requireRank2(b, "matmul");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    if (b.dim(0) != k)
        throw std::invalid_argument("matmul: inner dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // i-k-j loop order keeps the inner loop contiguous for both B and C.
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = pa[i * k + kk];
            const float *brow = pb + kk * n;
            float *crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] = runtime::madd(av, brow[j], crow[j]);
        }
    }
    return c;
}

Tensor
matmulTransposed(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmulTransposed");
    requireRank2(b, "matmulTransposed");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    if (b.dim(1) != k)
        throw std::invalid_argument("matmulTransposed: dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const float *arow = pa + i * k;
            const float *brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc = runtime::madd(arow[kk], brow[kk], acc);
            pc[i * n + j] = acc;
        }
    }
    return c;
}

Tensor
matmulGradA(const Tensor &grad_c, const Tensor &b)
{
    // dL/dA = gC * B^T is exactly the A*B^T dot-product kernel with
    // gC as the left operand; delegate so the seed chain order lives
    // in one place.
    return matmulTransposed(grad_c, b);
}

Tensor
matmulGradB(const Tensor &a, const Tensor &grad_c)
{
    requireRank2(a, "matmulGradB");
    requireRank2(grad_c, "matmulGradB");
    const std::size_t m = a.dim(0), k = a.dim(1), n = grad_c.dim(1);
    if (grad_c.dim(0) != m)
        throw std::invalid_argument("matmulGradB: row count mismatch");

    Tensor c = Tensor::zeros(k, n);
    const float *pa = a.data();
    const float *pg = grad_c.data();
    float *pc = c.data();
    // dB[i][j] = sum_r A[r][i] * gC[r][j], r strictly ascending.
    for (std::size_t i = 0; i < k; ++i) {
        float *crow = pc + i * n;
        for (std::size_t r = 0; r < m; ++r) {
            const float av = pa[r * k + i];
            const float *grow = pg + r * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] = runtime::madd(av, grow[j], crow[j]);
        }
    }
    return c;
}

Tensor
matmulInt8(const Tensor &a, const Tensor &b)
{
    checkMatmulShapes(a, b, "matmulInt8");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);

    std::vector<std::int8_t> aq(m * k), bq(k * n);
    std::vector<float> sa(m), sb(n);
    quantizeGemmOperandsInt8(a, b, aq.data(), bq.data(), sa.data(),
                             sb.data());

    Tensor c = Tensor::zeros(m, n);
    float *pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += static_cast<std::int32_t>(aq[i * k + kk]) *
                       static_cast<std::int32_t>(bq[kk * n + j]);
            pc[i * n + j] = runtime::dequantInt8(acc, sa[i], sb[j]);
        }
    }
    return c;
}

Tensor
matmulF16(const Tensor &a, const Tensor &b)
{
    checkMatmulShapes(a, b, "matmulF16");
    Tensor ar = a;
    Tensor br = b;
    runtime::roundRowToHalf(ar.data(), ar.size());
    runtime::roundRowToHalf(br.data(), br.size());
    Tensor c = matmul(ar, br); // scalar seed ikj chain
    const std::size_t n = c.dim(1);
    for (std::size_t r = 0; r < c.dim(0); ++r)
        runtime::roundRowToHalf(c.data() + r * n, n);
    return c;
}

} // namespace reference

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmul");
    requireRank2(b, "matmul");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    if (b.dim(0) != k)
        throw std::invalid_argument("matmul: inner dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    const runtime::GemmPlan plan = runtime::planGemmF32(m, k, n);
    runtime::parallelFor(0, m, plan.grain,
                         [&](std::size_t r0, std::size_t r1) {
                             runtime::gemmRowsIKJ(pa, pb, pc, r0, r1, k,
                                                  n, nullptr, plan.mk);
                         });
    return c;
}

Tensor
matmulTransposed(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmulTransposed");
    requireRank2(b, "matmulTransposed");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    if (b.dim(1) != k)
        throw std::invalid_argument("matmulTransposed: dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    float *pc = c.data();
    // Physically transpose B once (pure data movement, no arithmetic)
    // so the register-tiled panel kernel runs on contiguous columns;
    // per-output accumulation order is unchanged, so results stay
    // bitwise identical to the scalar dot-product reference.
    float *bt = runtime::threadWorkspace<MatmulTWs>(k * n);
    runtime::transposeInto(bt, b.data(), n, k);
    const runtime::GemmPlan plan = runtime::planGemmF32(m, k, n);
    runtime::parallelFor(0, m, plan.grain,
                         [&](std::size_t r0, std::size_t r1) {
                             runtime::gemmRowsIKJ(pa, bt, pc, r0, r1, k,
                                                  n, nullptr, plan.mk);
                         });
    return c;
}

Tensor
matmulGradA(const Tensor &grad_c, const Tensor &b)
{
    // Same delegation as the reference: gC [m,n] * (B [k,n])^T is the
    // A*B^T panel with matching shapes and the identical ascending-n
    // per-element chain.
    return matmulTransposed(grad_c, b);
}

Tensor
matmulGradB(const Tensor &a, const Tensor &grad_c)
{
    requireRank2(a, "matmulGradB");
    requireRank2(grad_c, "matmulGradB");
    const std::size_t m = a.dim(0), k = a.dim(1), n = grad_c.dim(1);
    if (grad_c.dim(0) != m)
        throw std::invalid_argument("matmulGradB: row count mismatch");

    Tensor c = Tensor::zeros(k, n);
    const float *pa = a.data();
    const float *pg = grad_c.data();
    float *pc = c.data();
    // Owner-parallel over dB rows (runtime/reduce.h): each task owns
    // the disjoint row range [i0, i1) of dL/dB and accumulates the m
    // contributions in the reference's ascending-r order, walking gC
    // row-major per r so the inner loop stays contiguous.
    runtime::parallelFor(0, k, runtime::ownerGrain(k, kGemmGrain),
                         [&](std::size_t i0, std::size_t i1) {
        for (std::size_t r = 0; r < m; ++r) {
            const float *arow = pa + r * k;
            const float *grow = pg + r * n;
            for (std::size_t i = i0; i < i1; ++i) {
                const float av = arow[i];
                float *crow = pc + i * n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] = runtime::madd(av, grow[j], crow[j]);
            }
        }
    });
    return c;
}

Tensor
matmulInt8(const Tensor &a, const Tensor &b)
{
    checkMatmulShapes(a, b, "matmulInt8");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);

    std::int8_t *q8 = runtime::threadWorkspaceAs<MatmulI8Ws, std::int8_t>(
        m * k + k * n);
    std::int8_t *aq = q8;
    std::int8_t *bq = q8 + m * k;
    float *scales =
        runtime::threadWorkspace<MatmulI8SWs>(m + n);
    float *sa = scales;
    float *sb = scales + m;
    quantizeGemmOperandsInt8(a, b, aq, bq, sa, sb);

    std::int16_t *bp =
        runtime::threadWorkspaceAs<MatmulI8PWs, std::int16_t>(
            ((k + 1) / 2) * n * 2);
    runtime::packInt8PairsB(bq, bp, k, n);

    Tensor c = Tensor::zeros(m, n);
    float *pc = c.data();
    const runtime::GemmPlan plan = runtime::planGemmInt8(m, k, n);
    runtime::parallelFor(0, m, plan.grain,
                         [&](std::size_t r0, std::size_t r1) {
                             runtime::gemmRowsInt8(aq, bp, pc, r0, r1,
                                                   k, n, sa, sb);
                         });
    return c;
}

Tensor
matmulF16(const Tensor &a, const Tensor &b)
{
    checkMatmulShapes(a, b, "matmulF16");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);

    float *rounded =
        runtime::threadWorkspace<MatmulF16Ws>(m * k + k * n);
    float *aw = rounded;
    float *bw = rounded + m * k;
    std::memcpy(aw, a.data(), m * k * sizeof(float));
    std::memcpy(bw, b.data(), k * n * sizeof(float));
    runtime::roundRowToHalf(aw, m * k);
    runtime::roundRowToHalf(bw, k * n);

    Tensor c = Tensor::zeros(m, n);
    float *pc = c.data();
    const runtime::GemmPlan plan = runtime::planGemmF16(m, k, n);
    runtime::parallelFor(0, m, plan.grain,
                         [&](std::size_t r0, std::size_t r1) {
                             runtime::gemmRowsF16(aw, bw, pc, r0, r1, k,
                                                  n, nullptr, plan.mk);
                         });
    return c;
}

Tensor
transpose(const Tensor &a)
{
    requireRank2(a, "transpose");
    const std::size_t m = a.dim(0), n = a.dim(1);
    Tensor t = Tensor::zeros(n, m);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "add");
    Tensor c = a;
    float *pc = c.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i)
        pc[i] += pb[i];
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "sub");
    Tensor c = a;
    float *pc = c.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i)
        pc[i] -= pb[i];
    return c;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "mul");
    Tensor c = a;
    float *pc = c.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i)
        pc[i] *= pb[i];
    return c;
}

Tensor
scale(const Tensor &a, float s)
{
    Tensor c = a;
    for (float &v : c.raw())
        v *= s;
    return c;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "addInPlace");
    float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        pa[i] += pb[i];
}

Tensor
softmaxLastDim(const Tensor &a)
{
    if (a.rank() < 2)
        throw std::invalid_argument("softmaxLastDim: rank >= 2 required");
    const std::size_t d = a.shape().back();
    const std::size_t rows = a.size() / d;
    Tensor out = a;
    float *p = out.data();
    runtime::parallelFor(0, rows, 16, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float *row = p + r * d;
            float mx = row[0];
            for (std::size_t j = 1; j < d; ++j)
                mx = std::max(mx, row[j]);
            float denom = 0.0f;
            for (std::size_t j = 0; j < d; ++j) {
                row[j] = std::exp(row[j] - mx);
                denom += row[j];
            }
            const float inv = 1.0f / denom;
            for (std::size_t j = 0; j < d; ++j)
                row[j] *= inv;
        }
    });
    return out;
}

Tensor
layerNormLastDim(const Tensor &a, const std::vector<float> &gamma,
                 const std::vector<float> &beta, float eps)
{
    const std::size_t d = a.shape().back();
    if (gamma.size() != d || beta.size() != d)
        throw std::invalid_argument("layerNormLastDim: affine size mismatch");
    const std::size_t rows = a.size() / d;
    Tensor out = a;
    float *p = out.data();
    const float *pg = gamma.data();
    const float *pb = beta.data();
    runtime::parallelFor(0, rows, 16, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float *row = p + r * d;
            float mean = 0.0f;
            for (std::size_t j = 0; j < d; ++j)
                mean += row[j];
            mean /= static_cast<float>(d);
            float var = 0.0f;
            for (std::size_t j = 0; j < d; ++j) {
                const float c = row[j] - mean;
                var += c * c;
            }
            var /= static_cast<float>(d);
            const float inv_std = 1.0f / std::sqrt(var + eps);
            for (std::size_t j = 0; j < d; ++j)
                row[j] = (row[j] - mean) * inv_std * pg[j] + pb[j];
        }
    });
    return out;
}

Tensor
relu(const Tensor &a)
{
    Tensor c = a;
    for (float &v : c.raw())
        v = std::max(v, 0.0f);
    return c;
}

Tensor
gelu(const Tensor &a)
{
    Tensor c = a;
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (float &v : c.raw()) {
        const float inner = k * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
    return c;
}

double
sum(const Tensor &a)
{
    double s = 0.0;
    for (float v : a.raw())
        s += v;
    return s;
}

double
mean(const Tensor &a)
{
    return a.size() ? sum(a) / static_cast<double>(a.size()) : 0.0;
}

float
maxAbs(const Tensor &a)
{
    float m = 0.0f;
    for (float v : a.raw())
        m = std::max(m, std::fabs(v));
    return m;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "maxAbsDiff");
    float m = 0.0f;
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(pa[i] - pb[i]));
    return m;
}

bool
allClose(const Tensor &a, const Tensor &b, float tol)
{
    if (a.shape() != b.shape())
        return false;
    return maxAbsDiff(a, b) <= tol;
}

} // namespace ops
} // namespace fabnet
