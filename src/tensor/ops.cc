#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"

namespace fabnet {
namespace ops {

namespace {

void
requireRank2(const Tensor &t, const char *what)
{
    if (t.rank() != 2)
        throw std::invalid_argument(std::string(what) +
                                    ": rank-2 tensor required, got " +
                                    t.shapeString());
}

void
requireSameShape(const Tensor &a, const Tensor &b, const char *what)
{
    if (a.shape() != b.shape())
        throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                    a.shapeString() + " vs " +
                                    b.shapeString());
}

/** Rows per parallel chunk for the GEMM paths (multiple of the 4-row
 *  register panel in runtime/kernels.h). */
constexpr std::size_t kGemmGrain = 8;

/** Workspace tag for matmulTransposed's per-call B^T copy. */
struct MatmulTWs;

} // namespace

namespace reference {

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmul");
    requireRank2(b, "matmul");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    if (b.dim(0) != k)
        throw std::invalid_argument("matmul: inner dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // i-k-j loop order keeps the inner loop contiguous for both B and C.
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = pa[i * k + kk];
            const float *brow = pb + kk * n;
            float *crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] = runtime::madd(av, brow[j], crow[j]);
        }
    }
    return c;
}

Tensor
matmulTransposed(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmulTransposed");
    requireRank2(b, "matmulTransposed");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    if (b.dim(1) != k)
        throw std::invalid_argument("matmulTransposed: dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const float *arow = pa + i * k;
            const float *brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc = runtime::madd(arow[kk], brow[kk], acc);
            pc[i * n + j] = acc;
        }
    }
    return c;
}

} // namespace reference

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmul");
    requireRank2(b, "matmul");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    if (b.dim(0) != k)
        throw std::invalid_argument("matmul: inner dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    runtime::parallelFor(0, m, kGemmGrain,
                         [&](std::size_t r0, std::size_t r1) {
                             runtime::gemmRowsIKJ(pa, pb, pc, r0, r1, k,
                                                  n);
                         });
    return c;
}

Tensor
matmulTransposed(const Tensor &a, const Tensor &b)
{
    requireRank2(a, "matmulTransposed");
    requireRank2(b, "matmulTransposed");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    if (b.dim(1) != k)
        throw std::invalid_argument("matmulTransposed: dimension mismatch");

    Tensor c = Tensor::zeros(m, n);
    const float *pa = a.data();
    float *pc = c.data();
    // Physically transpose B once (pure data movement, no arithmetic)
    // so the register-tiled panel kernel runs on contiguous columns;
    // per-output accumulation order is unchanged, so results stay
    // bitwise identical to the scalar dot-product reference.
    float *bt = runtime::threadWorkspace<MatmulTWs>(k * n);
    runtime::transposeInto(bt, b.data(), n, k);
    runtime::parallelFor(0, m, kGemmGrain,
                         [&](std::size_t r0, std::size_t r1) {
                             runtime::gemmRowsIKJ(pa, bt, pc, r0, r1, k,
                                                  n);
                         });
    return c;
}

Tensor
transpose(const Tensor &a)
{
    requireRank2(a, "transpose");
    const std::size_t m = a.dim(0), n = a.dim(1);
    Tensor t = Tensor::zeros(n, m);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "add");
    Tensor c = a;
    float *pc = c.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i)
        pc[i] += pb[i];
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "sub");
    Tensor c = a;
    float *pc = c.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i)
        pc[i] -= pb[i];
    return c;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "mul");
    Tensor c = a;
    float *pc = c.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < c.size(); ++i)
        pc[i] *= pb[i];
    return c;
}

Tensor
scale(const Tensor &a, float s)
{
    Tensor c = a;
    for (float &v : c.raw())
        v *= s;
    return c;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "addInPlace");
    float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        pa[i] += pb[i];
}

Tensor
softmaxLastDim(const Tensor &a)
{
    if (a.rank() < 2)
        throw std::invalid_argument("softmaxLastDim: rank >= 2 required");
    const std::size_t d = a.shape().back();
    const std::size_t rows = a.size() / d;
    Tensor out = a;
    float *p = out.data();
    runtime::parallelFor(0, rows, 16, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float *row = p + r * d;
            float mx = row[0];
            for (std::size_t j = 1; j < d; ++j)
                mx = std::max(mx, row[j]);
            float denom = 0.0f;
            for (std::size_t j = 0; j < d; ++j) {
                row[j] = std::exp(row[j] - mx);
                denom += row[j];
            }
            const float inv = 1.0f / denom;
            for (std::size_t j = 0; j < d; ++j)
                row[j] *= inv;
        }
    });
    return out;
}

Tensor
layerNormLastDim(const Tensor &a, const std::vector<float> &gamma,
                 const std::vector<float> &beta, float eps)
{
    const std::size_t d = a.shape().back();
    if (gamma.size() != d || beta.size() != d)
        throw std::invalid_argument("layerNormLastDim: affine size mismatch");
    const std::size_t rows = a.size() / d;
    Tensor out = a;
    float *p = out.data();
    const float *pg = gamma.data();
    const float *pb = beta.data();
    runtime::parallelFor(0, rows, 16, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float *row = p + r * d;
            float mean = 0.0f;
            for (std::size_t j = 0; j < d; ++j)
                mean += row[j];
            mean /= static_cast<float>(d);
            float var = 0.0f;
            for (std::size_t j = 0; j < d; ++j) {
                const float c = row[j] - mean;
                var += c * c;
            }
            var /= static_cast<float>(d);
            const float inv_std = 1.0f / std::sqrt(var + eps);
            for (std::size_t j = 0; j < d; ++j)
                row[j] = (row[j] - mean) * inv_std * pg[j] + pb[j];
        }
    });
    return out;
}

Tensor
relu(const Tensor &a)
{
    Tensor c = a;
    for (float &v : c.raw())
        v = std::max(v, 0.0f);
    return c;
}

Tensor
gelu(const Tensor &a)
{
    Tensor c = a;
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (float &v : c.raw()) {
        const float inner = k * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
    return c;
}

double
sum(const Tensor &a)
{
    double s = 0.0;
    for (float v : a.raw())
        s += v;
    return s;
}

double
mean(const Tensor &a)
{
    return a.size() ? sum(a) / static_cast<double>(a.size()) : 0.0;
}

float
maxAbs(const Tensor &a)
{
    float m = 0.0f;
    for (float v : a.raw())
        m = std::max(m, std::fabs(v));
    return m;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    requireSameShape(a, b, "maxAbsDiff");
    float m = 0.0f;
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(pa[i] - pb[i]));
    return m;
}

bool
allClose(const Tensor &a, const Tensor &b, float tol)
{
    if (a.shape() != b.shape())
        return false;
    return maxAbsDiff(a, b) <= tol;
}

} // namespace ops
} // namespace fabnet
