/**
 * @file classifier.h
 * End-to-end sequence classifier: embedding -> encoder blocks ->
 * mean-pool head, with training and evaluation loops. This is the
 * trainable object behind Fig. 16 and Table III.
 */
#ifndef FABNET_MODEL_CLASSIFIER_H
#define FABNET_MODEL_CLASSIFIER_H

#include <memory>
#include <vector>

#include "model/config.h"
#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/layer.h"
#include "nn/optimizer.h"
#include "tensor/rng.h"

namespace fabnet {

/** A labelled token sequence. */
struct Example
{
    std::vector<int> tokens;
    int label = 0;
};

/** Batch of examples with identical sequence length. */
struct Batch
{
    std::vector<int> tokens; ///< flat [batch * seq]
    std::vector<int> labels; ///< [batch]
    std::size_t batch = 0;
    std::size_t seq = 0;
};

/** Assemble a batch from a slice of a dataset (sequences padded/cut). */
Batch makeBatch(const std::vector<Example> &data, std::size_t start,
                std::size_t count, std::size_t seq, int pad_token = 0);

/** Embedding + encoder stack + pooled classifier head. */
class SequenceClassifier
{
  public:
    /**
     * Build from per-block specs. @p mixers and @p ffns are consumed;
     * both must have cfg.n_total entries.
     */
    SequenceClassifier(const ModelConfig &cfg,
                       std::vector<std::unique_ptr<nn::Layer>> mixers,
                       std::vector<std::unique_ptr<nn::Layer>> ffns,
                       Rng &rng);

    /** Logits [batch, classes] for a token batch. */
    Tensor forward(const std::vector<int> &tokens, std::size_t batch,
                   std::size_t seq);

    /**
     * One optimisation step on a batch.
     * @return the batch cross-entropy loss.
     */
    float trainBatch(const Batch &batch, nn::Adam &opt,
                     float clip_norm = 1.0f);

    /** Classification accuracy over a dataset (batched internally). */
    double evaluate(const std::vector<Example> &data, std::size_t seq,
                    std::size_t batch_size = 16);

    /** All trainable parameters, for the optimiser. */
    std::vector<nn::ParamRef> params();

    std::size_t numParams();

    const ModelConfig &config() const { return cfg_; }

  private:
    ModelConfig cfg_;
    nn::Embedding embedding_;
    std::vector<std::unique_ptr<nn::EncoderBlock>> blocks_;
    nn::MeanPoolClassifier head_;
};

/**
 * Train @p model for @p epochs over @p train, reporting accuracy on
 * @p test after every epoch. Returns the final test accuracy.
 */
double trainClassifier(SequenceClassifier &model,
                       const std::vector<Example> &train,
                       const std::vector<Example> &test, std::size_t seq,
                       std::size_t epochs, std::size_t batch_size,
                       float lr, Rng &rng, bool verbose = false);

} // namespace fabnet

#endif // FABNET_MODEL_CLASSIFIER_H
