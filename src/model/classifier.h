/**
 * @file classifier.h
 * End-to-end sequence classifier: embedding -> encoder blocks ->
 * mean-pool head, with training and evaluation loops. This is the
 * trainable object behind Fig. 16 and Table III.
 */
#ifndef FABNET_MODEL_CLASSIFIER_H
#define FABNET_MODEL_CLASSIFIER_H

#include <memory>
#include <vector>

#include "model/config.h"
#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/layer.h"
#include "nn/optimizer.h"
#include "tensor/rng.h"

namespace fabnet {

/** A labelled token sequence. */
struct Example
{
    std::vector<int> tokens;
    int label = 0;
};

/** Batch of examples with identical sequence length. */
struct Batch
{
    std::vector<int> tokens; ///< flat [batch * seq]
    std::vector<int> labels; ///< [batch]
    std::size_t batch = 0;
    std::size_t seq = 0;
};

/** Assemble a batch from a slice of a dataset (sequences padded/cut). */
Batch makeBatch(const std::vector<Example> &data, std::size_t start,
                std::size_t count, std::size_t seq, int pad_token = 0);

/** Embedding + encoder stack + pooled classifier head. */
class SequenceClassifier
{
  public:
    /**
     * Build from per-block specs. @p mixers and @p ffns are consumed;
     * both must have cfg.n_total entries.
     */
    SequenceClassifier(const ModelConfig &cfg,
                       std::vector<std::unique_ptr<nn::Layer>> mixers,
                       std::vector<std::unique_ptr<nn::Layer>> ffns,
                       Rng &rng);

    /** Logits [batch, classes] for a token batch. */
    Tensor forward(const std::vector<int> &tokens, std::size_t batch,
                   std::size_t seq);

    /**
     * Inference logits for a right-padded batch of mixed-length
     * sequences: @p tokens is flat [batch * seq] with sequence b
     * occupying the first lens[b] slots of its row and pad tokens
     * after. Attention mixers mask padded keys and the pooled head
     * averages over the real prefix only, so for attention-mixer
     * models each logits row is bitwise identical to
     * forward(sequence_b, 1, lens[b]) - the property the serving
     * engine (serve/serving.h) and tests/serving_test.cpp rely on.
     *
     * Execution: when every block honours masking exactly
     * (supportsMaskedBatch()) and ragged execution is enabled (the
     * default, see setRaggedBatch), the call builds a nn::RowSet
     * descriptor once and drives the layers' forwardRows paths, which
     * SKIP the padded rows instead of computing and discarding them -
     * same bits, pad_overhead-proportionally less work (the tentpole
     * of the ragged-execution PR; tests/serving_test.cpp `ragged-
     * parity` pins the bitwise equivalence at threads {1, 4, 8}).
     * Fourier mixers have no masked form (see nn/layer.h); such
     * models keep the dense masked path - their padded rows mix in,
     * and reproducibility then only holds against same-padded-length
     * inference. Inference-only: do not call trainBatch-style
     * backward passes after it.
     */
    Tensor forwardBatch(const std::vector<int> &tokens, std::size_t batch,
                        std::size_t seq,
                        const std::vector<std::size_t> &lens);

    /**
     * Enable/disable ragged (skip-padded-rows) execution inside
     * forwardBatch. On by default; results are bitwise identical
     * either way whenever ragged execution is eligible (it is only
     * taken for supportsMaskedBatch() models). The switch exists for
     * before/after measurement (bench/serving.cpp) and the parity
     * tests - there is no correctness reason to turn it off.
     */
    void setRaggedBatch(bool enabled) { ragged_batch_ = enabled; }
    bool raggedBatch() const { return ragged_batch_; }

    /**
     * True when every block honours the padding mask exactly
     * (nn::Layer::supportsMasking over the actual layers, not the
     * config), i.e. forwardBatch results are independent of padding.
     */
    bool supportsMaskedBatch() const;

    /**
     * Replace every linear inside the encoder blocks (attention
     * projections, FFN linears - dense or butterfly) with its
     * inference-only quantized form (nn::QuantizedDense /
     * nn::QuantizedButterflyDense). Embedding, layer norms, the
     * attention core and the pooled head stay fp32, mirroring the
     * paper's split between the reduced-precision engines and the
     * fp32 host glue. Returns the number of layers replaced. The
     * model must not be trained afterwards (backward throws); forward,
     * forwardBatch, evaluate and serving keep working, and the
     * quantized layers are row-wise so supportsMaskedBatch() - and
     * with it the serving engine's determinism guarantee - is
     * unaffected. Usually reached through QuantizedSequenceClassifier
     * (model/quantized.h).
     */
    std::size_t quantizeLinears(QuantKind kind);

    /**
     * One optimisation step on a batch: forward, softmax
     * cross-entropy, parallel backward through the head / encoder
     * blocks / embedding, deterministic gradient clipping and the
     * optimizer update. Bitwise identical to trainBatchReference at
     * any thread count (the grad-parity and training-convergence
     * tests pin this down).
     * @return the batch cross-entropy loss.
     */
    float trainBatch(const Batch &batch, nn::Adam &opt,
                     float clip_norm = 1.0f);

    /**
     * Same step driven through every layer's backwardReference (the
     * seed serial backward) - the parity and bench baseline for
     * trainBatch.
     */
    float trainBatchReference(const Batch &batch, nn::Adam &opt,
                              float clip_norm = 1.0f);

    /** Classification accuracy over a dataset (batched internally). */
    double evaluate(const std::vector<Example> &data, std::size_t seq,
                    std::size_t batch_size = 16);

    /** All trainable parameters, for the optimiser. */
    std::vector<nn::ParamRef> params();

    std::size_t numParams();

    const ModelConfig &config() const { return cfg_; }

  private:
    /** Shared body of trainBatch/trainBatchReference. */
    float trainBatchImpl(const Batch &batch, nn::Adam &opt,
                         float clip_norm, bool reference_backward);

    ModelConfig cfg_;
    nn::Embedding embedding_;
    std::vector<std::unique_ptr<nn::EncoderBlock>> blocks_;
    nn::MeanPoolClassifier head_;
    bool ragged_batch_ = true;
};

/**
 * Train @p model for @p epochs over @p train, reporting accuracy on
 * @p test after every epoch. Returns the final test accuracy.
 */
double trainClassifier(SequenceClassifier &model,
                       const std::vector<Example> &train,
                       const std::vector<Example> &test, std::size_t seq,
                       std::size_t epochs, std::size_t batch_size,
                       float lr, Rng &rng, bool verbose = false);

} // namespace fabnet

#endif // FABNET_MODEL_CLASSIFIER_H
