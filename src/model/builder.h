/**
 * @file builder.h
 * Factory functions assembling the three model families from nn layers:
 * vanilla Transformer, FNet, and FABNet (Fig. 5), plus the partially
 * compressed hybrid used by Fig. 16.
 */
#ifndef FABNET_MODEL_BUILDER_H
#define FABNET_MODEL_BUILDER_H

#include <memory>

#include "model/classifier.h"
#include "model/config.h"
#include "tensor/rng.h"

namespace fabnet {

/** Build a model according to cfg.kind. */
std::unique_ptr<SequenceClassifier> buildModel(const ModelConfig &cfg,
                                               Rng &rng);

/**
 * Build a vanilla Transformer whose last @p n_compressed blocks are
 * replaced by FBfly blocks (Fourier mixer + butterfly FFN), starting
 * from the last block - the Fig. 16 sweep.
 */
std::unique_ptr<SequenceClassifier>
buildPartiallyCompressed(const ModelConfig &cfg, std::size_t n_compressed,
                         Rng &rng);

} // namespace fabnet

#endif // FABNET_MODEL_BUILDER_H
