#include "model/generator.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "nn/attention.h"
#include "nn/basic_layers.h"
#include "runtime/parallel.h"

namespace fabnet {

namespace {

std::unique_ptr<nn::Layer>
makeLinear(LinearKind kind, std::size_t in, std::size_t out, Rng &rng)
{
    if (kind == LinearKind::Dense)
        return std::make_unique<nn::Dense>(in, out, rng);
    return std::make_unique<nn::ButterflyDense>(in, out, rng);
}

/** The trivial all-valid RowSet of an [n, 1, d] step tensor. */
nn::RowSet
stepRows(std::size_t n)
{
    return nn::RowSet(n, 1, std::vector<std::size_t>(n, 1));
}

} // namespace

CausalGenerator::CausalGenerator(
    const ModelConfig &cfg,
    std::vector<std::unique_ptr<nn::Layer>> mixers,
    std::vector<std::unique_ptr<nn::Layer>> ffns, Rng &rng)
    : cfg_(cfg), embedding_(cfg.vocab, cfg.max_seq, cfg.d_hid, rng),
      head_(cfg.d_hid, cfg.vocab, rng)
{
    if (mixers.size() != cfg.n_total || ffns.size() != cfg.n_total)
        throw std::invalid_argument(
            "CausalGenerator: need n_total mixers and ffns");
    for (std::size_t i = 0; i < cfg.n_total; ++i) {
        const auto *mha =
            dynamic_cast<const nn::MultiHeadAttention *>(mixers[i].get());
        if (mha == nullptr || !mha->causal())
            throw std::invalid_argument(
                "CausalGenerator: every mixer must be causal "
                "MultiHeadAttention (incremental decode has no form for "
                "global or future-reading mixers)");
        blocks_.push_back(std::make_unique<nn::EncoderBlock>(
            cfg.d_hid, std::move(mixers[i]), std::move(ffns[i])));
    }
}

SequenceState
CausalGenerator::newState() const
{
    SequenceState s;
    s.layers.resize(blocks_.size());
    return s;
}

Tensor
CausalGenerator::headLogits(const Tensor &x,
                            const std::vector<std::size_t> &lens)
{
    // Gather each sequence's last valid hidden row and project it
    // through the LM head as an [n, 1, d] batch. Dense is row-wise, so
    // the logits row's bits depend only on the gathered hidden row.
    const std::size_t n = lens.size();
    const std::size_t d = cfg_.d_hid;
    Tensor last = Tensor::zeros(n, 1, d);
    for (std::size_t b = 0; b < n; ++b)
        std::memcpy(last.data() + b * d,
                    x.data() + (b * x.dim(1) + (lens[b] - 1)) * d,
                    d * sizeof(float));
    Tensor l3 = head_.forwardRows(last, stepRows(n));
    Tensor logits = Tensor::zeros(n, cfg_.vocab);
    std::memcpy(logits.data(), l3.data(),
                n * cfg_.vocab * sizeof(float));
    return logits;
}

Tensor
CausalGenerator::batchedForward(
    const std::vector<std::vector<int>> &seqs,
    const std::vector<SequenceState *> *states)
{
    const std::size_t n = seqs.size();
    if (n == 0)
        throw std::invalid_argument("CausalGenerator: empty batch");
    std::size_t seq = 0;
    std::vector<std::size_t> lens(n);
    for (std::size_t b = 0; b < n; ++b) {
        lens[b] = seqs[b].size();
        if (lens[b] == 0)
            throw std::invalid_argument(
                "CausalGenerator: empty sequence");
        if (lens[b] > cfg_.max_seq)
            throw std::invalid_argument(
                "CausalGenerator: sequence longer than max_seq");
        seq = std::max(seq, lens[b]);
    }
    // Right-pad with token 0 (never embedded - the ragged chain skips
    // padded rows - but range-checked like any id).
    std::vector<int> flat(n * seq, 0);
    for (std::size_t b = 0; b < n; ++b)
        std::copy(seqs[b].begin(), seqs[b].end(),
                  flat.begin() + static_cast<std::ptrdiff_t>(b * seq));
    const nn::RowSet rows(n, seq, lens);

    Tensor x = embedding_.forwardRows(flat, rows);
    for (std::size_t l = 0; l < blocks_.size(); ++l) {
        runtime::checkCancelled();
        if (states) {
            nn::StepState st;
            st.caches.resize(n);
            st.positions.assign(n, 0);
            for (std::size_t b = 0; b < n; ++b)
                st.caches[b] = &(*states)[b]->layers[l];
            x = blocks_[l]->forwardPrefill(x, rows, st);
        } else {
            x = blocks_[l]->forwardRows(x, rows);
        }
    }
    runtime::checkCancelled();
    return headLogits(x, lens);
}

Tensor
CausalGenerator::prefill(const std::vector<std::vector<int>> &prompts,
                         const std::vector<SequenceState *> &states)
{
    if (states.size() != prompts.size())
        throw std::invalid_argument(
            "CausalGenerator::prefill: state count != prompt count");
    for (std::size_t b = 0; b < states.size(); ++b) {
        if (states[b] == nullptr ||
            states[b]->layers.size() != blocks_.size())
            throw std::invalid_argument(
                "CausalGenerator::prefill: state not from newState()");
        if (states[b]->len != 0)
            throw std::logic_error(
                "CausalGenerator::prefill: state already prefilled");
    }
    Tensor logits = batchedForward(prompts, &states);
    for (std::size_t b = 0; b < states.size(); ++b)
        states[b]->len = prompts[b].size();
    return logits;
}

Tensor
CausalGenerator::decodeStep(const std::vector<int> &tokens,
                            const std::vector<SequenceState *> &states)
{
    const std::size_t n = tokens.size();
    if (n == 0)
        throw std::invalid_argument(
            "CausalGenerator::decodeStep: empty step");
    if (states.size() != n)
        throw std::invalid_argument(
            "CausalGenerator::decodeStep: state count != token count");
    std::vector<std::size_t> positions(n);
    for (std::size_t b = 0; b < n; ++b) {
        if (states[b] == nullptr ||
            states[b]->layers.size() != blocks_.size())
            throw std::invalid_argument(
                "CausalGenerator::decodeStep: state not from newState()");
        if (states[b]->len == 0)
            throw std::logic_error(
                "CausalGenerator::decodeStep: state not prefilled");
        if (states[b]->len >= cfg_.max_seq)
            throw std::invalid_argument(
                "CausalGenerator::decodeStep: sequence at max_seq");
        positions[b] = states[b]->len;
    }

    Tensor x = embedding_.forwardStep(tokens, positions);
    for (std::size_t l = 0; l < blocks_.size(); ++l) {
        runtime::checkCancelled();
        nn::StepState st;
        st.caches.resize(n);
        st.positions = positions;
        for (std::size_t b = 0; b < n; ++b)
            st.caches[b] = &states[b]->layers[l];
        x = blocks_[l]->forwardStep(x, st);
    }
    runtime::checkCancelled();
    for (std::size_t b = 0; b < n; ++b)
        states[b]->len += 1;
    const std::vector<std::size_t> ones(n, 1);
    return headLogits(x, ones);
}

Tensor
CausalGenerator::forwardFull(const std::vector<std::vector<int>> &seqs)
{
    return batchedForward(seqs, nullptr);
}

void
CausalGenerator::rollback(SequenceState &state, std::size_t new_len) const
{
    for (nn::KVCache &c : state.layers)
        c.truncate(new_len, cfg_.d_hid);
    if (state.len > new_len)
        state.len = new_len;
}

std::size_t
CausalGenerator::quantizeLinears(QuantKind kind)
{
    std::size_t n = 0;
    for (auto &b : blocks_)
        n += b->quantizeLinears(kind);
    return n;
}

std::unique_ptr<CausalGenerator>
buildGenerator(const ModelConfig &cfg, Rng &rng)
{
    if (!cfg.causal)
        throw std::invalid_argument(
            "buildGenerator: cfg.causal must be true");
    if (cfg.kind == ModelKind::FNet)
        throw std::invalid_argument(
            "buildGenerator: FNet has no incremental decode form");
    const LinearKind lin = cfg.kind == ModelKind::FABNet
                               ? LinearKind::Butterfly
                               : LinearKind::Dense;
    const std::size_t d = cfg.d_hid;
    std::vector<std::unique_ptr<nn::Layer>> mixers;
    std::vector<std::unique_ptr<nn::Layer>> ffns;
    for (std::size_t i = 0; i < cfg.n_total; ++i) {
        auto mha = std::make_unique<nn::MultiHeadAttention>(
            d, cfg.heads, makeLinear(lin, d, d, rng),
            makeLinear(lin, d, d, rng), makeLinear(lin, d, d, rng),
            makeLinear(lin, d, d, rng), /*causal=*/true);
        // Same uniform application as buildModel's makeMixer: no rng
        // draw, so sparse generator variants share a seed's weights.
        mha->setSparse(cfg.attn_sparse);
        mixers.push_back(std::move(mha));
        ffns.push_back(std::make_unique<nn::FeedForward>(
            makeLinear(lin, d, cfg.ffnHidden(), rng),
            std::make_unique<nn::Gelu>(),
            makeLinear(lin, cfg.ffnHidden(), d, rng)));
    }
    return std::make_unique<CausalGenerator>(cfg, std::move(mixers),
                                             std::move(ffns), rng);
}

} // namespace fabnet
