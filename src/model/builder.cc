#include "model/builder.h"

#include <stdexcept>

#include "nn/attention.h"
#include "nn/basic_layers.h"
#include "nn/dense.h"

namespace fabnet {

namespace {

std::unique_ptr<nn::Layer>
makeLinear(LinearKind kind, std::size_t in, std::size_t out, Rng &rng)
{
    if (kind == LinearKind::Dense)
        return std::make_unique<nn::Dense>(in, out, rng);
    return std::make_unique<nn::ButterflyDense>(in, out, rng);
}

std::unique_ptr<nn::Layer>
makeMixer(MixerKind mixer, LinearKind proj, const ModelConfig &cfg,
          Rng &rng)
{
    if (mixer == MixerKind::Fourier)
        return std::make_unique<nn::FourierMix>();
    const std::size_t d = cfg.d_hid;
    auto mha = std::make_unique<nn::MultiHeadAttention>(
        d, cfg.heads, makeLinear(proj, d, d, rng),
        makeLinear(proj, d, d, rng), makeLinear(proj, d, d, rng),
        makeLinear(proj, d, d, rng), cfg.causal);
    // Approximate-attention config rides on the model config so every
    // builder (classifier, generator, partially-compressed) applies it
    // uniformly; setSparse draws nothing from rng, so sparse variants
    // of a seed share the exact same weights.
    mha->setSparse(cfg.attn_sparse);
    return mha;
}

std::unique_ptr<nn::Layer>
makeFfn(LinearKind kind, const ModelConfig &cfg, Rng &rng)
{
    const std::size_t d = cfg.d_hid;
    const std::size_t h = cfg.ffnHidden();
    return std::make_unique<nn::FeedForward>(
        makeLinear(kind, d, h, rng), std::make_unique<nn::Gelu>(),
        makeLinear(kind, h, d, rng));
}

} // namespace

std::unique_ptr<SequenceClassifier>
buildModel(const ModelConfig &cfg, Rng &rng)
{
    std::vector<std::unique_ptr<nn::Layer>> mixers;
    std::vector<std::unique_ptr<nn::Layer>> ffns;
    mixers.reserve(cfg.n_total);
    ffns.reserve(cfg.n_total);

    for (std::size_t i = 0; i < cfg.n_total; ++i) {
        switch (cfg.kind) {
          case ModelKind::Transformer:
            mixers.push_back(makeMixer(MixerKind::Attention,
                                       LinearKind::Dense, cfg, rng));
            ffns.push_back(makeFfn(LinearKind::Dense, cfg, rng));
            break;
          case ModelKind::FNet:
            mixers.push_back(
                makeMixer(MixerKind::Fourier, LinearKind::Dense, cfg,
                          rng));
            ffns.push_back(makeFfn(LinearKind::Dense, cfg, rng));
            break;
          case ModelKind::FABNet: {
            // N_fbfly FBfly blocks first, then N_abfly ABfly blocks
            // (Fig. 5).
            const std::size_t n_fbfly = cfg.n_total - cfg.n_abfly;
            if (cfg.n_abfly > cfg.n_total)
                throw std::invalid_argument(
                    "buildModel: n_abfly > n_total");
            if (i < n_fbfly) {
                mixers.push_back(makeMixer(MixerKind::Fourier,
                                           LinearKind::Butterfly, cfg,
                                           rng));
            } else {
                mixers.push_back(makeMixer(MixerKind::Attention,
                                           LinearKind::Butterfly, cfg,
                                           rng));
            }
            ffns.push_back(makeFfn(LinearKind::Butterfly, cfg, rng));
            break;
          }
        }
    }
    return std::make_unique<SequenceClassifier>(cfg, std::move(mixers),
                                                std::move(ffns), rng);
}

std::unique_ptr<SequenceClassifier>
buildPartiallyCompressed(const ModelConfig &cfg, std::size_t n_compressed,
                         Rng &rng)
{
    if (n_compressed > cfg.n_total)
        throw std::invalid_argument(
            "buildPartiallyCompressed: too many compressed layers");

    std::vector<std::unique_ptr<nn::Layer>> mixers;
    std::vector<std::unique_ptr<nn::Layer>> ffns;
    const std::size_t first_compressed = cfg.n_total - n_compressed;
    for (std::size_t i = 0; i < cfg.n_total; ++i) {
        if (i < first_compressed) {
            mixers.push_back(makeMixer(MixerKind::Attention,
                                       LinearKind::Dense, cfg, rng));
            ffns.push_back(makeFfn(LinearKind::Dense, cfg, rng));
        } else {
            mixers.push_back(makeMixer(MixerKind::Fourier,
                                       LinearKind::Butterfly, cfg, rng));
            ffns.push_back(makeFfn(LinearKind::Butterfly, cfg, rng));
        }
    }
    return std::make_unique<SequenceClassifier>(cfg, std::move(mixers),
                                                std::move(ffns), rng);
}

} // namespace fabnet
