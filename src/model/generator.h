/**
 * @file generator.h
 * Causal autoregressive generator: embedding -> causal encoder blocks
 * -> LM head, with incremental K/V-cached decode.
 *
 * The decode contract (nn/decode.h): prefill() captures each prompt's
 * K/V projections while computing its last-position logits, and every
 * decodeStep() then advances all live sequences by one token as a
 * ragged batch of "one new row per live sequence" - BITWISE identical
 * to a full causal recompute (forwardFull) at every step, any thread
 * count and any live-set composition (`ctest -L decode-parity`). That
 * identity is what lets the continuous scheduler
 * (serve/generation.h) admit and evict sequences between steps
 * without perturbing anyone's tokens.
 */
#ifndef FABNET_MODEL_GENERATOR_H
#define FABNET_MODEL_GENERATOR_H

#include <memory>
#include <vector>

#include "model/config.h"
#include "nn/block.h"
#include "nn/decode.h"
#include "nn/dense.h"
#include "nn/embedding.h"
#include "tensor/rng.h"

namespace fabnet {

/**
 * One live sequence's decode state: a K/V prefix cache per encoder
 * block plus the number of positions cached so far. Owned by the
 * caller (the scheduler keeps one per live request); the generator
 * only reads/appends through the pointers handed to each call.
 */
struct SequenceState
{
    std::vector<nn::KVCache> layers; ///< one per encoder block
    std::size_t len = 0;             ///< positions cached so far
};

/** Embedding + causal attention blocks + dense LM head. */
class CausalGenerator
{
  public:
    /**
     * Build from per-block specs (consumed; cfg.n_total entries each).
     * Every mixer must be causal MultiHeadAttention - Fourier mixing
     * is global over the sequence, so it has no incremental form and
     * is rejected here, as is non-causal attention (its rows depend on
     * future positions a decode step has not produced yet).
     */
    CausalGenerator(const ModelConfig &cfg,
                    std::vector<std::unique_ptr<nn::Layer>> mixers,
                    std::vector<std::unique_ptr<nn::Layer>> ffns,
                    Rng &rng);

    /** A fresh state with one empty cache per block. */
    SequenceState newState() const;

    /**
     * Ragged batched prompt prefill: computes every prompt's hidden
     * states in one right-padded ragged batch (the PR 5 RowSet
     * machinery - padded rows are skipped, valid rows bitwise match an
     * unpadded run), captures each sequence's K/V projections into its
     * @p states entry, and returns the [n, vocab] logits of each
     * prompt's LAST position - the distribution the first generated
     * token is sampled from. States must be fresh (len == 0).
     * Inference-only; cancellable between blocks (runtime/parallel.h).
     */
    Tensor prefill(const std::vector<std::vector<int>> &prompts,
                   const std::vector<SequenceState *> &states);

    /**
     * One decode step: @p tokens[b] is live sequence b's newest token
     * (sampled from the previous call's logits row b), appended at
     * position states[b]->len. Returns the [n, vocab] logits of the
     * appended positions and advances every state by one. The live
     * set may differ from call to call in any way - rows are
     * independent, so each sequence's bits depend only on its own
     * prefix. Inference-only; cancellable between blocks.
     */
    Tensor decodeStep(const std::vector<int> &tokens,
                      const std::vector<SequenceState *> &states);

    /**
     * Full-recompute reference: last-position logits of each sequence,
     * computed from scratch as one ragged batch with no caches - the
     * baseline the decode-parity suite compares prefill/decodeStep
     * against, and the flush-per-batch strawman the bench measures the
     * continuous scheduler over. Inference-only.
     */
    Tensor forwardFull(const std::vector<std::vector<int>> &seqs);

    /**
     * Drop @p state's cached rows past @p new_len in every block
     * (step-fault rollback: a faulted step may have appended K/V rows
     * before throwing; truncating restores the exact pre-step state,
     * so a retried step reproduces the same bits).
     */
    void rollback(SequenceState &state, std::size_t new_len) const;

    /**
     * Quantize the blocks' linears (attention projections + FFN); the
     * embedding and LM head stay fp32, like the classifier's split.
     * Decode parity is preserved: int8 activation quantisation is
     * per-row and fp16 rounding per-element, both row-independent.
     */
    std::size_t quantizeLinears(QuantKind kind);

    const ModelConfig &config() const { return cfg_; }
    std::size_t vocab() const { return cfg_.vocab; }
    std::size_t maxSeq() const { return cfg_.max_seq; }
    std::size_t numBlocks() const { return blocks_.size(); }

  private:
    /** Shared ragged body of prefill/forwardFull; null = no capture. */
    Tensor batchedForward(const std::vector<std::vector<int>> &seqs,
                          const std::vector<SequenceState *> *states);

    /** Last-valid-row gather + LM head -> [n, vocab]. */
    Tensor headLogits(const Tensor &x,
                      const std::vector<std::size_t> &lens);

    ModelConfig cfg_;
    nn::Embedding embedding_;
    std::vector<std::unique_ptr<nn::EncoderBlock>> blocks_;
    nn::Dense head_; ///< d_hid -> vocab, fp32
};

/**
 * Build a causal generator from @p cfg: attention mixers in every
 * block (Dense linears for Transformer, butterfly linears for FABNet -
 * all blocks ABfly, since Fourier mixing cannot decode incrementally;
 * FNet is rejected). Requires cfg.causal = true.
 */
std::unique_ptr<CausalGenerator> buildGenerator(const ModelConfig &cfg,
                                                Rng &rng);

} // namespace fabnet

#endif // FABNET_MODEL_GENERATOR_H
