/**
 * @file flops.h
 * Analytical FLOPs and parameter counting for all model families.
 *
 * Conventions: 1 multiply-accumulate = 2 FLOPs; a complex multiply is
 * 6 FLOPs and a complex add 2 FLOPs, so one radix-2 FFT butterfly
 * (1 cmul + 2 cadd) costs 10 FLOPs; one real butterfly-linear pair
 * (4 mul + 2 add) costs 6 FLOPs.
 *
 * These counters drive Fig. 1 (operation breakdown vs sequence length)
 * and Fig. 17 (FLOPs / model-size reduction of FABNet).
 */
#ifndef FABNET_MODEL_FLOPS_H
#define FABNET_MODEL_FLOPS_H

#include <cstddef>

#include "model/config.h"

namespace fabnet {

/** Per-category FLOPs of one forward pass (batch size 1). */
struct FlopsBreakdown
{
    double attention = 0.0; ///< QK^T, softmax, SV
    double linear = 0.0;    ///< dense projections and FFN
    double butterfly = 0.0; ///< butterfly linear layers
    double fft = 0.0;       ///< 2-D Fourier mixing
    double other = 0.0;     ///< layer norm, residual adds

    double total() const
    {
        return attention + linear + butterfly + fft + other;
    }

    /** Fraction of total taken by the attention mechanism. */
    double attentionShare() const
    {
        const double t = total();
        return t > 0.0 ? attention / t : 0.0;
    }

    /** Fraction of total taken by (dense + butterfly) linear layers. */
    double linearShare() const
    {
        const double t = total();
        return t > 0.0 ? (linear + butterfly) / t : 0.0;
    }
};

/** FLOPs of a dense linear layer over @p tokens tokens. */
double denseLinearFlops(std::size_t tokens, std::size_t in,
                        std::size_t out);

/** FLOPs of a butterfly linear layer over @p tokens tokens. */
double butterflyLinearFlops(std::size_t tokens, std::size_t in,
                            std::size_t out);

/** FLOPs of the attention core (no projections) for one layer. */
double attentionCoreFlops(std::size_t seq, std::size_t d_hid,
                          std::size_t heads);

/** FLOPs of the 2-D FFT mixer on a [seq, d_hid] activation. */
double fourierMixFlops(std::size_t seq, std::size_t d_hid);

/** Full-model forward FLOPs, split by category. */
FlopsBreakdown modelFlops(const ModelConfig &cfg, std::size_t seq);

/** Trainable parameter count (blocks only, no embeddings/head). */
std::size_t modelParams(const ModelConfig &cfg);

/**
 * Whole-model size: blocks + token/positional embeddings + classifier
 * head. This is the "model size" of Fig. 17 - the embedding tables
 * matter, since FABNet's compressed blocks leave them dominant.
 */
std::size_t fullModelParams(const ModelConfig &cfg);

/** Parameters of one dense linear layer. */
std::size_t denseLinearParams(std::size_t in, std::size_t out);

/** Parameters of one butterfly linear layer. */
std::size_t butterflyLinearParams(std::size_t in, std::size_t out);

} // namespace fabnet

#endif // FABNET_MODEL_FLOPS_H
