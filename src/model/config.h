/**
 * @file config.h
 * Model hyper-parameters - the algorithmic half of the paper's joint
 * design space (Sec. V-C): hidden size D_hid, FFN expansion R_ffn,
 * total block count N_total and number of attention (ABfly) blocks
 * N_abfly.
 */
#ifndef FABNET_MODEL_CONFIG_H
#define FABNET_MODEL_CONFIG_H

#include <cstddef>
#include <string>

#include "nn/sparse_attention.h"

namespace fabnet {

/** Which token mixer a block uses. */
enum class MixerKind {
    Attention, ///< multi-head self-attention
    Fourier    ///< FNet-style 2-D FFT mixing
};

/** Which linear-layer implementation a block uses. */
enum class LinearKind {
    Dense,    ///< standard O(n^2) projection
    Butterfly ///< butterfly-factorised O(n log n) projection
};

/** Network family, used by builders and FLOPs accounting. */
enum class ModelKind {
    Transformer, ///< vanilla: attention + dense everywhere
    FNet,        ///< Fourier mixer + dense FFN
    FABNet       ///< FBfly blocks then ABfly blocks, butterfly linears
};

/** Hyper-parameters shared by all model families. */
struct ModelConfig
{
    ModelKind kind = ModelKind::FABNet;
    std::size_t vocab = 256;    ///< token vocabulary
    std::size_t max_seq = 1024; ///< positional-table length
    std::size_t d_hid = 64;     ///< D_hid
    std::size_t r_ffn = 4;      ///< R_ffn (FFN expansion ratio)
    std::size_t n_total = 2;    ///< N_total encoder blocks
    std::size_t n_abfly = 0;    ///< N_abfly attention blocks (FABNet)
    std::size_t heads = 2;      ///< attention heads
    std::size_t classes = 10;   ///< classifier output size
    bool causal = false;        ///< decoder-style masked attention
    /** Approximate-attention config applied to every attention mixer
     *  (nn/sparse_attention.h); default = exact attention. Fourier
     *  mixers ignore it. */
    nn::SparseAttentionConfig attn_sparse;

    std::size_t ffnHidden() const { return d_hid * r_ffn; }

    std::string describe() const;
};

/** FABNet-Base from Sec. VI-A: D=768, R=4, 12 blocks, all FBfly. */
ModelConfig fabnetBase();

/** FABNet-Large from Sec. VI-A: D=1024, R=4, 24 blocks, all FBfly. */
ModelConfig fabnetLarge();

/** BERT-Base-shaped vanilla Transformer (D=768, 12 layers, 12 heads). */
ModelConfig bertBase();

/** BERT-Large-shaped vanilla Transformer (D=1024, 24 layers, 16 heads). */
ModelConfig bertLarge();

} // namespace fabnet

#endif // FABNET_MODEL_CONFIG_H
