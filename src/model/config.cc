#include "model/config.h"

#include <sstream>

namespace fabnet {

std::string
ModelConfig::describe() const
{
    std::ostringstream os;
    switch (kind) {
      case ModelKind::Transformer:
        os << "Transformer";
        break;
      case ModelKind::FNet:
        os << "FNet";
        break;
      case ModelKind::FABNet:
        os << "FABNet";
        break;
    }
    os << "(D=" << d_hid << ", R=" << r_ffn << ", N=" << n_total;
    if (kind == ModelKind::FABNet)
        os << ", N_abfly=" << n_abfly;
    os << ", heads=" << heads;
    if (!attn_sparse.dense())
        os << ", attn=" << attn_sparse.describe();
    os << ")";
    return os.str();
}

ModelConfig
fabnetBase()
{
    ModelConfig c;
    c.kind = ModelKind::FABNet;
    c.d_hid = 768;
    c.r_ffn = 4;
    c.n_total = 12;
    c.n_abfly = 0;
    c.heads = 12;
    return c;
}

ModelConfig
fabnetLarge()
{
    ModelConfig c;
    c.kind = ModelKind::FABNet;
    c.d_hid = 1024;
    c.r_ffn = 4;
    c.n_total = 24;
    c.n_abfly = 0;
    c.heads = 16;
    return c;
}

ModelConfig
bertBase()
{
    ModelConfig c;
    c.kind = ModelKind::Transformer;
    c.d_hid = 768;
    c.r_ffn = 4;
    c.n_total = 12;
    c.n_abfly = 12;
    c.heads = 12;
    return c;
}

ModelConfig
bertLarge()
{
    ModelConfig c;
    c.kind = ModelKind::Transformer;
    c.d_hid = 1024;
    c.r_ffn = 4;
    c.n_total = 24;
    c.n_abfly = 24;
    c.heads = 16;
    return c;
}

} // namespace fabnet
