#include "model/classifier.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "runtime/parallel.h"

namespace fabnet {

Batch
makeBatch(const std::vector<Example> &data, std::size_t start,
          std::size_t count, std::size_t seq, int pad_token)
{
    Batch b;
    b.batch = count;
    b.seq = seq;
    b.tokens.assign(count * seq, pad_token);
    b.labels.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        const Example &ex = data[start + i];
        const std::size_t n = std::min(ex.tokens.size(), seq);
        std::copy_n(ex.tokens.begin(), n, b.tokens.begin() + i * seq);
        b.labels[i] = ex.label;
    }
    return b;
}

SequenceClassifier::SequenceClassifier(
    const ModelConfig &cfg, std::vector<std::unique_ptr<nn::Layer>> mixers,
    std::vector<std::unique_ptr<nn::Layer>> ffns, Rng &rng)
    : cfg_(cfg), embedding_(cfg.vocab, cfg.max_seq, cfg.d_hid, rng),
      head_(cfg.d_hid, cfg.classes, rng)
{
    if (mixers.size() != cfg.n_total || ffns.size() != cfg.n_total)
        throw std::invalid_argument(
            "SequenceClassifier: need n_total mixers and ffns");
    blocks_.reserve(cfg.n_total);
    for (std::size_t i = 0; i < cfg.n_total; ++i) {
        blocks_.push_back(std::make_unique<nn::EncoderBlock>(
            cfg.d_hid, std::move(mixers[i]), std::move(ffns[i])));
    }
}

Tensor
SequenceClassifier::forward(const std::vector<int> &tokens,
                            std::size_t batch, std::size_t seq)
{
    Tensor x = embedding_.forward(tokens, batch, seq);
    for (auto &blk : blocks_)
        x = blk->forward(x);
    return head_.forward(x);
}

Tensor
SequenceClassifier::forwardBatch(const std::vector<int> &tokens,
                                 std::size_t batch, std::size_t seq,
                                 const std::vector<std::size_t> &lens)
{
    if (lens.size() != batch)
        throw std::invalid_argument(
            "SequenceClassifier::forwardBatch: lens size != batch");
    for (std::size_t L : lens)
        if (L == 0 || L > seq)
            throw std::invalid_argument(
                "SequenceClassifier::forwardBatch: len out of [1, seq]");
    // Ragged execution: build the valid-row descriptor once and skip
    // padded rows in every layer. Only for fully maskable models -
    // Fourier mixers deliberately mix the embedded pad rows in, and
    // the ragged chain's zeroed pad rows would change those logits.
    // Serving cancellation (watchdog / shutdown deadline): in addition
    // to the per-grain poll inside every parallelFor, re-check between
    // blocks so a cancelled invocation unwinds at layer granularity
    // even on the serial fast paths. No-op without a CancelScope.
    if (ragged_batch_ && supportsMaskedBatch()) {
        const nn::RowSet rows(batch, seq, lens);
        Tensor x = embedding_.forwardRows(tokens, rows);
        for (auto &blk : blocks_) {
            runtime::checkCancelled();
            x = blk->forwardRows(x, rows);
        }
        return head_.forwardMasked(x, lens);
    }
    Tensor x = embedding_.forward(tokens, batch, seq);
    for (auto &blk : blocks_) {
        runtime::checkCancelled();
        x = blk->forwardMasked(x, lens);
    }
    return head_.forwardMasked(x, lens);
}

std::size_t
SequenceClassifier::quantizeLinears(QuantKind kind)
{
    std::size_t replaced = 0;
    for (auto &blk : blocks_)
        replaced += blk->quantizeLinears(kind);
    return replaced;
}

bool
SequenceClassifier::supportsMaskedBatch() const
{
    for (const auto &blk : blocks_)
        if (!blk->supportsMasking())
            return false;
    return true;
}

float
SequenceClassifier::trainBatch(const Batch &batch, nn::Adam &opt,
                               float clip_norm)
{
    return trainBatchImpl(batch, opt, clip_norm, false);
}

float
SequenceClassifier::trainBatchReference(const Batch &batch, nn::Adam &opt,
                                        float clip_norm)
{
    return trainBatchImpl(batch, opt, clip_norm, true);
}

float
SequenceClassifier::trainBatchImpl(const Batch &batch, nn::Adam &opt,
                                   float clip_norm,
                                   bool reference_backward)
{
    Tensor logits = forward(batch.tokens, batch.batch, batch.seq);
    Tensor grad_logits;
    const float loss =
        nn::softmaxCrossEntropy(logits, batch.labels, grad_logits);

    if (reference_backward) {
        Tensor g = head_.backwardReference(grad_logits);
        for (std::size_t i = blocks_.size(); i-- > 0;)
            g = blocks_[i]->backwardReference(g);
        embedding_.backwardReference(g);
    } else {
        Tensor g = head_.backward(grad_logits);
        for (std::size_t i = blocks_.size(); i-- > 0;)
            g = blocks_[i]->backward(g);
        embedding_.backward(g);
    }

    auto ps = params();
    if (clip_norm > 0.0f)
        nn::clipGradNorm(ps, clip_norm);
    opt.step();
    return loss;
}

double
SequenceClassifier::evaluate(const std::vector<Example> &data,
                             std::size_t seq, std::size_t batch_size)
{
    std::size_t correct = 0;
    for (std::size_t start = 0; start < data.size();
         start += batch_size) {
        const std::size_t count =
            std::min(batch_size, data.size() - start);
        Batch b = makeBatch(data, start, count, seq);
        Tensor logits = forward(b.tokens, b.batch, b.seq);
        const std::vector<int> pred = nn::argmaxRows(logits);
        for (std::size_t i = 0; i < count; ++i)
            if (pred[i] == b.labels[i])
                ++correct;
    }
    return data.empty()
               ? 0.0
               : static_cast<double>(correct) / data.size();
}

std::vector<nn::ParamRef>
SequenceClassifier::params()
{
    std::vector<nn::ParamRef> ps;
    embedding_.collectParams(ps);
    for (auto &blk : blocks_)
        blk->collectParams(ps);
    head_.collectParams(ps);
    return ps;
}

std::size_t
SequenceClassifier::numParams()
{
    std::size_t n = 0;
    for (const auto &p : params())
        n += p.value->size();
    return n;
}

double
trainClassifier(SequenceClassifier &model,
                const std::vector<Example> &train,
                const std::vector<Example> &test, std::size_t seq,
                std::size_t epochs, std::size_t batch_size, float lr,
                Rng &rng, bool verbose)
{
    nn::Adam opt(model.params(), lr);
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    double acc = 0.0;
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        std::vector<Example> shuffled;
        shuffled.reserve(train.size());
        for (std::size_t idx : order)
            shuffled.push_back(train[idx]);

        double epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start + batch_size <= shuffled.size();
             start += batch_size) {
            Batch b = makeBatch(shuffled, start, batch_size, seq);
            epoch_loss += model.trainBatch(b, opt);
            ++batches;
        }
        acc = model.evaluate(test, seq, batch_size);
        if (verbose) {
            std::printf("  epoch %zu: loss=%.4f test_acc=%.3f\n",
                        epoch + 1,
                        batches ? epoch_loss / batches : 0.0, acc);
        }
    }
    return acc;
}

} // namespace fabnet
