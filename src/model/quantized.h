/**
 * @file quantized.h
 * QuantizedSequenceClassifier: the int8/fp16 inference path.
 *
 * Takes ownership of a (typically trained) SequenceClassifier and
 * swaps every linear inside its encoder blocks for the quantized
 * runtime kernels (SequenceClassifier::quantizeLinears); embedding,
 * layer norms, the attention core and the pooled head stay fp32. The
 * result is inference-only - training paths throw - but forward,
 * forwardBatch and evaluate keep their contracts, including the
 * masked-batch bitwise guarantee the serving engine relies on: the
 * quantized linears are row-wise and thread-count-invariant, so a
 * served int8/fp16 model produces logits bitwise identical to serial
 * single-request inference on the same quantized model.
 *
 * Serve one end-to-end with the existing front end:
 *
 *     auto model = buildModel(cfg, rng);          // + training
 *     QuantizedSequenceClassifier q(std::move(model), QuantKind::Int8);
 *     serve::ServingEngine engine(q.model(), serving_cfg);
 */
#ifndef FABNET_MODEL_QUANTIZED_H
#define FABNET_MODEL_QUANTIZED_H

#include <memory>
#include <stdexcept>

#include "model/classifier.h"
#include "tensor/quant.h"

namespace fabnet {

/** Owning wrapper that quantizes a model's linears at construction. */
class QuantizedSequenceClassifier
{
  public:
    QuantizedSequenceClassifier(
        std::unique_ptr<SequenceClassifier> model, QuantKind kind)
        : model_(std::move(model)), kind_(kind)
    {
        if (!model_)
            throw std::invalid_argument(
                "QuantizedSequenceClassifier: null model");
        replaced_ = model_->quantizeLinears(kind_);
    }

    QuantKind kind() const { return kind_; }

    /** Number of linear layers running in reduced precision. */
    std::size_t quantizedLayerCount() const { return replaced_; }

    /** The underlying (now quantized) model, e.g. for ServingEngine. */
    SequenceClassifier &model() { return *model_; }
    const SequenceClassifier &model() const { return *model_; }

    /** Inference passthroughs (see model/classifier.h). */
    Tensor forward(const std::vector<int> &tokens, std::size_t batch,
                   std::size_t seq)
    {
        return model_->forward(tokens, batch, seq);
    }

    Tensor forwardBatch(const std::vector<int> &tokens,
                        std::size_t batch, std::size_t seq,
                        const std::vector<std::size_t> &lens)
    {
        return model_->forwardBatch(tokens, batch, seq, lens);
    }

    bool supportsMaskedBatch() const
    {
        return model_->supportsMaskedBatch();
    }

    /** Ragged (skip-padded-rows) execution toggle - on by default;
     *  the quantized linears keep the bitwise guarantee either way
     *  (see model/classifier.h::setRaggedBatch). */
    void setRaggedBatch(bool enabled)
    {
        model_->setRaggedBatch(enabled);
    }
    bool raggedBatch() const { return model_->raggedBatch(); }

    double evaluate(const std::vector<Example> &data, std::size_t seq,
                    std::size_t batch_size = 16)
    {
        return model_->evaluate(data, seq, batch_size);
    }

  private:
    std::unique_ptr<SequenceClassifier> model_;
    QuantKind kind_;
    std::size_t replaced_ = 0;
};

} // namespace fabnet

#endif // FABNET_MODEL_QUANTIZED_H
