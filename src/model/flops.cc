#include "model/flops.h"

#include <cmath>

#include "butterfly/fft.h"

namespace fabnet {

namespace {

double
log2d(std::size_t n)
{
    return std::log2(static_cast<double>(n));
}

/** LayerNorm + residual cost per block: ~12 FLOPs per element, 2x. */
double
blockOtherFlops(std::size_t seq, std::size_t d_hid)
{
    return 2.0 * 12.0 * static_cast<double>(seq) *
           static_cast<double>(d_hid);
}

} // namespace

double
denseLinearFlops(std::size_t tokens, std::size_t in, std::size_t out)
{
    return 2.0 * static_cast<double>(tokens) * static_cast<double>(in) *
           static_cast<double>(out);
}

double
butterflyLinearFlops(std::size_t tokens, std::size_t in, std::size_t out)
{
    const std::size_t n = std::max<std::size_t>(nextPowerOfTwo(in), 2);
    const std::size_t cores = (out + n - 1) / n;
    const double per_core = static_cast<double>(n) / 2.0 * log2d(n) * 6.0;
    return static_cast<double>(tokens) *
           (static_cast<double>(cores) * per_core +
            static_cast<double>(out));
}

double
attentionCoreFlops(std::size_t seq, std::size_t d_hid, std::size_t heads)
{
    const double t = static_cast<double>(seq);
    const double d = static_cast<double>(d_hid);
    const double h = static_cast<double>(heads);
    const double qk = 2.0 * t * t * d;      // Q x K^T over all heads
    const double sv = 2.0 * t * t * d;      // S x V over all heads
    const double softmax = 5.0 * h * t * t; // exp + normalise
    return qk + sv + softmax;
}

double
fourierMixFlops(std::size_t seq, std::size_t d_hid)
{
    const double t = static_cast<double>(seq);
    const double d = static_cast<double>(d_hid);
    // One radix-2 butterfly = 10 FLOPs (complex mul + 2 complex adds).
    const double fft_hidden = t * (d / 2.0) * log2d(d_hid) * 10.0;
    const double fft_seq = d * (t / 2.0) * log2d(seq) * 10.0;
    return fft_hidden + fft_seq;
}

FlopsBreakdown
modelFlops(const ModelConfig &cfg, std::size_t seq)
{
    FlopsBreakdown fb;
    const std::size_t d = cfg.d_hid;
    const std::size_t h = cfg.ffnHidden();

    const double dense_proj = 4.0 * denseLinearFlops(seq, d, d);
    const double dense_ffn =
        denseLinearFlops(seq, d, h) + denseLinearFlops(seq, h, d);
    const double bfly_proj = 4.0 * butterflyLinearFlops(seq, d, d);
    const double bfly_ffn = butterflyLinearFlops(seq, d, h) +
                            butterflyLinearFlops(seq, h, d);
    const double attn = attentionCoreFlops(seq, d, cfg.heads);
    const double fft = fourierMixFlops(seq, d);

    switch (cfg.kind) {
      case ModelKind::Transformer:
        fb.attention = attn * static_cast<double>(cfg.n_total);
        fb.linear =
            (dense_proj + dense_ffn) * static_cast<double>(cfg.n_total);
        break;
      case ModelKind::FNet:
        fb.fft = fft * static_cast<double>(cfg.n_total);
        fb.linear = dense_ffn * static_cast<double>(cfg.n_total);
        break;
      case ModelKind::FABNet: {
        const std::size_t n_fbfly = cfg.n_total - cfg.n_abfly;
        fb.fft = fft * static_cast<double>(n_fbfly);
        fb.attention = attn * static_cast<double>(cfg.n_abfly);
        fb.butterfly =
            bfly_ffn * static_cast<double>(cfg.n_total) +
            bfly_proj * static_cast<double>(cfg.n_abfly);
        break;
      }
    }
    fb.other = blockOtherFlops(seq, d) * static_cast<double>(cfg.n_total);
    return fb;
}

std::size_t
denseLinearParams(std::size_t in, std::size_t out)
{
    return in * out + out;
}

std::size_t
butterflyLinearParams(std::size_t in, std::size_t out)
{
    const std::size_t n = std::max<std::size_t>(nextPowerOfTwo(in), 2);
    const std::size_t cores = (out + n - 1) / n;
    const std::size_t per_core =
        2 * n * log2Exact(n); // 4 weights x N/2 pairs x log2 N stages
    return cores * per_core + out;
}

std::size_t
fullModelParams(const ModelConfig &cfg)
{
    const std::size_t embeddings =
        cfg.vocab * cfg.d_hid + cfg.max_seq * cfg.d_hid;
    const std::size_t head = cfg.classes * cfg.d_hid + cfg.classes;
    return modelParams(cfg) + embeddings + head;
}

std::size_t
modelParams(const ModelConfig &cfg)
{
    const std::size_t d = cfg.d_hid;
    const std::size_t h = cfg.ffnHidden();
    const std::size_t ln = 2 * d * 2; // two layer norms per block

    std::size_t per_block = 0;
    switch (cfg.kind) {
      case ModelKind::Transformer:
        per_block = 4 * denseLinearParams(d, d) +
                    denseLinearParams(d, h) + denseLinearParams(h, d) +
                    ln;
        return per_block * cfg.n_total;
      case ModelKind::FNet:
        per_block = denseLinearParams(d, h) + denseLinearParams(h, d) +
                    ln;
        return per_block * cfg.n_total;
      case ModelKind::FABNet: {
        const std::size_t fbfly = butterflyLinearParams(d, h) +
                                  butterflyLinearParams(h, d) + ln;
        const std::size_t abfly =
            fbfly + 4 * butterflyLinearParams(d, d);
        const std::size_t n_fbfly = cfg.n_total - cfg.n_abfly;
        return fbfly * n_fbfly + abfly * cfg.n_abfly;
      }
    }
    return 0;
}

} // namespace fabnet
