/**
 * @file patterns.h
 * The five basic attention-sparsity patterns of Sec. III-A / Fig. 4:
 * low-rank, sliding-window, butterfly, random and block-wise - as
 * analysable boolean masks, plus the hardware-oriented analyses the
 * paper uses to justify choosing butterfly sparsity:
 *
 *  - data-access classification (sequential row+column, regular
 *    stride, or random reads),
 *  - bank-conflict behaviour under a banked memory,
 *  - information flow (local vs global token mixing and how many
 *    pattern applications reach full connectivity).
 */
#ifndef FABNET_SPARSITY_PATTERNS_H
#define FABNET_SPARSITY_PATTERNS_H

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace fabnet {
namespace sparsity {

/** The basic patterns of Fig. 4. */
enum class PatternKind {
    LowRank,
    SlidingWindow,
    Butterfly,
    Random,
    BlockWise
};

/** Printable name. */
std::string patternName(PatternKind kind);

/** An n x n boolean connectivity mask. */
class SparsityPattern
{
  public:
    /**
     * Low-rank: every token attends through @p rank landmark tokens
     * (dense rows and columns at the landmarks), the access pattern
     * that needs both sequential row and column reads.
     */
    static SparsityPattern lowRank(std::size_t n, std::size_t rank);

    /** Sliding window of half-width @p window around the diagonal. */
    static SparsityPattern slidingWindow(std::size_t n,
                                         std::size_t window);

    /**
     * Butterfly: the union of the log2(n) butterfly-stage pairings -
     * token i connects to i ^ 2^s for every stage s (plus itself).
     */
    static SparsityPattern butterfly(std::size_t n);

    /** Uniform random mask of the given density (diagonal kept). */
    static SparsityPattern random(std::size_t n, double density,
                                  Rng &rng);

    /** Block-diagonal mask with blocks of size @p block. */
    static SparsityPattern blockWise(std::size_t n, std::size_t block);

    /** Build by kind with that kind's canonical parameterisation. */
    static SparsityPattern make(PatternKind kind, std::size_t n,
                                Rng &rng);

    std::size_t size() const { return n_; }
    PatternKind kind() const { return kind_; }

    bool at(std::size_t i, std::size_t j) const
    {
        return mask_[i * n_ + j];
    }

    /** Fraction of nonzero entries. */
    double density() const;

    /** Number of nonzeros in row @p i. */
    std::size_t rowNnz(std::size_t i) const;

    /** Column indices of the nonzeros of row @p i, ascending. */
    std::vector<std::size_t> rowCols(std::size_t i) const;

  private:
    SparsityPattern(PatternKind kind, std::size_t n);

    PatternKind kind_;
    std::size_t n_;
    std::vector<char> mask_;
};

/** Data-access categories of Fig. 4. */
enum class AccessKind {
    SequentialRowColumn, ///< needs both row- and column-major streams
    RegularStride,       ///< fixed-stride gathers
    RandomRead           ///< data-dependent gathers
};

std::string accessName(AccessKind kind);

/** Static classification per Fig. 4. */
AccessKind accessPattern(PatternKind kind);

/**
 * Measured access regularity: fraction of consecutive nonzero-column
 * gaps within each row that equal the row's modal gap. 1.0 = perfectly
 * strided reads, ~0 = random gathers.
 */
double strideRegularity(const SparsityPattern &p);

/**
 * Bank-conflict stall factor: reading each row's nonzeros from a
 * @p banks -banked memory (bank = column % banks, banks words per
 * cycle), actual cycles / ideal cycles. 1.0 = conflict-free.
 */
double bankConflictFactor(const SparsityPattern &p, std::size_t banks);

/** Information-flow analysis of Fig. 4 (local/global columns). */
struct InfoFlow
{
    bool local = false;  ///< most tokens reach a neighbour in one hop
    bool global = false; ///< all tokens reachable in O(log n) hops
    std::size_t hops_to_full = 0; ///< applications until fully mixed
    /** Fraction of interior tokens with a one-hop immediate
     *  neighbour; local = coverage >= 0.5. */
    double local_coverage = 0.0;
};

/**
 * BFS over the pattern's connectivity: how many pattern applications
 * until every token can see every other (capped at @p max_hops).
 */
InfoFlow analyseInfoFlow(const SparsityPattern &p,
                         std::size_t max_hops = 64);

/** One row of the Fig. 4 comparison table. */
struct PatternReport
{
    PatternKind kind;
    double density = 0.0;
    AccessKind access;
    double stride_regularity = 0.0;
    double bank_conflict_factor = 0.0;
    bool hw_efficient = false; ///< the paper's "HW Eff." verdict
    InfoFlow info;
};

/** Analyse one pattern at size @p n with @p banks memory banks. */
PatternReport analysePattern(PatternKind kind, std::size_t n,
                             std::size_t banks, Rng &rng);

/**
 * Table II: which sparsity patterns each published efficient-attention
 * variant combines, and where it applies them.
 */
struct VariantEntry
{
    std::string model;
    std::vector<PatternKind> patterns;
    bool on_attention = false;
    bool on_ffn = false;
    bool unified_pattern = false; ///< single pattern everywhere
    bool needs_extra_kernels = false;
};

/** The published variants of Table II plus this paper's FABNet. */
std::vector<VariantEntry> variantCatalog();

} // namespace sparsity
} // namespace fabnet

#endif // FABNET_SPARSITY_PATTERNS_H
