#include "sparsity/patterns.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "butterfly/fft.h"
#include "sim/datapath.h"

namespace fabnet {
namespace sparsity {

std::string
patternName(PatternKind kind)
{
    switch (kind) {
      case PatternKind::LowRank:
        return "low-rank";
      case PatternKind::SlidingWindow:
        return "sliding-window";
      case PatternKind::Butterfly:
        return "butterfly";
      case PatternKind::Random:
        return "random";
      case PatternKind::BlockWise:
        return "block-wise";
    }
    return "?";
}

SparsityPattern::SparsityPattern(PatternKind kind, std::size_t n)
    : kind_(kind), n_(n), mask_(n * n, 0)
{
    if (n_ < 2)
        throw std::invalid_argument("SparsityPattern: n must be >= 2");
    for (std::size_t i = 0; i < n_; ++i)
        mask_[i * n_ + i] = 1; // every token sees itself
}

SparsityPattern
SparsityPattern::lowRank(std::size_t n, std::size_t rank)
{
    SparsityPattern p(PatternKind::LowRank, n);
    // Landmarks evenly spaced; dense row and column at each landmark.
    for (std::size_t k = 0; k < rank; ++k) {
        const std::size_t lm = k * n / rank;
        for (std::size_t j = 0; j < n; ++j) {
            p.mask_[lm * n + j] = 1;
            p.mask_[j * n + lm] = 1;
        }
    }
    return p;
}

SparsityPattern
SparsityPattern::slidingWindow(std::size_t n, std::size_t window)
{
    SparsityPattern p(PatternKind::SlidingWindow, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t lo = i >= window ? i - window : 0;
        const std::size_t hi = std::min(n - 1, i + window);
        for (std::size_t j = lo; j <= hi; ++j)
            p.mask_[i * n + j] = 1;
    }
    return p;
}

SparsityPattern
SparsityPattern::butterfly(std::size_t n)
{
    if (!isPowerOfTwo(n))
        throw std::invalid_argument(
            "butterfly pattern: n must be a power of two");
    SparsityPattern p(PatternKind::Butterfly, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t s = 0; (std::size_t{1} << s) < n; ++s)
            p.mask_[i * n + (i ^ (std::size_t{1} << s))] = 1;
    return p;
}

SparsityPattern
SparsityPattern::random(std::size_t n, double density, Rng &rng)
{
    SparsityPattern p(PatternKind::Random, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (rng.bernoulli(density))
                p.mask_[i * n + j] = 1;
    return p;
}

SparsityPattern
SparsityPattern::blockWise(std::size_t n, std::size_t block)
{
    SparsityPattern p(PatternKind::BlockWise, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t b = i / block;
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        for (std::size_t j = lo; j < hi; ++j)
            p.mask_[i * n + j] = 1;
    }
    return p;
}

SparsityPattern
SparsityPattern::make(PatternKind kind, std::size_t n, Rng &rng)
{
    // Canonical parameterisations with comparable densities
    // (~2 log2(n) / n, the butterfly's).
    const std::size_t l = log2Exact(nextPowerOfTwo(n));
    switch (kind) {
      case PatternKind::LowRank:
        return lowRank(n, std::max<std::size_t>(1, l / 2));
      case PatternKind::SlidingWindow:
        return slidingWindow(n, l);
      case PatternKind::Butterfly:
        return butterfly(n);
      case PatternKind::Random:
        return random(n, 2.0 * static_cast<double>(l) /
                             static_cast<double>(n),
                      rng);
      case PatternKind::BlockWise:
        return blockWise(n, 2 * l);
    }
    throw std::invalid_argument("unknown pattern kind");
}

double
SparsityPattern::density() const
{
    std::size_t nnz = 0;
    for (char m : mask_)
        nnz += m;
    return static_cast<double>(nnz) / static_cast<double>(n_ * n_);
}

std::size_t
SparsityPattern::rowNnz(std::size_t i) const
{
    std::size_t nnz = 0;
    for (std::size_t j = 0; j < n_; ++j)
        nnz += mask_[i * n_ + j];
    return nnz;
}

std::vector<std::size_t>
SparsityPattern::rowCols(std::size_t i) const
{
    std::vector<std::size_t> cols;
    for (std::size_t j = 0; j < n_; ++j)
        if (mask_[i * n_ + j])
            cols.push_back(j);
    return cols;
}

std::string
accessName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::SequentialRowColumn:
        return "sequential row & column read";
      case AccessKind::RegularStride:
        return "regular stride read";
      case AccessKind::RandomRead:
        return "random read";
    }
    return "?";
}

AccessKind
accessPattern(PatternKind kind)
{
    switch (kind) {
      case PatternKind::LowRank:
        return AccessKind::SequentialRowColumn;
      case PatternKind::SlidingWindow:
      case PatternKind::Butterfly:
      case PatternKind::BlockWise:
        return AccessKind::RegularStride;
      case PatternKind::Random:
        return AccessKind::RandomRead;
    }
    return AccessKind::RandomRead;
}

double
strideRegularity(const SparsityPattern &p)
{
    std::size_t regular = 0, total = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        const auto cols = p.rowCols(i);
        if (cols.size() < 3)
            continue;
        // Gap histogram; the modal gap's share measures regularity.
        std::map<std::size_t, std::size_t> gaps;
        for (std::size_t k = 1; k < cols.size(); ++k)
            ++gaps[cols[k] - cols[k - 1]];
        std::size_t modal = 0;
        for (const auto &[gap, count] : gaps)
            modal = std::max(modal, count);
        regular += modal;
        total += cols.size() - 1;
    }
    return total ? static_cast<double>(regular) / total : 1.0;
}

double
bankConflictFactor(const SparsityPattern &p, std::size_t banks)
{
    double actual = 0.0, ideal = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        const auto cols = p.rowCols(i);
        ideal += std::ceil(static_cast<double>(cols.size()) /
                           static_cast<double>(banks));
        // Greedy issue: per cycle, each bank serves one word; a
        // conflicting access waits for the next cycle.
        std::size_t idx = 0;
        while (idx < cols.size()) {
            std::vector<bool> used(banks, false);
            std::size_t served = 0;
            // Serve in order; stop the cycle at the first conflict
            // (in-order issue, as a streaming engine would).
            while (idx < cols.size()) {
                const std::size_t b = cols[idx] % banks;
                if (used[b])
                    break;
                used[b] = true;
                ++idx;
                ++served;
            }
            actual += 1.0;
            if (served == 0)
                ++idx; // safety: cannot happen, every bank starts free
        }
    }
    return ideal > 0.0 ? actual / ideal : 1.0;
}

InfoFlow
analyseInfoFlow(const SparsityPattern &p, std::size_t max_hops)
{
    const std::size_t n = p.size();
    InfoFlow flow;

    // Local coverage: fraction of interior tokens that reach at least
    // one immediate neighbour in a single hop.
    std::size_t covered = 0;
    for (std::size_t i = 1; i + 1 < n; ++i)
        if (p.at(i, i - 1) || p.at(i, i + 1))
            ++covered;
    flow.local_coverage =
        static_cast<double>(covered) / static_cast<double>(n - 2);
    flow.local = flow.local_coverage >= 0.5;

    // Hops until token 0 reaches everyone (patterns here are
    // symmetric enough that token 0 is representative; we verify all
    // tokens below for the "full" criterion).
    std::vector<char> reach(n, 0);
    reach[0] = 1;
    std::size_t frontier = 1;
    std::size_t hops = 0;
    while (frontier < n && hops < max_hops) {
        ++hops;
        std::vector<char> next = reach;
        for (std::size_t i = 0; i < n; ++i) {
            if (!reach[i])
                continue;
            for (std::size_t j = 0; j < n; ++j)
                if (p.at(i, j))
                    next[j] = 1;
        }
        reach.swap(next);
        frontier = 0;
        for (char r : reach)
            frontier += r;
    }
    flow.hops_to_full = (frontier == n) ? hops : max_hops + 1;
    // Global per Fig. 4: reaches everything within O(log n) hops.
    flow.global =
        flow.hops_to_full <= log2Exact(nextPowerOfTwo(n)) + 1;
    return flow;
}

PatternReport
analysePattern(PatternKind kind, std::size_t n, std::size_t banks,
               Rng &rng)
{
    const SparsityPattern p = SparsityPattern::make(kind, n, rng);
    PatternReport r;
    r.kind = kind;
    r.density = p.density();
    r.access = accessPattern(kind);
    if (kind == PatternKind::Butterfly) {
        // The butterfly engine never gathers a whole mask row: it
        // executes log2(n) stages, each a fixed-stride sweep, and the
        // S2P layout schedules every stage conflict-free at full
        // bandwidth (verified exhaustively by ButterflyMemoryLayout's
        // scheduleStage and its test sweep).
        r.stride_regularity = 1.0;
        sim::ButterflyMemoryLayout layout(
            p.size(), std::min<std::size_t>(banks, p.size()));
        double cycles = 0.0;
        std::size_t stages = 0;
        for (std::size_t s = 0; (std::size_t{1} << s) < p.size();
             ++s) {
            cycles += static_cast<double>(layout.scheduleStage(s).size());
            ++stages;
        }
        const double ideal =
            static_cast<double>(stages) *
            static_cast<double>(layout.cyclesPerStage());
        r.bank_conflict_factor = cycles / ideal;
    } else {
        r.stride_regularity = strideRegularity(p);
        r.bank_conflict_factor = bankConflictFactor(p, banks);
    }
    r.info = analyseInfoFlow(p);
    // The paper's Fig. 4 verdict: efficient iff reads are regular.
    r.hw_efficient = r.access == AccessKind::RegularStride;
    return r;
}

std::vector<VariantEntry>
variantCatalog()
{
    using PK = PatternKind;
    std::vector<VariantEntry> v;
    v.push_back({"Performer/Linformer", {PK::LowRank}, true, false,
                 true, true});
    v.push_back({"Reformer", {PK::BlockWise}, true, false, true, true});
    v.push_back({"Sparse Sinkhorn", {PK::BlockWise, PK::Random}, true,
                 false, false, false});
    v.push_back({"Longformer", {PK::SlidingWindow, PK::LowRank}, true,
                 false, false, false});
    v.push_back({"BigBird",
                 {PK::Random, PK::SlidingWindow, PK::LowRank}, true,
                 false, false, false});
    v.push_back({"FNet", {PK::Butterfly}, true, false, true, false});
    v.push_back(
        {"Kaleidoscope", {PK::Butterfly}, false, true, true, false});
    v.push_back({"Sparse Transformer",
                 {PK::LowRank, PK::Butterfly, PK::SlidingWindow}, true,
                 false, false, false});
    v.push_back({"Pixelfly/Monarch",
                 {PK::Butterfly, PK::BlockWise, PK::LowRank}, false,
                 true, false, false});
    v.push_back({"FABNet (this work)", {PK::Butterfly}, true, true,
                 true, false});
    return v;
}

} // namespace sparsity
} // namespace fabnet
