#include "serve/serving.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/autotune.h"
#include "runtime/isa.h"
#include "runtime/workspace.h"

namespace fabnet {
namespace serve {

namespace {

/**
 * Process-wide registry of engine-installed workspace caps. With
 * overlapping engine lifetimes the tightest active cap wins (safe for
 * all of them - a tighter cap only trades reallocation for footprint),
 * and the pre-existing policy is restored only when the last engine
 * goes away.
 */
class WorkspaceCapRegistry
{
  public:
    void install(std::size_t cap)
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (caps_.empty())
            baseline_ = runtime::workspaceCapBytes();
        caps_.insert(cap);
        runtime::setWorkspaceCapBytes(*caps_.begin());
    }
    void remove(std::size_t cap)
    {
        std::lock_guard<std::mutex> lk(mu_);
        caps_.erase(caps_.find(cap));
        runtime::setWorkspaceCapBytes(caps_.empty() ? baseline_
                                                    : *caps_.begin());
    }

  private:
    std::mutex mu_;
    std::multiset<std::size_t> caps_;
    std::size_t baseline_ = 0;
};

WorkspaceCapRegistry g_cap_registry;

/** Map an invocation failure to the typed error its rows fail with:
 *  injected faults are already serve::Error and pass through, real
 *  model exceptions are wrapped as ModelFault keeping their message. */
Error
modelFaultFrom(std::exception_ptr ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const Error &e) {
        return e;
    } catch (const std::exception &e) {
        return Error(ErrorCode::ModelFault, e.what());
    } catch (...) {
        return Error(ErrorCode::ModelFault, "unknown model exception");
    }
}

} // namespace

namespace detail {

void
installWorkspaceCap(std::size_t cap)
{
    g_cap_registry.install(cap);
}

void
removeWorkspaceCap(std::size_t cap)
{
    g_cap_registry.remove(cap);
}

} // namespace detail

/** Registers the in-flight invocation's cancel token and start time
 *  with the watchdog for the duration of the model call (RAII). */
struct ServingEngine::WatchdogArm
{
    ServingEngine &e;
    WatchdogArm(ServingEngine &eng, runtime::CancelToken &tok) : e(eng)
    {
        std::lock_guard<std::mutex> lk(e.wd_mu_);
        e.wd_token_ = &tok;
        e.wd_started_ = RequestBatcher::Clock::now();
        e.wd_fired_ = false;
        e.wd_cv_.notify_all();
    }
    ~WatchdogArm()
    {
        std::lock_guard<std::mutex> lk(e.wd_mu_);
        e.wd_token_ = nullptr;
        e.wd_cv_.notify_all();
    }
};

ServingEngine::ServingEngine(SequenceClassifier &model, ServingConfig cfg)
    : model_(model), cfg_(cfg),
      batcher_(cfg.max_batch, cfg.bucket_granularity,
               model.config().max_seq)
{
    if (cfg_.pad_token < 0 ||
        static_cast<std::size_t>(cfg_.pad_token) >= model_.config().vocab)
        throw std::invalid_argument(
            "ServingEngine: pad_token outside the model vocabulary");
    // With granularity 1 buckets are padding-free, so even layers
    // without a masked form serve deterministically.
    if (!model_.supportsMaskedBatch() && cfg_.bucket_granularity > 1 &&
        !cfg_.allow_unmasked_mixers)
        throw std::invalid_argument(
            "ServingEngine: model has blocks without a masked form "
            "(Fourier mixers) - served logits would depend on the "
            "padded length a request happens to be bucketed at. Use "
            "bucket_granularity == 1 (padding-free buckets), or set "
            "ServingConfig::allow_unmasked_mixers to serve anyway, "
            "forfeiting per-request determinism.");
    if (cfg_.max_queue_tokens != 0 &&
        cfg_.max_queue_tokens < model_.config().max_seq)
        throw std::invalid_argument(
            "ServingEngine: max_queue_tokens below max_seq would make "
            "some valid requests permanently inadmissible");
    // RAII member lease: survives a throwing std::thread constructor
    // below (the engine destructor would not run, the member's would).
    ws_cap_lease_ =
        detail::WorkspaceCapLease(cfg_.workspace_cap_bytes);
    if (cfg_.watchdog_timeout.count() > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

ServingEngine::~ServingEngine()
{
    // Full graceful drain first: every outstanding future resolves
    // (and every flush()/serveAll() waiter is released) before the
    // threads are torn down.
    shutdown();
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        work_cv_.notify_all();
        idle_cv_.notify_all();
    }
    dispatcher_.join();
    if (watchdog_.joinable()) {
        {
            std::lock_guard<std::mutex> wl(wd_mu_);
            wd_stop_ = true;
            wd_cv_.notify_all();
        }
        watchdog_.join();
    }
    // ws_cap_lease_ releases the workspace cap via member destruction.
}

std::future<std::vector<float>>
ServingEngine::enqueueLocked(std::vector<int> tokens, Deadline deadline,
                             bool enforce_bounds)
{
    // Admission attempts are numbered in order - rejected ones
    // included - so FaultPlan admission indices are deterministic for
    // a fixed submission sequence.
    const std::uint64_t admission_index = submit_seq_++;
    // Validate the length up front with a typed error; nothing is
    // queued on any throw below.
    try {
        (void)batcher_.bucketLen(tokens.size());
    } catch (const std::invalid_argument &e) {
        throw Error(ErrorCode::InvalidRequest, e.what());
    }
    const FaultPlan *plan = cfg_.fault_plan;
    if (plan && plan->requestFault(admission_index,
                                   FaultPlan::Stage::Admission))
        throw Error(ErrorCode::InvalidRequest,
                    "injected admission fault (request #" +
                        std::to_string(admission_index) + ")");
    const auto now = RequestBatcher::Clock::now();
    if (deadline != kNoDeadline && deadline <= now) {
        ++stats_.expired_in_queue;
        throw Error(ErrorCode::DeadlineExceeded,
                    "deadline already expired at submit");
    }
    if (enforce_bounds) {
        const auto over = [&] {
            return (cfg_.max_queue_requests != 0 &&
                    batcher_.size() >= cfg_.max_queue_requests) ||
                   (cfg_.max_queue_tokens != 0 &&
                    queued_tokens_ + tokens.size() >
                        cfg_.max_queue_tokens);
        };
        if (over() && cfg_.shed_policy == ShedPolicy::DropExpiredFirst)
            shedExpiredLocked(now);
        if (over()) {
            ++stats_.rejected;
            throw Error(ErrorCode::QueueFull,
                        "admission queue full (" +
                            std::to_string(batcher_.size()) +
                            " requests / " +
                            std::to_string(queued_tokens_) +
                            " tokens queued)");
        }
    }
    const std::uint64_t id = next_id_++;
    batcher_.push(id, tokens.size(), now);
    outstanding_.insert(id);
    queued_tokens_ += tokens.size();
    if (deadline != kNoDeadline)
        deadlines_.emplace(deadline, id);
    Pending &p = pending_[id];
    p.tokens = std::move(tokens);
    p.deadline = deadline;
    p.admission_index = admission_index;
    std::future<std::vector<float>> fut = p.promise.get_future();
    ++stats_.requests;
    return fut;
}

void
ServingEngine::shedExpiredLocked(RequestBatcher::Clock::time_point now)
{
    const std::vector<std::uint64_t> victims =
        batcher_.removeIf([&](std::uint64_t id) {
            const Pending &p = pending_.at(id);
            return p.deadline != kNoDeadline && p.deadline <= now;
        });
    if (victims.empty())
        return;
    stats_.shed += victims.size();
    stats_.failed += victims.size();
    for (std::uint64_t id : victims) {
        auto it = pending_.find(id);
        queued_tokens_ -= it->second.tokens.size();
        eraseDeadlineLocked(it->second.deadline, id);
        it->second.promise.set_exception(std::make_exception_ptr(Error(
            ErrorCode::DeadlineExceeded,
            "shed from the admission queue (DropExpiredFirst: deadline "
            "expired before dispatch)")));
        pending_.erase(it);
        outstanding_.erase(id);
    }
    idle_cv_.notify_all(); // outstanding_ shrank: waiters re-check
}

void
ServingEngine::eraseDeadlineLocked(Deadline deadline, std::uint64_t id)
{
    if (deadline == kNoDeadline)
        return;
    const auto it = deadlines_.find({deadline, id});
    if (it != deadlines_.end())
        deadlines_.erase(it);
}

void
ServingEngine::failQueuedLocked()
{
    const std::vector<std::uint64_t> victims =
        batcher_.removeIf([](std::uint64_t) { return true; });
    stats_.failed += victims.size();
    for (std::uint64_t id : victims) {
        auto it = pending_.find(id);
        queued_tokens_ -= it->second.tokens.size();
        eraseDeadlineLocked(it->second.deadline, id);
        it->second.promise.set_exception(std::make_exception_ptr(Error(
            ErrorCode::ShuttingDown,
            "engine shut down before this request was served")));
        pending_.erase(it);
        outstanding_.erase(id);
    }
    idle_cv_.notify_all();
}

std::future<std::vector<float>>
ServingEngine::submit(std::vector<int> tokens, Deadline deadline)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_ || draining_)
        throw Error(ErrorCode::ShuttingDown,
                    "engine is shutting down; request not admitted");
    std::future<std::vector<float>> fut =
        enqueueLocked(std::move(tokens), deadline, true);
    work_cv_.notify_all();
    return fut;
}

std::vector<std::vector<float>>
ServingEngine::serveAll(const std::vector<std::vector<int>> &requests)
{
    std::vector<std::future<std::vector<float>>> futs;
    futs.reserve(requests.size());
    std::uint64_t watermark = 0;
    {
        // Bulk enqueue WITHOUT waking the dispatcher: the calling
        // thread is about to run the groups itself, so the handoff
        // would only add a wakeup and a context switch per batch.
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_ || draining_)
            throw Error(ErrorCode::ShuttingDown,
                        "engine is shutting down; request set not "
                        "admitted");
        // All-or-nothing admission: validate the whole set before
        // anything is enqueued, so a malformed request throws with no
        // partial set left behind.
        for (std::size_t i = 0; i < requests.size(); ++i) {
            try {
                (void)batcher_.bucketLen(requests[i].size());
            } catch (const std::invalid_argument &e) {
                throw Error(ErrorCode::InvalidRequest,
                            "serveAll request #" + std::to_string(i) +
                                ": " + e.what());
            }
        }
        const std::uint64_t first_id = next_id_;
        try {
            // serveAll is exempt from the admission caps (the caller
            // is synchronous and self-draining - it IS the
            // backpressure) and its requests carry no deadline.
            for (const auto &r : requests)
                futs.push_back(enqueueLocked(r, kNoDeadline, false));
        } catch (...) {
            // Lengths were pre-validated, so only an injected
            // admission fault lands here. Keep the all-or-nothing
            // contract: unwind the already-admitted prefix (we held
            // mu_ throughout, so every id >= first_id is ours and
            // still queued) instead of leaving it to drain silently.
            const std::vector<std::uint64_t> prefix = batcher_.removeIf(
                [&](std::uint64_t id) { return id >= first_id; });
            stats_.failed += prefix.size();
            for (std::uint64_t id : prefix) {
                auto it = pending_.find(id);
                queued_tokens_ -= it->second.tokens.size();
                it->second.promise.set_exception(
                    std::make_exception_ptr(Error(
                        ErrorCode::InvalidRequest,
                        "aborted: a later request in the same "
                        "serveAll set failed admission")));
                pending_.erase(it);
                outstanding_.erase(id);
            }
            idle_cv_.notify_all();
            throw;
        }
        watermark = next_id_;
        // Same critical section as the enqueue: the dispatcher can
        // never observe the requests without also observing the
        // inline server, so it parks instead of stealing groups.
        ++inline_active_;
    }

    // Inline bulk dispatch: claim and run groups on this thread until
    // everything submitted above is served. Ready (full) buckets pop
    // with their normal flush reason first, then the leftovers drain -
    // the same grouping the dispatcher would produce.
    try {
        for (;;) {
            std::unique_lock<std::mutex> lk(mu_);
            const auto served_to_watermark = [this, watermark] {
                return outstanding_.empty() ||
                       *outstanding_.begin() >= watermark;
            };
            std::optional<BatchGroup> group =
                batcher_.popReady(RequestBatcher::Clock::now(),
                                  cfg_.max_wait);
            if (!group)
                group = batcher_.drainBelow(watermark);
            if (!group) {
                if (served_to_watermark())
                    break;
                // The rest is in flight on another server (a
                // concurrent serveAll, a flush-draining dispatcher);
                // wait like flush() does.
                idle_cv_.wait(lk, [&] {
                    return served_to_watermark() || stop_;
                });
                if (stop_)
                    break; // shutdown drain will fulfil the futures
                continue;
            }
            ClaimedGroup claimed = claimGroupLocked(*group);
            if (claimed.reqs.empty()) {
                // Every member expired at claim (possible when submit
                // traffic with deadlines shares our buckets).
                finishGroupLocked(*group);
                continue;
            }
            ++stats_.inline_batches;
            lk.unlock(); // serve outside the lock, like the dispatcher
            runGroup(*group, std::move(claimed));
            lk.lock();
            finishGroupLocked(*group);
        }
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        --inline_active_;
        work_cv_.notify_all();
        throw;
    }
    {
        // Hand whatever post-watermark traffic accumulated back to
        // the dispatcher.
        std::lock_guard<std::mutex> lk(mu_);
        --inline_active_;
        work_cv_.notify_all();
    }

    std::vector<std::vector<float>> out;
    out.reserve(futs.size());
    for (auto &f : futs)
        out.push_back(f.get());
    return out;
}

void
ServingEngine::flush()
{
    std::unique_lock<std::mutex> lk(mu_);
    // Watermark: wait for the requests submitted before this call
    // only, so concurrent submitters cannot starve a flusher.
    const std::uint64_t watermark = next_id_;
    const auto served_to_watermark = [this, watermark] {
        return outstanding_.empty() ||
               *outstanding_.begin() >= watermark;
    };
    if (served_to_watermark())
        return;
    ++flush_waiters_;
    flush_watermark_ = std::max(flush_watermark_, watermark);
    work_cv_.notify_all();
    // A shutdown() racing this flush resolves every outstanding
    // future (served, or failed at a shutdown deadline), so the
    // predicate always becomes true: flush is never stranded across
    // shutdown and returns with its whole watermark resolved.
    idle_cv_.wait(lk, [&] { return served_to_watermark() || stop_; });
    if (--flush_waiters_ == 0)
        flush_watermark_ = 0;
}

void
ServingEngine::shutdown(Deadline deadline)
{
    std::unique_lock<std::mutex> lk(mu_);
    draining_ = true;
    work_cv_.notify_all(); // dispatcher switches to drain mode
    const auto all_resolved = [this] { return outstanding_.empty(); };
    if (deadline == kNoDeadline) {
        // Full drain. (Not wait_until: time_point::max() overflows
        // some libstdc++ wait implementations.)
        idle_cv_.wait(lk, all_resolved);
        return;
    }
    if (idle_cv_.wait_until(lk, deadline, all_resolved))
        return;
    // Deadline passed: fail everything still queued, cooperatively
    // cancel the in-flight invocation (its rows fail with
    // ShuttingDown via cancelCause), and wait for the last group to
    // unwind. abandon_ is set first so a Cancelled invocation - and
    // one that arms after this point - attributes to shutdown.
    abandon_.store(true, std::memory_order_release);
    failQueuedLocked();
    {
        std::lock_guard<std::mutex> wl(wd_mu_);
        if (wd_token_)
            wd_token_->cancel();
    }
    idle_cv_.wait(lk, all_resolved);
}

std::size_t
ServingEngine::bucketLen(std::size_t len) const
{
    return batcher_.bucketLen(len);
}

ServingStats
ServingEngine::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServingStats out = stats_;
    out.isa = runtime::isa();
    out.cpu_signature = runtime::cpuSignature();
    out.tuning = runtime::tuningReport();
    return out;
}

Error
ServingEngine::cancelCause() const
{
    return abandon_.load(std::memory_order_acquire)
               ? Error(ErrorCode::ShuttingDown,
                       "invocation cancelled at the shutdown deadline")
               : Error(ErrorCode::ModelFault,
                       "watchdog cancelled a stuck model invocation");
}

void
ServingEngine::failGroup(std::vector<Pending> &reqs, const Error &err)
{
    // Count the failures BEFORE the futures become ready (same
    // publication order as the success path).
    {
        std::lock_guard<std::mutex> guard(mu_);
        stats_.failed += reqs.size();
        if (err.code() == ErrorCode::ModelFault)
            stats_.model_faults += reqs.size();
    }
    const std::exception_ptr ep = std::make_exception_ptr(err);
    for (Pending &p : reqs)
        p.promise.set_exception(ep);
}

Tensor
ServingEngine::invokeModel(const std::vector<int> &tokens,
                           std::size_t bsz, std::size_t seq,
                           const std::vector<std::size_t> &lens,
                           bool stall, const std::string *injected_fault)
{
    // The model is single-user (layer caches); the dispatcher, inline
    // serveAll() callers and isolation retries serialise here.
    std::lock_guard<std::mutex> model_lock(model_mu_);
    runtime::CancelToken cancel;
    WatchdogArm arm(*this, cancel);
    runtime::CancelScope scope(cancel);
    // A shutdown deadline that passed while we waited for the model
    // mutex cancels this invocation before any work is done.
    if (abandon_.load(std::memory_order_acquire))
        cancel.cancel();
    if (stall) {
        // Injected stall: spin until the watchdog (or a shutdown
        // deadline) cancels us; the safety bound turns a missing
        // watchdog into a loud ModelFault instead of a hung test.
        const auto start = RequestBatcher::Clock::now();
        for (;;) {
            if (cancel.cancelled())
                throw runtime::Cancelled{};
            if (RequestBatcher::Clock::now() - start >
                std::chrono::seconds(10))
                throw Error(ErrorCode::ModelFault,
                            "injected stall hit its 10s safety bound "
                            "(no watchdog cancelled it)");
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
    if (injected_fault)
        throw Error(ErrorCode::ModelFault, *injected_fault);
    return model_.forwardBatch(tokens, bsz, seq, lens);
}

void
ServingEngine::runGroup(const BatchGroup &group, ClaimedGroup claimed)
{
    std::vector<Pending> &reqs = claimed.reqs;
    const std::size_t bsz = reqs.size();
    const std::size_t seq = group.padded_len;
    const FaultPlan *plan = cfg_.fault_plan;

    if (plan) {
        const std::chrono::microseconds d =
            plan->batchDelay(claimed.dispatch_index);
        if (d.count() > 0)
            std::this_thread::sleep_for(d);
    }

    std::vector<int> tokens(bsz * seq, cfg_.pad_token);
    std::vector<std::size_t> lens(bsz);
    std::string injected;
    for (std::size_t i = 0; i < bsz; ++i) {
        lens[i] = reqs[i].tokens.size();
        std::copy(reqs[i].tokens.begin(), reqs[i].tokens.end(),
                  tokens.begin() + i * seq);
        if (plan && injected.empty() &&
            plan->requestFault(reqs[i].admission_index,
                               FaultPlan::Stage::Model))
            injected = "injected model fault (request #" +
                       std::to_string(reqs[i].admission_index) + ")";
    }

    // Build every result before fulfilling any promise, so the catch
    // paths never touch an already-satisfied promise (set_exception
    // on one throws future_error out of the dispatcher).
    std::vector<std::vector<float>> outs;
    try {
        const Tensor logits =
            invokeModel(tokens, bsz, seq, lens,
                        plan && plan->batchStalls(claimed.dispatch_index),
                        injected.empty() ? nullptr : &injected);
        const std::size_t classes = logits.dim(1);
        outs.reserve(bsz);
        for (std::size_t i = 0; i < bsz; ++i) {
            const float *row = logits.data() + i * classes;
            outs.emplace_back(row, row + classes);
        }
    } catch (const runtime::Cancelled &) {
        // Watchdog / shutdown-deadline cancellation fails the whole
        // group: the invocation never finished, so there is no row to
        // salvage, and re-running a stuck batch would stick again.
        failGroup(reqs, cancelCause());
        return;
    } catch (...) {
        if (bsz == 1) {
            // Already a 1-row batch: the fault belongs to this row.
            failGroup(reqs, modelFaultFrom(std::current_exception()));
            return;
        }
        // Per-request fault isolation: one bounded per-row pass so the
        // poisoned row(s) alone fail and the survivors still get their
        // (bitwise-identical) logits.
        isolateRows(std::move(reqs));
        return;
    }

    // Mid-batch deadline check: results computed past a request's
    // deadline are discarded - a fulfilled future therefore always
    // resolved within its deadline.
    const auto done = RequestBatcher::Clock::now();
    std::vector<char> expired(bsz, 0);
    std::size_t n_expired = 0;
    for (std::size_t i = 0; i < bsz; ++i) {
        if (reqs[i].deadline != kNoDeadline && reqs[i].deadline <= done) {
            expired[i] = 1;
            ++n_expired;
        }
    }
    // Publish the batch's outcome counters BEFORE fulfilling any
    // promise: a client thread that wakes from future.get() and
    // immediately calls stats() must already see this batch counted
    // (tests/serving_test.cpp relies on it).
    {
        std::lock_guard<std::mutex> guard(mu_);
        stats_.completed += bsz - n_expired;
        stats_.failed += n_expired;
        stats_.expired_mid_batch += n_expired;
        std::size_t real = 0, max_len = 0;
        for (const Pending &p : reqs) {
            real += p.tokens.size();
            max_len = std::max(max_len, p.tokens.size());
        }
        stats_.real_tokens += real;
        stats_.padded_tokens += bsz * seq;
        stats_.tight_tokens += bsz * max_len;
        // Padded rows this batch skipped end to end (forwardBatch
        // takes the ragged path exactly under these conditions).
        if (model_.raggedBatch() && model_.supportsMaskedBatch())
            stats_.rows_skipped += bsz * seq - real;
    }
    for (std::size_t i = 0; i < bsz; ++i) {
        if (expired[i])
            reqs[i].promise.set_exception(std::make_exception_ptr(Error(
                ErrorCode::DeadlineExceeded,
                "deadline passed while the batch was executing")));
        else
            reqs[i].promise.set_value(std::move(outs[i]));
    }
}

void
ServingEngine::isolateRows(std::vector<Pending> reqs)
{
    {
        std::lock_guard<std::mutex> guard(mu_);
        ++stats_.isolation_retries;
    }
    const FaultPlan *plan = cfg_.fault_plan;
    for (Pending &p : reqs) {
        const auto now = RequestBatcher::Clock::now();
        if (p.deadline != kNoDeadline && p.deadline <= now) {
            {
                std::lock_guard<std::mutex> guard(mu_);
                ++stats_.failed;
                ++stats_.expired_mid_batch;
            }
            p.promise.set_exception(std::make_exception_ptr(Error(
                ErrorCode::DeadlineExceeded,
                "deadline passed during fault isolation")));
            continue;
        }
        std::string injected;
        // Model faults are sticky (serve/fault.h): an injected fault
        // fires in the isolation pass too, so the poisoned row fails
        // here instead of silently succeeding on retry.
        if (plan && plan->requestFault(p.admission_index,
                                       FaultPlan::Stage::Model))
            injected = "injected model fault (request #" +
                       std::to_string(p.admission_index) + ")";
        const std::size_t len = p.tokens.size();
        try {
            // A 1-row batch at the row's own length: bitwise equal to
            // the row's batched result by the engine's determinism
            // guarantee, so survivors of a poisoned batch see logits
            // identical to a fault-free run.
            const Tensor logits = invokeModel(
                p.tokens, 1, len, {len}, false,
                injected.empty() ? nullptr : &injected);
            const std::size_t classes = logits.dim(1);
            std::vector<float> out(logits.data(),
                                   logits.data() + classes);
            {
                std::lock_guard<std::mutex> guard(mu_);
                ++stats_.completed;
                stats_.real_tokens += len;
                stats_.padded_tokens += len;
                stats_.tight_tokens += len;
            }
            p.promise.set_value(std::move(out));
        } catch (const runtime::Cancelled &) {
            const Error err = cancelCause();
            {
                std::lock_guard<std::mutex> guard(mu_);
                ++stats_.failed;
                if (err.code() == ErrorCode::ModelFault)
                    ++stats_.model_faults;
            }
            p.promise.set_exception(std::make_exception_ptr(err));
        } catch (...) {
            const Error err = modelFaultFrom(std::current_exception());
            {
                std::lock_guard<std::mutex> guard(mu_);
                ++stats_.failed;
                if (err.code() == ErrorCode::ModelFault)
                    ++stats_.model_faults;
            }
            p.promise.set_exception(std::make_exception_ptr(err));
        }
    }
}

void
ServingEngine::dispatchLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        std::optional<BatchGroup> group;
        // While flushers wait, drain the buckets holding their
        // pre-watermark requests; post-watermark traffic keeps normal
        // full/timeout batching (and cannot starve the flusher, since
        // its buckets no longer compete for the drain).
        if (stop_ || draining_)
            group = batcher_.drain();
        else if (inline_active_ > 0 && flush_waiters_ == 0) {
            // Inline serveAll() servers own the queue: parking here
            // avoids stealing their groups (and serialising on the
            // model mutex behind them). They notify work_cv_ on exit
            // for whatever traffic remains.
            work_cv_.wait(lk);
            continue;
        } else if (flush_waiters_ > 0)
            group = batcher_.drainBelow(flush_watermark_);
        if (!group)
            group = batcher_.popReady(RequestBatcher::Clock::now(),
                                      cfg_.max_wait);
        // Urgent flush: a queued request whose deadline falls inside
        // the normal max_wait window cannot afford to wait out its
        // bucket's timeout - flush its bucket now (it was going to be
        // served undersized at the timeout anyway; doing it early
        // costs nothing and meets the deadline).
        if (!group && !deadlines_.empty() &&
            deadlines_.begin()->first - cfg_.max_wait <=
                RequestBatcher::Clock::now()) {
            group = batcher_.popContaining(deadlines_.begin()->second);
            if (group)
                ++stats_.urgent_flushes;
            else // stale entry (should not happen; stay live anyway)
                deadlines_.erase(deadlines_.begin());
        }
        if (!group) {
            if (stop_)
                break; // queue drained
            auto oldest = batcher_.oldestEnqueue();
            std::optional<RequestBatcher::Clock::time_point> wake;
            if (oldest)
                wake = *oldest + cfg_.max_wait;
            // Re-arm against the earliest queued deadline too: it
            // turns urgent at deadline - max_wait, and an arriving
            // request with an earlier effective deadline notifies
            // work_cv_ (submit()), landing back here to re-arm - the
            // dispatcher never sleeps out a full max_wait while a
            // near-deadline request expires in queue.
            if (!deadlines_.empty()) {
                const auto urgent_at =
                    deadlines_.begin()->first - cfg_.max_wait;
                if (!wake || urgent_at < *wake)
                    wake = urgent_at;
            }
            if (wake)
                work_cv_.wait_until(lk, *wake);
            else
                work_cv_.wait(lk);
            continue;
        }

        ClaimedGroup claimed = claimGroupLocked(*group);
        if (claimed.reqs.empty()) {
            // Every member expired at claim: no model invocation.
            finishGroupLocked(*group);
            continue;
        }
        lk.unlock(); // serve outside the lock so submit() never blocks
        runGroup(*group, std::move(claimed)); // counts completed/failed
        lk.lock();
        finishGroupLocked(*group);
    }
}

ServingEngine::ClaimedGroup
ServingEngine::claimGroupLocked(const BatchGroup &group)
{
    ClaimedGroup claimed;
    claimed.reqs.reserve(group.ids.size());
    const auto now = RequestBatcher::Clock::now();
    for (std::uint64_t id : group.ids) {
        auto it = pending_.find(id);
        Pending p = std::move(it->second);
        pending_.erase(it);
        queued_tokens_ -= p.tokens.size();
        eraseDeadlineLocked(p.deadline, id);
        if (p.deadline != kNoDeadline && p.deadline <= now) {
            // Expired while queued: fail BEFORE any model time is
            // spent. Counted under mu_ (held) before the future is
            // readied; outstanding_ is erased in finishGroupLocked.
            ++stats_.failed;
            ++stats_.expired_in_queue;
            p.promise.set_exception(std::make_exception_ptr(Error(
                ErrorCode::DeadlineExceeded,
                "deadline expired in queue (request never reached the "
                "model)")));
            continue;
        }
        claimed.reqs.push_back(std::move(p));
    }
    if (!claimed.reqs.empty()) {
        // Dispatch indices number actual model invocations, in claim
        // order - the FaultPlan's batch key. All-expired groups never
        // reach the model and are not counted as batches.
        claimed.dispatch_index = dispatch_seq_++;
        ++stats_.batches;
        switch (group.reason) {
          case FlushReason::Full:
            ++stats_.flushed_full;
            break;
          case FlushReason::Timeout:
            ++stats_.flushed_timeout;
            break;
          case FlushReason::Drain:
            ++stats_.flushed_drain;
            break;
        }
    }
    return claimed;
}

void
ServingEngine::finishGroupLocked(const BatchGroup &group)
{
    for (std::uint64_t id : group.ids)
        outstanding_.erase(id);
    idle_cv_.notify_all(); // flush()/serveAll() waiters re-check
}

void
ServingEngine::watchdogLoop()
{
    std::unique_lock<std::mutex> wl(wd_mu_);
    for (;;) {
        if (wd_stop_)
            return;
        if (!wd_token_ || wd_fired_) {
            wd_cv_.wait(wl);
            continue;
        }
        const auto fire_at = wd_started_ + cfg_.watchdog_timeout;
        if (RequestBatcher::Clock::now() >= fire_at) {
            // The token lives on the invoking thread's stack, but
            // deregistration takes wd_mu_, so it cannot die while we
            // hold the lock.
            wd_token_->cancel();
            wd_fired_ = true;
            wl.unlock();
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.watchdog_fired;
            }
            wl.lock();
            continue;
        }
        wd_cv_.wait_until(wl, fire_at);
    }
}

} // namespace serve
} // namespace fabnet
