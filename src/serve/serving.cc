#include "serve/serving.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/workspace.h"

namespace fabnet {
namespace serve {

namespace {

/**
 * Process-wide registry of engine-installed workspace caps. With
 * overlapping engine lifetimes the tightest active cap wins (safe for
 * all of them - a tighter cap only trades reallocation for footprint),
 * and the pre-existing policy is restored only when the last engine
 * goes away.
 */
class WorkspaceCapRegistry
{
  public:
    void install(std::size_t cap)
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (caps_.empty())
            baseline_ = runtime::workspaceCapBytes();
        caps_.insert(cap);
        runtime::setWorkspaceCapBytes(*caps_.begin());
    }
    void remove(std::size_t cap)
    {
        std::lock_guard<std::mutex> lk(mu_);
        caps_.erase(caps_.find(cap));
        runtime::setWorkspaceCapBytes(caps_.empty() ? baseline_
                                                    : *caps_.begin());
    }

  private:
    std::mutex mu_;
    std::multiset<std::size_t> caps_;
    std::size_t baseline_ = 0;
};

WorkspaceCapRegistry g_cap_registry;

} // namespace

ServingEngine::ServingEngine(SequenceClassifier &model, ServingConfig cfg)
    : model_(model), cfg_(cfg),
      batcher_(cfg.max_batch, cfg.bucket_granularity,
               model.config().max_seq)
{
    if (cfg_.pad_token < 0 ||
        static_cast<std::size_t>(cfg_.pad_token) >= model_.config().vocab)
        throw std::invalid_argument(
            "ServingEngine: pad_token outside the model vocabulary");
    // With granularity 1 buckets are padding-free, so even layers
    // without a masked form serve deterministically.
    if (!model_.supportsMaskedBatch() && cfg_.bucket_granularity > 1 &&
        !cfg_.allow_unmasked_mixers)
        throw std::invalid_argument(
            "ServingEngine: model has blocks without a masked form "
            "(Fourier mixers) - served logits would depend on the "
            "padded length a request happens to be bucketed at. Use "
            "bucket_granularity == 1 (padding-free buckets), or set "
            "ServingConfig::allow_unmasked_mixers to serve anyway, "
            "forfeiting per-request determinism.");
    if (cfg_.workspace_cap_bytes != 0) {
        g_cap_registry.install(cfg_.workspace_cap_bytes);
        ws_cap_installed_ = true;
    }
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

ServingEngine::~ServingEngine()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        work_cv_.notify_all();
    }
    dispatcher_.join();
    // Unblock any flush() stuck across shutdown (user error, but do
    // not deadlock them).
    {
        std::lock_guard<std::mutex> lk(mu_);
        idle_cv_.notify_all();
    }
    if (ws_cap_installed_)
        g_cap_registry.remove(cfg_.workspace_cap_bytes);
}

std::future<std::vector<float>>
ServingEngine::enqueueLocked(std::vector<int> tokens)
{
    const std::uint64_t id = next_id_++;
    // Validates the length (throws before anything is queued).
    batcher_.push(id, tokens.size(), RequestBatcher::Clock::now());
    outstanding_.insert(id);
    Pending &p = pending_[id];
    p.tokens = std::move(tokens);
    std::future<std::vector<float>> fut = p.promise.get_future();
    ++stats_.requests;
    return fut;
}

std::future<std::vector<float>>
ServingEngine::submit(std::vector<int> tokens)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_)
        throw std::runtime_error("ServingEngine: already shut down");
    std::future<std::vector<float>> fut =
        enqueueLocked(std::move(tokens));
    work_cv_.notify_all();
    return fut;
}

std::vector<std::vector<float>>
ServingEngine::serveAll(const std::vector<std::vector<int>> &requests)
{
    std::vector<std::future<std::vector<float>>> futs;
    futs.reserve(requests.size());
    std::uint64_t watermark = 0;
    {
        // Bulk enqueue WITHOUT waking the dispatcher: the calling
        // thread is about to run the groups itself, so the handoff
        // would only add a wakeup and a context switch per batch.
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_)
            throw std::runtime_error("ServingEngine: already shut down");
        try {
            for (const auto &r : requests)
                futs.push_back(enqueueLocked(r));
        } catch (...) {
            // A bad request length mid-set: hand the already-enqueued
            // prefix to the dispatcher (as submit() would have) and
            // surface the error.
            work_cv_.notify_all();
            throw;
        }
        watermark = next_id_;
        // Same critical section as the enqueue: the dispatcher can
        // never observe the requests without also observing the
        // inline server, so it parks instead of stealing groups.
        ++inline_active_;
    }

    // Inline bulk dispatch: claim and run groups on this thread until
    // everything submitted above is served. Ready (full) buckets pop
    // with their normal flush reason first, then the leftovers drain -
    // the same grouping the dispatcher would produce.
    try {
        for (;;) {
            std::unique_lock<std::mutex> lk(mu_);
            const auto served_to_watermark = [this, watermark] {
                return outstanding_.empty() ||
                       *outstanding_.begin() >= watermark;
            };
            std::optional<BatchGroup> group =
                batcher_.popReady(RequestBatcher::Clock::now(),
                                  cfg_.max_wait);
            if (!group)
                group = batcher_.drainBelow(watermark);
            if (!group) {
                if (served_to_watermark())
                    break;
                // The rest is in flight on another server (a
                // concurrent serveAll, a flush-draining dispatcher);
                // wait like flush() does.
                idle_cv_.wait(lk, [&] {
                    return served_to_watermark() || stop_;
                });
                if (stop_)
                    break; // shutdown drain will fulfil the futures
                continue;
            }
            std::vector<Pending> reqs = claimGroupLocked(*group);
            ++stats_.inline_batches;
            lk.unlock(); // serve outside the lock, like the dispatcher
            runGroup(*group, std::move(reqs));
            lk.lock();
            finishGroupLocked(*group);
        }
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        --inline_active_;
        work_cv_.notify_all();
        throw;
    }
    {
        // Hand whatever post-watermark traffic accumulated back to
        // the dispatcher.
        std::lock_guard<std::mutex> lk(mu_);
        --inline_active_;
        work_cv_.notify_all();
    }

    std::vector<std::vector<float>> out;
    out.reserve(futs.size());
    for (auto &f : futs)
        out.push_back(f.get());
    return out;
}

void
ServingEngine::flush()
{
    std::unique_lock<std::mutex> lk(mu_);
    // Watermark: wait for the requests submitted before this call
    // only, so concurrent submitters cannot starve a flusher.
    const std::uint64_t watermark = next_id_;
    const auto served_to_watermark = [this, watermark] {
        return outstanding_.empty() ||
               *outstanding_.begin() >= watermark;
    };
    if (served_to_watermark())
        return;
    ++flush_waiters_;
    flush_watermark_ = std::max(flush_watermark_, watermark);
    work_cv_.notify_all();
    idle_cv_.wait(lk, [&] { return served_to_watermark() || stop_; });
    if (--flush_waiters_ == 0)
        flush_watermark_ = 0;
}

std::size_t
ServingEngine::bucketLen(std::size_t len) const
{
    return batcher_.bucketLen(len);
}

ServingStats
ServingEngine::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
ServingEngine::runGroup(const BatchGroup &group, std::vector<Pending> reqs)
{
    const std::size_t bsz = reqs.size();
    const std::size_t seq = group.padded_len;
    std::vector<int> tokens(bsz * seq, cfg_.pad_token);
    std::vector<std::size_t> lens(bsz);
    for (std::size_t i = 0; i < bsz; ++i) {
        lens[i] = reqs[i].tokens.size();
        std::copy(reqs[i].tokens.begin(), reqs[i].tokens.end(),
                  tokens.begin() + i * seq);
    }
    // Build every result before fulfilling any promise, so the catch
    // below never touches an already-satisfied promise (set_exception
    // on one throws future_error out of the dispatcher).
    std::vector<std::vector<float>> outs;
    try {
        // The model is single-user (layer caches); the dispatcher and
        // inline serveAll() callers serialise here.
        std::lock_guard<std::mutex> model_lock(model_mu_);
        const Tensor logits = model_.forwardBatch(tokens, bsz, seq, lens);
        const std::size_t classes = logits.dim(1);
        outs.reserve(bsz);
        for (std::size_t i = 0; i < bsz; ++i) {
            const float *row = logits.data() + i * classes;
            outs.emplace_back(row, row + classes);
        }
    } catch (...) {
        // A bad request (e.g. token id outside the vocab) fails its
        // whole batch; surface the error on every affected future
        // instead of killing the dispatcher. As above, count the
        // failures before the futures become ready.
        {
            std::lock_guard<std::mutex> guard(mu_);
            stats_.failed += bsz;
        }
        for (std::size_t i = 0; i < bsz; ++i)
            reqs[i].promise.set_exception(std::current_exception());
        return;
    }
    // Publish the batch's outcome counters BEFORE fulfilling any
    // promise: a client thread that wakes from future.get() and
    // immediately calls stats() must already see this batch counted
    // (tests/serving_test.cpp relies on it).
    {
        std::lock_guard<std::mutex> guard(mu_);
        stats_.completed += bsz;
        std::size_t real = 0, max_len = 0;
        for (const Pending &p : reqs) {
            real += p.tokens.size();
            max_len = std::max(max_len, p.tokens.size());
        }
        stats_.real_tokens += real;
        stats_.padded_tokens += bsz * seq;
        stats_.tight_tokens += bsz * max_len;
        // Padded rows this batch skipped end to end (forwardBatch
        // takes the ragged path exactly under these conditions).
        if (model_.raggedBatch() && model_.supportsMaskedBatch())
            stats_.rows_skipped += bsz * seq - real;
    }
    for (std::size_t i = 0; i < bsz; ++i)
        reqs[i].promise.set_value(std::move(outs[i]));
}

void
ServingEngine::dispatchLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        std::optional<BatchGroup> group;
        // While flushers wait, drain the buckets holding their
        // pre-watermark requests; post-watermark traffic keeps normal
        // full/timeout batching (and cannot starve the flusher, since
        // its buckets no longer compete for the drain).
        if (stop_)
            group = batcher_.drain();
        else if (inline_active_ > 0 && flush_waiters_ == 0) {
            // Inline serveAll() servers own the queue: parking here
            // avoids stealing their groups (and serialising on the
            // model mutex behind them). They notify work_cv_ on exit
            // for whatever traffic remains.
            work_cv_.wait(lk);
            continue;
        } else if (flush_waiters_ > 0)
            group = batcher_.drainBelow(flush_watermark_);
        if (!group)
            group = batcher_.popReady(RequestBatcher::Clock::now(),
                                      cfg_.max_wait);
        if (!group) {
            if (stop_)
                break; // queue drained
            auto oldest = batcher_.oldestEnqueue();
            if (oldest)
                work_cv_.wait_until(lk, *oldest + cfg_.max_wait);
            else
                work_cv_.wait(lk);
            continue;
        }

        std::vector<Pending> reqs = claimGroupLocked(*group);
        lk.unlock(); // serve outside the lock so submit() never blocks
        runGroup(*group, std::move(reqs)); // counts completed/failed
        lk.lock();
        finishGroupLocked(*group);
    }
}

std::vector<ServingEngine::Pending>
ServingEngine::claimGroupLocked(const BatchGroup &group)
{
    std::vector<Pending> reqs;
    reqs.reserve(group.ids.size());
    for (std::uint64_t id : group.ids) {
        auto it = pending_.find(id);
        reqs.push_back(std::move(it->second));
        pending_.erase(it);
    }
    ++stats_.batches;
    switch (group.reason) {
      case FlushReason::Full:
        ++stats_.flushed_full;
        break;
      case FlushReason::Timeout:
        ++stats_.flushed_timeout;
        break;
      case FlushReason::Drain:
        ++stats_.flushed_drain;
        break;
    }
    return reqs;
}

void
ServingEngine::finishGroupLocked(const BatchGroup &group)
{
    for (std::uint64_t id : group.ids)
        outstanding_.erase(id);
    idle_cv_.notify_all(); // flush()/serveAll() waiters re-check
}

} // namespace serve
} // namespace fabnet
