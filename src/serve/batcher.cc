#include "serve/batcher.h"

#include <stdexcept>

namespace fabnet {
namespace serve {

RequestBatcher::RequestBatcher(std::size_t max_batch,
                               std::size_t granularity,
                               std::size_t max_seq)
    : max_batch_(max_batch), granularity_(granularity), max_seq_(max_seq)
{
    if (max_batch_ == 0 || granularity_ == 0 || max_seq_ == 0)
        throw std::invalid_argument(
            "RequestBatcher: max_batch, granularity and max_seq must be "
            ">= 1");
}

std::size_t
RequestBatcher::bucketLen(std::size_t len) const
{
    if (len == 0)
        throw std::invalid_argument("RequestBatcher: empty request");
    if (len > max_seq_)
        throw std::invalid_argument(
            "RequestBatcher: request longer than max_seq");
    const std::size_t rounded =
        ((len + granularity_ - 1) / granularity_) * granularity_;
    return rounded < max_seq_ ? rounded : max_seq_;
}

void
RequestBatcher::push(std::uint64_t id, std::size_t len,
                     Clock::time_point now)
{
    buckets_[bucketLen(len)].push_back({id, now});
    ++pending_;
}

BatchGroup
RequestBatcher::popFrom(
    std::map<std::size_t, std::deque<Entry>>::iterator it,
    FlushReason reason)
{
    BatchGroup g;
    g.padded_len = it->first;
    g.reason = reason;
    std::deque<Entry> &q = it->second;
    const std::size_t take =
        q.size() < max_batch_ ? q.size() : max_batch_;
    g.ids.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        g.ids.push_back(q.front().id);
        q.pop_front();
    }
    pending_ -= take;
    if (q.empty())
        buckets_.erase(it);
    return g;
}

std::optional<BatchGroup>
RequestBatcher::popReady(Clock::time_point now, Clock::duration max_wait)
{
    // Full buckets first (the map iterates in ascending padded length,
    // which is the documented tie-break).
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it)
        if (it->second.size() >= max_batch_)
            return popFrom(it, FlushReason::Full);
    // Then timed-out buckets: oldest head wins, smallest length ties.
    auto best = buckets_.end();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
        if (now - it->second.front().enqueued < max_wait)
            continue;
        if (best == buckets_.end() ||
            it->second.front().enqueued < best->second.front().enqueued)
            best = it;
    }
    if (best != buckets_.end())
        return popFrom(best, FlushReason::Timeout);
    return std::nullopt;
}

std::optional<BatchGroup>
RequestBatcher::drain()
{
    if (buckets_.empty())
        return std::nullopt;
    return popFrom(buckets_.begin(), FlushReason::Drain);
}

std::optional<BatchGroup>
RequestBatcher::popContaining(std::uint64_t id)
{
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it)
        for (const Entry &e : it->second)
            if (e.id == id)
                return popFrom(it, FlushReason::Timeout);
    return std::nullopt;
}

std::optional<BatchGroup>
RequestBatcher::drainBelow(std::uint64_t id_watermark)
{
    // Ids are pushed in increasing order, so each bucket's head holds
    // its minimum id: head >= watermark means the whole bucket is
    // post-watermark traffic.
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it)
        if (it->second.front().id < id_watermark)
            return popFrom(it, FlushReason::Drain);
    return std::nullopt;
}

std::vector<std::uint64_t>
RequestBatcher::removeIf(const std::function<bool(std::uint64_t)> &pred)
{
    std::vector<std::uint64_t> removed;
    for (auto it = buckets_.begin(); it != buckets_.end();) {
        std::deque<Entry> &q = it->second;
        std::deque<Entry> kept;
        for (const Entry &e : q) {
            if (pred(e.id))
                removed.push_back(e.id);
            else
                kept.push_back(e);
        }
        pending_ -= q.size() - kept.size();
        q.swap(kept);
        if (q.empty())
            it = buckets_.erase(it);
        else
            ++it;
    }
    return removed;
}

std::optional<RequestBatcher::Clock::time_point>
RequestBatcher::oldestEnqueue() const
{
    std::optional<Clock::time_point> oldest;
    for (const auto &kv : buckets_) {
        const Clock::time_point head = kv.second.front().enqueued;
        if (!oldest || head < *oldest)
            oldest = head;
    }
    return oldest;
}

} // namespace serve
} // namespace fabnet
