/**
 * @file fault.h
 * Deterministic fault injection for the serving engine.
 *
 * Every failure path the reliability layer promises to handle -
 * admission rejection, a poisoned row failing inside a model
 * invocation, a slow batch outrunning request deadlines, a stuck
 * invocation the watchdog must cancel - is reachable on demand through
 * a FaultPlan, so the chaos suite (`ctest -L fault`,
 * tests/fault_injection_test.cpp) exercises them reproducibly instead
 * of relying on timing luck. A plan is keyed on two deterministic
 * sequences the engine maintains:
 *
 *  - the ADMISSION index: requests are numbered 0, 1, 2, ... in the
 *    order their enqueue attempt reaches the engine (submit() calls
 *    and serveAll() elements alike, counted whether or not the attempt
 *    is ultimately admitted);
 *  - the DISPATCH index: model batches are numbered 0, 1, 2, ... in
 *    the order groups are claimed for execution (dispatcher and inline
 *    serveAll() groups share the one counter).
 *
 * Both are single-threaded-deterministic: a test that submits from one
 * thread with flush-on-full/drain batching (long max_wait) sees the
 * exact grouping serving_test.cpp already pins down, so "request #3"
 * and "batch #1" name the same victims on every run.
 *
 * The plan is installed via ServingConfig::fault_plan (a non-owning
 * pointer; the plan must outlive the engine and is read-only while
 * serving). Production configs leave it null - every hook below is a
 * branch on a null pointer in that case.
 */
#ifndef FABNET_SERVE_FAULT_H
#define FABNET_SERVE_FAULT_H

#include <chrono>
#include <cstdint>
#include <map>
#include <set>

namespace fabnet {
namespace serve {

/** Deterministic fault/delay schedule for one ServingEngine. */
struct FaultPlan
{
    /** Where an injected per-request fault fires. */
    enum class Stage {
        /** The enqueue attempt throws Error{InvalidRequest} - models a
         *  request the validation layer rejects. Nothing is queued. */
        Admission,
        /** The request's model batch throws Error{ModelFault} while
         *  the model lock is held - models a poisoned row. The fault
         *  is STICKY: the per-row isolation retry of that request
         *  fails too, while its batchmates are re-served cleanly. */
        Model,
    };

    /** admission index -> stage at which that request fails. */
    std::map<std::uint64_t, Stage> request_faults;

    /** dispatch index -> extra latency injected into that batch's
     *  model invocation (after claiming, before the forward) - the
     *  deterministic way to make a batch outrun member deadlines. */
    std::map<std::size_t, std::chrono::microseconds> batch_delays;

    /** Dispatch indices whose model invocation STALLS: the injected
     *  body loops until the engine's cancellation token fires (the
     *  watchdog path) instead of computing - the deterministic "stuck
     *  model" the dispatcher watchdog must detect and fail. A safety
     *  bound (~10 s) unsticks the loop even with no watchdog armed so
     *  a misconfigured test cannot hang forever. */
    std::set<std::size_t> batch_stalls;

    bool requestFault(std::uint64_t admission_index, Stage stage) const
    {
        auto it = request_faults.find(admission_index);
        return it != request_faults.end() && it->second == stage;
    }

    /** Injected delay for a batch (zero when none scheduled). */
    std::chrono::microseconds batchDelay(std::size_t dispatch_index) const
    {
        auto it = batch_delays.find(dispatch_index);
        return it == batch_delays.end() ? std::chrono::microseconds{0}
                                        : it->second;
    }

    bool batchStalls(std::size_t dispatch_index) const
    {
        return batch_stalls.count(dispatch_index) != 0;
    }
};

} // namespace serve
} // namespace fabnet

#endif // FABNET_SERVE_FAULT_H
