/**
 * @file error.h
 * Typed error model for the serving front end.
 *
 * Every way a request can fail is a serve::Error with a machine-
 * readable ErrorCode plus a human-readable detail string, surfaced
 * either synchronously (submit/serveAll throw for conditions known at
 * admission) or through the request's future (set_exception for
 * conditions that only materialise later). Error derives from
 * std::runtime_error so pre-taxonomy catch sites keep working; new
 * code should switch on code() instead of parsing what().
 *
 * The taxonomy (docs/SERVING.md "Failure model" for full semantics):
 *  - InvalidRequest   the request itself is malformed (empty, longer
 *                     than max_seq) - thrown at admission, nothing is
 *                     queued.
 *  - DeadlineExceeded the request's Deadline passed: at admission
 *                     (already expired), in the queue (failed when its
 *                     group is claimed, BEFORE burning model time), or
 *                     mid-batch (the batch outran the deadline; the
 *                     computed logits are discarded because the caller
 *                     stopped caring).
 *  - QueueFull        bounded admission rejected the request (queue
 *                     depth or token cap, after any shed pass).
 *  - ShuttingDown     the engine is draining: new work is refused and
 *                     requests still queued when a shutdown deadline
 *                     expires are failed with this code.
 *  - ModelFault       the model invocation itself failed (bad token
 *                     id, injected fault, watchdog-cancelled stuck
 *                     invocation). With per-request fault isolation
 *                     only the poisoned rows carry this code; their
 *                     batchmates are re-served unharmed.
 */
#ifndef FABNET_SERVE_ERROR_H
#define FABNET_SERVE_ERROR_H

#include <stdexcept>
#include <string>

namespace fabnet {
namespace serve {

/** Machine-readable failure class of a serving request. */
enum class ErrorCode {
    InvalidRequest,   ///< malformed request; rejected at admission
    DeadlineExceeded, ///< deadline passed (admission, queued, or mid-batch)
    QueueFull,        ///< bounded admission rejected the request
    ShuttingDown,     ///< engine draining; request refused or abandoned
    ModelFault,       ///< model invocation failed for this request
};

/** Stable name for an ErrorCode ("InvalidRequest", ...). */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidRequest:
        return "InvalidRequest";
      case ErrorCode::DeadlineExceeded:
        return "DeadlineExceeded";
      case ErrorCode::QueueFull:
        return "QueueFull";
      case ErrorCode::ShuttingDown:
        return "ShuttingDown";
      case ErrorCode::ModelFault:
        return "ModelFault";
    }
    return "UnknownError";
}

/**
 * The serving failure type: code + detail. what() renders as
 * "[Code] detail" so logs stay readable without the taxonomy.
 */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, std::string detail)
        : std::runtime_error(std::string("[") + errorCodeName(code) +
                             "] " + detail),
          code_(code), detail_(std::move(detail))
    {
    }

    ErrorCode code() const noexcept { return code_; }
    const std::string &detail() const noexcept { return detail_; }

  private:
    ErrorCode code_;
    std::string detail_;
};

} // namespace serve
} // namespace fabnet

#endif // FABNET_SERVE_ERROR_H
