/**
 * @file batcher.h
 * Length-bucketed request batching policy, factored out of the
 * serving engine so it is pure and unit-testable without threads.
 *
 * Requests are grouped by *padded length*: the request length rounded
 * up to the next multiple of bucket_granularity (clamped to max_seq).
 * Batching only ever pairs requests that share a padded length, so a
 * batch wastes at most granularity-1 pad positions per row - the
 * software analogue of the paper's aim of keeping the butterfly/
 * attention datapath saturated instead of burning cycles on padding.
 *
 * A bucket becomes ready when it holds max_batch requests (full
 * flush) or when its oldest request has waited max_wait (timeout
 * flush); drain() empties everything regardless, for shutdown and
 * explicit ServingEngine::flush(). Within a bucket requests pop FIFO,
 * and when several buckets are ready the smallest padded length wins,
 * so grouping is deterministic given the submission order.
 */
#ifndef FABNET_SERVE_BATCHER_H
#define FABNET_SERVE_BATCHER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace fabnet {
namespace serve {

/** Why a bucket was flushed into a group. */
enum class FlushReason {
    Full,    ///< bucket reached max_batch
    Timeout, ///< oldest request waited max_wait
    Drain    ///< explicit flush / shutdown
};

/** Batch assembled by the policy: request ids sharing a padded length. */
struct BatchGroup
{
    std::size_t padded_len = 0;        ///< common padded sequence length
    std::vector<std::uint64_t> ids;    ///< FIFO within the bucket
    FlushReason reason = FlushReason::Full;
};

/** Pure length-bucketing policy; all time comes in as arguments. */
class RequestBatcher
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @param max_batch    flush threshold and maximum group size (>=1)
     * @param granularity  padded lengths are multiples of this (>=1)
     * @param max_seq      longest padded length accepted
     */
    RequestBatcher(std::size_t max_batch, std::size_t granularity,
                   std::size_t max_seq);

    /**
     * Padded length for a request of @p len tokens: rounded up to the
     * next multiple of the granularity, clamped to max_seq. Throws
     * std::invalid_argument when len is 0 or exceeds max_seq.
     */
    std::size_t bucketLen(std::size_t len) const;

    /** Enqueue a request (by id) of @p len tokens at time @p now. */
    void push(std::uint64_t id, std::size_t len, Clock::time_point now);

    /**
     * Pop the next ready group: a full bucket, or - once @p now has
     * passed some bucket head's enqueue time by @p max_wait - the
     * bucket with the oldest head. Smallest padded length breaks ties.
     * nullopt when nothing is ready.
     */
    std::optional<BatchGroup> popReady(Clock::time_point now,
                                       Clock::duration max_wait);

    /** Pop any non-empty bucket (smallest padded length first). */
    std::optional<BatchGroup> drain();

    /**
     * Pop the bucket holding request @p id (FIFO from the head, like a
     * timeout flush - @p id rides along with its bucket-mates, it is
     * not plucked out of order; when more than max_batch requests sit
     * ahead of it the group is the head max_batch and @p id stays
     * queued for the next pop). The urgent-flush hook: the dispatcher
     * uses it to serve a near-deadline request before the bucket's
     * normal max_wait timeout would fire (serve/serving.cc). nullopt
     * when @p id is not queued.
     */
    std::optional<BatchGroup> popContaining(std::uint64_t id);

    /**
     * Pop a bucket whose oldest request has id < @p id_watermark
     * (smallest padded length first). Lets a flusher drain only the
     * requests it is waiting for, so concurrent submitters neither
     * starve the flush nor get their fresh requests flushed in
     * degenerate batches. Requests pushed after the watermark ride
     * along when they share a qualifying bucket. nullopt when every
     * bucket head is at or past the watermark.
     */
    std::optional<BatchGroup> drainBelow(std::uint64_t id_watermark);

    /**
     * Earliest enqueue time over all queued requests - the dispatcher
     * sleeps until this + max_wait. nullopt when empty.
     */
    std::optional<Clock::time_point> oldestEnqueue() const;

    /**
     * Remove every queued request whose id satisfies @p pred and
     * return the removed ids in ascending padded-length, FIFO order.
     * The survivors keep their relative order and enqueue times (no
     * re-bucketing). This is the shed-policy hook: bounded admission
     * with ShedPolicy::DropExpiredFirst evicts expired requests here
     * to make room before rejecting new traffic (serve/serving.h).
     */
    std::vector<std::uint64_t>
    removeIf(const std::function<bool(std::uint64_t)> &pred);

    bool empty() const { return pending_ == 0; }
    std::size_t size() const { return pending_; }

  private:
    struct Entry
    {
        std::uint64_t id;
        Clock::time_point enqueued;
    };

    BatchGroup popFrom(std::map<std::size_t, std::deque<Entry>>::iterator it,
                       FlushReason reason);

    std::size_t max_batch_, granularity_, max_seq_;
    std::map<std::size_t, std::deque<Entry>> buckets_; ///< padded len -> FIFO
    std::size_t pending_ = 0;
};

} // namespace serve
} // namespace fabnet

#endif // FABNET_SERVE_BATCHER_H
