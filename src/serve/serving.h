/**
 * @file serving.h
 * Request-level batched serving front end over the parallel runtime.
 *
 * ServingEngine turns the kernel library into a traffic-serving
 * system: callers submit single token sequences and get a future for
 * that sequence's logits; behind the scenes requests are bucketed by
 * padded length (serve/batcher.h), grouped into batches of up to
 * max_batch, and dispatched through SequenceClassifier::forwardBatch -
 * one model invocation whose row count keeps the PR-1 thread pool
 * (runtime/parallel.h) saturated, amortising weight traffic across
 * requests exactly as the paper's accelerator amortises it across a
 * sequence. forwardBatch executes RAGGED for maskable models: a
 * nn::RowSet valid-row descriptor is built per batch and the padded
 * rows bucketing introduces are skipped in every row-wise layer
 * (ServingStats::rows_skipped counts them; logits unchanged bit for
 * bit - docs/ARCHITECTURE.md "Ragged batch execution").
 *
 * ## Threading model
 * A dispatcher thread serves submit() traffic, and serveAll() callers
 * run their own drain groups inline (inline bulk dispatch - no
 * per-batch handoff for the synchronous path); all model invocations
 * are serialised on an internal mutex because the layer caches make
 * concurrent forward calls on one model unsafe. Intra-batch
 * parallelism comes from the kernels' parallelFor, so the pool - not
 * the request count - sets the concurrency. submit() is safe from any
 * number of client threads. The engine must be the model's only user
 * while it is alive.
 *
 * ## Determinism
 * For attention-mixer models every served logits row is bitwise
 * identical to forward(request, 1, len) run serially, at any thread
 * count and under any batch composition: padded keys are masked out of
 * attention, padded rows out of the pooled head, and every kernel is
 * per-row order-preserving (see model/classifier.h::forwardBatch and
 * tests/serving_test.cpp).
 *
 * ## Workspace lifecycle
 * Long-lived serving threads would otherwise retain peak-size kernel
 * scratch forever; the engine installs ServingConfig::
 * workspace_cap_bytes as the runtime's workspace retention cap
 * (runtime/workspace.h) for its lifetime and restores the previous
 * policy on destruction.
 */
#ifndef FABNET_SERVE_SERVING_H
#define FABNET_SERVE_SERVING_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "model/classifier.h"
#include "serve/batcher.h"

namespace fabnet {
namespace serve {

/** Batching/flush policy knobs. */
struct ServingConfig
{
    /** Flush a bucket as soon as it holds this many requests. */
    std::size_t max_batch = 8;
    /** Padded lengths are multiples of this (1 = exact-length only). */
    std::size_t bucket_granularity = 16;
    /** Flush a non-full bucket once its oldest request waited this. */
    std::chrono::microseconds max_wait{1000};
    /** Token id used for padding (must be a valid vocab id). */
    int pad_token = 0;
    /**
     * Retention cap installed on the runtime's per-thread kernel
     * scratch while the engine lives (0 = leave the policy as-is).
     */
    std::size_t workspace_cap_bytes = 4u << 20;
    /**
     * Layers without a masked form (Fourier mixers: FNet / FABNet
     * FBfly blocks) produce served logits that depend on the padded
     * length a request is bucketed at. The constructor rejects such
     * models (queried via SequenceClassifier::supportsMaskedBatch)
     * unless buckets are padding-free (bucket_granularity == 1, where
     * determinism holds anyway) or this flag explicitly forfeits the
     * per-request determinism guarantee.
     */
    bool allow_unmasked_mixers = false;
};

/** Counters for observing the batching behaviour. */
struct ServingStats
{
    std::size_t requests = 0;        ///< accepted by submit()
    std::size_t completed = 0;       ///< futures fulfilled with logits
    std::size_t failed = 0;          ///< futures failed with an exception
    std::size_t batches = 0;         ///< model invocations
    std::size_t flushed_full = 0;    ///< batches from a full bucket
    std::size_t flushed_timeout = 0; ///< batches from max_wait expiry
    std::size_t flushed_drain = 0;   ///< batches from flush()/shutdown
    /** Batches run on a serveAll() caller's thread instead of the
     *  dispatcher (inline bulk dispatch). Subset of `batches`. */
    std::size_t inline_batches = 0;
    std::size_t real_tokens = 0;     ///< sum of request lengths served
    std::size_t padded_tokens = 0;   ///< sum of batch * padded_len
    /** Sum of batch * (longest member's length) per batch: the token
     *  count a max-length-padded (bucket-free) batch would hold. */
    std::size_t tight_tokens = 0;
    /** Padded activation rows ragged execution skipped (padded -
     *  real positions of batches served down the ragged path; 0 when
     *  the model is not maskable or ragged execution is disabled). */
    std::size_t rows_skipped = 0;

    /** Mean requests per model invocation (failed batches included). */
    double avgBatch() const
    {
        return batches
                   ? static_cast<double>(completed + failed) / batches
                   : 0.0;
    }
    /** Fraction of served positions that were padding, measured
     *  against the BUCKET length every row is padded to. */
    double padOverhead() const
    {
        return padded_tokens
                   ? 1.0 - static_cast<double>(real_tokens) / padded_tokens
                   : 0.0;
    }
    /** Padding fraction measured against the actual flushed batch
     *  composition (rows padded only to their batch's longest
     *  member): the irreducible mixed-length overhead, with the
     *  bucket-quantisation share removed. padOverhead() -
     *  padOverheadBatch() is the share bucket granularity adds. */
    double padOverheadBatch() const
    {
        return tight_tokens
                   ? 1.0 - static_cast<double>(real_tokens) / tight_tokens
                   : 0.0;
    }
};

/** Batched request-level front end over a SequenceClassifier. */
class ServingEngine
{
  public:
    explicit ServingEngine(SequenceClassifier &model,
                           ServingConfig cfg = {});
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Enqueue one sequence; the future resolves to its logits (length
     * = model classes, padding already stripped). Throws
     * std::invalid_argument for empty or over-long sequences and
     * std::runtime_error after shutdown began.
     */
    std::future<std::vector<float>> submit(std::vector<int> tokens);

    /**
     * Serve a whole request set synchronously through the batching
     * path and return the logits in request order.
     *
     * Inline bulk dispatch: the calling thread enqueues everything in
     * one critical section (without waking the dispatcher), then
     * claims and runs the ready/drain groups itself - the same
     * grouping, model invocation and stats accounting as the
     * dispatcher path, minus the per-batch handoff and context
     * switch that dominated the synchronous path on 1-core boxes
     * (ServingStats::inline_batches counts these). Any group a
     * concurrently-awake dispatcher claims first is simply waited
     * for; logits are identical either way. Safe from multiple
     * threads: model invocations are serialised internally.
     */
    std::vector<std::vector<float>>
    serveAll(const std::vector<std::vector<int>> &requests);

    /**
     * Block until every request submitted before this call has been
     * served (fulfilled or failed). Requests submitted concurrently by
     * other threads may or may not be included.
     */
    void flush();

    /** Padded length a request of @p len tokens would be served at. */
    std::size_t bucketLen(std::size_t len) const;

    ServingStats stats() const;

  private:
    struct Pending
    {
        std::vector<int> tokens;
        std::promise<std::vector<float>> promise;
    };

    void dispatchLoop();
    /**
     * Serve one assembled group: counts completed/failed (and token
     * stats) under the lock BEFORE fulfilling the futures, so stats()
     * read after a future resolves always includes the batch. The
     * model invocation itself is serialised on model_mu_ (the layer
     * caches make the model single-user), so the dispatcher and
     * inline serveAll() callers can both run groups.
     */
    void runGroup(const BatchGroup &group, std::vector<Pending> reqs);

    /** Enqueue one request (mu_ held); returns its logits future. */
    std::future<std::vector<float>> enqueueLocked(std::vector<int> tokens);
    /** Take a group's pending requests + count the batch (mu_ held). */
    std::vector<Pending> claimGroupLocked(const BatchGroup &group);
    /** Post-runGroup bookkeeping: outstanding_ and waiters (mu_ held). */
    void finishGroupLocked(const BatchGroup &group);

    SequenceClassifier &model_;
    std::mutex model_mu_; ///< serialises forwardBatch invocations
    ServingConfig cfg_;
    bool ws_cap_installed_ = false;

    mutable std::mutex mu_;
    std::condition_variable work_cv_; ///< wakes the dispatcher
    std::condition_variable idle_cv_; ///< wakes flush() waiters
    RequestBatcher batcher_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::set<std::uint64_t> outstanding_; ///< submitted, not yet served
    std::uint64_t next_id_ = 0;
    bool stop_ = false;
    /**
     * Number of serveAll() calls currently draining inline. While
     * positive (and no flush() is waiting) the dispatcher parks
     * instead of competing for groups: the inline callers pop ready
     * and drain groups themselves, and wake the dispatcher on exit
     * for whatever traffic remains.
     */
    int inline_active_ = 0;
    int flush_waiters_ = 0;
    std::uint64_t flush_watermark_ = 0; ///< max watermark of waiters
    ServingStats stats_;

    std::thread dispatcher_; ///< last member: starts fully-initialised
};

} // namespace serve
} // namespace fabnet

#endif // FABNET_SERVE_SERVING_H
