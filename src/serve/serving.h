/**
 * @file serving.h
 * Request-level batched serving front end over the parallel runtime.
 *
 * ServingEngine turns the kernel library into a traffic-serving
 * system: callers submit single token sequences and get a future for
 * that sequence's logits; behind the scenes requests are bucketed by
 * padded length (serve/batcher.h), grouped into batches of up to
 * max_batch, and dispatched through SequenceClassifier::forwardBatch -
 * one model invocation whose row count keeps the PR-1 thread pool
 * (runtime/parallel.h) saturated, amortising weight traffic across
 * requests exactly as the paper's accelerator amortises it across a
 * sequence.
 *
 * ## Threading model
 * One dispatcher thread owns the model (the layer caches make
 * concurrent forward calls on one model unsafe); intra-batch
 * parallelism comes from the kernels' parallelFor, so the pool - not
 * the request count - sets the concurrency. submit() is safe from any
 * number of client threads. The engine must be the model's only user
 * while it is alive.
 *
 * ## Determinism
 * For attention-mixer models every served logits row is bitwise
 * identical to forward(request, 1, len) run serially, at any thread
 * count and under any batch composition: padded keys are masked out of
 * attention, padded rows out of the pooled head, and every kernel is
 * per-row order-preserving (see model/classifier.h::forwardBatch and
 * tests/serving_test.cpp).
 *
 * ## Workspace lifecycle
 * Long-lived serving threads would otherwise retain peak-size kernel
 * scratch forever; the engine installs ServingConfig::
 * workspace_cap_bytes as the runtime's workspace retention cap
 * (runtime/workspace.h) for its lifetime and restores the previous
 * policy on destruction.
 */
#ifndef FABNET_SERVE_SERVING_H
#define FABNET_SERVE_SERVING_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "model/classifier.h"
#include "serve/batcher.h"

namespace fabnet {
namespace serve {

/** Batching/flush policy knobs. */
struct ServingConfig
{
    /** Flush a bucket as soon as it holds this many requests. */
    std::size_t max_batch = 8;
    /** Padded lengths are multiples of this (1 = exact-length only). */
    std::size_t bucket_granularity = 16;
    /** Flush a non-full bucket once its oldest request waited this. */
    std::chrono::microseconds max_wait{1000};
    /** Token id used for padding (must be a valid vocab id). */
    int pad_token = 0;
    /**
     * Retention cap installed on the runtime's per-thread kernel
     * scratch while the engine lives (0 = leave the policy as-is).
     */
    std::size_t workspace_cap_bytes = 4u << 20;
    /**
     * Layers without a masked form (Fourier mixers: FNet / FABNet
     * FBfly blocks) produce served logits that depend on the padded
     * length a request is bucketed at. The constructor rejects such
     * models (queried via SequenceClassifier::supportsMaskedBatch)
     * unless buckets are padding-free (bucket_granularity == 1, where
     * determinism holds anyway) or this flag explicitly forfeits the
     * per-request determinism guarantee.
     */
    bool allow_unmasked_mixers = false;
};

/** Counters for observing the batching behaviour. */
struct ServingStats
{
    std::size_t requests = 0;        ///< accepted by submit()
    std::size_t completed = 0;       ///< futures fulfilled with logits
    std::size_t failed = 0;          ///< futures failed with an exception
    std::size_t batches = 0;         ///< model invocations
    std::size_t flushed_full = 0;    ///< batches from a full bucket
    std::size_t flushed_timeout = 0; ///< batches from max_wait expiry
    std::size_t flushed_drain = 0;   ///< batches from flush()/shutdown
    std::size_t real_tokens = 0;     ///< sum of request lengths served
    std::size_t padded_tokens = 0;   ///< sum of batch * padded_len

    /** Mean requests per model invocation (failed batches included). */
    double avgBatch() const
    {
        return batches
                   ? static_cast<double>(completed + failed) / batches
                   : 0.0;
    }
    /** Fraction of served positions that were padding. */
    double padOverhead() const
    {
        return padded_tokens
                   ? 1.0 - static_cast<double>(real_tokens) / padded_tokens
                   : 0.0;
    }
};

/** Batched request-level front end over a SequenceClassifier. */
class ServingEngine
{
  public:
    explicit ServingEngine(SequenceClassifier &model,
                           ServingConfig cfg = {});
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Enqueue one sequence; the future resolves to its logits (length
     * = model classes, padding already stripped). Throws
     * std::invalid_argument for empty or over-long sequences and
     * std::runtime_error after shutdown began.
     */
    std::future<std::vector<float>> submit(std::vector<int> tokens);

    /**
     * Serve a whole request set synchronously through the batching
     * path: submits everything, flushes, and returns the logits in
     * request order.
     */
    std::vector<std::vector<float>>
    serveAll(const std::vector<std::vector<int>> &requests);

    /**
     * Block until every request submitted before this call has been
     * served (fulfilled or failed). Requests submitted concurrently by
     * other threads may or may not be included.
     */
    void flush();

    /** Padded length a request of @p len tokens would be served at. */
    std::size_t bucketLen(std::size_t len) const;

    ServingStats stats() const;

  private:
    struct Pending
    {
        std::vector<int> tokens;
        std::promise<std::vector<float>> promise;
    };

    void dispatchLoop();
    /**
     * Serve one assembled group: counts completed/failed (and token
     * stats) under the lock BEFORE fulfilling the futures, so stats()
     * read after a future resolves always includes the batch.
     */
    void runGroup(const BatchGroup &group, std::vector<Pending> reqs);

    SequenceClassifier &model_;
    ServingConfig cfg_;
    bool ws_cap_installed_ = false;

    mutable std::mutex mu_;
    std::condition_variable work_cv_; ///< wakes the dispatcher
    std::condition_variable idle_cv_; ///< wakes flush() waiters
    RequestBatcher batcher_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::set<std::uint64_t> outstanding_; ///< submitted, not yet served
    std::uint64_t next_id_ = 0;
    bool stop_ = false;
    int flush_waiters_ = 0;
    std::uint64_t flush_watermark_ = 0; ///< max watermark of waiters
    ServingStats stats_;

    std::thread dispatcher_; ///< last member: starts fully-initialised
};

} // namespace serve
} // namespace fabnet

#endif // FABNET_SERVE_SERVING_H
