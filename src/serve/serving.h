/**
 * @file serving.h
 * Request-level batched serving front end over the parallel runtime.
 *
 * ServingEngine turns the kernel library into a traffic-serving
 * system: callers submit single token sequences and get a future for
 * that sequence's logits; behind the scenes requests are bucketed by
 * padded length (serve/batcher.h), grouped into batches of up to
 * max_batch, and dispatched through SequenceClassifier::forwardBatch -
 * one model invocation whose row count keeps the PR-1 thread pool
 * (runtime/parallel.h) saturated, amortising weight traffic across
 * requests exactly as the paper's accelerator amortises it across a
 * sequence. forwardBatch executes RAGGED for maskable models: a
 * nn::RowSet valid-row descriptor is built per batch and the padded
 * rows bucketing introduces are skipped in every row-wise layer
 * (ServingStats::rows_skipped counts them; logits unchanged bit for
 * bit - docs/ARCHITECTURE.md "Ragged batch execution").
 *
 * ## Failure model (docs/SERVING.md "Failure model")
 * Every failure is a typed serve::Error (serve/error.h): admission
 * problems throw synchronously, later failures arrive through the
 * future. Requests may carry a Deadline; expired requests are failed
 * BEFORE they reach the model (at admission or when their group is
 * claimed) and results computed past a deadline are discarded with
 * DeadlineExceeded. Admission is bounded (queue depth and token caps)
 * with a configurable shed policy; a model fault poisons only its own
 * row - the group takes one bounded per-row isolation pass and the
 * surviving rows are re-served bitwise identically (the engine's
 * per-row determinism guarantee makes a 1-row re-run exact). A
 * watchdog cancels stuck model invocations (cooperative cancellation
 * between parallelFor grain chunks and encoder blocks), and
 * shutdown(Deadline) drains in-flight work then fails the remainder
 * with ShuttingDown. serve/fault.h injects every one of these paths
 * deterministically (`ctest -L fault`).
 *
 * ## Threading model
 * A dispatcher thread serves submit() traffic, and serveAll() callers
 * run their own drain groups inline (inline bulk dispatch - no
 * per-batch handoff for the synchronous path); all model invocations
 * are serialised on an internal mutex because the layer caches make
 * concurrent forward calls on one model unsafe. Intra-batch
 * parallelism comes from the kernels' parallelFor, so the pool - not
 * the request count - sets the concurrency. submit() is safe from any
 * number of client threads. The engine must be the model's only user
 * while it is alive.
 *
 * ## Determinism
 * For attention-mixer models every served logits row is bitwise
 * identical to forward(request, 1, len) run serially, at any thread
 * count and under any batch composition: padded keys are masked out of
 * attention, padded rows out of the pooled head, and every kernel is
 * per-row order-preserving (see model/classifier.h::forwardBatch and
 * tests/serving_test.cpp). Fault isolation preserves this: rows
 * re-served by the isolation pass run as 1-row batches, which the same
 * guarantee makes bitwise equal to their batched result.
 *
 * ## Workspace lifecycle
 * Long-lived serving threads would otherwise retain peak-size kernel
 * scratch forever; the engine installs ServingConfig::
 * workspace_cap_bytes as the runtime's workspace retention cap
 * (runtime/workspace.h) for its lifetime and restores the previous
 * policy on destruction.
 */
#ifndef FABNET_SERVE_SERVING_H
#define FABNET_SERVE_SERVING_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/classifier.h"
#include "runtime/parallel.h"
#include "serve/batcher.h"
#include "serve/error.h"
#include "serve/fault.h"

namespace fabnet {
namespace serve {

namespace detail {
/**
 * Process-wide engine-shared workspace-cap registry (serving.cc): the
 * tightest active cap wins, and the pre-existing policy is restored
 * when the last engine removes its cap. Used by every serve-side
 * engine (ServingEngine, GenerationEngine).
 */
void installWorkspaceCap(std::size_t cap);
void removeWorkspaceCap(std::size_t cap);

/**
 * RAII lease on the cap registry. Engines hold one as a data member
 * declared BEFORE their worker-thread members: if anything later in
 * construction throws (std::thread can raise std::system_error), the
 * already-constructed lease member is destroyed and the cap comes back
 * out of the registry - the engine destructor never runs for a
 * partially constructed object, so a plain install-in-ctor /
 * remove-in-dtor pair would leak the process-wide cap on exactly that
 * path. A zero cap is a no-op lease.
 */
class WorkspaceCapLease
{
  public:
    WorkspaceCapLease() = default;
    explicit WorkspaceCapLease(std::size_t cap) : cap_(cap)
    {
        if (cap_ != 0)
            installWorkspaceCap(cap_);
    }
    WorkspaceCapLease(WorkspaceCapLease &&o) noexcept : cap_(o.cap_)
    {
        o.cap_ = 0;
    }
    WorkspaceCapLease &operator=(WorkspaceCapLease &&o) noexcept
    {
        if (this != &o) {
            release();
            cap_ = o.cap_;
            o.cap_ = 0;
        }
        return *this;
    }
    WorkspaceCapLease(const WorkspaceCapLease &) = delete;
    WorkspaceCapLease &operator=(const WorkspaceCapLease &) = delete;
    ~WorkspaceCapLease() { release(); }

  private:
    void release()
    {
        if (cap_ != 0) {
            removeWorkspaceCap(cap_);
            cap_ = 0;
        }
    }
    std::size_t cap_ = 0;
};
} // namespace detail

/**
 * Absolute per-request deadline on the batcher's steady clock.
 * kNoDeadline (the default everywhere) disables deadline handling for
 * that request entirely.
 */
using Deadline = RequestBatcher::Clock::time_point;

/** "No deadline": requests carrying this value never expire. */
inline constexpr Deadline kNoDeadline = Deadline::max();

/**
 * Deadline @p d from now (submit(tokens, deadlineAfter(50ms))).
 *
 * Saturating: `now + d` is evaluated in a wide floating representation
 * of the clock's period, so a huge duration (hours(1 << 20),
 * microseconds::max(), duration::max() of any unit) can never overflow
 * the steady_clock rep into a long-PAST deadline that expires every
 * request instantly. Anything that would land at or beyond
 * kNoDeadline saturates TO kNoDeadline - "further out than the clock
 * can represent" and "no deadline" are operationally identical.
 * Negative durations symmetrically saturate to the clock's minimum
 * (an already-expired deadline, as expected).
 */
template <class Rep, class Period>
inline Deadline
deadlineAfter(std::chrono::duration<Rep, Period> d)
{
    using ClockDur = RequestBatcher::Clock::duration;
    using Wide = std::chrono::duration<long double, ClockDur::period>;
    const Deadline now = RequestBatcher::Clock::now();
    // All three values in units of the clock period, as long double
    // (80/128-bit: exact for any rep the comparison needs to rank).
    const long double now_ticks =
        static_cast<long double>(now.time_since_epoch().count());
    const long double want_ticks =
        std::chrono::duration_cast<Wide>(d).count();
    const long double max_ticks = static_cast<long double>(
        kNoDeadline.time_since_epoch().count());
    const long double min_ticks = static_cast<long double>(
        Deadline::min().time_since_epoch().count());
    if (want_ticks >= max_ticks - now_ticks)
        return kNoDeadline;
    if (want_ticks <= min_ticks - now_ticks)
        return Deadline::min();
    return now + std::chrono::duration_cast<ClockDur>(d);
}

/** What bounded admission does when the queue caps are hit. */
enum class ShedPolicy {
    /** Reject the NEW request with Error{QueueFull}. Queued requests
     *  are never touched - strict FIFO fairness. */
    RejectNew,
    /** First shed queued requests whose deadline has already expired
     *  (they are failed with Error{DeadlineExceeded} - they could
     *  never be served in time anyway), then admit if that made room,
     *  else reject with Error{QueueFull}. Under overload this spends
     *  the queue on requests that can still meet their deadline. */
    DropExpiredFirst,
};

/** Batching/flush/robustness policy knobs. */
struct ServingConfig
{
    /** Flush a bucket as soon as it holds this many requests. */
    std::size_t max_batch = 8;
    /** Padded lengths are multiples of this (1 = exact-length only). */
    std::size_t bucket_granularity = 16;
    /** Flush a non-full bucket once its oldest request waited this. */
    std::chrono::microseconds max_wait{1000};
    /** Token id used for padding (must be a valid vocab id). */
    int pad_token = 0;
    /**
     * Retention cap installed on the runtime's per-thread kernel
     * scratch while the engine lives (0 = leave the policy as-is).
     */
    std::size_t workspace_cap_bytes = 4u << 20;
    /**
     * Layers without a masked form (Fourier mixers: FNet / FABNet
     * FBfly blocks) produce served logits that depend on the padded
     * length a request is bucketed at. The constructor rejects such
     * models (queried via SequenceClassifier::supportsMaskedBatch)
     * unless buckets are padding-free (bucket_granularity == 1, where
     * determinism holds anyway) or this flag explicitly forfeits the
     * per-request determinism guarantee.
     */
    bool allow_unmasked_mixers = false;

    // ------------------------------------------- bounded admission
    /**
     * Maximum queued (admitted, not yet claimed) requests submit()
     * will accept; 0 = unbounded. Over the cap the shed policy runs,
     * then Error{QueueFull} is thrown. serveAll() is exempt: it is
     * synchronous and self-draining, so the caller IS the
     * backpressure.
     */
    std::size_t max_queue_requests = 0;
    /**
     * Cap on the total queued request tokens (the byte-proportional
     * bound: admitting a request that would push the queued token sum
     * over this cap triggers the shed policy / QueueFull). 0 =
     * unbounded. Must exceed max_seq to be satisfiable.
     */
    std::size_t max_queue_tokens = 0;
    /** What to do when a cap is hit. */
    ShedPolicy shed_policy = ShedPolicy::RejectNew;

    // ------------------------------------------------- reliability
    /**
     * Watchdog: a model invocation still running after this long is
     * cancelled (cooperatively, between parallelFor grain chunks /
     * encoder blocks) and its group failed with Error{ModelFault}
     * instead of hanging every affected future. 0 disables the
     * watchdog (no extra thread is started). The timeout must
     * comfortably exceed the worst honest batch latency.
     */
    std::chrono::microseconds watchdog_timeout{0};
    /**
     * Deterministic fault-injection schedule (tests only; see
     * serve/fault.h). Non-owning - must outlive the engine. Null in
     * production: every hook is then a branch on a null pointer.
     */
    const FaultPlan *fault_plan = nullptr;
};

/** Counters for observing the batching + shedding behaviour. */
struct ServingStats
{
    // -------------------------------------------- runtime identity
    /** Kernel variant the runtime dispatcher selected at startup
     *  (runtime::isa()): "scalar", "avx2", "avx512", "avx512vnni". */
    std::string isa;
    /** CPU brand + feature signature (runtime::cpuSignature()); keys
     *  the autotuner's on-disk plan cache. */
    std::string cpu_signature;
    /** Autotuner state snapshot (runtime::tuningReport()): JSON with
     *  every tuned (shape, threads) -> (tile, grain) entry. */
    std::string tuning;

    std::size_t requests = 0;        ///< admitted by submit()/serveAll()
    std::size_t completed = 0;       ///< futures fulfilled with logits
    std::size_t failed = 0;          ///< futures failed with an error
    std::size_t batches = 0;         ///< groups dispatched to the model
    std::size_t flushed_full = 0;    ///< batches from a full bucket
    std::size_t flushed_timeout = 0; ///< batches from max_wait expiry
    std::size_t flushed_drain = 0;   ///< batches from flush()/shutdown
    /** Batches run on a serveAll() caller's thread instead of the
     *  dispatcher (inline bulk dispatch). Subset of `batches`. */
    std::size_t inline_batches = 0;
    std::size_t real_tokens = 0;     ///< sum of request lengths served
    std::size_t padded_tokens = 0;   ///< sum of batch * padded_len
    /** Sum of batch * (longest member's length) per batch: the token
     *  count a max-length-padded (bucket-free) batch would hold. */
    std::size_t tight_tokens = 0;
    /** Padded activation rows ragged execution skipped (padded -
     *  real positions of batches served down the ragged path; 0 when
     *  the model is not maskable or ragged execution is disabled). */
    std::size_t rows_skipped = 0;

    // ------------------------------------ backpressure / reliability
    /** submit() attempts rejected with Error{QueueFull} (these never
     *  count in `requests`). */
    std::size_t rejected = 0;
    /** Queued requests evicted by ShedPolicy::DropExpiredFirst to
     *  make room (failed with DeadlineExceeded; subset of `failed`,
     *  disjoint from expired_in_queue). */
    std::size_t shed = 0;
    /** Requests failed with DeadlineExceeded BEFORE any model time
     *  was spent on them: already expired at submit, or expired by
     *  the time their group was claimed. */
    std::size_t expired_in_queue = 0;
    /** Requests whose deadline passed while their batch was executing
     *  (the computed logits are discarded). */
    std::size_t expired_mid_batch = 0;
    /** Rows failed with Error{ModelFault} (poisoned rows, watchdog-
     *  cancelled invocations). */
    std::size_t model_faults = 0;
    /** Groups whose first invocation failed and took the bounded
     *  per-row isolation pass (each row re-run exactly once). */
    std::size_t isolation_retries = 0;
    /** Times the watchdog cancelled a stuck model invocation. */
    std::size_t watchdog_fired = 0;
    /** Batches flushed early because a queued member's deadline would
     *  have expired inside the normal max_wait window (the dispatcher
     *  re-arms its wait on every arrival, so a near-deadline request
     *  is served instead of sleeping out the full flush timeout).
     *  Subset of `flushed_timeout`. */
    std::size_t urgent_flushes = 0;

    /** Mean requests per model invocation (failed batches included). */
    double avgBatch() const
    {
        return batches
                   ? static_cast<double>(completed + failed) / batches
                   : 0.0;
    }
    /** Fraction of served positions that were padding, measured
     *  against the BUCKET length every row is padded to. */
    double padOverhead() const
    {
        return padded_tokens
                   ? 1.0 - static_cast<double>(real_tokens) / padded_tokens
                   : 0.0;
    }
    /** Padding fraction measured against the actual flushed batch
     *  composition (rows padded only to their batch's longest
     *  member): the irreducible mixed-length overhead, with the
     *  bucket-quantisation share removed. padOverhead() -
     *  padOverheadBatch() is the share bucket granularity adds. */
    double padOverheadBatch() const
    {
        return tight_tokens
                   ? 1.0 - static_cast<double>(real_tokens) / tight_tokens
                   : 0.0;
    }
};

/** Batched request-level front end over a SequenceClassifier. */
class ServingEngine
{
  public:
    explicit ServingEngine(SequenceClassifier &model,
                           ServingConfig cfg = {});
    ~ServingEngine();

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Enqueue one sequence; the future resolves to its logits (length
     * = model classes, padding already stripped) or fails with a
     * serve::Error. Admission-time conditions throw synchronously:
     * Error{InvalidRequest} for empty/over-long sequences,
     * Error{QueueFull} when bounded admission rejects (after the shed
     * policy ran), Error{DeadlineExceeded} when @p deadline already
     * passed, Error{ShuttingDown} once shutdown began. Later failures
     * (DeadlineExceeded in queue or mid-batch, ModelFault,
     * ShuttingDown at a shutdown deadline) arrive through the future.
     */
    std::future<std::vector<float>> submit(std::vector<int> tokens,
                                           Deadline deadline);
    std::future<std::vector<float>> submit(std::vector<int> tokens)
    {
        return submit(std::move(tokens), kNoDeadline);
    }

    /**
     * Serve a whole request set synchronously through the batching
     * path and return the logits in request order.
     *
     * Inline bulk dispatch: the calling thread enqueues everything in
     * one critical section (without waking the dispatcher), then
     * claims and runs the ready/drain groups itself - the same
     * grouping, model invocation and stats accounting as the
     * dispatcher path, minus the per-batch handoff and context
     * switch that dominated the synchronous path on 1-core boxes
     * (ServingStats::inline_batches counts these). Any group a
     * concurrently-awake dispatcher claims first is simply waited
     * for; logits are identical either way. Safe from multiple
     * threads: model invocations are serialised internally.
     *
     * Admission is ALL-OR-NOTHING: the whole set is validated before
     * anything is enqueued, so a malformed request throws
     * Error{InvalidRequest} (naming the offending index) with no
     * partial set left behind; if an enqueue still fails mid-set
     * (e.g. an injected admission fault) the already-admitted prefix
     * is unwound and failed rather than drained silently. serveAll is
     * exempt from the admission caps (synchronous callers are their
     * own backpressure) and its requests carry no deadline. If any
     * request of the set fails (e.g. ModelFault on its row), the
     * first failure in request order is rethrown here.
     */
    std::vector<std::vector<float>>
    serveAll(const std::vector<std::vector<int>> &requests);

    /**
     * Block until every request submitted before this call has been
     * resolved (fulfilled or failed). Requests submitted concurrently
     * by other threads may or may not be included. A flush() in
     * flight when shutdown() begins has a defined result: shutdown's
     * drain resolves every outstanding future (served, or failed with
     * ShuttingDown at a shutdown deadline), so the flush returns
     * normally once its watermark is resolved - it is never left
     * blocked and never observes an unresolved future afterwards.
     */
    void flush();

    /**
     * Graceful drain: stop admitting (submit()/serveAll() throw
     * Error{ShuttingDown} from now on), serve everything already
     * admitted, and return once every outstanding future is resolved.
     * If @p deadline passes first, the remaining QUEUED requests are
     * failed with Error{ShuttingDown}, the in-flight model invocation
     * (if any) is cooperatively cancelled (its rows fail with
     * ShuttingDown), and shutdown returns once everything is
     * resolved. Idempotent and safe from multiple threads; the
     * destructor calls shutdown() (full drain) if it has not been
     * called. After shutdown the engine stays queryable (stats(),
     * bucketLen()) until destruction.
     */
    void shutdown(Deadline deadline = kNoDeadline);

    /** Padded length a request of @p len tokens would be served at. */
    std::size_t bucketLen(std::size_t len) const;

    ServingStats stats() const;

  private:
    struct Pending
    {
        std::vector<int> tokens;
        Deadline deadline = kNoDeadline;
        /** Admission-order index (FaultPlan keying; serve/fault.h). */
        std::uint64_t admission_index = 0;
        std::promise<std::vector<float>> promise;
    };

    /** A claimed group's unexpired members + its dispatch index. */
    struct ClaimedGroup
    {
        std::vector<Pending> reqs;
        std::size_t dispatch_index = 0;
    };

    /** Registers the in-flight invocation with the watchdog (RAII). */
    struct WatchdogArm;

    void dispatchLoop();
    void watchdogLoop();

    /**
     * Serve one claimed group: counts completed/failed (and token
     * stats) under the lock BEFORE fulfilling the futures, so stats()
     * read after a future resolves always includes the batch. On a
     * model fault the group takes one per-row isolation pass; on
     * cancellation (watchdog / shutdown deadline) it fails whole.
     */
    void runGroup(const BatchGroup &group, ClaimedGroup claimed);

    /**
     * One model invocation under the model mutex, armed with the
     * watchdog + cancellation scope and the fault-injection hooks
     * (stall, injected row fault). Throws runtime::Cancelled when the
     * watchdog or a shutdown deadline fires mid-invocation.
     */
    Tensor invokeModel(const std::vector<int> &tokens, std::size_t bsz,
                       std::size_t seq,
                       const std::vector<std::size_t> &lens, bool stall,
                       const std::string *injected_fault);

    /** Bounded per-row retry after a group's invocation failed: each
     *  surviving row is re-run exactly once as a 1-row batch (bitwise
     *  equal to its batched result by the engine's determinism
     *  guarantee); the poisoned rows alone fail with ModelFault. */
    void isolateRows(std::vector<Pending> reqs);

    /** The Error a cancelled invocation maps to (ShuttingDown when a
     *  shutdown deadline triggered the cancel, else watchdog
     *  ModelFault). */
    Error cancelCause() const;

    /** Fail every member of @p reqs with @p err (stats under mu_
     *  first, then the futures). */
    void failGroup(std::vector<Pending> &reqs, const Error &err);

    /** Enqueue one request (mu_ held); returns its logits future.
     *  @p enforce_bounds applies the admission caps (submit path). */
    std::future<std::vector<float>>
    enqueueLocked(std::vector<int> tokens, Deadline deadline,
                  bool enforce_bounds);
    /** DropExpiredFirst shed pass (mu_ held): fail + evict expired
     *  queued requests. */
    void shedExpiredLocked(RequestBatcher::Clock::time_point now);
    /** Drop @p id's deadlines_ entry, if it has one (mu_ held). */
    void eraseDeadlineLocked(Deadline deadline, std::uint64_t id);
    /** Take a group's pending requests, failing expired members, and
     *  count the batch (mu_ held). */
    ClaimedGroup claimGroupLocked(const BatchGroup &group);
    /** Post-runGroup bookkeeping: outstanding_ and waiters (mu_ held). */
    void finishGroupLocked(const BatchGroup &group);
    /** Fail every still-queued request with ShuttingDown (mu_ held;
     *  the shutdown-deadline abandon path). */
    void failQueuedLocked();

    SequenceClassifier &model_;
    std::mutex model_mu_; ///< serialises forwardBatch invocations
    ServingConfig cfg_;
    /** Declared before the thread members: released by member
     *  destruction even when the constructor throws mid-way. */
    detail::WorkspaceCapLease ws_cap_lease_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_; ///< wakes the dispatcher
    std::condition_variable idle_cv_; ///< wakes flush()/shutdown waiters
    RequestBatcher batcher_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::set<std::uint64_t> outstanding_; ///< submitted, not yet served
    /**
     * Deadlines of QUEUED requests, ordered soonest-first (ids with
     * kNoDeadline are never entered). Kept in lockstep with the
     * batcher: inserted at admission, erased at claim/shed/abandon.
     * The dispatcher uses the head for two things (the timeout-flush
     * wakeup fix): re-arming its idle wait so an arriving request
     * with an earlier effective deadline shortens the sleep, and
     * urgent-flushing the bucket of a request whose deadline would
     * expire inside the normal max_wait window.
     */
    std::multiset<std::pair<Deadline, std::uint64_t>> deadlines_;
    std::uint64_t next_id_ = 0;
    std::uint64_t submit_seq_ = 0;  ///< admission attempts (FaultPlan)
    std::size_t dispatch_seq_ = 0;  ///< model batches dispatched
    std::size_t queued_tokens_ = 0; ///< tokens admitted, not claimed
    bool stop_ = false;             ///< destructor: dispatcher exits
    bool draining_ = false;         ///< shutdown(): no new admissions
    /**
     * Number of serveAll() calls currently draining inline. While
     * positive (and no flush() is waiting) the dispatcher parks
     * instead of competing for groups: the inline callers pop ready
     * and drain groups themselves, and wake the dispatcher on exit
     * for whatever traffic remains.
     */
    int inline_active_ = 0;
    int flush_waiters_ = 0;
    std::uint64_t flush_watermark_ = 0; ///< max watermark of waiters
    ServingStats stats_;

    /** Set once a shutdown deadline passed: a Cancelled invocation is
     *  then attributed to ShuttingDown, not the watchdog. */
    std::atomic<bool> abandon_{false};

    // Watchdog state (wd_mu_ - kept off the request path's mu_).
    // Lock order: model_mu_ -> wd_mu_ (arming), and wd_mu_ is never
    // held while taking mu_ or model_mu_ except in shutdown(), whose
    // mu_ -> wd_mu_ order is safe because no path takes wd_mu_ -> mu_.
    std::mutex wd_mu_;
    std::condition_variable wd_cv_;
    runtime::CancelToken *wd_token_ = nullptr; ///< in-flight invocation
    RequestBatcher::Clock::time_point wd_started_{};
    bool wd_fired_ = false; ///< fired for the current invocation
    bool wd_stop_ = false;

    std::thread watchdog_;   ///< only started when watchdog_timeout > 0
    std::thread dispatcher_; ///< last member: starts fully-initialised
};

} // namespace serve
} // namespace fabnet

#endif // FABNET_SERVE_SERVING_H
