/**
 * @file generation.h
 * Continuous-batching streaming generation engine.
 *
 * GenerationEngine drives a CausalGenerator (model/generator.h) as a
 * token-serving system: callers submit a prompt and get a future for
 * the generated token sequence, with an optional per-token streaming
 * callback. Scheduling is CONTINUOUS: a single scheduler thread admits
 * and evicts sequences BETWEEN DECODE STEPS rather than per flush - a
 * fresh prompt joins the live set at the next step boundary (batched
 * ragged prefill), a finished sequence leaves at the step it completes,
 * and the step batch is whatever is live right now. The decode-parity
 * bitwise contract (nn/decode.h: a sequence's tokens depend only on its
 * own prefix, never on who shares its batches) is what makes this
 * scheduling freedom safe: admission order, eviction timing and
 * live-set composition can never change anyone's tokens.
 *
 * ## Failure model at token granularity (docs/SERVING.md)
 * The ServingEngine reliability layer (PR 6), carried to per-token
 * granularity:
 *  - deadlines are re-checked EVERY STEP: an expired live sequence is
 *    evicted before the next token is computed (DeadlineExceeded with
 *    the tokens so far spent discarded, like mid-batch expiry);
 *  - bounded admission (queue depth + queued-prompt-token caps) with
 *    the same shed policies;
 *  - a fault inside one step poisons only its own sequence: every
 *    live sequence's K/V caches are ROLLED BACK to their pre-step
 *    length (a faulted step may have appended rows before throwing;
 *    truncation restores the exact pre-step state) and the step is
 *    retried one sequence at a time - survivors advance bitwise
 *    identically (the 1-row step equals its batched step), the
 *    poisoned sequence alone fails with ModelFault;
 *  - a watchdog cancels a stuck prefill/step cooperatively;
 *  - shutdown(deadline) drains live sequences to completion, then
 *    fails the remainder with ShuttingDown at the deadline.
 * serve/fault.h injects all of these deterministically: admission and
 * Model faults key on the ADMISSION index, delays and stalls key on
 * the INVOCATION index (prefills and decode steps share one counter,
 * numbered in dispatch order).
 */
#ifndef FABNET_SERVE_GENERATION_H
#define FABNET_SERVE_GENERATION_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "model/generator.h"
#include "runtime/parallel.h"
#include "serve/error.h"
#include "serve/fault.h"
#include "serve/serving.h"

namespace fabnet {
namespace serve {

/** Streamed per-token delivery: called on the scheduler thread as
 *  each token is produced, BEFORE the future resolves. Must be fast
 *  (it blocks every live sequence's next step) and must not throw -
 *  a throwing callback fails its own request with InvalidRequest. */
using TokenCallback = std::function<void(int token)>;

/** Scheduling/robustness knobs of the generation engine. */
struct GenerationConfig
{
    /** Maximum sequences decoding concurrently (the step batch cap).
     *  Admission above this waits in the queue for an eviction. */
    std::size_t max_live = 8;
    /** Token id ending generation when sampled (included in the
     *  output); negative = no EOS, run to max_new_tokens. */
    int eos_token = -1;
    /** Workspace retention cap while the engine lives (0 = leave the
     *  policy as-is); see ServingConfig::workspace_cap_bytes. */
    std::size_t workspace_cap_bytes = 4u << 20;

    // ------------------------------------------- bounded admission
    /** Max queued (not yet live) requests; 0 = unbounded. */
    std::size_t max_queue_requests = 0;
    /** Cap on total queued PROMPT tokens; 0 = unbounded. Must exceed
     *  max_seq to be satisfiable. */
    std::size_t max_queue_tokens = 0;
    /** What to do when a cap is hit (serve/serving.h). */
    ShedPolicy shed_policy = ShedPolicy::RejectNew;

    // ------------------------------------------------- reliability
    /** Per-invocation watchdog (one prefill or one decode step); 0
     *  disables. Must exceed the worst honest invocation latency. */
    std::chrono::microseconds watchdog_timeout{0};
    /** Deterministic fault injection (tests only; non-owning). */
    const FaultPlan *fault_plan = nullptr;
};

/** Counters observing the continuous scheduler. */
struct GenerationStats
{
    std::size_t requests = 0;   ///< prompts admitted by submit()
    std::size_t completed = 0;  ///< futures fulfilled with tokens
    std::size_t failed = 0;     ///< futures failed with an error
    std::size_t rejected = 0;   ///< QueueFull rejections (never queued)
    /** Queued requests evicted by DropExpiredFirst (subset of failed,
     *  disjoint from expired_in_queue). */
    std::size_t shed = 0;
    /** Failed with DeadlineExceeded before any model time: expired at
     *  submit or by the time the scheduler reached them. */
    std::size_t expired_in_queue = 0;
    /** Live sequences evicted because their deadline passed between
     *  decode steps (tokens generated so far are discarded). */
    std::size_t expired_mid_decode = 0;
    std::size_t model_faults = 0;      ///< sequences failed ModelFault
    std::size_t isolation_retries = 0; ///< faulted invocations isolated
    std::size_t watchdog_fired = 0;    ///< stuck invocations cancelled
    std::size_t prefill_batches = 0;   ///< batched prefill invocations
    std::size_t steps = 0;             ///< decode step invocations
    std::size_t prefill_tokens = 0;    ///< prompt tokens prefilled
    std::size_t decode_tokens = 0;     ///< tokens generated (streamed)
    std::size_t peak_live = 0;         ///< max concurrent live sequences

    /** Mean live sequences per decode step (continuous-batching
     *  utilisation: how full the step batches actually ran). */
    double avgLive() const
    {
        return steps ? static_cast<double>(decode_tokens) / steps : 0.0;
    }
};

/** Continuous-batching streaming front end over a CausalGenerator. */
class GenerationEngine
{
  public:
    explicit GenerationEngine(CausalGenerator &gen,
                              GenerationConfig cfg = {});
    ~GenerationEngine();

    GenerationEngine(const GenerationEngine &) = delete;
    GenerationEngine &operator=(const GenerationEngine &) = delete;

    /**
     * Enqueue one prompt; the future resolves to the generated tokens
     * (greedy argmax, EOS included when hit; the prompt is not
     * echoed) or fails with a serve::Error. @p on_token, if set,
     * streams each token as it is produced. Admission-time conditions
     * throw synchronously (InvalidRequest for an empty/over-long
     * prompt or max_new_tokens == 0, QueueFull after the shed policy
     * ran, DeadlineExceeded for an already-expired deadline,
     * ShuttingDown once shutdown began); later failures arrive through
     * the future.
     */
    std::future<std::vector<int>> submit(std::vector<int> prompt,
                                         std::size_t max_new_tokens,
                                         Deadline deadline = kNoDeadline,
                                         TokenCallback on_token = nullptr);

    /** Block until every request submitted before this call resolved. */
    void flush();

    /**
     * Graceful drain: stop admitting, decode everything already
     * admitted to completion, return once every future is resolved.
     * If @p deadline passes first the queued requests and the live
     * sequences are failed with ShuttingDown (the in-flight step is
     * cooperatively cancelled). Idempotent; the destructor calls
     * shutdown() if it has not been called.
     */
    void shutdown(Deadline deadline = kNoDeadline);

    GenerationStats stats() const;

  private:
    /** A submitted, not-yet-live request. */
    struct GenRequest
    {
        std::vector<int> prompt;
        std::size_t max_new = 0;
        Deadline deadline = kNoDeadline;
        TokenCallback on_token;
        std::uint64_t admission_index = 0;
        std::uint64_t id = 0;
        std::promise<std::vector<int>> promise;
    };

    /** One live (decoding) sequence. */
    struct Live
    {
        GenRequest req;
        SequenceState state;
        std::vector<int> generated;
        int next_input = 0; ///< newest token, fed to the next step
    };

    struct WatchdogArm;

    void schedulerLoop();
    void watchdogLoop();

    /** One guarded generator invocation: watchdog + cancel scope +
     *  injected delay/stall/fault (keyed on the shared invocation
     *  counter / the members' admission indices). */
    Tensor invokeGuarded(const std::function<Tensor()> &fn, bool stall,
                         const std::string *injected_fault);

    /** Batched ragged prefill of newly admitted requests, appending
     *  the survivors to @p live (first token sampled and streamed).
     *  A faulted batch is rolled back and isolated per sequence. */
    void prefillAdmitted(std::vector<GenRequest> reqs,
                         std::vector<Live> &live);

    /** One decode step over the live set; faulted steps roll back and
     *  isolate per sequence. Completed/faulted sequences leave. */
    void stepLive(std::vector<Live> &live);

    /** Deliver @p tok into @p seq (generated list + callback); returns
     *  false when the callback threw (the sequence is failed). */
    bool deliverToken(Live &seq, int tok);

    /** True when @p seq has everything it asked for (EOS, max_new, or
     *  the positional table is exhausted). */
    bool seqDone(const Live &seq) const;

    /** Resolve @p seq's future with its tokens (stats under mu_
     *  first), erase it from outstanding_. */
    void completeSeq(Live &seq);

    /** Fail one sequence/request (stats under mu_ first). */
    void failSeq(GenRequest &req, const Error &err, bool mid_decode);

    /** Fail every queued request with ShuttingDown (mu_ held). */
    void failQueuedLocked();

    /** The Error a cancelled invocation maps to (serving.cc). */
    Error cancelCause() const;

    CausalGenerator &gen_;
    GenerationConfig cfg_;
    /** Declared before the thread members: released by member
     *  destruction even when the constructor throws mid-way. */
    detail::WorkspaceCapLease ws_cap_lease_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_; ///< wakes the scheduler
    std::condition_variable idle_cv_; ///< wakes flush()/shutdown waiters
    std::deque<GenRequest> queue_;    ///< admitted, not yet live
    std::set<std::uint64_t> outstanding_; ///< submitted, not resolved
    std::uint64_t next_id_ = 0;
    std::uint64_t submit_seq_ = 0;   ///< admission attempts (FaultPlan)
    std::size_t invoke_seq_ = 0;     ///< model invocations (FaultPlan)
    std::size_t queued_tokens_ = 0;  ///< prompt tokens queued
    bool stop_ = false;
    bool draining_ = false;
    GenerationStats stats_;

    std::atomic<bool> abandon_{false};

    // Watchdog state (serving.cc's scheme; lock order mu_ -> wd_mu_).
    std::mutex wd_mu_;
    std::condition_variable wd_cv_;
    runtime::CancelToken *wd_token_ = nullptr;
    RequestBatcher::Clock::time_point wd_started_{};
    bool wd_fired_ = false;
    bool wd_stop_ = false;

    std::thread watchdog_;
    std::thread scheduler_; ///< last member: starts fully-initialised
};

} // namespace serve
} // namespace fabnet

#endif // FABNET_SERVE_GENERATION_H
