#include "serve/generation.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/embedding.h"

namespace fabnet {
namespace serve {

namespace {

/** serving.cc's fault mapping, restated here: injected faults are
 *  already serve::Error and pass through, real model exceptions are
 *  wrapped as ModelFault keeping their message. */
Error
genFaultFrom(std::exception_ptr ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const Error &e) {
        return e;
    } catch (const std::exception &e) {
        return Error(ErrorCode::ModelFault, e.what());
    } catch (...) {
        return Error(ErrorCode::ModelFault, "unknown model exception");
    }
}

} // namespace

/** Registers the in-flight invocation's cancel token and start time
 *  with the watchdog for the duration of the model call (RAII);
 *  serving.cc's scheme verbatim. */
struct GenerationEngine::WatchdogArm
{
    GenerationEngine &e;
    WatchdogArm(GenerationEngine &eng, runtime::CancelToken &tok) : e(eng)
    {
        std::lock_guard<std::mutex> lk(e.wd_mu_);
        e.wd_token_ = &tok;
        e.wd_started_ = RequestBatcher::Clock::now();
        e.wd_fired_ = false;
        e.wd_cv_.notify_all();
    }
    ~WatchdogArm()
    {
        std::lock_guard<std::mutex> lk(e.wd_mu_);
        e.wd_token_ = nullptr;
        e.wd_cv_.notify_all();
    }
};

GenerationEngine::GenerationEngine(CausalGenerator &gen,
                                   GenerationConfig cfg)
    : gen_(gen), cfg_(cfg)
{
    if (cfg_.max_live == 0)
        throw std::invalid_argument(
            "GenerationEngine: max_live must be >= 1");
    if (cfg_.max_queue_tokens != 0 &&
        cfg_.max_queue_tokens < gen_.maxSeq())
        throw std::invalid_argument(
            "GenerationEngine: max_queue_tokens below max_seq would "
            "make some valid prompts permanently inadmissible");
    // RAII member lease: survives a throwing std::thread constructor
    // below (the engine destructor would not run, the member's would).
    ws_cap_lease_ =
        detail::WorkspaceCapLease(cfg_.workspace_cap_bytes);
    if (cfg_.watchdog_timeout.count() > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
    scheduler_ = std::thread([this] { schedulerLoop(); });
}

GenerationEngine::~GenerationEngine()
{
    // Full graceful drain first: every outstanding future resolves
    // before the threads are torn down.
    shutdown();
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        work_cv_.notify_all();
        idle_cv_.notify_all();
    }
    scheduler_.join();
    if (watchdog_.joinable()) {
        {
            std::lock_guard<std::mutex> wl(wd_mu_);
            wd_stop_ = true;
            wd_cv_.notify_all();
        }
        watchdog_.join();
    }
    // ws_cap_lease_ releases the workspace cap via member destruction.
}

std::future<std::vector<int>>
GenerationEngine::submit(std::vector<int> prompt,
                         std::size_t max_new_tokens, Deadline deadline,
                         TokenCallback on_token)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_ || draining_)
        throw Error(ErrorCode::ShuttingDown,
                    "engine is shutting down; prompt not admitted");
    // Admission attempts are numbered in order - rejected ones
    // included - so FaultPlan admission indices are deterministic for
    // a fixed submission sequence.
    const std::uint64_t admission_index = submit_seq_++;
    if (prompt.empty())
        throw Error(ErrorCode::InvalidRequest, "empty prompt");
    // >= and not >: a prompt that already fills every position has no
    // slot for even one generated token. Admitting it used to surface
    // later as a [ModelFault] when prefill ran off the positional
    // table; rejecting at submit keeps the failure typed and
    // synchronous.
    if (prompt.size() >= gen_.maxSeq())
        throw Error(ErrorCode::InvalidRequest,
                    "prompt leaves no room to generate (" +
                        std::to_string(prompt.size()) +
                        " >= max_seq " +
                        std::to_string(gen_.maxSeq()) + ")");
    if (max_new_tokens == 0)
        throw Error(ErrorCode::InvalidRequest,
                    "max_new_tokens must be >= 1");
    const FaultPlan *plan = cfg_.fault_plan;
    if (plan && plan->requestFault(admission_index,
                                   FaultPlan::Stage::Admission))
        throw Error(ErrorCode::InvalidRequest,
                    "injected admission fault (request #" +
                        std::to_string(admission_index) + ")");
    const auto now = RequestBatcher::Clock::now();
    if (deadline != kNoDeadline && deadline <= now) {
        ++stats_.expired_in_queue;
        throw Error(ErrorCode::DeadlineExceeded,
                    "deadline already expired at submit");
    }
    const auto over = [&] {
        return (cfg_.max_queue_requests != 0 &&
                queue_.size() >= cfg_.max_queue_requests) ||
               (cfg_.max_queue_tokens != 0 &&
                queued_tokens_ + prompt.size() > cfg_.max_queue_tokens);
    };
    if (over() && cfg_.shed_policy == ShedPolicy::DropExpiredFirst) {
        std::deque<GenRequest> kept;
        for (GenRequest &r : queue_) {
            if (r.deadline != kNoDeadline && r.deadline <= now) {
                ++stats_.shed;
                ++stats_.failed;
                queued_tokens_ -= r.prompt.size();
                outstanding_.erase(r.id);
                r.promise.set_exception(std::make_exception_ptr(Error(
                    ErrorCode::DeadlineExceeded,
                    "shed from the admission queue (DropExpiredFirst: "
                    "deadline expired before prefill)")));
            } else {
                kept.push_back(std::move(r));
            }
        }
        queue_.swap(kept);
        idle_cv_.notify_all(); // outstanding_ shrank: waiters re-check
    }
    if (over()) {
        ++stats_.rejected;
        throw Error(ErrorCode::QueueFull,
                    "admission queue full (" +
                        std::to_string(queue_.size()) + " requests / " +
                        std::to_string(queued_tokens_) +
                        " prompt tokens queued)");
    }
    queue_.emplace_back();
    GenRequest &r = queue_.back();
    r.prompt = std::move(prompt);
    r.max_new = max_new_tokens;
    r.deadline = deadline;
    r.on_token = std::move(on_token);
    r.admission_index = admission_index;
    r.id = next_id_++;
    std::future<std::vector<int>> fut = r.promise.get_future();
    outstanding_.insert(r.id);
    queued_tokens_ += r.prompt.size();
    ++stats_.requests;
    work_cv_.notify_all();
    return fut;
}

void
GenerationEngine::flush()
{
    std::unique_lock<std::mutex> lk(mu_);
    // Watermark: wait for the requests submitted before this call
    // only, so concurrent submitters cannot starve a flusher. The
    // scheduler admits FIFO and continuously, so no drain handoff is
    // needed (unlike ServingEngine's bucketed flush).
    const std::uint64_t watermark = next_id_;
    idle_cv_.wait(lk, [&] {
        return outstanding_.empty() ||
               *outstanding_.begin() >= watermark || stop_;
    });
}

void
GenerationEngine::shutdown(Deadline deadline)
{
    std::unique_lock<std::mutex> lk(mu_);
    draining_ = true;
    const auto all_resolved = [this] { return outstanding_.empty(); };
    if (deadline == kNoDeadline) {
        // Full drain. (Not wait_until: time_point::max() overflows
        // some libstdc++ wait implementations.)
        idle_cv_.wait(lk, all_resolved);
        return;
    }
    if (idle_cv_.wait_until(lk, deadline, all_resolved))
        return;
    // Deadline passed: fail everything still queued, cooperatively
    // cancel the in-flight prefill/step (its sequences fail with
    // ShuttingDown via cancelCause), and let the scheduler evict the
    // remaining live set at the next step boundary. abandon_ is set
    // first so a Cancelled invocation - and one that arms after this
    // point - attributes to shutdown.
    abandon_.store(true, std::memory_order_release);
    failQueuedLocked();
    {
        std::lock_guard<std::mutex> wl(wd_mu_);
        if (wd_token_)
            wd_token_->cancel();
    }
    work_cv_.notify_all();
    idle_cv_.wait(lk, all_resolved);
}

GenerationStats
GenerationEngine::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

Error
GenerationEngine::cancelCause() const
{
    return abandon_.load(std::memory_order_acquire)
               ? Error(ErrorCode::ShuttingDown,
                       "invocation cancelled at the shutdown deadline")
               : Error(ErrorCode::ModelFault,
                       "watchdog cancelled a stuck model invocation");
}

void
GenerationEngine::failQueuedLocked()
{
    stats_.failed += queue_.size();
    for (GenRequest &r : queue_) {
        queued_tokens_ -= r.prompt.size();
        outstanding_.erase(r.id);
        r.promise.set_exception(std::make_exception_ptr(Error(
            ErrorCode::ShuttingDown,
            "engine shut down before this prompt was prefilled")));
    }
    queue_.clear();
    idle_cv_.notify_all();
}

void
GenerationEngine::completeSeq(Live &seq)
{
    // Order: stats counted first, then the future resolves, and only
    // then does outstanding_ shrink - so a flush()/shutdown() waiter
    // that wakes on the erase always finds the future ready, and a
    // client waking from future.get() always sees itself counted.
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.completed;
    }
    seq.req.promise.set_value(std::move(seq.generated));
    {
        std::lock_guard<std::mutex> lk(mu_);
        outstanding_.erase(seq.req.id);
        idle_cv_.notify_all();
    }
}

void
GenerationEngine::failSeq(GenRequest &req, const Error &err,
                          bool mid_decode)
{
    // Same publication order as completeSeq.
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.failed;
        if (mid_decode)
            ++stats_.expired_mid_decode;
        if (err.code() == ErrorCode::ModelFault)
            ++stats_.model_faults;
    }
    req.promise.set_exception(std::make_exception_ptr(err));
    {
        std::lock_guard<std::mutex> lk(mu_);
        outstanding_.erase(req.id);
        idle_cv_.notify_all();
    }
}

bool
GenerationEngine::deliverToken(Live &seq, int tok)
{
    // Count BEFORE the callback/future can observe the token, matching
    // the engine-wide "stats published before results" order.
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.decode_tokens;
    }
    seq.generated.push_back(tok);
    if (seq.req.on_token) {
        try {
            seq.req.on_token(tok);
        } catch (...) {
            failSeq(seq.req,
                    Error(ErrorCode::InvalidRequest,
                          "token callback threw; request failed"),
                    false);
            return false;
        }
    }
    return true;
}

bool
GenerationEngine::seqDone(const Live &seq) const
{
    if (seq.generated.size() >= seq.req.max_new)
        return true;
    if (cfg_.eos_token >= 0 && !seq.generated.empty() &&
        seq.generated.back() == cfg_.eos_token)
        return true;
    // Positional table exhausted: no further step is legal.
    return seq.state.len >= gen_.maxSeq();
}

Tensor
GenerationEngine::invokeGuarded(const std::function<Tensor()> &fn,
                                bool stall,
                                const std::string *injected_fault)
{
    runtime::CancelToken cancel;
    WatchdogArm arm(*this, cancel);
    runtime::CancelScope scope(cancel);
    // A shutdown deadline that already passed cancels this invocation
    // before any work is done.
    if (abandon_.load(std::memory_order_acquire))
        cancel.cancel();
    if (stall) {
        // Injected stall: spin until the watchdog (or a shutdown
        // deadline) cancels us; the safety bound turns a missing
        // watchdog into a loud ModelFault instead of a hung test.
        const auto start = RequestBatcher::Clock::now();
        for (;;) {
            if (cancel.cancelled())
                throw runtime::Cancelled{};
            if (RequestBatcher::Clock::now() - start >
                std::chrono::seconds(10))
                throw Error(ErrorCode::ModelFault,
                            "injected stall hit its 10s safety bound "
                            "(no watchdog cancelled it)");
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
    if (injected_fault)
        throw Error(ErrorCode::ModelFault, *injected_fault);
    return fn();
}

void
GenerationEngine::prefillAdmitted(std::vector<GenRequest> reqs,
                                  std::vector<Live> &live)
{
    const FaultPlan *plan = cfg_.fault_plan;
    std::size_t inv = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        inv = invoke_seq_++;
        ++stats_.prefill_batches;
        for (const GenRequest &r : reqs)
            stats_.prefill_tokens += r.prompt.size();
    }
    std::string injected;
    bool stall = false;
    if (plan) {
        const std::chrono::microseconds d = plan->batchDelay(inv);
        if (d.count() > 0)
            std::this_thread::sleep_for(d);
        stall = plan->batchStalls(inv);
        for (const GenRequest &r : reqs)
            if (injected.empty() &&
                plan->requestFault(r.admission_index,
                                   FaultPlan::Stage::Model))
                injected = "injected model fault (request #" +
                           std::to_string(r.admission_index) + ")";
    }

    std::vector<Live> fresh;
    fresh.reserve(reqs.size());
    for (GenRequest &r : reqs) {
        Live s;
        s.req = std::move(r);
        s.state = gen_.newState();
        fresh.push_back(std::move(s));
    }
    std::vector<std::vector<int>> prompts;
    std::vector<SequenceState *> states;
    prompts.reserve(fresh.size());
    states.reserve(fresh.size());
    for (Live &s : fresh) {
        prompts.push_back(s.req.prompt);
        states.push_back(&s.state);
    }

    Tensor logits;
    try {
        logits = invokeGuarded(
            [&] { return gen_.prefill(prompts, states); }, stall,
            injected.empty() ? nullptr : &injected);
    } catch (const runtime::Cancelled &) {
        // The invocation never finished; no sequence has a usable
        // state, and re-running a stuck batch would stick again.
        const Error err = cancelCause();
        for (Live &s : fresh)
            failSeq(s.req, err, false);
        return;
    } catch (...) {
        // Per-sequence fault isolation: a faulted batched prefill may
        // have captured some layers' caches before throwing; each
        // retry starts from a rolled-back (empty) state.
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.isolation_retries;
        }
        for (Live &s : fresh) {
            gen_.rollback(s.state, 0);
            std::string one;
            // Model faults are sticky (serve/fault.h): the poisoned
            // sequence fails here instead of silently succeeding.
            if (plan && plan->requestFault(s.req.admission_index,
                                           FaultPlan::Stage::Model))
                one = "injected model fault (request #" +
                      std::to_string(s.req.admission_index) + ")";
            try {
                const std::vector<std::vector<int>> p1{s.req.prompt};
                const std::vector<SequenceState *> st1{&s.state};
                const Tensor lg = invokeGuarded(
                    [&] { return gen_.prefill(p1, st1); }, false,
                    one.empty() ? nullptr : &one);
                const int tok = nn::argmaxRows(lg)[0];
                if (!deliverToken(s, tok))
                    continue;
                s.next_input = tok;
                if (seqDone(s))
                    completeSeq(s);
                else
                    live.push_back(std::move(s));
            } catch (const runtime::Cancelled &) {
                failSeq(s.req, cancelCause(), false);
            } catch (...) {
                failSeq(s.req, genFaultFrom(std::current_exception()),
                        false);
            }
        }
        return;
    }

    const std::vector<int> toks = nn::argmaxRows(logits);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        Live &s = fresh[i];
        if (!deliverToken(s, toks[i]))
            continue;
        s.next_input = toks[i];
        if (seqDone(s))
            completeSeq(s);
        else
            live.push_back(std::move(s));
    }
}

void
GenerationEngine::stepLive(std::vector<Live> &live)
{
    const FaultPlan *plan = cfg_.fault_plan;
    std::size_t inv = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        inv = invoke_seq_++;
        ++stats_.steps;
    }
    std::string injected;
    bool stall = false;
    if (plan) {
        const std::chrono::microseconds d = plan->batchDelay(inv);
        if (d.count() > 0)
            std::this_thread::sleep_for(d);
        stall = plan->batchStalls(inv);
        for (const Live &s : live)
            if (injected.empty() &&
                plan->requestFault(s.req.admission_index,
                                   FaultPlan::Stage::Model))
                injected = "injected model fault (request #" +
                           std::to_string(s.req.admission_index) + ")";
    }

    std::vector<int> toks;
    std::vector<SequenceState *> states;
    std::vector<std::size_t> pre_lens;
    toks.reserve(live.size());
    states.reserve(live.size());
    pre_lens.reserve(live.size());
    for (Live &s : live) {
        toks.push_back(s.next_input);
        states.push_back(&s.state);
        pre_lens.push_back(s.state.len);
    }

    Tensor logits;
    try {
        logits = invokeGuarded(
            [&] { return gen_.decodeStep(toks, states); }, stall,
            injected.empty() ? nullptr : &injected);
    } catch (const runtime::Cancelled &) {
        const Error err = cancelCause();
        for (Live &s : live)
            failSeq(s.req, err, false);
        live.clear();
        return;
    } catch (...) {
        // Roll every sequence back to its pre-step cache length (a
        // faulted step may have appended K/V rows before throwing),
        // then retry one sequence at a time: survivors advance bitwise
        // identically (the 1-row step equals its batched step by the
        // decode-parity contract), the poisoned sequence alone fails.
        for (std::size_t i = 0; i < live.size(); ++i)
            gen_.rollback(live[i].state, pre_lens[i]);
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.isolation_retries;
        }
        std::vector<Live> keep;
        keep.reserve(live.size());
        for (Live &s : live) {
            std::string one;
            if (plan && plan->requestFault(s.req.admission_index,
                                           FaultPlan::Stage::Model))
                one = "injected model fault (request #" +
                      std::to_string(s.req.admission_index) + ")";
            try {
                const std::vector<int> t1{s.next_input};
                const std::vector<SequenceState *> st1{&s.state};
                const Tensor lg = invokeGuarded(
                    [&] { return gen_.decodeStep(t1, st1); }, false,
                    one.empty() ? nullptr : &one);
                const int tok = nn::argmaxRows(lg)[0];
                if (!deliverToken(s, tok))
                    continue;
                s.next_input = tok;
                if (seqDone(s))
                    completeSeq(s);
                else
                    keep.push_back(std::move(s));
            } catch (const runtime::Cancelled &) {
                failSeq(s.req, cancelCause(), false);
            } catch (...) {
                failSeq(s.req, genFaultFrom(std::current_exception()),
                        false);
            }
        }
        live.swap(keep);
        return;
    }

    const std::vector<int> next = nn::argmaxRows(logits);
    std::vector<Live> keep;
    keep.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
        Live &s = live[i];
        if (!deliverToken(s, next[i]))
            continue;
        s.next_input = next[i];
        if (seqDone(s))
            completeSeq(s);
        else
            keep.push_back(std::move(s));
    }
    live.swap(keep);
}

void
GenerationEngine::schedulerLoop()
{
    std::vector<Live> live;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (abandon_.load(std::memory_order_acquire) && !queue_.empty())
            failQueuedLocked();
        // Admission up to max_live: pop FIFO, discarding requests that
        // expired while queued (failed before any model time).
        std::vector<GenRequest> admitted;
        const auto now = RequestBatcher::Clock::now();
        while (live.size() + admitted.size() < cfg_.max_live &&
               !queue_.empty()) {
            GenRequest r = std::move(queue_.front());
            queue_.pop_front();
            queued_tokens_ -= r.prompt.size();
            if (r.deadline != kNoDeadline && r.deadline <= now) {
                ++stats_.failed;
                ++stats_.expired_in_queue;
                outstanding_.erase(r.id);
                r.promise.set_exception(std::make_exception_ptr(Error(
                    ErrorCode::DeadlineExceeded,
                    "deadline expired in queue (prompt never reached "
                    "the model)")));
                idle_cv_.notify_all();
                continue;
            }
            admitted.push_back(std::move(r));
        }
        if (admitted.empty() && live.empty()) {
            if (stop_)
                break;
            idle_cv_.notify_all();
            work_cv_.wait(lk);
            continue;
        }
        stats_.peak_live =
            std::max(stats_.peak_live, live.size() + admitted.size());
        lk.unlock();

        if (!admitted.empty())
            prefillAdmitted(std::move(admitted), live);

        if (abandon_.load(std::memory_order_acquire)) {
            const Error err(ErrorCode::ShuttingDown,
                            "live sequence evicted at the shutdown "
                            "deadline");
            for (Live &s : live)
                failSeq(s.req, err, false);
            live.clear();
            lk.lock();
            continue;
        }

        // Per-step deadline eviction: an expired live sequence leaves
        // BEFORE the next token is computed.
        const auto step_now = RequestBatcher::Clock::now();
        for (auto it = live.begin(); it != live.end();) {
            if (it->req.deadline != kNoDeadline &&
                it->req.deadline <= step_now) {
                failSeq(it->req,
                        Error(ErrorCode::DeadlineExceeded,
                              "deadline passed mid-decode (partial "
                              "generation discarded)"),
                        true);
                it = live.erase(it);
            } else {
                ++it;
            }
        }

        if (!live.empty())
            stepLive(live);

        lk.lock();
    }
    lk.unlock();
    // stop_ with sequences still live cannot happen after an orderly
    // shutdown(); fail any leftovers rather than stranding futures.
    for (Live &s : live)
        failSeq(s.req, Error(ErrorCode::ShuttingDown, "engine stopped"),
                false);
}

void
GenerationEngine::watchdogLoop()
{
    std::unique_lock<std::mutex> wl(wd_mu_);
    for (;;) {
        if (wd_stop_)
            return;
        if (!wd_token_ || wd_fired_) {
            wd_cv_.wait(wl);
            continue;
        }
        const auto fire_at = wd_started_ + cfg_.watchdog_timeout;
        if (RequestBatcher::Clock::now() >= fire_at) {
            // The token lives on the scheduler thread's stack, but
            // deregistration takes wd_mu_, so it cannot die while we
            // hold the lock.
            wd_token_->cancel();
            wd_fired_ = true;
            wl.unlock();
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.watchdog_fired;
            }
            wl.lock();
            continue;
        }
        wd_cv_.wait_until(wl, fire_at);
    }
}

} // namespace serve
} // namespace fabnet
