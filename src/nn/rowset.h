/**
 * @file rowset.h
 * Ragged-batch descriptor for right-padded inference batches.
 *
 * A served batch is a [batch, seq, d] activation tensor in which
 * sequence b only occupies the first lens[b] of its seq rows; the rest
 * is padding whose outputs nothing downstream reads. RowSet describes
 * that shape ONCE per batch (SequenceClassifier::forwardBatch builds
 * it) so every row-wise layer can iterate the valid rows only - the
 * "skip padded rows" execution mode that reclaims the pad_overhead
 * measured by BENCH_serving.json.
 *
 * ## Representation
 * Right-padding makes each sequence's valid rows one contiguous run
 * [b*seq, b*seq + lens[b]) of the flattened row index space, so the
 * descriptor is a prefix-sum table over lens: packed index p (0 ..
 * totalRows()) maps to a (sequence, offset) pair by binary search, and
 * any packed range decomposes into at most batch contiguous row spans.
 * Layers consume it one of two ways - in place on the spans
 * (forEachSpan: GEMM-backed and row-local layers, whose 4-row tiles
 * barely fragment) or via packed gather/scatter (forEachSpanPacked:
 * the butterfly linears, whose 16-row stage-major blocks fragment
 * badly on short spans) - a per-layer, bench-backed choice documented
 * in docs/ARCHITECTURE.md, "Ragged batch execution".
 *
 * ## Determinism
 * Work is distributed over the PACKED index space (forEachRowSpan), so
 * chunk boundaries never depend on the thread count, and every span
 * kernel in this repo computes each row from that row's inputs with a
 * fixed per-row operation order. Skipping rows therefore cannot change
 * any valid row's bits: ragged execution is bitwise identical to the
 * full padded computation (tests/serving_test.cpp, `ragged-parity`).
 */
#ifndef FABNET_NN_ROWSET_H
#define FABNET_NN_ROWSET_H

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/parallel.h"

namespace fabnet {
namespace nn {

/** Valid-row descriptor of a right-padded [batch, seq, d] batch. */
class RowSet
{
  public:
    /**
     * @param batch number of sequences
     * @param seq   padded length of every sequence
     * @param lens  real length of each sequence, all in [1, seq]
     */
    RowSet(std::size_t batch, std::size_t seq,
           std::vector<std::size_t> lens)
        : batch_(batch), seq_(seq), lens_(std::move(lens))
    {
        if (lens_.size() != batch_)
            throw std::invalid_argument("RowSet: lens size != batch");
        start_.resize(batch_ + 1);
        start_[0] = 0;
        for (std::size_t b = 0; b < batch_; ++b) {
            if (lens_[b] == 0 || lens_[b] > seq_)
                throw std::invalid_argument(
                    "RowSet: len out of [1, seq]");
            start_[b + 1] = start_[b] + lens_[b];
        }
    }

    std::size_t batch() const { return batch_; }
    std::size_t seq() const { return seq_; }
    std::size_t len(std::size_t b) const { return lens_[b]; }
    const std::vector<std::size_t> &lens() const { return lens_; }

    /** Number of valid (non-padding) rows across the batch. */
    std::size_t totalRows() const { return start_[batch_]; }

    /** Rows of the padded tensor (valid + padding). */
    std::size_t paddedRows() const { return batch_ * seq_; }

    /** Padding rows a ragged pass skips. */
    std::size_t rowsSkipped() const
    {
        return paddedRows() - totalRows();
    }

    bool hasPadding() const { return totalRows() != paddedRows(); }

    /**
     * Decompose the packed range [p0, p1) into contiguous VALID row
     * spans of the padded tensor and call f(row_begin, row_end) for
     * each (row indices into the flattened [batch*seq] row space).
     * Spans arrive in ascending row order; a padding-free set emits
     * the single span [p0, p1) (packed == actual there).
     */
    template <class F>
    void forEachSpan(std::size_t p0, std::size_t p1, F &&f) const
    {
        if (p0 >= p1)
            return;
        if (!hasPadding()) {
            f(p0, p1);
            return;
        }
        // Sequence containing packed index p0.
        std::size_t b = static_cast<std::size_t>(
                            std::upper_bound(start_.begin(), start_.end(),
                                             p0) -
                            start_.begin()) -
                        1;
        while (p0 < p1) {
            const std::size_t take = std::min(p1, start_[b + 1]) - p0;
            const std::size_t row0 = b * seq_ + (p0 - start_[b]);
            f(row0, row0 + take);
            p0 += take;
            ++b;
        }
    }

    /**
     * forEachSpan variant that also reports each span's position in
     * the packed row space: f(row_begin, row_end, packed_begin). Used
     * by layers that gather valid rows into a contiguous buffer
     * (packed-gather execution, see forwardRows of the butterfly
     * linears) - packed_begin is where the span's rows land.
     */
    template <class F>
    void forEachSpanPacked(std::size_t p0, std::size_t p1, F &&f) const
    {
        if (p0 >= p1)
            return;
        if (!hasPadding()) {
            f(p0, p1, p0);
            return;
        }
        std::size_t b = static_cast<std::size_t>(
                            std::upper_bound(start_.begin(), start_.end(),
                                             p0) -
                            start_.begin()) -
                        1;
        while (p0 < p1) {
            const std::size_t take = std::min(p1, start_[b + 1]) - p0;
            const std::size_t row0 = b * seq_ + (p0 - start_[b]);
            f(row0, row0 + take, p0);
            p0 += take;
            ++b;
        }
    }

  private:
    std::size_t batch_ = 0, seq_ = 0;
    std::vector<std::size_t> lens_;
    std::vector<std::size_t> start_; ///< packed offset of each sequence
};

/**
 * Parallel sweep over the valid rows only: partitions the PACKED row
 * space with runtime::parallelFor (grain = rows per chunk, the same
 * determinism contract) and hands each chunk to @p f as contiguous
 * row spans of the padded tensor. Every kernel invoked through this
 * computes rows independently with a fixed per-row op order, so the
 * result is bitwise identical to the full-tensor sweep at any thread
 * count AND any span decomposition.
 */
template <class F>
inline void
forEachRowSpan(const RowSet &rows, std::size_t grain, F &&f)
{
    runtime::parallelFor(0, rows.totalRows(), grain,
                         [&](std::size_t p0, std::size_t p1) {
                             rows.forEachSpan(p0, p1, f);
                         });
}

/** Parallel packed-aware span sweep: f(row0, row1, packed0). */
template <class F>
inline void
forEachRowSpanPacked(const RowSet &rows, std::size_t grain, F &&f)
{
    runtime::parallelFor(0, rows.totalRows(), grain,
                         [&](std::size_t p0, std::size_t p1) {
                             rows.forEachSpanPacked(p0, p1, f);
                         });
}

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_ROWSET_H
