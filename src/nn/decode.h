/**
 * @file decode.h
 * Per-sequence incremental decode state for autoregressive generation.
 *
 * A decode step is literally a ragged batch of "one new row per live
 * sequence": the step tensor is [n_live, 1, d] and every row-wise layer
 * runs its ordinary forwardRows path over it. Only attention mixes
 * across the sequence, and what it needs from the past is exactly its
 * K/V projections of the previous positions - so each live sequence
 * carries one KVCache per attention layer, appended one row per step.
 *
 * ## Bitwise contract
 * Incremental decode is BITWISE identical to a full causal recompute
 * at every step, any thread count and any batch composition
 * (`ctest -L decode-parity`). The argument is an induction over the
 * ragged-execution guarantees the repo already pins down:
 *  - every non-attention layer computes each row from that row's
 *    inputs with a fixed per-row op order (the ragged-parity suite),
 *    so the step row's activations match the full run's last row;
 *  - causal attention at position i reads only positions <= i, so the
 *    cached K/V rows - captured when those positions were the step
 *    row - are the very values a full recompute would project;
 *  - MultiHeadAttention::forwardStep replays the exact per-element
 *    accumulation chains of forwardRows' last query row (scores
 *    ascending-c through runtime::madd, softmax ascending-j, context
 *    through the same gemmRowsIKJ row kernel).
 * Quantized projections keep the contract: int8 activation
 * quantisation is per-row, fp16 rounding per-element - both
 * row-independent.
 */
#ifndef FABNET_NN_DECODE_H
#define FABNET_NN_DECODE_H

#include <cstddef>
#include <vector>

namespace fabnet {
namespace nn {

/**
 * One attention layer's K/V prefix for one sequence: `len` rows of
 * d_model floats each (all heads contiguous, the [t, d] layout of the
 * projection outputs). Grows by one row per decode step.
 */
struct KVCache
{
    std::vector<float> k, v;
    std::size_t len = 0;

    /** Drop cached rows past @p new_len (step-fault rollback). */
    void truncate(std::size_t new_len, std::size_t d_model)
    {
        if (new_len >= len)
            return;
        k.resize(new_len * d_model);
        v.resize(new_len * d_model);
        len = new_len;
    }
};

/**
 * Per-layer view of the live sequences' decode state, rebuilt by the
 * model for every layer of every step/prefill call:
 *  - caches[b]: the K/V cache of live sequence b FOR THIS LAYER
 *    (attention appends the step row and attends over the whole
 *    prefix; other layers ignore it);
 *  - positions[b]: the absolute position of sequence b's step row
 *    (the embedding adds pos_[positions[b]]).
 * During prefill, positions[b] is the position of sequence b's FIRST
 * prompt row (0 for fresh sequences) and attention appends all
 * rows.len(b) projected rows.
 */
struct StepState
{
    std::vector<KVCache *> caches;
    std::vector<std::size_t> positions;
};

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_DECODE_H
