#include "nn/block.h"

#include "runtime/parallel.h"

namespace fabnet {
namespace nn {

namespace {

/** Chunked parallel a += b for the residual shortcuts. */
void
addResidual(float *a, const float *b, std::size_t n)
{
    runtime::parallelFor(0, n, 1 << 14,
                         [&](std::size_t i0, std::size_t i1) {
                             for (std::size_t i = i0; i < i1; ++i)
                                 a[i] += b[i];
                         });
}

/** Ragged residual: a += b over the valid rows only (both operands'
 *  padded rows are zero in the ragged chain, so they stay zero). */
void
addResidualRows(float *a, const float *b, std::size_t d,
                const RowSet &rows)
{
    forEachRowSpan(rows, 64, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0 * d; i < r1 * d; ++i)
            a[i] += b[i];
    });
}

} // namespace

FeedForward::FeedForward(std::unique_ptr<Layer> lin1,
                         std::unique_ptr<Layer> act,
                         std::unique_ptr<Layer> lin2)
    : lin1_(std::move(lin1)), act_(std::move(act)), lin2_(std::move(lin2))
{
}

Tensor
FeedForward::forward(const Tensor &x)
{
    return lin2_->forward(act_->forward(lin1_->forward(x)));
}

Tensor
FeedForward::forwardRows(const Tensor &x, const RowSet &rows)
{
    return lin2_->forwardRows(
        act_->forwardRows(lin1_->forwardRows(x, rows), rows), rows);
}

Tensor
FeedForward::backward(const Tensor &grad_out)
{
    return lin1_->backward(act_->backward(lin2_->backward(grad_out)));
}

Tensor
FeedForward::backwardReference(const Tensor &grad_out)
{
    return lin1_->backwardReference(
        act_->backwardReference(lin2_->backwardReference(grad_out)));
}

void
FeedForward::collectParams(std::vector<ParamRef> &out)
{
    lin1_->collectParams(out);
    act_->collectParams(out);
    lin2_->collectParams(out);
}

std::size_t
FeedForward::quantizeLinears(QuantKind kind)
{
    return quantizeChildLayer(lin1_, kind) +
           quantizeChildLayer(act_, kind) +
           quantizeChildLayer(lin2_, kind);
}

EncoderBlock::EncoderBlock(std::size_t d_model,
                           std::unique_ptr<Layer> mixer,
                           std::unique_ptr<Layer> ffn)
    : mixer_(std::move(mixer)), ffn_(std::move(ffn)), ln1_(d_model),
      ln2_(d_model)
{
}

Tensor
EncoderBlock::forward(const Tensor &x)
{
    return forwardImpl(x, nullptr);
}

Tensor
EncoderBlock::forwardMasked(const Tensor &x,
                            const std::vector<std::size_t> &lens)
{
    return forwardImpl(x, &lens);
}

Tensor
EncoderBlock::forwardImpl(const Tensor &x,
                          const std::vector<std::size_t> *lens)
{
    // Only the mixer sees the mask; residual adds, layer norms and the
    // FFN are row-wise and padding-safe.
    Tensor a = lens ? mixer_->forwardMasked(x, *lens) : mixer_->forward(x);
    addResidual(a.data(), x.data(), a.size()); // shortcut
    Tensor h = ln1_.forward(a);

    Tensor f = ffn_->forward(h);
    addResidual(f.data(), h.data(), f.size()); // shortcut
    return ln2_.forward(f);
}

Tensor
EncoderBlock::forwardRows(const Tensor &x, const RowSet &rows)
{
    // The ragged chain: every stage skips padded rows (the unmasked
    // forwardImpl only masks the mixer and lets the row-wise stages
    // compute-and-discard). Padded rows are zero after every stage.
    const std::size_t d = x.shape().back();
    Tensor a = mixer_->forwardRows(x, rows);
    addResidualRows(a.data(), x.data(), d, rows); // shortcut
    Tensor h = ln1_.forwardRows(a, rows);

    Tensor f = ffn_->forwardRows(h, rows);
    addResidualRows(f.data(), h.data(), d, rows); // shortcut
    return ln2_.forwardRows(f, rows);
}

Tensor
EncoderBlock::forwardStep(const Tensor &x, StepState &step)
{
    // Identical to forwardRows over the trivial all-valid one-row
    // RowSet, except that the mixer takes its forwardStep path; the
    // row-wise stages cannot tell the difference (same per-row ops).
    const std::size_t d = x.shape().back();
    const RowSet rows(x.dim(0), x.dim(1),
                      std::vector<std::size_t>(x.dim(0), x.dim(1)));
    Tensor a = mixer_->forwardStep(x, step);
    addResidualRows(a.data(), x.data(), d, rows); // shortcut
    Tensor h = ln1_.forwardRows(a, rows);

    Tensor f = ffn_->forwardRows(h, rows);
    addResidualRows(f.data(), h.data(), d, rows); // shortcut
    return ln2_.forwardRows(f, rows);
}

Tensor
EncoderBlock::forwardPrefill(const Tensor &x, const RowSet &rows,
                             StepState &step)
{
    // forwardRows with the mixer's K/V capture - the mixer's prefill
    // returns the same bits as its forwardRows, so so does the block.
    const std::size_t d = x.shape().back();
    Tensor a = mixer_->forwardPrefill(x, rows, step);
    addResidualRows(a.data(), x.data(), d, rows); // shortcut
    Tensor h = ln1_.forwardRows(a, rows);

    Tensor f = ffn_->forwardRows(h, rows);
    addResidualRows(f.data(), h.data(), d, rows); // shortcut
    return ln2_.forwardRows(f, rows);
}

Tensor
EncoderBlock::backward(const Tensor &grad_out)
{
    Tensor g_hf = ln2_.backward(grad_out); // grad wrt (h + f)
    Tensor g_h = ffn_->backward(g_hf);
    addResidual(g_h.data(), g_hf.data(), g_h.size()); // residual path

    Tensor g_xa = ln1_.backward(g_h); // grad wrt (x + a)
    Tensor g_x = mixer_->backward(g_xa);
    addResidual(g_x.data(), g_xa.data(), g_x.size()); // residual path
    return g_x;
}

Tensor
EncoderBlock::backwardReference(const Tensor &grad_out)
{
    Tensor g_hf = ln2_.backwardReference(grad_out);
    Tensor g_h = ffn_->backwardReference(g_hf);
    addResidual(g_h.data(), g_hf.data(), g_h.size());

    Tensor g_xa = ln1_.backwardReference(g_h);
    Tensor g_x = mixer_->backwardReference(g_xa);
    addResidual(g_x.data(), g_xa.data(), g_x.size());
    return g_x;
}

void
EncoderBlock::collectParams(std::vector<ParamRef> &out)
{
    mixer_->collectParams(out);
    ffn_->collectParams(out);
    ln1_.collectParams(out);
    ln2_.collectParams(out);
}

std::size_t
EncoderBlock::quantizeLinears(QuantKind kind)
{
    return quantizeChildLayer(mixer_, kind) +
           quantizeChildLayer(ffn_, kind);
}

} // namespace nn
} // namespace fabnet
