#include "nn/block.h"

namespace fabnet {
namespace nn {

FeedForward::FeedForward(std::unique_ptr<Layer> lin1,
                         std::unique_ptr<Layer> act,
                         std::unique_ptr<Layer> lin2)
    : lin1_(std::move(lin1)), act_(std::move(act)), lin2_(std::move(lin2))
{
}

Tensor
FeedForward::forward(const Tensor &x)
{
    return lin2_->forward(act_->forward(lin1_->forward(x)));
}

Tensor
FeedForward::backward(const Tensor &grad_out)
{
    return lin1_->backward(act_->backward(lin2_->backward(grad_out)));
}

void
FeedForward::collectParams(std::vector<ParamRef> &out)
{
    lin1_->collectParams(out);
    act_->collectParams(out);
    lin2_->collectParams(out);
}

EncoderBlock::EncoderBlock(std::size_t d_model,
                           std::unique_ptr<Layer> mixer,
                           std::unique_ptr<Layer> ffn)
    : mixer_(std::move(mixer)), ffn_(std::move(ffn)), ln1_(d_model),
      ln2_(d_model)
{
}

Tensor
EncoderBlock::forward(const Tensor &x)
{
    Tensor a = mixer_->forward(x);
    float *pa = a.data();
    const float *px = x.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        pa[i] += px[i]; // shortcut
    Tensor h = ln1_.forward(a);

    Tensor f = ffn_->forward(h);
    float *pf = f.data();
    const float *ph = h.data();
    for (std::size_t i = 0; i < f.size(); ++i)
        pf[i] += ph[i]; // shortcut
    return ln2_.forward(f);
}

Tensor
EncoderBlock::backward(const Tensor &grad_out)
{
    Tensor g_hf = ln2_.backward(grad_out); // grad wrt (h + f)
    Tensor g_h = ffn_->backward(g_hf);
    float *pgh = g_h.data();
    const float *pghf = g_hf.data();
    for (std::size_t i = 0; i < g_h.size(); ++i)
        pgh[i] += pghf[i]; // residual path

    Tensor g_xa = ln1_.backward(g_h); // grad wrt (x + a)
    Tensor g_x = mixer_->backward(g_xa);
    float *pgx = g_x.data();
    const float *pgxa = g_xa.data();
    for (std::size_t i = 0; i < g_x.size(); ++i)
        pgx[i] += pgxa[i]; // residual path
    return g_x;
}

void
EncoderBlock::collectParams(std::vector<ParamRef> &out)
{
    mixer_->collectParams(out);
    ffn_->collectParams(out);
    ln1_.collectParams(out);
    ln2_.collectParams(out);
}

} // namespace nn
} // namespace fabnet
