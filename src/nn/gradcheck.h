/**
 * @file gradcheck.h
 * Finite-difference gradient checking used by the test suite to verify
 * every analytic backward pass in the framework.
 */
#ifndef FABNET_NN_GRADCHECK_H
#define FABNET_NN_GRADCHECK_H

#include <functional>
#include <vector>

#include "nn/layer.h"

namespace fabnet {
namespace nn {

/** Result of a gradient check: worst relative error observed. */
struct GradCheckResult
{
    float max_rel_error = 0.0f;
    float max_abs_error = 0.0f;
    bool passed = false;
};

/**
 * One randomized gradcheck problem: a [batch, seq, features] input
 * for a layer mapping features -> out_features (layers that preserve
 * the feature count ignore out_features).
 */
struct GradSweepShape
{
    std::size_t batch, seq, features, out_features;
};

/**
 * Seeded shape sweep for randomized layer gradchecks: fixed corners
 * covering the degenerate (1x1), odd, non-power-of-two and
 * pad-to-next-pow2 cases, plus @p extra random draws (batch 1..3,
 * seq 1..9, features/out 2..40). The grad suites iterate this instead
 * of hand-picked fixed shapes so every run exercises fresh odd sizes.
 */
std::vector<GradSweepShape> gradSweepShapes(unsigned seed,
                                            std::size_t extra = 3);

/** Deterministic N(0,1) input tensor for a sweep entry. */
Tensor makeGradCheckInput(const GradSweepShape &s, unsigned seed);

/**
 * Check dL/d(input) of @p layer at @p x against central differences,
 * where L = sum(layer(x) * probe) for a fixed random probe.
 *
 * @param tol relative-error tolerance (absolute fallback for tiny
 *            gradients).
 */
GradCheckResult checkInputGrad(Layer &layer, const Tensor &x,
                               unsigned seed = 7, float eps = 1e-3f,
                               float tol = 2e-2f);

/**
 * Check dL/d(params) of @p layer at @p x against central differences.
 * Checks up to @p max_coords randomly chosen coordinates per parameter
 * vector to keep test time bounded.
 */
GradCheckResult checkParamGrad(Layer &layer, const Tensor &x,
                               unsigned seed = 7, float eps = 1e-3f,
                               float tol = 2e-2f,
                               std::size_t max_coords = 24);

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_GRADCHECK_H
