/**
 * @file gradcheck.h
 * Finite-difference gradient checking used by the test suite to verify
 * every analytic backward pass in the framework.
 */
#ifndef FABNET_NN_GRADCHECK_H
#define FABNET_NN_GRADCHECK_H

#include <functional>

#include "nn/layer.h"

namespace fabnet {
namespace nn {

/** Result of a gradient check: worst relative error observed. */
struct GradCheckResult
{
    float max_rel_error = 0.0f;
    float max_abs_error = 0.0f;
    bool passed = false;
};

/**
 * Check dL/d(input) of @p layer at @p x against central differences,
 * where L = sum(layer(x) * probe) for a fixed random probe.
 *
 * @param tol relative-error tolerance (absolute fallback for tiny
 *            gradients).
 */
GradCheckResult checkInputGrad(Layer &layer, const Tensor &x,
                               unsigned seed = 7, float eps = 1e-3f,
                               float tol = 2e-2f);

/**
 * Check dL/d(params) of @p layer at @p x against central differences.
 * Checks up to @p max_coords randomly chosen coordinates per parameter
 * vector to keep test time bounded.
 */
GradCheckResult checkParamGrad(Layer &layer, const Tensor &x,
                               unsigned seed = 7, float eps = 1e-3f,
                               float tol = 2e-2f,
                               std::size_t max_coords = 24);

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_GRADCHECK_H
