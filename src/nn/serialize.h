/**
 * @file serialize.h
 * Binary save/load of model parameters so trained models can be
 * checkpointed and deployed (e.g. trained once, then replayed onto
 * the functional hardware model or quantised for the accelerator).
 *
 * Format: magic "FABW", u32 version, u64 count of parameter vectors,
 * then per vector a u64 length and that many f32 values, little
 * endian.
 */
#ifndef FABNET_NN_SERIALIZE_H
#define FABNET_NN_SERIALIZE_H

#include <string>
#include <vector>

#include "nn/layer.h"

namespace fabnet {
namespace nn {

/** Write all parameter values to @p path. @return success. */
bool saveParams(const std::vector<ParamRef> &params,
                const std::string &path);

/**
 * Load parameter values from @p path into @p params.
 * The layout (vector count and sizes) must match exactly.
 * @return success.
 */
bool loadParams(const std::vector<ParamRef> &params,
                const std::string &path);

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_SERIALIZE_H
