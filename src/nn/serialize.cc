#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <cstdio>
#include <memory>

namespace fabnet {
namespace nn {

namespace {

constexpr char kMagic[4] = {'F', 'A', 'B', 'W'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool
writeValue(std::FILE *f, const T &v)
{
    return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool
readValue(std::FILE *f, T &v)
{
    return std::fread(&v, sizeof(T), 1, f) == 1;
}

} // namespace

bool
saveParams(const std::vector<ParamRef> &params, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    if (std::fwrite(kMagic, 1, 4, f.get()) != 4)
        return false;
    if (!writeValue(f.get(), kVersion))
        return false;
    const std::uint64_t count = params.size();
    if (!writeValue(f.get(), count))
        return false;
    for (const auto &p : params) {
        const std::uint64_t len = p.value->size();
        if (!writeValue(f.get(), len))
            return false;
        if (len && std::fwrite(p.value->data(), sizeof(float), len,
                               f.get()) != len)
            return false;
    }
    return true;
}

bool
loadParams(const std::vector<ParamRef> &params, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    char magic[4];
    if (std::fread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0)
        return false;
    std::uint32_t version = 0;
    if (!readValue(f.get(), version) || version != kVersion)
        return false;
    std::uint64_t count = 0;
    if (!readValue(f.get(), count) || count != params.size())
        return false;
    for (const auto &p : params) {
        std::uint64_t len = 0;
        if (!readValue(f.get(), len) || len != p.value->size())
            return false;
        if (len && std::fread(p.value->data(), sizeof(float), len,
                              f.get()) != len)
            return false;
    }
    return true;
}

} // namespace nn
} // namespace fabnet
