/**
 * @file basic_layers.h
 * LayerNorm, activations and the FNet-style 2-D Fourier mixing layer.
 */
#ifndef FABNET_NN_BASIC_LAYERS_H
#define FABNET_NN_BASIC_LAYERS_H

#include <vector>

#include "nn/layer.h"

namespace fabnet {
namespace nn {

/** Layer normalisation over the last dimension, with affine params. */
class LayerNorm : public Layer
{
  public:
    explicit LayerNorm(std::size_t dim, float eps = 1e-5f);

    Tensor forward(const Tensor &x) override;

    /**
     * Ragged inference forward: normalises the valid row spans only
     * (row-parallel - LayerNorm rows are independent and each row's
     * mean/var/affine sweep keeps forward()'s exact j-order), skipping
     * both the padded rows and the xhat/inv-std training caches
     * forward() maintains. Valid rows bitwise equal forward(); padded
     * rows are zero.
     */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    /**
     * Parallel backward: dL/dx row-parallel (per-row sums recomputed
     * in the reference's j order), dL/dgamma and dL/dbeta
     * owner-parallel over columns with ascending-row accumulation
     * (runtime/reduce.h). Bitwise identical to backwardReference at
     * any thread count.
     */
    Tensor backward(const Tensor &grad_out) override;

    /** Seed serial backward (single row-outer loop), parity baseline. */
    Tensor backwardReference(const Tensor &grad_out) override;

    void collectParams(std::vector<ParamRef> &out) override;

  private:
    std::size_t dim_;
    float eps_;
    std::vector<float> gamma_, beta_;
    std::vector<float> ggamma_, gbeta_;
    Tensor cached_xhat_;          // normalised input
    std::vector<float> inv_std_;  // per-row 1/sigma
};

/** ReLU activation. */
class Relu : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;

    /** Ragged forward: elementwise over valid row spans only, no
     *  input cache. Valid rows bitwise equal forward(); padded 0. */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor cached_input_;
};

/** GELU activation (tanh approximation). */
class Gelu : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;

    /** Ragged forward: the tanh pipeline runs on valid row spans
     *  only, no input cache. Valid rows bitwise equal forward();
     *  padded rows are zero. */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    Tensor backward(const Tensor &grad_out) override;

  private:
    Tensor cached_input_;
};

/**
 * FNet 2-D Fourier token mixer: y = Re(FFT_seq(FFT_hidden(x))).
 * Parameter-free; the backward pass uses the symmetry of the DFT
 * matrix (adjoint of Re(F x) is Re(F g) on real inputs).
 */
class FourierMix : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;

    /** The sequence-dim FFT is global: no masked form exists. */
    bool supportsMasking() const override { return false; }
};

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_BASIC_LAYERS_H
