/**
 * @file dense.h
 * Dense (fully-connected) layer and its butterfly-factorised drop-in
 * replacement. Both map the last dimension of a [b, t, in] tensor to
 * [b, t, out]; which one a model uses is exactly the algorithmic knob
 * the paper turns (vanilla Transformer vs FABNet).
 */
#ifndef FABNET_NN_DENSE_H
#define FABNET_NN_DENSE_H

#include <vector>

#include "butterfly/butterfly.h"
#include "nn/layer.h"
#include "tensor/rng.h"

namespace fabnet {
namespace nn {

/** Standard dense layer y = x W^T + b with W of shape [out, in]. */
class Dense : public Layer
{
  public:
    Dense(std::size_t in_features, std::size_t out_features, Rng &rng);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    void collectParams(std::vector<ParamRef> &out) override;

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }

    std::vector<float> &weight() { return w_; }
    std::vector<float> &bias() { return b_; }

  private:
    std::size_t in_, out_;
    std::vector<float> w_, b_;
    std::vector<float> gw_, gb_;
    Tensor cached_input_;
};

/**
 * Butterfly-factorised linear layer (the FABNet replacement for every
 * dense projection). Parameter count O(n log n) instead of O(n^2).
 */
class ButterflyDense : public Layer
{
  public:
    ButterflyDense(std::size_t in_features, std::size_t out_features,
                   Rng &rng);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    void collectParams(std::vector<ParamRef> &out) override;

    const ButterflyLinear &op() const { return op_; }
    ButterflyLinear &op() { return op_; }

  private:
    ButterflyLinear op_;
    std::vector<std::vector<float>> grad_cores_;
    std::vector<float> grad_bias_;
    std::vector<float> caches_; // per-row activation caches
    std::vector<std::size_t> in_shape_;
    std::size_t rows_ = 0;
};

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_DENSE_H
