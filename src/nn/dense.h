/**
 * @file dense.h
 * Dense (fully-connected) layer and its butterfly-factorised drop-in
 * replacement. Both map the last dimension of a [b, t, in] tensor to
 * [b, t, out]; which one a model uses is exactly the algorithmic knob
 * the paper turns (vanilla Transformer vs FABNet).
 */
#ifndef FABNET_NN_DENSE_H
#define FABNET_NN_DENSE_H

#include <cstdint>
#include <vector>

#include "butterfly/butterfly.h"
#include "butterfly/qbutterfly.h"
#include "nn/layer.h"
#include "tensor/rng.h"

namespace fabnet {
namespace nn {

/** Standard dense layer y = x W^T + b with W of shape [out, in]. */
class Dense : public Layer
{
  public:
    Dense(std::size_t in_features, std::size_t out_features, Rng &rng);

    Tensor forward(const Tensor &x) override;

    /**
     * Ragged inference forward: the W^T panel is still built once, but
     * the GEMM sweeps only the valid row spans (right-padding keeps
     * each sequence's rows contiguous, so no gather/scatter is needed;
     * see docs/ARCHITECTURE.md for why in-place spans beat packing
     * here). Valid rows bitwise equal forward(); padded rows are zero.
     */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    /**
     * Parallel backward: dL/dx row-parallel (disjoint rows), dL/dW and
     * dL/db owner-parallel over output features with the row reduction
     * kept in ascending order (runtime/reduce.h). Bitwise identical to
     * backwardReference at any thread count.
     */
    Tensor backward(const Tensor &grad_out) override;

    /** Seed serial backward (row-outer scalar loops), parity baseline. */
    Tensor backwardReference(const Tensor &grad_out) override;

    void collectParams(std::vector<ParamRef> &out) override;
    std::unique_ptr<Layer> quantizedReplacement(QuantKind kind) const
        override;

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }

    std::vector<float> &weight() { return w_; }
    std::vector<float> &bias() { return b_; }
    const std::vector<float> &weight() const { return w_; }
    const std::vector<float> &bias() const { return b_; }

  private:
    std::size_t in_, out_;
    std::vector<float> w_, b_;
    std::vector<float> gw_, gb_;
    Tensor cached_input_;
};

/**
 * Butterfly-factorised linear layer (the FABNet replacement for every
 * dense projection). Parameter count O(n log n) instead of O(n^2).
 */
class ButterflyDense : public Layer
{
  public:
    ButterflyDense(std::size_t in_features, std::size_t out_features,
                   Rng &rng);

    Tensor forward(const Tensor &x) override;

    /**
     * Ragged inference forward: packed-gather execution - valid rows
     * are gathered contiguous, run through the stage-major batched
     * kernel (ButterflyLinear::applyToRows) in full vector blocks,
     * and scattered back (see packedGatherApply in dense.cc for the
     * bench-backed rationale vs in-place spans). Being inference-only
     * it also skips the per-row activation cache forward() allocates
     * for training. Valid rows bitwise equal forward(); padded rows
     * are zero.
     */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    /**
     * Parallel backward (ButterflyLinear::backwardBatch): a row-
     * parallel pass records per-row stage-gradient trajectories and
     * writes dL/dx, then bias/core-weight grads are owner-parallelised
     * with ascending-row reductions. Bitwise identical to
     * backwardReference at any thread count.
     */
    Tensor backward(const Tensor &grad_out) override;

    /** Seed serial backward (per-row ButterflyLinear::backward). */
    Tensor backwardReference(const Tensor &grad_out) override;

    void collectParams(std::vector<ParamRef> &out) override;
    std::unique_ptr<Layer> quantizedReplacement(QuantKind kind) const
        override;

    const ButterflyLinear &op() const { return op_; }
    ButterflyLinear &op() { return op_; }

  private:
    ButterflyLinear op_;
    std::vector<std::vector<float>> grad_cores_;
    std::vector<float> grad_bias_;
    std::vector<float> caches_;  // per-row activation caches
    std::vector<float> gcaches_; // per-row stage-gradient trajectories
    std::vector<std::size_t> in_shape_;
    std::size_t rows_ = 0;
};

/**
 * Inference-only reduced-precision Dense, built from a trained Dense.
 *
 * int8: weights quantised per output feature at construction
 * (symmetric, runtime/kernels.h semantics) and held pre-packed for the
 * int8 GEMM panel - unlike fp32 Dense there is no per-call weight
 * prep. Activations are quantised dynamically per row; accumulation is
 * exact int32; outputs dequantise to fp32 with the fp32 bias added as
 * a separate rounded op.
 *
 * fp16: weights and bias rounded through binary16 at construction and
 * held as one shared widened/transposed fp32 panel; activations are
 * rounded through binary16 per call, accumulation runs in fp32 and
 * outputs round through binary16 (gemmRowsF16).
 *
 * Both modes are bitwise thread-count-invariant; int8 additionally
 * matches the scalar reference GEMM exactly. backward() throws -
 * quantized layers do not train.
 */
class QuantizedDense : public Layer
{
  public:
    QuantizedDense(const Dense &dense, QuantKind kind);

    Tensor forward(const Tensor &x) override;

    /** Ragged forward: per-row activation quantisation (int8) /
     *  binary16 rounding (fp16) and the GEMM panel run over valid row
     *  spans only. Valid rows bitwise equal forward(); padded rows 0. */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    Tensor backward(const Tensor &grad_out) override;

    QuantKind kind() const { return kind_; }
    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }

    /** Per-output-feature int8 weight scales (empty in fp16 mode). */
    const std::vector<float> &weightScales() const { return wscale_; }

  private:
    std::size_t in_, out_;
    QuantKind kind_;
    // int8 mode: W^T quantised and packed for gemmRowsInt8.
    std::vector<std::int16_t> bp_;
    std::vector<float> wscale_;
    std::vector<float> bias_;
    // fp16 mode: binary16-rounded weights, widened once to fp32.
    std::vector<float> wt_h_;   ///< [in, out] fp16-representable floats
    std::vector<float> bias_h_; ///< fp16-representable floats
};

/** Inference-only quantized butterfly linear layer (drop-in for
 *  ButterflyDense; same int8/fp16 contracts via qbutterfly.h). */
class QuantizedButterflyDense : public Layer
{
  public:
    QuantizedButterflyDense(const ButterflyDense &dense, QuantKind kind);

    Tensor forward(const Tensor &x) override;

    /** Ragged forward: packed-gather into the stage-major quantized
     *  kernel (QuantizedButterflyLinear::applyToRows, same scheme as
     *  ButterflyDense::forwardRows); padded rows zero. */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    Tensor backward(const Tensor &grad_out) override;

    QuantKind kind() const { return op_.kind(); }
    const QuantizedButterflyLinear &op() const { return op_; }

  private:
    QuantizedButterflyLinear op_;
};

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_DENSE_H
