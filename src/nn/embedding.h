/**
 * @file embedding.h
 * Token + learned positional embedding, and the pooled classifier head.
 */
#ifndef FABNET_NN_EMBEDDING_H
#define FABNET_NN_EMBEDDING_H

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/rowset.h"
#include "tensor/rng.h"

namespace fabnet {
namespace nn {

/** Token embedding with learned positional embedding added. */
class Embedding
{
  public:
    Embedding(std::size_t vocab, std::size_t max_seq, std::size_t d_model,
              Rng &rng);

    /** tokens is a flat [batch*seq] id array. */
    Tensor forward(const std::vector<int> &tokens, std::size_t batch,
                   std::size_t seq);

    /**
     * Ragged inference embedding: looks up token + positional rows for
     * the valid positions only, leaving padded rows zero (the ragged
     * chain's invariant) - pad tokens are never embedded, though every
     * id (pads included) is still range-checked so ragged and dense
     * execution throw identically. Valid rows bitwise equal forward();
     * inference-only (no token cache for backward()).
     */
    Tensor forwardRows(const std::vector<int> &tokens,
                       const nn::RowSet &rows);

    /**
     * One decode step: embed tokens[b] at absolute position
     * positions[b], returning [n, 1, d]. Each row is the identical
     * per-element tok + pos sum of forward()'s (b, positions[b]) row,
     * so step rows bitwise match a full-recompute embedding.
     * Inference-only (no token cache for backward()).
     */
    Tensor forwardStep(const std::vector<int> &tokens,
                       const std::vector<std::size_t> &positions);

    /**
     * Accumulate gradients into the embedding tables. The token-table
     * update is a scatter-add (one token id can appear in many rows),
     * so the parallel path is owner-parallel over hidden columns
     * (runtime/reduce.h): each task owns a column range of BOTH tables
     * and walks the positions in ascending order - bitwise identical
     * to backwardReference at any thread count.
     */
    void backward(const Tensor &grad_out);

    /** Seed serial backward (position-outer loops), parity baseline. */
    void backwardReference(const Tensor &grad_out);

    void collectParams(std::vector<ParamRef> &out);

    std::size_t vocab() const { return vocab_; }
    std::size_t dModel() const { return d_; }

  private:
    std::size_t vocab_, max_seq_, d_;
    std::vector<float> tok_, pos_;
    std::vector<float> gtok_, gpos_;
    std::vector<int> cached_tokens_;
    std::size_t b_ = 0, t_ = 0;
};

/** Mean-pool over the sequence followed by a dense classifier. */
class MeanPoolClassifier
{
  public:
    MeanPoolClassifier(std::size_t d_model, std::size_t classes, Rng &rng);

    /** [b, t, d] -> logits [b, classes]. */
    Tensor forward(const Tensor &x);

    /**
     * Masked pooling for right-padded batches: sequence b is averaged
     * over its first lens[b] rows only (divided by lens[b], not t), so
     * the pooled vector - and the logits row - match an unpadded
     * length-lens[b] forward bit for bit. Inference-only: does not
     * fill the backward() caches coherently.
     */
    Tensor forwardMasked(const Tensor &x,
                         const std::vector<std::size_t> &lens);

    /**
     * dL/dlogits [b, classes] -> dL/dx [b, t, d]. Parallel: dL/dx
     * rows per batch element (disjoint), classifier dL/dW and dL/db
     * owner-parallel over classes with ascending-batch accumulation.
     * Bitwise identical to backwardReference at any thread count.
     */
    Tensor backward(const Tensor &grad_logits);

    /** Seed serial backward, parity baseline. */
    Tensor backwardReference(const Tensor &grad_logits);

    void collectParams(std::vector<ParamRef> &out);

  private:
    /** cached_pooled_ -> logits [b, classes] (shared by both forwards). */
    Tensor projectPooled() const;

    std::size_t d_, classes_;
    std::vector<float> w_, b_;
    std::vector<float> gw_, gb_;
    Tensor cached_pooled_; // [b, d]
    std::size_t batch_ = 0, t_ = 0;
};

/**
 * Softmax cross-entropy loss.
 * @return mean loss over the batch; @p grad_logits receives dL/dlogits.
 */
float softmaxCrossEntropy(const Tensor &logits,
                          const std::vector<int> &labels,
                          Tensor &grad_logits);

/** Argmax predictions of a [b, classes] logits tensor. */
std::vector<int> argmaxRows(const Tensor &logits);

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_EMBEDDING_H
