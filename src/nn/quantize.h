/**
 * @file quantize.h
 * fp16 weight quantisation. The accelerator stores all weights and
 * activations as 16-bit floats (Sec. VI-A); quantising a trained
 * model's parameters through Half and re-evaluating bounds the
 * deployment-time accuracy impact.
 */
#ifndef FABNET_NN_QUANTIZE_H
#define FABNET_NN_QUANTIZE_H

#include <vector>

#include "nn/layer.h"
#include "tensor/half.h"

namespace fabnet {
namespace nn {

/** Round every parameter to the nearest fp16 value, in place. */
inline void
quantizeParamsToHalf(const std::vector<ParamRef> &params)
{
    for (const auto &p : params)
        for (float &w : *p.value)
            w = roundToHalf(w);
}

/** Largest absolute change quantisation would cause (dry run). */
inline float
maxQuantizationError(const std::vector<ParamRef> &params)
{
    float m = 0.0f;
    for (const auto &p : params)
        for (float w : *p.value)
            m = std::max(m, std::abs(w - roundToHalf(w)));
    return m;
}

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_QUANTIZE_H
