/**
 * @file quantize.h
 * Model-level quantisation semantics: fp16 weight rounding (the
 * accelerator stores all weights and activations as 16-bit floats,
 * Sec. VI-A) and the symmetric saturating int8 scheme the int8 runtime
 * kernels compute in.
 *
 * The int8 helpers here delegate to the same runtime/kernels.h
 * primitives the GEMM/butterfly kernels use, so the round-trip and
 * saturation behaviour the golden tests pin down
 * (tests/quantize_golden_test.cpp) is, by construction, the behaviour
 * of every int8 datapath in the repo:
 *
 *   scale        = max|x| / 127          (1.0 when all-zero)
 *   q            = clamp(rne(x * (1/scale)), -127, 127)
 *   dequant(q)   = q * scale
 *   |x - dq|     <= scale/2 (+1 ulp) for in-range x; out-of-range x
 *                  saturates to +/-127 * scale (never -128: the grid
 *                  is symmetric, negation is exact)
 */
#ifndef FABNET_NN_QUANTIZE_H
#define FABNET_NN_QUANTIZE_H

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "runtime/kernels.h"
#include "tensor/half.h"

namespace fabnet {
namespace nn {

/** Round every parameter to the nearest fp16 value, in place. */
inline void
quantizeParamsToHalf(const std::vector<ParamRef> &params)
{
    for (const auto &p : params)
        for (float &w : *p.value)
            w = roundToHalf(w);
}

/** Largest absolute change quantisation would cause (dry run). */
inline float
maxQuantizationError(const std::vector<ParamRef> &params)
{
    float m = 0.0f;
    for (const auto &p : params)
        for (float w : *p.value)
            m = std::max(m, std::abs(w - roundToHalf(w)));
    return m;
}

/** A vector quantised to int8 with one shared symmetric scale. */
struct Int8Vector
{
    std::vector<std::int8_t> q;
    float scale = 1.0f;
};

/** Symmetric per-tensor int8 quantisation of @p values. */
inline Int8Vector
quantizeInt8(const std::vector<float> &values)
{
    Int8Vector out;
    out.q.resize(values.size());
    out.scale = runtime::int8Scale(
        runtime::maxAbsRow(values.data(), values.size()));
    runtime::quantizeInt8Row(values.data(), out.q.data(), values.size(),
                             out.scale);
    return out;
}

/** Dequantise back to fp32. */
inline std::vector<float>
dequantizeInt8(const Int8Vector &v)
{
    std::vector<float> out(v.q.size());
    for (std::size_t i = 0; i < v.q.size(); ++i)
        out[i] = static_cast<float>(v.q[i]) * v.scale;
    return out;
}

/** Largest absolute int8 round-trip error over @p values (dry run). */
inline float
maxInt8QuantizationError(const std::vector<float> &values)
{
    const Int8Vector v = quantizeInt8(values);
    float m = 0.0f;
    for (std::size_t i = 0; i < values.size(); ++i)
        m = std::max(m, std::abs(values[i] -
                                 static_cast<float>(v.q[i]) * v.scale));
    return m;
}

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_QUANTIZE_H
