/**
 * @file optimizer.h
 * SGD and Adam optimisers over flat parameter lists.
 */
#ifndef FABNET_NN_OPTIMIZER_H
#define FABNET_NN_OPTIMIZER_H

#include <vector>

#include "nn/layer.h"

namespace fabnet {
namespace nn {

/** Plain SGD with optional momentum. */
class Sgd
{
  public:
    explicit Sgd(std::vector<ParamRef> params, float lr = 0.01f,
                 float momentum = 0.0f);

    /** Apply one update using the accumulated gradients, then zero them. */
    void step();

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }

  private:
    std::vector<ParamRef> params_;
    float lr_, momentum_;
    std::vector<std::vector<float>> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam
{
  public:
    explicit Adam(std::vector<ParamRef> params, float lr = 1e-3f,
                  float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f);

    /** Apply one update using the accumulated gradients, then zero them. */
    void step();

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }
    long stepCount() const { return t_; }

  private:
    std::vector<ParamRef> params_;
    float lr_, beta1_, beta2_, eps_;
    long t_ = 0;
    std::vector<std::vector<float>> m_, v_;
};

/**
 * Global gradient-norm clipping; returns the pre-clip norm. The norm
 * is computed with the deterministic chunked tree reduction
 * (runtime/reduce.h) and the scaling sweep is elementwise-parallel,
 * so the clipped gradients are bitwise identical at any thread count.
 */
float clipGradNorm(const std::vector<ParamRef> &params, float max_norm);

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_OPTIMIZER_H
