#include "nn/gradcheck.h"

#include <cmath>
#include <random>

namespace fabnet {
namespace nn {

namespace {

/** Deterministic probe tensor matching @p shape. */
Tensor
makeProbe(const std::vector<std::size_t> &shape, unsigned seed)
{
    Tensor probe(shape);
    std::mt19937 gen(seed);
    std::normal_distribution<float> d(0.0f, 1.0f);
    for (float &v : probe.raw())
        v = d(gen);
    return probe;
}

float
dot(const Tensor &a, const Tensor &b)
{
    double acc = 0.0;
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(pa[i]) * pb[i];
    return static_cast<float>(acc);
}

void
updateErrors(GradCheckResult &res, float analytic, float numeric,
             float tol)
{
    const float abs_err = std::fabs(analytic - numeric);
    const float denom =
        std::max({std::fabs(analytic), std::fabs(numeric), 1e-4f});
    const float rel_err = abs_err / denom;
    res.max_abs_error = std::max(res.max_abs_error, abs_err);
    // Only count the relative error when the absolute error exceeds
    // the fp32 finite-difference noise floor (loss values of O(10)
    // evaluated at eps ~ 1e-3 carry ~5e-4 of derivative noise).
    if (abs_err > tol * 0.15f)
        res.max_rel_error = std::max(res.max_rel_error, rel_err);
}

} // namespace

std::vector<GradSweepShape>
gradSweepShapes(unsigned seed, std::size_t extra)
{
    std::vector<GradSweepShape> shapes = {
        {1, 1, 2, 2},   // degenerate
        {2, 3, 6, 10},  // pads to core 8, two butterfly cores
        {1, 5, 7, 7},   // odd square
        {3, 2, 16, 16}, // exact power of two
        {2, 4, 12, 5},  // truncated output
    };
    std::mt19937 gen(seed);
    std::uniform_int_distribution<std::size_t> b(1, 3), t(1, 9),
        f(2, 40);
    for (std::size_t i = 0; i < extra; ++i)
        shapes.push_back({b(gen), t(gen), f(gen), f(gen)});
    return shapes;
}

Tensor
makeGradCheckInput(const GradSweepShape &s, unsigned seed)
{
    return makeProbe({s.batch, s.seq, s.features}, seed);
}

GradCheckResult
checkInputGrad(Layer &layer, const Tensor &x, unsigned seed, float eps,
               float tol)
{
    Tensor y = layer.forward(x);
    const Tensor probe = makeProbe(y.shape(), seed);

    std::vector<ParamRef> params;
    layer.collectParams(params);
    zeroGrads(params);
    Tensor analytic = layer.backward(probe);

    GradCheckResult res;
    Tensor xp = x;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float orig = xp.raw()[i];
        xp.raw()[i] = orig + eps;
        const float lp = dot(layer.forward(xp), probe);
        xp.raw()[i] = orig - eps;
        const float lm = dot(layer.forward(xp), probe);
        xp.raw()[i] = orig;
        const float numeric = (lp - lm) / (2.0f * eps);
        updateErrors(res, analytic.raw()[i], numeric, tol);
    }
    res.passed = res.max_rel_error <= tol;
    return res;
}

GradCheckResult
checkParamGrad(Layer &layer, const Tensor &x, unsigned seed, float eps,
               float tol, std::size_t max_coords)
{
    Tensor y = layer.forward(x);
    const Tensor probe = makeProbe(y.shape(), seed);

    std::vector<ParamRef> params;
    layer.collectParams(params);
    zeroGrads(params);
    layer.backward(probe);

    // Snapshot analytic gradients before we perturb anything.
    std::vector<std::vector<float>> analytic;
    analytic.reserve(params.size());
    for (const auto &p : params)
        analytic.push_back(*p.grad);

    GradCheckResult res;
    std::mt19937 gen(seed + 1);
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
        auto &w = *params[pi].value;
        const std::size_t n = w.size();
        const std::size_t count = std::min(max_coords, n);
        std::uniform_int_distribution<std::size_t> pick(0, n - 1);
        for (std::size_t c = 0; c < count; ++c) {
            const std::size_t j = (n <= max_coords) ? c : pick(gen);
            const float orig = w[j];
            w[j] = orig + eps;
            const float lp = dot(layer.forward(x), probe);
            w[j] = orig - eps;
            const float lm = dot(layer.forward(x), probe);
            w[j] = orig;
            const float numeric = (lp - lm) / (2.0f * eps);
            updateErrors(res, analytic[pi][j], numeric, tol);
        }
    }
    res.passed = res.max_rel_error <= tol;
    return res;
}

} // namespace nn
} // namespace fabnet
