#include "nn/embedding.h"

#include <cmath>
#include <stdexcept>

#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "runtime/reduce.h"
#include "runtime/workspace.h"

namespace fabnet {
namespace nn {

Embedding::Embedding(std::size_t vocab, std::size_t max_seq,
                     std::size_t d_model, Rng &rng)
    : vocab_(vocab), max_seq_(max_seq), d_(d_model), tok_(vocab * d_model),
      pos_(max_seq * d_model), gtok_(vocab * d_model, 0.0f),
      gpos_(max_seq * d_model, 0.0f)
{
    const float stddev = 0.02f;
    for (float &v : tok_)
        v = rng.normal(stddev);
    for (float &v : pos_)
        v = rng.normal(stddev);
}

Tensor
Embedding::forward(const std::vector<int> &tokens, std::size_t batch,
                   std::size_t seq)
{
    if (tokens.size() != batch * seq)
        throw std::invalid_argument("Embedding: token count mismatch");
    if (seq > max_seq_)
        throw std::invalid_argument("Embedding: sequence too long");
    cached_tokens_ = tokens;
    b_ = batch;
    t_ = seq;

    Tensor y = Tensor::zeros(batch, seq, d_);
    float *py = y.data();
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t t = 0; t < seq; ++t) {
            const int id = tokens[b * seq + t];
            if (id < 0 || static_cast<std::size_t>(id) >= vocab_)
                throw std::out_of_range("Embedding: token id out of range");
            const float *te = &tok_[static_cast<std::size_t>(id) * d_];
            const float *pe = &pos_[t * d_];
            float *row = py + (b * seq + t) * d_;
            for (std::size_t j = 0; j < d_; ++j)
                row[j] = te[j] + pe[j];
        }
    }
    return y;
}

Tensor
Embedding::forwardRows(const std::vector<int> &tokens,
                       const nn::RowSet &rows)
{
    const std::size_t batch = rows.batch();
    const std::size_t seq = rows.seq();
    if (tokens.size() != batch * seq)
        throw std::invalid_argument("Embedding: token count mismatch");
    if (seq > max_seq_)
        throw std::invalid_argument("Embedding: sequence too long");

    // Validate ALL positions first - including pads, whose embedding
    // work is skipped but whose ids forward() would have range-checked
    // while embedding them. The cheap scan keeps ragged and dense
    // execution drop-in equivalent (same logits, same throws).
    for (const int id : tokens)
        if (id < 0 || static_cast<std::size_t>(id) >= vocab_)
            throw std::out_of_range("Embedding: token id out of range");

    Tensor y = Tensor::zeros(batch, seq, d_);
    float *py = y.data();
    nn::forEachRowSpan(rows, 32, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const std::size_t t = r % seq;
            const int id = tokens[r];
            const float *te = &tok_[static_cast<std::size_t>(id) * d_];
            const float *pe = &pos_[t * d_];
            float *row = py + r * d_;
            for (std::size_t j = 0; j < d_; ++j)
                row[j] = te[j] + pe[j];
        }
    });
    return y;
}

Tensor
Embedding::forwardStep(const std::vector<int> &tokens,
                       const std::vector<std::size_t> &positions)
{
    const std::size_t n = tokens.size();
    if (positions.size() != n)
        throw std::invalid_argument("Embedding::forwardStep: position count");

    Tensor y = Tensor::zeros(n, 1, d_);
    float *py = y.data();
    for (std::size_t b = 0; b < n; ++b) {
        const int id = tokens[b];
        if (id < 0 || static_cast<std::size_t>(id) >= vocab_)
            throw std::out_of_range("Embedding: token id out of range");
        if (positions[b] >= max_seq_)
            throw std::invalid_argument("Embedding: sequence too long");
        const float *te = &tok_[static_cast<std::size_t>(id) * d_];
        const float *pe = &pos_[positions[b] * d_];
        float *row = py + b * d_;
        for (std::size_t j = 0; j < d_; ++j)
            row[j] = te[j] + pe[j];
    }
    return y;
}

void
Embedding::backward(const Tensor &grad_out)
{
    const float *pg = grad_out.data();
    // Owner-parallel over hidden columns: task [j0, j1) owns those
    // columns of gtok_ AND gpos_, walking (b, t) in the reference's
    // ascending order, so the token scatter-add never races and every
    // element keeps its serial accumulation chain.
    runtime::parallelFor(0, d_, runtime::ownerGrain(d_, 16),
                         [&](std::size_t j0, std::size_t j1) {
        for (std::size_t b = 0; b < b_; ++b) {
            for (std::size_t t = 0; t < t_; ++t) {
                const int id = cached_tokens_[b * t_ + t];
                float *gt = &gtok_[static_cast<std::size_t>(id) * d_];
                float *gp = &gpos_[t * d_];
                const float *row = pg + (b * t_ + t) * d_;
                for (std::size_t j = j0; j < j1; ++j) {
                    gt[j] += row[j];
                    gp[j] += row[j];
                }
            }
        }
    });
}

void
Embedding::backwardReference(const Tensor &grad_out)
{
    const float *pg = grad_out.data();
    for (std::size_t b = 0; b < b_; ++b) {
        for (std::size_t t = 0; t < t_; ++t) {
            const int id = cached_tokens_[b * t_ + t];
            float *gt = &gtok_[static_cast<std::size_t>(id) * d_];
            float *gp = &gpos_[t * d_];
            const float *row = pg + (b * t_ + t) * d_;
            for (std::size_t j = 0; j < d_; ++j) {
                gt[j] += row[j];
                gp[j] += row[j];
            }
        }
    }
}

void
Embedding::collectParams(std::vector<ParamRef> &out)
{
    out.push_back({&tok_, &gtok_});
    out.push_back({&pos_, &gpos_});
}

MeanPoolClassifier::MeanPoolClassifier(std::size_t d_model,
                                       std::size_t classes, Rng &rng)
    : d_(d_model), classes_(classes), w_(classes * d_model),
      b_(classes, 0.0f), gw_(classes * d_model, 0.0f), gb_(classes, 0.0f)
{
    const float stddev = std::sqrt(2.0f / static_cast<float>(d_model));
    for (float &v : w_)
        v = rng.normal(stddev);
}

Tensor
MeanPoolClassifier::projectPooled() const
{
    Tensor logits = Tensor::zeros(batch_, classes_);
    for (std::size_t b = 0; b < batch_; ++b) {
        const float *pool = cached_pooled_.data() + b * d_;
        float *lr = logits.data() + b * classes_;
        for (std::size_t c = 0; c < classes_; ++c) {
            const float *wr = &w_[c * d_];
            float acc = b_[c];
            for (std::size_t j = 0; j < d_; ++j)
                acc += wr[j] * pool[j];
            lr[c] = acc;
        }
    }
    return logits;
}

Tensor
MeanPoolClassifier::forward(const Tensor &x)
{
    if (x.rank() != 3 || x.dim(2) != d_)
        throw std::invalid_argument("MeanPoolClassifier: [b,t,d] required");
    batch_ = x.dim(0);
    t_ = x.dim(1);

    cached_pooled_ = Tensor::zeros(batch_, d_);
    const float inv_t = 1.0f / static_cast<float>(t_);
    for (std::size_t b = 0; b < batch_; ++b) {
        float *pool = cached_pooled_.data() + b * d_;
        for (std::size_t t = 0; t < t_; ++t) {
            const float *row = x.data() + (b * t_ + t) * d_;
            for (std::size_t j = 0; j < d_; ++j)
                pool[j] += row[j] * inv_t;
        }
    }

    return projectPooled();
}

Tensor
MeanPoolClassifier::forwardMasked(const Tensor &x,
                                  const std::vector<std::size_t> &lens)
{
    if (x.rank() != 3 || x.dim(2) != d_)
        throw std::invalid_argument("MeanPoolClassifier: [b,t,d] required");
    if (lens.size() != x.dim(0))
        throw std::invalid_argument(
            "MeanPoolClassifier::forwardMasked: lens size != batch");
    batch_ = x.dim(0);
    t_ = x.dim(1);

    // Same accumulation order as forward(), with the sum and the
    // divisor restricted to the real prefix: bitwise equal to pooling
    // an unpadded length-lens[b] input.
    cached_pooled_ = Tensor::zeros(batch_, d_);
    for (std::size_t b = 0; b < batch_; ++b) {
        const std::size_t valid = lens[b];
        if (valid == 0 || valid > t_)
            throw std::invalid_argument(
                "MeanPoolClassifier::forwardMasked: len out of [1, t]");
        const float inv = 1.0f / static_cast<float>(valid);
        float *pool = cached_pooled_.data() + b * d_;
        for (std::size_t t = 0; t < valid; ++t) {
            const float *row = x.data() + (b * t_ + t) * d_;
            for (std::size_t j = 0; j < d_; ++j)
                pool[j] += row[j] * inv;
        }
    }

    return projectPooled();
}

namespace {

/** Workspace tag for the per-thread pooled-gradient buffer. */
struct PoolGradWs;

} // namespace

Tensor
MeanPoolClassifier::backward(const Tensor &grad_logits)
{
    Tensor gx = Tensor::zeros(batch_, t_, d_);
    const float inv_t = 1.0f / static_cast<float>(t_);
    const float *pgl = grad_logits.data();
    float *pgx = gx.data();

    // dL/dx: batch elements are independent; the per-batch pooled
    // gradient is recomputed in the reference's ascending-c order
    // into a per-thread buffer.
    runtime::parallelFor(0, batch_, 1, [&](std::size_t b0,
                                           std::size_t b1) {
        float *gpool = runtime::threadWorkspace<PoolGradWs>(d_);
        for (std::size_t b = b0; b < b1; ++b) {
            const float *gl = pgl + b * classes_;
            std::fill(gpool, gpool + d_, 0.0f);
            for (std::size_t c = 0; c < classes_; ++c) {
                const float g = gl[c];
                const float *wr = &w_[c * d_];
                for (std::size_t j = 0; j < d_; ++j)
                    gpool[j] = runtime::madd(g, wr[j], gpool[j]);
            }
            for (std::size_t t = 0; t < t_; ++t) {
                float *row = pgx + (b * t_ + t) * d_;
                for (std::size_t j = 0; j < d_; ++j)
                    row[j] = gpool[j] * inv_t;
            }
        }
    });

    // dL/dW, dL/db: owner-parallel over classes, batch ascending
    // (runtime/reduce.h).
    runtime::parallelFor(0, classes_, 1, [&](std::size_t c0,
                                             std::size_t c1) {
        for (std::size_t b = 0; b < batch_; ++b) {
            const float *gl = pgl + b * classes_;
            const float *pool = cached_pooled_.data() + b * d_;
            for (std::size_t c = c0; c < c1; ++c) {
                const float g = gl[c];
                gb_[c] += g;
                float *gwr = &gw_[c * d_];
                for (std::size_t j = 0; j < d_; ++j)
                    gwr[j] = runtime::madd(g, pool[j], gwr[j]);
            }
        }
    });
    return gx;
}

Tensor
MeanPoolClassifier::backwardReference(const Tensor &grad_logits)
{
    Tensor gx = Tensor::zeros(batch_, t_, d_);
    const float inv_t = 1.0f / static_cast<float>(t_);
    std::vector<float> gpool(d_);
    for (std::size_t b = 0; b < batch_; ++b) {
        const float *gl = grad_logits.data() + b * classes_;
        const float *pool = cached_pooled_.data() + b * d_;
        std::fill(gpool.begin(), gpool.end(), 0.0f);
        for (std::size_t c = 0; c < classes_; ++c) {
            const float g = gl[c];
            gb_[c] += g;
            float *gwr = &gw_[c * d_];
            const float *wr = &w_[c * d_];
            for (std::size_t j = 0; j < d_; ++j) {
                gwr[j] = runtime::madd(g, pool[j], gwr[j]);
                gpool[j] = runtime::madd(g, wr[j], gpool[j]);
            }
        }
        for (std::size_t t = 0; t < t_; ++t) {
            float *row = gx.data() + (b * t_ + t) * d_;
            for (std::size_t j = 0; j < d_; ++j)
                row[j] = gpool[j] * inv_t;
        }
    }
    return gx;
}

void
MeanPoolClassifier::collectParams(std::vector<ParamRef> &out)
{
    out.push_back({&w_, &gw_});
    out.push_back({&b_, &gb_});
}

float
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels,
                    Tensor &grad_logits)
{
    const std::size_t batch = logits.dim(0);
    const std::size_t classes = logits.dim(1);
    if (labels.size() != batch)
        throw std::invalid_argument("softmaxCrossEntropy: label count");

    grad_logits = Tensor::zeros(batch, classes);
    double loss = 0.0;
    const float inv_b = 1.0f / static_cast<float>(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        const float *lr = logits.data() + b * classes;
        float *gr = grad_logits.data() + b * classes;
        float mx = lr[0];
        for (std::size_t c = 1; c < classes; ++c)
            mx = std::max(mx, lr[c]);
        double denom = 0.0;
        for (std::size_t c = 0; c < classes; ++c)
            denom += std::exp(static_cast<double>(lr[c] - mx));
        const int y = labels[b];
        loss -= (static_cast<double>(lr[y] - mx) - std::log(denom));
        for (std::size_t c = 0; c < classes; ++c) {
            const float p = static_cast<float>(
                std::exp(static_cast<double>(lr[c] - mx)) / denom);
            gr[c] = (p - (static_cast<int>(c) == y ? 1.0f : 0.0f)) * inv_b;
        }
    }
    return static_cast<float>(loss / batch);
}

std::vector<int>
argmaxRows(const Tensor &logits)
{
    const std::size_t batch = logits.dim(0);
    const std::size_t classes = logits.dim(1);
    std::vector<int> out(batch, 0);
    for (std::size_t b = 0; b < batch; ++b) {
        const float *lr = logits.data() + b * classes;
        int best = 0;
        for (std::size_t c = 1; c < classes; ++c)
            if (lr[c] > lr[best])
                best = static_cast<int>(c);
        out[b] = best;
    }
    return out;
}

} // namespace nn
} // namespace fabnet
