#include "nn/dense.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "runtime/autotune.h"
#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "runtime/reduce.h"
#include "runtime/workspace.h"

namespace fabnet {
namespace nn {

namespace {

/** Workspace tag for the per-call W^T copy in Dense::forward. */
struct DenseWtWs;

/** Workspace tag for the butterfly layers' packed-gather buffers. */
struct BflyPackWs;

/**
 * Packed-gather ragged apply for the butterfly linears (shared by the
 * fp32 and quantized layers): gather the valid rows into a contiguous
 * buffer, run the stage-major kernel over full 16-row blocks, scatter
 * back. Spans of a ragged batch are at most one sequence long (4-32
 * rows on serving traffic), which fragments the kernel's 16-row
 * vector blocks into slow runtime-width tails; the O(rows*(in+out))
 * copies are cheap next to the O(rows*n*log n) butterfly arithmetic,
 * so packing benches faster than in-place spans here - the opposite
 * trade from the GEMM layers, whose 4-row tiles barely fragment (see
 * docs/ARCHITECTURE.md "Ragged batch execution"). Bitwise identity is
 * unaffected: the kernel is row-independent, so block composition
 * never changes a row's bits.
 *
 * @p apply_rows runs op.applyToRows-style over the packed buffer.
 */
template <class ApplyRows>
void
packedGatherApply(const Tensor &x, Tensor &y, const nn::RowSet &rows,
                  std::size_t in_f, std::size_t out_f,
                  const ApplyRows &apply_rows)
{
    const float *px = x.data();
    float *py = y.data();
    const std::size_t total = rows.totalRows();
    if (!rows.hasPadding()) {
        // Dense batch: the packed space IS the row space.
        runtime::parallelFor(0, total, 16,
                             [&](std::size_t r0, std::size_t r1) {
                                 apply_rows(px + r0 * in_f,
                                            py + r0 * out_f, r1 - r0);
                             });
        return;
    }
    float *buf =
        runtime::threadWorkspace<BflyPackWs>(total * (in_f + out_f));
    float *pin = buf;
    float *pout = buf + total * in_f;
    nn::forEachRowSpanPacked(
        rows, 64,
        [&](std::size_t r0, std::size_t r1, std::size_t p0) {
            std::memcpy(pin + p0 * in_f, px + r0 * in_f,
                        (r1 - r0) * in_f * sizeof(float));
        });
    runtime::parallelFor(0, total, 16,
                         [&](std::size_t r0, std::size_t r1) {
                             apply_rows(pin + r0 * in_f,
                                        pout + r0 * out_f, r1 - r0);
                         });
    nn::forEachRowSpanPacked(
        rows, 64,
        [&](std::size_t r0, std::size_t r1, std::size_t p0) {
            std::memcpy(py + r0 * out_f, pout + p0 * out_f,
                        (r1 - r0) * out_f * sizeof(float));
        });
}

/** Workspace tags for QuantizedDense's per-call activation scratch. */
struct QDenseAqWs;    ///< int8 activations
struct QDenseScaleWs; ///< per-row activation scales
struct QDenseAhWs;    ///< fp16-rounded activation floats

/** Rows when the last dim is treated as features. */
std::size_t
rowCount(const Tensor &x)
{
    return x.size() / x.shape().back();
}

} // namespace

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng &rng)
    : in_(in_features), out_(out_features), w_(in_ * out_), b_(out_, 0.0f),
      gw_(in_ * out_, 0.0f), gb_(out_, 0.0f)
{
    // Kaiming-style init keeps activations stable for ReLU/GELU nets.
    const float stddev = std::sqrt(2.0f / static_cast<float>(in_));
    for (float &v : w_)
        v = rng.normal(stddev);
}

Tensor
Dense::forward(const Tensor &x)
{
    if (x.shape().back() != in_)
        throw std::invalid_argument("Dense::forward: feature mismatch");
    cached_input_ = x;
    const std::size_t rows = rowCount(x);

    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = out_;
    Tensor y(out_shape);

    const float *px = x.data();
    const float *pb = b_.data();
    float *py = y.data();
    if (rows < runtime::kGemmTileM) {
        // Too few rows to amortise a W^T copy (e.g. single-token
        // inference): direct dot products, same k-order chain per
        // output as the tiled path, so results are bitwise equal.
        for (std::size_t r = 0; r < rows; ++r) {
            const float *xr = px + r * in_;
            float *yr = py + r * out_;
            for (std::size_t o = 0; o < out_; ++o) {
                const float *wr = &w_[o * in_];
                float acc = pb[o];
                for (std::size_t i = 0; i < in_; ++i)
                    acc = runtime::madd(wr[i], xr[i], acc);
                yr[o] = acc;
            }
        }
        return y;
    }
    // y = x W^T + b: transpose W once per call (pure data movement),
    // then run the register-tiled panel row-parallel with the bias
    // folded into the accumulator init - same fp order per output as
    // the original scalar loop. The transpose recurs per call because
    // the optimizer mutates w_ in place through ParamRef, so the layer
    // has no signal that weights are unchanged; at rows >= kGemmTileM
    // the O(in*out) copy is a small fraction of the O(rows*in*out)
    // GEMM it enables.
    float *wt = runtime::threadWorkspace<DenseWtWs>(in_ * out_);
    runtime::transposeInto(wt, w_.data(), out_, in_);
    const float *pw = wt;
    const runtime::GemmPlan plan = runtime::planGemmF32(rows, in_, out_);
    runtime::parallelFor(0, rows, plan.grain,
                         [&](std::size_t r0, std::size_t r1) {
        runtime::gemmRowsIKJ(px, pw, py, r0, r1, in_, out_, pb, plan.mk);
    });
    return y;
}

Tensor
Dense::forwardRows(const Tensor &x, const nn::RowSet &rows)
{
    if (x.shape().back() != in_)
        throw std::invalid_argument(
            "Dense::forwardRows: feature mismatch");

    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = out_;
    Tensor y(out_shape); // zero-init: padded rows stay 0

    const float *px = x.data();
    const float *pb = b_.data();
    float *py = y.data();
    if (rows.totalRows() < runtime::kGemmTileM) {
        // Same direct-dot path as forward() below the tile threshold;
        // per-row chains are identical either way (see forward()).
        rows.forEachSpan(0, rows.totalRows(),
                         [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r) {
                const float *xr = px + r * in_;
                float *yr = py + r * out_;
                for (std::size_t o = 0; o < out_; ++o) {
                    const float *wr = &w_[o * in_];
                    float acc = pb[o];
                    for (std::size_t i = 0; i < in_; ++i)
                        acc = runtime::madd(wr[i], xr[i], acc);
                    yr[o] = acc;
                }
            }
        });
        return y;
    }
    // Same W^T panel + register-tiled GEMM as forward(), swept over
    // the valid row spans only. Each row's k-order chain is unchanged,
    // so valid rows are bitwise equal to the full padded pass.
    float *wt = runtime::threadWorkspace<DenseWtWs>(in_ * out_);
    runtime::transposeInto(wt, w_.data(), out_, in_);
    const float *pw = wt;
    const runtime::GemmPlan plan =
        runtime::planGemmF32(rows.totalRows(), in_, out_);
    nn::forEachRowSpan(rows, plan.grain,
                       [&](std::size_t r0, std::size_t r1) {
        runtime::gemmRowsIKJ(px, pw, py, r0, r1, in_, out_, pb, plan.mk);
    });
    return y;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    const Tensor &x = cached_input_;
    const std::size_t rows = rowCount(x);
    if (grad_out.shape().back() != out_ || rowCount(grad_out) != rows)
        throw std::invalid_argument("Dense::backward: shape mismatch");

    Tensor gx(x.shape());
    const float *pg = grad_out.data();
    const float *px = x.data();
    float *pgx = gx.data();

    // dL/dx: rows are independent and each row's o-loop runs in the
    // reference's ascending order, so row-parallelism is free.
    runtime::parallelFor(0, rows, 8, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float *gr = pg + r * out_;
            float *gxr = pgx + r * in_;
            for (std::size_t o = 0; o < out_; ++o) {
                const float g = gr[o];
                if (g == 0.0f)
                    continue;
                const float *wr = &w_[o * in_];
                for (std::size_t i = 0; i < in_; ++i)
                    gxr[i] = runtime::madd(g, wr[i], gxr[i]);
            }
        }
    });

    // dL/dW, dL/db: owner-parallel over output features (see
    // runtime/reduce.h) - each task owns the feature range [o0, o1)
    // of gw_/gb_ outright and accumulates the rows in the reference's
    // ascending order, so every gradient element keeps its exact
    // serial chain. Rows stay outer so x is streamed row-major once
    // per task.
    runtime::parallelFor(0, out_, runtime::ownerGrain(out_, 8),
                         [&](std::size_t o0, std::size_t o1) {
        for (std::size_t r = 0; r < rows; ++r) {
            const float *gr = pg + r * out_;
            const float *xr = px + r * in_;
            for (std::size_t o = o0; o < o1; ++o) {
                const float g = gr[o];
                if (g == 0.0f)
                    continue;
                gb_[o] += g;
                float *gwr = &gw_[o * in_];
                for (std::size_t i = 0; i < in_; ++i)
                    gwr[i] = runtime::madd(g, xr[i], gwr[i]);
            }
        }
    });
    return gx;
}

Tensor
Dense::backwardReference(const Tensor &grad_out)
{
    const Tensor &x = cached_input_;
    const std::size_t rows = rowCount(x);
    if (grad_out.shape().back() != out_ || rowCount(grad_out) != rows)
        throw std::invalid_argument("Dense::backward: shape mismatch");

    Tensor gx(x.shape());
    const float *pg = grad_out.data();
    const float *px = x.data();
    float *pgx = gx.data();

    for (std::size_t r = 0; r < rows; ++r) {
        const float *gr = pg + r * out_;
        const float *xr = px + r * in_;
        float *gxr = pgx + r * in_;
        for (std::size_t o = 0; o < out_; ++o) {
            const float g = gr[o];
            if (g == 0.0f)
                continue;
            gb_[o] += g;
            float *gwr = &gw_[o * in_];
            const float *wr = &w_[o * in_];
            for (std::size_t i = 0; i < in_; ++i) {
                gwr[i] = runtime::madd(g, xr[i], gwr[i]);
                gxr[i] = runtime::madd(g, wr[i], gxr[i]);
            }
        }
    }
    return gx;
}

void
Dense::collectParams(std::vector<ParamRef> &out)
{
    out.push_back({&w_, &gw_});
    out.push_back({&b_, &gb_});
}

std::unique_ptr<Layer>
Dense::quantizedReplacement(QuantKind kind) const
{
    return std::make_unique<QuantizedDense>(*this, kind);
}

QuantizedDense::QuantizedDense(const Dense &dense, QuantKind kind)
    : in_(dense.inFeatures()), out_(dense.outFeatures()), kind_(kind)
{
    const std::vector<float> &w = dense.weight(); // [out, in]
    if (kind_ == QuantKind::Fp16) {
        // Round through binary16 and hold one shared widened [in, out]
        // panel: the GEMM consumes fp16-representable fp32 values, so
        // building the panel once at construction beats both per-call
        // rebuilds and retaining the raw binary16 bits nothing reads.
        std::vector<std::uint16_t> w16(w.size());
        runtime::floatToHalfBitsRow(w.data(), w16.data(), w.size());
        wt_h_.resize(w.size());
        for (std::size_t o = 0; o < out_; ++o)
            for (std::size_t i = 0; i < in_; ++i)
                wt_h_[i * out_ + o] = halfBitsToFloat(w16[o * in_ + i]);
        bias_h_.resize(out_);
        for (std::size_t o = 0; o < out_; ++o)
            bias_h_[o] = roundToHalf(dense.bias()[o]);
        return;
    }
    // int8: quantise each output feature's row, transpose to [in, out]
    // and pack pairs once - the panel consumes it with zero per-call
    // weight prep (the fp32 layer re-transposes every forward).
    bias_ = dense.bias();
    wscale_.resize(out_);
    std::vector<std::int8_t> wq(w.size());
    for (std::size_t o = 0; o < out_; ++o) {
        const float *row = w.data() + o * in_;
        wscale_[o] =
            runtime::int8Scale(runtime::maxAbsRow(row, in_));
        runtime::quantizeInt8Row(row, wq.data() + o * in_, in_,
                                 wscale_[o]);
    }
    std::vector<std::int8_t> wqt(w.size());
    runtime::transposeInto(wqt.data(), wq.data(), out_, in_);
    bp_.resize(((in_ + 1) / 2) * out_ * 2);
    runtime::packInt8PairsB(wqt.data(), bp_.data(), in_, out_);
}

Tensor
QuantizedDense::forward(const Tensor &x)
{
    if (x.shape().back() != in_)
        throw std::invalid_argument(
            "QuantizedDense::forward: feature mismatch");
    const std::size_t rows = rowCount(x);

    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = out_;
    Tensor y(out_shape);
    const float *px = x.data();
    float *py = y.data();

    if (kind_ == QuantKind::Fp16) {
        float *ah = runtime::threadWorkspace<QDenseAhWs>(rows * in_);
        std::memcpy(ah, px, rows * in_ * sizeof(float));
        runtime::roundRowToHalf(ah, rows * in_);
        const float *wt = wt_h_.data();
        const float *pb = bias_h_.data();
        const runtime::GemmPlan plan =
            runtime::planGemmF16(rows, in_, out_);
        runtime::parallelFor(0, rows, plan.grain,
                             [&](std::size_t r0, std::size_t r1) {
                                 runtime::gemmRowsF16(ah, wt, py, r0, r1,
                                                      in_, out_, pb,
                                                      plan.mk);
                             });
        return y;
    }

    std::int8_t *aq =
        runtime::threadWorkspaceAs<QDenseAqWs, std::int8_t>(rows * in_);
    float *sa = runtime::threadWorkspace<QDenseScaleWs>(rows);
    runtime::parallelFor(0, rows, 16,
                         [&](std::size_t r0, std::size_t r1) {
                             for (std::size_t r = r0; r < r1; ++r) {
                                 const float *row = px + r * in_;
                                 sa[r] = runtime::int8Scale(
                                     runtime::maxAbsRow(row, in_));
                                 runtime::quantizeInt8Row(
                                     row, aq + r * in_, in_, sa[r]);
                             }
                         });
    const std::int16_t *bp = bp_.data();
    const float *sb = wscale_.data();
    const float *pb = bias_.data();
    const runtime::GemmPlan plan = runtime::planGemmInt8(rows, in_, out_);
    runtime::parallelFor(0, rows, plan.grain,
                         [&](std::size_t r0, std::size_t r1) {
                             runtime::gemmRowsInt8(aq, bp, py, r0, r1,
                                                   in_, out_, sa, sb,
                                                   pb);
                         });
    return y;
}

Tensor
QuantizedDense::forwardRows(const Tensor &x, const nn::RowSet &rows)
{
    if (x.shape().back() != in_)
        throw std::invalid_argument(
            "QuantizedDense::forwardRows: feature mismatch");
    const std::size_t padded_rows = rowCount(x);

    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = out_;
    Tensor y(out_shape); // zero-init: padded rows stay 0
    const float *px = x.data();
    float *py = y.data();

    if (kind_ == QuantKind::Fp16) {
        // Round only the valid rows through binary16 (elementwise, so
        // per-span rounding equals the full-buffer pass bit for bit);
        // padded scratch rows are never read by the span GEMM.
        float *ah =
            runtime::threadWorkspace<QDenseAhWs>(padded_rows * in_);
        const float *wt = wt_h_.data();
        const float *pb = bias_h_.data();
        const runtime::GemmPlan plan =
            runtime::planGemmF16(rows.totalRows(), in_, out_);
        nn::forEachRowSpan(rows, plan.grain,
                           [&](std::size_t r0, std::size_t r1) {
            std::memcpy(ah + r0 * in_, px + r0 * in_,
                        (r1 - r0) * in_ * sizeof(float));
            runtime::roundRowToHalf(ah + r0 * in_, (r1 - r0) * in_);
            runtime::gemmRowsF16(ah, wt, py, r0, r1, in_, out_, pb,
                                 plan.mk);
        });
        return y;
    }

    std::int8_t *aq = runtime::threadWorkspaceAs<QDenseAqWs, std::int8_t>(
        padded_rows * in_);
    float *sa = runtime::threadWorkspace<QDenseScaleWs>(padded_rows);
    const std::int16_t *bp = bp_.data();
    const float *sb = wscale_.data();
    const float *pb = bias_.data();
    // Activation quantisation is per row (dynamic scale), so fusing it
    // with the GEMM sweep over the same spans is exact.
    nn::forEachRowSpan(rows, 8, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float *row = px + r * in_;
            sa[r] = runtime::int8Scale(runtime::maxAbsRow(row, in_));
            runtime::quantizeInt8Row(row, aq + r * in_, in_, sa[r]);
        }
        runtime::gemmRowsInt8(aq, bp, py, r0, r1, in_, out_, sa, sb,
                              pb);
    });
    return y;
}

Tensor
QuantizedDense::backward(const Tensor &)
{
    throw std::logic_error("QuantizedDense is inference-only");
}

ButterflyDense::ButterflyDense(std::size_t in_features,
                               std::size_t out_features, Rng &rng)
    : op_(in_features, out_features), grad_bias_(out_features, 0.0f)
{
    op_.initRandomRotation(rng);
    grad_cores_.resize(op_.numCores());
    for (std::size_t c = 0; c < op_.numCores(); ++c)
        grad_cores_[c].assign(op_.core(c).numWeights(), 0.0f);
}

Tensor
ButterflyDense::forward(const Tensor &x)
{
    if (x.shape().back() != op_.inFeatures())
        throw std::invalid_argument(
            "ButterflyDense::forward: feature mismatch");
    in_shape_ = x.shape();
    rows_ = x.size() / op_.inFeatures();

    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = op_.outFeatures();
    Tensor y(out_shape);

    // Rows are independent and write disjoint cache/output slices, so
    // the training forward parallelises without touching backward.
    const std::size_t cache_per_row = op_.cacheSize();
    caches_.assign(rows_ * cache_per_row, 0.0f);
    const float *px = x.data();
    float *py = y.data();
    float *pc = caches_.data();
    runtime::parallelFor(0, rows_, 4, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            op_.forwardWithCache(px + r * op_.inFeatures(),
                                 py + r * op_.outFeatures(),
                                 pc + r * cache_per_row);
        }
    });
    return y;
}

Tensor
ButterflyDense::forwardRows(const Tensor &x, const nn::RowSet &rows)
{
    if (x.shape().back() != op_.inFeatures())
        throw std::invalid_argument(
            "ButterflyDense::forwardRows: feature mismatch");
    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = op_.outFeatures();
    Tensor y(out_shape); // zero-init: padded rows stay 0

    // Inference-only: no activation caches (forward() allocates and
    // fills rows * cacheSize() floats per call for backward()).
    packedGatherApply(x, y, rows, op_.inFeatures(), op_.outFeatures(),
                      [&](const float *in, float *out,
                          std::size_t n) {
                          op_.applyToRows(in, out, n);
                      });
    return y;
}

Tensor
ButterflyDense::backward(const Tensor &grad_out)
{
    if (grad_out.shape().back() != op_.outFeatures() ||
        grad_out.size() / op_.outFeatures() != rows_)
        throw std::invalid_argument(
            "ButterflyDense::backward: shape mismatch");

    Tensor gx(in_shape_);
    // Trajectory scratch is a member so the steady state allocates
    // nothing; fully overwritten by backwardBatch's pass 1.
    gcaches_.resize(rows_ * op_.gradCacheSize());
    op_.backwardBatch(caches_.data(), gcaches_.data(), grad_out.data(),
                      gx.data(), rows_, grad_cores_, grad_bias_);
    return gx;
}

Tensor
ButterflyDense::backwardReference(const Tensor &grad_out)
{
    if (grad_out.shape().back() != op_.outFeatures() ||
        grad_out.size() / op_.outFeatures() != rows_)
        throw std::invalid_argument(
            "ButterflyDense::backward: shape mismatch");

    Tensor gx(in_shape_);
    const std::size_t cache_per_row = op_.cacheSize();
    for (std::size_t r = 0; r < rows_; ++r) {
        op_.backward(caches_.data() + r * cache_per_row,
                     grad_out.data() + r * op_.outFeatures(),
                     gx.data() + r * op_.inFeatures(), grad_cores_,
                     grad_bias_);
    }
    return gx;
}

void
ButterflyDense::collectParams(std::vector<ParamRef> &out)
{
    for (std::size_t c = 0; c < op_.numCores(); ++c)
        out.push_back({&op_.core(c).weights(), &grad_cores_[c]});
    out.push_back({&op_.bias(), &grad_bias_});
}

std::unique_ptr<Layer>
ButterflyDense::quantizedReplacement(QuantKind kind) const
{
    return std::make_unique<QuantizedButterflyDense>(*this, kind);
}

QuantizedButterflyDense::QuantizedButterflyDense(
    const ButterflyDense &dense, QuantKind kind)
    : op_(dense.op(), kind)
{
}

Tensor
QuantizedButterflyDense::forward(const Tensor &x)
{
    if (x.shape().back() != op_.inFeatures())
        throw std::invalid_argument(
            "QuantizedButterflyDense::forward: feature mismatch");
    const std::size_t rows = x.size() / op_.inFeatures();
    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = op_.outFeatures();
    const Tensor y =
        op_.applyBatch(x.reshaped({rows, op_.inFeatures()}));
    return y.reshaped(out_shape);
}

Tensor
QuantizedButterflyDense::forwardRows(const Tensor &x,
                                     const nn::RowSet &rows)
{
    if (x.shape().back() != op_.inFeatures())
        throw std::invalid_argument(
            "QuantizedButterflyDense::forwardRows: feature mismatch");
    std::vector<std::size_t> out_shape = x.shape();
    out_shape.back() = op_.outFeatures();
    Tensor y(out_shape); // zero-init: padded rows stay 0

    packedGatherApply(x, y, rows, op_.inFeatures(), op_.outFeatures(),
                      [&](const float *in, float *out,
                          std::size_t n) {
                          op_.applyToRows(in, out, n);
                      });
    return y;
}

Tensor
QuantizedButterflyDense::backward(const Tensor &)
{
    throw std::logic_error(
        "QuantizedButterflyDense is inference-only");
}

} // namespace nn
} // namespace fabnet
