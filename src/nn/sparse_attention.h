/**
 * @file sparse_attention.h
 * Approximate-attention configuration and the deterministic selection
 * kernels behind it.
 *
 * Two approximations from the paper's co-design space compose here:
 *
 *  - A^3-style top-k score approximation (Ham et al., PAPERS.md): each
 *    query keeps only the k highest-scoring keys and softmax-normalises
 *    over that set alone, so the context sum shrinks from t to k terms.
 *  - Butterfly sparsity (Multilayer Dataflow paper): query i attends
 *    only to the positions a butterfly network connects it to - itself
 *    plus i ^ 2^s for every stage s (src/sparsity/patterns.h) - an
 *    O(log t) candidate set computed on the fly, so the t x t score
 *    matrix is never materialised.
 *
 * Approximate paths cannot claim bitwise parity with exact attention;
 * what they DO claim (and `ctest -L approx-accuracy` pins) is
 * determinism: selection is a pure function of the scores with a total
 * tie-break order (score descending, index ascending), so the selected
 * set - and with it every downstream bit - is identical run-to-run at
 * any thread count and any batch composition.
 */
#ifndef FABNET_NN_SPARSE_ATTENTION_H
#define FABNET_NN_SPARSE_ATTENTION_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace fabnet {
namespace nn {

/** Which key set each attention query row scores and attends over. */
enum class SparseKind {
    Dense,         ///< exact attention over every visible key
    TopK,          ///< exact scores, keep the top-k keys per query
    Butterfly,     ///< butterfly candidate set only (O(log t) keys)
    ButterflyTopK, ///< top-k among the butterfly candidates
};

/** Short stable name ("dense", "topk", ...) for configs and benches. */
const char *sparseKindName(SparseKind kind);

/**
 * Approximate-attention knobs for MultiHeadAttention::setSparse and
 * ModelConfig::attn_sparse. Default-constructed = exact attention.
 */
struct SparseAttentionConfig
{
    SparseKind kind = SparseKind::Dense;
    /** Keys kept per query row (TopK / ButterflyTopK; ignored for
     *  Dense and plain Butterfly). Clamped to the visible set, so
     *  k >= t degenerates to the kind without the top-k filter -
     *  bitwise, which the approx-accuracy suite pins down. */
    std::size_t k = 0;

    bool dense() const { return kind == SparseKind::Dense; }
    bool selectsTopK() const
    {
        return kind == SparseKind::TopK ||
               kind == SparseKind::ButterflyTopK;
    }

    /** Throws std::invalid_argument on nonsense (top-k with k = 0). */
    void validate() const;

    /** "dense", "topk(k=32)", "butterfly", "butterfly+topk(k=8)". */
    std::string describe() const;
};

/**
 * Deterministic exact top-k selection: writes the indices of the k
 * largest entries of scores[0, n) into @p out in ASCENDING index
 * order and returns how many were selected (min(k, n)). Ties break
 * toward the LOWER index; (score desc, index asc) is a strict total
 * order, so the selected set is unique regardless of the algorithm -
 * run-to-run and implementation-independent determinism.
 *
 * @p out needs capacity n (it doubles as selection scratch). Scores
 * must be finite (NaN would break the comparator's total order).
 */
std::size_t selectTopK(const float *scores, std::size_t n,
                       std::size_t k, std::uint32_t *out);

/**
 * Butterfly candidate set for query @p i over keys [0, n): {i} plus
 * {i ^ 2^s : 2^s < n} intersected with [0, n), written to @p out in
 * ascending order; returns the count (>= 1 for n >= 1). A query index
 * beyond the key range (a padded row the caller discards downstream)
 * clamps to n - 1 so the set is never empty. @p out needs capacity
 * butterflyCandidateBound(n).
 */
std::size_t butterflyCandidates(std::size_t i, std::size_t n,
                                std::uint32_t *out);

/** Upper bound on butterflyCandidates' count: 1 + #stages(n). */
std::size_t butterflyCandidateBound(std::size_t n);

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_SPARSE_ATTENTION_H
