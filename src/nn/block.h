/**
 * @file block.h
 * Encoder blocks: the generic post-norm residual block used to build
 * the vanilla Transformer, FNet and FABNet.
 *
 * Structure (Fig. 2 / Fig. 5 of the paper):
 *
 *     a = Mixer(x)              Mixer = MHA (vanilla / ABfly)
 *     h = LN(x + a)                     or 2-D Fourier mix (FNet/FBfly)
 *     f = W2( act( W1(h) ) )    W1/W2 dense or butterfly
 *     y = LN(h + f)
 */
#ifndef FABNET_NN_BLOCK_H
#define FABNET_NN_BLOCK_H

#include <memory>
#include <vector>

#include "nn/basic_layers.h"
#include "nn/layer.h"

namespace fabnet {
namespace nn {

/** Two-layer feed-forward network with activation. */
class FeedForward : public Layer
{
  public:
    FeedForward(std::unique_ptr<Layer> lin1, std::unique_ptr<Layer> act,
                std::unique_ptr<Layer> lin2);

    Tensor forward(const Tensor &x) override;

    /** Ragged forward: chains the children's forwardRows paths, so
     *  both linears and the activation skip padded rows. */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    Tensor backward(const Tensor &grad_out) override;

    /** Chains the children's backwardReference paths. */
    Tensor backwardReference(const Tensor &grad_out) override;

    void collectParams(std::vector<ParamRef> &out) override;
    std::size_t quantizeLinears(QuantKind kind) override;

    bool supportsMasking() const override
    {
        return lin1_->supportsMasking() && act_->supportsMasking() &&
               lin2_->supportsMasking();
    }

  private:
    std::unique_ptr<Layer> lin1_, act_, lin2_;
};

/** Post-norm residual encoder block: mixer + FFN with layer norms. */
class EncoderBlock : public Layer
{
  public:
    EncoderBlock(std::size_t d_model, std::unique_ptr<Layer> mixer,
                 std::unique_ptr<Layer> ffn);

    Tensor forward(const Tensor &x) override;

    /**
     * Masked variant for right-padded serving batches: the mixer gets
     * the per-sequence real lengths (attention masks padded keys; see
     * layer.h), while the residual adds, layer norms and FFN operate
     * row-wise and need no masking. Inference-only.
     */
    Tensor forwardMasked(const Tensor &x,
                         const std::vector<std::size_t> &lens) override;

    /**
     * Ragged variant of forwardMasked: every stage - the mixer, both
     * residual adds, both layer norms and the FFN - iterates the valid
     * rows only, leaving padded rows zero end to end. Valid rows are
     * bitwise identical to forwardMasked (and so to unpadded
     * forward()); inference-only.
     */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    /**
     * One decode step: the forwardRows chain over the [n, 1, d] step
     * rows, with the mixer taking its forwardStep path (K/V-cached
     * attention). Bitwise identical to the last valid row of a full
     * causal forwardRows, per nn/decode.h. Inference-only.
     */
    Tensor forwardStep(const Tensor &x, StepState &step) override;

    /**
     * Ragged prompt prefill: exactly forwardRows plus the mixer's K/V
     * capture into @p step (layer.h). Inference-only.
     */
    Tensor forwardPrefill(const Tensor &x, const RowSet &rows,
                          StepState &step) override;

    Tensor backward(const Tensor &grad_out) override;

    /**
     * Seed serial backward through the whole block: layer norms,
     * mixer and FFN all take their backwardReference paths (residual
     * adds stay as in backward - they are elementwise and bitwise
     * order-free). The block-level grad-parity tests compare this
     * against backward().
     */
    Tensor backwardReference(const Tensor &grad_out) override;

    void collectParams(std::vector<ParamRef> &out) override;

    /** Quantize the mixer's and FFN's linears; LayerNorms stay fp32. */
    std::size_t quantizeLinears(QuantKind kind) override;

    bool supportsMasking() const override
    {
        return mixer_->supportsMasking() && ffn_->supportsMasking();
    }

  private:
    /** Shared body of forward/forwardMasked; null lens = unmasked. */
    Tensor forwardImpl(const Tensor &x,
                       const std::vector<std::size_t> *lens);

    std::unique_ptr<Layer> mixer_, ffn_;
    LayerNorm ln1_, ln2_;
};

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_BLOCK_H
