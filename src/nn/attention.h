/**
 * @file attention.h
 * Multi-head self-attention with pluggable projection layers.
 *
 * The projections (Q, K, V, output) are injected as generic layers so
 * the same attention core serves both the vanilla Transformer (Dense
 * projections) and FABNet's ABfly block (ButterflyDense projections) -
 * exactly the structure of Fig. 5 in the paper.
 */
#ifndef FABNET_NN_ATTENTION_H
#define FABNET_NN_ATTENTION_H

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/sparse_attention.h"

namespace fabnet {
namespace nn {

/** Multi-head scaled-dot-product self-attention. */
class MultiHeadAttention : public Layer
{
  public:
    /**
     * @param d_model  hidden size (must be divisible by @p heads)
     * @param heads    number of attention heads
     * @param proj_q/k/v/o  projection layers mapping d_model->d_model
     * @param causal   mask future positions (decoder-style attention;
     *                 the paper notes its design "is flexible and
     *                 applicable to decoders too")
     */
    MultiHeadAttention(std::size_t d_model, std::size_t heads,
                       std::unique_ptr<Layer> proj_q,
                       std::unique_ptr<Layer> proj_k,
                       std::unique_ptr<Layer> proj_v,
                       std::unique_ptr<Layer> proj_o,
                       bool causal = false);

    bool causal() const { return causal_; }

    /**
     * Install an approximate-attention configuration
     * (nn/sparse_attention.h): top-k score selection, the butterfly
     * candidate set, or both. Applies to every forward entry point
     * (forward/forwardMasked/forwardRows/forwardStep/forwardPrefill);
     * forwardReference stays exact as the tolerance baseline. The
     * approximate paths keep the bitwise determinism contract -
     * identical bits run-to-run at any thread count and batch
     * composition - and TopK with k >= t degenerates bitwise to the
     * dense path. Training works: backward() treats the unselected
     * (zero) attn_ entries as masked, i.e. straight-through selection.
     * Throws std::invalid_argument on an invalid config.
     */
    void setSparse(const SparseAttentionConfig &sparse);
    const SparseAttentionConfig &sparse() const { return sparse_; }

    /**
     * Parallel forward: per-(batch, head) tasks gather contiguous head
     * slices and run the scores/softmax/context pipeline on the shared
     * GEMM micro-kernels (runtime/kernels.h). Bitwise identical to
     * forwardReference at any thread count.
     */
    Tensor forward(const Tensor &x) override;

    /**
     * Length-masked forward for right-padded batches: sequence b
     * attends only over its first lens[b] key/value rows and the
     * softmax normalises over that prefix, so every real query row
     * performs exactly the floating-point ops of an unpadded length-
     * lens[b] run - bitwise identical logits, which is what the
     * serving engine's parity tests pin down. Padded query rows
     * attend over the same real prefix (finite, deterministic) and
     * are discarded downstream by the masked pooling head.
     * Inference-only: backward() after this is undefined.
     */
    Tensor forwardMasked(const Tensor &x,
                         const std::vector<std::size_t> &lens) override;

    /**
     * Ragged variant of forwardMasked: the Q/K/V/output projections
     * run through their own forwardRows (skipping padded rows), the
     * per-(batch, head) core gathers and computes only each sequence's
     * real prefix - padded QUERY rows, which forwardMasked still
     * computes and discards, are skipped too - and the softmax-scores
     * cache (attn_, O(batch * heads * seq^2)) is not materialised.
     * Every real row's op sequence is unchanged, so valid logits rows
     * are bitwise identical to forwardMasked at any thread count.
     * Inference-only.
     */
    Tensor forwardRows(const Tensor &x, const RowSet &rows) override;

    /**
     * One incremental decode step over per-sequence K/V prefix caches
     * (nn/decode.h). @p x is [n_live, 1, d]; the step row's K/V
     * projections are APPENDED to each sequence's cache, then each
     * (sequence, head) task attends over the whole cached prefix with
     * the exact per-element accumulation chains of forwardRows' last
     * query row - so the output row is bitwise identical to a full
     * causal recompute of that position, at any thread count and any
     * live-set composition. Requires causal attention (the cached
     * prefix IS the visible set). Inference-only.
     */
    Tensor forwardStep(const Tensor &x, StepState &step) override;

    /**
     * Ragged prompt prefill: forwardRows(x, rows) plus K/V capture -
     * each sequence's first rows.len(b) projected K/V rows are
     * appended to its (empty) cache in @p step, seeding forwardStep.
     * Logits bits are unchanged (the capture is a pure copy of the
     * ragged locals). Requires causal attention. Inference-only.
     */
    Tensor forwardPrefill(const Tensor &x, const RowSet &rows,
                          StepState &step) override;

    /**
     * Seed scalar forward (5-deep nested loops), kept as the parity
     * and bench baseline. Fills the same caches as forward(), so
     * backward() works after either.
     */
    Tensor forwardReference(const Tensor &x);

    /**
     * Parallel backward: one task per (batch, head) gathers that
     * head's Q/K/V/dL-dcontext slices into contiguous panels and runs
     * the seed per-head loops on them, accumulating dL/dq, dL/dk and
     * dL/dv into per-thread panels that are copied to disjoint head
     * slices - no cross-thread gradient reduction (runtime/reduce.h).
     * Bitwise identical to backwardReference at any thread count; the
     * projection backwards run through the projections' own parallel
     * paths.
     */
    Tensor backward(const Tensor &grad_out) override;

    /**
     * Seed scalar backward (the PR-1 serial loops), kept as the
     * parity/bench baseline; recurses through the projections'
     * backwardReference.
     */
    Tensor backwardReference(const Tensor &grad_out) override;

    void collectParams(std::vector<ParamRef> &out) override;

    /**
     * Swap the Q/K/V/output projections for their quantized forms (the
     * attention core - scores, softmax, context - stays fp32, as in
     * the paper's post-processing path). Inference-only afterwards.
     */
    std::size_t quantizeLinears(QuantKind kind) override;

    std::size_t heads() const { return heads_; }
    std::size_t headDim() const { return d_model_ / heads_; }

  private:
    /**
     * Shared body of forward/forwardMasked/forwardRows: null lens =
     * all rows real; non-null rows = ragged inference (skip padded
     * query rows, projections via forwardRows, no training caches).
     * One copy of the scores/softmax/context pipeline keeps the three
     * entry points bitwise-synchronised by construction. @p capture
     * (ragged path only) is the prefill K/V capture sink: each
     * sequence's valid projected K/V rows are appended to its cache.
     */
    Tensor forwardImpl(const Tensor &x,
                       const std::vector<std::size_t> *lens,
                       const nn::RowSet *rows = nullptr,
                       StepState *capture = nullptr);

    std::size_t d_model_, heads_;
    bool causal_ = false;
    SparseAttentionConfig sparse_; // default: exact attention
    std::unique_ptr<Layer> proj_q_, proj_k_, proj_v_, proj_o_;

    // Forward caches.
    Tensor q_, k_, v_;     // [b, t, d]
    Tensor attn_;          // softmax scores, [b, heads*t, t]
    std::size_t b_ = 0, t_ = 0;
};

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_ATTENTION_H
