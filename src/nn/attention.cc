#include "nn/attention.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "runtime/workspace.h"

namespace fabnet {
namespace nn {

MultiHeadAttention::MultiHeadAttention(std::size_t d_model,
                                       std::size_t heads,
                                       std::unique_ptr<Layer> proj_q,
                                       std::unique_ptr<Layer> proj_k,
                                       std::unique_ptr<Layer> proj_v,
                                       std::unique_ptr<Layer> proj_o,
                                       bool causal)
    : d_model_(d_model), heads_(heads), causal_(causal),
      proj_q_(std::move(proj_q)), proj_k_(std::move(proj_k)),
      proj_v_(std::move(proj_v)), proj_o_(std::move(proj_o))
{
    if (d_model_ % heads_ != 0)
        throw std::invalid_argument(
            "MultiHeadAttention: d_model must be divisible by heads");
}

namespace {

/**
 * Head-slice helpers: activations are stored [b, t, d] with head h
 * occupying columns [h*dh, (h+1)*dh). These accessors avoid a
 * physical [b, h, t, dh] reshape.
 */
inline const float *
rowPtr(const Tensor &x, std::size_t b, std::size_t t_idx)
{
    return x.data() + (b * x.dim(1) + t_idx) * x.dim(2);
}

inline float *
rowPtr(Tensor &x, std::size_t b, std::size_t t_idx)
{
    return x.data() + (b * x.dim(1) + t_idx) * x.dim(2);
}

/** Workspace tag for the gathered head slices. */
struct AttnWs;
/** Workspace tag for the backward pass's gathered/accumulator panels. */
struct AttnGradWs;
/** Workspace tag for the decode step's gathered cache slices. */
struct DecodeWs;
/** Workspace tag for the sparse paths' selected-index scratch. */
struct AttnSelWs;
/** Workspace tag for the decode step's selected-index scratch. */
struct DecodeSelWs;

/**
 * Shared body of the approximate per-query attention row (forwardImpl
 * and forwardStep): select keys, softmax over the selected set only,
 * context over the gathered selected V rows. All inputs are the
 * already-gathered per-(batch, head) panels, so the two call sites
 * replay identical op chains - the decode-vs-full-recompute bitwise
 * contract extends to the approximate kinds by construction.
 *
 * Selection is deterministic (nn/sparse_attention.h) and the selected
 * set is processed in ascending key order with the dense path's exact
 * expression sequence (scale-then-max from -1e30f, ascending exp/sum,
 * one gemmRowsIKJ row call), so TopK with k >= visible reproduces the
 * dense bits and every kind is bitwise run-to-run deterministic.
 *
 * @param sparse   validated non-dense config
 * @param i        query position (key index space; may exceed visible
 *                 for discarded padded rows - butterfly clamps)
 * @param visible  number of visible keys (causal prefix or valid len)
 * @param stride   row stride of the transposed K panel @p kht
 * @param qi       query head slice, [dh]
 * @param kht      transposed K head panel, [dh, stride]
 * @param vh       V head panel, [>= visible, dh]
 * @param srow     score scratch, [>= visible]
 * @param prow     selected-probability scratch, [>= visible]
 * @param vsel     gathered selected-V scratch, [>= visible * dh]
 * @param sel,cand index scratch, each [>= visible]
 * @param ci       context output row, [dh] (overwritten)
 * @param arow     optional dense attn_ cache row (zero-initialised):
 *                 selected probabilities land at their key positions
 * @return number of selected keys
 */
std::size_t
sparseAttendRow(const SparseAttentionConfig &sparse, std::size_t i,
                std::size_t visible, std::size_t dh, std::size_t stride,
                float scale, const float *qi, const float *kht,
                const float *vh, float *srow, float *prow, float *vsel,
                std::uint32_t *sel, std::uint32_t *cand, float *ci,
                float *arow)
{
    std::size_t m = 0;
    if (sparse.kind == SparseKind::TopK) {
        // Full score row via the dense path's exact axpy chains (the
        // A^3 approximation keeps exact scores and prunes after), so
        // k >= visible degenerates bitwise to dense attention.
        std::fill(srow, srow + visible, 0.0f);
        for (std::size_t c = 0; c < dh; ++c) {
            const float qv = qi[c];
            const float *krow = kht + c * stride;
            for (std::size_t j = 0; j < visible; ++j)
                srow[j] = runtime::madd(qv, krow[j], srow[j]);
        }
        m = selectTopK(srow, visible, sparse.k, sel);
        for (std::size_t s = 0; s < m; ++s)
            prow[s] = srow[sel[s]];
    } else {
        // Butterfly kinds: scores ONLY at the O(log t) candidate
        // positions - the full score row is never materialised. Each
        // score's reduction runs the same ascending-c madd chain as
        // the dense path, so a shared position carries the same bits.
        const std::size_t nc = butterflyCandidates(i, visible, cand);
        for (std::size_t s = 0; s < nc; ++s) {
            const float *krow = kht + cand[s];
            float acc = 0.0f;
            for (std::size_t c = 0; c < dh; ++c)
                acc = runtime::madd(qi[c], krow[c * stride], acc);
            srow[s] = acc;
        }
        if (sparse.kind == SparseKind::ButterflyTopK && sparse.k < nc) {
            m = selectTopK(srow, nc, sparse.k, sel);
            for (std::size_t s = 0; s < m; ++s) {
                prow[s] = srow[sel[s]];
                sel[s] = cand[sel[s]];
            }
        } else {
            m = nc;
            for (std::size_t s = 0; s < m; ++s) {
                prow[s] = srow[s];
                sel[s] = cand[s];
            }
        }
    }
    // Softmax over the selected set only, replaying the dense path's
    // expression sequence over the compacted row.
    float mx = -1e30f;
    for (std::size_t s = 0; s < m; ++s) {
        prow[s] *= scale;
        mx = std::max(mx, prow[s]);
    }
    float denom = 0.0f;
    for (std::size_t s = 0; s < m; ++s) {
        prow[s] = std::exp(prow[s] - mx);
        denom += prow[s];
    }
    const float inv = 1.0f / denom;
    for (std::size_t s = 0; s < m; ++s)
        prow[s] = prow[s] * inv;
    // Training cache: probabilities at their original key positions;
    // unselected keys stay exactly zero, which backward() skips -
    // straight-through selection, no new backward code.
    if (arow)
        for (std::size_t s = 0; s < m; ++s)
            arow[sel[s]] = prow[s];
    // Context over the gathered selected V rows, through the same row
    // kernel as the dense path (identity selection -> identical call).
    for (std::size_t s = 0; s < m; ++s)
        std::memcpy(vsel + s * dh, vh + sel[s] * dh, dh * sizeof(float));
    runtime::gemmRowsIKJ(prow, vsel, ci, 0, 1, m, dh);
    return m;
}

} // namespace

void
MultiHeadAttention::setSparse(const SparseAttentionConfig &sparse)
{
    sparse.validate();
    sparse_ = sparse;
}

Tensor
MultiHeadAttention::forward(const Tensor &x)
{
    return forwardImpl(x, nullptr);
}

Tensor
MultiHeadAttention::forwardMasked(const Tensor &x,
                                  const std::vector<std::size_t> &lens)
{
    if (lens.size() != x.dim(0))
        throw std::invalid_argument(
            "MultiHeadAttention::forwardMasked: lens size != batch");
    for (std::size_t L : lens)
        if (L == 0 || L > x.dim(1))
            throw std::invalid_argument(
                "MultiHeadAttention::forwardMasked: len out of [1, t]");
    return forwardImpl(x, &lens);
}

Tensor
MultiHeadAttention::forwardImpl(const Tensor &x,
                                const std::vector<std::size_t> *lens,
                                const nn::RowSet *rows,
                                StepState *capture)
{
    if (x.rank() != 3 || x.dim(2) != d_model_)
        throw std::invalid_argument("MultiHeadAttention: [b,t,d] required");
    b_ = x.dim(0);
    t_ = x.dim(1);
    const std::size_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    const bool ragged = rows != nullptr;

    // Dense paths fill the q_/k_/v_/attn_ training caches; the ragged
    // path is inference-only, so its projections live in locals (no
    // peak-batch tensors retained between requests) and the softmax
    // row normalises in thread scratch instead of materialising the
    // O(b * heads * t^2) attn_ tensor.
    Tensor ql, kl, vl;
    if (ragged) {
        ql = proj_q_->forwardRows(x, *rows);
        kl = proj_k_->forwardRows(x, *rows);
        vl = proj_v_->forwardRows(x, *rows);
    } else {
        q_ = proj_q_->forward(x);
        k_ = proj_k_->forward(x);
        v_ = proj_v_->forward(x);
        // attn_ rows: (b * heads + h) * t_  + i  over keys j.
        attn_ = Tensor::zeros(b_, heads_ * t_, t_);
    }
    const Tensor &q = ragged ? ql : q_;
    const Tensor &k = ragged ? kl : k_;
    const Tensor &v = ragged ? vl : v_;

    // Prefill capture: copy each sequence's valid projected K/V rows
    // into its cache. A pure copy of the ragged locals - the attention
    // core below neither sees nor depends on it, so captured and
    // plain forwardRows logits are the same bits.
    if (capture) {
        if (!causal_)
            throw std::logic_error(
                "MultiHeadAttention::forwardPrefill: causal attention "
                "required (the cached prefix must be the visible set)");
        if (capture->caches.size() != b_)
            throw std::invalid_argument(
                "MultiHeadAttention::forwardPrefill: cache count != batch");
        for (std::size_t b = 0; b < b_; ++b) {
            KVCache &c = *capture->caches[b];
            if (c.len != 0)
                throw std::logic_error(
                    "MultiHeadAttention::forwardPrefill: cache not empty");
            const std::size_t n = rows->len(b);
            const float *kr = rowPtr(k, b, 0);
            const float *vr = rowPtr(v, b, 0);
            c.k.assign(kr, kr + n * d_model_);
            c.v.assign(vr, vr + n * d_model_);
            c.len = n;
        }
    }

    Tensor ctx = Tensor::zeros(b_, t_, d_model_);

    // One task per (batch, head): gather that head's Q/K/V slices into
    // contiguous [t, dh] panels, then scores -> softmax -> context on
    // the shared micro-kernels. Each task writes disjoint attn_ rows
    // and a disjoint ctx column slice, so the parallel loop is
    // deterministic at any thread count.
    runtime::parallelFor(0, b_ * heads_, 1, [&](std::size_t task0,
                                                std::size_t task1) {
        for (std::size_t task = task0; task < task1; ++task) {
            const std::size_t b = task / heads_;
            const std::size_t h = task % heads_;
            const std::size_t off = h * dh;
            // Keys/values past the real prefix are padding: masked out
            // of scores, softmax and context entirely, so each real
            // query row runs the exact op sequence of an unpadded
            // length-`valid` forward.
            const std::size_t valid =
                ragged ? rows->len(b) : (lens ? (*lens)[b] : t_);
            // The masked dense path still computes the padded QUERY
            // rows (over the real prefix) and discards them
            // downstream; the ragged path skips them - gather and
            // compute stop at `valid`, which cannot change the real
            // rows' bits (rows are independent).
            const std::size_t active = ragged ? valid : t_;

            // The sparse kinds add a compacted-probability row, a
            // gathered selected-V panel and index scratch on top of
            // the dense layout; the dense request is unchanged.
            const bool approx = !sparse_.dense();
            const std::size_t ws_floats =
                t_ * (4 * dh + 1) + (approx ? t_ * (dh + 1) : 0);
            float *scratch = runtime::threadWorkspace<AttnWs>(ws_floats);
            float *qh = scratch;
            float *kht = qh + t_ * dh; // K head slice, transposed
            float *vh = kht + t_ * dh;
            float *ch = vh + t_ * dh;
            float *srow = ch + t_ * dh;
            float *prow = approx ? srow + t_ : nullptr;
            float *vsel = approx ? prow + t_ : nullptr;
            std::uint32_t *sel =
                approx ? runtime::threadWorkspaceAs<AttnSelWs,
                                                    std::uint32_t>(2 * t_)
                       : nullptr;
            std::uint32_t *cand = approx ? sel + t_ : nullptr;
            // K is gathered transposed ([dh, t]) so the score loop
            // below runs contiguously over keys.
            for (std::size_t t_idx = 0; t_idx < active; ++t_idx) {
                std::memcpy(qh + t_idx * dh,
                            rowPtr(q, b, t_idx) + off,
                            dh * sizeof(float));
                std::memcpy(vh + t_idx * dh,
                            rowPtr(v, b, t_idx) + off,
                            dh * sizeof(float));
                const float *krow = rowPtr(k, b, t_idx) + off;
                for (std::size_t c = 0; c < dh; ++c)
                    kht[c * t_ + t_idx] = krow[c];
            }

            for (std::size_t i = 0; i < active; ++i) {
                const std::size_t visible =
                    causal_ ? std::min(i + 1, valid) : valid;
                const float *qi = qh + i * dh;
                if (approx) {
                    // Approximate row: deterministic selection +
                    // softmax over the selected set only. Selection
                    // depends only on (i, the real prefix), so the
                    // ragged/masked/unpadded bitwise parity argument
                    // carries over unchanged.
                    float *arow =
                        ragged ? nullptr
                               : attn_.data() +
                                     (b * heads_ * t_ + h * t_ + i) * t_;
                    sparseAttendRow(sparse_, i, visible, dh, t_, scale,
                                    qi, kht, vh, srow, prow, vsel, sel,
                                    cand, ch + i * dh, arow);
                    continue;
                }
                // Scores q_i . k_j for the visible keys: axpy over the
                // transposed K panel keeps the j loop contiguous while
                // each score's reduction stays in c order (bitwise
                // equal to the reference dot product).
                std::fill(srow, srow + visible, 0.0f);
                for (std::size_t c = 0; c < dh; ++c) {
                    const float qv = qi[c];
                    const float *krow = kht + c * t_;
                    for (std::size_t j = 0; j < visible; ++j)
                        srow[j] = runtime::madd(qv, krow[j], srow[j]);
                }
                float mx = -1e30f;
                for (std::size_t j = 0; j < visible; ++j) {
                    srow[j] *= scale;
                    mx = std::max(mx, srow[j]);
                }
                float denom = 0.0f;
                for (std::size_t j = 0; j < visible; ++j) {
                    srow[j] = std::exp(srow[j] - mx);
                    denom += srow[j];
                }
                const float inv = 1.0f / denom;
                // Normalised probabilities land in the attn_ training
                // cache (dense) or stay in srow (ragged) - the same
                // srow[j] * inv product either way.
                float *arow =
                    ragged ? srow
                           : attn_.data() +
                                 (b * heads_ * t_ + h * t_ + i) * t_;
                for (std::size_t j = 0; j < visible; ++j)
                    arow[j] = srow[j] * inv;
                // (masked tail stays at the tensor's zero init)
                // Context row: ctx_i += sum_j a_ij * v_j.
                runtime::gemmRowsIKJ(arow, vh, ch + i * dh, 0, 1,
                                     visible, dh);
            }

            for (std::size_t i = 0; i < active; ++i)
                std::memcpy(rowPtr(ctx, b, i) + off, ch + i * dh,
                            dh * sizeof(float));
        }
    });
    return ragged ? proj_o_->forwardRows(ctx, *rows)
                  : proj_o_->forward(ctx);
}

Tensor
MultiHeadAttention::forwardRows(const Tensor &x, const nn::RowSet &rows)
{
    if (rows.batch() != x.dim(0) || rows.seq() != x.dim(1))
        throw std::invalid_argument(
            "MultiHeadAttention::forwardRows: RowSet shape mismatch");
    return forwardImpl(x, nullptr, &rows);
}

Tensor
MultiHeadAttention::forwardPrefill(const Tensor &x, const nn::RowSet &rows,
                                   StepState &step)
{
    if (rows.batch() != x.dim(0) || rows.seq() != x.dim(1))
        throw std::invalid_argument(
            "MultiHeadAttention::forwardPrefill: RowSet shape mismatch");
    return forwardImpl(x, nullptr, &rows, &step);
}

Tensor
MultiHeadAttention::forwardStep(const Tensor &x, StepState &step)
{
    if (x.rank() != 3 || x.dim(1) != 1 || x.dim(2) != d_model_)
        throw std::invalid_argument(
            "MultiHeadAttention::forwardStep: [n, 1, d] step required");
    if (!causal_)
        throw std::logic_error(
            "MultiHeadAttention::forwardStep: causal attention required "
            "(the cached prefix must be the visible set)");
    const std::size_t n = x.dim(0);
    if (step.caches.size() != n)
        throw std::invalid_argument(
            "MultiHeadAttention::forwardStep: cache count != step rows");
    const std::size_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    // The step is a 1-row ragged batch: the projections run their
    // ordinary forwardRows paths, whose rows are computed independently
    // with a fixed per-row op order - so each step row's Q/K/V bits
    // match the corresponding row of a full-recompute projection.
    const nn::RowSet rows(n, 1, std::vector<std::size_t>(n, 1));
    const Tensor q = proj_q_->forwardRows(x, rows);
    const Tensor k = proj_k_->forwardRows(x, rows);
    const Tensor v = proj_v_->forwardRows(x, rows);

    // Append the new K/V row before attending, so the prefix below
    // includes the step position itself (the `visible = i + 1` of the
    // causal full forward).
    for (std::size_t b = 0; b < n; ++b) {
        KVCache &c = *step.caches[b];
        const float *kr = k.data() + b * d_model_;
        const float *vr = v.data() + b * d_model_;
        c.k.insert(c.k.end(), kr, kr + d_model_);
        c.v.insert(c.v.end(), vr, vr + d_model_);
        ++c.len;
    }

    Tensor ctx = Tensor::zeros(n, 1, d_model_);

    // One task per (sequence, head), as in forwardImpl; each task
    // gathers its sequence's cached prefix and replays forwardImpl's
    // last-query-row pipeline verbatim: scores via ascending-c madd
    // chains over the transposed K panel, scale-then-max from -1e30f,
    // exp/denom ascending-j, context through the same gemmRowsIKJ row
    // kernel. Tasks write disjoint ctx column slices, so the loop is
    // deterministic at any thread count.
    runtime::parallelFor(0, n * heads_, 1, [&](std::size_t task0,
                                               std::size_t task1) {
        for (std::size_t task = task0; task < task1; ++task) {
            const std::size_t b = task / heads_;
            const std::size_t h = task % heads_;
            const std::size_t off = h * dh;
            const KVCache &c = *step.caches[b];
            const std::size_t L = c.len;

            const bool approx = !sparse_.dense();
            const std::size_t ws_floats =
                L * (2 * dh + 1) + dh + (approx ? L * (dh + 1) : 0);
            float *scratch = runtime::threadWorkspace<DecodeWs>(ws_floats);
            float *kht = scratch;        // K head slice, transposed [dh, L]
            float *vh = kht + L * dh;    // V head slice, [L, dh]
            float *srow = vh + L * dh;   // scores, [L]
            float *ch = srow + L;        // context row, [dh]
            float *prow = approx ? ch + dh : nullptr;
            float *vsel = approx ? prow + L : nullptr;
            std::uint32_t *sel =
                approx ? runtime::threadWorkspaceAs<DecodeSelWs,
                                                    std::uint32_t>(2 * L)
                       : nullptr;
            std::uint32_t *cand = approx ? sel + L : nullptr;
            for (std::size_t j = 0; j < L; ++j) {
                const float *kr = c.k.data() + j * d_model_ + off;
                for (std::size_t cc = 0; cc < dh; ++cc)
                    kht[cc * L + j] = kr[cc];
                std::memcpy(vh + j * dh, c.v.data() + j * d_model_ + off,
                            dh * sizeof(float));
            }

            const float *qi = q.data() + b * d_model_ + off;
            if (approx) {
                // The step row is query position L-1 with the whole
                // cached prefix visible: the same sparseAttendRow
                // body forwardImpl's approximate branch runs for its
                // last causal query row, so decode stays bitwise
                // identical to the full recompute for every kind.
                sparseAttendRow(sparse_, L - 1, L, dh, L, scale, qi,
                                kht, vh, srow, prow, vsel, sel, cand,
                                ch, nullptr);
                std::memcpy(ctx.data() + b * d_model_ + off, ch,
                            dh * sizeof(float));
                continue;
            }
            std::fill(srow, srow + L, 0.0f);
            for (std::size_t cc = 0; cc < dh; ++cc) {
                const float qv = qi[cc];
                const float *krow = kht + cc * L;
                for (std::size_t j = 0; j < L; ++j)
                    srow[j] = runtime::madd(qv, krow[j], srow[j]);
            }
            float mx = -1e30f;
            for (std::size_t j = 0; j < L; ++j) {
                srow[j] *= scale;
                mx = std::max(mx, srow[j]);
            }
            float denom = 0.0f;
            for (std::size_t j = 0; j < L; ++j) {
                srow[j] = std::exp(srow[j] - mx);
                denom += srow[j];
            }
            const float inv = 1.0f / denom;
            for (std::size_t j = 0; j < L; ++j)
                srow[j] = srow[j] * inv;
            runtime::gemmRowsIKJ(srow, vh, ch, 0, 1, L, dh);
            std::memcpy(ctx.data() + b * d_model_ + off, ch,
                        dh * sizeof(float));
        }
    });
    return proj_o_->forwardRows(ctx, rows);
}

Tensor
MultiHeadAttention::forwardReference(const Tensor &x)
{
    if (x.rank() != 3 || x.dim(2) != d_model_)
        throw std::invalid_argument("MultiHeadAttention: [b,t,d] required");
    b_ = x.dim(0);
    t_ = x.dim(1);
    const std::size_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    q_ = proj_q_->forward(x);
    k_ = proj_k_->forward(x);
    v_ = proj_v_->forward(x);

    attn_ = Tensor::zeros(b_, heads_ * t_, t_);
    Tensor ctx = Tensor::zeros(b_, t_, d_model_);

    std::vector<float> row(t_);
    for (std::size_t b = 0; b < b_; ++b) {
        for (std::size_t h = 0; h < heads_; ++h) {
            const std::size_t off = h * dh;
            for (std::size_t i = 0; i < t_; ++i) {
                const float *qi = rowPtr(q_, b, i) + off;
                // Scores against every visible key (all of them, or
                // only the prefix when causal), softmax-normalised.
                const std::size_t visible = causal_ ? i + 1 : t_;
                float mx = -1e30f;
                for (std::size_t j = 0; j < visible; ++j) {
                    const float *kj = rowPtr(k_, b, j) + off;
                    float s = 0.0f;
                    for (std::size_t c = 0; c < dh; ++c)
                        s = runtime::madd(qi[c], kj[c], s);
                    row[j] = s * scale;
                    mx = std::max(mx, row[j]);
                }
                float denom = 0.0f;
                for (std::size_t j = 0; j < visible; ++j) {
                    row[j] = std::exp(row[j] - mx);
                    denom += row[j];
                }
                const float inv = 1.0f / denom;
                float *arow =
                    attn_.data() + (b * heads_ * t_ + h * t_ + i) * t_;
                for (std::size_t j = 0; j < visible; ++j)
                    arow[j] = row[j] * inv;
                for (std::size_t j = visible; j < t_; ++j)
                    arow[j] = 0.0f; // masked future positions
                // Context: weighted sum of visible value head-slices.
                float *ci = rowPtr(ctx, b, i) + off;
                for (std::size_t j = 0; j < visible; ++j) {
                    const float a = arow[j];
                    const float *vj = rowPtr(v_, b, j) + off;
                    for (std::size_t c = 0; c < dh; ++c)
                        ci[c] = runtime::madd(a, vj[c], ci[c]);
                }
            }
        }
    }
    return proj_o_->forward(ctx);
}

Tensor
MultiHeadAttention::backward(const Tensor &grad_out)
{
    const std::size_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor g_ctx = proj_o_->backward(grad_out);

    Tensor gq = Tensor::zeros(b_, t_, d_model_);
    Tensor gk = Tensor::zeros(b_, t_, d_model_);
    Tensor gv = Tensor::zeros(b_, t_, d_model_);

    // One task per (batch, head), mirroring the forward: gather the
    // head's Q/K/V and dL/dcontext slices into contiguous panels, run
    // the seed per-head loops (identical per-element expressions and
    // ascending-i accumulation chains), collect dL/dq, dL/dk and
    // dL/dv in per-thread panels and copy them to the task's disjoint
    // head slice. No gradient element is ever touched by two tasks,
    // so no cross-thread reduction is needed (runtime/reduce.h) and
    // the result is bitwise identical to backwardReference at any
    // thread count.
    runtime::parallelFor(0, b_ * heads_, 1, [&](std::size_t task0,
                                                std::size_t task1) {
        for (std::size_t task = task0; task < task1; ++task) {
            const std::size_t b = task / heads_;
            const std::size_t h = task % heads_;
            const std::size_t off = h * dh;

            float *scratch = runtime::threadWorkspace<AttnGradWs>(
                t_ * (7 * dh + 2));
            float *qh = scratch;
            float *kh = qh + t_ * dh;
            float *vh = kh + t_ * dh;
            float *gch = vh + t_ * dh;
            float *lgq = gch + t_ * dh; // dL/dq panel, [t, dh]
            float *lgk = lgq + t_ * dh;
            float *lgv = lgk + t_ * dh;
            float *ga = lgv + t_ * dh; // dL/dattn for one query row
            float *gs = ga + t_;       // dL/dscore (pre-softmax)

            for (std::size_t t_idx = 0; t_idx < t_; ++t_idx) {
                std::memcpy(qh + t_idx * dh,
                            rowPtr(q_, b, t_idx) + off,
                            dh * sizeof(float));
                std::memcpy(kh + t_idx * dh,
                            rowPtr(k_, b, t_idx) + off,
                            dh * sizeof(float));
                std::memcpy(vh + t_idx * dh,
                            rowPtr(v_, b, t_idx) + off,
                            dh * sizeof(float));
                std::memcpy(gch + t_idx * dh,
                            rowPtr(g_ctx, b, t_idx) + off,
                            dh * sizeof(float));
            }
            std::fill(lgq, lgq + 3 * t_ * dh, 0.0f);

            for (std::size_t i = 0; i < t_; ++i) {
                const float *gci = gch + i * dh;
                const float *arow =
                    attn_.data() + (b * heads_ * t_ + h * t_ + i) * t_;
                // dL/da_ij = g_ctx_i . v_j ; also accumulate dL/dv_j.
                for (std::size_t j = 0; j < t_; ++j) {
                    const float *vj = vh + j * dh;
                    float acc = 0.0f;
                    for (std::size_t c = 0; c < dh; ++c)
                        acc = runtime::madd(gci[c], vj[c], acc);
                    ga[j] = acc;
                    float *gvj = lgv + j * dh;
                    const float a = arow[j];
                    for (std::size_t c = 0; c < dh; ++c)
                        gvj[c] = runtime::madd(a, gci[c], gvj[c]);
                }
                // Softmax backward: gs_j = a_j * (ga_j - sum_k ga_k a_k).
                float dot = 0.0f;
                for (std::size_t j = 0; j < t_; ++j)
                    dot = runtime::madd(ga[j], arow[j], dot);
                for (std::size_t j = 0; j < t_; ++j)
                    gs[j] = arow[j] * (ga[j] - dot);
                // Score backward into q_i and k_j.
                const float *qi = qh + i * dh;
                float *gqi = lgq + i * dh;
                for (std::size_t j = 0; j < t_; ++j) {
                    const float g = gs[j] * scale;
                    if (g == 0.0f)
                        continue;
                    const float *kj = kh + j * dh;
                    float *gkj = lgk + j * dh;
                    for (std::size_t c = 0; c < dh; ++c) {
                        gqi[c] = runtime::madd(g, kj[c], gqi[c]);
                        gkj[c] = runtime::madd(g, qi[c], gkj[c]);
                    }
                }
            }

            for (std::size_t t_idx = 0; t_idx < t_; ++t_idx) {
                std::memcpy(rowPtr(gq, b, t_idx) + off,
                            lgq + t_idx * dh, dh * sizeof(float));
                std::memcpy(rowPtr(gk, b, t_idx) + off,
                            lgk + t_idx * dh, dh * sizeof(float));
                std::memcpy(rowPtr(gv, b, t_idx) + off,
                            lgv + t_idx * dh, dh * sizeof(float));
            }
        }
    });

    Tensor gx = proj_q_->backward(gq);
    Tensor gxk = proj_k_->backward(gk);
    Tensor gxv = proj_v_->backward(gv);
    float *p = gx.data();
    const float *pk = gxk.data();
    const float *pv = gxv.data();
    runtime::parallelFor(0, gx.size(), 1 << 14,
                         [&](std::size_t i0, std::size_t i1) {
                             for (std::size_t i = i0; i < i1; ++i)
                                 p[i] += pk[i] + pv[i];
                         });
    return gx;
}

Tensor
MultiHeadAttention::backwardReference(const Tensor &grad_out)
{
    const std::size_t dh = headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor g_ctx = proj_o_->backwardReference(grad_out);

    Tensor gq = Tensor::zeros(b_, t_, d_model_);
    Tensor gk = Tensor::zeros(b_, t_, d_model_);
    Tensor gv = Tensor::zeros(b_, t_, d_model_);

    std::vector<float> ga(t_); // dL/dattn for one query row
    std::vector<float> gs(t_); // dL/dscore (pre-softmax)
    for (std::size_t b = 0; b < b_; ++b) {
        for (std::size_t h = 0; h < heads_; ++h) {
            const std::size_t off = h * dh;
            for (std::size_t i = 0; i < t_; ++i) {
                const float *gci = rowPtr(g_ctx, b, i) + off;
                const float *arow =
                    attn_.data() + (b * heads_ * t_ + h * t_ + i) * t_;
                // dL/da_ij = g_ctx_i . v_j ; also accumulate dL/dv_j.
                for (std::size_t j = 0; j < t_; ++j) {
                    const float *vj = rowPtr(v_, b, j) + off;
                    float acc = 0.0f;
                    for (std::size_t c = 0; c < dh; ++c)
                        acc = runtime::madd(gci[c], vj[c], acc);
                    ga[j] = acc;
                    float *gvj = rowPtr(gv, b, j) + off;
                    const float a = arow[j];
                    for (std::size_t c = 0; c < dh; ++c)
                        gvj[c] = runtime::madd(a, gci[c], gvj[c]);
                }
                // Softmax backward: gs_j = a_j * (ga_j - sum_k ga_k a_k).
                float dot = 0.0f;
                for (std::size_t j = 0; j < t_; ++j)
                    dot = runtime::madd(ga[j], arow[j], dot);
                for (std::size_t j = 0; j < t_; ++j)
                    gs[j] = arow[j] * (ga[j] - dot);
                // Score backward into q_i and k_j.
                const float *qi = rowPtr(q_, b, i) + off;
                float *gqi = rowPtr(gq, b, i) + off;
                for (std::size_t j = 0; j < t_; ++j) {
                    const float g = gs[j] * scale;
                    if (g == 0.0f)
                        continue;
                    const float *kj = rowPtr(k_, b, j) + off;
                    float *gkj = rowPtr(gk, b, j) + off;
                    for (std::size_t c = 0; c < dh; ++c) {
                        gqi[c] = runtime::madd(g, kj[c], gqi[c]);
                        gkj[c] = runtime::madd(g, qi[c], gkj[c]);
                    }
                }
            }
        }
    }

    Tensor gx = proj_q_->backwardReference(gq);
    Tensor gxk = proj_k_->backwardReference(gk);
    Tensor gxv = proj_v_->backwardReference(gv);
    float *p = gx.data();
    const float *pk = gxk.data();
    const float *pv = gxv.data();
    for (std::size_t i = 0; i < gx.size(); ++i)
        p[i] += pk[i] + pv[i];
    return gx;
}

void
MultiHeadAttention::collectParams(std::vector<ParamRef> &out)
{
    proj_q_->collectParams(out);
    proj_k_->collectParams(out);
    proj_v_->collectParams(out);
    proj_o_->collectParams(out);
}

std::size_t
MultiHeadAttention::quantizeLinears(QuantKind kind)
{
    return quantizeChildLayer(proj_q_, kind) +
           quantizeChildLayer(proj_k_, kind) +
           quantizeChildLayer(proj_v_, kind) +
           quantizeChildLayer(proj_o_, kind);
}

} // namespace nn
} // namespace fabnet
