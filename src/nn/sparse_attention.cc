#include "nn/sparse_attention.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace fabnet {
namespace nn {

const char *
sparseKindName(SparseKind kind)
{
    switch (kind) {
      case SparseKind::Dense:
        return "dense";
      case SparseKind::TopK:
        return "topk";
      case SparseKind::Butterfly:
        return "butterfly";
      case SparseKind::ButterflyTopK:
        return "butterfly+topk";
    }
    return "?";
}

void
SparseAttentionConfig::validate() const
{
    if (selectsTopK() && k == 0)
        throw std::invalid_argument(
            "SparseAttentionConfig: top-k kinds require k >= 1");
}

std::string
SparseAttentionConfig::describe() const
{
    std::ostringstream os;
    os << sparseKindName(kind);
    if (selectsTopK())
        os << "(k=" << k << ")";
    return os.str();
}

std::size_t
selectTopK(const float *scores, std::size_t n, std::size_t k,
           std::uint32_t *out)
{
    std::iota(out, out + n, std::uint32_t{0});
    if (k >= n)
        return n; // identity selection, already ascending
    // (score desc, index asc) is a strict total order over distinct
    // indices, so the k-element prefix set nth_element establishes is
    // UNIQUE - no library implementation detail can change it.
    std::nth_element(out, out + k, out + n,
                     [scores](std::uint32_t a, std::uint32_t b) {
                         return scores[a] > scores[b] ||
                                (scores[a] == scores[b] && a < b);
                     });
    std::sort(out, out + k);
    return k;
}

std::size_t
butterflyCandidates(std::size_t i, std::size_t n, std::uint32_t *out)
{
    if (n == 0)
        return 0;
    if (i >= n)
        i = n - 1; // padded query row: attend as the last real position
    std::size_t m = 0;
    out[m++] = static_cast<std::uint32_t>(i);
    for (std::size_t bit = 1; bit < n; bit <<= 1) {
        const std::size_t j = i ^ bit;
        if (j < n)
            out[m++] = static_cast<std::uint32_t>(j);
    }
    // Single-bit flips are distinct from i and from each other, so no
    // dedup is needed - only the ascending order the core relies on.
    std::sort(out, out + m);
    return m;
}

std::size_t
butterflyCandidateBound(std::size_t n)
{
    std::size_t m = 1;
    for (std::size_t bit = 1; bit < n; bit <<= 1)
        ++m;
    return m;
}

} // namespace nn
} // namespace fabnet
