/**
 * @file layer.h
 * Abstract layer interface for the minimal training framework.
 *
 * The framework is deliberately explicit (no autograd tape): each layer
 * caches what its backward pass needs during forward and exposes its
 * parameters as (value, grad) vector pairs for the optimiser. Models
 * in this repo are small enough that clarity beats generality, and the
 * explicit backward passes double as documentation of the math the
 * hardware executes.
 */
#ifndef FABNET_NN_LAYER_H
#define FABNET_NN_LAYER_H

#include <memory>
#include <vector>

#include "nn/decode.h"
#include "nn/rowset.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace fabnet {
namespace nn {

/** A trainable parameter: flat value vector plus its gradient. */
struct ParamRef
{
    std::vector<float> *value;
    std::vector<float> *grad;
};

/** Base class of all layers operating on [batch, seq, hidden] tensors. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Forward pass. Layers cache activations needed by backward();
     * calling forward twice overwrites the cache of the first call.
     */
    virtual Tensor forward(const Tensor &x) = 0;

    /**
     * Inference-only forward over a right-padded batch: @p lens[b] is
     * the number of real (non-pad) rows of sequence b; rows beyond it
     * are padding. The default forwards unchanged, which is exact for
     * every layer that treats sequence rows independently (linears,
     * activations, LayerNorm, FFN) - padding can never bleed into real
     * rows there. Layers that mix across the sequence override this:
     * MultiHeadAttention restricts keys/values and the softmax to the
     * real prefix, which makes each real row's arithmetic identical to
     * an unpadded run (the serving engine's bitwise guarantee).
     * FourierMix has no masked form (the FFT is global over the padded
     * length), so serving it is only reproducible against inference at
     * the same padded length. Does not update backward() caches
     * coherently for masked rows; do not train through this path.
     */
    virtual Tensor forwardMasked(const Tensor &x,
                                 const std::vector<std::size_t> &lens)
    {
        (void)lens;
        return forward(x);
    }

    /**
     * Ragged extension of forwardMasked(): the same masked-inference
     * contract, driven by a prebuilt RowSet so row-wise layers can
     * SKIP padded rows instead of computing and discarding them.
     * Valid rows are bitwise identical to forwardMasked(x, rows.lens())
     * - and therefore to an unpadded run - at any thread count; padded
     * output rows are zero for overriding layers and unspecified (but
     * finite and deterministic) for the fallback. The default
     * delegates to forwardMasked(), which is always correct, merely
     * not ragged; layers whose row loop dominates override it (Dense,
     * QuantizedDense, butterfly linears, LayerNorm, activations,
     * attention, the FFN and encoder block). Inference-only, like
     * forwardMasked: backward() caches are not maintained.
     */
    virtual Tensor forwardRows(const Tensor &x, const RowSet &rows)
    {
        return forwardMasked(x, rows.lens());
    }

    /**
     * One autoregressive decode step: @p x is the [n_live, 1, d] step
     * tensor (one new row per live sequence) and @p step carries each
     * sequence's K/V cache for this layer plus the row's absolute
     * position. Row-wise layers need neither and the default - the
     * layer's own forwardRows over the trivial all-valid RowSet - is
     * exact for them; MultiHeadAttention overrides to append the step
     * row's K/V projections and attend over the cached prefix, bitwise
     * identical to a full causal recompute of the same position
     * (nn/decode.h states the induction; `ctest -L decode-parity`
     * pins it). Inference-only.
     */
    virtual Tensor forwardStep(const Tensor &x, StepState &step)
    {
        (void)step;
        return forwardRows(
            x, RowSet(x.dim(0), x.dim(1),
                      std::vector<std::size_t>(x.dim(0), x.dim(1))));
    }

    /**
     * Ragged prompt prefill: exactly forwardRows(x, rows) - same bits,
     * same contract - except that attention layers additionally
     * capture each sequence's first rows.len(b) K/V projection rows
     * into @p step's caches, seeding incremental decode. Layers
     * without cross-sequence state ignore @p step (the default).
     * Inference-only.
     */
    virtual Tensor forwardPrefill(const Tensor &x, const RowSet &rows,
                                  StepState &step)
    {
        (void)step;
        return forwardRows(x, rows);
    }

    /**
     * Whether forwardMasked() honours the padding mask exactly: true
     * for row-wise layers (the default is exact for them) and for
     * layers that implement masking; false for layers that mix across
     * the sequence without a masked form (FourierMix). Composite
     * layers forward the query to their children. The serving engine
     * uses this to refuse models whose served results would depend on
     * padding.
     */
    virtual bool supportsMasking() const { return true; }

    /**
     * Backward pass: given dL/d(output) returns dL/d(input) and
     * accumulates (+=) parameter gradients. Parallel (see
     * runtime/reduce.h for the determinism scheme) and bitwise
     * identical to backwardReference() at any thread count.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /**
     * Seed serial backward, kept as the parity/bench baseline for the
     * parallel backward(). Same contract (returns dL/d(input),
     * accumulates parameter grads); layers whose fast backward
     * reorders work override this with the original serial loops.
     * Elementwise layers, where the parallel path trivially preserves
     * the serial arithmetic, keep this default. Composite layers
     * override it to recurse through their children's reference
     * paths.
     */
    virtual Tensor backwardReference(const Tensor &grad_out)
    {
        return backward(grad_out);
    }

    /** Append this layer's parameters to @p out. */
    virtual void collectParams(std::vector<ParamRef> &out)
    {
        (void)out;
    }

    /**
     * Inference-only reduced-precision replacement for this layer, or
     * null for layers that keep computing in fp32. Overridden by the
     * linears (Dense -> QuantizedDense, ButterflyDense ->
     * QuantizedButterflyDense) - the projections/FFNs are where the
     * weights and the multiply-accumulate work live, exactly the parts
     * the paper's datapath runs in reduced precision. Row-wise glue
     * (LayerNorm, activations, softmax, residuals) stays fp32.
     */
    virtual std::unique_ptr<Layer> quantizedReplacement(QuantKind kind) const
    {
        (void)kind;
        return nullptr;
    }

    /**
     * Recursively swap every child linear for its quantized
     * replacement (composite layers override: attention projections,
     * FFN linears, encoder-block children). Returns the number of
     * layers replaced. After this the layer is inference-only:
     * backward() on a replaced child throws.
     */
    virtual std::size_t quantizeLinears(QuantKind kind)
    {
        (void)kind;
        return 0;
    }

    /** Number of trainable scalars. */
    std::size_t numParams()
    {
        std::vector<ParamRef> ps;
        collectParams(ps);
        std::size_t n = 0;
        for (const auto &p : ps)
            n += p.value->size();
        return n;
    }
};

/** Zero every gradient in @p params. */
inline void
zeroGrads(const std::vector<ParamRef> &params)
{
    for (const auto &p : params)
        std::fill(p.grad->begin(), p.grad->end(), 0.0f);
}

/**
 * Quantize one owned child: replace it outright when it offers a
 * quantized form, otherwise recurse into its own children. Composite
 * layers call this on each child from their quantizeLinears override.
 */
inline std::size_t
quantizeChildLayer(std::unique_ptr<Layer> &child, QuantKind kind)
{
    if (auto q = child->quantizedReplacement(kind)) {
        child = std::move(q);
        return 1;
    }
    return child->quantizeLinears(kind);
}

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_LAYER_H
