/**
 * @file layer.h
 * Abstract layer interface for the minimal training framework.
 *
 * The framework is deliberately explicit (no autograd tape): each layer
 * caches what its backward pass needs during forward and exposes its
 * parameters as (value, grad) vector pairs for the optimiser. Models
 * in this repo are small enough that clarity beats generality, and the
 * explicit backward passes double as documentation of the math the
 * hardware executes.
 */
#ifndef FABNET_NN_LAYER_H
#define FABNET_NN_LAYER_H

#include <vector>

#include "tensor/tensor.h"

namespace fabnet {
namespace nn {

/** A trainable parameter: flat value vector plus its gradient. */
struct ParamRef
{
    std::vector<float> *value;
    std::vector<float> *grad;
};

/** Base class of all layers operating on [batch, seq, hidden] tensors. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Forward pass. Layers cache activations needed by backward();
     * calling forward twice overwrites the cache of the first call.
     */
    virtual Tensor forward(const Tensor &x) = 0;

    /**
     * Backward pass: given dL/d(output) returns dL/d(input) and
     * accumulates (+=) parameter gradients.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Append this layer's parameters to @p out. */
    virtual void collectParams(std::vector<ParamRef> &out)
    {
        (void)out;
    }

    /** Number of trainable scalars. */
    std::size_t numParams()
    {
        std::vector<ParamRef> ps;
        collectParams(ps);
        std::size_t n = 0;
        for (const auto &p : ps)
            n += p.value->size();
        return n;
    }
};

/** Zero every gradient in @p params. */
inline void
zeroGrads(const std::vector<ParamRef> &params)
{
    for (const auto &p : params)
        std::fill(p.grad->begin(), p.grad->end(), 0.0f);
}

} // namespace nn
} // namespace fabnet

#endif // FABNET_NN_LAYER_H
