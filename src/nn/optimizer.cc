#include "nn/optimizer.h"

#include <cmath>

#include "runtime/parallel.h"
#include "runtime/reduce.h"

namespace fabnet {
namespace nn {

namespace {

/** Elements per parallel chunk of the elementwise update sweeps. */
constexpr std::size_t kStepGrain = 1 << 13;

} // namespace

Sgd::Sgd(std::vector<ParamRef> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum)
{
    if (momentum_ != 0.0f) {
        velocity_.resize(params_.size());
        for (std::size_t i = 0; i < params_.size(); ++i)
            velocity_[i].assign(params_[i].value->size(), 0.0f);
    }
}

void
Sgd::step()
{
    // Elementwise per parameter: chunked parallelism is bitwise
    // identical to the serial sweep (no cross-element arithmetic).
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto &w = *params_[i].value;
        auto &g = *params_[i].grad;
        if (momentum_ != 0.0f) {
            auto &vel = velocity_[i];
            runtime::parallelFor(0, w.size(), kStepGrain,
                                 [&](std::size_t j0, std::size_t j1) {
                                     for (std::size_t j = j0; j < j1;
                                          ++j) {
                                         vel[j] = momentum_ * vel[j] -
                                                  lr_ * g[j];
                                         w[j] += vel[j];
                                     }
                                 });
        } else {
            runtime::parallelFor(0, w.size(), kStepGrain,
                                 [&](std::size_t j0, std::size_t j1) {
                                     for (std::size_t j = j0; j < j1;
                                          ++j)
                                         w[j] -= lr_ * g[j];
                                 });
        }
        std::fill(g.begin(), g.end(), 0.0f);
    }
}

Adam::Adam(std::vector<ParamRef> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    m_.resize(params_.size());
    v_.resize(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        m_[i].assign(params_[i].value->size(), 0.0f);
        v_[i].assign(params_[i].value->size(), 0.0f);
    }
}

void
Adam::step()
{
    ++t_;
    const float bc1 =
        1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 =
        1.0f - std::pow(beta2_, static_cast<float>(t_));
    // Elementwise per parameter (see Sgd::step on determinism).
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto &w = *params_[i].value;
        auto &g = *params_[i].grad;
        auto &m = m_[i];
        auto &v = v_[i];
        runtime::parallelFor(
            0, w.size(), kStepGrain,
            [&](std::size_t j0, std::size_t j1) {
                for (std::size_t j = j0; j < j1; ++j) {
                    m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
                    v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
                    const float mhat = m[j] / bc1;
                    const float vhat = v[j] / bc2;
                    w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
                }
            });
        std::fill(g.begin(), g.end(), 0.0f);
    }
}

float
clipGradNorm(const std::vector<ParamRef> &params, float max_norm)
{
    // Global norm via the deterministic chunked reduction
    // (runtime/reduce.h): per-parameter fixed-shape partial sums
    // folded by a pairwise tree, then summed across parameters in
    // collection order. The reduction shape depends only on the
    // parameter sizes, never the thread count, so the clipped
    // gradients - and with them whole training trajectories - are
    // identical at any thread count.
    std::vector<double> per_param(params.size(), 0.0);
    for (std::size_t i = 0; i < params.size(); ++i)
        per_param[i] = runtime::deterministicSumSquares(
            params[i].grad->data(), params[i].grad->size());
    double sq = 0.0;
    for (double s : per_param)
        sq += s;
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > max_norm && norm > 0.0f) {
        const float scale = max_norm / norm;
        for (const auto &p : params) {
            float *g = p.grad->data();
            runtime::parallelFor(0, p.grad->size(), kStepGrain,
                                 [&](std::size_t j0, std::size_t j1) {
                                     for (std::size_t j = j0; j < j1;
                                          ++j)
                                         g[j] *= scale;
                                 });
        }
    }
    return norm;
}

} // namespace nn
} // namespace fabnet
