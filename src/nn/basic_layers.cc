#include "nn/basic_layers.h"

#include <cmath>
#include <stdexcept>

#include "butterfly/fft.h"
#include "runtime/kernels.h"
#include "runtime/parallel.h"
#include "runtime/reduce.h"

namespace fabnet {
namespace nn {

LayerNorm::LayerNorm(std::size_t dim, float eps)
    : dim_(dim), eps_(eps), gamma_(dim, 1.0f), beta_(dim, 0.0f),
      ggamma_(dim, 0.0f), gbeta_(dim, 0.0f)
{
}

Tensor
LayerNorm::forward(const Tensor &x)
{
    if (x.shape().back() != dim_)
        throw std::invalid_argument("LayerNorm::forward: dim mismatch");
    const std::size_t rows = x.size() / dim_;
    Tensor y(x.shape());
    cached_xhat_ = Tensor(x.shape());
    inv_std_.assign(rows, 0.0f);

    const float *px = x.data();
    float *py = y.data();
    float *pxh = cached_xhat_.data();
    for (std::size_t r = 0; r < rows; ++r) {
        const float *xr = px + r * dim_;
        float mean = 0.0f;
        for (std::size_t j = 0; j < dim_; ++j)
            mean += xr[j];
        mean /= static_cast<float>(dim_);
        float var = 0.0f;
        for (std::size_t j = 0; j < dim_; ++j) {
            const float c = xr[j] - mean;
            var += c * c;
        }
        var /= static_cast<float>(dim_);
        const float inv = 1.0f / std::sqrt(var + eps_);
        inv_std_[r] = inv;
        for (std::size_t j = 0; j < dim_; ++j) {
            const float xh = (xr[j] - mean) * inv;
            pxh[r * dim_ + j] = xh;
            py[r * dim_ + j] = gamma_[j] * xh + beta_[j];
        }
    }
    return y;
}

Tensor
LayerNorm::forwardRows(const Tensor &x, const RowSet &rows)
{
    if (x.shape().back() != dim_)
        throw std::invalid_argument(
            "LayerNorm::forwardRows: dim mismatch");
    Tensor y(x.shape()); // zero-init: padded rows stay 0
    const float *px = x.data();
    float *py = y.data();
    // Per-row mean/var/affine exactly as forward() computes them (same
    // j-order chains), minus the cached_xhat_/inv_std_ training-cache
    // writes; rows are independent so the span sweep parallelises.
    forEachRowSpan(rows, 16, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float *xr = px + r * dim_;
            float mean = 0.0f;
            for (std::size_t j = 0; j < dim_; ++j)
                mean += xr[j];
            mean /= static_cast<float>(dim_);
            float var = 0.0f;
            for (std::size_t j = 0; j < dim_; ++j) {
                const float c = xr[j] - mean;
                var += c * c;
            }
            var /= static_cast<float>(dim_);
            const float inv = 1.0f / std::sqrt(var + eps_);
            for (std::size_t j = 0; j < dim_; ++j) {
                const float xh = (xr[j] - mean) * inv;
                py[r * dim_ + j] = gamma_[j] * xh + beta_[j];
            }
        }
    });
    return y;
}

Tensor
LayerNorm::backward(const Tensor &grad_out)
{
    const std::size_t rows = grad_out.size() / dim_;
    Tensor gx(grad_out.shape());
    const float *pg = grad_out.data();
    const float *pxh = cached_xhat_.data();
    float *pgx = gx.data();
    const float inv_d = 1.0f / static_cast<float>(dim_);

    // dL/dx: rows are independent; each row's two j-sweeps run in the
    // reference's order (the per-row sums are ascending-j chains).
    runtime::parallelFor(0, rows, 4, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float *gr = pg + r * dim_;
            const float *xh = pxh + r * dim_;
            float sum_gxh = 0.0f, sum_gxh_xh = 0.0f;
            for (std::size_t j = 0; j < dim_; ++j) {
                const float gxh = gamma_[j] * gr[j];
                sum_gxh += gxh;
                sum_gxh_xh = runtime::madd(gxh, xh[j], sum_gxh_xh);
            }
            const float inv = inv_std_[r];
            for (std::size_t j = 0; j < dim_; ++j) {
                const float gxh = gamma_[j] * gr[j];
                pgx[r * dim_ + j] =
                    inv * (gxh - inv_d * sum_gxh -
                           xh[j] * inv_d * sum_gxh_xh);
            }
        }
    });

    // dL/dgamma, dL/dbeta: owner-parallel over columns (see
    // runtime/reduce.h) - each task owns the column range [j0, j1)
    // and accumulates the rows in ascending order, the reference's
    // exact chain per element.
    runtime::parallelFor(0, dim_, runtime::ownerGrain(dim_, 16),
                         [&](std::size_t j0, std::size_t j1) {
        for (std::size_t r = 0; r < rows; ++r) {
            const float *gr = pg + r * dim_;
            const float *xh = pxh + r * dim_;
            for (std::size_t j = j0; j < j1; ++j) {
                ggamma_[j] = runtime::madd(gr[j], xh[j], ggamma_[j]);
                gbeta_[j] += gr[j];
            }
        }
    });
    return gx;
}

Tensor
LayerNorm::backwardReference(const Tensor &grad_out)
{
    const std::size_t rows = grad_out.size() / dim_;
    Tensor gx(grad_out.shape());
    const float *pg = grad_out.data();
    const float *pxh = cached_xhat_.data();
    float *pgx = gx.data();
    const float inv_d = 1.0f / static_cast<float>(dim_);

    for (std::size_t r = 0; r < rows; ++r) {
        const float *gr = pg + r * dim_;
        const float *xh = pxh + r * dim_;
        // dL/dxhat_j = gamma_j * g_j; the projection terms remove the
        // mean and the component along xhat.
        float sum_gxh = 0.0f, sum_gxh_xh = 0.0f;
        for (std::size_t j = 0; j < dim_; ++j) {
            const float gxh = gamma_[j] * gr[j];
            sum_gxh += gxh;
            sum_gxh_xh = runtime::madd(gxh, xh[j], sum_gxh_xh);
            ggamma_[j] = runtime::madd(gr[j], xh[j], ggamma_[j]);
            gbeta_[j] += gr[j];
        }
        const float inv = inv_std_[r];
        for (std::size_t j = 0; j < dim_; ++j) {
            const float gxh = gamma_[j] * gr[j];
            pgx[r * dim_ + j] =
                inv * (gxh - inv_d * sum_gxh - xh[j] * inv_d * sum_gxh_xh);
        }
    }
    return gx;
}

void
LayerNorm::collectParams(std::vector<ParamRef> &out)
{
    out.push_back({&gamma_, &ggamma_});
    out.push_back({&beta_, &gbeta_});
}

Tensor
Relu::forward(const Tensor &x)
{
    cached_input_ = x;
    Tensor y = x;
    for (float &v : y.raw())
        v = std::max(v, 0.0f);
    return y;
}

Tensor
Relu::forwardRows(const Tensor &x, const RowSet &rows)
{
    const std::size_t d = x.shape().back();
    Tensor y(x.shape()); // zero-init: padded rows stay 0
    const float *px = x.data();
    float *py = y.data();
    forEachRowSpan(rows, 64, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0 * d; i < r1 * d; ++i)
            py[i] = std::max(px[i], 0.0f);
    });
    return y;
}

Tensor
Relu::backward(const Tensor &grad_out)
{
    Tensor gx = grad_out;
    const float *px = cached_input_.data();
    float *pg = gx.data();
    // Elementwise, no cross-element reduction: chunked parallelism is
    // trivially bitwise identical to the serial loop.
    runtime::parallelFor(0, gx.size(), 1 << 14,
                         [&](std::size_t i0, std::size_t i1) {
                             for (std::size_t i = i0; i < i1; ++i)
                                 pg[i] = px[i] > 0.0f ? pg[i] : 0.0f;
                         });
    return gx;
}

Tensor
Gelu::forward(const Tensor &x)
{
    cached_input_ = x;
    Tensor y = x;
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (float &v : y.raw()) {
        const float inner = k * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
    return y;
}

Tensor
Gelu::forwardRows(const Tensor &x, const RowSet &rows)
{
    const std::size_t d = x.shape().back();
    Tensor y(x.shape()); // zero-init: padded rows stay 0
    const float *px = x.data();
    float *py = y.data();
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    forEachRowSpan(rows, 16, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0 * d; i < r1 * d; ++i) {
            const float v = px[i];
            const float inner = k * (v + 0.044715f * v * v * v);
            py[i] = 0.5f * v * (1.0f + std::tanh(inner));
        }
    });
    return y;
}

Tensor
Gelu::backward(const Tensor &grad_out)
{
    Tensor gx = grad_out;
    const float *px = cached_input_.data();
    float *pg = gx.data();
    constexpr float k = 0.7978845608028654f;
    // Elementwise (see Relu::backward).
    runtime::parallelFor(0, gx.size(), 1 << 13, [&](std::size_t i0,
                                                    std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            const float x = px[i];
            const float inner = k * (x + 0.044715f * x * x * x);
            const float t = std::tanh(inner);
            const float dinner = k * (1.0f + 3.0f * 0.044715f * x * x);
            const float dgelu =
                0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
            pg[i] *= dgelu;
        }
    });
    return gx;
}

Tensor
FourierMix::forward(const Tensor &x)
{
    return fourierMix2D(x);
}

Tensor
FourierMix::backward(const Tensor &grad_out)
{
    return fourierMix2DAdjoint(grad_out);
}

} // namespace nn
} // namespace fabnet
