#include "runtime/dispatch.h"

namespace fabnet {
namespace runtime {

const KernelTable *
kernelTableFor(Isa isa)
{
    if (!isaSupported(isa))
        return nullptr;
    switch (isa) {
    case Isa::Scalar:
        return &kernelTableScalar();
    case Isa::Avx2:
        return &kernelTableAvx2();
    case Isa::Avx512:
        return &kernelTableAvx512();
    case Isa::Avx512Vnni:
        return &kernelTableAvx512Vnni();
    }
    return &kernelTableScalar();
}

const KernelTable &
kernels()
{
    static const KernelTable &t = *kernelTableFor(activeIsa());
    return t;
}

} // namespace runtime
} // namespace fabnet
