/**
 * @file kernels.h
 * Caller-facing kernel entry points. Every caller-facing parallel
 * path (ops::matmul, ops::matmulTransposed via an explicit transpose,
 * Dense::forward, attention, the quantized paths) lowers onto these
 * wrappers, which load the function pointer installed for this
 * machine's ISA from the dispatch table (runtime/dispatch.h) - the
 * performance work AND the bitwise behaviour live in exactly one
 * place per kernel family, selected once at startup.
 *
 * The scalar semantics every variant must reproduce bit for bit are
 * pinned in kernels_common.h (madd contraction, int8 quantise/
 * dequantise expressions, binary16 rounding points); the variant
 * bodies live in kernels_impl.h, compiled once per ISA level with
 * per-TU -m flags. See dispatch.h for the parity argument per family
 * and autotune.h for how the `mk` micro-kernel index is chosen.
 *
 * ## Quantized variants
 * The int8 panel (gemmRowsInt8) mirrors the fp32 tiling but multiplies
 * int8 operands into int32 accumulators - integer arithmetic is exact,
 * so the blocked/vectorised path is *identical* (not just bitwise-
 * reproducible) to the scalar reference at any thread count. Scales
 * are per-A-row (dynamic activation quantisation) times per-B-column
 * (static weight quantisation); dequantisation is a fixed two-rounding
 * float expression shared by every caller. The fp16 panel
 * (gemmRowsF16) runs the fp32 tile over fp16-representable operands
 * and rounds each output through binary16 - fp16 storage, fp32
 * accumulation, fp16 result, the usual mixed-precision FPU contract.
 */
#ifndef FABNET_RUNTIME_KERNELS_H
#define FABNET_RUNTIME_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "runtime/dispatch.h"
#include "runtime/kernels_common.h"

namespace fabnet {
namespace runtime {

/**
 * C[r0..r1) = (bias|0) + A[r0..r1) * B for row-major A [m,k], B [k,n],
 * C [m,n]; bias (length n, may be null) initialises each output row.
 * OVERWRITES the C rows. Register-tiled; @p mk selects a kGemmKernels
 * register shape (results are bitwise identical for every shape - use
 * planGemmF32() from autotune.h to pick the fast one).
 */
inline void
gemmRowsIKJ(const float *a, const float *b, float *c, std::size_t r0,
            std::size_t r1, std::size_t k, std::size_t n,
            const float *bias = nullptr, int mk = kDefaultGemmKernel)
{
    kernels().gemm_f32(a, b, c, r0, r1, k, n, bias, mk);
}

/** Largest |x| over @p n contiguous floats. */
inline float
maxAbsRow(const float *x, std::size_t n)
{
    return kernels().max_abs_row(x, n);
}

/**
 * Quantise @p n floats with a shared @p scale (one division up front,
 * then multiplies). Returns the inverse scale actually used.
 */
inline float
quantizeInt8Row(const float *x, std::int8_t *q, std::size_t n,
                float scale)
{
    const float inv = 1.0f / scale;
    kernels().quantize_i8_row(x, q, n, inv);
    return inv;
}

/**
 * Quantise @p n floats with per-element inverse scales (used for the
 * per-column quantisation of a GEMM B operand, one row at a time so
 * the writes stay contiguous).
 */
inline void
quantizeInt8RowPerCol(const float *x, std::int8_t *q, std::size_t n,
                      const float *inv)
{
    kernels().quantize_i8_row_percol(x, q, n, inv);
}

/**
 * Int8 GEMM panel over the packed-B layout (packInt8PairsB):
 * C[r0..r1) = dequant(A8[r0..r1) * B8) (+ bias), A8 row-major [m, k]
 * int8, C fp32 [m, n]. a_scale has one entry per A row, b_scale one
 * per B column; each output is
 *     C[i][j] = acc_int32 * (a_scale[i] * b_scale[j])  (+ bias[j])
 * with the bias added as a separate rounded op. Accumulation is exact
 * int32 (overflow-free for k < 2^31 / 127^2 ~ 133k), so results are
 * identical to the scalar reference at any thread count and on every
 * ISA variant.
 */
inline void
gemmRowsInt8(const std::int8_t *a, const std::int16_t *bp, float *c,
             std::size_t r0, std::size_t r1, std::size_t k,
             std::size_t n, const float *a_scale, const float *b_scale,
             const float *bias = nullptr)
{
    kernels().gemm_i8(a, bp, c, r0, r1, k, n, a_scale, b_scale, bias);
}

// ------------------------------------------------------------- fp16

/** Round @p n floats through binary16 in place. */
inline void
roundRowToHalf(float *x, std::size_t n)
{
    kernels().round_row_to_half(x, n);
}

/** Widen @p n binary16 bit patterns to float (exact). */
inline void
halfBitsToFloatRow(const std::uint16_t *h, float *f, std::size_t n)
{
    kernels().half_bits_to_float_row(h, f, n);
}

/** Round @p n floats to binary16 bit patterns. */
inline void
floatToHalfBitsRow(const float *f, std::uint16_t *h, std::size_t n)
{
    kernels().float_to_half_bits_row(f, h, n);
}

/**
 * fp16 GEMM panel: @p a and @p b must hold fp16-representable floats
 * (operands rounded through binary16 up front - fp16 *storage*), the
 * accumulation runs the fp32 register tile with the usual k-increasing
 * chain (fp32 *accumulate*), and every finished output row is rounded
 * through binary16 (fp16 *result*). One rounding per output instead of
 * the per-product rounding of the sim BU datapath (sim/datapath.h) -
 * the documented gap between the two is a few fp16 ulps, pinned by the
 * cross-validation tests.
 */
inline void
gemmRowsF16(const float *a, const float *b, float *c, std::size_t r0,
            std::size_t r1, std::size_t k, std::size_t n,
            const float *bias = nullptr, int mk = kDefaultGemmKernel)
{
    const KernelTable &t = kernels();
    t.gemm_f32(a, b, c, r0, r1, k, n, bias, mk);
    for (std::size_t r = r0; r < r1; ++r)
        t.round_row_to_half(c + r * n, n);
}

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_KERNELS_H
