/**
 * @file kernels.h
 * Shared register-blocked GEMM micro-kernels. Every caller-facing
 * parallel path (ops::matmul, ops::matmulTransposed via an explicit
 * transpose, Dense::forward, attention) lowers onto the same panel so
 * the performance work - and the bitwise behaviour - lives in exactly
 * one place.
 *
 * The kernel preserves the floating-point accumulation order of the
 * naive scalar loops per output element (k strictly increasing with a
 * single accumulator chain per C[i][j]), so blocking changes neither
 * results nor the determinism guarantee documented in parallel.h.
 */
#ifndef FABNET_RUNTIME_KERNELS_H
#define FABNET_RUNTIME_KERNELS_H

#include <cmath>
#include <cstddef>
#include <cstring>

namespace fabnet {
namespace runtime {

/**
 * Pinned multiply-add: a*b + c with an explicitly chosen contraction.
 * Both the blocked kernels and the scalar reference paths accumulate
 * through this helper, so the compiler cannot fuse one side and not
 * the other - the root requirement behind the bitwise-parity
 * guarantee. Uses the hardware fma when the target has one (single
 * rounding, and vectorises to vfmadd), plain mul+add otherwise.
 */
inline float
madd(float a, float b, float c)
{
#if defined(__FP_FAST_FMAF) || defined(FP_FAST_FMAF)
    return std::fma(a, b, c);
#else
    return a * b + c;
#endif
}

/** Column tile width held in registers by the GEMM micro-kernel. */
constexpr std::size_t kGemmTileN = 32;
/** Row tile height of the GEMM micro-kernel. */
constexpr std::size_t kGemmTileM = 4;

namespace detail {

/**
 * One register tile: C[i0..i0+mr) x [j0..j0+jn) = (bias|0) + A * B.
 * mr <= kGemmTileM rows, jn <= kGemmTileN columns. The accumulators
 * live in a fixed-size local array the whole k loop, so there is no
 * C traffic (and no load/store rounding detour) inside the hot loop.
 */
inline void
gemmTile(const float *a, const float *b, float *c, std::size_t i0,
         std::size_t mr, std::size_t j0, std::size_t jn, std::size_t k,
         std::size_t n, const float *bias)
{
    float acc[kGemmTileM][kGemmTileN];
    for (std::size_t r = 0; r < mr; ++r) {
        if (bias) {
            for (std::size_t j = 0; j < jn; ++j)
                acc[r][j] = bias[j0 + j];
        } else {
            for (std::size_t j = 0; j < jn; ++j)
                acc[r][j] = 0.0f;
        }
    }
    if (mr == kGemmTileM && jn == kGemmTileN) {
        // Full tile: constant trip counts so the compiler keeps the
        // 4x16 accumulator block in vector registers.
        const float *a0 = a + (i0 + 0) * k;
        const float *a1 = a + (i0 + 1) * k;
        const float *a2 = a + (i0 + 2) * k;
        const float *a3 = a + (i0 + 3) * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j0;
            const float av0 = a0[kk];
            const float av1 = a1[kk];
            const float av2 = a2[kk];
            const float av3 = a3[kk];
            for (std::size_t j = 0; j < kGemmTileN; ++j) {
                const float bv = brow[j];
                acc[0][j] = madd(av0, bv, acc[0][j]);
                acc[1][j] = madd(av1, bv, acc[1][j]);
                acc[2][j] = madd(av2, bv, acc[2][j]);
                acc[3][j] = madd(av3, bv, acc[3][j]);
            }
        }
    } else {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j0;
            for (std::size_t r = 0; r < mr; ++r) {
                const float av = a[(i0 + r) * k + kk];
                for (std::size_t j = 0; j < jn; ++j)
                    acc[r][j] = madd(av, brow[j], acc[r][j]);
            }
        }
    }
    for (std::size_t r = 0; r < mr; ++r)
        std::memcpy(c + (i0 + r) * n + j0, acc[r], jn * sizeof(float));
}

} // namespace detail

/**
 * C[r0..r1) = (bias|0) + A[r0..r1) * B for row-major A [m,k], B [k,n],
 * C [m,n]; bias (length n, may be null) initialises each output row.
 * OVERWRITES the C rows. Register-tiled kGemmTileM x kGemmTileN.
 */
inline void
gemmRowsIKJ(const float *a, const float *b, float *c, std::size_t r0,
            std::size_t r1, std::size_t k, std::size_t n,
            const float *bias = nullptr)
{
    for (std::size_t i = r0; i < r1; i += kGemmTileM) {
        const std::size_t mr = (i + kGemmTileM <= r1) ? kGemmTileM
                                                      : r1 - i;
        for (std::size_t j = 0; j < n; j += kGemmTileN) {
            const std::size_t jn =
                (j + kGemmTileN <= n) ? kGemmTileN : n - j;
            detail::gemmTile(a, b, c, i, mr, j, jn, k, n, bias);
        }
    }
}

/** dst[j*rows + i] = src[i*cols + j]: row-major transpose copy. */
inline void
transposeInto(float *dst, const float *src, std::size_t rows,
              std::size_t cols)
{
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            dst[j * rows + i] = src[i * cols + j];
}

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_KERNELS_H
