/**
 * @file kernels.h
 * Shared register-blocked GEMM micro-kernels. Every caller-facing
 * parallel path (ops::matmul, ops::matmulTransposed via an explicit
 * transpose, Dense::forward, attention) lowers onto the same panel so
 * the performance work - and the bitwise behaviour - lives in exactly
 * one place.
 *
 * The kernel preserves the floating-point accumulation order of the
 * naive scalar loops per output element (k strictly increasing with a
 * single accumulator chain per C[i][j]), so blocking changes neither
 * results nor the determinism guarantee documented in parallel.h.
 *
 * ## Quantized variants
 * The int8 panel (gemmRowsInt8) mirrors the fp32 tiling but multiplies
 * int8 operands into int32 accumulators - integer arithmetic is exact,
 * so the blocked/vectorised path is *identical* (not just bitwise-
 * reproducible) to the scalar reference at any thread count. Scales
 * are per-A-row (dynamic activation quantisation) times per-B-column
 * (static weight quantisation); dequantisation is a fixed two-rounding
 * float expression shared by every caller. The fp16 panel
 * (gemmRowsF16) runs the fp32 tile over fp16-representable operands
 * and rounds each output through binary16 - fp16 storage, fp32
 * accumulation, fp16 result, the usual mixed-precision FPU contract.
 */
#ifndef FABNET_RUNTIME_KERNELS_H
#define FABNET_RUNTIME_KERNELS_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || defined(__F16C__)
#include <immintrin.h>
#endif

#include "runtime/workspace.h"
#include "tensor/half.h"

namespace fabnet {
namespace runtime {

/**
 * Pinned multiply-add: a*b + c with an explicitly chosen contraction.
 * Both the blocked kernels and the scalar reference paths accumulate
 * through this helper, so the compiler cannot fuse one side and not
 * the other - the root requirement behind the bitwise-parity
 * guarantee. Uses the hardware fma when the target has one (single
 * rounding, and vectorises to vfmadd), plain mul+add otherwise.
 */
inline float
madd(float a, float b, float c)
{
#if defined(__FP_FAST_FMAF) || defined(FP_FAST_FMAF)
    return std::fma(a, b, c);
#else
    return a * b + c;
#endif
}

/** Column tile width held in registers by the GEMM micro-kernel. */
constexpr std::size_t kGemmTileN = 32;
/** Row tile height of the GEMM micro-kernel. */
constexpr std::size_t kGemmTileM = 4;

namespace detail {

/**
 * One register tile: C[i0..i0+mr) x [j0..j0+jn) = (bias|0) + A * B.
 * mr <= kGemmTileM rows, jn <= kGemmTileN columns. The accumulators
 * live in a fixed-size local array the whole k loop, so there is no
 * C traffic (and no load/store rounding detour) inside the hot loop.
 */
inline void
gemmTile(const float *a, const float *b, float *c, std::size_t i0,
         std::size_t mr, std::size_t j0, std::size_t jn, std::size_t k,
         std::size_t n, const float *bias)
{
    float acc[kGemmTileM][kGemmTileN];
    for (std::size_t r = 0; r < mr; ++r) {
        if (bias) {
            for (std::size_t j = 0; j < jn; ++j)
                acc[r][j] = bias[j0 + j];
        } else {
            for (std::size_t j = 0; j < jn; ++j)
                acc[r][j] = 0.0f;
        }
    }
    if (mr == kGemmTileM && jn == kGemmTileN) {
        // Full tile: constant trip counts so the compiler keeps the
        // 4x16 accumulator block in vector registers.
        const float *a0 = a + (i0 + 0) * k;
        const float *a1 = a + (i0 + 1) * k;
        const float *a2 = a + (i0 + 2) * k;
        const float *a3 = a + (i0 + 3) * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j0;
            const float av0 = a0[kk];
            const float av1 = a1[kk];
            const float av2 = a2[kk];
            const float av3 = a3[kk];
            for (std::size_t j = 0; j < kGemmTileN; ++j) {
                const float bv = brow[j];
                acc[0][j] = madd(av0, bv, acc[0][j]);
                acc[1][j] = madd(av1, bv, acc[1][j]);
                acc[2][j] = madd(av2, bv, acc[2][j]);
                acc[3][j] = madd(av3, bv, acc[3][j]);
            }
        }
    } else {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j0;
            for (std::size_t r = 0; r < mr; ++r) {
                const float av = a[(i0 + r) * k + kk];
                for (std::size_t j = 0; j < jn; ++j)
                    acc[r][j] = madd(av, brow[j], acc[r][j]);
            }
        }
    }
    for (std::size_t r = 0; r < mr; ++r)
        std::memcpy(c + (i0 + r) * n + j0, acc[r], jn * sizeof(float));
}

} // namespace detail

/**
 * C[r0..r1) = (bias|0) + A[r0..r1) * B for row-major A [m,k], B [k,n],
 * C [m,n]; bias (length n, may be null) initialises each output row.
 * OVERWRITES the C rows. Register-tiled kGemmTileM x kGemmTileN.
 */
inline void
gemmRowsIKJ(const float *a, const float *b, float *c, std::size_t r0,
            std::size_t r1, std::size_t k, std::size_t n,
            const float *bias = nullptr)
{
    for (std::size_t i = r0; i < r1; i += kGemmTileM) {
        const std::size_t mr = (i + kGemmTileM <= r1) ? kGemmTileM
                                                      : r1 - i;
        for (std::size_t j = 0; j < n; j += kGemmTileN) {
            const std::size_t jn =
                (j + kGemmTileN <= n) ? kGemmTileN : n - j;
            detail::gemmTile(a, b, c, i, mr, j, jn, k, n, bias);
        }
    }
}

/** dst[j*rows + i] = src[i*cols + j]: row-major transpose copy. */
template <class T>
inline void
transposeInto(T *dst, const T *src, std::size_t rows, std::size_t cols)
{
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            dst[j * rows + i] = src[i * cols + j];
}

// ------------------------------------------------------------- int8

/** Symmetric int8 range: [-127, 127]. -128 is never produced, so the
 *  grid is symmetric and negation is exact. */
constexpr std::int32_t kInt8Max = 127;

/** Scale mapping one int8 step to @p max_abs / 127 (1.0 when the data
 *  is all zero, so dequantisation is still well-defined). */
inline float
int8Scale(float max_abs)
{
    return max_abs > 0.0f ? max_abs / static_cast<float>(kInt8Max)
                          : 1.0f;
}

/**
 * Quantise one value: round-to-nearest-even of x * inv_scale, clamped
 * (saturated) to [-127, 127]. Every int8 path in the codebase - the
 * GEMM/butterfly kernels, their scalar references and nn/quantize.h -
 * quantises through this one helper so the semantics the golden tests
 * pin down hold everywhere.
 */
inline std::int8_t
quantizeInt8(float x, float inv_scale)
{
    long q = std::lrintf(x * inv_scale);
    if (q > kInt8Max)
        q = kInt8Max;
    if (q < -kInt8Max)
        q = -kInt8Max;
    return static_cast<std::int8_t>(q);
}

/** Largest |x| over @p n contiguous floats. (Max is commutative and
 *  associative on the non-NaN data the kernels see, so the vectorised
 *  reduction returns the same value as the scalar loop.) */
inline float
maxAbsRow(const float *x, std::size_t n)
{
    float m = 0.0f;
    std::size_t i = 0;
#if defined(__AVX512F__)
    if (n >= 16) {
        const __m512 absmask = _mm512_castsi512_ps(
            _mm512_set1_epi32(0x7FFFFFFF));
        __m512 vm = _mm512_setzero_ps();
        for (; i + 16 <= n; i += 16)
            vm = _mm512_max_ps(
                vm, _mm512_and_ps(_mm512_loadu_ps(x + i), absmask));
        m = _mm512_reduce_max_ps(vm);
    }
#endif
    for (; i < n; ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

#if defined(__AVX512F__)
namespace detail {
/** 16-lane quantizeInt8 (same product rounding, RNE conversion and
 *  [-127, 127] clamp as the scalar helper - vpmovsdb alone would
 *  saturate to -128, so the clamp is explicit). */
inline void
quantizeInt8Lanes(const float *x, std::int8_t *q, __m512 vinv)
{
    const __m512i lo = _mm512_set1_epi32(-kInt8Max);
    const __m512i hi = _mm512_set1_epi32(kInt8Max);
    __m512i r =
        _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(x), vinv));
    r = _mm512_min_epi32(_mm512_max_epi32(r, lo), hi);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(q),
                     _mm512_cvtsepi32_epi8(r));
}
} // namespace detail
#endif

/**
 * Quantise @p n floats with a shared @p scale (one division up front,
 * then multiplies). Returns the inverse scale actually used.
 */
inline float
quantizeInt8Row(const float *x, std::int8_t *q, std::size_t n,
                float scale)
{
    const float inv = 1.0f / scale;
    std::size_t i = 0;
#if defined(__AVX512F__)
    const __m512 vinv = _mm512_set1_ps(inv);
    for (; i + 16 <= n; i += 16)
        detail::quantizeInt8Lanes(x + i, q + i, vinv);
#endif
    for (; i < n; ++i)
        q[i] = quantizeInt8(x[i], inv);
    return inv;
}

/**
 * Quantise @p n floats with per-element inverse scales (used for the
 * per-column quantisation of a GEMM B operand, one row at a time so
 * the writes stay contiguous).
 */
inline void
quantizeInt8RowPerCol(const float *x, std::int8_t *q, std::size_t n,
                      const float *inv)
{
    std::size_t i = 0;
#if defined(__AVX512F__)
    const __m512i lo = _mm512_set1_epi32(-kInt8Max);
    const __m512i hi = _mm512_set1_epi32(kInt8Max);
    for (; i + 16 <= n; i += 16) {
        __m512i r = _mm512_cvtps_epi32(_mm512_mul_ps(
            _mm512_loadu_ps(x + i), _mm512_loadu_ps(inv + i)));
        r = _mm512_min_epi32(_mm512_max_epi32(r, lo), hi);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(q + i),
                         _mm512_cvtsepi32_epi8(r));
    }
#endif
    for (; i < n; ++i)
        q[i] = quantizeInt8(x[i], inv[i]);
}

/**
 * Dequantise an int32 GEMM accumulator with an optional bias:
 * madd(acc, a_scale * b_scale, bias). Routing the multiply-add
 * through madd pins the contraction (explicit std::fma when the
 * target has one) so every translation unit - kernels, references,
 * tests - produces bit-identical dequantised outputs.
 */
inline float
dequantInt8(std::int32_t acc, float a_scale, float b_scale,
            float bias = 0.0f)
{
    return madd(static_cast<float>(acc), a_scale * b_scale, bias);
}

/**
 * Pack row-major int8 B [k, n] into the k-pair-interleaved int16
 * layout the int8 panel consumes: bp[(kp*n + j)*2 + {0,1}] =
 * {B[2kp][j], B[2kp+1][j]} (zero-padded when k is odd). Widening to
 * int16 at pack time lets the hot loop run multiply-accumulate pairs
 * (vpmaddwd on AVX2) straight off contiguous loads. @p bp must hold
 * ((k+1)/2) * n * 2 elements.
 */
inline void
packInt8PairsB(const std::int8_t *b, std::int16_t *bp, std::size_t k,
               std::size_t n)
{
    const std::size_t kp_count = (k + 1) / 2;
    for (std::size_t kp = 0; kp < kp_count; ++kp) {
        const std::int8_t *row0 = b + (2 * kp) * n;
        const std::int8_t *row1 =
            (2 * kp + 1 < k) ? b + (2 * kp + 1) * n : nullptr;
        std::int16_t *dst = bp + kp * n * 2;
        for (std::size_t j = 0; j < n; ++j) {
            dst[j * 2 + 0] = row0[j];
            dst[j * 2 + 1] = row1 ? row1[j] : std::int16_t{0};
        }
    }
}

namespace detail {

/** Scalar int8 tile: exact int32 accumulation off the packed layout.
 *  Also the tail path of the AVX2 kernel - integer math is exact, so
 *  both produce identical accumulators. */
inline void
gemmTileInt8Scalar(const std::int8_t *a, const std::int16_t *bp,
                   float *c, std::size_t i0, std::size_t mr,
                   std::size_t j0, std::size_t jn, std::size_t k,
                   std::size_t n, const float *a_scale,
                   const float *b_scale, const float *bias)
{
    const std::size_t kp_count = k / 2;
    for (std::size_t r = 0; r < mr; ++r) {
        const std::int8_t *arow = a + (i0 + r) * k;
        for (std::size_t j = 0; j < jn; ++j) {
            std::int32_t acc = 0;
            const std::int16_t *bcol = bp + (j0 + j) * 2;
            for (std::size_t kp = 0; kp < kp_count; ++kp) {
                const std::int16_t *bpair = bcol + kp * n * 2;
                acc += static_cast<std::int32_t>(arow[2 * kp]) *
                       bpair[0];
                acc += static_cast<std::int32_t>(arow[2 * kp + 1]) *
                       bpair[1];
            }
            if (k & 1) {
                const std::int16_t *bpair = bcol + kp_count * n * 2;
                acc += static_cast<std::int32_t>(arow[k - 1]) *
                       bpair[0];
            }
            c[(i0 + r) * n + j0 + j] =
                dequantInt8(acc, a_scale[i0 + r], b_scale[j0 + j],
                            bias ? bias[j0 + j] : 0.0f);
        }
    }
}

#if defined(__AVX2__)

/**
 * Full 4x32 int8 tile: 16 ymm accumulators, one vpmaddwd + vpaddd per
 * (row, 8-column group, k-pair). @p arow holds the tile's four A rows
 * pre-widened to int16 pairs (an int32 load broadcasts one pair).
 * Each vpmaddwd lane computes a[2kp]*b[2kp][j] + a[2kp+1]*b[2kp+1][j]
 * exactly (products <= 127^2, pair sums <= 2*127^2 fit int32), so the
 * vector path's accumulators equal the scalar tile's.
 */
inline void
gemmTileInt8Avx2(const std::int16_t *const arow[kGemmTileM],
                 const std::int16_t *bp, float *c, std::size_t i0,
                 std::size_t j0, std::size_t kp_count, std::size_t n,
                 const float *a_scale, const float *b_scale,
                 const float *bias)
{
    __m256i acc[kGemmTileM][4];
    for (std::size_t r = 0; r < kGemmTileM; ++r)
        for (std::size_t v = 0; v < 4; ++v)
            acc[r][v] = _mm256_setzero_si256();

    for (std::size_t kp = 0; kp < kp_count; ++kp) {
        const std::int16_t *brow = bp + (kp * n + j0) * 2;
        __m256i bv[4];
        for (std::size_t v = 0; v < 4; ++v)
            bv[v] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                brow + v * 16));
        for (std::size_t r = 0; r < kGemmTileM; ++r) {
            int pair;
            std::memcpy(&pair, arow[r] + 2 * kp, sizeof(pair));
            const __m256i av = _mm256_set1_epi32(pair);
            for (std::size_t v = 0; v < 4; ++v)
                acc[r][v] = _mm256_add_epi32(
                    acc[r][v], _mm256_madd_epi16(av, bv[v]));
        }
    }

    alignas(32) std::int32_t lanes[8];
    for (std::size_t r = 0; r < kGemmTileM; ++r) {
        for (std::size_t v = 0; v < 4; ++v) {
            _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                               acc[r][v]);
            const std::size_t jb = j0 + v * 8;
            for (std::size_t j = 0; j < 8; ++j)
                c[(i0 + r) * n + jb + j] =
                    dequantInt8(lanes[j], a_scale[i0 + r],
                                b_scale[jb + j],
                                bias ? bias[jb + j] : 0.0f);
        }
    }
}

#define FABNET_HAS_WIDE_I8_TILE 1
#endif // __AVX2__

#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && \
    defined(__AVX512F__)

/**
 * Full 4x32 int8 tile on AVX-512 VNNI: vpdpwssd fuses the int16-pair
 * multiply-add-accumulate into one instruction over 16 int32 lanes,
 * so the whole tile is 8 dpwssd + 2 loads + 4 broadcasts per k-pair
 * (vs 16 fma per k for the fp32 tile). Operands are bounded to
 * [-127, 127], so the in-lane pair sum cannot overflow and the
 * accumulators are exact - identical to the scalar tile.
 */
inline void
gemmTileInt8Vnni(const std::int16_t *const arow[kGemmTileM],
                 const std::int16_t *bp, float *c, std::size_t i0,
                 std::size_t j0, std::size_t kp_count, std::size_t n,
                 const float *a_scale, const float *b_scale,
                 const float *bias)
{
    __m512i acc[kGemmTileM][2];
    for (std::size_t r = 0; r < kGemmTileM; ++r) {
        acc[r][0] = _mm512_setzero_si512();
        acc[r][1] = _mm512_setzero_si512();
    }

    for (std::size_t kp = 0; kp < kp_count; ++kp) {
        const std::int16_t *brow = bp + (kp * n + j0) * 2;
        const __m512i bv0 = _mm512_loadu_si512(brow);
        const __m512i bv1 = _mm512_loadu_si512(brow + 32);
        for (std::size_t r = 0; r < kGemmTileM; ++r) {
            int pair;
            std::memcpy(&pair, arow[r] + 2 * kp, sizeof(pair));
            const __m512i av = _mm512_set1_epi32(pair);
            acc[r][0] = _mm512_dpwssd_epi32(acc[r][0], av, bv0);
            acc[r][1] = _mm512_dpwssd_epi32(acc[r][1], av, bv1);
        }
    }

    alignas(64) std::int32_t lanes[16];
    for (std::size_t r = 0; r < kGemmTileM; ++r) {
        for (std::size_t v = 0; v < 2; ++v) {
            _mm512_store_si512(lanes, acc[r][v]);
            const std::size_t jb = j0 + v * 16;
            for (std::size_t j = 0; j < 16; ++j)
                c[(i0 + r) * n + jb + j] =
                    dequantInt8(lanes[j], a_scale[i0 + r],
                                b_scale[jb + j],
                                bias ? bias[jb + j] : 0.0f);
        }
    }
}

#define FABNET_HAS_VNNI_I8_TILE 1
#endif // __AVX512VNNI__

} // namespace detail

/**
 * Int8 GEMM panel over the packed-B layout (packInt8PairsB):
 * C[r0..r1) = dequant(A8[r0..r1) * B8) (+ bias), A8 row-major [m, k]
 * int8, C fp32 [m, n]. a_scale has one entry per A row, b_scale one
 * per B column; each output is
 *     C[i][j] = acc_int32 * (a_scale[i] * b_scale[j])  (+ bias[j])
 * with the bias added as a separate rounded op. Accumulation is exact
 * int32 (overflow-free for k < 2^31 / 127^2 ~ 133k), so results are
 * identical to the scalar reference at any thread count and with or
 * without the AVX2 fast path.
 */
namespace detail {
/** Workspace tag for the per-chunk int16-widened A rows. */
struct GemmInt8AWideWs;
} // namespace detail

inline void
gemmRowsInt8(const std::int8_t *a, const std::int16_t *bp, float *c,
             std::size_t r0, std::size_t r1, std::size_t k,
             std::size_t n, const float *a_scale, const float *b_scale,
             const float *bias = nullptr)
{
#if defined(FABNET_HAS_VNNI_I8_TILE) || defined(FABNET_HAS_WIDE_I8_TILE)
    const std::size_t kp_count = (k + 1) / 2;
    // Widen this chunk's A rows to int16 pairs once (zero-padded odd
    // k), so the vector tiles broadcast a pair with a single int32
    // load. Pure widening: the accumulated integers are unchanged.
    std::int16_t *a16 = threadWorkspaceAs<detail::GemmInt8AWideWs,
                                          std::int16_t>(
        (r1 - r0) * kp_count * 2);
    for (std::size_t i = r0; i < r1; ++i) {
        std::int16_t *dst = a16 + (i - r0) * kp_count * 2;
        const std::int8_t *src = a + i * k;
        for (std::size_t kk = 0; kk < k; ++kk)
            dst[kk] = src[kk];
        if (k & 1)
            dst[k] = 0;
    }
#endif
    for (std::size_t i = r0; i < r1; i += kGemmTileM) {
        const std::size_t mr = (i + kGemmTileM <= r1) ? kGemmTileM
                                                      : r1 - i;
        std::size_t j = 0;
#if defined(FABNET_HAS_VNNI_I8_TILE) || defined(FABNET_HAS_WIDE_I8_TILE)
        if (mr == kGemmTileM) {
            const std::int16_t *arow[kGemmTileM];
            for (std::size_t r = 0; r < kGemmTileM; ++r)
                arow[r] = a16 + (i + r - r0) * kp_count * 2;
#if defined(FABNET_HAS_VNNI_I8_TILE)
            for (; j + kGemmTileN <= n; j += kGemmTileN)
                detail::gemmTileInt8Vnni(arow, bp, c, i, j, kp_count,
                                         n, a_scale, b_scale, bias);
#else
            for (; j + kGemmTileN <= n; j += kGemmTileN)
                detail::gemmTileInt8Avx2(arow, bp, c, i, j, kp_count,
                                         n, a_scale, b_scale, bias);
#endif
        }
#endif
        for (; j < n; j += kGemmTileN) {
            const std::size_t jn =
                (j + kGemmTileN <= n) ? kGemmTileN : n - j;
            detail::gemmTileInt8Scalar(a, bp, c, i, mr, j, jn, k, n,
                                       a_scale, b_scale, bias);
        }
    }
}

// ------------------------------------------------------------- fp16

// The row conversion helpers use the F16C units (vcvtps2ph/vcvtph2ps)
// when the target has them: hardware round-to-nearest-even float<->
// binary16 conversion is bit-identical to the software conversion in
// tensor/half.h for all finite values and infinities (pinned by
// tests/quantize_golden_test.cpp), and turns the fp16 operand
// rounding from the dominant cost of the fp16 GEMM into noise.

/** Round @p n floats through binary16 in place. */
inline void
roundRowToHalf(float *x, std::size_t n)
{
    std::size_t i = 0;
#if defined(__F16C__)
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm256_cvtps_ph(
            _mm256_loadu_ps(x + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm256_storeu_ps(x + i, _mm256_cvtph_ps(h));
    }
#endif
    for (; i < n; ++i)
        x[i] = roundToHalf(x[i]);
}

/** Widen @p n binary16 bit patterns to float (exact). */
inline void
halfBitsToFloatRow(const std::uint16_t *h, float *f, std::size_t n)
{
    std::size_t i = 0;
#if defined(__F16C__)
    for (; i + 8 <= n; i += 8) {
        const __m128i bits = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(h + i));
        _mm256_storeu_ps(f + i, _mm256_cvtph_ps(bits));
    }
#endif
    for (; i < n; ++i)
        f[i] = halfBitsToFloat(h[i]);
}

/** Round @p n floats to binary16 bit patterns. */
inline void
floatToHalfBitsRow(const float *f, std::uint16_t *h, std::size_t n)
{
    std::size_t i = 0;
#if defined(__F16C__)
    for (; i + 8 <= n; i += 8) {
        const __m128i bits = _mm256_cvtps_ph(
            _mm256_loadu_ps(f + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(h + i), bits);
    }
#endif
    for (; i < n; ++i)
        h[i] = floatToHalfBits(f[i]);
}

/**
 * fp16 GEMM panel: @p a and @p b must hold fp16-representable floats
 * (operands rounded through binary16 up front - fp16 *storage*), the
 * accumulation runs the fp32 register tile with the usual k-increasing
 * chain (fp32 *accumulate*), and every finished output row is rounded
 * through binary16 (fp16 *result*). One rounding per output instead of
 * the per-product rounding of the sim BU datapath (sim/datapath.h) -
 * the documented gap between the two is a few fp16 ulps, pinned by the
 * cross-validation tests.
 */
inline void
gemmRowsF16(const float *a, const float *b, float *c, std::size_t r0,
            std::size_t r1, std::size_t k, std::size_t n,
            const float *bias = nullptr)
{
    gemmRowsIKJ(a, b, c, r0, r1, k, n, bias);
    for (std::size_t r = r0; r < r1; ++r)
        roundRowToHalf(c + r * n, n);
}

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_KERNELS_H
