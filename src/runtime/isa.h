/**
 * @file isa.h
 * Runtime ISA detection and selection.
 *
 * Every binary carries four compiled kernel variants (scalar, AVX2,
 * AVX-512, AVX-512+VNNI - see dispatch.h); which one runs is decided
 * ONCE at startup from CPUID, not at compile time. This is the
 * software half of the paper's adaptability claim: the same butterfly
 * engine binary adapts to whatever the deployment target offers,
 * instead of being specialised (and SIGILLing elsewhere) by
 * `-march=native`.
 *
 * The choice is overridable with the FABNET_ISA environment variable
 * ("scalar", "avx2", "avx512", "avx512vnni", or "best"); a request the
 * host cannot execute is clamped DOWN to the best supported level with
 * a warning on stderr, so forced-ISA test runs stay portable.
 */
#ifndef FABNET_RUNTIME_ISA_H
#define FABNET_RUNTIME_ISA_H

#include <string>

namespace fabnet {
namespace runtime {

/** Kernel-variant levels, ordered weakest to strongest. Each level
 *  implies everything below it. */
enum class Isa : int {
    Scalar = 0,     ///< baseline x86-64 (SSE2), no feature checks
    Avx2 = 1,       ///< AVX2 + FMA-free mul/add + F16C conversions
    Avx512 = 2,     ///< AVX-512 F/BW/DQ/VL (+ AVX2 + F16C)
    Avx512Vnni = 3, ///< AVX-512 with VNNI int8 dot-product
};

/** Number of Isa levels (for iteration in tests/benches). */
inline constexpr int kNumIsaLevels = 4;

/** Short lowercase name ("scalar", "avx2", "avx512", "avx512vnni"). */
const char *isaName(Isa isa);

/** True when the HOST cpu can execute every instruction the given
 *  variant level may use (via CPUID; Scalar is always true). */
bool isaSupported(Isa isa);

/** Best level the host supports (ignores FABNET_ISA). */
Isa bestSupportedIsa();

/**
 * The level selected for this process: FABNET_ISA if set (clamped to
 * bestSupportedIsa() when the host can't run the request), otherwise
 * bestSupportedIsa(). Decided once on first call and cached.
 */
Isa activeIsa();

/** isaName(activeIsa()) - the string benches and stats record. */
const char *isa();

/**
 * Stable human-readable CPU signature: brand string plus the feature
 * flags the dispatcher cares about, e.g.
 * "Intel(R) Xeon(R) ... | avx2 f16c fma avx512f avx512bw avx512dq
 * avx512vl". Keys the on-disk tuning cache (autotune.h) so tiles
 * tuned on one machine are never silently replayed on another.
 */
const std::string &cpuSignature();

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_ISA_H
