/**
 * @file parallel.h
 * Shared parallel runtime: a persistent thread pool plus a
 * deterministic parallelFor that every host-side hot path (GEMM,
 * batched butterfly, attention) is built on.
 *
 * ## Thread count
 * The pool size is read once from the FABNET_NUM_THREADS environment
 * variable (falling back to std::thread::hardware_concurrency) and can
 * be changed at runtime with setNumThreads(). A value of 1 runs every
 * parallelFor inline on the calling thread with zero synchronisation
 * overhead.
 *
 * ## Determinism guarantee
 * parallelFor(begin, end, grain, body) partitions [begin, end) into
 * fixed chunks of at most `grain` indices. Chunks are claimed
 * dynamically by workers, but every index is executed exactly once and
 * the body for one index always performs the same floating-point
 * operations in the same order regardless of which thread runs it.
 * All kernels in this codebase additionally write disjoint outputs per
 * index (rows of C, rows of a butterfly batch, (batch, head) slices of
 * attention) and never reduce across indices inside parallelFor.
 * Together this makes every parallel kernel produce bitwise-identical
 * results at ANY thread count, including 1 - the property the parity
 * tests in tests/parallel_kernels_test.cpp pin down.
 *
 * Nested parallelFor calls (a body that itself calls parallelFor) run
 * the inner loop serially on the calling worker, so composition is
 * safe and still deterministic.
 */
#ifndef FABNET_RUNTIME_PARALLEL_H
#define FABNET_RUNTIME_PARALLEL_H

#include <cstddef>
#include <functional>

namespace fabnet {
namespace runtime {

/** Current pool size (>= 1). */
std::size_t numThreads();

/**
 * Resize the pool. @p n == 0 re-reads FABNET_NUM_THREADS / hardware
 * concurrency. Safe to call between parallel regions (not from inside
 * a parallelFor body).
 */
void setNumThreads(std::size_t n);

/**
 * Execute body(chunk_begin, chunk_end) over a partition of
 * [begin, end) in parallel. @p grain is the maximum chunk size (also
 * the unit of work distribution); pass the natural "row" granularity
 * of the kernel. Runs inline when the range is small or the pool has
 * one thread. Exceptions thrown by the body are rethrown on the
 * calling thread.
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)> &body);

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_PARALLEL_H
