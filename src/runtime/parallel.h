/**
 * @file parallel.h
 * Shared parallel runtime: a persistent thread pool plus a
 * deterministic parallelFor that every host-side hot path (GEMM,
 * batched butterfly, attention) is built on.
 *
 * ## Thread count
 * The pool size is read once from the FABNET_NUM_THREADS environment
 * variable (falling back to std::thread::hardware_concurrency) and can
 * be changed at runtime with setNumThreads(). A value of 1 runs every
 * parallelFor inline on the calling thread with zero synchronisation
 * overhead.
 *
 * ## Determinism guarantee
 * parallelFor(begin, end, grain, body) partitions [begin, end) into
 * fixed chunks of at most `grain` indices. Chunks are claimed
 * dynamically by workers, but every index is executed exactly once and
 * the body for one index always performs the same floating-point
 * operations in the same order regardless of which thread runs it.
 * All kernels in this codebase additionally write disjoint outputs per
 * index (rows of C, rows of a butterfly batch, (batch, head) slices of
 * attention) and never reduce across indices inside parallelFor.
 * Together this makes every parallel kernel produce bitwise-identical
 * results at ANY thread count, including 1 - the property the parity
 * tests in tests/parallel_kernels_test.cpp pin down.
 *
 * Nested parallelFor calls (a body that itself calls parallelFor) run
 * the inner loop serially on the calling worker, so composition is
 * safe and still deterministic.
 *
 * ## Cancellation
 * A thread may install a CancelToken with a CancelScope; parallelFor
 * regions STARTED BY THAT THREAD then re-check the token between grain
 * chunks and abort by throwing Cancelled once it fires (in-flight
 * chunks finish; no partial chunk is ever observed). This is the
 * mechanism the serving watchdog and shutdown deadline use to unstick
 * a model invocation without poisoning results: a cancelled region's
 * output is discarded by the thrower, and regions started by other
 * threads never see the token. checkCancelled() offers the same test
 * at coarser (e.g. per-layer) granularity between regions.
 */
#ifndef FABNET_RUNTIME_PARALLEL_H
#define FABNET_RUNTIME_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>

namespace fabnet {
namespace runtime {

/** Current pool size (>= 1). */
std::size_t numThreads();

/**
 * Resize the pool. @p n == 0 re-reads FABNET_NUM_THREADS / hardware
 * concurrency. Safe to call between parallel regions (not from inside
 * a parallelFor body).
 */
void setNumThreads(std::size_t n);

/**
 * Execute body(chunk_begin, chunk_end) over a partition of
 * [begin, end) in parallel. @p grain is the maximum chunk size (also
 * the unit of work distribution); pass the natural "row" granularity
 * of the kernel. Runs inline when the range is small or the pool has
 * one thread. Exceptions thrown by the body are rethrown on the
 * calling thread.
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)> &body);

/** Thrown out of parallelFor / checkCancelled when the installing
 *  thread's CancelToken fires. Catch sites discard the partial work. */
class Cancelled : public std::exception
{
  public:
    const char *what() const noexcept override
    {
        return "fabnet::runtime::Cancelled";
    }
};

/**
 * One-shot cancellation flag, settable from any thread (a watchdog, a
 * shutdown timer). Observed by parallelFor regions of the thread that
 * installed it via CancelScope, and by explicit checkCancelled().
 */
class CancelToken
{
  public:
    void cancel() { flag_.store(true, std::memory_order_release); }
    bool cancelled() const
    {
        return flag_.load(std::memory_order_acquire);
    }
    void reset() { flag_.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> flag_{false};
};

/**
 * RAII install of a CancelToken on the calling thread. While in scope,
 * parallelFor regions started by this thread poll the token between
 * grain chunks and throw Cancelled when it fires; other threads'
 * regions are unaffected. Scopes nest (the innermost token wins) and
 * the previous token is restored on destruction.
 */
class CancelScope
{
  public:
    explicit CancelScope(const CancelToken &token);
    ~CancelScope();
    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    const CancelToken *previous_;
};

/** Throw Cancelled if the calling thread's installed token has fired
 *  (no-op without a CancelScope) - the between-regions check coarse
 *  paths (e.g. SequenceClassifier::forwardBatch between blocks) use. */
void checkCancelled();

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_PARALLEL_H
