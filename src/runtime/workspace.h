/**
 * @file workspace.h
 * Per-thread scratch buffers for the parallel kernels, with a
 * grow/cap/shrink lifecycle.
 *
 * Each distinct Tag type gets its own thread_local vector, so two
 * kernels that are live at the same time on one thread (e.g. a
 * butterfly core running inside ButterflyLinear's padding loop) use
 * disjoint storage. Buffers grow on demand and are reused for the
 * life of the thread: after the largest shape has been seen once, the
 * hot paths perform zero heap allocations.
 *
 * ## Cap/shrink policy
 * By default buffers are grow-only, which is right for short-lived
 * batch jobs but wrong for long-lived serving threads: one oversized
 * request would pin peak-size scratch forever. setWorkspaceCapBytes()
 * installs a process-wide retention cap: whenever a thread re-enters
 * threadWorkspace() with a request that fits under the cap but its
 * retained buffer has grown past it, the buffer is released and
 * re-allocated at the requested size. Requests larger than the cap are
 * always honoured (correctness over policy) - the oversized buffer is
 * simply released again on the next under-cap request. A cap of 0
 * restores the grow-only behaviour. The serving engine
 * (serve/serving.h) installs the cap from ServingConfig for the
 * duration of its lifetime.
 */
#ifndef FABNET_RUNTIME_WORKSPACE_H
#define FABNET_RUNTIME_WORKSPACE_H

#include <atomic>
#include <cstddef>
#include <vector>

namespace fabnet {
namespace runtime {

namespace detail {

inline std::atomic<std::size_t> g_workspace_cap_bytes{0};

template <class Tag, class T>
inline std::vector<T> &
workspaceStorage()
{
    thread_local std::vector<T> ws;
    return ws;
}

} // namespace detail

/**
 * Install a process-wide retention cap (bytes) on per-(thread, tag)
 * scratch buffers. 0 = unlimited (grow-only). Takes effect lazily the
 * next time each thread calls threadWorkspace().
 */
inline void
setWorkspaceCapBytes(std::size_t bytes)
{
    detail::g_workspace_cap_bytes.store(bytes, std::memory_order_relaxed);
}

/** Current retention cap in bytes (0 = unlimited). */
inline std::size_t
workspaceCapBytes()
{
    return detail::g_workspace_cap_bytes.load(std::memory_order_relaxed);
}

/**
 * RAII: install a workspace cap for the current scope and restore the
 * previous value on exit, exceptions included. Prefer this (or the
 * engine-shared serve::detail::WorkspaceCapLease, which composes
 * overlapping caps) over raw setWorkspaceCapBytes() pairs - a throw
 * between install and restore would otherwise leak the process-wide
 * policy change.
 */
class WorkspaceCapGuard
{
  public:
    explicit WorkspaceCapGuard(std::size_t bytes)
        : prev_(workspaceCapBytes())
    {
        setWorkspaceCapBytes(bytes);
    }
    WorkspaceCapGuard(const WorkspaceCapGuard &) = delete;
    WorkspaceCapGuard &operator=(const WorkspaceCapGuard &) = delete;
    ~WorkspaceCapGuard() { setWorkspaceCapBytes(prev_); }

  private:
    std::size_t prev_;
};

/**
 * Typed scratch buffer of at least @p count elements of @p T for the
 * calling thread and @p Tag. The pointer stays valid until the next
 * call with the same (Tag, T) on this thread. The quantized kernels
 * use std::int8_t / std::int32_t / std::uint16_t element types; each
 * (Tag, T) pair owns disjoint storage and the retention cap applies
 * per buffer in bytes.
 */
template <class Tag, class T>
inline T *
threadWorkspaceAs(std::size_t count)
{
    std::vector<T> &ws = detail::workspaceStorage<Tag, T>();
    const std::size_t cap_elems = workspaceCapBytes() / sizeof(T);
    if (cap_elems != 0 && count <= cap_elems &&
        ws.capacity() > cap_elems) {
        // Retained scratch exceeds the cap while the live request fits
        // under it: release and start over at the requested size.
        std::vector<T>().swap(ws);
    }
    if (ws.size() < count)
        ws.resize(count);
    return ws.data();
}

/**
 * Scratch buffer of at least @p floats floats for the calling thread
 * and @p Tag. The pointer stays valid until the next call with the
 * same Tag on this thread.
 */
template <class Tag>
inline float *
threadWorkspace(std::size_t floats)
{
    return threadWorkspaceAs<Tag, float>(floats);
}

/** Bytes currently retained by this thread's (Tag, T) buffer (tests). */
template <class Tag, class T = float>
inline std::size_t
threadWorkspaceCapacityBytes()
{
    return detail::workspaceStorage<Tag, T>().capacity() * sizeof(T);
}

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_WORKSPACE_H
