/**
 * @file workspace.h
 * Grow-only per-thread scratch buffers for the parallel kernels.
 *
 * Each distinct Tag type gets its own thread_local vector, so two
 * kernels that are live at the same time on one thread (e.g. a
 * butterfly core running inside ButterflyLinear's padding loop) use
 * disjoint storage. Buffers grow monotonically and are reused for the
 * life of the thread: after the largest shape has been seen once, the
 * hot paths perform zero heap allocations.
 *
 * Known tradeoff: the peak-size buffer is retained until the thread
 * exits (no shrink path). Long-lived request threads touching very
 * large shapes once will pin that scratch; a shrink/cap policy is a
 * ROADMAP follow-on.
 */
#ifndef FABNET_RUNTIME_WORKSPACE_H
#define FABNET_RUNTIME_WORKSPACE_H

#include <cstddef>
#include <vector>

namespace fabnet {
namespace runtime {

template <class Tag>
inline float *
threadWorkspace(std::size_t floats)
{
    thread_local std::vector<float> ws;
    if (ws.size() < floats)
        ws.resize(floats);
    return ws.data();
}

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_WORKSPACE_H
