/**
 * @file kernels_common.h
 * The ISA-independent kernel contract: every scalar expression whose
 * bit pattern the parity suites pin down lives here, included by the
 * base translation units AND by every compiled kernel variant
 * (kernels_impl.h), so all of them inline exactly the same code.
 *
 * Nothing in this header may depend on the compilation target's SIMD
 * feature macros. In particular madd() is pinned to plain mul+add in
 * every TU (the build adds -ffp-contract=off so no TU can re-fuse
 * it): a variant TU compiled with -mavx512f and a base TU compiled
 * for baseline x86-64 must agree bit for bit, which rules out letting
 * the contraction vary with the target the way __FP_FAST_FMAF does.
 */
#ifndef FABNET_RUNTIME_KERNELS_COMMON_H
#define FABNET_RUNTIME_KERNELS_COMMON_H

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/half.h"

namespace fabnet {
namespace runtime {

/**
 * Pinned multiply-add: a*b + c as two separately rounded operations.
 * Both the blocked kernels and the scalar reference paths accumulate
 * through this helper, and the build compiles every TU with
 * -ffp-contract=off, so the compiler cannot fuse one side and not the
 * other - the root requirement behind the bitwise-parity guarantee
 * across ISA variants of the same kernel.
 */
inline float
madd(float a, float b, float c)
{
    return a * b + c;
}

/** Column tile width of the default GEMM micro-kernel (and the packed
 *  int8 B panel width). */
constexpr std::size_t kGemmTileN = 32;
/** Row tile height of the default GEMM micro-kernel. */
constexpr std::size_t kGemmTileM = 4;

/** Stage-major block width of the batched butterfly paths: callers
 *  (butterfly.cc, qbutterfly.cc) lay activations out as transposed
 *  [n, block] blocks of this many rows, and the dispatch-table stage
 *  sweeps specialise their fast path for exactly this width (one
 *  AVX-512 vector per pair op). */
constexpr std::size_t kBflyBlockRows = 16;

// ------------------------------------------------------------- int8

/** Symmetric int8 range: [-127, 127]. -128 is never produced, so the
 *  grid is symmetric and negation is exact. */
constexpr std::int32_t kInt8Max = 127;

/** Scale mapping one int8 step to @p max_abs / 127 (1.0 when the data
 *  is all zero, so dequantisation is still well-defined). */
inline float
int8Scale(float max_abs)
{
    return max_abs > 0.0f ? max_abs / static_cast<float>(kInt8Max)
                          : 1.0f;
}

/**
 * Quantise one value: round-to-nearest-even of x * inv_scale, clamped
 * (saturated) to [-127, 127]. Every int8 path in the codebase - the
 * GEMM/butterfly kernels, their scalar references and nn/quantize.h -
 * quantises through this one helper so the semantics the golden tests
 * pin down hold everywhere.
 */
inline std::int8_t
quantizeInt8(float x, float inv_scale)
{
    long q = std::lrintf(x * inv_scale);
    if (q > kInt8Max)
        q = kInt8Max;
    if (q < -kInt8Max)
        q = -kInt8Max;
    return static_cast<std::int8_t>(q);
}

/**
 * Dequantise an int32 GEMM accumulator with an optional bias:
 * madd(acc, a_scale * b_scale, bias). Routing the multiply-add
 * through madd pins the contraction so every translation unit -
 * kernels, references, tests - produces bit-identical dequantised
 * outputs.
 */
inline float
dequantInt8(std::int32_t acc, float a_scale, float b_scale,
            float bias = 0.0f)
{
    return madd(static_cast<float>(acc), a_scale * b_scale, bias);
}

// ------------------------------------------- quantized butterfly

/**
 * The one requantisation scale-update expression of the int8
 * butterfly. Every int8 path (scalar reference, workspace apply,
 * stage-major batch, every ISA variant) must call this identically or
 * exact parity breaks: two rounded multiplies, in this association.
 */
inline float
int8StageScale(float scale, float w_scale, std::int32_t m)
{
    return (scale * w_scale) *
           (static_cast<float>(m) / static_cast<float>(kInt8Max));
}

/** Requantise one int32 butterfly stage output with factor f = 127/m.
 *  Stage outputs are <= 2*127^2, exactly representable in float, so
 *  this is the pinned quantizeInt8 semantics on the widened value. */
inline std::int8_t
requantInt8(std::int32_t y, float f)
{
    return quantizeInt8(static_cast<float>(y), f);
}

/** One fp16 butterfly pair output: fp32 multiply-add, binary16 round. */
inline float
f16PairOut(float w0, float x1, float w1, float x2)
{
    return roundToHalf(madd(w0, x1, w1 * x2));
}

// ------------------------------------------------------------ packing

/** dst[j*rows + i] = src[i*cols + j]: row-major transpose copy. */
template <class T>
inline void
transposeInto(T *dst, const T *src, std::size_t rows, std::size_t cols)
{
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            dst[j * rows + i] = src[i * cols + j];
}

/**
 * Pack row-major int8 B [k, n] into the k-pair-interleaved int16
 * layout the int8 panel consumes: bp[(kp*n + j)*2 + {0,1}] =
 * {B[2kp][j], B[2kp+1][j]} (zero-padded when k is odd). Widening to
 * int16 at pack time lets the hot loop run multiply-accumulate pairs
 * (vpmaddwd on AVX2, vpdpwssd on VNNI) straight off contiguous loads.
 * @p bp must hold ((k+1)/2) * n * 2 elements.
 */
inline void
packInt8PairsB(const std::int8_t *b, std::int16_t *bp, std::size_t k,
               std::size_t n)
{
    const std::size_t kp_count = (k + 1) / 2;
    for (std::size_t kp = 0; kp < kp_count; ++kp) {
        const std::int8_t *row0 = b + (2 * kp) * n;
        const std::int8_t *row1 =
            (2 * kp + 1 < k) ? b + (2 * kp + 1) * n : nullptr;
        std::int16_t *dst = bp + kp * n * 2;
        for (std::size_t j = 0; j < n; ++j) {
            dst[j * 2 + 0] = row0[j];
            dst[j * 2 + 1] = row1 ? row1[j] : std::int16_t{0};
        }
    }
}

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_KERNELS_COMMON_H
