/**
 * @file autotune.h
 * Small empirical autotuner for the GEMM panels.
 *
 * The dispatch table (dispatch.h) fixes WHICH instructions run; this
 * module picks the free parameters the ISA doesn't determine: the
 * register-tile shape (GemmPlan::mk, an index into kGemmKernels) and
 * the parallelFor row grain, per (dtype, m, k, n, thread-count). Both
 * knobs partition work without touching any output's k-ascending
 * accumulation chain, so every plan is bitwise identical - the tuner
 * is free to choose by measured speed alone, and a cached plan can
 * never change results.
 *
 * On the first request for a (shape, threads) key the tuner times the
 * candidate tiles/grains against the installed dispatch table on
 * scratch operands (a few ms, once per shape; shapes too small to
 * matter skip the search and use the default plan). The row dimension
 * is bucketed to the next power of two (capped) in the key: m is the
 * batch/ragged axis and jitters with every batch composition, and
 * per-exact-m searches would re-tune - and stall serving - on each
 * new composition; nearby row counts share one plan. Results live in a
 * process-wide cache, optionally persisted to the file named by
 * FABNET_TUNE_CACHE. The file is keyed by CPU signature + build hash
 * + ISA: a cache written by a different machine, build, or forced ISA
 * level is ignored (with a stderr note), never silently replayed.
 *
 * Environment:
 *   FABNET_AUTOTUNE=off     disable searching (defaults + any entries
 *                           loaded from the cache file still apply)
 *   FABNET_TUNE_CACHE=path  load the cache at startup, append new
 *                           entries as they are tuned
 */
#ifndef FABNET_RUNTIME_AUTOTUNE_H
#define FABNET_RUNTIME_AUTOTUNE_H

#include <cstddef>
#include <string>

namespace fabnet {
namespace runtime {

/** Tuned execution parameters for one GEMM family/shape/threads. */
struct GemmPlan
{
    /** kGemmKernels index (register-tile shape). */
    int mk;
    /** parallelFor grain in C rows. */
    std::size_t grain;
};

/** Plan for the fp32 panel (ops::matmul, dense, transposed). */
GemmPlan planGemmF32(std::size_t m, std::size_t k, std::size_t n);

/** Plan for the fp16 panel (fp32 tile + binary16 row epilogue). */
GemmPlan planGemmF16(std::size_t m, std::size_t k, std::size_t n);

/** Plan for the int8 panel (tile shape fixed by the packed layout;
 *  only the grain is tuned). */
GemmPlan planGemmInt8(std::size_t m, std::size_t k, std::size_t n);

/** True unless FABNET_AUTOTUNE=off. */
bool autotuneEnabled();

/**
 * JSON object describing the tuning state: active isa, cpu signature,
 * build hash, and every cached entry with its chosen tile/grain and
 * measured rate. Surfaced through ServingEngine::stats() and embedded
 * in the bench JSONs.
 */
std::string tuningReport();

/**
 * Load / save the tuning cache explicitly (the FABNET_TUNE_CACHE
 * plumbing calls these; tests drive them directly). load returns
 * false and leaves the cache untouched when the file is missing or
 * its header doesn't match this host+build+isa; save rewrites the
 * whole file.
 */
bool loadTuneCache(const std::string &path);
bool saveTuneCache(const std::string &path);

/** Drop every cached entry (tests only - plans re-tune afterwards). */
void resetTuneCacheForTest();

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_AUTOTUNE_H
