#include "runtime/isa.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define FABNET_ISA_X86 1
#endif

namespace fabnet {
namespace runtime {

namespace {

struct CpuFeatures
{
    bool avx2 = false;
    bool fma = false;
    bool f16c = false;
    bool avx512f = false;
    bool avx512bw = false;
    bool avx512dq = false;
    bool avx512vl = false;
    bool avx512vnni = false;
};

CpuFeatures
detectFeatures()
{
    CpuFeatures f;
#if defined(FABNET_ISA_X86) && defined(__GNUC__)
    // __builtin_cpu_supports consults CPUID *and* XGETBV (OS support
    // for the wider register state), which a raw CPUID probe would
    // miss - a kernel that doesn't save zmm state must not dispatch
    // AVX-512.
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
    f.f16c = __builtin_cpu_supports("f16c");
    f.avx512f = __builtin_cpu_supports("avx512f");
    f.avx512bw = __builtin_cpu_supports("avx512bw");
    f.avx512dq = __builtin_cpu_supports("avx512dq");
    f.avx512vl = __builtin_cpu_supports("avx512vl");
#if defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 9)
    f.avx512vnni = __builtin_cpu_supports("avx512vnni");
#endif
#endif
    return f;
}

const CpuFeatures &
features()
{
    static const CpuFeatures f = detectFeatures();
    return f;
}

/** CPUID brand string (leaves 0x80000002..4), or a fallback tag. */
std::string
cpuBrand()
{
#if defined(FABNET_ISA_X86)
    unsigned int regs[4] = {0, 0, 0, 0};
    if (__get_cpuid(0x80000000u, &regs[0], &regs[1], &regs[2],
                    &regs[3]) &&
        regs[0] >= 0x80000004u) {
        char brand[49] = {0};
        for (unsigned int leaf = 0; leaf < 3; ++leaf) {
            __get_cpuid(0x80000002u + leaf, &regs[0], &regs[1], &regs[2],
                        &regs[3]);
            std::memcpy(brand + leaf * 16, regs, 16);
        }
        // Trim the leading/trailing padding spaces vendors insert.
        std::string s(brand);
        std::size_t b = s.find_first_not_of(' ');
        std::size_t e = s.find_last_not_of(' ');
        if (b == std::string::npos)
            return "unknown-x86";
        // Collapse internal runs of spaces for a stable cache key.
        std::string out;
        bool in_space = false;
        for (std::size_t i = b; i <= e; ++i) {
            if (s[i] == ' ') {
                if (!in_space)
                    out.push_back(' ');
                in_space = true;
            } else {
                out.push_back(s[i]);
                in_space = false;
            }
        }
        return out;
    }
    return "unknown-x86";
#else
    return "non-x86";
#endif
}

Isa
clampToSupported(Isa want)
{
    Isa best = bestSupportedIsa();
    return static_cast<int>(want) <= static_cast<int>(best) ? want
                                                            : best;
}

/** Parse a FABNET_ISA value; returns false on an unknown name. */
bool
parseIsaName(const char *s, Isa &out)
{
    std::string v;
    for (const char *p = s; *p; ++p)
        v.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (v == "scalar") {
        out = Isa::Scalar;
        return true;
    }
    if (v == "avx2") {
        out = Isa::Avx2;
        return true;
    }
    if (v == "avx512" || v == "avx512f") {
        out = Isa::Avx512;
        return true;
    }
    if (v == "avx512vnni" || v == "vnni") {
        out = Isa::Avx512Vnni;
        return true;
    }
    if (v == "best" || v == "native" || v == "auto") {
        out = bestSupportedIsa();
        return true;
    }
    return false;
}

Isa
selectIsa()
{
    const char *env = std::getenv("FABNET_ISA");
    if (env && *env) {
        Isa want;
        if (!parseIsaName(env, want)) {
            std::fprintf(stderr,
                         "fabnet: unknown FABNET_ISA '%s' "
                         "(scalar|avx2|avx512|avx512vnni|best); "
                         "using best supported\n",
                         env);
            return bestSupportedIsa();
        }
        const Isa got = clampToSupported(want);
        if (got != want)
            std::fprintf(stderr,
                         "fabnet: FABNET_ISA=%s not supported by this "
                         "cpu; clamped to %s\n",
                         isaName(want), isaName(got));
        return got;
    }
    return bestSupportedIsa();
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Avx2:
        return "avx2";
    case Isa::Avx512:
        return "avx512";
    case Isa::Avx512Vnni:
        return "avx512vnni";
    }
    return "unknown";
}

bool
isaSupported(Isa isa)
{
    const CpuFeatures &f = features();
    switch (isa) {
    case Isa::Scalar:
        return true;
    case Isa::Avx2:
        return f.avx2 && f.f16c;
    case Isa::Avx512:
        return f.avx512f && f.avx512bw && f.avx512dq && f.avx512vl &&
               f.avx2 && f.f16c;
    case Isa::Avx512Vnni:
        return isaSupported(Isa::Avx512) && f.avx512vnni;
    }
    return false;
}

Isa
bestSupportedIsa()
{
    if (isaSupported(Isa::Avx512Vnni))
        return Isa::Avx512Vnni;
    if (isaSupported(Isa::Avx512))
        return Isa::Avx512;
    if (isaSupported(Isa::Avx2))
        return Isa::Avx2;
    return Isa::Scalar;
}

Isa
activeIsa()
{
    static const Isa chosen = selectIsa();
    return chosen;
}

const char *
isa()
{
    return isaName(activeIsa());
}

const std::string &
cpuSignature()
{
    static const std::string sig = [] {
        const CpuFeatures &f = features();
        std::string s = cpuBrand();
        s += " |";
        if (f.avx2)
            s += " avx2";
        if (f.fma)
            s += " fma";
        if (f.f16c)
            s += " f16c";
        if (f.avx512f)
            s += " avx512f";
        if (f.avx512bw)
            s += " avx512bw";
        if (f.avx512dq)
            s += " avx512dq";
        if (f.avx512vl)
            s += " avx512vl";
        if (f.avx512vnni)
            s += " avx512vnni";
        return s;
    }();
    return sig;
}

} // namespace runtime
} // namespace fabnet
