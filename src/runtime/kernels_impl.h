/**
 * @file kernels_impl.h
 * The kernel-variant implementation, compiled once per ISA level.
 *
 * This header is included by exactly four translation units
 * (kernels_scalar.cc, kernels_avx2.cc, kernels_avx512.cc,
 * kernels_vnni.cc), each of which defines the configuration macros
 * below and is built with the matching per-TU -m flags. The body
 * provides every KernelTable entry; intrinsic fast paths are guarded
 * by the FABNET_KV_* macros (NOT by __AVX2__ etc., so a stray global
 * flag cannot silently upgrade the scalar variant).
 *
 * Configuration macros (set by the including TU):
 *   FABNET_KV_NS      variant namespace (kv_scalar, kv_avx2, ...)
 *   FABNET_KV_ISA     runtime::Isa enumerator of this variant
 *   FABNET_KV_EXPORT  name of the exported table accessor
 *   FABNET_KV_AVX2    1 to enable AVX2 integer-tile fast paths
 *   FABNET_KV_F16C    1 to enable hardware binary16 conversions
 *   FABNET_KV_AVX512  1 to enable AVX-512 fast paths
 *   FABNET_KV_VNNI    1 to enable the VNNI int8 dot-product tile
 *
 * ## The parity argument, per family
 * - fp32/fp16 GEMM: all register shapes keep one k-ascending
 *   accumulator chain per output element through the pinned madd
 *   (mul+add in every TU, -ffp-contract=off build-wide), so every
 *   variant and every micro-kernel shape is bitwise identical.
 * - int8 GEMM: int32 accumulation is exact; scalar, vpmaddwd and
 *   vpdpwssd tiles compute identical integers.
 * - butterfly stages: y = w0*x1 + w1*x2 is a single madd expression
 *   per output (no chain), so lane order never matters.
 * - reductions (maxAbsRow, per-row requant max): max is commutative
 *   and associative on the non-NaN data the kernels see.
 * - binary16 rounding: hardware vcvtps2ph (RNE) is bit-identical to
 *   the software conversion in tensor/half.h for all finite values
 *   and infinities (pinned by tests/quantize_golden_test.cpp).
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if FABNET_KV_AVX2 || FABNET_KV_F16C || FABNET_KV_AVX512 || FABNET_KV_VNNI
#include <immintrin.h>
#endif

#include "runtime/dispatch.h"
#include "runtime/kernels_common.h"
#include "runtime/workspace.h"
#include "tensor/half.h"

namespace fabnet {
namespace runtime {
namespace FABNET_KV_NS {

// ------------------------------------------------------- fp32 GEMM

/**
 * One register tile: C[i0..i0+mr) x [j0..j0+jn) = (bias|0) + A * B.
 * mr <= MR rows, jn <= NR columns. The accumulators live in a
 * fixed-size local array the whole k loop, so there is no C traffic
 * (and no load/store rounding detour) inside the hot loop.
 */
template <int MR, int NR>
inline void
gemmTile(const float *a, const float *b, float *c, std::size_t i0,
         std::size_t mr, std::size_t j0, std::size_t jn, std::size_t k,
         std::size_t n, const float *bias)
{
    float acc[MR][NR];
    for (std::size_t r = 0; r < mr; ++r) {
        if (bias) {
            for (std::size_t j = 0; j < jn; ++j)
                acc[r][j] = bias[j0 + j];
        } else {
            for (std::size_t j = 0; j < jn; ++j)
                acc[r][j] = 0.0f;
        }
    }
    if (mr == static_cast<std::size_t>(MR) &&
        jn == static_cast<std::size_t>(NR)) {
        // Full tile: constant trip counts so the compiler keeps the
        // MRxNR accumulator block in vector registers.
        const float *ar[MR];
        for (int r = 0; r < MR; ++r)
            ar[r] = a + (i0 + r) * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j0;
            float av[MR];
            for (int r = 0; r < MR; ++r)
                av[r] = ar[r][kk];
            for (int j = 0; j < NR; ++j) {
                const float bv = brow[j];
                for (int r = 0; r < MR; ++r)
                    acc[r][j] = madd(av[r], bv, acc[r][j]);
            }
        }
    } else {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float *brow = b + kk * n + j0;
            for (std::size_t r = 0; r < mr; ++r) {
                const float av = a[(i0 + r) * k + kk];
                for (std::size_t j = 0; j < jn; ++j)
                    acc[r][j] = madd(av, brow[j], acc[r][j]);
            }
        }
    }
    for (std::size_t r = 0; r < mr; ++r)
        std::memcpy(c + (i0 + r) * n + j0, acc[r], jn * sizeof(float));
}

/** Panel of MRxNR tiles over C rows [r0, r1). */
template <int MR, int NR>
void
gemmPanel(const float *a, const float *b, float *c, std::size_t r0,
          std::size_t r1, std::size_t k, std::size_t n,
          const float *bias)
{
    for (std::size_t i = r0; i < r1;
         i += static_cast<std::size_t>(MR)) {
        const std::size_t mr =
            (i + MR <= r1) ? static_cast<std::size_t>(MR) : r1 - i;
        for (std::size_t j = 0; j < n;
             j += static_cast<std::size_t>(NR)) {
            const std::size_t jn =
                (j + NR <= n) ? static_cast<std::size_t>(NR) : n - j;
            gemmTile<MR, NR>(a, b, c, i, mr, j, jn, k, n, bias);
        }
    }
}

void
gemmF32(const float *a, const float *b, float *c, std::size_t r0,
        std::size_t r1, std::size_t k, std::size_t n, const float *bias,
        int mk)
{
    // Indices must match runtime::kGemmKernels (dispatch.h).
    switch (mk) {
    case 1:
        gemmPanel<4, 16>(a, b, c, r0, r1, k, n, bias);
        return;
    case 2:
        gemmPanel<4, 64>(a, b, c, r0, r1, k, n, bias);
        return;
    case 3:
        gemmPanel<8, 32>(a, b, c, r0, r1, k, n, bias);
        return;
    case 4:
        gemmPanel<8, 16>(a, b, c, r0, r1, k, n, bias);
        return;
    case 5:
        gemmPanel<2, 32>(a, b, c, r0, r1, k, n, bias);
        return;
    case 0:
    default:
        gemmPanel<4, 32>(a, b, c, r0, r1, k, n, bias);
        return;
    }
}

// ------------------------------------------------------- int8 GEMM

/** Scalar int8 tile: exact int32 accumulation off the packed layout.
 *  Also the tail path of the vector kernels - integer math is exact,
 *  so both produce identical accumulators. */
inline void
gemmTileInt8Scalar(const std::int8_t *a, const std::int16_t *bp,
                   float *c, std::size_t i0, std::size_t mr,
                   std::size_t j0, std::size_t jn, std::size_t k,
                   std::size_t n, const float *a_scale,
                   const float *b_scale, const float *bias)
{
    const std::size_t kp_count = k / 2;
    for (std::size_t r = 0; r < mr; ++r) {
        const std::int8_t *arow = a + (i0 + r) * k;
        for (std::size_t j = 0; j < jn; ++j) {
            std::int32_t acc = 0;
            const std::int16_t *bcol = bp + (j0 + j) * 2;
            for (std::size_t kp = 0; kp < kp_count; ++kp) {
                const std::int16_t *bpair = bcol + kp * n * 2;
                acc += static_cast<std::int32_t>(arow[2 * kp]) *
                       bpair[0];
                acc += static_cast<std::int32_t>(arow[2 * kp + 1]) *
                       bpair[1];
            }
            if (k & 1) {
                const std::int16_t *bpair = bcol + kp_count * n * 2;
                acc += static_cast<std::int32_t>(arow[k - 1]) *
                       bpair[0];
            }
            c[(i0 + r) * n + j0 + j] =
                dequantInt8(acc, a_scale[i0 + r], b_scale[j0 + j],
                            bias ? bias[j0 + j] : 0.0f);
        }
    }
}

#if FABNET_KV_AVX2 && !FABNET_KV_VNNI

/**
 * Full 4x32 int8 tile: 16 ymm accumulators, one vpmaddwd + vpaddd per
 * (row, 8-column group, k-pair). @p arow holds the tile's four A rows
 * pre-widened to int16 pairs (an int32 load broadcasts one pair).
 * Each vpmaddwd lane computes a[2kp]*b[2kp][j] + a[2kp+1]*b[2kp+1][j]
 * exactly (products <= 127^2, pair sums <= 2*127^2 fit int32), so the
 * vector path's accumulators equal the scalar tile's.
 */
inline void
gemmTileInt8Wide(const std::int16_t *const arow[kGemmTileM],
                 const std::int16_t *bp, float *c, std::size_t i0,
                 std::size_t j0, std::size_t kp_count, std::size_t n,
                 const float *a_scale, const float *b_scale,
                 const float *bias)
{
    __m256i acc[kGemmTileM][4];
    for (std::size_t r = 0; r < kGemmTileM; ++r)
        for (std::size_t v = 0; v < 4; ++v)
            acc[r][v] = _mm256_setzero_si256();

    for (std::size_t kp = 0; kp < kp_count; ++kp) {
        const std::int16_t *brow = bp + (kp * n + j0) * 2;
        __m256i bv[4];
        for (std::size_t v = 0; v < 4; ++v)
            bv[v] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                brow + v * 16));
        for (std::size_t r = 0; r < kGemmTileM; ++r) {
            int pair;
            std::memcpy(&pair, arow[r] + 2 * kp, sizeof(pair));
            const __m256i av = _mm256_set1_epi32(pair);
            for (std::size_t v = 0; v < 4; ++v)
                acc[r][v] = _mm256_add_epi32(
                    acc[r][v], _mm256_madd_epi16(av, bv[v]));
        }
    }

    alignas(32) std::int32_t lanes[8];
    for (std::size_t r = 0; r < kGemmTileM; ++r) {
        for (std::size_t v = 0; v < 4; ++v) {
            _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                               acc[r][v]);
            const std::size_t jb = j0 + v * 8;
            for (std::size_t j = 0; j < 8; ++j)
                c[(i0 + r) * n + jb + j] =
                    dequantInt8(lanes[j], a_scale[i0 + r],
                                b_scale[jb + j],
                                bias ? bias[jb + j] : 0.0f);
        }
    }
}

#define FABNET_KV_WIDE_I8_TILE 1
#endif // FABNET_KV_AVX2 && !FABNET_KV_VNNI

#if FABNET_KV_VNNI

/**
 * Full 4x32 int8 tile on AVX-512 VNNI: vpdpwssd fuses the int16-pair
 * multiply-add-accumulate into one instruction over 16 int32 lanes,
 * so the whole tile is 8 dpwssd + 2 loads + 4 broadcasts per k-pair.
 * Operands are bounded to [-127, 127], so the in-lane pair sum cannot
 * overflow and the accumulators are exact - identical to the scalar
 * tile.
 */
inline void
gemmTileInt8Wide(const std::int16_t *const arow[kGemmTileM],
                 const std::int16_t *bp, float *c, std::size_t i0,
                 std::size_t j0, std::size_t kp_count, std::size_t n,
                 const float *a_scale, const float *b_scale,
                 const float *bias)
{
    __m512i acc[kGemmTileM][2];
    for (std::size_t r = 0; r < kGemmTileM; ++r) {
        acc[r][0] = _mm512_setzero_si512();
        acc[r][1] = _mm512_setzero_si512();
    }

    for (std::size_t kp = 0; kp < kp_count; ++kp) {
        const std::int16_t *brow = bp + (kp * n + j0) * 2;
        const __m512i bv0 = _mm512_loadu_si512(brow);
        const __m512i bv1 = _mm512_loadu_si512(brow + 32);
        for (std::size_t r = 0; r < kGemmTileM; ++r) {
            int pair;
            std::memcpy(&pair, arow[r] + 2 * kp, sizeof(pair));
            const __m512i av = _mm512_set1_epi32(pair);
            acc[r][0] = _mm512_dpwssd_epi32(acc[r][0], av, bv0);
            acc[r][1] = _mm512_dpwssd_epi32(acc[r][1], av, bv1);
        }
    }

    alignas(64) std::int32_t lanes[16];
    for (std::size_t r = 0; r < kGemmTileM; ++r) {
        for (std::size_t v = 0; v < 2; ++v) {
            _mm512_store_si512(lanes, acc[r][v]);
            const std::size_t jb = j0 + v * 16;
            for (std::size_t j = 0; j < 16; ++j)
                c[(i0 + r) * n + jb + j] =
                    dequantInt8(lanes[j], a_scale[i0 + r],
                                b_scale[jb + j],
                                bias ? bias[jb + j] : 0.0f);
        }
    }
}

#define FABNET_KV_WIDE_I8_TILE 1
#endif // FABNET_KV_VNNI

#if FABNET_KV_WIDE_I8_TILE
/** Workspace tag for the per-chunk int16-widened A rows. */
struct GemmInt8AWideWs;
#endif

void
gemmInt8(const std::int8_t *a, const std::int16_t *bp, float *c,
         std::size_t r0, std::size_t r1, std::size_t k, std::size_t n,
         const float *a_scale, const float *b_scale, const float *bias)
{
#if FABNET_KV_WIDE_I8_TILE
    const std::size_t kp_count = (k + 1) / 2;
    // Widen this chunk's A rows to int16 pairs once (zero-padded odd
    // k), so the vector tiles broadcast a pair with a single int32
    // load. Pure widening: the accumulated integers are unchanged.
    std::int16_t *a16 =
        threadWorkspaceAs<GemmInt8AWideWs, std::int16_t>(
            (r1 - r0) * kp_count * 2);
    for (std::size_t i = r0; i < r1; ++i) {
        std::int16_t *dst = a16 + (i - r0) * kp_count * 2;
        const std::int8_t *src = a + i * k;
        for (std::size_t kk = 0; kk < k; ++kk)
            dst[kk] = src[kk];
        if (k & 1)
            dst[k] = 0;
    }
#endif
    for (std::size_t i = r0; i < r1; i += kGemmTileM) {
        const std::size_t mr = (i + kGemmTileM <= r1) ? kGemmTileM
                                                      : r1 - i;
        std::size_t j = 0;
#if FABNET_KV_WIDE_I8_TILE
        if (mr == kGemmTileM) {
            const std::int16_t *arow[kGemmTileM];
            for (std::size_t r = 0; r < kGemmTileM; ++r)
                arow[r] = a16 + (i + r - r0) * kp_count * 2;
            for (; j + kGemmTileN <= n; j += kGemmTileN)
                gemmTileInt8Wide(arow, bp, c, i, j, kp_count, n,
                                 a_scale, b_scale, bias);
        }
#endif
        for (; j < n; j += kGemmTileN) {
            const std::size_t jn =
                (j + kGemmTileN <= n) ? kGemmTileN : n - j;
            gemmTileInt8Scalar(a, bp, c, i, mr, j, jn, k, n, a_scale,
                               b_scale, bias);
        }
    }
}

// --------------------------------------------------- row reductions

/** Largest |x| over @p n contiguous floats. (Max is commutative and
 *  associative on the non-NaN data the kernels see, so the vectorised
 *  reduction returns the same value as the scalar loop.) */
float
maxAbsRow(const float *x, std::size_t n)
{
    float m = 0.0f;
    std::size_t i = 0;
#if FABNET_KV_AVX512
    if (n >= 16) {
        const __m512 absmask =
            _mm512_castsi512_ps(_mm512_set1_epi32(0x7FFFFFFF));
        __m512 vm = _mm512_setzero_ps();
        for (; i + 16 <= n; i += 16)
            vm = _mm512_max_ps(
                vm, _mm512_and_ps(_mm512_loadu_ps(x + i), absmask));
        m = _mm512_reduce_max_ps(vm);
    }
#elif FABNET_KV_AVX2
    if (n >= 8) {
        const __m256 absmask =
            _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
        __m256 vm = _mm256_setzero_ps();
        for (; i + 8 <= n; i += 8)
            vm = _mm256_max_ps(
                vm, _mm256_and_ps(_mm256_loadu_ps(x + i), absmask));
        __m128 lo = _mm256_castps256_ps128(vm);
        __m128 hi = _mm256_extractf128_ps(vm, 1);
        __m128 v4 = _mm_max_ps(lo, hi);
        v4 = _mm_max_ps(v4, _mm_movehl_ps(v4, v4));
        v4 = _mm_max_ss(v4, _mm_shuffle_ps(v4, v4, 0x1));
        m = _mm_cvtss_f32(v4);
    }
#endif
    for (; i < n; ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

#if FABNET_KV_AVX512
/** 16-lane quantizeInt8 (same product rounding, RNE conversion and
 *  [-127, 127] clamp as the scalar helper - vpmovsdb alone would
 *  saturate to -128, so the clamp is explicit). */
inline void
quantizeInt8Lanes(const float *x, std::int8_t *q, __m512 vinv)
{
    const __m512i lo = _mm512_set1_epi32(-kInt8Max);
    const __m512i hi = _mm512_set1_epi32(kInt8Max);
    __m512i r =
        _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(x), vinv));
    r = _mm512_min_epi32(_mm512_max_epi32(r, lo), hi);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(q),
                     _mm512_cvtsepi32_epi8(r));
}
#endif

void
quantizeInt8RowInv(const float *x, std::int8_t *q, std::size_t n,
                   float inv)
{
    std::size_t i = 0;
#if FABNET_KV_AVX512
    const __m512 vinv = _mm512_set1_ps(inv);
    for (; i + 16 <= n; i += 16)
        quantizeInt8Lanes(x + i, q + i, vinv);
#endif
    for (; i < n; ++i)
        q[i] = quantizeInt8(x[i], inv);
}

void
quantizeInt8RowPerColInv(const float *x, std::int8_t *q, std::size_t n,
                         const float *inv)
{
    std::size_t i = 0;
#if FABNET_KV_AVX512
    const __m512i lo = _mm512_set1_epi32(-kInt8Max);
    const __m512i hi = _mm512_set1_epi32(kInt8Max);
    for (; i + 16 <= n; i += 16) {
        __m512i r = _mm512_cvtps_epi32(_mm512_mul_ps(
            _mm512_loadu_ps(x + i), _mm512_loadu_ps(inv + i)));
        r = _mm512_min_epi32(_mm512_max_epi32(r, lo), hi);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(q + i),
                         _mm512_cvtsepi32_epi8(r));
    }
#endif
    for (; i < n; ++i)
        q[i] = quantizeInt8(x[i], inv[i]);
}

// --------------------------------------------------- binary16 rows

// The row conversion helpers use the F16C units (vcvtps2ph/vcvtph2ps)
// when this variant may: hardware round-to-nearest-even float<->
// binary16 conversion is bit-identical to the software conversion in
// tensor/half.h for all finite values and infinities (pinned by
// tests/quantize_golden_test.cpp), and turns the fp16 operand
// rounding from the dominant cost of the fp16 GEMM into noise.

void
roundRowToHalfV(float *x, std::size_t n)
{
    std::size_t i = 0;
#if FABNET_KV_F16C
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm256_cvtps_ph(
            _mm256_loadu_ps(x + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm256_storeu_ps(x + i, _mm256_cvtph_ps(h));
    }
#endif
    for (; i < n; ++i)
        x[i] = roundToHalf(x[i]);
}

void
halfBitsToFloatRowV(const std::uint16_t *h, float *f, std::size_t n)
{
    std::size_t i = 0;
#if FABNET_KV_F16C
    for (; i + 8 <= n; i += 8) {
        const __m128i bits =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(h + i));
        _mm256_storeu_ps(f + i, _mm256_cvtph_ps(bits));
    }
#endif
    for (; i < n; ++i)
        f[i] = halfBitsToFloat(h[i]);
}

void
floatToHalfBitsRowV(const float *f, std::uint16_t *h, std::size_t n)
{
    std::size_t i = 0;
#if FABNET_KV_F16C
    for (; i + 8 <= n; i += 8) {
        const __m128i bits = _mm256_cvtps_ph(
            _mm256_loadu_ps(f + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(h + i), bits);
    }
#endif
    for (; i < n; ++i)
        h[i] = floatToHalfBits(f[i]);
}

// ------------------------------------------------- butterfly stages
// (block width runtime::kBflyBlockRows, pinned in kernels_common.h)

/**
 * One butterfly stage over a transposed [n, NB] block, in place: pair
 * (i1, i2) only reads its own two lanes, so the update needs no
 * second buffer. NB is a compile-time width so the lane loop unrolls
 * to straight-line vector code.
 */
template <std::size_t NB>
inline void
bflyStageFixed(float *buf, const float *wp, std::size_t n,
               std::size_t h)
{
    for (std::size_t base = 0; base < n; base += 2 * h) {
        for (std::size_t j = 0; j < h; ++j, wp += 4) {
            const float w0 = wp[0], w1 = wp[1], w2 = wp[2], w3 = wp[3];
            float *x1 = buf + (base + j) * NB;
            float *x2 = x1 + h * NB;
            // Stage through non-escaping locals: frees the compiler
            // from the (unprovable) x1/x2 overlap question, so all
            // four loops vectorise cleanly.
            float a[NB], bv[NB];
            for (std::size_t r = 0; r < NB; ++r) {
                a[r] = x1[r];
                bv[r] = x2[r];
            }
            for (std::size_t r = 0; r < NB; ++r)
                x1[r] = madd(w0, a[r], w1 * bv[r]);
            for (std::size_t r = 0; r < NB; ++r)
                x2[r] = madd(w2, a[r], w3 * bv[r]);
        }
    }
}

void
bflyStage(float *buf, const float *wp, std::size_t n, std::size_t h,
          std::size_t nb)
{
    if (nb == kBflyBlockRows) {
        bflyStageFixed<kBflyBlockRows>(buf, wp, n, h);
        return;
    }
    // Runtime-width tail block (rows % kBflyBlockRows).
    float a[kBflyBlockRows], bv[kBflyBlockRows];
    for (std::size_t base = 0; base < n; base += 2 * h) {
        for (std::size_t j = 0; j < h; ++j, wp += 4) {
            const float w0 = wp[0], w1 = wp[1], w2 = wp[2], w3 = wp[3];
            float *x1 = buf + (base + j) * nb;
            float *x2 = x1 + h * nb;
            for (std::size_t r = 0; r < nb; ++r) {
                a[r] = x1[r];
                bv[r] = x2[r];
            }
            for (std::size_t r = 0; r < nb; ++r)
                x1[r] = madd(w0, a[r], w1 * bv[r]);
            for (std::size_t r = 0; r < nb; ++r)
                x2[r] = madd(w2, a[r], w3 * bv[r]);
        }
    }
}

#if FABNET_KV_AVX512
/**
 * 16-lane fp16 pair op: mul+add (the pinned madd contraction) plus
 * hardware binary16 round - the exact vector form of f16PairOut, so
 * the vectorised block path stays bitwise equal to the scalar
 * reference.
 */
inline void
f16PairSweepLanes16(float *x1, float *x2, float w0, float w1, float w2,
                    float w3)
{
    const __m512 a = _mm512_loadu_ps(x1);
    const __m512 b = _mm512_loadu_ps(x2);
    const __m512 y1 =
        _mm512_add_ps(_mm512_mul_ps(_mm512_set1_ps(w0), a),
                      _mm512_mul_ps(_mm512_set1_ps(w1), b));
    const __m512 y2 =
        _mm512_add_ps(_mm512_mul_ps(_mm512_set1_ps(w2), a),
                      _mm512_mul_ps(_mm512_set1_ps(w3), b));
    constexpr int rne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    _mm512_storeu_ps(x1, _mm512_cvtph_ps(_mm512_cvtps_ph(y1, rne)));
    _mm512_storeu_ps(x2, _mm512_cvtph_ps(_mm512_cvtps_ph(y2, rne)));
}
#endif

void
qbflyF16Stage(float *buf, const float *wp, std::size_t n, std::size_t h,
              std::size_t nb)
{
    for (std::size_t base = 0; base < n; base += 2 * h) {
        for (std::size_t j = 0; j < h; ++j, wp += 4) {
            float *x1 = buf + (base + j) * nb;
            float *x2 = x1 + h * nb;
            const float w0 = wp[0], w1 = wp[1];
            const float w2 = wp[2], w3 = wp[3];
#if FABNET_KV_AVX512
            if (nb == kBflyBlockRows) {
                f16PairSweepLanes16(x1, x2, w0, w1, w2, w3);
                continue;
            }
#endif
            for (std::size_t r = 0; r < nb; ++r) {
                const float a = x1[r], b = x2[r];
                x1[r] = f16PairOut(w0, a, w1, b);
                x2[r] = f16PairOut(w2, a, w3, b);
            }
        }
    }
}

void
qbflyI8Stage(const std::int8_t *q, std::int32_t *y, const std::int8_t *w,
             std::size_t n, std::size_t h, std::size_t nb)
{
    for (std::size_t base = 0; base < n; base += 2 * h) {
        for (std::size_t j = 0; j < h; ++j, w += 4) {
            const std::int8_t *x1 = q + (base + j) * nb;
            const std::int8_t *x2 = x1 + h * nb;
            std::int32_t *y1 = y + (base + j) * nb;
            std::int32_t *y2 = y1 + h * nb;
            const std::int32_t w0 = w[0], w1 = w[1];
            const std::int32_t w2 = w[2], w3 = w[3];
            for (std::size_t r = 0; r < nb; ++r) {
                const std::int32_t a = x1[r], b = x2[r];
                y1[r] = w0 * a + w1 * b;
                y2[r] = w2 * a + w3 * b;
            }
        }
    }
}

void
qbflyI8Requant(const std::int32_t *y, std::int8_t *q, float *scale,
               float wscale_s, std::size_t n, std::size_t nb)
{
#if FABNET_KV_AVX512
    if (nb == kBflyBlockRows) {
        // Lane-parallel requantisation: the per-row max and the
        // round/clamp run vertically over contiguous 16-lane vectors.
        // Same product rounding, RNE conversion and clamp as
        // requantInt8; a zero-max lane gets factor 0.0, which maps
        // its (all-zero) int32s to exact zeros like the scalar path.
        __m512i vm = _mm512_setzero_si512();
        for (std::size_t i = 0; i < n; ++i)
            vm = _mm512_max_epi32(
                vm, _mm512_abs_epi32(_mm512_loadu_si512(y + i * nb)));
        alignas(64) std::int32_t m[kBflyBlockRows];
        alignas(64) float f[kBflyBlockRows];
        _mm512_store_si512(m, vm);
        for (std::size_t r = 0; r < nb; ++r)
            f[r] = m[r] != 0 ? static_cast<float>(kInt8Max) /
                                   static_cast<float>(m[r])
                             : 0.0f;
        const __m512 vf = _mm512_load_ps(f);
        const __m512i lo = _mm512_set1_epi32(-kInt8Max);
        const __m512i hi = _mm512_set1_epi32(kInt8Max);
        for (std::size_t i = 0; i < n; ++i) {
            const __m512 p = _mm512_mul_ps(
                _mm512_cvtepi32_ps(_mm512_loadu_si512(y + i * nb)),
                vf);
            __m512i r32 = _mm512_cvtps_epi32(p);
            r32 = _mm512_min_epi32(_mm512_max_epi32(r32, lo), hi);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(q + i * nb),
                             _mm512_cvtsepi32_epi8(r32));
        }
        for (std::size_t r = 0; r < nb; ++r)
            if (m[r] != 0)
                scale[r] = int8StageScale(scale[r], wscale_s, m[r]);
        return;
    }
#endif
    for (std::size_t r = 0; r < nb; ++r) {
        std::int32_t m = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::int32_t v = y[i * nb + r];
            const std::int32_t a = v < 0 ? -v : v;
            if (a > m)
                m = a;
        }
        if (m == 0) {
            for (std::size_t i = 0; i < n; ++i)
                q[i * nb + r] = 0;
            continue;
        }
        const float f = static_cast<float>(kInt8Max) /
                        static_cast<float>(m);
        for (std::size_t i = 0; i < n; ++i)
            q[i * nb + r] = requantInt8(y[i * nb + r], f);
        scale[r] = int8StageScale(scale[r], wscale_s, m);
    }
}

// ------------------------------------------- block transposes
// Pure data movement between row-major rows and the stage-major
// [n, nb] blocks. In the table (rather than at the call sites)
// because the sweeps only vectorise with the variant's flags, and at
// fp32 butterfly speeds an unvectorised transpose costs more than the
// stages themselves.

void
bflyTransposeIn(const float *src, float *buf, std::size_t n,
                std::size_t nb, std::size_t stride)
{
    if (nb == kBflyBlockRows) {
        for (std::size_t i = 0; i < n; ++i) {
            const float *s = src + i;
            float *dst = buf + i * kBflyBlockRows;
            for (std::size_t r = 0; r < kBflyBlockRows; ++r)
                dst[r] = s[r * stride];
        }
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const float *s = src + i;
        float *dst = buf + i * nb;
        for (std::size_t r = 0; r < nb; ++r)
            dst[r] = s[r * stride];
    }
}

void
bflyTransposeOut(const float *buf, float *dst, std::size_t n,
                 std::size_t nb, std::size_t stride)
{
    for (std::size_t r = 0; r < nb; ++r) {
        const float *s = buf + r;
        float *d = dst + r * stride;
        if (nb == kBflyBlockRows) {
            for (std::size_t i = 0; i < n; ++i)
                d[i] = s[i * kBflyBlockRows];
        } else {
            for (std::size_t i = 0; i < n; ++i)
                d[i] = s[i * nb];
        }
    }
}

void
qbflyF16TransposeIn(const float *src, float *buf, std::size_t n,
                    std::size_t nb, std::size_t stride)
{
    // Row-at-a-time so the binary16 rounding (the expensive part)
    // runs over contiguous loads; the transposed stores are scalar.
    // The F16C path is the same RNE round as roundToHalf (pinned by
    // tests/quantize_golden_test.cpp).
    for (std::size_t r = 0; r < nb; ++r) {
        const float *row = src + r * stride;
        std::size_t i = 0;
#if FABNET_KV_F16C
        alignas(32) float tmp[8];
        for (; i + 8 <= n; i += 8) {
            _mm256_store_ps(
                tmp, _mm256_cvtph_ps(_mm256_cvtps_ph(
                         _mm256_loadu_ps(row + i),
                         _MM_FROUND_TO_NEAREST_INT |
                             _MM_FROUND_NO_EXC)));
            for (std::size_t t = 0; t < 8; ++t)
                buf[(i + t) * nb + r] = tmp[t];
        }
#endif
        for (; i < n; ++i)
            buf[i * nb + r] = roundToHalf(row[i]);
    }
}

void
qbflyI8QuantIn(const float *src, std::int8_t *q, float *scale,
               std::size_t n, std::size_t nb, std::size_t stride)
{
    for (std::size_t r = 0; r < nb; ++r) {
        const float *row = src + r * stride;
        const float m = maxAbsRow(row, n);
        if (m == 0.0f) {
            scale[r] = 0.0f; // dequantises to exact zeros on the way out
            for (std::size_t i = 0; i < n; ++i)
                q[i * nb + r] = 0;
            continue;
        }
        scale[r] = int8Scale(m);
        const float inv = 1.0f / scale[r];
        for (std::size_t i = 0; i < n; ++i)
            q[i * nb + r] = quantizeInt8(row[i], inv);
    }
}

void
qbflyI8DequantOut(const std::int8_t *q, const float *scale, float *dst,
                  std::size_t n, std::size_t nb, std::size_t stride)
{
    for (std::size_t r = 0; r < nb; ++r) {
        const float s = scale[r];
        float *d = dst + r * stride;
        for (std::size_t i = 0; i < n; ++i)
            d[i] = static_cast<float>(q[i * nb + r]) * s;
    }
}

} // namespace FABNET_KV_NS

const KernelTable &
FABNET_KV_EXPORT()
{
    static const KernelTable t = {
        FABNET_KV_ISA,
        isaName(FABNET_KV_ISA),
        &FABNET_KV_NS::gemmF32,
        &FABNET_KV_NS::gemmInt8,
        &FABNET_KV_NS::maxAbsRow,
        &FABNET_KV_NS::quantizeInt8RowInv,
        &FABNET_KV_NS::quantizeInt8RowPerColInv,
        &FABNET_KV_NS::roundRowToHalfV,
        &FABNET_KV_NS::halfBitsToFloatRowV,
        &FABNET_KV_NS::floatToHalfBitsRowV,
        &FABNET_KV_NS::bflyStage,
        &FABNET_KV_NS::qbflyF16Stage,
        &FABNET_KV_NS::qbflyI8Stage,
        &FABNET_KV_NS::qbflyI8Requant,
        &FABNET_KV_NS::bflyTransposeIn,
        &FABNET_KV_NS::bflyTransposeOut,
        &FABNET_KV_NS::qbflyF16TransposeIn,
        &FABNET_KV_NS::qbflyI8QuantIn,
        &FABNET_KV_NS::qbflyI8DequantOut,
    };
    return t;
}

} // namespace runtime
} // namespace fabnet
