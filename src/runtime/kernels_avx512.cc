// AVX-512 kernel variant. Compiled with -mavx512f -mavx512bw
// -mavx512dq -mavx512vl -mavx2 -mf16c -mprefer-vector-width=512
// (CMakeLists.txt).
#define FABNET_KV_NS kv_avx512
#define FABNET_KV_AVX2 1
#define FABNET_KV_F16C 1
#define FABNET_KV_AVX512 1
#define FABNET_KV_VNNI 0
#define FABNET_KV_ISA ::fabnet::runtime::Isa::Avx512
#define FABNET_KV_EXPORT kernelTableAvx512

#include "runtime/kernels_impl.h"
