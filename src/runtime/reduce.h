/**
 * @file reduce.h
 * Deterministic reductions for the parallel training backward.
 *
 * The backward pass has two kinds of reductions, and they need two
 * different tools to stay bitwise thread-count-invariant:
 *
 * 1. **Parameter-gradient accumulation** (dL/dW += per-row
 *    contributions). Here the parity contract is the strongest in the
 *    codebase: the fast path must be bitwise identical to the seed
 *    serial backward (`backwardReference`), whose accumulation order
 *    is "rows in ascending order". Post-hoc combination of per-thread
 *    partial buffers can never reproduce that order exactly (float
 *    addition is not associative), so the backward kernels do NOT
 *    reduce across threads at all: they are *owner-parallelised*.
 *    Each parallelFor task owns a disjoint slice of the gradient
 *    (a range of output features, butterfly weight pairs, LayerNorm
 *    columns, embedding columns) and walks the rows in the same
 *    ascending order the serial reference uses, so every gradient
 *    element keeps its exact serial accumulation chain. Per-thread
 *    buffers (runtime/workspace.h) hold the row-local scratch -
 *    gathered attention head panels, butterfly stage-gradient
 *    trajectories - never cross-thread partial sums.
 *
 * 2. **Associativity-tolerant scalars** - the global gradient norm in
 *    the optimizer's clip step, where no seed-order contract exists
 *    but the result must still be identical at any thread count
 *    (the training convergence tests pin loss curves across thread
 *    counts). These use the helpers below: the input is split into
 *    FIXED-SIZE chunks (shape depends only on the element count,
 *    never on the thread count), each chunk is summed serially in
 *    index order into its own partial slot, and the slots are folded
 *    by a fixed-shape pairwise tree. Any thread may compute any slot;
 *    the combine order is a pure function of the slot count.
 */
#ifndef FABNET_RUNTIME_REDUCE_H
#define FABNET_RUNTIME_REDUCE_H

#include <cstddef>
#include <vector>

#include "runtime/parallel.h"

namespace fabnet {
namespace runtime {

/**
 * Elements per partial-sum slot of the deterministic chunked
 * reductions. Fixed (never derived from the thread count) so the
 * reduction shape - and therefore the result - is a pure function of
 * the input length.
 */
constexpr std::size_t kReduceChunk = 4096;

/**
 * Grain for the owner-parallel gradient sweeps: ~4 chunks per pool
 * thread (dynamic-claiming load balance), one single chunk on a
 * 1-thread pool, floored at @p min_grain elements.
 *
 * Unlike the fixed-shape reductions below, this MAY depend on the
 * thread count: owner-parallel accumulation is partition-invariant
 * (every gradient element's chain is the full ascending row order no
 * matter which task owns it), so the chunking changes scheduling and
 * memory traffic, never results. And the traffic matters: each chunk
 * streams the whole row range, so the chunk count is a read
 * multiplier on the activations - a serial sweep should be ONE chunk
 * (reference-equal traffic), a T-thread sweep ~4T.
 */
inline std::size_t
ownerGrain(std::size_t total, std::size_t min_grain = 1)
{
    const std::size_t threads = numThreads();
    if (threads <= 1 || total == 0)
        return total == 0 ? 1 : total;
    const std::size_t chunks = threads * 4;
    const std::size_t grain = (total + chunks - 1) / chunks;
    return std::max(grain, min_grain);
}

/** Number of partial slots a deterministic reduction of @p n uses. */
inline std::size_t
reduceSlots(std::size_t n)
{
    return (n + kReduceChunk - 1) / kReduceChunk;
}

/**
 * Fold @p n partials in place with a fixed-shape pairwise tree:
 * level by level, slot i takes p[2i] + p[2i+1] (an odd tail slot is
 * carried up unchanged). The association depends only on @p n, so the
 * result is identical no matter which threads produced the partials.
 * Returns p[0]; @p p is clobbered.
 */
template <class T>
inline T
treeReduce(T *p, std::size_t n)
{
    if (n == 0)
        return T{};
    while (n > 1) {
        const std::size_t pairs = n / 2;
        for (std::size_t i = 0; i < pairs; ++i)
            p[i] = p[2 * i] + p[2 * i + 1];
        if (n % 2 != 0) {
            p[pairs] = p[n - 1];
            n = pairs + 1;
        } else {
            n = pairs;
        }
    }
    return p[0];
}

/**
 * Deterministic sum of squares of @p x (the grad-norm building block):
 * fixed kReduceChunk chunks summed serially in index order into double
 * partials - computed in parallel, slot per chunk - then tree-folded.
 * Bitwise identical at any thread count; for n <= kReduceChunk it
 * degenerates to the plain serial double accumulation.
 */
inline double
deterministicSumSquares(const float *x, std::size_t n)
{
    const std::size_t slots = reduceSlots(n);
    if (slots <= 1) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            acc += static_cast<double>(x[i]) * x[i];
        return acc;
    }
    std::vector<double> partials(slots, 0.0);
    double *p = partials.data();
    parallelFor(0, slots, 1, [&](std::size_t s0, std::size_t s1) {
        for (std::size_t s = s0; s < s1; ++s) {
            const std::size_t b = s * kReduceChunk;
            const std::size_t e = std::min(b + kReduceChunk, n);
            double acc = 0.0;
            for (std::size_t i = b; i < e; ++i)
                acc += static_cast<double>(x[i]) * x[i];
            p[s] = acc;
        }
    });
    return treeReduce(p, slots);
}

} // namespace runtime
} // namespace fabnet

#endif // FABNET_RUNTIME_REDUCE_H
