// AVX2 kernel variant. Compiled with -mavx2 -mf16c (CMakeLists.txt);
// intrinsic use is additionally gated by the FABNET_KV_* macros so
// the flags and the code can't drift apart.
#define FABNET_KV_NS kv_avx2
#define FABNET_KV_AVX2 1
#define FABNET_KV_F16C 1
#define FABNET_KV_AVX512 0
#define FABNET_KV_VNNI 0
#define FABNET_KV_ISA ::fabnet::runtime::Isa::Avx2
#define FABNET_KV_EXPORT kernelTableAvx2

#include "runtime/kernels_impl.h"
